package citrus_test

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	citrus "github.com/go-citrus/citrus"
	"github.com/go-citrus/citrus/rcu"
)

func TestTreeStatsEndToEnd(t *testing.T) {
	dom := rcu.NewDomain()
	tree := citrus.NewWithFlavor[int, string](dom)
	h := tree.NewHandle()
	defer h.Close()

	h.Insert(2, "two")
	h.Insert(1, "one")
	h.Insert(3, "three")
	h.Get(1)
	h.Delete(2) // two children → one inline grace period

	s := tree.Stats()
	if s.Inserts != 3 || s.Deletes != 1 || s.Contains != 1 {
		t.Fatalf("unexpected counters: %+v", s)
	}
	if s.TwoChildDeletes != 1 {
		t.Fatalf("TwoChildDeletes = %d, want 1", s.TwoChildDeletes)
	}
	if s.RCU == nil || s.RCU.Synchronizes != 1 {
		t.Fatalf("RCU stats missing or wrong: %+v", s.RCU)
	}
	if s.RCU.Synchronizes != dom.Stats().Synchronizes {
		t.Fatal("tree-reported RCU stats disagree with the domain's")
	}

	// The snapshot must be JSON-serializable for /metrics endpoints.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"inserts", "two_child_deletes", "rcu", "sync_wait"} {
		if !strings.Contains(string(raw), field) {
			t.Fatalf("marshalled stats missing %q: %s", field, raw)
		}
	}
}

// TestHandleDoubleCloseAndUseAfterClose pins the public-API contract:
// double Close is a no-op and use-after-Close is a descriptive panic,
// not a nil dereference.
func TestHandleDoubleCloseAndUseAfterClose(t *testing.T) {
	tree := citrus.New[int, int]()
	h := tree.NewHandle()
	h.Insert(1, 1)
	h.Close()
	h.Close()

	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "Handle used after Close") {
			t.Fatalf("Get after Close panicked with %v, want descriptive message", r)
		}
	}()
	h.Get(1)
}

// TestStatsConcurrentWithWorkload drives the public API from several
// goroutines while polling Stats, checking monotonicity and the final
// tally. With -race this doubles as the API-level snapshot-tearing test.
func TestStatsConcurrentWithWorkload(t *testing.T) {
	tree := citrus.New[int, int]()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			h := tree.NewHandle()
			defer h.Close()
			for i := 0; !stop.Load(); i++ {
				k := (seed*131 + i) % 64
				switch i % 4 {
				case 0, 1:
					h.Contains(k)
				case 2:
					h.Insert(k, k)
				default:
					h.Delete(k)
				}
			}
		}(w)
	}
	var prevOps int64
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := tree.Stats()
		ops := s.Contains + s.Inserts + s.InsertExisting + s.Deletes + s.DeleteMisses
		if ops < prevOps {
			t.Fatalf("total ops went backwards: %d < %d", ops, prevOps)
		}
		prevOps = ops
	}
	stop.Store(true)
	wg.Wait()

	s := tree.Stats()
	if int64(tree.Len()) != s.Inserts-s.Deletes {
		t.Fatalf("Len()=%d, Inserts-Deletes=%d", tree.Len(), s.Inserts-s.Deletes)
	}
}
