package citrus

import (
	"context"
	"hash/maphash"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/go-citrus/citrus/rcu"
)

func TestForestBasicOps(t *testing.T) {
	f := NewForest[int, string](8)
	defer f.Close()
	h := f.NewHandle()
	defer h.Close()

	if _, ok := h.Get(7); ok {
		t.Fatal("Get on empty forest = true")
	}
	if !h.Insert(7, "seven") || h.Insert(7, "again") {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := h.Get(7); !ok || v != "seven" {
		t.Fatalf("Get(7) = (%q, %v)", v, ok)
	}
	if !h.Contains(7) || h.Contains(8) {
		t.Fatal("Contains semantics broken")
	}
	if !h.Delete(7) || h.Delete(7) {
		t.Fatal("Delete semantics broken")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForestSpreadsKeysAcrossShards(t *testing.T) {
	const shards = 8
	f := NewForest[int, int](shards)
	defer f.Close()
	h := f.NewHandle()
	defer h.Close()
	const n = 4096
	for k := 0; k < n; k++ {
		h.Insert(k, k)
	}
	if got := f.Len(); got != n {
		t.Fatalf("Len() = %d, want %d", got, n)
	}
	fs := f.Stats()
	empty := 0
	for i, s := range fs.Shards {
		if s.Inserts == 0 {
			empty++
			t.Logf("shard %d got no keys", i)
		}
	}
	// With 4096 hashed keys over 8 shards an empty shard means the
	// router is broken, not unlucky (p < 2^-256).
	if empty > 0 {
		t.Fatalf("%d of %d shards empty after %d hashed inserts", empty, shards, n)
	}
	if fs.Total.Inserts != n {
		t.Fatalf("Total.Inserts = %d, want %d", fs.Total.Inserts, n)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForestSequentialOracle(t *testing.T) {
	f := NewForest[int, int](5)
	defer f.Close()
	h := f.NewHandle()
	defer h.Close()
	oracle := map[int]int{}
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 30000; i++ {
		k := rng.Intn(700)
		switch rng.Intn(3) {
		case 0:
			_, present := oracle[k]
			if got := h.Insert(k, i); got == present {
				t.Fatalf("op %d: Insert(%d) = %v, present=%v", i, k, got, present)
			}
			if !present {
				oracle[k] = i
			}
		case 1:
			_, present := oracle[k]
			if got := h.Delete(k); got != present {
				t.Fatalf("op %d: Delete(%d) = %v, present=%v", i, k, got, present)
			}
			delete(oracle, k)
		default:
			wantV, wantOK := oracle[k]
			gotV, gotOK := h.Get(k)
			if gotOK != wantOK || (wantOK && gotV != wantV) {
				t.Fatalf("op %d: Get(%d) = (%d, %v), want (%d, %v)", i, k, gotV, gotOK, wantV, wantOK)
			}
		}
	}
	if got, want := f.Len(), len(oracle); got != want {
		t.Fatalf("Len() = %d, oracle %d", got, want)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Two forests with the same seed and shard count must agree on routing —
// the property the shared partition seed exists for. A custom partition
// function must be honored exactly.
func TestForestRoutingStable(t *testing.T) {
	seed := maphash.MakeSeed()
	a := NewForest[string, int](4, WithForestSeed[string](seed))
	defer a.Close()
	b := NewForest[string, int](4, WithForestSeed[string](seed))
	defer b.Close()
	keys := []string{"", "a", "forest", "shard", "grace", "period", "citrus", "rcu"}
	for _, k := range keys {
		if sa, sb := a.shardFor(k), b.shardFor(k); sa != sb {
			t.Fatalf("same-seed forests disagree on %q: shard %d vs %d", k, sa, sb)
		}
	}

	// Default-seeded forests agree too (process-wide shared seed).
	c := NewForest[string, int](4)
	defer c.Close()
	d := NewForest[string, int](4)
	defer d.Close()
	for _, k := range keys {
		if sc, sd := c.shardFor(k), d.shardFor(k); sc != sd {
			t.Fatalf("default forests disagree on %q: shard %d vs %d", k, sc, sd)
		}
	}

	e := NewForest[int, int](3, WithPartition[int](func(k int) int { return k % 3 }))
	defer e.Close()
	h := e.NewHandle()
	defer h.Close()
	for k := 0; k < 30; k++ {
		h.Insert(k, k)
	}
	fs := e.Stats()
	for i, s := range fs.Shards {
		if s.Inserts != 10 {
			t.Fatalf("shard %d holds %d keys under k%%3 partition, want 10", i, s.Inserts)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForestPartitionOutOfRangePanics(t *testing.T) {
	f := NewForest[int, int](2, WithPartition[int](func(int) int { return 2 }))
	defer f.Close()
	h := f.NewHandle()
	defer h.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range partition did not panic")
		}
	}()
	h.Insert(1, 1)
}

func TestForestConcurrentChurn(t *testing.T) {
	f := NewForest[int, int](4)
	defer f.Close()
	{
		h := f.NewHandle()
		for k := 0; k < 128; k++ {
			h.Insert(-k-1, k) // negative keys are permanent
		}
		h.Close()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	misses := make([]int, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := f.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !h.Contains(-rng.Intn(128) - 1) {
					misses[r]++
				}
			}
		}(r)
	}
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			h := f.NewHandle()
			defer h.Close()
			base := w * 100000
			for k := base; k < base+20000; k++ {
				h.Insert(k, k)
				if k%2 == 0 {
					h.Delete(k)
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	for r, m := range misses {
		if m != 0 {
			t.Fatalf("reader %d missed permanent keys %d times", r, m)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	fs := f.Stats()
	if got := fs.Total.Inserts; got != 128+4*20000 {
		t.Fatalf("Total.Inserts = %d, want %d", got, 128+4*20000)
	}
}

func TestForestDeleteCtx(t *testing.T) {
	f := NewForest[int, int](2)
	defer f.Close()
	h := f.NewHandle()
	defer h.Close()
	h.Insert(1, 1)
	ok, err := h.DeleteCtx(context.Background(), 1)
	if !ok || err != nil {
		t.Fatalf("DeleteCtx = (%v, %v)", ok, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ok, err = h.DeleteCtx(ctx, 2)
	if ok || err == nil {
		t.Fatalf("DeleteCtx with done ctx on absent key = (%v, %v)", ok, err)
	}
}

// The point of per-shard domains: a reader parked inside one shard's
// critical section must not delay grace periods — and therefore
// two-child deletes — on sibling shards.
func TestForestShardIsolation(t *testing.T) {
	const shards = 4
	// Route by k % shards so the test can aim keys at specific shards.
	f := NewForest[int, int](shards, WithPartition[int](func(k int) int {
		k %= shards
		if k < 0 {
			k += shards
		}
		return k
	}))
	defer f.Close()

	// Park a reader inside shard 0's read-side critical section.
	r := f.Domain(0).Register()
	r.ReadLock()
	defer func() {
		r.ReadUnlock()
		r.Unregister()
	}()

	// Drive two-child deletes through every OTHER shard: each needs an
	// inline grace period on its own domain. If isolation is broken
	// (one shared domain), these would block behind the parked reader.
	done := make(chan struct{})
	go func() {
		defer close(done)
		h := f.NewHandle()
		defer h.Close()
		for s := 1; s < shards; s++ {
			// Build two-child victims in shard s: per triple, insert
			// the middle key first so left and right become its
			// children, then delete the middle — a two-child delete,
			// which pays an inline grace period on shard s's domain.
			for tr := 0; tr < 8; tr++ {
				base := s + 3*tr*shards
				mid, left, right := base+shards, base, base+2*shards
				h.Insert(mid, tr)
				h.Insert(left, tr)
				h.Insert(right, tr)
				h.Delete(mid)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sibling-shard deletes blocked behind a reader parked in shard 0")
	}

	fs := f.Stats()
	// Positive control: the sibling shards really did run grace periods
	// while shard 0's reader was parked the whole time.
	advanced := int64(0)
	for s := 1; s < shards; s++ {
		if rs := fs.Shards[s].RCU; rs != nil {
			advanced += rs.Synchronizes
		}
	}
	if advanced == 0 {
		t.Fatal("no sibling grace periods completed — the test exercised nothing")
	}
}

// Stats folding must be exact across shards and hold its documented
// monotonicity while handles churn and close concurrently.
func TestForestStatsFold(t *testing.T) {
	f := NewForest[int, int](3)
	defer f.Close()

	var wg sync.WaitGroup
	const workers, per = 4, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := f.NewHandle()
			base := w * 10000
			for k := base; k < base+per; k++ {
				h.Insert(k, k)
				h.Contains(k)
				h.Delete(k)
			}
			h.Close()
		}(w)
	}
	statsStop := make(chan struct{})
	var statsWG sync.WaitGroup
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		var last int64
		for {
			select {
			case <-statsStop:
				return
			default:
			}
			fs := f.Stats()
			tot := fs.Total.Contains + fs.Total.Inserts + fs.Total.Deletes
			if tot < last {
				panic("forest Total went backwards")
			}
			last = tot
		}
	}()
	wg.Wait()
	close(statsStop)
	statsWG.Wait()

	fs := f.Stats()
	if got, want := fs.Total.Inserts, int64(workers*per); got != want {
		t.Fatalf("Total.Inserts = %d, want %d", got, want)
	}
	if got, want := fs.Total.Contains, int64(workers*per); got != want {
		t.Fatalf("Total.Contains = %d, want %d", got, want)
	}
	if got, want := fs.Total.Deletes, int64(workers*per); got != want {
		t.Fatalf("Total.Deletes = %d, want %d", got, want)
	}
	var shardSum int64
	for _, s := range fs.Shards {
		shardSum += s.Inserts
	}
	if shardSum != fs.Total.Inserts {
		t.Fatalf("shard breakdown sums to %d, Total says %d", shardSum, fs.Total.Inserts)
	}
	if len(fs.Reclaim) != f.NumShards() {
		t.Fatalf("Reclaim breakdown has %d entries for %d shards", len(fs.Reclaim), f.NumShards())
	}
	if fs.Total.RCU == nil {
		t.Fatal("Total.RCU not folded")
	}
	var syncSum int64
	for _, s := range fs.Shards {
		if s.RCU != nil {
			syncSum += s.RCU.Synchronizes
		}
	}
	if fs.Total.RCU.Synchronizes != syncSum {
		t.Fatalf("Total.RCU.Synchronizes = %d, shards sum to %d", fs.Total.RCU.Synchronizes, syncSum)
	}
	if fs.Total.RCU.SyncWait.Total() == 0 && syncSum > 0 {
		t.Fatal("SyncWait histogram not merged into Total")
	}
}

// Close barriers every shard: all deferred reclamation runs.
func TestForestCloseDrains(t *testing.T) {
	f := NewForest[int, int](4)
	h := f.NewHandle()
	for k := 0; k < 2000; k++ {
		h.Insert(k, k)
	}
	for k := 0; k < 2000; k++ {
		h.Delete(k)
	}
	h.Close()
	f.Barrier()
	f.Close()
	f.Close() // idempotent
	fs := f.Stats()
	for i, rs := range fs.Reclaim {
		if rs.QueueDepth != 0 {
			t.Fatalf("shard %d reclaimer left %d callbacks pending after Close", i, rs.QueueDepth)
		}
		if rs.Deferred != rs.Executed+rs.Dropped {
			t.Fatalf("shard %d reclaimer accounting off: deferred %d, executed %d, dropped %d",
				i, rs.Deferred, rs.Executed, rs.Dropped)
		}
	}
}

// A 1-shard forest must behave exactly like a Tree (the degenerate case
// the bench uses as its baseline sanity check).
func TestForestSingleShard(t *testing.T) {
	f := NewForest[int, int](1)
	defer f.Close()
	h := f.NewHandle()
	defer h.Close()
	for k := 0; k < 1000; k++ {
		if !h.Insert(k, k*3) {
			t.Fatalf("Insert(%d) = false", k)
		}
	}
	for k := 0; k < 1000; k++ {
		if v, ok := h.Get(k); !ok || v != k*3 {
			t.Fatalf("Get(%d) = (%d, %v)", k, v, ok)
		}
	}
	if got := f.NumShards(); got != 1 {
		t.Fatalf("NumShards = %d", got)
	}
	keys := f.Keys()
	if len(keys) != 1000 || keys[0] != 0 || keys[999] != 999 {
		t.Fatalf("Keys() wrong: len %d", len(keys))
	}
}

func TestForestTracingMergedDump(t *testing.T) {
	f := NewForest[int, int](4)
	defer f.Close()

	recs := f.EnableTracing()
	if len(recs) != 4 {
		t.Fatalf("EnableTracing returned %d recorders, want 4", len(recs))
	}
	for i := 0; i < 4; i++ {
		if f.TraceRecorder(i) != recs[i] {
			t.Fatalf("TraceRecorder(%d) does not match EnableTracing result", i)
		}
	}

	h := f.NewHandle()
	defer h.Close()
	// Enough keys that every shard sees operations.
	for k := 0; k < 256; k++ {
		h.Insert(k, k)
	}
	for k := 0; k < 256; k++ {
		h.Get(k)
	}

	tr := f.DumpTrace()
	if len(tr.Events) == 0 {
		t.Fatal("merged dump has no events")
	}
	shardsSeen := map[int]bool{}
	ringShard := map[uint32]int{}
	for _, ri := range tr.Rings {
		if _, dup := ringShard[ri.ID]; dup {
			t.Fatalf("duplicate ring ID %d in merged dump", ri.ID)
		}
		ringShard[ri.ID] = ri.Shard
	}
	for i, ev := range tr.Events {
		shardsSeen[ev.Shard] = true
		if ev.Shard < 0 || ev.Shard >= 4 {
			t.Fatalf("event %d has shard %d outside [0,4)", i, ev.Shard)
		}
		if got, ok := ringShard[ev.Ring]; !ok || got != ev.Shard {
			t.Fatalf("event %d: ring %d maps to shard %d, event says %d", i, ev.Ring, got, ev.Shard)
		}
		if i > 0 && ev.Start < tr.Events[i-1].Start {
			t.Fatalf("merged events out of time order at %d", i)
		}
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("expected events from several shards, got %v", shardsSeen)
	}

	f.DisableTracing()
	for i := 0; i < 4; i++ {
		if f.TraceRecorder(i) != nil {
			t.Fatalf("TraceRecorder(%d) still set after DisableTracing", i)
		}
	}
	if tr := f.DumpTrace(); len(tr.Events) != 0 || !tr.Epoch.IsZero() {
		t.Fatalf("dump after disable should be empty, got %d events", len(tr.Events))
	}
}

func TestForestShardFlavorEBR(t *testing.T) {
	f := NewForest[int, int](4,
		WithShardFlavor[int](func() rcu.Flavor { return rcu.NewEpochDomain() }))
	defer f.Close()

	for i := 0; i < 4; i++ {
		if _, ok := f.Flavor(i).(*rcu.EpochDomain); !ok {
			t.Fatalf("Flavor(%d) = %T, want *rcu.EpochDomain", i, f.Flavor(i))
		}
		if f.Domain(i) != nil {
			t.Fatalf("Domain(%d) = %v, want nil for a non-Domain flavor", i, f.Domain(i))
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := f.NewHandle()
			defer h.Close()
			for i := g * 256; i < (g+1)*256; i++ {
				h.Insert(i, i)
			}
			for i := g * 256; i < (g+1)*256; i += 2 {
				h.Delete(i)
			}
		}(g)
	}
	wg.Wait()
	if got := f.Len(); got != 512 {
		t.Fatalf("Len() = %d, want 512", got)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every shard's epoch domain must have run real grace periods for
	// the deletes above to have retired nodes.
	syncs := int64(0)
	for i := 0; i < 4; i++ {
		syncs += f.Flavor(i).(*rcu.EpochDomain).Stats().Synchronizes
	}
	if syncs == 0 {
		t.Fatal("no Synchronizes recorded across EBR shards despite deletes")
	}
}

func TestForestRangeScanLimit(t *testing.T) {
	f := NewForest[int, int](8)
	defer f.Close()
	h := f.NewHandle()
	defer h.Close()
	const n = 1000
	for k := 0; k < n; k++ {
		h.Insert(k, k*10)
	}

	// The bounded scan must yield the globally smallest `limit` keys in
	// ascending order, exactly as an unbounded scan truncated would.
	var got []int
	h.RangeScanLimit(100, 900, 25, func(k, v int) bool {
		if v != k*10 {
			t.Fatalf("RangeScanLimit pair (%d, %d) has wrong value", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 25 {
		t.Fatalf("RangeScanLimit emitted %d pairs, want 25", len(got))
	}
	for i, k := range got {
		if k != 100+i {
			t.Fatalf("RangeScanLimit[%d] = %d, want %d (global ascending order)", i, k, 100+i)
		}
	}

	// A limit past the in-range population degrades to the full result.
	count := 0
	h.RangeScanLimit(990, 2000, 100, func(k, v int) bool { count++; return true })
	if count != 10 {
		t.Fatalf("over-sized limit emitted %d pairs, want 10", count)
	}

	// fn returning false stops mid-emit.
	count = 0
	h.RangeScanLimit(0, n, 50, func(k, v int) bool { count++; return count < 7 })
	if count != 7 {
		t.Fatalf("early-stop scan emitted %d pairs, want 7", count)
	}

	// Degenerate limits scan nothing.
	h.RangeScanLimit(0, n, 0, func(k, v int) bool {
		t.Fatal("limit 0 emitted a pair")
		return false
	})
	h.RangeScanLimit(0, n, -3, func(k, v int) bool {
		t.Fatal("negative limit emitted a pair")
		return false
	})
}

func TestForestScanBatched(t *testing.T) {
	f := NewForest[int, int](8)
	defer f.Close()
	h := f.NewHandle()
	defer h.Close()
	const n = 500
	for k := 0; k < n; k++ {
		h.Insert(k, k*3)
	}

	// The batched full scan must emit every pair in global ascending
	// order, identical to RangeScan over the whole key space, however
	// small the batch (forcing many critical-section drops per shard).
	for _, batch := range []int{1, 7, 64, n * 2} {
		var got []int
		h.ScanBatched(batch, func(k, v int) bool {
			if v != k*3 {
				t.Fatalf("batch %d: pair (%d, %d) has wrong value", batch, k, v)
			}
			got = append(got, k)
			return true
		})
		if len(got) != n {
			t.Fatalf("batch %d: emitted %d pairs, want %d", batch, len(got), n)
		}
		for i, k := range got {
			if k != i {
				t.Fatalf("batch %d: got[%d] = %d, want %d (global ascending order)", batch, i, k, i)
			}
		}
	}

	// fn returning false stops mid-emit.
	count := 0
	h.ScanBatched(16, func(k, v int) bool { count++; return count < 9 })
	if count != 9 {
		t.Fatalf("early-stop batched scan emitted %d pairs, want 9", count)
	}
}
