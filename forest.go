package citrus

import (
	"cmp"
	"context"
	"fmt"
	"hash/maphash"
	"slices"

	"github.com/go-citrus/citrus/citrustrace"
	"github.com/go-citrus/citrus/internal/core"
	"github.com/go-citrus/citrus/internal/partition"
	"github.com/go-citrus/citrus/rcu"
)

// A Forest is a sharded dictionary: the key space is partitioned across
// N independent Citrus trees, each with its own RCU domain and deferred
// reclaimer, behind the same per-goroutine-handle API as Tree.
//
// Why shard: a single Citrus tree shares one RCU domain among all its
// readers, so one slow or stalled reader delays every two-child delete's
// inline grace period (the paper's line-74 synchronize_rcu) — tree-wide.
// Sharding confines that blast radius: a grace period on shard i waits
// only for readers currently inside shard i's critical sections, so a
// stalled reader parks its own shard while the siblings' updates keep
// completing. It also multiplies the update-side lock space and splits
// reclamation backlogs per shard.
//
// Routing is by seeded hash (internal shared seed by default): the same
// key always reaches the same shard for the forest's lifetime, and two
// forests built with the same seed and shard count agree on placement.
// Keys are NOT ordered across shards, so a Forest is an unordered
// dictionary: Get/Insert/Delete/DeleteCtx keep their Tree semantics and
// per-key linearizability, but the ordered iteration helpers (Keys,
// Range) traverse shard by shard and are quiescent-use only, like Tree's.
//
// Cross-shard consistency: none is promised beyond per-key
// linearizability. Two operations on keys in different shards are
// synchronized by nothing — exactly the guarantee a single Tree gives
// two operations on different keys, so most dictionary users lose
// nothing. What a Forest additionally does NOT give is a single RCU
// domain spanning all keys: a reader's critical section covers one
// shard, so no multi-key read can be made atomic by piggybacking on one
// read-side section (a single Tree doesn't promise that either — §1,
// Figure 1 of the paper — but with a shared domain one could build it;
// with a Forest one cannot).
type Forest[K cmp.Ordered, V any] struct {
	shards []forestShard[K, V]
	part   func(K) int
	seed   maphash.Seed
	closed bool
}

// forestShard is one partition: a core tree with recycling, its private
// RCU flavor (a scalable rcu.Domain unless WithShardFlavor says
// otherwise), and the reclaimer that runs the shard's deferred frees.
type forestShard[K cmp.Ordered, V any] struct {
	tree *core.Tree[K, V]
	dom  rcu.Flavor
	rec  *rcu.Reclaimer
}

// ForestOption configures NewForest.
type ForestOption[K cmp.Ordered] func(*forestConfig[K])

type forestConfig[K cmp.Ordered] struct {
	seed    maphash.Seed
	part    func(K) int
	recOpts []rcu.ReclaimerOption
	flavor  func() rcu.Flavor
}

// WithForestSeed sets the routing seed. Forests (and rhash maps, and
// anything else built on package-internal seeded partitioning) sharing
// a seed and shard count route every key identically — useful for
// migrating between instances or comparing placements. The default is
// the process-wide shared seed, so two default forests already agree.
func WithForestSeed[K cmp.Ordered](seed maphash.Seed) ForestOption[K] {
	return func(c *forestConfig[K]) { c.seed = seed }
}

// WithPartition replaces hash routing with a user-supplied partition
// function. fn must be pure (the same key must always yield the same
// value — routing a key to two shards over time would make it appear
// and disappear) and must return a value in [0, shards); out-of-range
// values panic at the operation that routes the key.
func WithPartition[K cmp.Ordered](fn func(key K) int) ForestOption[K] {
	return func(c *forestConfig[K]) { c.part = fn }
}

// WithShardReclaimerOptions passes options (high watermark, hard cap,
// drain batch, backpressure) to every shard's reclaimer.
func WithShardReclaimerOptions[K cmp.Ordered](opts ...rcu.ReclaimerOption) ForestOption[K] {
	return func(c *forestConfig[K]) { c.recOpts = append(c.recOpts, opts...) }
}

// WithShardFlavor replaces the default scalable rcu.Domain with a
// caller-chosen RCU flavor: newFlavor is called once per shard, so each
// shard still owns a private grace-period domain (the isolation the
// forest exists for). Flavors implementing the optional surfaces —
// rcu.Traceable, rcu.StatsSource, rcu.StallControl — keep the forest's
// tracing, stats folding and stall wiring working; all three shipped
// flavors (Domain, ClassicDomain, EpochDomain) implement all of them.
func WithShardFlavor[K cmp.Ordered](newFlavor func() rcu.Flavor) ForestOption[K] {
	return func(c *forestConfig[K]) { c.flavor = newFlavor }
}

// NewForest returns an empty forest of the given number of shards. Each
// shard is an independent Citrus tree with node recycling, its own
// scalable RCU domain (rcu.Domain) and its own reclaimer; the forest
// owns all of them — call Close when done so the reclaimers drain and
// stop.
func NewForest[K cmp.Ordered, V any](shards int, opts ...ForestOption[K]) *Forest[K, V] {
	if shards < 1 {
		panic("citrus: NewForest needs at least 1 shard")
	}
	cfg := forestConfig[K]{seed: partition.SharedSeed()}
	for _, o := range opts {
		o(&cfg)
	}
	f := &Forest[K, V]{
		shards: make([]forestShard[K, V], shards),
		seed:   cfg.seed,
	}
	if cfg.part != nil {
		f.part = cfg.part
	} else {
		router := partition.NewRouter[K](cfg.seed, shards)
		f.part = router.Partition
	}
	for i := range f.shards {
		var dom rcu.Flavor
		if cfg.flavor != nil {
			dom = cfg.flavor()
		} else {
			dom = rcu.NewDomain()
		}
		rec := rcu.NewReclaimer(dom, cfg.recOpts...)
		f.shards[i] = forestShard[K, V]{
			tree: core.NewTreeWithRecycling[K, V](dom, rec),
			dom:  dom,
			rec:  rec,
		}
	}
	return f
}

// NumShards reports the number of partitions.
func (f *Forest[K, V]) NumShards() int { return len(f.shards) }

// shardFor routes a key, bounds-checking user partition functions.
func (f *Forest[K, V]) shardFor(key K) int {
	s := f.part(key)
	if s < 0 || s >= len(f.shards) {
		panic(fmt.Sprintf("citrus: partition function routed key outside [0,%d): %d", len(f.shards), s))
	}
	return s
}

// Domain returns shard i's RCU domain when the shard runs the default
// scalable flavor, nil when WithShardFlavor installed something else.
// Flavor-generic callers (stall wiring, stats) should use Flavor and
// type-assert the optional surface they need.
func (f *Forest[K, V]) Domain(i int) *rcu.Domain {
	d, _ := f.shards[i].dom.(*rcu.Domain)
	return d
}

// Flavor returns shard i's RCU flavor, whatever its concrete type: the
// seam for wiring stall handlers (rcu.StallControl), tracing
// (rcu.Traceable) or stats (rcu.StatsSource) per shard.
func (f *Forest[K, V]) Flavor(i int) rcu.Flavor { return f.shards[i].dom }

// EnableTracing attaches one fresh flight recorder per shard and
// returns them, index-aligned with routing. Each shard's tree
// operations and grace-period spans go to that shard's own recorder —
// the rings stay shard-local and lock-free, no cross-shard
// coordination on the record path. DumpTrace folds the recorders into
// one shard-tagged trace; use TraceRecorder(i) to inspect one shard.
// Calling EnableTracing again replaces every shard's recorder.
func (f *Forest[K, V]) EnableTracing(opts ...citrustrace.Option) []*citrustrace.Recorder {
	recs := make([]*citrustrace.Recorder, len(f.shards))
	for i := range f.shards {
		rec := citrustrace.New(opts...)
		if tr, ok := f.shards[i].dom.(rcu.Traceable); ok {
			tr.SetTracer(rec.SyncTracer("rcu"))
		}
		f.shards[i].tree.SetTracer(rec)
		recs[i] = rec
	}
	return recs
}

// DisableTracing detaches every shard's flight recorder and
// grace-period tracer. Operations already in flight finish recording
// into the recorder they started with; a final DumpTrace still returns
// the captured window.
func (f *Forest[K, V]) DisableTracing() {
	for i := range f.shards {
		f.shards[i].tree.SetTracer(nil)
		if tr, ok := f.shards[i].dom.(rcu.Traceable); ok {
			tr.SetTracer(nil)
		}
	}
}

// TraceRecorder reports shard i's currently attached flight recorder,
// nil when tracing is disabled.
func (f *Forest[K, V]) TraceRecorder(i int) *citrustrace.Recorder {
	return f.shards[i].tree.Tracer()
}

// DumpTrace snapshots every shard's flight recorder and merges them
// into one time-ordered trace on a common epoch, with every event and
// ring tagged by source shard (citrustrace.MergeShards). Shards with
// tracing disabled contribute nothing but keep their index. With
// tracing fully disabled it returns an empty Trace. Safe at any time,
// concurrently with operations and tracing toggles.
func (f *Forest[K, V]) DumpTrace() citrustrace.Trace {
	shards := make([]citrustrace.Trace, len(f.shards))
	for i := range f.shards {
		if rec := f.shards[i].tree.Tracer(); rec != nil {
			shards[i] = rec.Snapshot()
		}
	}
	return citrustrace.MergeShards(shards)
}

// Reclaimer returns shard i's reclaimer.
func (f *Forest[K, V]) Reclaimer(i int) *rcu.Reclaimer { return f.shards[i].rec }

// NewHandle registers the calling goroutine with every shard's RCU
// domain and returns the worker's access point. Like Tree handles, a
// ForestHandle is not safe for concurrent use: one per goroutine.
func (f *Forest[K, V]) NewHandle() *ForestHandle[K, V] {
	h := &ForestHandle[K, V]{f: f, hs: make([]*core.Handle[K, V], len(f.shards))}
	for i := range f.shards {
		h.hs[i] = f.shards[i].tree.NewHandle()
	}
	return h
}

// Barrier waits until every shard's reclamation queue, as of the call,
// has drained: all callbacks deferred before the call have run. Like
// rcu.Reclaimer.Barrier it does not block new Defers.
func (f *Forest[K, V]) Barrier() {
	for i := range f.shards {
		f.shards[i].rec.Barrier()
	}
}

// Close drains and stops every shard's reclaimer. All handles should be
// closed first. Close is idempotent; operations through handles after
// Close have shard-reclaimer semantics of Defer-after-Close (the
// callback runs synchronously after a grace period) and are best
// avoided.
func (f *Forest[K, V]) Close() {
	if f.closed {
		return
	}
	f.closed = true
	for i := range f.shards {
		f.shards[i].rec.Close()
	}
}

// Len reports the total number of keys across all shards. Quiescent use
// only, like Tree.Len.
func (f *Forest[K, V]) Len() int {
	n := 0
	for i := range f.shards {
		n += f.shards[i].tree.Len()
	}
	return n
}

// Keys returns all keys in ascending global order; a full-range scan
// through the handle scan path. Quiescent use only.
func (f *Forest[K, V]) Keys() []K {
	h := f.NewHandle()
	defer h.Close()
	var ks []K
	h.Scan(func(k K, _ V) bool { ks = append(ks, k); return true })
	return ks
}

// Range calls fn for every pair until fn returns false, shard by shard
// in ascending key order within each shard — NOT global key order.
// Quiescent use only.
func (f *Forest[K, V]) Range(fn func(key K, value V) bool) {
	for i := range f.shards {
		stopped := false
		f.shards[i].tree.Range(func(k K, v V) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// CheckInvariants verifies every shard's structural invariants and that
// every key lives in the shard the router assigns it. Quiescent use
// only.
func (f *Forest[K, V]) CheckInvariants() error {
	for i := range f.shards {
		if err := f.shards[i].tree.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		var misrouted error
		f.shards[i].tree.Range(func(k K, _ V) bool {
			if want := f.shardFor(k); want != i {
				misrouted = fmt.Errorf("key %v found in shard %d, routes to %d", k, i, want)
				return false
			}
			return true
		})
		if misrouted != nil {
			return misrouted
		}
	}
	return nil
}

// ForestStats is a point-in-time snapshot of a forest: the fold of
// every shard's counters plus the per-shard breakdown.
type ForestStats struct {
	// Total folds all shards: operation counters are sums, and
	// Total.RCU merges every shard domain's grace-period accounting
	// (counters summed, wait histograms bucket-wise merged — the
	// buckets are identical log2 lattices, so the merge is exact).
	Total Stats `json:"total"`

	// Shards is the per-shard breakdown, index-aligned with routing.
	// Each entry's RCU block is that shard's own domain, which is the
	// view that shows isolation: a stall in one shard raises that
	// entry's ActiveStalls while the siblings' Synchronizes advance.
	Shards []Stats `json:"shards"`

	// Reclaim is the per-shard reclaimer accounting, index-aligned
	// with Shards.
	Reclaim []rcu.ReclaimerStats `json:"reclaim"`
}

// Stats snapshots every shard and folds the totals. Safe to call at any
// time, from any goroutine, concurrently with operations and handle
// churn; the folded Total keeps Tree.Stats's monotonicity (shard
// snapshots are taken one at a time, so Total is not an atomic
// cross-shard cut — consistent with the forest's no-cross-shard-
// consistency contract).
func (f *Forest[K, V]) Stats() ForestStats {
	fs := ForestStats{
		Shards:  make([]Stats, len(f.shards)),
		Reclaim: make([]rcu.ReclaimerStats, len(f.shards)),
	}
	totalRCU := &rcu.Stats{}
	for i := range f.shards {
		s := f.shards[i].tree.Stats()
		sh := Stats{
			Contains:        s.Contains,
			Inserts:         s.Inserts,
			InsertExisting:  s.InsertExisting,
			InsertRetries:   s.InsertRetries,
			Deletes:         s.Deletes,
			DeleteMisses:    s.DeleteMisses,
			DeleteRetries:   s.DeleteRetries,
			TwoChildDeletes: s.TwoChildDeletes,
			DeleteTimeouts:  s.DeleteTimeouts,
			NodesRetired:    s.NodesRetired,
			NodesReused:     s.NodesReused,
			Scans:           s.Scans,
			ScanSections:    s.ScanSections,
			ScanPairs:       s.ScanPairs,
			ScanNodes:       s.ScanNodes,
			RCU:             s.RCU,
		}
		fs.Shards[i] = sh
		fs.Reclaim[i] = f.shards[i].rec.Stats()

		fs.Total.Contains += sh.Contains
		fs.Total.Inserts += sh.Inserts
		fs.Total.InsertExisting += sh.InsertExisting
		fs.Total.InsertRetries += sh.InsertRetries
		fs.Total.Deletes += sh.Deletes
		fs.Total.DeleteMisses += sh.DeleteMisses
		fs.Total.DeleteRetries += sh.DeleteRetries
		fs.Total.TwoChildDeletes += sh.TwoChildDeletes
		fs.Total.DeleteTimeouts += sh.DeleteTimeouts
		fs.Total.NodesRetired += sh.NodesRetired
		fs.Total.NodesReused += sh.NodesReused
		fs.Total.Scans += sh.Scans
		fs.Total.ScanSections += sh.ScanSections
		fs.Total.ScanPairs += sh.ScanPairs
		fs.Total.ScanNodes += sh.ScanNodes
		if sh.RCU != nil {
			// rcu.Stats.Merge is the canonical cross-domain fold:
			// counters and occupancy gauges sum, OldestSyncAgeNanos
			// takes the forest-wide max, histograms merge bucket-wise
			// (exact — shared log2 lattice).
			totalRCU.Merge(*sh.RCU)
		}
	}
	fs.Total.RCU = totalRCU
	return fs
}

// A ForestHandle is one goroutine's access point to a Forest: one
// registered Tree handle per shard, with operations routed by key.
type ForestHandle[K cmp.Ordered, V any] struct {
	f  *Forest[K, V]
	hs []*core.Handle[K, V]
}

// Get returns the value stored under key, if any. Wait-free, inside the
// owning shard's read-side critical section.
func (h *ForestHandle[K, V]) Get(key K) (V, bool) {
	return h.hs[h.f.shardFor(key)].Contains(key)
}

// Contains reports whether key is in the forest. Wait-free.
func (h *ForestHandle[K, V]) Contains(key K) bool {
	_, ok := h.Get(key)
	return ok
}

// Insert adds (key, value) to the owning shard. It returns false — and
// stores nothing — if key is already present.
func (h *ForestHandle[K, V]) Insert(key K, value V) bool {
	return h.hs[h.f.shardFor(key)].Insert(key, value)
}

// Delete removes key from the owning shard. It returns false if key is
// absent.
func (h *ForestHandle[K, V]) Delete(key K) bool {
	return h.hs[h.f.shardFor(key)].Delete(key)
}

// DeleteCtx removes key like Delete with the wait bounded by ctx; see
// Handle.DeleteCtx for the exact semantics. The grace period waited on
// is the owning shard's only.
func (h *ForestHandle[K, V]) DeleteCtx(ctx context.Context, key K) (bool, error) {
	return h.hs[h.f.shardFor(key)].DeleteCtx(ctx, key)
}

// RangeScan calls fn for each pair with lo ≤ key < hi in ascending
// GLOBAL key order, stopping early when fn returns false. Shards are
// hash-partitioned, so no global order exists in the structure; the
// scan collects each shard's in-range pairs (each shard scanned inside
// its own read-side critical section, weakly consistent like
// Handle.RangeScan), sorts the union, and emits — O(result) memory and
// the sort's O(r log r) time. Cross-shard consistency is exactly the
// forest's usual none: each shard's slice reflects a different instant.
func (h *ForestHandle[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	h.scan(&lo, &hi, fn)
}

// RangeScanLimit is RangeScan bounded to at most limit pairs: fn sees
// the first limit in-range pairs in ascending global key order (fewer
// if fn stops early or the range is smaller). The bound is enforced on
// the collection side, per shard: each shard emits its in-range pairs
// ascending, so its first limit pairs are the only candidates for the
// global first limit, and the scan buffers O(limit × shards) pairs no
// matter how large the range is — the memory bound plain RangeScan
// with an early-stopping fn cannot give, since it has already collected
// every shard's full result set by the time fn sees pair one. limit <=
// 0 scans nothing.
func (h *ForestHandle[K, V]) RangeScanLimit(lo, hi K, limit int, fn func(key K, value V) bool) {
	if limit <= 0 {
		return
	}
	type pair struct {
		key   K
		value V
	}
	pairs := make([]pair, 0, min(limit, 1024))
	for _, sh := range h.hs {
		n := 0
		sh.RangeScan(lo, hi, func(k K, v V) bool {
			pairs = append(pairs, pair{k, v})
			n++
			return n < limit
		})
	}
	slices.SortFunc(pairs, func(a, b pair) int { return cmp.Compare(a.key, b.key) })
	if len(pairs) > limit {
		pairs = pairs[:limit]
	}
	for i := range pairs {
		if !fn(pairs[i].key, pairs[i].value) {
			return
		}
	}
}

// Scan calls fn for every pair in ascending global key order, stopping
// early when fn returns false. Collects every shard's pairs before
// emitting — O(n) memory; see RangeScan.
func (h *ForestHandle[K, V]) Scan(fn func(key K, value V) bool) {
	h.scan(nil, nil, fn)
}

// ScanBatched is Scan with bounded reader dwell: each shard is
// traversed with Handle.ScanBatched semantics — the shard's read-side
// critical section is dropped and re-entered every batch pairs, so a
// long scan (a fuzzy snapshot of the whole forest, say) never parks a
// shard's grace periods for its full duration. Memory and ordering
// match Scan: every shard's pairs are collected, sorted, and emitted in
// ascending global key order. The consistency is Scan's weak contract,
// further loosened per shard by the batching (keys updated between a
// shard's batches may be seen in neither or either state); see
// Handle.ScanBatched.
func (h *ForestHandle[K, V]) ScanBatched(batch int, fn func(key K, value V) bool) {
	type pair struct {
		key   K
		value V
	}
	var pairs []pair
	for _, sh := range h.hs {
		sh.ScanBatched(batch, func(k K, v V) bool {
			pairs = append(pairs, pair{k, v})
			return true
		})
	}
	slices.SortFunc(pairs, func(a, b pair) int { return cmp.Compare(a.key, b.key) })
	for i := range pairs {
		if !fn(pairs[i].key, pairs[i].value) {
			return
		}
	}
}

func (h *ForestHandle[K, V]) scan(lo, hi *K, fn func(K, V) bool) {
	type pair struct {
		key   K
		value V
	}
	var pairs []pair
	collect := func(k K, v V) bool { pairs = append(pairs, pair{k, v}); return true }
	for _, sh := range h.hs {
		switch {
		case lo != nil && hi != nil:
			sh.RangeScan(*lo, *hi, collect)
		case lo == nil && hi == nil:
			sh.Scan(collect)
		default:
			// Mixed-bound scans (used by nothing today) fall back to a
			// full shard scan with a bound filter.
			sh.Scan(func(k K, v V) bool {
				if lo != nil && cmp.Less(k, *lo) {
					return true
				}
				if hi != nil && !cmp.Less(k, *hi) {
					return true
				}
				return collect(k, v)
			})
		}
	}
	slices.SortFunc(pairs, func(a, b pair) int { return cmp.Compare(a.key, b.key) })
	// Hash partitioning routes each key to exactly one shard, so the
	// merged slice has no duplicates to filter.
	for i := range pairs {
		if !fn(pairs[i].key, pairs[i].value) {
			return
		}
	}
}

// Close unregisters the handle from every shard. Idempotent; operations
// after Close panic like Tree handle operations do.
func (h *ForestHandle[K, V]) Close() {
	for _, sh := range h.hs {
		sh.Close()
	}
}
