package rcu

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/citrusstat"
)

// Stats is a point-in-time snapshot of a flavor's grace-period activity.
// All counters are cumulative since the domain was created and
// monotonically non-decreasing, so two snapshots can be subtracted for
// interval rates.
//
// In Citrus terms (the paper's §4): Synchronizes counts the line-74
// synchronize_rcu calls — one per delete of a node with two children —
// and SyncWait is the distribution of what each of those waits cost,
// the quantity behind the paper's Figure 8 comparison of RCU flavors.
type Stats struct {
	// Synchronizes is the number of completed Synchronize calls (grace
	// periods driven to completion on this domain).
	Synchronizes int64 `json:"synchronizes"`

	// SyncSpins counts busy-poll iterations before the first yield of a
	// wait (the cheap phase); SyncRechecks counts re-reads after waiting
	// escalated past busy-spinning — each one preceded by a Gosched or a
	// brief sleep. They used to be conflated into one counter, which hid
	// whether synchronizers were burning cycles or parked behind
	// descheduled readers. SyncYields is the number of runtime.Gosched
	// calls, SyncSleeps the number of brief sleeps taken after the yield
	// budget was exhausted too. High sleeps relative to Synchronizes
	// means grace periods are routinely blocked on long-running readers.
	SyncSpins    int64 `json:"sync_spins"`
	SyncRechecks int64 `json:"sync_rechecks"`
	SyncYields   int64 `json:"sync_yields"`
	SyncSleeps   int64 `json:"sync_sleeps"`

	// Grace-period combining accounting (Domain only; ClassicDomain
	// reports every call as a lead, since each runs its own scan).
	// SyncLeads counts calls that ran a reader scan themselves;
	// SyncShares counts calls that piggybacked on a grace period led by
	// another caller (a call that follows an in-flight grace period and
	// then leads the next one counts in both); SyncExpedited counts
	// calls satisfied without scanning or waiting because the needed
	// sequence completed between the call's snapshot and its first
	// check. Leads well below Synchronizes under concurrent updaters is
	// combining working.
	SyncLeads     int64 `json:"sync_leads"`
	SyncShares    int64 `json:"sync_shares"`
	SyncExpedited int64 `json:"sync_expedited"`

	// Stalls counts grace-period stall reports fired (see
	// Domain.SetStallTimeout): a Synchronize call whose wait crossed the
	// stall threshold contributes one per report, with per-call report
	// intervals doubling. ActiveStalls is a gauge — NOT monotonic — of
	// Synchronize calls currently stalled past the threshold; nonzero
	// means some updater is blocked on a slow reader right now.
	// SyncAbandoned counts SynchronizeCtx calls whose caller gave up
	// (context done) before the grace period completed; each such grace
	// period still ran to completion in the background.
	Stalls        int64 `json:"stalls"`
	ActiveStalls  int64 `json:"active_stalls"`
	SyncAbandoned int64 `json:"sync_abandoned"`

	// ActiveSyncs is a gauge of Synchronize calls currently in flight on
	// this domain; OldestSyncAgeNanos the age, in nanoseconds, of the
	// oldest of them — 0 when none is running. Together they are the
	// grace-period-age signal of the age-memory trade-off: a healthy
	// domain keeps OldestSyncAgeNanos in the microseconds, while a
	// stalled reader shows as an age that grows without bound (and, past
	// the stall threshold, as ActiveStalls). Scraping it as a time
	// series shows grace-period pressure *before* the stall detector
	// fires.
	ActiveSyncs        int64 `json:"active_syncs"`
	OldestSyncAgeNanos int64 `json:"oldest_sync_age_ns"`

	// Readers is the number of currently registered readers;
	// ReaderHighWater the maximum ever simultaneously registered.
	Readers         int   `json:"readers"`
	ReaderHighWater int64 `json:"reader_high_water"`

	// SyncWait is the wall-clock distribution of Synchronize calls
	// (entry to return, including any queueing a flavor imposes — for
	// ClassicDomain that includes waiting behind other synchronizers,
	// which is exactly the bottleneck the paper measures).
	SyncWait citrusstat.Snapshot `json:"sync_wait"`

	// FollowerWait is the distribution of individual follower episodes
	// under grace-period combining: how long a Synchronize call blocked
	// waiting for a grace period someone else was leading (one sample
	// per episode, so a call that followed two grace periods records
	// two). Always empty for ClassicDomain.
	FollowerWait citrusstat.Snapshot `json:"follower_wait"`
}

// A StatsSource is a flavor that can report grace-period statistics.
// Domain, ClassicDomain and InstrumentedFlavor implement it; consumers
// (e.g. citrus.Tree.Stats) type-assert against it so flavors without
// accounting keep working.
type StatsSource interface {
	Stats() Stats
}

var (
	_ StatsSource = (*Domain)(nil)
	_ StatsSource = (*ClassicDomain)(nil)
	_ StatsSource = (*EpochDomain)(nil)
	_ StatsSource = (*InstrumentedFlavor)(nil)
)

// Merge folds other into s: counters sum, wait histograms merge
// bucket-wise (exactly — every domain shares the log2 lattice, see
// citrusstat.Snapshot.Merge), and the gauges combine by the rule a
// many-domain aggregate wants. ActiveStalls, ActiveSyncs and Readers
// sum ("stalled/in-flight/registered anywhere right now"), which is the
// quantity degradation policies compare against zero; ReaderHighWater
// sums too, keeping the pre-existing forest-fold semantics ("peak
// readers per shard, added up"). OldestSyncAgeNanos takes the maximum:
// the aggregate's oldest in-flight grace period is the oldest across
// the parts, not their sum.
//
// citrus.Forest.Stats folds every shard's domain through Merge; any
// other multi-domain aggregation (e.g. a metrics exporter scraping
// several trees) should use it too, rather than re-deriving the
// per-field rules.
func (s *Stats) Merge(other Stats) {
	s.Synchronizes += other.Synchronizes
	s.SyncSpins += other.SyncSpins
	s.SyncRechecks += other.SyncRechecks
	s.SyncYields += other.SyncYields
	s.SyncSleeps += other.SyncSleeps
	s.SyncLeads += other.SyncLeads
	s.SyncShares += other.SyncShares
	s.SyncExpedited += other.SyncExpedited
	s.Stalls += other.Stalls
	s.ActiveStalls += other.ActiveStalls
	s.SyncAbandoned += other.SyncAbandoned
	s.ActiveSyncs += other.ActiveSyncs
	if other.OldestSyncAgeNanos > s.OldestSyncAgeNanos {
		s.OldestSyncAgeNanos = other.OldestSyncAgeNanos
	}
	s.Readers += other.Readers
	s.ReaderHighWater += other.ReaderHighWater
	s.SyncWait.Merge(other.SyncWait)
	s.FollowerWait.Merge(other.FollowerWait)
}

// syncStats is the accounting block embedded in both domain flavors.
// Everything here is written on the update (Synchronize/Register) path
// only: the read-side primitives never touch it, keeping ReadLock and
// ReadUnlock at their two plain atomic operations.
type syncStats struct {
	syncs     atomic.Int64
	spins     atomic.Int64
	rechecks  atomic.Int64
	yields    atomic.Int64
	sleeps    atomic.Int64
	leads     atomic.Int64
	shares    atomic.Int64
	expedited atomic.Int64
	highWater atomic.Int64

	// Stall/robustness accounting (see stall.go, ctx.go). activeStalls
	// is a gauge: raised once per Synchronize call that stalls, lowered
	// when the call finally completes.
	stalls       atomic.Int64
	activeStalls atomic.Int64
	abandoned    atomic.Int64

	// In-flight Synchronize registry, behind the grace-period-age gauge
	// (Stats.ActiveSyncs / OldestSyncAgeNanos). A short mutex-guarded
	// map: Synchronize is already a microseconds-scale operation (it
	// waits out readers), so two uncontended lock acquisitions are
	// noise, and the read side never touches it.
	activeMu   sync.Mutex
	active     map[uint64]time.Time // token → call entry time
	activeNext uint64

	wait     citrusstat.Histogram
	follower citrusstat.Histogram
}

// syncEnter registers one in-flight Synchronize call and returns the
// token syncExit takes. Every Synchronize entry pairs it with a
// deferred syncExit, so the registry always reflects exactly the calls
// currently between entry and return.
func (s *syncStats) syncEnter(start time.Time) uint64 {
	s.activeMu.Lock()
	defer s.activeMu.Unlock()
	if s.active == nil {
		s.active = make(map[uint64]time.Time)
	}
	s.activeNext++
	tok := s.activeNext
	s.active[tok] = start
	return tok
}

// syncExit removes one in-flight call from the registry.
func (s *syncStats) syncExit(tok uint64) {
	s.activeMu.Lock()
	delete(s.active, tok)
	s.activeMu.Unlock()
}

// syncAges reports the in-flight gauge pair: how many Synchronize calls
// are running and the age of the oldest. The linear scan is fine — the
// map holds one entry per goroutine currently inside Synchronize.
func (s *syncStats) syncAges(now time.Time) (active int64, oldest time.Duration) {
	s.activeMu.Lock()
	defer s.activeMu.Unlock()
	for _, start := range s.active {
		if age := now.Sub(start); age > oldest {
			oldest = age
		}
	}
	return int64(len(s.active)), oldest
}

// syncCost accumulates one Synchronize call's waiting effort, split by
// phase: busy spins before the first yield, then re-checks each paired
// with a Gosched (yields) or a brief sleep (sleeps). Kept as a plain
// struct so the wait loops touch no shared cache lines until the final
// record.
type syncCost struct {
	spins    int64
	rechecks int64
	yields   int64
	sleeps   int64
}

// noteReaders records a new registration count for the high-water mark.
// Callers hold the domain's registration mutex, so load+store does not
// race with other writers; Stats readers see it atomically.
func (s *syncStats) noteReaders(n int) {
	if int64(n) > s.highWater.Load() {
		s.highWater.Store(int64(n))
	}
}

// record accounts one completed Synchronize. led/shared/expedited
// classify how the call's grace periods were obtained (see Stats).
func (s *syncStats) record(start time.Time, c syncCost, led, shared, expedited bool) {
	s.syncs.Add(1)
	if c.spins != 0 {
		s.spins.Add(c.spins)
	}
	if c.rechecks != 0 {
		s.rechecks.Add(c.rechecks)
	}
	if c.yields != 0 {
		s.yields.Add(c.yields)
	}
	if c.sleeps != 0 {
		s.sleeps.Add(c.sleeps)
	}
	if led {
		s.leads.Add(1)
	}
	if shared {
		s.shares.Add(1)
	}
	if expedited {
		s.expedited.Add(1)
	}
	s.wait.Record(time.Since(start))
}

// followWait records one follower episode's duration.
func (s *syncStats) followWait(d time.Duration) { s.follower.Record(d) }

// snapshot builds the exported view.
func (s *syncStats) snapshot(readers int) Stats {
	active, oldest := s.syncAges(time.Now())
	return Stats{
		ActiveSyncs:        active,
		OldestSyncAgeNanos: oldest.Nanoseconds(),
		Synchronizes:       s.syncs.Load(),
		SyncSpins:          s.spins.Load(),
		SyncRechecks:       s.rechecks.Load(),
		SyncYields:         s.yields.Load(),
		SyncSleeps:         s.sleeps.Load(),
		SyncLeads:          s.leads.Load(),
		SyncShares:         s.shares.Load(),
		SyncExpedited:      s.expedited.Load(),
		Stalls:             s.stalls.Load(),
		ActiveStalls:       s.activeStalls.Load(),
		SyncAbandoned:      s.abandoned.Load(),
		Readers:            readers,
		ReaderHighWater:    s.highWater.Load(),
		SyncWait:           s.wait.Snapshot(),
		FollowerWait:       s.follower.Snapshot(),
	}
}
