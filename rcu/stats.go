package rcu

import (
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/citrusstat"
)

// Stats is a point-in-time snapshot of a flavor's grace-period activity.
// All counters are cumulative since the domain was created and
// monotonically non-decreasing, so two snapshots can be subtracted for
// interval rates.
//
// In Citrus terms (the paper's §4): Synchronizes counts the line-74
// synchronize_rcu calls — one per delete of a node with two children —
// and SyncWait is the distribution of what each of those waits cost,
// the quantity behind the paper's Figure 8 comparison of RCU flavors.
type Stats struct {
	// Synchronizes is the number of completed Synchronize calls (grace
	// periods driven to completion on this domain).
	Synchronizes int64 `json:"synchronizes"`

	// SyncSpins is the total number of busy-poll iterations synchronizers
	// spent re-reading reader state words; SyncYields is how many of
	// those turned into runtime.Gosched calls after spinsBeforeYield
	// consecutive re-reads. High yields relative to Synchronizes means
	// grace periods are routinely blocked on long-running readers.
	SyncSpins  int64 `json:"sync_spins"`
	SyncYields int64 `json:"sync_yields"`

	// Readers is the number of currently registered readers;
	// ReaderHighWater the maximum ever simultaneously registered.
	Readers         int   `json:"readers"`
	ReaderHighWater int64 `json:"reader_high_water"`

	// SyncWait is the wall-clock distribution of Synchronize calls
	// (entry to return, including any queueing a flavor imposes — for
	// ClassicDomain that includes waiting behind other synchronizers,
	// which is exactly the bottleneck the paper measures).
	SyncWait citrusstat.Snapshot `json:"sync_wait"`
}

// A StatsSource is a flavor that can report grace-period statistics.
// Domain, ClassicDomain and InstrumentedFlavor implement it; consumers
// (e.g. citrus.Tree.Stats) type-assert against it so flavors without
// accounting keep working.
type StatsSource interface {
	Stats() Stats
}

var (
	_ StatsSource = (*Domain)(nil)
	_ StatsSource = (*ClassicDomain)(nil)
	_ StatsSource = (*InstrumentedFlavor)(nil)
)

// syncStats is the accounting block embedded in both domain flavors.
// Everything here is written on the update (Synchronize/Register) path
// only: the read-side primitives never touch it, keeping ReadLock and
// ReadUnlock at their two plain atomic operations.
type syncStats struct {
	syncs     atomic.Int64
	spins     atomic.Int64
	yields    atomic.Int64
	highWater atomic.Int64
	wait      citrusstat.Histogram
}

// noteReaders records a new registration count for the high-water mark.
// Callers hold the domain's registration mutex, so load+store does not
// race with other writers; Stats readers see it atomically.
func (s *syncStats) noteReaders(n int) {
	if int64(n) > s.highWater.Load() {
		s.highWater.Store(int64(n))
	}
}

// record accounts one completed Synchronize.
func (s *syncStats) record(start time.Time, spins, yields int64) {
	s.syncs.Add(1)
	if spins != 0 {
		s.spins.Add(spins)
	}
	if yields != 0 {
		s.yields.Add(yields)
	}
	s.wait.Record(time.Since(start))
}

// snapshot builds the exported view.
func (s *syncStats) snapshot(readers int) Stats {
	return Stats{
		Synchronizes:    s.syncs.Load(),
		SyncSpins:       s.spins.Load(),
		SyncYields:      s.yields.Load(),
		Readers:         readers,
		ReaderHighWater: s.highWater.Load(),
		SyncWait:        s.wait.Snapshot(),
	}
}
