// Package rcu provides user-space read-copy-update (RCU) synchronization
// for goroutines.
//
// RCU is a synchronization mechanism that favors readers: a read-side
// critical section, delimited by ReadLock and ReadUnlock, never blocks and
// never writes to shared memory other than the reader's own registration
// slot. The burden of synchronization falls on updaters, which call
// Synchronize to wait for all *pre-existing* read-side critical sections to
// complete (the "grace period"). Read-side critical sections that begin
// after Synchronize was called are not waited for.
//
// The package provides two grace-period implementations ("flavors"):
//
//   - Domain is the scalable flavor introduced in §5 of Arbel & Attiya,
//     "Concurrent Updates with RCU: Search Tree as an Example" (PODC 2014).
//     Each registered reader owns a word that packs a critical-section
//     counter and an "inside critical section" flag. Synchronize snapshots
//     every reader's word and waits, per reader, until the word changes —
//     i.e. until the reader either leaves its section (flag cleared) or
//     starts a later one (counter advanced). Concurrent synchronizers do
//     not coordinate and acquire no locks, so update-heavy workloads scale.
//
//   - ClassicDomain mirrors the classic user-space RCU design of Desnoyers
//     et al. (IEEE TPDS 2012): a global grace-period counter and a global
//     mutex that serializes all Synchronize callers, which perform two
//     counter flips per grace period. It exists as the baseline for the
//     paper's Figure 8, which shows this design collapsing once many
//     updaters synchronize concurrently.
//
// Unlike kernel or C user-space RCU, this package is not needed for memory
// reclamation in Go — the garbage collector already guarantees that memory
// is not reused while a reader can still reach it. What Synchronize buys is
// *ordering*: an updater can ensure every reader that might have observed
// the old state of a data structure has finished before it takes a step
// that would confuse such readers. The Citrus tree uses exactly this to
// move a node's successor without producing false negatives in concurrent
// wait-free searches.
//
// # Usage
//
// Each goroutine that executes read-side critical sections registers once
// with a flavor and uses its own Reader:
//
//	dom := rcu.NewDomain()
//	r := dom.Register()
//	defer r.Unregister()
//
//	r.ReadLock()
//	// ... read shared data structures ...
//	r.ReadUnlock()
//
// An updater, typically after unpublishing a pointer, waits out readers:
//
//	dom.Synchronize()
//
// A Reader must not be shared between goroutines, read-side critical
// sections must not nest, and a goroutine must never call Synchronize while
// inside its own read-side critical section (self-deadlock).
package rcu
