package rcu

import (
	"log"
	"runtime"
	"sync/atomic"
)

// Leaked-handle detection — a debug aid for the stall detector. A
// reader handle that is registered but never unregistered pins every
// future grace period the moment its goroutine parks inside a critical
// section, and even outside one it makes every Synchronize scan it
// forever. Because the domain's registry itself keeps the *Handle
// reachable, a leaked handle is invisible to the garbage collector — so
// the detector attaches a finalizer to a small guard object that only
// the caller's wrapper references: when the caller drops its reader
// without Unregister, the wrapper and guard become unreachable, the
// finalizer runs on the next GC cycles, and the leak is reported with
// the registration site.
//
// Off by default; enable with SetLeakDetection during development and
// soak tests. Detection is heuristic by nature (finalizers run at the
// GC's leisure) and adds one small allocation per Register, so it is
// not meant for hot production paths.

// A LeakReport describes one reader handle that was garbage-collected
// while still registered — i.e. leaked without Unregister. The handle
// remains registered (the registry still references it), so every
// subsequent grace period keeps scanning it; the report exists so the
// leak can be found and fixed at its source.
type LeakReport struct {
	// ID is the leaked handle's domain-unique reader id.
	ID uint64 `json:"id"`

	// Site is the registration call site ("file:line (function)"),
	// captured at Register time.
	Site string `json:"site"`
}

// leakControl is the leak-detection configuration block on Domain.
type leakControl struct {
	enabled atomic.Bool
	handler atomic.Pointer[func(LeakReport)]
	leaks   atomic.Int64
}

// leakGuard is the finalizer carrier: referenced only by the
// leakGuardedHandle the caller holds, never by the domain's registry.
type leakGuard struct {
	id   uint64
	site string
}

// leakGuardedHandle wraps a registered *Handle together with its guard.
// All Reader methods promote from the embedded handle; Unregister
// additionally disarms the finalizer.
type leakGuardedHandle struct {
	*Handle
	guard *leakGuard
}

// Unregister disarms the leak finalizer and removes the handle from its
// domain; see Handle.Unregister for the base semantics.
func (h *leakGuardedHandle) Unregister() {
	runtime.SetFinalizer(h.guard, nil)
	h.Handle.Unregister()
}

// SetLeakDetection toggles leaked-handle detection (off by default).
// While enabled, Register returns readers carrying a finalizer-armed
// guard: dropping such a reader without Unregister logs a warning — or
// calls the SetLeakHandler callback — with the handle id and its
// registration site, once the garbage collector notices the loss.
// Registration-site capture is implied while detection is on. Readers
// registered while detection was off are not retrofitted.
func (d *Domain) SetLeakDetection(on bool) { d.leak.enabled.Store(on) }

// SetLeakHandler installs fn as the leak-report sink (nil restores the
// default, which logs through the standard logger). fn runs on a
// finalizer goroutine; it must not block and must be safe for
// concurrent use.
func (d *Domain) SetLeakHandler(fn func(LeakReport)) {
	if fn == nil {
		d.leak.handler.Store(nil)
		return
	}
	d.leak.handler.Store(&fn)
}

// LeakedHandles reports how many registered readers have been detected
// as leaked (dropped without Unregister) since the domain was created.
// Always 0 while SetLeakDetection is off.
func (d *Domain) LeakedHandles() int64 { return d.leak.leaks.Load() }

// guardLeak wraps a freshly registered handle with a finalizer-armed
// guard; called by Register when leak detection is enabled.
func (d *Domain) guardLeak(h *Handle) Reader {
	site := h.site
	if site == "" {
		site = registrationSite()
	}
	g := &leakGuard{id: h.id, site: site}
	runtime.SetFinalizer(g, func(g *leakGuard) {
		d.leak.leaks.Add(1)
		rep := LeakReport{ID: g.id, Site: g.site}
		if fn := d.leak.handler.Load(); fn != nil {
			(*fn)(rep)
			return
		}
		log.Printf("rcu: leaked reader handle %d registered at %s was dropped without Unregister; it stays registered and every grace period keeps scanning it", rep.ID, rep.Site)
	})
	return &leakGuardedHandle{Handle: h, guard: g}
}
