package rcu

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestLeakDetectorReportsDroppedHandle: a reader registered under leak
// detection and dropped without Unregister is reported — with its id
// and registration site — once the collector notices the loss.
func TestLeakDetectorReportsDroppedHandle(t *testing.T) {
	d := NewDomain()
	d.SetLeakDetection(true)
	var mu sync.Mutex
	var reports []LeakReport
	d.SetLeakHandler(func(r LeakReport) {
		mu.Lock()
		reports = append(reports, r)
		mu.Unlock()
	})

	var id uint64
	func() {
		r := d.Register()
		id = r.(interface{ ID() uint64 }).ID()
		r.ReadLock()
		r.ReadUnlock()
		// ...and the handle goes out of scope without Unregister.
	}()

	// Finalizers need GC cycles to notice; two runs settle the common
	// case, the loop absorbs collector scheduling.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		runtime.GC()
		mu.Lock()
		n := len(reports)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no leak report within 10s of dropping a registered handle")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if reports[0].ID != id {
		t.Fatalf("leak report names handle %d, want %d", reports[0].ID, id)
	}
	if reports[0].Site == "" {
		t.Fatal("leak report has no registration site")
	}
	if d.LeakedHandles() == 0 {
		t.Fatal("LeakedHandles did not count the leak")
	}
}

// TestLeakDetectorUnregisterDisarms: a properly unregistered handle is
// never reported, and a domain with detection off guards nothing.
func TestLeakDetectorUnregisterDisarms(t *testing.T) {
	d := NewDomain()
	d.SetLeakDetection(true)
	d.SetLeakHandler(func(r LeakReport) {
		t.Errorf("leak reported for an unregistered handle: %+v", r)
	})
	func() {
		r := d.Register()
		r.ReadLock()
		r.ReadUnlock()
		r.Unregister()
	}()
	d.SetLeakDetection(false)
	func() {
		r := d.Register() // detection off: plain handle, no guard
		_ = r
	}()
	for i := 0; i < 5; i++ {
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	if n := d.LeakedHandles(); n != 0 {
		t.Fatalf("LeakedHandles = %d, want 0", n)
	}
}
