package rcu

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestSynchronizeCtxReturnsWithinDeadline pins the acceptance bound on
// both flavors: with a reader parked in its critical section, a
// SynchronizeCtx with a deadline returns within 2× that deadline, with
// an error matching both ErrGracePeriodTimeout and the context's own
// error — and the abandoned grace period still completes in the
// background once the reader leaves, leaving the domain fully usable.
func TestSynchronizeCtxReturnsWithinDeadline(t *testing.T) {
	for name, d := range stallDomains() {
		t.Run(name, func(t *testing.T) {
			parked := d.Register()
			defer parked.Unregister()
			parked.ReadLock()

			const deadline = 50 * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			start := time.Now()
			err := d.(ContextSynchronizer).SynchronizeCtx(ctx)
			waited := time.Since(start)
			if err == nil {
				t.Fatal("SynchronizeCtx returned nil with a reader parked")
			}
			if waited > 2*deadline {
				t.Fatalf("SynchronizeCtx returned after %v, want ≤ %v", waited, 2*deadline)
			}
			if !errors.Is(err, ErrGracePeriodTimeout) {
				t.Fatalf("error %v does not match ErrGracePeriodTimeout", err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error %v does not match context.DeadlineExceeded", err)
			}
			if got := d.Stats().SyncAbandoned; got != 1 {
				t.Fatalf("SyncAbandoned = %d, want 1", got)
			}

			// Release the reader: the background grace period completes and
			// an ordinary Synchronize works.
			parked.ReadUnlock()
			syncDone := make(chan struct{})
			go func() {
				d.Synchronize()
				close(syncDone)
			}()
			select {
			case <-syncDone:
			case <-time.After(10 * time.Second):
				t.Fatal("Synchronize after an abandoned wait did not complete")
			}
		})
	}
}

// TestSynchronizeCtxNoGoroutineLeak: abandoned waits park one goroutine
// each only until their grace period completes; none survive it.
func TestSynchronizeCtxNoGoroutineLeak(t *testing.T) {
	d := NewDomain()
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		parked := d.Register()
		parked.ReadLock()
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		if err := d.SynchronizeCtx(ctx); err == nil {
			t.Fatal("SynchronizeCtx returned nil with a reader parked")
		}
		cancel()
		parked.ReadUnlock()
		parked.Unregister()
	}
	d.Synchronize() // all background grace periods are behind this one
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked across abandoned waits: %d before, %d after", before, after)
	}
}

// TestSynchronizeCtxCompletesNormally: with no blocking readers the
// bounded wait is just a grace period — nil error, nothing abandoned.
func TestSynchronizeCtxCompletesNormally(t *testing.T) {
	for name, d := range stallDomains() {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := d.(ContextSynchronizer).SynchronizeCtx(ctx); err != nil {
				t.Fatalf("SynchronizeCtx with no readers: %v", err)
			}
			if got := d.Stats().SyncAbandoned; got != 0 {
				t.Fatalf("SyncAbandoned = %d after a completed wait", got)
			}
		})
	}
}

// TestSynchronizeCtxBackgroundContext: a context that can never be done
// degrades to a plain Synchronize.
func TestSynchronizeCtxBackgroundContext(t *testing.T) {
	d := NewDomain()
	if err := d.SynchronizeCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Synchronizes == 0 {
		t.Fatal("the degenerate path did not run a real Synchronize")
	}
}

// TestSynchronizeCtxAlreadyCancelled: a cancelled context fails fast
// without paying a grace period, matching context.Canceled.
func TestSynchronizeCtxAlreadyCancelled(t *testing.T) {
	d := NewDomain()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := d.SynchronizeCtx(ctx)
	if !errors.Is(err, ErrGracePeriodTimeout) || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled SynchronizeCtx error = %v", err)
	}
}

// plainFlavor hides a Domain's ContextSynchronizer implementation, so
// SynchronizeContext must take its generic BeginSynchronize fallback.
type plainFlavor struct{ d *Domain }

func (p plainFlavor) Register() Reader { return p.d.Register() }
func (p plainFlavor) Synchronize()     { p.d.Synchronize() }

// TestSynchronizeContextGenericFallback covers the package-level entry
// point over a flavor without native context support: completion,
// timeout, and the no-deadline degenerate path.
func TestSynchronizeContextGenericFallback(t *testing.T) {
	f := plainFlavor{NewDomain()}
	if _, ok := Flavor(f).(ContextSynchronizer); ok {
		t.Fatal("test setup: plainFlavor must not implement ContextSynchronizer")
	}
	if err := SynchronizeContext(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := SynchronizeContext(ctx, f); err != nil {
		t.Fatal(err)
	}
	cancel()

	parked := f.Register()
	defer parked.Unregister()
	parked.ReadLock()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	err := SynchronizeContext(ctx2, f)
	if !errors.Is(err, ErrGracePeriodTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("generic fallback timeout error = %v", err)
	}
	parked.ReadUnlock()
}

// TestBeginSynchronize: the channel closes exactly when the grace
// period completes — not before the blocking reader leaves.
func TestBeginSynchronize(t *testing.T) {
	d := NewDomain()
	parked := d.Register()
	defer parked.Unregister()
	parked.ReadLock()
	done := BeginSynchronize(d)
	select {
	case <-done:
		t.Fatal("grace period completed under a parked reader")
	case <-time.After(20 * time.Millisecond):
	}
	parked.ReadUnlock()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("grace period did not complete after the reader left")
	}
}

// TestHandleSynchronizeCtx covers the handle-level conveniences on both
// flavors, including the use-after-Unregister panic.
func TestHandleSynchronizeCtx(t *testing.T) {
	for name, d := range stallDomains() {
		t.Run(name, func(t *testing.T) {
			h := d.Register().(interface {
				SynchronizeCtx(ctx context.Context) error
			})
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := h.SynchronizeCtx(ctx); err != nil {
				t.Fatal(err)
			}
			h.(Reader).Unregister()
			defer func() {
				if recover() == nil {
					t.Fatal("SynchronizeCtx after Unregister did not panic")
				}
			}()
			h.SynchronizeCtx(ctx) //nolint:errcheck // must panic
		})
	}
}
