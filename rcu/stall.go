package rcu

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/citrustrace"
)

// Stall detection — the user-space analog of the kernel's RCU CPU stall
// warnings. A grace period cannot complete while any pre-existing reader
// sits inside its read-side critical section, so a single descheduled,
// deadlocked, or leaked reader handle silently hangs every updater that
// needs a Synchronize. The stall detector turns that silent hang into a
// structured report: a Synchronize call whose wait exceeds the
// configured threshold fires a StallReport naming the reader handles it
// is blocked on, bumps the Stalls counter in Stats, raises the
// ActiveStalls gauge until the call completes, and — when a tracer is
// attached — records an EvStall span into the flight recorder.
//
// Detection is passive: it never unblocks anything (doing so would
// break the RCU property). It exists so the layer above can degrade
// gracefully — shed load, flip a health check, page an operator —
// instead of hanging or OOMing. See docs/RCU.md "Robustness".

// A StallReport describes one detected grace-period stall: a
// Synchronize call that has been waiting longer than the domain's stall
// threshold, together with the readers it is blocked on.
//
// Reports fire from inside the stalled Synchronize call, on the calling
// goroutine, with no domain locks held. For a wait that keeps growing,
// reports re-fire with doubling intervals (threshold, 2×, 4×, …), so a
// long stall produces a handful of reports, not a flood.
type StallReport struct {
	// Flavor names the reporting domain flavor: "scalable" (Domain),
	// "classic" (ClassicDomain) or "ebr" (EpochDomain).
	Flavor string `json:"flavor"`

	// Waited is how long the Synchronize call had been waiting when the
	// report fired, measured from call entry.
	Waited time.Duration `json:"waited"`

	// Readers lists the readers the grace period is blocked on: those
	// still inside a read-side critical section that predates the call.
	// For a follower piggybacking on another caller's grace-period scan
	// (Domain combining) the list is the currently active readers — a
	// superset of the precise blockers, which only the leader knows.
	Readers []StalledReader `json:"readers"`
}

// String renders the report in one log-friendly line.
func (r StallReport) String() string {
	ids := make([]string, len(r.Readers))
	for i, sr := range r.Readers {
		ids[i] = sr.String()
	}
	return fmt.Sprintf("rcu: %s grace period stalled %v waiting on reader(s) [%s]",
		r.Flavor, r.Waited.Round(time.Millisecond), strings.Join(ids, ", "))
}

// A StalledReader identifies one reader a stalled grace period is
// blocked on.
type StalledReader struct {
	// ID is the reader handle's domain-unique id (Handle.ID /
	// ClassicHandle.ID), matching the reader ids in trace events.
	ID uint64 `json:"id"`

	// Site is the reader's registration call site, captured when the
	// domain's SetSiteCapture is enabled; "" otherwise.
	Site string `json:"site,omitempty"`
}

// String renders "id" or "id (site)".
func (r StalledReader) String() string {
	if r.Site == "" {
		return fmt.Sprintf("%d", r.ID)
	}
	return fmt.Sprintf("%d (%s)", r.ID, r.Site)
}

// StallControl is the stall-detection configuration surface every
// domain flavor exposes. Callers holding a flavor behind the Flavor
// interface (a forest shard, the kvserver's store) type-assert against
// it to arm detection without knowing the concrete domain type.
type StallControl interface {
	// SetStallTimeout arms the grace-period stall detector; see
	// Domain.SetStallTimeout.
	SetStallTimeout(timeout time.Duration)

	// SetStallHandler installs the stall-report sink; see
	// Domain.SetStallHandler.
	SetStallHandler(fn func(StallReport))

	// SetSiteCapture toggles registration-site capture; see
	// Domain.SetSiteCapture.
	SetSiteCapture(on bool)
}

var (
	_ StallControl = (*Domain)(nil)
	_ StallControl = (*ClassicDomain)(nil)
	_ StallControl = (*EpochDomain)(nil)
)

// stallControl is the stall-detection configuration block embedded in
// the domain flavors. All fields are hot-toggle safe.
type stallControl struct {
	timeout atomic.Int64 // ns; 0 disables detection
	handler atomic.Pointer[func(StallReport)]
	capture atomic.Bool // capture registration sites on Register
}

// armed reports the configured threshold, 0 when detection is off.
func (c *stallControl) armed() time.Duration {
	return time.Duration(c.timeout.Load())
}

// stallWatch tracks one Synchronize call's progress toward (and past)
// the stall threshold. It lives on the caller's stack; next holds the
// elapsed time at which the next report fires and doubles after each
// one.
type stallWatch struct {
	start time.Time
	next  time.Duration // 0: detection disabled for this call
	fired bool          // at least one report fired (ActiveStalls was raised)
}

// newStallWatch arms a watch for a Synchronize call that entered at
// start. With detection disabled the watch is inert: due never fires.
func (c *stallControl) newStallWatch(start time.Time) stallWatch {
	return stallWatch{start: start, next: c.armed()}
}

// due reports whether the call has crossed its next report threshold;
// callers invoke it only from the slow (sleeping) phase of a wait loop,
// so the time read costs nothing on healthy grace periods.
func (w *stallWatch) due() bool {
	return w.next > 0 && time.Since(w.start) >= w.next
}

// fire emits one stall report through the domain's handler, stats and
// tracer, then re-arms the watch with a doubled interval.
func (w *stallWatch) fire(c *stallControl, s *syncStats, span *citrustrace.SyncSpan, flavor string, readers []StalledReader) {
	waited := time.Since(w.start)
	w.next *= 2
	if !w.fired {
		w.fired = true
		s.activeStalls.Add(1)
	}
	s.stalls.Add(1)
	if span != nil {
		var first uint64
		if len(readers) > 0 {
			first = readers[0].ID
		}
		span.Stall(first, len(readers))
	}
	if h := c.handler.Load(); h != nil {
		(*h)(StallReport{Flavor: flavor, Waited: waited, Readers: readers})
	}
}

// settle lowers the ActiveStalls gauge if the watch ever fired; every
// Synchronize that armed a watch calls it on the way out.
func (w *stallWatch) settle(s *syncStats) {
	if w.fired {
		s.activeStalls.Add(-1)
	}
}

// registrationSite captures the call site that registered a reader: the
// first frame outside this package, formatted "file:line (function)".
// Used by SetSiteCapture (stall attribution) and SetLeakDetection.
func registrationSite() string {
	var pcs [8]uintptr
	n := runtime.Callers(3, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		f, more := frames.Next()
		if f.Function == "" {
			break
		}
		if !strings.Contains(f.Function, "github.com/go-citrus/citrus/rcu.") {
			return fmt.Sprintf("%s:%d (%s)", f.File, f.Line, f.Function)
		}
		if !more {
			break
		}
	}
	return "unknown"
}
