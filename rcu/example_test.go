package rcu_test

import (
	"fmt"
	"sync/atomic"

	"github.com/go-citrus/citrus/rcu"
)

// The canonical RCU pattern: readers traverse a published object inside
// a read-side critical section; the writer swaps the pointer and waits a
// grace period before doing anything a lingering reader could observe.
func ExampleDomain() {
	type config struct{ limit int }

	dom := rcu.NewDomain()
	var current atomic.Pointer[config]
	current.Store(&config{limit: 10})

	// Reader side (normally another goroutine).
	reader := dom.Register()
	reader.ReadLock()
	cfg := current.Load()
	fmt.Println("reader sees limit", cfg.limit)
	reader.ReadUnlock()

	// Writer side: unpublish, wait for pre-existing readers, recycle.
	old := current.Swap(&config{limit: 20})
	dom.Synchronize()
	old.limit = -1 // safe: no reader can still hold `old`

	reader.ReadLock()
	fmt.Println("reader sees limit", current.Load().limit)
	reader.ReadUnlock()
	reader.Unregister()
	// Output:
	// reader sees limit 10
	// reader sees limit 20
}

// Reclaimer is the asynchronous variant: updaters hand cleanup to Defer
// instead of blocking in Synchronize themselves.
func ExampleReclaimer() {
	dom := rcu.NewDomain()
	rec := rcu.NewReclaimer(dom)

	var retired atomic.Int32
	for i := 0; i < 3; i++ {
		rec.Defer(func() { retired.Add(1) })
	}
	rec.Barrier() // rcu_barrier: all previously deferred callbacks ran
	fmt.Println("retired:", retired.Load())

	rec.Close()
	// Output:
	// retired: 3
}
