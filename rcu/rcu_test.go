package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flavors returns one fresh instance of every Flavor, keyed by name, so
// semantic tests run against both implementations.
func flavors() map[string]Flavor {
	return map[string]Flavor{
		"Domain":        NewDomain(),
		"ClassicDomain": NewClassicDomain(),
		"EpochDomain":   NewEpochDomain(),
	}
}

func TestSynchronizeEmptyDomain(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			// Must return immediately with no registered readers.
			f.Synchronize()
		})
	}
}

func TestSynchronizeNoActiveReaders(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			r := f.Register()
			defer r.Unregister()
			r.ReadLock()
			r.ReadUnlock()
			f.Synchronize() // idle reader must not be waited for
		})
	}
}

// TestSynchronizeWaitsForPreexistingReader is the core RCU property: a
// read-side critical section that started before Synchronize must complete
// before Synchronize returns.
func TestSynchronizeWaitsForPreexistingReader(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			r := f.Register()
			defer r.Unregister()

			inCS := make(chan struct{})
			release := make(chan struct{})
			var readerDone atomic.Bool
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.ReadLock()
				close(inCS)
				<-release
				readerDone.Store(true)
				r.ReadUnlock()
			}()

			<-inCS
			syncDone := make(chan struct{})
			go func() {
				f.Synchronize()
				close(syncDone)
			}()

			// Synchronize must not return while the reader is inside.
			select {
			case <-syncDone:
				t.Fatal("Synchronize returned while a pre-existing reader was in its critical section")
			case <-time.After(20 * time.Millisecond):
			}

			close(release)
			<-syncDone
			if !readerDone.Load() {
				t.Fatal("Synchronize returned before the pre-existing critical section completed")
			}
			wg.Wait()
		})
	}
}

// TestSynchronizeIgnoresLaterReader checks the other half of the RCU
// contract: a reader that enters a new critical section after Synchronize
// begins must not delay it. The reader here leaves its pre-existing section
// and immediately enters (and stays in) a new one.
func TestSynchronizeIgnoresLaterReader(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			r := f.Register()
			defer func() {
				r.ReadUnlock()
				r.Unregister()
			}()

			inCS := make(chan struct{})
			swapped := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.ReadLock()
				close(inCS)
				<-swapped // synchronizer is waiting on us
				r.ReadUnlock()
				r.ReadLock() // new section, started after Synchronize
			}()

			<-inCS
			syncDone := make(chan struct{})
			go func() {
				f.Synchronize()
				close(syncDone)
			}()
			// Give Synchronize time to take its snapshot.
			time.Sleep(10 * time.Millisecond)
			close(swapped)
			wg.Wait()

			select {
			case <-syncDone:
			case <-time.After(5 * time.Second):
				t.Fatal("Synchronize blocked on a critical section that started after it")
			}
		})
	}
}

func TestConcurrentSynchronizers(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			const (
				readers = 4
				writers = 4
				iters   = 200
			)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < readers; i++ {
				r := f.Register()
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer r.Unregister()
					for {
						select {
						case <-stop:
							return
						default:
						}
						r.ReadLock()
						r.ReadUnlock()
					}
				}()
			}
			var syncs sync.WaitGroup
			for i := 0; i < writers; i++ {
				syncs.Add(1)
				go func() {
					defer syncs.Done()
					for j := 0; j < iters; j++ {
						f.Synchronize()
					}
				}()
			}
			syncs.Wait()
			close(stop)
			wg.Wait()
		})
	}
}

// TestGracePeriodOrdering drives the canonical RCU publication pattern: a
// writer unpublishes a pointer, synchronizes, and only then invalidates the
// old object. Readers that still hold the old object must be done by then.
func TestGracePeriodOrdering(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			type object struct {
				valid atomic.Bool
			}
			var ptr atomic.Pointer[object]
			first := &object{}
			first.valid.Store(true)
			ptr.Store(first)

			const nReaders = 4
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var violations atomic.Int64
			for i := 0; i < nReaders; i++ {
				r := f.Register()
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer r.Unregister()
					for {
						select {
						case <-stop:
							return
						default:
						}
						r.ReadLock()
						o := ptr.Load()
						if !o.valid.Load() {
							violations.Add(1)
						}
						r.ReadUnlock()
					}
				}()
			}

			w := f.Register()
			for i := 0; i < 300; i++ {
				next := &object{}
				next.valid.Store(true)
				old := ptr.Swap(next)
				w.Synchronize()
				// All readers that could have loaded old are done with it.
				old.valid.Store(false)
			}
			w.Unregister()
			close(stop)
			wg.Wait()
			if n := violations.Load(); n != 0 {
				t.Fatalf("readers observed %d invalidated objects inside critical sections", n)
			}
		})
	}
}

func TestRegisterUnregister(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			count := func() int {
				switch d := f.(type) {
				case *Domain:
					return d.Readers()
				case *ClassicDomain:
					return d.Readers()
				case *EpochDomain:
					return d.Readers()
				}
				t.Fatal("unknown flavor")
				return -1
			}
			var hs []Reader
			for i := 0; i < 10; i++ {
				hs = append(hs, f.Register())
			}
			if got := count(); got != 10 {
				t.Fatalf("Readers() = %d, want 10", got)
			}
			for i, h := range hs {
				h.Unregister()
				if got := count(); got != 10-i-1 {
					t.Fatalf("Readers() = %d after %d unregisters, want %d", got, i+1, 10-i-1)
				}
			}
			// Unregistered readers no longer affect grace periods.
			f.Synchronize()
		})
	}
}

func TestConcurrentRegistration(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			const n = 32
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := f.Register()
					for j := 0; j < 50; j++ {
						r.ReadLock()
						r.ReadUnlock()
					}
					f.Synchronize()
					r.Unregister()
				}()
			}
			wg.Wait()
		})
	}
}

func TestNestedReadLockPanics(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			if _, ok := f.(*EpochDomain); ok {
				// EBR supports nested sections by design; see
				// TestEpochNestedReadLock.
				t.Skip("EpochDomain permits nested ReadLock")
			}
			r := f.Register()
			defer func() {
				if recover() == nil {
					t.Fatal("nested ReadLock did not panic")
				}
				r.ReadUnlock()
				r.Unregister()
			}()
			r.ReadLock()
			r.ReadLock()
		})
	}
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			r := f.Register()
			defer func() {
				if recover() == nil {
					t.Fatal("ReadUnlock outside a critical section did not panic")
				}
				r.Unregister()
			}()
			r.ReadUnlock()
		})
	}
}

func TestUnregisterInsideCSPanics(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			r := f.Register()
			defer func() {
				if recover() == nil {
					t.Fatal("Unregister inside a critical section did not panic")
				}
				r.ReadUnlock()
				r.Unregister()
			}()
			r.ReadLock()
			r.Unregister()
		})
	}
}

// TestHandleStateEncoding pins down the counter<<1|flag encoding of the
// scalable flavor, which Synchronize's change-detection relies on.
func TestHandleStateEncoding(t *testing.T) {
	d := NewDomain()
	h := d.register()
	if got := h.state.Load(); got != 0 {
		t.Fatalf("initial state = %d, want 0", got)
	}
	for i := uint64(1); i <= 3; i++ {
		h.ReadLock()
		if got := h.state.Load(); got != i<<1|1 {
			t.Fatalf("state after ReadLock %d = %#x, want %#x", i, got, i<<1|1)
		}
		h.ReadUnlock()
		if got := h.state.Load(); got != i<<1 {
			t.Fatalf("state after ReadUnlock %d = %#x, want %#x", i, got, i<<1)
		}
	}
	h.Unregister()
}

// TestClassicSlotEncoding pins down the classic flavor's slot protocol:
// zero outside critical sections, the observed epoch inside.
func TestClassicSlotEncoding(t *testing.T) {
	d := NewClassicDomain()
	h := d.register()
	if got := h.slot.Load(); got != 0 {
		t.Fatalf("initial slot = %d, want 0", got)
	}
	h.ReadLock()
	if got, gp := h.slot.Load(), d.gp.Load(); got != gp {
		t.Fatalf("slot inside CS = %d, want current epoch %d", got, gp)
	}
	h.ReadUnlock()
	d.Synchronize()
	h.ReadLock()
	if got, gp := h.slot.Load(), d.gp.Load(); got != gp || gp < 2 {
		t.Fatalf("slot = %d, epoch = %d; want slot==epoch and epoch advanced", got, gp)
	}
	h.ReadUnlock()
	h.Unregister()
}

func TestZeroValueDomainsUsable(t *testing.T) {
	var d Domain
	r := d.Register()
	r.ReadLock()
	r.ReadUnlock()
	d.Synchronize()
	r.Unregister()

	var cd ClassicDomain
	cr := cd.Register()
	cr.ReadLock()
	cr.ReadUnlock()
	cd.Synchronize()
	cr.Unregister()

	var ed EpochDomain
	er := ed.Register()
	er.ReadLock()
	er.ReadUnlock()
	ed.Synchronize()
	er.Unregister()
}
