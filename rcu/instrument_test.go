package rcu

import (
	"testing"
	"time"
)

func TestInstrumentCountsSynchronize(t *testing.T) {
	f := Instrument(NewDomain())
	if f.Syncs() != 0 || f.SyncTime() != 0 || f.MeanSync() != 0 {
		t.Fatal("fresh instrumentation not zeroed")
	}
	for i := 0; i < 5; i++ {
		f.Synchronize()
	}
	if got := f.Syncs(); got != 5 {
		t.Fatalf("Syncs() = %d, want 5", got)
	}
	if f.MeanSync() < 0 {
		t.Fatal("negative mean")
	}
}

func TestInstrumentReaderSynchronizeAccounted(t *testing.T) {
	f := Instrument(NewDomain())
	r := f.Register()
	defer r.Unregister()
	r.Synchronize() // must route through the instrumented flavor
	if got := f.Syncs(); got != 1 {
		t.Fatalf("Syncs() = %d after reader Synchronize, want 1", got)
	}
	// Read-side primitives stay functional (pass-through).
	r.ReadLock()
	r.ReadUnlock()
}

func TestInstrumentMeasuresWaiting(t *testing.T) {
	dom := NewDomain()
	f := Instrument(dom)
	r := dom.Register()
	defer r.Unregister()
	r.ReadLock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Synchronize()
	}()
	time.Sleep(30 * time.Millisecond)
	r.ReadUnlock()
	<-done
	if got := f.SyncTime(); got < 20*time.Millisecond {
		t.Fatalf("SyncTime() = %v, want ≥ the blocked interval", got)
	}
}

// TestNoSyncDoesNotWait: the mutation wrapper's Synchronize (flavor- and
// reader-level) must return immediately even while a reader is inside a
// critical section — that is the property it deliberately breaks — while
// the wrapped domain, asked directly, still waits.
func TestNoSyncDoesNotWait(t *testing.T) {
	dom := NewDomain()
	f := NoSync(dom)
	r := f.Register()
	r.ReadLock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Synchronize() // must not wait for the active reader
		r.Synchronize() // ditto via the wrapped reader
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("NoSync Synchronize blocked on an active reader")
	}

	// The underlying domain is unaffected: it still waits.
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		dom.Synchronize()
	}()
	select {
	case <-blocked:
		t.Fatal("the wrapped domain ignored an active reader")
	case <-time.After(20 * time.Millisecond):
	}
	r.ReadUnlock()
	<-blocked
	r.Unregister()
}
