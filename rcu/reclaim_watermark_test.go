package rcu

import (
	"sync/atomic"
	"testing"
	"time"
)

// parkReader registers a reader on d, enters its critical section, and
// returns a release func; while parked, every grace period on d blocks.
func parkReader(t *testing.T, d Flavor) (release func()) {
	t.Helper()
	r := d.Register()
	r.ReadLock()
	var released atomic.Bool
	t.Cleanup(func() {
		if !released.Load() {
			r.ReadUnlock()
		}
		r.Unregister()
	})
	return func() {
		released.Store(true)
		r.ReadUnlock()
	}
}

// TestReclaimerHighWatermarkExpedites: crossing the high watermark arms
// exactly one expedited drain per crossing — not one per enqueue above
// it — and a second crossing counts again.
func TestReclaimerHighWatermarkExpedites(t *testing.T) {
	d := NewDomain()
	r := NewReclaimer(d, WithHighWatermark(8))
	defer r.Close()

	flood := func() {
		release := parkReader(t, d)
		for i := 0; i < 100; i++ {
			r.Defer(func() {})
		}
		release()
		r.Barrier()
	}
	flood()
	if got := r.Stats().ExpeditedDrains; got != 1 {
		t.Fatalf("ExpeditedDrains = %d after one crossing, want 1", got)
	}
	flood()
	s := r.Stats()
	if s.ExpeditedDrains != 2 {
		t.Fatalf("ExpeditedDrains = %d after two crossings, want 2", s.ExpeditedDrains)
	}
	if s.QueueDepth != 0 || s.Executed != s.Deferred {
		t.Fatalf("queue did not drain: %+v", s)
	}
}

// TestReclaimerHardCapShedsFlood pins the acceptance scenario: a flood
// of deferrals behind a parked reader never grows the queue past the
// hard cap; the excess is dropped — counted, never silent — and every
// accepted callback still runs after the reader leaves.
func TestReclaimerHardCapShedsFlood(t *testing.T) {
	const (
		hardCap = 256
		flood   = 10_000
	)
	d := NewDomain()
	r := NewReclaimer(d,
		WithHighWatermark(64),
		WithHardCap(hardCap),
		WithBackpressure(0)) // drop immediately: the flood must stay fast
	defer r.Close()

	release := parkReader(t, d)
	var ran atomic.Int64
	for i := 0; i < flood; i++ {
		r.Defer(func() { ran.Add(1) })
	}
	if r.TryDefer(func() { ran.Add(1) }) {
		t.Fatal("TryDefer succeeded at the hard cap under a parked reader")
	}

	s := r.Stats()
	if s.QueueHighWater > hardCap {
		t.Fatalf("queue high water %d exceeds the hard cap %d", s.QueueHighWater, hardCap)
	}
	if s.Dropped == 0 {
		t.Fatal("the flood dropped nothing despite the cap")
	}
	if s.Deferred+s.Dropped != flood+1 {
		t.Fatalf("accepted %d + dropped %d ≠ %d attempts", s.Deferred, s.Dropped, flood+1)
	}
	if s.ExpeditedDrains == 0 {
		t.Fatal("the flood never armed an expedited drain")
	}

	release()
	r.Barrier()
	s = r.Stats()
	if got := ran.Load(); got != s.Deferred-1 { // -1: the Barrier callback
		t.Fatalf("%d callbacks ran, %d were accepted", got, s.Deferred-1)
	}
	if s.QueueDepth != 0 {
		t.Fatalf("QueueDepth = %d after Barrier", s.QueueDepth)
	}
}

// TestReclaimerBackpressureWaitsForRoom: at the cap, an enqueue blocks
// for the backpressure window instead of dropping, and is accepted when
// the drain makes room within it.
func TestReclaimerBackpressureWaitsForRoom(t *testing.T) {
	d := NewDomain()
	r := NewReclaimer(d, WithHardCap(1), WithBackpressure(10*time.Second))
	defer r.Close()

	release := parkReader(t, d)
	r.Defer(func() {}) // fills the queue to its cap of 1
	go func() {
		time.Sleep(20 * time.Millisecond)
		release() // the drain completes, making room mid-backpressure
	}()
	var second atomic.Bool
	if !r.TryDefer(func() { second.Store(true) }) {
		t.Fatal("backpressured TryDefer dropped despite room appearing within the window")
	}
	r.Barrier()
	if !second.Load() {
		t.Fatal("the backpressure-accepted callback never ran")
	}
	if s := r.Stats(); s.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", s.Dropped)
	}
}

// TestReclaimerBarrierBypassesCap: Barrier must complete even when the
// queue sits exactly at its hard cap — its callback bypasses the bound,
// otherwise Barrier would deadlock against a full queue.
func TestReclaimerBarrierBypassesCap(t *testing.T) {
	d := NewDomain()
	r := NewReclaimer(d, WithHardCap(4), WithBackpressure(0))
	defer r.Close()
	for i := 0; i < 10; i++ {
		r.TryDefer(func() {})
	}
	done := make(chan struct{})
	go func() {
		r.Barrier()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Barrier deadlocked against a capped queue")
	}
}

// TestReclaimerDrainBatchBounds: the normal drain pays one grace period
// per bounded batch, so a backlog of N with batch B costs ~N/B grace
// periods — not one, not N.
func TestReclaimerDrainBatchBounds(t *testing.T) {
	d := NewDomain()
	r := NewReclaimer(d, WithDrainBatch(10))
	defer r.Close()

	// Queue 100 callbacks behind a parked reader so the drain sees the
	// whole backlog at once, then release and flush.
	release := parkReader(t, d)
	for i := 0; i < 100; i++ {
		r.Defer(func() {})
	}
	release()
	r.Barrier()
	s := r.Stats()
	if s.GracePeriods < 100/10 {
		t.Fatalf("GracePeriods = %d for a 100-deep backlog with batch 10, want ≥ 10", s.GracePeriods)
	}
	if s.Executed != s.Deferred {
		t.Fatalf("executed %d of %d accepted callbacks", s.Executed, s.Deferred)
	}
}
