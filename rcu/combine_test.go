package rcu

import (
	"sync"
	"testing"
	"time"
)

// TestSeqPrimitives pins the rcu_seq arithmetic the combining engine is
// built on: snap from an idle sequence is one stride ahead; snap from an
// in-flight (odd) sequence rounds past the in-flight grace period, whose
// reader snapshot cannot be trusted to cover the caller.
func TestSeqPrimitives(t *testing.T) {
	cases := []struct{ s, snap uint64 }{
		{0, 2}, // idle: the next grace period suffices
		{1, 4}, // in flight: need the one after the current
		{2, 4},
		{3, 6},
		{100, 102},
		{101, 104},
	}
	for _, c := range cases {
		if got := seqSnap(c.s); got != c.snap {
			t.Errorf("seqSnap(%d) = %d, want %d", c.s, got, c.snap)
		}
	}
	if seqDone(2, 4) {
		t.Error("seqDone(2, 4) = true")
	}
	if !seqDone(4, 4) || !seqDone(6, 4) {
		t.Error("seqDone at/past target = false")
	}
}

// TestSynchronizeCombinesConcurrentCallers holds one reader inside a
// critical section while 8 goroutines synchronize concurrently. Under
// combining, at most two grace-period scans can run (callers that
// observed the idle sequence share the first; callers that observed it
// in flight need — and share — the second), so at least six of the
// eight calls must complete without leading a scan.
func TestSynchronizeCombinesConcurrentCallers(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	defer r.Unregister()
	r.ReadLock()

	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Synchronize()
		}()
	}
	// Give every caller ample time to snapshot its sequence target while
	// the reader still blocks the first grace period.
	time.Sleep(100 * time.Millisecond)
	r.ReadUnlock()
	wg.Wait()

	s := d.Stats()
	if s.Synchronizes != callers {
		t.Fatalf("Synchronizes = %d, want %d", s.Synchronizes, callers)
	}
	if s.SyncLeads < 1 || s.SyncLeads > 2 {
		t.Errorf("SyncLeads = %d, want 1 or 2 (combining must collapse %d callers onto ≤2 scans)",
			s.SyncLeads, callers)
	}
	if got := s.SyncShares + s.SyncExpedited; got < callers-2 {
		t.Errorf("SyncShares+SyncExpedited = %d+%d = %d, want ≥ %d",
			s.SyncShares, s.SyncExpedited, got, callers-2)
	}
	if s.FollowerWait.Total() < s.SyncShares {
		t.Errorf("FollowerWait.Total() = %d < SyncShares = %d (every shared call waits at least once)",
			s.FollowerWait.Total(), s.SyncShares)
	}
}

// TestCombiningDisabledScansPerCall pins the ablation escape hatch:
// with SetCombining(false) every call runs — and is accounted as — its
// own scan.
func TestCombiningDisabledScansPerCall(t *testing.T) {
	d := NewDomain()
	d.SetCombining(false)
	for i := 0; i < 5; i++ {
		d.Synchronize()
	}
	s := d.Stats()
	if s.SyncLeads != 5 || s.SyncShares != 0 || s.SyncExpedited != 0 {
		t.Fatalf("leads/shares/expedited = %d/%d/%d, want 5/0/0 with combining off",
			s.SyncLeads, s.SyncShares, s.SyncExpedited)
	}
}

// TestCombiningSequentialCallersEachLead: without concurrency there is
// nothing to combine — each call elects itself and scans.
func TestCombiningSequentialCallersEachLead(t *testing.T) {
	d := NewDomain()
	for i := 0; i < 3; i++ {
		d.Synchronize()
	}
	s := d.Stats()
	if s.SyncLeads != 3 || s.SyncShares != 0 || s.SyncExpedited != 0 {
		t.Fatalf("leads/shares/expedited = %d/%d/%d, want 3/0/0 for sequential calls",
			s.SyncLeads, s.SyncShares, s.SyncExpedited)
	}
}

// TestClassicSynchronizeCountsAsLead pins the ClassicDomain accounting
// convention: the lock-serialized flavor scans on every call, so every
// call is a lead and nothing is ever shared or expedited.
func TestClassicSynchronizeCountsAsLead(t *testing.T) {
	d := NewClassicDomain()
	for i := 0; i < 3; i++ {
		d.Synchronize()
	}
	s := d.Stats()
	if s.SyncLeads != 3 || s.SyncShares != 0 || s.SyncExpedited != 0 {
		t.Fatalf("leads/shares/expedited = %d/%d/%d, want 3/0/0 for ClassicDomain",
			s.SyncLeads, s.SyncShares, s.SyncExpedited)
	}
}

// TestSnapEarlyMutantSkipsWait white-boxes the negative-control mutant:
// with snapEarly on, an idle-domain Synchronize must return without
// waiting for a held reader — the unsoundness the torture oracle is
// expected to catch (cmd/citrustorture -flavor snapearly).
func TestSnapEarlyMutantSkipsWait(t *testing.T) {
	d := NewDomain()
	d.SetSnapEarlyMutant(true)
	r := d.Register()
	defer r.Unregister()
	r.ReadLock()
	defer r.ReadUnlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		d.Synchronize()
	}()
	select {
	case <-done:
		// Broken as intended: returned despite the reader being inside.
	case <-time.After(2 * time.Second):
		t.Fatal("snapEarly mutant waited for the reader; the negative control would not inject its bug")
	}
}

// TestSyncCostSeparatesSpinsFromRechecks pins the wait-loop accounting
// contract on both flavors: a grace period blocked long enough to
// escalate must report busy spins (pre-yield state reads), yields,
// post-escalation rechecks AND sleeps — the sleep phase is what bounds
// the old unbounded-Gosched core burn — while an unblocked grace period
// reports none of them.
func TestSyncCostSeparatesSpinsFromRechecks(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    testDomain
	}{
		{"Domain", NewDomain()},
		{"ClassicDomain", NewClassicDomain()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.d
			d.Synchronize() // unblocked: must cost nothing
			if s := d.Stats(); s.SyncSpins != 0 || s.SyncRechecks != 0 || s.SyncYields != 0 || s.SyncSleeps != 0 {
				t.Fatalf("unblocked synchronize recorded spins=%d rechecks=%d yields=%d sleeps=%d, want all 0",
					s.SyncSpins, s.SyncRechecks, s.SyncYields, s.SyncSleeps)
			}

			r := d.Register()
			defer r.Unregister()
			r.ReadLock()
			done := make(chan struct{})
			go func() {
				defer close(done)
				d.Synchronize()
			}()
			// 30ms is far past the spin (64 reads) and yield (128 rounds)
			// budgets, so the waiter must have reached the sleep phase.
			time.Sleep(30 * time.Millisecond)
			r.ReadUnlock()
			<-done

			s := d.Stats()
			if s.SyncSpins == 0 {
				t.Errorf("SyncSpins = 0, want > 0 (busy phase ran first)")
			}
			if s.SyncYields == 0 {
				t.Errorf("SyncYields = 0, want > 0")
			}
			if s.SyncRechecks == 0 {
				t.Errorf("SyncRechecks = 0, want > 0 (every yield/sleep re-checks)")
			}
			if s.SyncSleeps == 0 {
				t.Errorf("SyncSleeps = 0, want > 0 (30ms must escalate past yielding)")
			}
			if s.SyncRechecks != s.SyncYields+s.SyncSleeps {
				t.Errorf("SyncRechecks = %d, want SyncYields+SyncSleeps = %d+%d (one recheck per escalated round)",
					s.SyncRechecks, s.SyncYields, s.SyncSleeps)
			}
			// The sleep cap bounds re-check frequency: 30ms of waiting at
			// ≤100µs per sleep must not have burned an unbounded number of
			// yields — the bug this escalation fixes.
			if s.SyncYields > spinsBeforeYield+yieldsBeforeSleep+1 {
				t.Errorf("SyncYields = %d, want ≤ %d (yield phase is bounded)",
					s.SyncYields, spinsBeforeYield+yieldsBeforeSleep+1)
			}
		})
	}
}

// TestRegisterChurnDuringSynchronizeStorm races registration changes
// against a Synchronize storm on both flavors — run under -race, this
// pins the copy-on-write reader list against the lock-free scan and the
// combining fast path.
func TestRegisterChurnDuringSynchronizeStorm(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    testDomain
	}{
		{"Domain", NewDomain()},
		{"ClassicDomain", NewClassicDomain()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.d
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						r := d.Register()
						for j := 0; j < 8; j++ {
							r.ReadLock()
							r.ReadUnlock()
						}
						r.Unregister()
					}
				}()
			}
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						d.Synchronize()
					}
				}()
			}
			time.Sleep(150 * time.Millisecond)
			close(stop)
			wg.Wait()
			s := d.Stats()
			if s.Synchronizes == 0 {
				t.Fatal("storm ran no grace periods")
			}
			if s.Synchronizes != s.SyncWait.Total() {
				t.Fatalf("Synchronizes = %d but SyncWait.Total() = %d", s.Synchronizes, s.SyncWait.Total())
			}
		})
	}
}
