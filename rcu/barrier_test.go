package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBarrierObservesPriorCallbacks is the rcu_barrier contract under
// concurrency, for every flavor: a Barrier must not return until every
// callback deferred BEFORE it was issued has run. Many goroutines
// interleave Defer bursts with Barriers, each checking its own burst;
// under -race this also audits the enqueue/drain handoff. (The
// snapshotter leans on exactly this: Barrier() between finishing its
// fuzzy scan and deleting WAL history — see docs/DURABILITY.md.)
func TestBarrierObservesPriorCallbacks(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			r := NewReclaimer(f)
			defer r.Close()
			const workers, rounds, burst = 8, 20, 16
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for round := 0; round < rounds; round++ {
						var ran atomic.Int64
						for i := 0; i < burst; i++ {
							r.Defer(func() { ran.Add(1) })
						}
						r.Barrier()
						if got := ran.Load(); got != burst {
							t.Errorf("round %d: %d of %d pre-barrier callbacks ran", round, got, burst)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestBarrierUnderSaturatedHardCap: Barrier's callback bypasses the
// hard cap, so a queue pinned at its cap by backpressured writers must
// not deadlock a concurrent Barrier. Slow callbacks keep the queue at
// the cap while Barriers cut through.
func TestBarrierUnderSaturatedHardCap(t *testing.T) {
	r := NewReclaimer(NewDomain(), WithHighWatermark(4), WithHardCap(8))
	defer r.Close()

	stopc := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopc:
					return
				default:
				}
				// Each callback dawdles so the queue rides the cap and
				// Defer callers sit in waitBelowCap.
				r.Defer(func() { time.Sleep(100 * time.Microsecond) })
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			r.Barrier()
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Barrier deadlocked against a hard-capped queue")
	}
	close(stopc)
	wg.Wait()
}

// TestBarrierPanicsOnClosedReclaimer pins the documented failure mode
// so a refactor cannot silently turn it into a hang.
func TestBarrierPanicsOnClosedReclaimer(t *testing.T) {
	r := NewReclaimer(NewDomain())
	r.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Barrier on a closed Reclaimer did not panic")
		}
	}()
	r.Barrier()
}
