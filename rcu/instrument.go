package rcu

import (
	"sync/atomic"
	"time"
)

// InstrumentedFlavor wraps a Flavor and counts grace periods and the time
// spent waiting in them. It is used by the benchmark harness to report
// how often a workload synchronizes (in Citrus: one grace period per
// delete of a node with two children) and what each wait costs.
//
// Reader registration is pass-through, so read-side critical sections pay
// nothing for the instrumentation.
type InstrumentedFlavor struct {
	inner Flavor

	syncs     atomic.Int64
	syncNanos atomic.Int64
}

var _ Flavor = (*InstrumentedFlavor)(nil)

// Instrument wraps flavor with grace-period accounting.
func Instrument(flavor Flavor) *InstrumentedFlavor {
	return &InstrumentedFlavor{inner: flavor}
}

// Register passes through to the wrapped flavor, but hands back a reader
// whose Synchronize is also accounted.
func (f *InstrumentedFlavor) Register() Reader {
	return &instrumentedReader{Reader: f.inner.Register(), f: f}
}

// Synchronize waits for pre-existing readers via the wrapped flavor,
// recording the call and its duration.
func (f *InstrumentedFlavor) Synchronize() {
	start := time.Now()
	f.inner.Synchronize()
	f.syncs.Add(1)
	f.syncNanos.Add(time.Since(start).Nanoseconds())
}

// Syncs reports the number of Synchronize calls observed.
func (f *InstrumentedFlavor) Syncs() int64 { return f.syncs.Load() }

// SyncTime reports the cumulative time spent inside Synchronize.
func (f *InstrumentedFlavor) SyncTime() time.Duration {
	return time.Duration(f.syncNanos.Load())
}

// MeanSync reports the average grace-period wait, or 0 if none occurred.
func (f *InstrumentedFlavor) MeanSync() time.Duration {
	n := f.Syncs()
	if n == 0 {
		return 0
	}
	return f.SyncTime() / time.Duration(n)
}

type instrumentedReader struct {
	Reader
	f *InstrumentedFlavor
}

// Synchronize routes through the instrumented flavor so per-reader grace
// periods are counted too.
func (r *instrumentedReader) Synchronize() { r.f.Synchronize() }
