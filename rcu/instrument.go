package rcu

import (
	"time"

	"github.com/go-citrus/citrus/citrusstat"
)

// InstrumentedFlavor wraps a Flavor and counts grace periods and the time
// spent waiting in them, recording each wait into a shared
// citrusstat.Histogram.
//
// Domain and ClassicDomain now carry this accounting natively (see their
// Stats methods), so wrapping them buys nothing — the benchmark binaries
// read native stats directly. InstrumentedFlavor remains for flavors
// without native accounting (e.g. NoSync, or a third-party Flavor) and
// as the uniform adapter when the concrete flavor type is unknown.
//
// Reader registration is pass-through, so read-side critical sections pay
// nothing for the instrumentation.
type InstrumentedFlavor struct {
	inner Flavor
	wait  citrusstat.Histogram
}

var _ Flavor = (*InstrumentedFlavor)(nil)

// Instrument wraps flavor with grace-period accounting.
func Instrument(flavor Flavor) *InstrumentedFlavor {
	return &InstrumentedFlavor{inner: flavor}
}

// Register passes through to the wrapped flavor, but hands back a reader
// whose Synchronize is also accounted.
func (f *InstrumentedFlavor) Register() Reader {
	return &instrumentedReader{Reader: f.inner.Register(), f: f}
}

// Synchronize waits for pre-existing readers via the wrapped flavor,
// recording the call and its duration.
func (f *InstrumentedFlavor) Synchronize() {
	start := time.Now()
	f.inner.Synchronize()
	f.wait.Record(time.Since(start))
}

// Syncs reports the number of Synchronize calls observed.
func (f *InstrumentedFlavor) Syncs() int64 { return f.wait.Total() }

// SyncTime reports the cumulative time spent inside Synchronize.
func (f *InstrumentedFlavor) SyncTime() time.Duration { return f.wait.Sum() }

// MeanSync reports the average grace-period wait, or 0 if none occurred.
func (f *InstrumentedFlavor) MeanSync() time.Duration { return f.wait.Mean() }

// Stats reports grace-period statistics. When the wrapped flavor keeps
// native accounting (Domain, ClassicDomain) its richer stats are
// returned directly; otherwise the wrapper synthesizes a snapshot from
// what it observed (Synchronize calls routed through the wrapper only,
// no spin/reader accounting).
func (f *InstrumentedFlavor) Stats() Stats {
	if src, ok := f.inner.(StatsSource); ok {
		return src.Stats()
	}
	return Stats{
		Synchronizes: f.Syncs(),
		SyncWait:     f.wait.Snapshot(),
	}
}

type instrumentedReader struct {
	Reader
	f *InstrumentedFlavor
}

// Synchronize routes through the instrumented flavor so per-reader grace
// periods are counted too.
func (r *instrumentedReader) Synchronize() { r.f.Synchronize() }
