package rcu

import (
	"sync"
	"testing"
	"time"

	"github.com/go-citrus/citrus/citrustrace"
)

// testDomain abstracts the two traceable flavors for the shared
// attribution test.
type testDomain interface {
	Flavor
	Traceable
	Stats() Stats
}

// checkReaderAttribution holds one reader inside a read-side critical
// section, synchronizes from another goroutine, and asserts that the
// trace attributes the grace-period wait to that specific reader.
func checkReaderAttribution(t *testing.T, d testDomain) {
	t.Helper()
	rec := citrustrace.New()
	d.SetTracer(rec.SyncTracer("rcu"))

	blocker := d.Register()
	idle := d.Register()
	defer idle.Unregister()
	type ider interface{ ID() uint64 }
	blockerID := blocker.(ider).ID()
	if idleID := idle.(ider).ID(); idleID == blockerID {
		t.Fatalf("reader ids collide: %d", idleID)
	}

	const hold = 20 * time.Millisecond
	blocker.ReadLock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.Synchronize()
	}()
	time.Sleep(hold)
	blocker.ReadUnlock()
	<-done
	blocker.Unregister()
	d.SetTracer(nil)

	tr := rec.Snapshot()
	var syncs, waits []citrustrace.Event
	for _, ev := range tr.Events {
		switch ev.Type {
		case citrustrace.EvSync:
			syncs = append(syncs, ev)
		case citrustrace.EvReaderWait:
			waits = append(waits, ev)
		}
	}
	if len(syncs) != 1 {
		t.Fatalf("got %d EvSync events, want 1", len(syncs))
	}
	if len(waits) != 1 {
		t.Fatalf("got %d EvReaderWait events, want 1 (only the blocking reader)", len(waits))
	}
	w := waits[0]
	if w.B != blockerID {
		t.Errorf("wait attributed to reader %d, want %d", w.B, blockerID)
	}
	if w.A != syncs[0].A {
		t.Errorf("reader wait gp id %d does not match sync gp id %d", w.A, syncs[0].A)
	}
	// The recorded waits must cover most of the hold time (scheduling
	// slop allowed) and the GP span must contain the reader wait.
	if w.Dur < hold/2 {
		t.Errorf("reader wait %v, want ≥ %v", w.Dur, hold/2)
	}
	if syncs[0].Dur < w.Dur {
		t.Errorf("sync span %v shorter than its reader wait %v", syncs[0].Dur, w.Dur)
	}
	if got := d.Stats().Synchronizes; got != 1 {
		t.Errorf("Synchronizes = %d, want 1", got)
	}
}

func TestDomainTraceAttributesReaderWaits(t *testing.T) {
	checkReaderAttribution(t, NewDomain())
}

func TestClassicDomainTraceAttributesReaderWaits(t *testing.T) {
	checkReaderAttribution(t, NewClassicDomain())
}

// TestTracerToggleUnderLoad flips the tracer on and off while
// synchronizers and readers run; under -race this pins the toggle
// protocol (atomic pointer, in-flight grace periods keep their span).
func TestTracerToggleUnderLoad(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    testDomain
	}{
		{"Domain", NewDomain()},
		{"ClassicDomain", NewClassicDomain()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.d
			rec := citrustrace.New(citrustrace.WithRingSize(256))
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := d.Register()
					defer r.Unregister()
					for {
						select {
						case <-stop:
							return
						default:
						}
						r.ReadLock()
						r.ReadUnlock()
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					d.Synchronize()
				}
			}()
			deadline := time.Now().Add(100 * time.Millisecond)
			tracer := rec.SyncTracer("rcu")
			for time.Now().Before(deadline) {
				d.SetTracer(tracer)
				rec.Snapshot()
				d.SetTracer(nil)
			}
			close(stop)
			wg.Wait()
			for _, ev := range rec.Snapshot().Events {
				switch ev.Type {
				case citrustrace.EvSync, citrustrace.EvReaderWait,
					citrustrace.EvGPLead, citrustrace.EvGPShare:
				default:
					t.Fatalf("unexpected event type %v in domain ring", ev.Type)
				}
			}
		})
	}
}

func TestReaderIDsAreUnique(t *testing.T) {
	d := NewDomain()
	seen := make(map[uint64]bool)
	for i := 0; i < 10; i++ {
		h := d.register()
		if seen[h.ID()] {
			t.Fatalf("duplicate reader id %d", h.ID())
		}
		seen[h.ID()] = true
	}
}
