package rcu

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented enforces the package's doc-comment
// discipline mechanically: every exported type, function, method,
// constant and variable in package rcu must carry a doc comment. The
// robustness knobs (SetStallTimeout, WithHardCap, …) are configuration
// surface operators read under pressure — an undocumented one is a bug
// this test catches at review time.
func TestExportedIdentifiersDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && exportedReceiver(d) && d.Doc == nil {
						t.Errorf("%s: exported %s has no doc comment",
							fset.Position(d.Pos()), d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
								t.Errorf("%s: exported type %s has no doc comment",
									fset.Position(sp.Pos()), sp.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range sp.Names {
								if n.IsExported() && d.Doc == nil && sp.Doc == nil {
									t.Errorf("%s: exported %s has no doc comment",
										fset.Position(n.Pos()), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether f is a plain function or a method on
// an exported type; methods on unexported types are internal surface.
func exportedReceiver(f *ast.FuncDecl) bool {
	if f.Recv == nil || len(f.Recv.List) == 0 {
		return true
	}
	typ := f.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if gen, ok := typ.(*ast.IndexExpr); ok { // generic receiver T[P]
		typ = gen.X
	}
	id, ok := typ.(*ast.Ident)
	return !ok || id.IsExported()
}
