package rcu

// NoSync wraps a flavor so that Synchronize returns immediately, while
// readers still register and pay the normal read-side costs.
//
// This deliberately BREAKS the RCU property — pre-existing readers are
// not waited for — so it must never be used where grace periods carry
// correctness (it makes the Citrus tree return false negatives, see the
// tests). It exists for two measurement purposes:
//
//   - ablations: running a structure over NoSync isolates the end-to-end
//     throughput cost of its grace periods (cmd/citrusbench -figure a3);
//   - mutation tests: a test that still passes over NoSync is not
//     actually exercising the grace-period guarantee it claims to.
func NoSync(flavor Flavor) Flavor { return &noSyncFlavor{inner: flavor} }

type noSyncFlavor struct {
	inner Flavor
}

var _ Flavor = (*noSyncFlavor)(nil)

// Register passes through to the wrapped flavor, neutering the reader's
// Synchronize like the flavor's.
func (f *noSyncFlavor) Register() Reader {
	return noSyncReader{Reader: f.inner.Register()}
}

// Synchronize returns immediately, waiting for no one.
func (f *noSyncFlavor) Synchronize() {}

type noSyncReader struct {
	Reader
}

// Synchronize returns immediately, waiting for no one.
func (noSyncReader) Synchronize() {}
