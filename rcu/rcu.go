package rcu

// A Reader is a per-goroutine read-side handle of an RCU flavor.
//
// A Reader must be used by at most one goroutine at a time. ReadLock and
// ReadUnlock are wait-free (a constant number of steps, no loops, no
// locks), as the RCU API requires.
type Reader interface {
	// ReadLock enters a read-side critical section. Critical sections must
	// not nest.
	ReadLock()

	// ReadUnlock leaves the current read-side critical section.
	ReadUnlock()

	// Synchronize waits for all read-side critical sections that existed
	// when the call started, in the Reader's flavor. It must not be called
	// from inside the Reader's own read-side critical section.
	Synchronize()

	// Unregister removes the Reader from its flavor. It must be called
	// outside any read-side critical section. After Unregister the Reader
	// must not be used.
	Unregister()
}

// A Flavor is a grace-period provider: a registry of readers plus a
// Synchronize implementation. Domain, ClassicDomain and EpochDomain
// implement Flavor.
type Flavor interface {
	// Register adds the calling goroutine as a reader and returns its
	// handle. Register may be called concurrently.
	Register() Reader

	// Synchronize blocks until every read-side critical section that was
	// in progress when Synchronize was called has completed.
	Synchronize()
}

var (
	_ Flavor = (*Domain)(nil)
	_ Flavor = (*ClassicDomain)(nil)
	_ Flavor = (*EpochDomain)(nil)
	_ Reader = (*Handle)(nil)
	_ Reader = (*ClassicHandle)(nil)
	_ Reader = (*EpochHandle)(nil)
)
