package rcu

import (
	"context"
	"errors"
	"fmt"
)

// Cancellable grace-period waiting. Synchronize is unbounded by design:
// it returns only when every pre-existing reader has left its critical
// section, however long that takes. SynchronizeCtx bounds the *caller's
// wait* without weakening the property: on cancellation the caller gets
// its goroutine back immediately, while the grace period itself keeps
// running in the background until it genuinely completes — nothing is
// ever reclaimed early.

// ErrGracePeriodTimeout reports that a context-bounded grace-period
// wait (SynchronizeCtx, SynchronizeContext, core's DeleteCtx) was
// abandoned because its context was cancelled or its deadline expired
// before the grace period completed. Match it with errors.Is; the
// returned error also matches the context's own error
// (context.DeadlineExceeded or context.Canceled).
var ErrGracePeriodTimeout = errors.New("rcu: grace period did not complete before the context was done")

// gpTimeoutError carries the context cause alongside
// ErrGracePeriodTimeout, so errors.Is matches both.
type gpTimeoutError struct{ cause error }

func (e *gpTimeoutError) Error() string {
	return fmt.Sprintf("rcu: grace period did not complete before the context was done: %v", e.cause)
}

func (e *gpTimeoutError) Unwrap() []error { return []error{ErrGracePeriodTimeout, e.cause} }

// GracePeriodTimeout wraps a context error as a grace-period timeout:
// the result matches both ErrGracePeriodTimeout and cause under
// errors.Is. Callers that run their own select against
// BeginSynchronize use it to report abandonment with the standard type.
func GracePeriodTimeout(cause error) error { return &gpTimeoutError{cause: cause} }

// A ContextSynchronizer is a flavor whose grace-period wait can be
// bounded by a context. Domain, ClassicDomain and EpochDomain implement
// it; SynchronizeContext type-asserts against it and falls back to a
// generic wrapper for flavors that do not.
type ContextSynchronizer interface {
	// SynchronizeCtx waits like Flavor.Synchronize but returns early
	// with a non-nil error when ctx is done first. Early return
	// abandons only the caller's wait: the grace period continues in
	// the background, and nothing that was deferred on it runs before
	// it truly completes.
	SynchronizeCtx(ctx context.Context) error
}

var (
	_ ContextSynchronizer = (*Domain)(nil)
	_ ContextSynchronizer = (*ClassicDomain)(nil)
	_ ContextSynchronizer = (*EpochDomain)(nil)
)

// BeginSynchronize starts one grace period on f in a background
// goroutine and returns a channel that is closed when it completes. It
// is the building block for callers that must keep working (or give up
// and hand cleanup to someone else) while the grace period runs —
// core's DeleteCtx finishes a two-child delete's unlink from exactly
// this channel after its caller's deadline has expired.
//
// The goroutine is not cancellable (a grace period either completes or
// the blocking reader never leaves, in which case it parks in the
// flavor's sleep-phase wait loop at negligible CPU cost); it exits as
// soon as the grace period completes.
func BeginSynchronize(f Flavor) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		f.Synchronize()
		close(done)
	}()
	return done
}

// SynchronizeContext waits for a grace period on f, honoring ctx: it
// returns nil once every read-side critical section that existed at the
// call has completed, or a non-nil error — matching both
// ErrGracePeriodTimeout and ctx.Err() under errors.Is — when ctx is
// done first. Flavors implementing ContextSynchronizer (Domain,
// ClassicDomain) handle it natively with their own accounting; any
// other flavor is wrapped via BeginSynchronize.
func SynchronizeContext(ctx context.Context, f Flavor) error {
	if ctx.Done() == nil {
		f.Synchronize()
		return nil
	}
	if cs, ok := f.(ContextSynchronizer); ok {
		return cs.SynchronizeCtx(ctx)
	}
	if err := ctx.Err(); err != nil {
		return GracePeriodTimeout(err)
	}
	select {
	case <-BeginSynchronize(f):
		return nil
	case <-ctx.Done():
		return GracePeriodTimeout(ctx.Err())
	}
}

// synchronizeCtx is the shared SynchronizeCtx implementation behind
// both domain flavors: run the full Synchronize in a helper goroutine,
// release the caller on whichever of completion and cancellation comes
// first. abandoned is bumped when the caller leaves early, so Stats
// exposes how often deadlines cut grace-period waits short.
func synchronizeCtx(ctx context.Context, f Flavor, s *syncStats) error {
	if ctx.Done() == nil {
		f.Synchronize()
		return nil
	}
	if err := ctx.Err(); err != nil {
		return GracePeriodTimeout(err)
	}
	select {
	case <-BeginSynchronize(f):
		return nil
	case <-ctx.Done():
		s.abandoned.Add(1)
		return GracePeriodTimeout(ctx.Err())
	}
}

// SynchronizeCtx waits for all pre-existing read-side critical sections
// like Synchronize, but returns early — with an error matching both
// ErrGracePeriodTimeout and ctx.Err() — when ctx is done first. The
// abandoned grace period continues in a background goroutine (counted
// in Stats.SyncAbandoned) and still provides its full guarantee to any
// concurrent caller combining with it; the goroutine exits when the
// grace period completes. A context without a deadline or cancellation
// (ctx.Done() == nil) degrades to a plain Synchronize.
func (d *Domain) SynchronizeCtx(ctx context.Context) error {
	return synchronizeCtx(ctx, d, &d.stats)
}

// SynchronizeCtx waits for all pre-existing read-side critical sections
// like Synchronize, but returns early — with an error matching both
// ErrGracePeriodTimeout and ctx.Err() — when ctx is done first. See
// Domain.SynchronizeCtx for the exact semantics.
func (d *ClassicDomain) SynchronizeCtx(ctx context.Context) error {
	return synchronizeCtx(ctx, d, &d.stats)
}

// SynchronizeCtx bounds a grace-period wait on the handle's domain with
// ctx; see Domain.SynchronizeCtx.
func (h *Handle) SynchronizeCtx(ctx context.Context) error {
	d := h.d
	if d == nil {
		panic("rcu: Handle used after Unregister")
	}
	return d.SynchronizeCtx(ctx)
}

// SynchronizeCtx bounds a grace-period wait on the handle's domain with
// ctx; see Domain.SynchronizeCtx.
func (h *ClassicHandle) SynchronizeCtx(ctx context.Context) error {
	d := h.d
	if d == nil {
		panic("rcu: ClassicHandle used after Unregister")
	}
	return d.SynchronizeCtx(ctx)
}

// SynchronizeCtx waits for all pre-existing read-side critical sections
// like Synchronize, but returns early — with an error matching both
// ErrGracePeriodTimeout and ctx.Err() — when ctx is done first. See
// Domain.SynchronizeCtx for the exact semantics.
func (d *EpochDomain) SynchronizeCtx(ctx context.Context) error {
	return synchronizeCtx(ctx, d, &d.stats)
}

// SynchronizeCtx bounds a grace-period wait on the handle's domain with
// ctx; see Domain.SynchronizeCtx.
func (h *EpochHandle) SynchronizeCtx(ctx context.Context) error {
	d := h.d
	if d == nil {
		panic("rcu: EpochHandle used after Unregister")
	}
	return d.SynchronizeCtx(ctx)
}
