package rcu

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEpochSlotEncoding pins down the EBR slot protocol: zero while
// quiescent, the pinned epoch inside a section, and two epoch advances
// per grace period.
func TestEpochSlotEncoding(t *testing.T) {
	d := NewEpochDomain()
	h := d.register()
	if got := h.slot.Load(); got != 0 {
		t.Fatalf("initial slot = %d, want 0", got)
	}
	h.ReadLock()
	if got, e := h.slot.Load(), d.Epoch(); got != e {
		t.Fatalf("slot inside CS = %d, want pinned epoch %d", got, e)
	}
	h.ReadUnlock()
	if got := h.slot.Load(); got != 0 {
		t.Fatalf("slot after ReadUnlock = %d, want 0", got)
	}
	before := d.Epoch()
	d.Synchronize()
	if got := d.Epoch(); got != before+2 {
		t.Fatalf("epoch advanced %d→%d across Synchronize, want two advances", before, got)
	}
	h.Unregister()
}

// TestEpochNestedReadLock: EBR's distinguishing read-side property —
// sections nest, inner sections stay pinned at the outermost epoch, and
// only the outermost ReadUnlock clears the pin.
func TestEpochNestedReadLock(t *testing.T) {
	d := NewEpochDomain()
	h := d.register()
	defer h.Unregister()

	h.ReadLock()
	pinned := h.slot.Load()
	h.ReadLock() // nested: no new store, no panic
	h.ReadLock()
	if got := h.slot.Load(); got != pinned {
		t.Fatalf("nested ReadLock moved the pin %d→%d", pinned, got)
	}
	h.ReadUnlock()
	h.ReadUnlock()
	if got := h.slot.Load(); got != pinned {
		t.Fatalf("inner ReadUnlock cleared the pin (slot = %d)", got)
	}
	h.ReadUnlock() // outermost
	if got := h.slot.Load(); got != 0 {
		t.Fatalf("outermost ReadUnlock left slot = %d, want 0", got)
	}
	// A nested section that was entered before Synchronize must hold the
	// grace period exactly like a flat one.
	h.ReadLock()
	h.ReadLock()
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Synchronize returned while a nested reader was pinned")
	case <-time.After(20 * time.Millisecond):
	}
	h.ReadUnlock()
	select {
	case <-done:
		t.Fatal("Synchronize returned while the outer section was still pinned")
	case <-time.After(20 * time.Millisecond):
	}
	h.ReadUnlock()
	<-done
}

// TestEpochLateReaderNotWaited: a section that pins an epoch at or past
// a grace period's advances is not a pre-existing reader of that grace
// period and must not be waited for. The late pin is planted directly
// in the slot (the value an entry after both advances would store), so
// the check is deterministic: a hang here means the advance threshold
// is wrong.
func TestEpochLateReaderNotWaited(t *testing.T) {
	d := NewEpochDomain()
	late := d.register()
	defer late.Unregister()
	late.slot.Store(d.Epoch() + 2)
	d.Synchronize() // must ignore the late pin; hang = test timeout
	late.slot.Store(0)
}

// TestEpochCombining mirrors the Domain combining accounting: with many
// concurrent synchronizers, leads + shares + expedited covers every
// call and at least one call shared a grace period.
func TestEpochCombining(t *testing.T) {
	d := NewEpochDomain()
	const callers, rounds = 8, 25
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				d.Synchronize()
			}
		}()
	}
	wg.Wait()
	s := d.Stats()
	total := int64(callers * rounds)
	if s.Synchronizes != total {
		t.Fatalf("Synchronizes = %d, want %d", s.Synchronizes, total)
	}
	if got := s.SyncLeads + s.SyncShares + s.SyncExpedited; got != total {
		t.Fatalf("leads(%d) + shares(%d) + expedited(%d) = %d, want %d",
			s.SyncLeads, s.SyncShares, s.SyncExpedited, got, total)
	}
}

// TestEpochNoCombining: with combining off every call leads its own
// epoch advances.
func TestEpochNoCombining(t *testing.T) {
	d := NewEpochDomain()
	d.SetCombining(false)
	for i := 0; i < 5; i++ {
		d.Synchronize()
	}
	s := d.Stats()
	if s.SyncLeads != 5 || s.SyncShares != 0 {
		t.Fatalf("leads = %d, shares = %d with combining off; want 5, 0", s.SyncLeads, s.SyncShares)
	}
	if got := d.Epoch(); got != 11 {
		t.Fatalf("epoch = %d after 5 uncombined grace periods from 1, want 11", got)
	}
}

// TestEpochSynchronizeCtx: a parked reader makes SynchronizeCtx time
// out with the standard grace-period error, counted as abandoned.
func TestEpochSynchronizeCtx(t *testing.T) {
	d := NewEpochDomain()
	release := parkReader(t, d)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := d.SynchronizeCtx(ctx)
	if !errors.Is(err, ErrGracePeriodTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SynchronizeCtx error = %v, want ErrGracePeriodTimeout wrapping DeadlineExceeded", err)
	}
	if got := d.Stats().SyncAbandoned; got != 1 {
		t.Fatalf("SyncAbandoned = %d, want 1", got)
	}
	release()
	if err := d.SynchronizeCtx(context.Background()); err != nil {
		t.Fatalf("SynchronizeCtx with released reader = %v", err)
	}
}

// TestEpochAdvanceEarlyMutantSkipsPinnedReader pins the negative
// control's defect deterministically: with the mutant enabled, a
// Synchronize returns while a pre-existing reader is still pinned —
// the violation the torture oracle must catch — and a correct domain
// blocks in the same scenario.
func TestEpochAdvanceEarlyMutantSkipsPinnedReader(t *testing.T) {
	d := NewEpochDomain()
	d.SetAdvanceEarlyMutant(true)
	h := d.Register()
	defer h.Unregister()
	h.ReadLock()
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	select {
	case <-done:
		// The mutant skipped the pinned reader, as designed.
	case <-time.After(5 * time.Second):
		t.Fatal("mutant Synchronize still blocked on a pinned reader after 5s; the negative control has no teeth")
	}
	h.ReadUnlock()
}

// TestEpochReclaimerIntegration: the EBR flavor drives a Reclaimer
// end to end — callbacks deferred behind a parked reader run only after
// the reader leaves.
func TestEpochReclaimerIntegration(t *testing.T) {
	d := NewEpochDomain()
	r := NewReclaimer(d)
	defer r.Close()

	release := parkReader(t, d)
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		r.Defer(func() { ran.Add(1) })
	}
	time.Sleep(20 * time.Millisecond)
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d callbacks ran while a pre-existing reader was pinned", got)
	}
	release()
	r.Barrier()
	if got := ran.Load(); got != 10 {
		t.Fatalf("callbacks ran = %d after Barrier, want 10", got)
	}
	s := r.Stats()
	if s.Deferred != s.Executed+s.QueueDepth {
		t.Fatalf("accounting identity broken: %+v", s)
	}
}
