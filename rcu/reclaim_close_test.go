package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Regression tests for the close-vs-backpressure shutdown races: an
// enqueue that hits the hard cap and waits out (or breaks out of) the
// backpressure window must re-check closed before accounting a drop,
// and the backpressure poll itself must notice Close instead of
// spinning through its whole window against a reclaimer that can never
// make room again.

// fillToCap parks a reader (blocking every grace period, so the drain
// can free no room) and fills the queue to the hard cap. It returns the
// parked reader's release func.
func fillToCap(t *testing.T, d Flavor, r *Reclaimer, cap int) (release func()) {
	t.Helper()
	release = parkReader(t, d)
	for i := 0; i < cap; i++ {
		if !r.TryDefer(func() {}) {
			t.Fatalf("TryDefer %d/%d rejected while filling to the cap", i+1, cap)
		}
	}
	return release
}

// TestTryDeferClosedMidBackpressureReportsClosed pins the shutdown-path
// fix: a TryDefer blocked at the cap when Close arrives must return
// promptly (not poll out its whole backpressure window), report closed
// rather than a cap drop, and leave the drop counter untouched.
func TestTryDeferClosedMidBackpressureReportsClosed(t *testing.T) {
	d := NewDomain()
	// The huge backpressure window is the point: the old code polled it
	// to exhaustion even though Close made room impossible, so a prompt
	// return proves the close break-out.
	r := NewReclaimer(d, WithHardCap(4), WithBackpressure(30*time.Second))
	release := fillToCap(t, d, r, 4)

	entered := make(chan struct{})
	result := make(chan bool, 1)
	go func() {
		close(entered)
		result <- r.TryDefer(func() { t.Error("dropped callback ran") })
	}()
	<-entered
	time.Sleep(20 * time.Millisecond) // let the TryDefer reach the backpressure poll

	closed := make(chan struct{})
	go func() {
		r.Close() // blocks in the final drain until the reader releases
		close(closed)
	}()

	select {
	case ok := <-result:
		if ok {
			t.Fatal("TryDefer accepted a callback on a closing reclaimer at the cap")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TryDefer still polling 5s after Close; backpressure wait did not break on close")
	}
	release()
	<-closed
	s := r.Stats()
	if s.Dropped != 0 {
		t.Fatalf("Dropped = %d after a defer-after-close, want 0 (closed is not a cap drop)", s.Dropped)
	}
	if s.Deferred != s.Executed+s.QueueDepth {
		t.Fatalf("accounting identity broken: %+v", s)
	}
}

// TestDeferClosedMidBackpressurePanics: same race via Defer, which must
// surface the defer-after-close as a panic, exactly as a Defer that
// started after Close would.
func TestDeferClosedMidBackpressurePanics(t *testing.T) {
	d := NewDomain()
	r := NewReclaimer(d, WithHardCap(2), WithBackpressure(30*time.Second))
	release := fillToCap(t, d, r, 2)

	panicked := make(chan bool, 1)
	go func() {
		defer func() { panicked <- recover() != nil }()
		r.Defer(func() {})
	}()
	time.Sleep(20 * time.Millisecond)
	go r.Close()

	select {
	case p := <-panicked:
		if !p {
			t.Fatal("Defer on a reclaimer closed mid-backpressure returned normally, want panic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Defer still polling 5s after Close")
	}
	release()
	r.Close()
	if got := r.Stats().Dropped; got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
}

// TestCapPollSleepClampsToWindow pins the first-poll clamp: a
// backpressure window shorter than the poll interval must not be
// rounded up to a full 50µs sleep.
func TestCapPollSleepClampsToWindow(t *testing.T) {
	if got := capPollSleep(10 * time.Microsecond); got != 10*time.Microsecond {
		t.Fatalf("capPollSleep(10µs) = %v, want the remaining window", got)
	}
	if got := capPollSleep(capPollInterval); got != capPollInterval {
		t.Fatalf("capPollSleep(interval) = %v, want %v", got, capPollInterval)
	}
	if got := capPollSleep(time.Second); got != capPollInterval {
		t.Fatalf("capPollSleep(1s) = %v, want %v", got, capPollInterval)
	}
	if got := capPollSleep(-time.Microsecond); got > 0 {
		t.Fatalf("capPollSleep past the deadline = %v, want <= 0", got)
	}
}

// TestSubIntervalBackpressureDrops: a capped enqueue with a
// sub-interval backpressure window still terminates with a counted
// drop (the clamped poll reaches the deadline) in far less time than a
// full poll-interval round-up cascade would suggest.
func TestSubIntervalBackpressureDrops(t *testing.T) {
	d := NewDomain()
	r := NewReclaimer(d, WithHardCap(2), WithBackpressure(20*time.Microsecond))
	release := fillToCap(t, d, r, 2)
	start := time.Now()
	if r.TryDefer(func() {}) {
		t.Fatal("TryDefer accepted past the cap with no room possible")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sub-interval backpressure took %v to drop", elapsed)
	}
	if got := r.Stats().Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	release()
	r.Close()
}

// TestCloseBackpressureStorm is the -race storm for the shutdown path:
// goroutines hammer a capped reclaimer with Defer (panic-guarded) and
// TryDefer while Close lands mid-flood, and at quiesce the accounting
// identity Deferred == Executed + QueueDepth holds exactly — every
// accepted callback ran, every unaccepted one is accounted as dropped
// or closed, nothing is double-counted and nothing leaks.
func TestCloseBackpressureStorm(t *testing.T) {
	d := NewDomain()
	r := NewReclaimer(d, WithHardCap(8), WithBackpressure(100*time.Microsecond), WithDrainBatch(4))

	// tryAccepted counts TryDefer's true returns — each one a hard
	// guarantee the callback runs. Defer's normal return is deliberately
	// not counted: it covers both accept and cap drop, which only the
	// reclaimer's own Stats can split.
	var tryAccepted, ran atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					if r.TryDefer(func() { ran.Add(1) }) {
						tryAccepted.Add(1)
					}
					continue
				}
				func() {
					defer func() { recover() }() // Defer after Close panics; expected here
					r.Defer(func() { ran.Add(1) })
				}()
			}
		}(g)
	}
	closer := make(chan struct{})
	go func() {
		defer close(closer)
		<-start
		time.Sleep(2 * time.Millisecond)
		r.Close()
	}()
	close(start)
	wg.Wait()
	<-closer
	r.Close() // idempotent; everything is drained at this point

	s := r.Stats()
	if s.QueueDepth != 0 {
		t.Fatalf("QueueDepth = %d after Close, want 0", s.QueueDepth)
	}
	if s.Deferred != s.Executed+s.QueueDepth {
		t.Fatalf("identity Deferred == Executed + QueueDepth broken: %+v", s)
	}
	if got := ran.Load(); got != s.Executed {
		t.Fatalf("callbacks run = %d, Executed = %d; an accepted callback was lost or a dropped one ran", got, s.Executed)
	}
	if got := tryAccepted.Load(); got > s.Executed {
		t.Fatalf("TryDefer accepted %d callbacks but only %d executed", got, s.Executed)
	}
}
