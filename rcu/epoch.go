package rcu

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/citrustrace"
	"github.com/go-citrus/citrus/internal/schedpoint"
)

// EpochDomain is the epoch-based reclamation (EBR) flavor, in the
// lineage of Fraser's epochs and the kernel's QSBR mode: a single
// global epoch counter that only synchronizers advance, and readers
// that pin the epoch they observed on entry.
//
// ReadLock loads the global epoch and publishes it in the reader's slot
// with one uncontended store — no read-modify-write, no shared-line
// contention — and nested sections only bump a goroutine-local nesting
// count, so re-entrant readers pay nothing at all. Synchronize advances
// the global epoch twice, each advance waiting for every reader to be
// either quiescent (slot 0) or pinned past the epoch that was current
// at the call — the fixed covering obligation, so readers entering
// mid-grace-period (pinned at an already-advanced epoch) never delay
// it. Two advances is the canonical three-epoch scheme of the EBR
// literature: objects retired in epoch e may still be visible to
// readers pinned at e, so they are freed only once the global epoch
// reaches e+2 and no reader remains pinned at or before e. (Under Go's
// sequentially consistent atomics a single advance is already sound, as
// in ClassicDomain; the second advance keeps the implementation honest
// to the scheme it reproduces and costs one extra scan of
// usually-quiescent slots.)
//
// Where Domain makes readers pay a counter+flag store per section and
// ClassicDomain a slot store per section, EpochDomain's cost model is
// the same store but with epoch-granular staleness: a reader pinned at
// an old epoch holds up every retirement made since, so deferred-object
// age grows with reader dwell time. That is the age-memory trade-off
// measured by cmd/citrusbench -figure am.
//
// Synchronize takes no locks; concurrent callers combine their grace
// periods through the same shared-sequence protocol as Domain (see the
// Domain doc comment): one caller is elected leader and advances the
// epoch, the rest piggyback.
//
// The zero value is ready to use.
type EpochDomain struct {
	mu      sync.Mutex // guards registration changes (copy-on-write)
	readers atomic.Pointer[[]*EpochHandle]
	nextID  atomic.Uint64 // reader handle ids, for trace attribution

	// epoch is the global epoch counter. It starts at 1 so a reader slot
	// of 0 unambiguously means "quiescent", and only grace-period leaders
	// advance it.
	epoch atomic.Uint64

	// gpSeq is the shared grace-period sequence for combining, identical
	// in protocol to Domain.gpSeq: bit 0 set while a leader is advancing
	// epochs, value advancing by gpSeqStride per completed grace period.
	gpSeq atomic.Uint64

	// nocombine disables grace-period combining (every Synchronize
	// advances for itself); for ablation benchmarks. advEarly is the
	// torture harness's negative-control mutant: the per-advance reader
	// wait trails the epoch by a full grace period, so readers pinned at
	// the epoch current when Synchronize was called are never waited for.
	nocombine atomic.Bool
	advEarly  atomic.Bool

	// tracer, when set, receives one grace-period span per Synchronize
	// with a per-reader wait breakdown (see Domain.tracer).
	tracer atomic.Pointer[citrustrace.SyncTracer]

	// stall is the stall-detection configuration (see stall.go), shared
	// with the other flavors; off by default.
	stall stallControl

	// stats accumulates grace-period accounting. Only Register and
	// Synchronize write it; the read-side primitives never touch it.
	stats syncStats
}

// NewEpochDomain returns a new, empty EpochDomain.
func NewEpochDomain() *EpochDomain {
	d := &EpochDomain{}
	d.epoch.Store(1)
	return d
}

// An EpochHandle is a reader registered with an EpochDomain. Its slot
// holds 0 while quiescent and the epoch observed at the outermost
// ReadLock while inside a critical section; nesting is a plain
// owner-goroutine counter, so nested sections touch no shared state.
//
// Unlike the other flavors' handles, EpochHandle permits nested
// ReadLock/ReadUnlock pairs: inner sections stay pinned at the
// outermost section's epoch, which is exactly the EBR guarantee.
type EpochHandle struct {
	_    [cacheLinePad]byte
	slot atomic.Uint64
	_    [cacheLinePad - 8]byte

	d       *EpochDomain
	id      uint64
	site    string // registration call site; "" unless SetSiteCapture was on
	nesting int    // owner-goroutine-only section nesting depth
}

// ID reports the handle's domain-unique reader id, stable for the
// handle's lifetime. Tracing uses it to attribute grace-period waits to
// specific readers (citrustrace.EvReaderWait).
func (h *EpochHandle) ID() uint64 { return h.id }

// Site reports the handle's registration call site, "" unless the
// domain's SetSiteCapture was enabled when the handle was registered.
func (h *EpochHandle) Site() string { return h.site }

// Register adds a reader to the domain and returns its handle.
func (d *EpochDomain) Register() Reader { return d.register() }

func (d *EpochDomain) register() *EpochHandle {
	if d.epoch.Load() == 0 {
		d.epoch.CompareAndSwap(0, 1) // zero-value domain: establish epoch 1
	}
	h := &EpochHandle{d: d, id: d.nextID.Add(1)}
	if d.stall.capture.Load() {
		h.site = registrationSite()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.readers.Load()
	var rs []*EpochHandle
	if old != nil {
		rs = make([]*EpochHandle, len(*old), len(*old)+1)
		copy(rs, *old)
	}
	rs = append(rs, h)
	d.readers.Store(&rs)
	d.stats.noteReaders(len(rs))
	return h
}

// ReadLock enters a read-side critical section. The outermost entry
// pins the current global epoch with a single uncontended store; nested
// entries only bump the local nesting count. Wait-free: the torture
// injection point between the epoch read and the pinning store compiles
// to a single predictable branch unless a schedpoint policy is enabled.
func (h *EpochHandle) ReadLock() {
	if h.d == nil {
		panic("rcu: EpochHandle used after Unregister")
	}
	if h.nesting > 0 {
		h.nesting++
		return
	}
	e := h.d.epoch.Load()
	// Torture window: the reader holds an epoch value it has not yet
	// published — a synchronizer advancing here must still wait the
	// reader out once the stale pin lands.
	schedpoint.Hit(schedpoint.RCUReadLockPublish)
	h.slot.Store(e)
	h.nesting = 1
}

// ReadUnlock leaves the current read-side critical section; the
// outermost exit clears the pin. Wait-free.
func (h *EpochHandle) ReadUnlock() {
	if h.nesting == 0 {
		panic("rcu: ReadUnlock outside a read-side critical section")
	}
	h.nesting--
	if h.nesting == 0 {
		h.slot.Store(0)
	}
}

// Synchronize waits for all pre-existing read-side critical sections in
// the handle's domain.
func (h *EpochHandle) Synchronize() {
	d := h.d
	if d == nil {
		panic("rcu: EpochHandle used after Unregister")
	}
	d.Synchronize()
}

// Unregister removes the handle from its domain. The handle must not be
// inside a read-side critical section. Unregister is idempotent; any
// other use of the handle afterwards panics with a descriptive message.
func (h *EpochHandle) Unregister() {
	if h.nesting != 0 {
		panic("rcu: Unregister inside a read-side critical section")
	}
	d := h.d
	if d == nil {
		return // already unregistered
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.readers.Load()
	if old == nil {
		return
	}
	rs := make([]*EpochHandle, 0, len(*old))
	for _, r := range *old {
		if r != h {
			rs = append(rs, r)
		}
	}
	d.readers.Store(&rs)
	h.d = nil
}

// Synchronize blocks until every read-side critical section that was in
// progress when the call started has completed. It takes no locks, and
// concurrent callers combine exactly as in Domain.Synchronize: one
// leads (advancing the epoch twice), the rest wait on the shared
// sequence. The soundness argument for sharing is Domain's verbatim —
// a follower is only released by a leader whose election happened after
// the follower's sequence load, and that leader's epoch advances cover
// every reader pinned at the follower's call entry.
func (d *EpochDomain) Synchronize() {
	start := time.Now()
	var span *citrustrace.SyncSpan
	if tr := d.tracer.Load(); tr != nil {
		s := tr.SyncBegin()
		span = &s
	}
	var cost syncCost
	var led, shared bool
	watch := d.stall.newStallWatch(start)
	tok := d.stats.syncEnter(start)
	defer func() {
		d.stats.syncExit(tok)
		watch.settle(&d.stats)
		if span != nil {
			span.End(cost.spins, cost.yields)
		}
		d.stats.record(start, cost, led, shared, !led && !shared)
	}()
	// Torture window: everything before the first epoch advance —
	// readers entering now must not be waited for, readers already
	// pinned must be.
	schedpoint.Hit(schedpoint.RCUSyncFlip)
	if d.nocombine.Load() {
		d.advanceEpochs(span, &cost, &watch)
		led = true
		return
	}
	target := seqSnap(d.gpSeq.Load())
	// Torture window: the sequence target is fixed but the election has
	// not happened (see Domain.Synchronize).
	schedpoint.Hit(schedpoint.RCUGPElect)
	for {
		cur := d.gpSeq.Load()
		if seqDone(cur, target) {
			return
		}
		if cur&gpSeqStateMask == 0 {
			// Idle: try to lead the next grace period. Losing the race
			// just means reloading — the winner is doing our work.
			if !d.gpSeq.CompareAndSwap(cur, cur+1) {
				continue
			}
			led = true
			scanStart := time.Now()
			waited := d.advanceEpochs(span, &cost, &watch)
			d.gpSeq.Add(gpSeqStride - 1) // publish completion at cur+2
			if span != nil {
				span.GPLead(scanStart, cur+gpSeqStride, waited)
			}
			continue
		}
		// A grace period is in flight: follow it.
		shared = true
		followStart := time.Now()
		d.followSeq(cur, &cost, span, &watch)
		d.stats.followWait(time.Since(followStart))
		if span != nil {
			span.GPShare(followStart, target, cur)
		}
	}
}

// advanceEpochs runs one full grace period with respect to the instant
// it is called: two epoch advances (the three-epoch scheme), each
// waiting for every reader to be quiescent or pinned past the epoch
// current at grace-period entry. The covering obligation is fixed at
// entry — only readers pinned at or before the entry epoch predate the
// call — so both waits share the entry threshold; a reader entering
// mid-grace-period pins the already-advanced epoch and is never waited
// on. It reports how many readers it actually waited on.
func (d *EpochDomain) advanceEpochs(span *citrustrace.SyncSpan, cost *syncCost, watch *stallWatch) int {
	// threshold is the pin value a reader must have reached to be
	// ignored: one past the entry epoch. The advEarly mutant
	// (SetAdvanceEarlyMutant) lowers it to the entry epoch itself, so
	// readers pinned there — the pre-existing readers this grace period
	// exists to wait for — pass the check without ever being waited on:
	// the classic advance-too-early bug the torture oracle must catch.
	threshold := d.epoch.Load() + 1
	if d.advEarly.Load() {
		threshold--
	}
	waited := d.advanceEpoch(threshold, span, cost, watch)
	waited += d.advanceEpoch(threshold, span, cost, watch)
	return waited
}

// advanceEpoch bumps the global epoch once and waits every reader out
// to the given pin threshold, with the shared spin → yield → sleep
// escalation.
func (d *EpochDomain) advanceEpoch(threshold uint64, span *citrustrace.SyncSpan, cost *syncCost, watch *stallWatch) int {
	d.epoch.Add(1)
	rsp := d.readers.Load()
	if rsp == nil {
		return 0
	}
	readers := *rsp
	waited := 0
	for i, r := range readers {
		// Torture window: mid-scan, earlier readers have been cleared
		// while this one is still being waited out.
		schedpoint.Hit(schedpoint.RCUSyncScan)
		var spins int64
		var waitStart time.Time
		counted := false
		sleep := minWaiterSleep
		for attempt := int64(0); ; attempt++ {
			c := r.slot.Load()
			if c == 0 || c >= threshold {
				break
			}
			if !counted {
				// First failed check: the reader is pinned inside a
				// pre-existing critical section this advance must wait out.
				counted = true
				waited++
				if span != nil {
					waitStart = time.Now()
				}
			}
			switch {
			case attempt < spinsBeforeYield:
				spins++
			case attempt < spinsBeforeYield+yieldsBeforeSleep:
				runtime.Gosched()
				cost.yields++
				cost.rechecks++
			default:
				// Descheduled or long-running reader: stop burning the
				// core and sleep between re-checks (see Domain).
				time.Sleep(sleep)
				if sleep < maxWaiterSleep {
					sleep *= 2
				}
				cost.sleeps++
				cost.rechecks++
				if watch.due() {
					watch.fire(&d.stall, &d.stats, span, "ebr",
						stalledEpoch(readers[i:], threshold))
				}
			}
		}
		cost.spins += spins
		if span != nil && !waitStart.IsZero() {
			span.ReaderWait(r.id, waitStart, time.Since(waitStart), spins)
		}
	}
	return waited
}

// stalledEpoch collects, from the readers an epoch advance has not yet
// cleared, those still pinned below the advance's threshold — the set
// the grace period is blocked on.
func stalledEpoch(readers []*EpochHandle, threshold uint64) []StalledReader {
	var out []StalledReader
	for _, r := range readers {
		if c := r.slot.Load(); c != 0 && c < threshold {
			out = append(out, StalledReader{ID: r.id, Site: r.site})
		}
	}
	return out
}

// followSeq waits, with the same spin → yield → sleep escalation as the
// epoch advance, for the grace-period sequence to move past cur — i.e.
// for the in-flight grace period observed at cur to complete.
func (d *EpochDomain) followSeq(cur uint64, cost *syncCost, span *citrustrace.SyncSpan, watch *stallWatch) {
	sleep := minWaiterSleep
	for attempt := int64(0); d.gpSeq.Load() == cur; attempt++ {
		switch {
		case attempt < spinsBeforeYield:
			cost.spins++
		case attempt < spinsBeforeYield+yieldsBeforeSleep:
			runtime.Gosched()
			cost.yields++
			cost.rechecks++
		default:
			time.Sleep(sleep)
			if sleep < maxWaiterSleep {
				sleep *= 2
			}
			cost.sleeps++
			cost.rechecks++
			if watch.due() {
				// A follower cannot see the leader's threshold, so the
				// report names every reader currently pinned — a superset
				// of the true blockers.
				watch.fire(&d.stall, &d.stats, span, "ebr", d.activeReaders())
			}
		}
	}
}

// activeReaders lists the readers currently pinned inside a read-side
// critical section, for follower-side stall reports.
func (d *EpochDomain) activeReaders() []StalledReader {
	rsp := d.readers.Load()
	if rsp == nil {
		return nil
	}
	var out []StalledReader
	for _, r := range *rsp {
		if r.slot.Load() != 0 {
			out = append(out, StalledReader{ID: r.id, Site: r.site})
		}
	}
	return out
}

// Epoch reports the current global epoch. Intended for tests and
// instrumentation.
func (d *EpochDomain) Epoch() uint64 { return d.epoch.Load() }

// SetCombining toggles grace-period combining (on by default, including
// for zero-value EpochDomains); see Domain.SetCombining.
func (d *EpochDomain) SetCombining(on bool) { d.nocombine.Store(!on) }

// SetAdvanceEarlyMutant deliberately BREAKS the domain for the torture
// harness's negative control (cmd/citrustorture -flavor ebrearly): each
// epoch advance's reader wait trails the new epoch by a full grace
// period, so a reader pinned at the epoch current when Synchronize was
// called is treated as already quiescent and never waited for — the
// epoch has been advanced "too early" relative to the readers it must
// cover. This violates exactly the pre-existing-reader obligation, and
// the torture oracles must catch it (see docs/VERIFICATION.md). Never
// enable it anywhere else.
func (d *EpochDomain) SetAdvanceEarlyMutant(on bool) { d.advEarly.Store(on) }

// SetTracer attaches tr's grace-period event recording to the domain
// (see citrustrace.SyncTracer); nil detaches. Safe to toggle at any
// time, concurrently with Synchronize calls.
func (d *EpochDomain) SetTracer(tr *citrustrace.SyncTracer) { d.tracer.Store(tr) }

// SetStallTimeout arms the grace-period stall detector; see
// Domain.SetStallTimeout for the exact semantics.
func (d *EpochDomain) SetStallTimeout(timeout time.Duration) {
	if timeout < 0 {
		timeout = 0
	}
	d.stall.timeout.Store(int64(timeout))
}

// SetStallHandler installs fn as the stall-report sink (nil removes
// it); see Domain.SetStallHandler.
func (d *EpochDomain) SetStallHandler(fn func(StallReport)) {
	if fn == nil {
		d.stall.handler.Store(nil)
		return
	}
	d.stall.handler.Store(&fn)
}

// SetSiteCapture toggles registration-site capture for stall
// attribution; see Domain.SetSiteCapture.
func (d *EpochDomain) SetSiteCapture(on bool) { d.stall.capture.Store(on) }

// Stats reports the domain's cumulative grace-period accounting. It may
// be called at any time from any goroutine; all counters are monotonic
// except the ActiveStalls gauge.
func (d *EpochDomain) Stats() Stats { return d.stats.snapshot(d.Readers()) }

// Readers reports the number of currently registered readers. Intended for
// tests and instrumentation.
func (d *EpochDomain) Readers() int {
	rsp := d.readers.Load()
	if rsp == nil {
		return 0
	}
	return len(*rsp)
}
