package rcu

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/citrustrace"
	"github.com/go-citrus/citrus/internal/schedpoint"
)

// cacheLinePad is the padding unit used to keep each reader's state word on
// its own cache line. 128 bytes covers adjacent-line prefetchers on x86.
const cacheLinePad = 128

// spinsBeforeYield is how many times Synchronize re-reads a reader's state
// before yielding the processor. Grace periods are usually short, so a few
// busy reads avoid a scheduler round trip; past that, spinning only steals
// cycles from the reader being waited on.
const spinsBeforeYield = 64

// Domain is the scalable RCU flavor of Arbel & Attiya (PODC 2014, §5).
//
// Each registered reader owns one word packing a critical-section counter
// (bits 1..63) and an in-critical-section flag (bit 0). ReadLock advances
// the counter and sets the flag with a single atomic store; ReadUnlock
// clears the flag. Synchronize snapshots every reader's word and waits, per
// reader whose snapshot has the flag set, for the word to change — the
// reader has then either left the pre-existing section or entered a later
// one, and either way is no longer in a section that predates the call.
//
// Synchronize acquires no locks and concurrent synchronizers do not
// coordinate, which is what lets update-heavy workloads scale (Figure 8 of
// the paper).
//
// The zero value is ready to use.
type Domain struct {
	mu      sync.Mutex // guards registration changes (copy-on-write)
	readers atomic.Pointer[[]*Handle]
	nextID  atomic.Uint64 // reader handle ids, for trace attribution

	// tracer, when set, receives one grace-period span per Synchronize
	// with a per-reader wait breakdown. Off by default; with no tracer
	// the synchronize path pays one atomic load and a predictable
	// branch, and the read side is untouched either way.
	tracer atomic.Pointer[citrustrace.SyncTracer]

	// stats accumulates grace-period accounting. Only Register and
	// Synchronize write it; the read-side primitives never touch it.
	stats syncStats
}

// NewDomain returns a new, empty Domain.
func NewDomain() *Domain { return &Domain{} }

// A Handle is a reader registered with a Domain.
//
// The state word is written only by the owning goroutine and read by
// synchronizers, so all accesses are atomic but never contended
// read-modify-write operations. Padding keeps each handle's word on a
// private cache line: the paper found (§5) that false sharing of reader
// state dominates the cost of the read-side primitives.
type Handle struct {
	_     [cacheLinePad]byte
	state atomic.Uint64 // counter<<1 | flag
	_     [cacheLinePad - 8]byte

	d  *Domain
	id uint64
}

// ID reports the handle's domain-unique reader id, stable for the
// handle's lifetime. Tracing uses it to attribute grace-period waits to
// specific readers (citrustrace.EvReaderWait).
func (h *Handle) ID() uint64 { return h.id }

// Register adds a reader to the domain and returns its handle.
func (d *Domain) Register() Reader { return d.register() }

// register is the concrete-typed Register used inside the package.
func (d *Domain) register() *Handle {
	h := &Handle{d: d, id: d.nextID.Add(1)}
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.readers.Load()
	var rs []*Handle
	if old != nil {
		rs = make([]*Handle, len(*old), len(*old)+1)
		copy(rs, *old)
	}
	rs = append(rs, h)
	d.readers.Store(&rs)
	d.stats.noteReaders(len(rs))
	return h
}

// ReadLock enters a read-side critical section: one atomic store that
// advances the counter and sets the flag. Wait-free: the torture
// injection point between the state read and the publishing store
// compiles to a single predictable branch unless a schedpoint policy is
// enabled.
func (h *Handle) ReadLock() {
	if h.d == nil {
		panic("rcu: Handle used after Unregister")
	}
	s := h.state.Load()
	if s&1 != 0 {
		panic("rcu: nested ReadLock on the same Handle")
	}
	// Torture window: a reader suspended here has decided to enter but
	// has not yet published its critical section to synchronizers.
	schedpoint.Hit(schedpoint.RCUReadLockPublish)
	// (counter+1)<<1 | 1 == s + 3 when the flag bit is clear.
	h.state.Store(s + 3)
}

// ReadUnlock leaves the read-side critical section: one atomic store that
// clears the flag. Wait-free.
func (h *Handle) ReadUnlock() {
	s := h.state.Load()
	if s&1 == 0 {
		panic("rcu: ReadUnlock outside a read-side critical section")
	}
	h.state.Store(s &^ 1)
}

// Synchronize waits for all pre-existing read-side critical sections in the
// handle's domain.
func (h *Handle) Synchronize() {
	d := h.d
	if d == nil {
		panic("rcu: Handle used after Unregister")
	}
	d.Synchronize()
}

// Unregister removes the handle from its domain. The handle must not be
// inside a read-side critical section. Unregister is idempotent; any
// other use of the handle afterwards panics with a descriptive message.
func (h *Handle) Unregister() {
	if h.state.Load()&1 != 0 {
		panic("rcu: Unregister inside a read-side critical section")
	}
	d := h.d
	if d == nil {
		return // already unregistered
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.readers.Load()
	if old == nil {
		return
	}
	rs := make([]*Handle, 0, len(*old))
	for _, r := range *old {
		if r != h {
			rs = append(rs, r)
		}
	}
	d.readers.Store(&rs)
	h.d = nil
}

// Synchronize blocks until every read-side critical section that was in
// progress when the call started has completed. It takes no locks, so any
// number of goroutines may synchronize concurrently without serializing.
func (d *Domain) Synchronize() {
	start := time.Now()
	var span *citrustrace.SyncSpan
	if tr := d.tracer.Load(); tr != nil {
		s := tr.SyncBegin()
		span = &s
	}
	var totalSpins, totalYields int64
	defer func() {
		if span != nil {
			span.End(totalSpins, totalYields)
		}
		d.stats.record(start, totalSpins, totalYields)
	}()
	// Torture window: everything before the snapshot — readers entering
	// now must not be waited for, readers already inside must be.
	schedpoint.Hit(schedpoint.RCUSyncFlip)
	rsp := d.readers.Load()
	if rsp == nil {
		return
	}
	readers := *rsp
	// Snapshot first, then wait per reader. A reader whose word changed
	// after the snapshot either left its section (flag cleared) or entered
	// a strictly later one (counter advanced); in both cases it is not in
	// a section that predates this call.
	snap := make([]uint64, len(readers))
	active := false
	for i, r := range readers {
		snap[i] = r.state.Load()
		active = active || snap[i]&1 != 0
	}
	if !active {
		return
	}
	for i, r := range readers {
		if snap[i]&1 == 0 {
			continue
		}
		// Torture window: mid-scan, earlier readers' snapshots are stale
		// while this one is still being waited out.
		schedpoint.Hit(schedpoint.RCUSyncScan)
		// r was inside a pre-existing read-side critical section: this
		// grace period is attributable to it.
		var waitStart time.Time
		if span != nil {
			waitStart = time.Now()
		}
		spins := 0
		for ; r.state.Load() == snap[i]; spins++ {
			if spins >= spinsBeforeYield {
				runtime.Gosched()
				totalYields++
			}
		}
		totalSpins += int64(spins)
		if span != nil {
			span.ReaderWait(r.id, waitStart, time.Since(waitStart), int64(spins))
		}
	}
}

// SetTracer attaches tr's grace-period event recording to the domain
// (see citrustrace.SyncTracer); nil detaches. Safe to toggle at any
// time, concurrently with Synchronize calls.
func (d *Domain) SetTracer(tr *citrustrace.SyncTracer) { d.tracer.Store(tr) }

// Stats reports the domain's cumulative grace-period accounting. It may
// be called at any time from any goroutine; all counters are monotonic.
func (d *Domain) Stats() Stats { return d.stats.snapshot(d.Readers()) }

// Readers reports the number of currently registered readers. Intended for
// tests and instrumentation.
func (d *Domain) Readers() int {
	rsp := d.readers.Load()
	if rsp == nil {
		return 0
	}
	return len(*rsp)
}
