package rcu

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/citrustrace"
	"github.com/go-citrus/citrus/internal/schedpoint"
)

// cacheLinePad is the padding unit used to keep each reader's state word on
// its own cache line. 128 bytes covers adjacent-line prefetchers on x86.
const cacheLinePad = 128

// spinsBeforeYield is how many times Synchronize re-reads a reader's state
// before yielding the processor. Grace periods are usually short, so a few
// busy reads avoid a scheduler round trip; past that, spinning only steals
// cycles from the reader being waited on.
const spinsBeforeYield = 64

// yieldsBeforeSleep is how many Gosched rounds a waiter takes after the
// spin budget before it starts sleeping. A reader that has not finished
// after this many yields is almost certainly descheduled (or genuinely
// long-running), and yielding forever against it burns a full core — the
// wait-loop bug this bound fixes. Sleeping instead costs at most one
// sleep quantum of added grace-period latency.
const yieldsBeforeSleep = 128

// Waiter sleeps escalate from minWaiterSleep, doubling per sleep, to
// maxWaiterSleep. The cap bounds how stale a waiter's view of the world
// can get (a completed grace period is noticed within one quantum);
// raising it trades grace-period age for less wakeup churn — the
// age/memory trade-off knob of the combining literature, set here to
// favor promptness.
const (
	minWaiterSleep = 2 * time.Microsecond
	maxWaiterSleep = 100 * time.Microsecond
)

// Grace-period sequence encoding (the kernel's rcu_seq idea): bit 0 is
// "a grace period is in flight", and the value advances by gpSeqStride
// per completed grace period. A caller that needs a grace period
// snapshots the sequence it must reach (seqSnap) and is done once the
// sequence passes it (seqDone) — no matter who drove it there.
const (
	gpSeqStateMask = 1
	gpSeqStride    = 2
)

// seqSnap returns the sequence value at which a full grace period will
// have elapsed for a caller observing s now (rcu_seq_snap): one full
// stride past the current value, rounded past any in-flight grace
// period — whose reader snapshot may predate this caller, so it cannot
// be trusted to cover the caller's pre-existing readers.
func seqSnap(s uint64) uint64 {
	return (s + 2*gpSeqStateMask + 1) &^ uint64(gpSeqStateMask)
}

// seqDone reports whether the sequence has reached target (rcu_seq_done).
func seqDone(s, target uint64) bool { return s >= target }

// Domain is the scalable RCU flavor of Arbel & Attiya (PODC 2014, §5).
//
// Each registered reader owns one word packing a critical-section counter
// (bits 1..63) and an in-critical-section flag (bit 0). ReadLock advances
// the counter and sets the flag with a single atomic store; ReadUnlock
// clears the flag. Synchronize snapshots every reader's word and waits, per
// reader whose snapshot has the flag set, for the word to change — the
// reader has then either left the pre-existing section or entered a later
// one, and either way is no longer in a section that predates the call.
//
// Synchronize acquires no locks, so any number of goroutines may
// synchronize concurrently (Figure 8 of the paper). On top of that,
// concurrent synchronizers COMBINE their grace periods through a shared
// sequence (gpSeq, Linux Tree RCU's gp_seq idea): each caller snapshots
// the sequence it needs, one caller is elected leader and runs the
// reader scan, and every other caller whose requirement is covered
// piggybacks on the leader's grace period instead of scanning all
// readers itself. N concurrent two-child deleters thus pay O(1) scans
// between them instead of N, without serializing: losing the election
// never blocks progress, it only means someone else is doing the work.
//
// The zero value is ready to use.
type Domain struct {
	mu      sync.Mutex // guards registration changes (copy-on-write)
	readers atomic.Pointer[[]*Handle]
	nextID  atomic.Uint64 // reader handle ids, for trace attribution

	// gpSeq is the shared grace-period sequence: bit 0 set while a
	// leader is scanning, value advancing by gpSeqStride per completed
	// grace period. See seqSnap/seqDone.
	gpSeq atomic.Uint64

	// nocombine disables grace-period combining (every Synchronize
	// scans for itself, the pre-combining behavior); for ablation
	// benchmarks. snapEarly is the torture harness's negative-control
	// mutant: targets are computed one stride early, deliberately
	// breaking the combining protocol's covering obligation.
	nocombine atomic.Bool
	snapEarly atomic.Bool

	// tracer, when set, receives one grace-period span per Synchronize
	// with a per-reader wait breakdown. Off by default; with no tracer
	// the synchronize path pays one atomic load and a predictable
	// branch, and the read side is untouched either way.
	tracer atomic.Pointer[citrustrace.SyncTracer]

	// stall is the stall-detection configuration (see stall.go); leak
	// the leaked-handle detection configuration (see leak.go). Both are
	// off by default and cost the hot paths nothing while off.
	stall stallControl
	leak  leakControl

	// stats accumulates grace-period accounting. Only Register and
	// Synchronize write it; the read-side primitives never touch it.
	stats syncStats
}

// NewDomain returns a new, empty Domain.
func NewDomain() *Domain { return &Domain{} }

// A Handle is a reader registered with a Domain.
//
// The state word is written only by the owning goroutine and read by
// synchronizers, so all accesses are atomic but never contended
// read-modify-write operations. Padding keeps each handle's word on a
// private cache line: the paper found (§5) that false sharing of reader
// state dominates the cost of the read-side primitives.
type Handle struct {
	_     [cacheLinePad]byte
	state atomic.Uint64 // counter<<1 | flag
	_     [cacheLinePad - 8]byte

	d    *Domain
	id   uint64
	site string // registration call site; "" unless SetSiteCapture was on
}

// ID reports the handle's domain-unique reader id, stable for the
// handle's lifetime. Tracing uses it to attribute grace-period waits to
// specific readers (citrustrace.EvReaderWait).
func (h *Handle) ID() uint64 { return h.id }

// Site reports the handle's registration call site, "" unless the
// domain's SetSiteCapture (or SetLeakDetection) was enabled when the
// handle was registered.
func (h *Handle) Site() string { return h.site }

// Register adds a reader to the domain and returns its handle. With
// SetLeakDetection enabled the returned Reader additionally carries a
// finalizer-armed leak guard (see leak.go).
func (d *Domain) Register() Reader {
	h := d.register()
	if d.leak.enabled.Load() {
		return d.guardLeak(h)
	}
	return h
}

// register is the concrete-typed Register used inside the package.
func (d *Domain) register() *Handle {
	h := &Handle{d: d, id: d.nextID.Add(1)}
	if d.stall.capture.Load() || d.leak.enabled.Load() {
		h.site = registrationSite()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.readers.Load()
	var rs []*Handle
	if old != nil {
		rs = make([]*Handle, len(*old), len(*old)+1)
		copy(rs, *old)
	}
	rs = append(rs, h)
	d.readers.Store(&rs)
	d.stats.noteReaders(len(rs))
	return h
}

// ReadLock enters a read-side critical section: one atomic store that
// advances the counter and sets the flag. Wait-free: the torture
// injection point between the state read and the publishing store
// compiles to a single predictable branch unless a schedpoint policy is
// enabled.
func (h *Handle) ReadLock() {
	if h.d == nil {
		panic("rcu: Handle used after Unregister")
	}
	s := h.state.Load()
	if s&1 != 0 {
		panic("rcu: nested ReadLock on the same Handle")
	}
	// Torture window: a reader suspended here has decided to enter but
	// has not yet published its critical section to synchronizers.
	schedpoint.Hit(schedpoint.RCUReadLockPublish)
	// (counter+1)<<1 | 1 == s + 3 when the flag bit is clear.
	h.state.Store(s + 3)
}

// ReadUnlock leaves the read-side critical section: one atomic store that
// clears the flag. Wait-free.
func (h *Handle) ReadUnlock() {
	s := h.state.Load()
	if s&1 == 0 {
		panic("rcu: ReadUnlock outside a read-side critical section")
	}
	h.state.Store(s &^ 1)
}

// Synchronize waits for all pre-existing read-side critical sections in the
// handle's domain.
func (h *Handle) Synchronize() {
	d := h.d
	if d == nil {
		panic("rcu: Handle used after Unregister")
	}
	d.Synchronize()
}

// Unregister removes the handle from its domain. The handle must not be
// inside a read-side critical section. Unregister is idempotent; any
// other use of the handle afterwards panics with a descriptive message.
func (h *Handle) Unregister() {
	if h.state.Load()&1 != 0 {
		panic("rcu: Unregister inside a read-side critical section")
	}
	d := h.d
	if d == nil {
		return // already unregistered
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.readers.Load()
	if old == nil {
		return
	}
	rs := make([]*Handle, 0, len(*old))
	for _, r := range *old {
		if r != h {
			rs = append(rs, r)
		}
	}
	d.readers.Store(&rs)
	h.d = nil
}

// Synchronize blocks until every read-side critical section that was in
// progress when the call started has completed. It takes no locks, and
// concurrent callers combine: one leads the reader scan, the rest wait
// on the shared sequence (see the Domain doc comment).
//
// Soundness of sharing: a follower observing sequence q at entry is
// released at seqSnap(q), i.e. only by a grace period whose leader won
// its election CAS *after* the follower's load of q (the CAS is ordered
// after q in the sequence's modification order — an earlier leader
// would have made the load return an in-flight value that seqSnap
// rounds past). The leader snapshots reader state after that CAS, so
// every reader inside a critical section at the follower's call entry
// is either still inside — snapshotted and waited for — or already
// left; both satisfy the follower.
func (d *Domain) Synchronize() {
	start := time.Now()
	var span *citrustrace.SyncSpan
	if tr := d.tracer.Load(); tr != nil {
		s := tr.SyncBegin()
		span = &s
	}
	var cost syncCost
	var led, shared bool
	watch := d.stall.newStallWatch(start)
	tok := d.stats.syncEnter(start)
	defer func() {
		d.stats.syncExit(tok)
		watch.settle(&d.stats)
		if span != nil {
			span.End(cost.spins, cost.yields)
		}
		d.stats.record(start, cost, led, shared, !led && !shared)
	}()
	// Torture window: everything before the snapshot — readers entering
	// now must not be waited for, readers already inside must be.
	schedpoint.Hit(schedpoint.RCUSyncFlip)
	if d.nocombine.Load() {
		d.scanReaders(span, &cost, &watch)
		led = true
		return
	}
	target := seqSnap(d.gpSeq.Load())
	if d.snapEarly.Load() {
		target -= gpSeqStride // negative control: see SetSnapEarlyMutant
	}
	// Torture window: the sequence target is fixed but the election has
	// not happened — the window in which a stale target or a mis-ordered
	// election would let a shared grace period miss this call's readers.
	schedpoint.Hit(schedpoint.RCUGPElect)
	for {
		cur := d.gpSeq.Load()
		if seqDone(cur, target) {
			return
		}
		if cur&gpSeqStateMask == 0 {
			// Idle: try to lead the next grace period. Losing the race
			// just means reloading — the winner is doing our work.
			if !d.gpSeq.CompareAndSwap(cur, cur+1) {
				continue
			}
			led = true
			scanStart := time.Now()
			waited := d.scanReaders(span, &cost, &watch)
			d.gpSeq.Add(gpSeqStride - 1) // publish completion at cur+2
			if span != nil {
				span.GPLead(scanStart, cur+gpSeqStride, waited)
			}
			continue
		}
		// A grace period is in flight: follow it. The in-flight scan (or
		// a successor we may still need to lead) will release us.
		shared = true
		followStart := time.Now()
		d.followSeq(cur, &cost, span, &watch)
		d.stats.followWait(time.Since(followStart))
		if span != nil {
			span.GPShare(followStart, target, cur)
		}
	}
}

// scanReaders runs one snapshot-and-wait pass over all registered
// readers — a full grace period with respect to the instant it is
// called — and reports how many readers it actually waited on.
func (d *Domain) scanReaders(span *citrustrace.SyncSpan, cost *syncCost, watch *stallWatch) int {
	rsp := d.readers.Load()
	if rsp == nil {
		return 0
	}
	readers := *rsp
	// Snapshot first, then wait per reader. A reader whose word changed
	// after the snapshot either left its section (flag cleared) or entered
	// a strictly later one (counter advanced); in both cases it is not in
	// a section that predates this call.
	snap := make([]uint64, len(readers))
	active := false
	for i, r := range readers {
		snap[i] = r.state.Load()
		active = active || snap[i]&1 != 0
	}
	if !active {
		return 0
	}
	waited := 0
	for i, r := range readers {
		if snap[i]&1 == 0 {
			continue
		}
		// Torture window: mid-scan, earlier readers' snapshots are stale
		// while this one is still being waited out.
		schedpoint.Hit(schedpoint.RCUSyncScan)
		// r was inside a pre-existing read-side critical section: this
		// grace period is attributable to it.
		waited++
		var waitStart time.Time
		if span != nil {
			waitStart = time.Now()
		}
		var spins int64
		sleep := minWaiterSleep
		for attempt := int64(0); r.state.Load() == snap[i]; attempt++ {
			switch {
			case attempt < spinsBeforeYield:
				spins++
			case attempt < spinsBeforeYield+yieldsBeforeSleep:
				runtime.Gosched()
				cost.yields++
				cost.rechecks++
			default:
				// The reader is descheduled or long-running; yielding
				// forever against it burns this core. Sleep instead.
				time.Sleep(sleep)
				if sleep < maxWaiterSleep {
					sleep *= 2
				}
				cost.sleeps++
				cost.rechecks++
				if watch.due() {
					// A grace-period stall: report the readers this scan
					// is still blocked on (this one and any later reader
					// whose snapshotted critical section persists).
					watch.fire(&d.stall, &d.stats, span, "scalable",
						stalledInScan(readers, snap, i))
				}
			}
		}
		cost.spins += spins
		if span != nil {
			span.ReaderWait(r.id, waitStart, time.Since(waitStart), spins)
		}
	}
	return waited
}

// stalledInScan collects, from a reader scan blocked at index i, every
// reader still inside the critical section its snapshot caught: exactly
// the set the grace period cannot complete without.
func stalledInScan(readers []*Handle, snap []uint64, i int) []StalledReader {
	var out []StalledReader
	for j := i; j < len(readers); j++ {
		if snap[j]&1 != 0 && readers[j].state.Load() == snap[j] {
			out = append(out, StalledReader{ID: readers[j].id, Site: readers[j].site})
		}
	}
	return out
}

// followSeq waits, with the same spin → yield → sleep escalation as the
// reader scan, for the grace-period sequence to move past cur — i.e.
// for the in-flight grace period observed at cur to complete.
func (d *Domain) followSeq(cur uint64, cost *syncCost, span *citrustrace.SyncSpan, watch *stallWatch) {
	sleep := minWaiterSleep
	for attempt := int64(0); d.gpSeq.Load() == cur; attempt++ {
		switch {
		case attempt < spinsBeforeYield:
			cost.spins++
		case attempt < spinsBeforeYield+yieldsBeforeSleep:
			runtime.Gosched()
			cost.yields++
			cost.rechecks++
		default:
			time.Sleep(sleep)
			if sleep < maxWaiterSleep {
				sleep *= 2
			}
			cost.sleeps++
			cost.rechecks++
			if watch.due() {
				// A follower cannot see the leader's snapshot, so the
				// report names every reader currently inside a critical
				// section — a superset of the true blockers.
				watch.fire(&d.stall, &d.stats, span, "scalable", d.activeReaders())
			}
		}
	}
}

// activeReaders lists the readers currently inside a read-side critical
// section, for follower-side stall reports.
func (d *Domain) activeReaders() []StalledReader {
	rsp := d.readers.Load()
	if rsp == nil {
		return nil
	}
	var out []StalledReader
	for _, r := range *rsp {
		if r.state.Load()&1 != 0 {
			out = append(out, StalledReader{ID: r.id, Site: r.site})
		}
	}
	return out
}

// SetCombining toggles grace-period combining (on by default, including
// for zero-value Domains). With combining off every Synchronize call
// runs its own reader scan, the pre-combining behavior — kept for
// ablation benchmarks (cmd/citrusbench -figure a5) and as an escape
// hatch. Safe to toggle at any time: in-flight calls finish under the
// rule they started with, and both paths provide full grace periods, so
// mixing them is sound.
func (d *Domain) SetCombining(on bool) { d.nocombine.Store(!on) }

// SetSnapEarlyMutant deliberately BREAKS the domain for the torture
// harness's negative control (cmd/citrustorture -flavor snapearly):
// sequence targets are computed one grace-period stride early, so a
// caller is released by the in-flight grace period — whose reader
// snapshot may predate the caller — or, when the domain is idle,
// returns without waiting at all. This violates exactly the covering
// obligation the combining protocol must uphold; the torture oracles
// must catch it (see docs/VERIFICATION.md). Never enable it anywhere
// else.
func (d *Domain) SetSnapEarlyMutant(on bool) { d.snapEarly.Store(on) }

// SetTracer attaches tr's grace-period event recording to the domain
// (see citrustrace.SyncTracer); nil detaches. Safe to toggle at any
// time, concurrently with Synchronize calls.
func (d *Domain) SetTracer(tr *citrustrace.SyncTracer) { d.tracer.Store(tr) }

// SetStallTimeout arms the grace-period stall detector: a Synchronize
// call still waiting after timeout fires a StallReport (see
// SetStallHandler), bumps Stats.Stalls, and raises Stats.ActiveStalls
// until it completes. Repeated reports for one call double their
// interval. timeout <= 0 disables detection (the default). Safe to
// change at any time; in-flight calls keep the setting they started
// with. Detection only reads time in the slow (sleeping) phase of the
// wait loop, so healthy grace periods pay nothing.
func (d *Domain) SetStallTimeout(timeout time.Duration) {
	if timeout < 0 {
		timeout = 0
	}
	d.stall.timeout.Store(int64(timeout))
}

// SetStallHandler installs fn as the stall-report sink (nil removes
// it). fn runs synchronously on the stalled Synchronize caller's
// goroutine with no domain locks held; it must be safe for concurrent
// use and should not block. With no handler installed stalls are still
// counted in Stats and traced via citrustrace.EvStall.
func (d *Domain) SetStallHandler(fn func(StallReport)) {
	if fn == nil {
		d.stall.handler.Store(nil)
		return
	}
	d.stall.handler.Store(&fn)
}

// SetSiteCapture toggles registration-site capture: while on, Register
// records the caller's "file:line (function)" on the handle, and stall
// reports include it next to each blocking reader id. Costs one
// runtime.Callers walk per Register; the read-side primitives are
// untouched. Handles registered while capture was off report "".
func (d *Domain) SetSiteCapture(on bool) { d.stall.capture.Store(on) }

// Stats reports the domain's cumulative grace-period accounting. It may
// be called at any time from any goroutine; all counters are monotonic
// except the ActiveStalls gauge.
func (d *Domain) Stats() Stats { return d.stats.snapshot(d.Readers()) }

// Readers reports the number of currently registered readers. Intended for
// tests and instrumentation.
func (d *Domain) Readers() int {
	rsp := d.readers.Load()
	if rsp == nil {
		return 0
	}
	return len(*rsp)
}
