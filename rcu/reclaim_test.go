package rcu

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReclaimerRunsCallbacks(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			r := NewReclaimer(f)
			defer r.Close()
			var ran atomic.Int64
			for i := 0; i < 100; i++ {
				r.Defer(func() { ran.Add(1) })
			}
			r.Barrier()
			if got := ran.Load(); got != 100 {
				t.Fatalf("%d callbacks ran after Barrier, want 100", got)
			}
		})
	}
}

// TestReclaimerWaitsForPreexistingReader: a callback deferred while a
// reader is inside its critical section must not run until that reader
// leaves.
func TestReclaimerWaitsForPreexistingReader(t *testing.T) {
	for name, f := range flavors() {
		t.Run(name, func(t *testing.T) {
			r := NewReclaimer(f)
			defer r.Close()
			reader := f.Register()
			defer reader.Unregister()

			inCS := make(chan struct{})
			release := make(chan struct{})
			var readerInside atomic.Bool
			readerInside.Store(true)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				reader.ReadLock()
				close(inCS)
				<-release
				readerInside.Store(false)
				reader.ReadUnlock()
			}()

			<-inCS
			ranTooEarly := make(chan bool, 1)
			r.Defer(func() { ranTooEarly <- readerInside.Load() })

			select {
			case early := <-ranTooEarly:
				if early {
					t.Fatal("callback ran while a pre-existing reader was inside its critical section")
				}
				t.Fatal("callback ran before the reader was released (scheduling makes this impossible)")
			case <-time.After(20 * time.Millisecond):
			}
			close(release)
			if early := <-ranTooEarly; early {
				t.Fatal("callback observed the reader still inside")
			}
			wg.Wait()
		})
	}
}

func TestReclaimerOrdering(t *testing.T) {
	r := NewReclaimer(NewDomain())
	defer r.Close()
	var mu sync.Mutex
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		r.Defer(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	r.Barrier()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 50 {
		t.Fatalf("ran %d callbacks, want 50", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("callbacks ran out of order: %v", order[:i+1])
		}
	}
}

func TestReclaimerCloseDrains(t *testing.T) {
	r := NewReclaimer(NewDomain())
	var ran atomic.Int64
	for i := 0; i < 500; i++ {
		r.Defer(func() { ran.Add(1) })
	}
	r.Close()
	if got := ran.Load(); got != 500 {
		t.Fatalf("Close drained %d callbacks, want 500", got)
	}
}

func TestReclaimerCloseIdempotent(t *testing.T) {
	r := NewReclaimer(NewDomain())
	r.Close()
	r.Close()
}

func TestDeferAfterClosePanics(t *testing.T) {
	r := NewReclaimer(NewDomain())
	r.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Defer after Close did not panic")
		}
	}()
	r.Defer(func() {})
}

func TestTryDeferAfterCloseReturnsFalse(t *testing.T) {
	r := NewReclaimer(NewDomain())
	var ran atomic.Bool
	if !r.TryDefer(func() { ran.Store(true) }) {
		t.Fatal("TryDefer on an open reclaimer returned false")
	}
	r.Close()
	if !ran.Load() {
		t.Fatal("callback accepted by TryDefer did not run by Close")
	}
	if r.TryDefer(func() { t.Error("callback ran after a false TryDefer") }) {
		t.Fatal("TryDefer after Close returned true")
	}
}

// TestTryDeferConcurrentClose races TryDefer against Close from many
// goroutines: every accepted callback must run exactly once, every
// rejected one never.
func TestTryDeferConcurrentClose(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		r := NewReclaimer(NewDomain())
		var accepted, ran atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					if r.TryDefer(func() { ran.Add(1) }) {
						accepted.Add(1)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			runtime.Gosched()
			r.Close()
		}()
		close(start)
		wg.Wait()
		// Close has returned in all goroutines, so the final drain is done.
		if got, want := ran.Load(), accepted.Load(); got != want {
			t.Fatalf("iter %d: %d callbacks ran, %d were accepted", iter, got, want)
		}
	}
}

// TestReclaimerConcurrentDefer hammers Defer from many goroutines with
// active readers cycling, then verifies exactly-once execution.
func TestReclaimerConcurrentDefer(t *testing.T) {
	dom := NewDomain()
	r := NewReclaimer(dom)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		h := dom.Register()
		readers.Add(1)
		go func() {
			defer readers.Done()
			defer h.Unregister()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.ReadLock()
				h.ReadUnlock()
			}
		}()
	}

	var ran atomic.Int64
	var wg sync.WaitGroup
	const producers, each = 8, 500
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Defer(func() { ran.Add(1) })
			}
		}()
	}
	wg.Wait()
	r.Barrier()
	if got := ran.Load(); got != producers*each {
		t.Fatalf("ran %d callbacks, want %d", got, producers*each)
	}
	close(stop)
	readers.Wait()
	r.Close()
}

// TestReclaimerRecyclePattern drives the full unpublish→defer→recycle
// pattern that motivates the API (compare examples/rcucache).
func TestReclaimerRecyclePattern(t *testing.T) {
	dom := NewDomain()
	r := NewReclaimer(dom)
	defer r.Close()

	type obj struct{ invalid atomic.Bool }
	var ptr atomic.Pointer[obj]
	ptr.Store(&obj{})

	stop := make(chan struct{})
	var violations atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		h := dom.Register()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer h.Unregister()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.ReadLock()
				if ptr.Load().invalid.Load() {
					violations.Add(1)
				}
				h.ReadUnlock()
			}
		}()
	}

	for i := 0; i < 300; i++ {
		old := ptr.Swap(&obj{})
		r.Defer(func() { old.invalid.Store(true) }) // "recycle"
	}
	r.Barrier()
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("readers observed %d recycled objects", v)
	}
}

// TestReclaimerNoGoroutineLeak: Close must join the background goroutine
// (the package promises no fire-and-forget goroutines).
func TestReclaimerNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		r := NewReclaimer(NewDomain())
		r.Defer(func() {})
		r.Close()
	}
	// Give the runtime a moment to retire exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after 20 reclaimer lifecycles", before, after)
	}
}

// TestReclaimerOldestAge drives the queue-age gauge: zero when idle,
// growing while a parked reader holds up the grace period the pending
// batch is waiting on, zero again once the callbacks run.
func TestReclaimerOldestAge(t *testing.T) {
	d := NewDomain()
	r := NewReclaimer(d)
	defer r.Close()

	if age := r.OldestAge(); age != 0 {
		t.Fatalf("idle reclaimer OldestAge = %v, want 0", age)
	}

	rd := d.Register()
	defer rd.Unregister()
	rd.ReadLock()

	ran := make(chan struct{})
	r.Defer(func() { close(ran) })

	// The callback cannot run until the reader leaves; the gauge must see
	// its age growing meanwhile (whether the batch is still queued or
	// already in flight behind Synchronize).
	time.Sleep(30 * time.Millisecond)
	if age := r.OldestAge(); age < 10*time.Millisecond {
		t.Fatalf("OldestAge = %v while blocked, want ≥ 10ms", age)
	}
	if got := r.Stats().OldestAgeNanos; got < (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("Stats().OldestAgeNanos = %d while blocked, want ≥ 10ms", got)
	}

	rd.ReadUnlock()
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("callback never ran after reader exit")
	}
	r.Barrier()
	if age := r.OldestAge(); age != 0 {
		t.Fatalf("drained reclaimer OldestAge = %v, want 0", age)
	}
}
