package rcu

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/citrustrace"
	"github.com/go-citrus/citrus/internal/schedpoint"
)

// ClassicDomain mirrors the classic user-space RCU design of Desnoyers,
// McKenney, Stern, Dagenais & Walpole (IEEE TPDS 2012): readers copy a
// global grace-period counter into their own slot on ReadLock, and
// Synchronize — serialized behind a single global mutex — advances the
// global counter and waits for every reader to either leave its critical
// section or observe the new counter value, twice per grace period.
//
// The global mutex is the point: every updater that needs a grace period
// queues behind every other one. This is the behaviour the paper's Figure 8
// measures and indicts; Domain is the fix. Keep ClassicDomain for
// comparison and for workloads with at most one synchronizing updater,
// where it performs identically.
//
// The zero value is ready to use.
type ClassicDomain struct {
	mu      sync.Mutex // registration copy-on-write
	syncMu  sync.Mutex // serializes Synchronize callers (the bottleneck)
	gp      atomic.Uint64
	readers atomic.Pointer[[]*ClassicHandle]
	nextID  atomic.Uint64 // reader handle ids, for trace attribution

	// tracer, when set, receives one grace-period span per Synchronize
	// with a per-reader wait breakdown (see Domain.tracer).
	tracer atomic.Pointer[citrustrace.SyncTracer]

	// stall is the stall-detection configuration (see stall.go), shared
	// with Domain; off by default.
	stall stallControl

	// stats accumulates grace-period accounting. Only Register and
	// Synchronize write it; the read-side primitives never touch it.
	stats syncStats
}

// NewClassicDomain returns a new, empty ClassicDomain.
func NewClassicDomain() *ClassicDomain {
	d := &ClassicDomain{}
	// Start at 1 so a reader's slot value 0 unambiguously means "not in a
	// read-side critical section".
	d.gp.Store(1)
	return d
}

// A ClassicHandle is a reader registered with a ClassicDomain. Its slot
// holds 0 outside critical sections and the observed grace-period counter
// inside one.
type ClassicHandle struct {
	_    [cacheLinePad]byte
	slot atomic.Uint64
	_    [cacheLinePad - 8]byte

	d    *ClassicDomain
	id   uint64
	site string // registration call site; "" unless SetSiteCapture was on
}

// ID reports the handle's domain-unique reader id, stable for the
// handle's lifetime. Tracing uses it to attribute grace-period waits to
// specific readers (citrustrace.EvReaderWait).
func (h *ClassicHandle) ID() uint64 { return h.id }

// Site reports the handle's registration call site, "" unless the
// domain's SetSiteCapture was enabled when the handle was registered.
func (h *ClassicHandle) Site() string { return h.site }

// Register adds a reader to the domain and returns its handle.
func (d *ClassicDomain) Register() Reader { return d.register() }

func (d *ClassicDomain) register() *ClassicHandle {
	if d.gp.Load() == 0 {
		d.gp.CompareAndSwap(0, 1) // zero-value domain: establish epoch 1
	}
	h := &ClassicHandle{d: d, id: d.nextID.Add(1)}
	if d.stall.capture.Load() {
		h.site = registrationSite()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.readers.Load()
	var rs []*ClassicHandle
	if old != nil {
		rs = make([]*ClassicHandle, len(*old), len(*old)+1)
		copy(rs, *old)
	}
	rs = append(rs, h)
	d.readers.Store(&rs)
	d.stats.noteReaders(len(rs))
	return h
}

// ReadLock enters a read-side critical section by publishing the current
// global grace-period counter in the reader's slot. Wait-free: the
// torture injection point between the counter read and the slot store
// compiles to a single predictable branch unless a schedpoint policy is
// enabled.
func (h *ClassicHandle) ReadLock() {
	if h.d == nil {
		panic("rcu: ClassicHandle used after Unregister")
	}
	if h.slot.Load() != 0 {
		panic("rcu: nested ReadLock on the same ClassicHandle")
	}
	gp := h.d.gp.Load()
	// Torture window: the reader holds a counter value it has not yet
	// published — the exact reordering race the original URCU defends
	// against with its double phase flip (see Synchronize's comment).
	schedpoint.Hit(schedpoint.RCUReadLockPublish)
	h.slot.Store(gp)
}

// ReadUnlock leaves the read-side critical section. Wait-free.
func (h *ClassicHandle) ReadUnlock() {
	if h.slot.Load() == 0 {
		panic("rcu: ReadUnlock outside a read-side critical section")
	}
	h.slot.Store(0)
}

// Synchronize waits for all pre-existing read-side critical sections in the
// handle's domain.
func (h *ClassicHandle) Synchronize() {
	d := h.d
	if d == nil {
		panic("rcu: ClassicHandle used after Unregister")
	}
	d.Synchronize()
}

// Unregister removes the handle from its domain. The handle must not be
// inside a read-side critical section. Unregister is idempotent; any
// other use of the handle afterwards panics with a descriptive message.
func (h *ClassicHandle) Unregister() {
	if h.slot.Load() != 0 {
		panic("rcu: Unregister inside a read-side critical section")
	}
	d := h.d
	if d == nil {
		return // already unregistered
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.readers.Load()
	if old == nil {
		return
	}
	rs := make([]*ClassicHandle, 0, len(*old))
	for _, r := range *old {
		if r != h {
			rs = append(rs, r)
		}
	}
	d.readers.Store(&rs)
	h.d = nil
}

// Synchronize blocks until every pre-existing read-side critical section
// has completed. All callers serialize behind one mutex — the bottleneck
// the paper's Figure 8 measures.
//
// The original C implementation flips a one-bit phase twice per grace
// period because a single flip admits a reordering race between a reader
// sampling the counter and the synchronizer scanning slots. With Go's
// sequentially consistent atomics and a monotonic epoch a single pass is
// sound: a reader slot below the new epoch belongs to a pre-existing
// section (wait for it); a slot of zero or at/above the new epoch belongs
// to no section or to one that started after this call (ignore it).
func (d *ClassicDomain) Synchronize() {
	// Start the clock — and the trace span — before queueing on syncMu:
	// the wait reported in Stats and in the EvSync event includes the
	// serialization behind other synchronizers, which is the cost
	// Figure 8 is about.
	start := time.Now()
	var span *citrustrace.SyncSpan
	if tr := d.tracer.Load(); tr != nil {
		s := tr.SyncBegin()
		span = &s
	}
	var cost syncCost
	watch := d.stall.newStallWatch(start)
	tok := d.stats.syncEnter(start)
	d.syncMu.Lock()
	defer func() {
		d.syncMu.Unlock()
		d.stats.syncExit(tok)
		watch.settle(&d.stats)
		if span != nil {
			span.End(cost.spins, cost.yields)
		}
		// Every classic Synchronize leads its own grace period; there is
		// no combining to share or expedite.
		d.stats.record(start, cost, true, false, false)
	}()
	// Torture window: before the counter flip, the new grace period is
	// decided but not yet visible to entering readers.
	schedpoint.Hit(schedpoint.RCUSyncFlip)
	newGP := d.gp.Add(1)
	rsp := d.readers.Load()
	if rsp == nil {
		return
	}
	readers := *rsp
	for i, r := range readers {
		// Torture window: mid-scan between readers.
		schedpoint.Hit(schedpoint.RCUSyncScan)
		var spins int64
		var waitStart time.Time
		sleep := minWaiterSleep
		for attempt := int64(0); ; attempt++ {
			c := r.slot.Load()
			if c == 0 || c >= newGP {
				break
			}
			if span != nil && waitStart.IsZero() {
				// First failed check: the reader is inside a
				// pre-existing critical section this grace period must
				// wait out.
				waitStart = time.Now()
			}
			switch {
			case attempt < spinsBeforeYield:
				spins++
			case attempt < spinsBeforeYield+yieldsBeforeSleep:
				runtime.Gosched()
				cost.yields++
				cost.rechecks++
			default:
				// Descheduled or long-running reader: stop burning the
				// core and sleep between re-checks (see Domain).
				time.Sleep(sleep)
				if sleep < maxWaiterSleep {
					sleep *= 2
				}
				cost.sleeps++
				cost.rechecks++
				if watch.due() {
					watch.fire(&d.stall, &d.stats, span, "classic",
						stalledClassic(readers[i:], newGP))
				}
			}
		}
		cost.spins += spins
		if span != nil && !waitStart.IsZero() {
			span.ReaderWait(r.id, waitStart, time.Since(waitStart), spins)
		}
	}
}

// stalledClassic collects, from the readers a classic scan has not yet
// cleared, those still inside a critical section that predates newGP —
// the set the grace period is blocked on.
func stalledClassic(readers []*ClassicHandle, newGP uint64) []StalledReader {
	var out []StalledReader
	for _, r := range readers {
		if c := r.slot.Load(); c != 0 && c < newGP {
			out = append(out, StalledReader{ID: r.id, Site: r.site})
		}
	}
	return out
}

// SetTracer attaches tr's grace-period event recording to the domain
// (see citrustrace.SyncTracer); nil detaches. Safe to toggle at any
// time, concurrently with Synchronize calls.
func (d *ClassicDomain) SetTracer(tr *citrustrace.SyncTracer) { d.tracer.Store(tr) }

// SetStallTimeout arms the grace-period stall detector; see
// Domain.SetStallTimeout for the exact semantics. For ClassicDomain the
// threshold measures the whole call, including serialization behind
// other synchronizers on the global mutex, but reports only fire while
// blocked on readers (a call queued behind a stalled synchronizer
// surfaces as that call's stall, not its own).
func (d *ClassicDomain) SetStallTimeout(timeout time.Duration) {
	if timeout < 0 {
		timeout = 0
	}
	d.stall.timeout.Store(int64(timeout))
}

// SetStallHandler installs fn as the stall-report sink (nil removes
// it); see Domain.SetStallHandler.
func (d *ClassicDomain) SetStallHandler(fn func(StallReport)) {
	if fn == nil {
		d.stall.handler.Store(nil)
		return
	}
	d.stall.handler.Store(&fn)
}

// SetSiteCapture toggles registration-site capture for stall
// attribution; see Domain.SetSiteCapture.
func (d *ClassicDomain) SetSiteCapture(on bool) { d.stall.capture.Store(on) }

// Stats reports the domain's cumulative grace-period accounting. It may
// be called at any time from any goroutine; all counters are monotonic
// except the ActiveStalls gauge.
func (d *ClassicDomain) Stats() Stats { return d.stats.snapshot(d.Readers()) }

// Readers reports the number of currently registered readers. Intended for
// tests and instrumentation.
func (d *ClassicDomain) Readers() int {
	rsp := d.readers.Load()
	if rsp == nil {
		return 0
	}
	return len(*rsp)
}
