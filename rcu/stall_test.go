package rcu

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// stallDomain is the configuration surface the stall tests exercise;
// both domain flavors implement it.
type stallDomain interface {
	Flavor
	SetStallTimeout(d time.Duration)
	SetStallHandler(h func(StallReport))
	SetSiteCapture(on bool)
	Stats() Stats
}

func stallDomains() map[string]stallDomain {
	return map[string]stallDomain{
		"Domain":        NewDomain(),
		"ClassicDomain": NewClassicDomain(),
		"EpochDomain":   NewEpochDomain(),
	}
}

// TestStallDetectorFiresWithReaderID pins the acceptance scenario on
// both flavors: a reader parked in its critical section past the
// threshold fires the stall handler with that reader's ID, raises the
// ActiveStalls gauge for the duration of the wait, and settles it once
// the reader leaves and the grace period completes.
func TestStallDetectorFiresWithReaderID(t *testing.T) {
	for name, d := range stallDomains() {
		t.Run(name, func(t *testing.T) {
			d.SetSiteCapture(true)
			d.SetStallTimeout(10 * time.Millisecond)
			var mu sync.Mutex
			var reports []StallReport
			d.SetStallHandler(func(r StallReport) {
				mu.Lock()
				reports = append(reports, r)
				mu.Unlock()
			})

			parked := d.Register()
			defer parked.Unregister()
			id := parked.(interface{ ID() uint64 }).ID()
			parked.ReadLock()

			done := make(chan struct{})
			go func() {
				d.Synchronize()
				close(done)
			}()

			deadline := time.Now().Add(10 * time.Second)
			for {
				mu.Lock()
				n := len(reports)
				mu.Unlock()
				if n > 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("no stall report within 10s of a parked reader")
				}
				time.Sleep(time.Millisecond)
			}
			if g := d.Stats().ActiveStalls; g != 1 {
				t.Fatalf("ActiveStalls = %d during the stall, want 1", g)
			}

			parked.ReadUnlock()
			<-done

			mu.Lock()
			defer mu.Unlock()
			r := reports[0]
			if r.Waited < 10*time.Millisecond {
				t.Fatalf("first report fired at %v, before the 10ms threshold", r.Waited)
			}
			var hit *StalledReader
			for i := range r.Readers {
				if r.Readers[i].ID == id {
					hit = &r.Readers[i]
				}
			}
			if hit == nil {
				t.Fatalf("report %v does not name the parked reader %d", r, id)
			}
			if hit.Site == "" {
				t.Fatalf("reader %d has no registration site despite SetSiteCapture", id)
			}
			if !strings.Contains(r.String(), "stalled") {
				t.Fatalf("report String() = %q", r.String())
			}
			s := d.Stats()
			if s.Stalls == 0 {
				t.Fatal("Stats.Stalls did not count the stall")
			}
			if s.ActiveStalls != 0 {
				t.Fatalf("ActiveStalls = %d after the grace period completed, want 0", s.ActiveStalls)
			}
		})
	}
}

// TestStallReportsDouble: a long stall produces a handful of reports
// with doubling intervals, not one per poll.
func TestStallReportsDouble(t *testing.T) {
	for name, d := range stallDomains() {
		t.Run(name, func(t *testing.T) {
			d.SetStallTimeout(4 * time.Millisecond)
			var fired sync.WaitGroup
			var mu sync.Mutex
			var count int
			fired.Add(2) // wait for two reports: threshold and 2×
			d.SetStallHandler(func(StallReport) {
				mu.Lock()
				count++
				if count <= 2 {
					fired.Done()
				}
				mu.Unlock()
			})

			parked := d.Register()
			defer parked.Unregister()
			parked.ReadLock()
			done := make(chan struct{})
			go func() {
				d.Synchronize()
				close(done)
			}()
			fired.Wait()
			parked.ReadUnlock()
			<-done

			mu.Lock()
			defer mu.Unlock()
			// The wait lasted only as long as two doubling intervals needed
			// (~12ms, plus scheduling); a report-per-poll bug would have
			// produced dozens.
			if count < 2 || count > 10 {
				t.Fatalf("%d reports for a two-interval stall, want 2..10", count)
			}
		})
	}
}

// TestStallDetectionOffByDefault: with no threshold configured (or the
// threshold reset to 0) a slow grace period fires nothing.
func TestStallDetectionOffByDefault(t *testing.T) {
	for name, d := range stallDomains() {
		t.Run(name, func(t *testing.T) {
			d.SetStallHandler(func(r StallReport) {
				t.Errorf("stall handler fired with detection off: %v", r)
			})
			parked := d.Register()
			defer parked.Unregister()
			parked.ReadLock()
			done := make(chan struct{})
			go func() {
				d.Synchronize()
				close(done)
			}()
			time.Sleep(30 * time.Millisecond)
			parked.ReadUnlock()
			<-done
			if s := d.Stats(); s.Stalls != 0 || s.ActiveStalls != 0 {
				t.Fatalf("stall counters moved with detection off: %+v", s)
			}
		})
	}
}

// TestStallHandlerRemoval: clearing the handler keeps counting stalls
// in Stats without calling anything.
func TestStallHandlerRemoval(t *testing.T) {
	d := NewDomain()
	d.SetStallTimeout(2 * time.Millisecond)
	d.SetStallHandler(func(StallReport) { t.Error("removed handler fired") })
	d.SetStallHandler(nil)

	parked := d.Register()
	defer parked.Unregister()
	parked.ReadLock()
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	for d.Stats().Stalls == 0 {
		time.Sleep(time.Millisecond)
	}
	parked.ReadUnlock()
	<-done
}
