package rcu

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDomainStatsCountSynchronize(t *testing.T) {
	d := NewDomain()
	if s := d.Stats(); s.Synchronizes != 0 || s.SyncWait.Total() != 0 {
		t.Fatalf("fresh domain has stats: %+v", s)
	}
	for i := 0; i < 5; i++ {
		d.Synchronize()
	}
	s := d.Stats()
	if s.Synchronizes != 5 {
		t.Fatalf("Synchronizes = %d, want 5", s.Synchronizes)
	}
	if s.SyncWait.Total() != 5 {
		t.Fatalf("SyncWait.Total() = %d, want 5", s.SyncWait.Total())
	}
}

func TestDomainStatsMeasureBlockedGracePeriod(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	defer r.Unregister()
	r.ReadLock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.Synchronize()
	}()
	time.Sleep(30 * time.Millisecond)
	r.ReadUnlock()
	<-done

	s := d.Stats()
	if s.Synchronizes != 1 {
		t.Fatalf("Synchronizes = %d, want 1", s.Synchronizes)
	}
	if got := s.SyncWait.Sum(); got < 20*time.Millisecond {
		t.Fatalf("SyncWait sum = %v, want ≥ the blocked interval", got)
	}
	if s.SyncWait.Mean() < 20*time.Millisecond {
		t.Fatalf("SyncWait mean = %v, want ≥ 20ms", s.SyncWait.Mean())
	}
	// 30ms of spinning is far beyond spinsBeforeYield, so the
	// synchronizer must have both spun and yielded.
	if s.SyncSpins == 0 || s.SyncYields == 0 {
		t.Fatalf("blocked synchronize recorded spins=%d yields=%d, want both > 0",
			s.SyncSpins, s.SyncYields)
	}
}

func TestDomainStatsReaderHighWater(t *testing.T) {
	testReaderHighWater(t, NewDomain())
	testReaderHighWater(t, NewClassicDomain())
}

type statsFlavor interface {
	Flavor
	StatsSource
}

func testReaderHighWater(t *testing.T, d statsFlavor) {
	t.Helper()
	rs := make([]Reader, 4)
	for i := range rs {
		rs[i] = d.Register()
	}
	for _, r := range rs {
		r.Unregister()
	}
	s := d.Stats()
	if s.Readers != 0 {
		t.Fatalf("%T: Readers = %d after unregistering all, want 0", d, s.Readers)
	}
	if s.ReaderHighWater != 4 {
		t.Fatalf("%T: ReaderHighWater = %d, want 4", d, s.ReaderHighWater)
	}
}

func TestClassicDomainStatsIncludeQueueing(t *testing.T) {
	d := NewClassicDomain()
	r := d.Register()
	defer r.Unregister()
	r.ReadLock()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Synchronize()
		}()
	}
	time.Sleep(30 * time.Millisecond)
	r.ReadUnlock()
	wg.Wait()
	s := d.Stats()
	if s.Synchronizes != 2 {
		t.Fatalf("Synchronizes = %d, want 2", s.Synchronizes)
	}
	// Both callers blocked ~30ms (one on the reader, one queued behind
	// the first), so the cumulative wait must reflect the serialization.
	if got := s.SyncWait.Sum(); got < 40*time.Millisecond {
		t.Fatalf("SyncWait sum = %v, want ≥ ~2× the blocked interval", got)
	}
}

// TestUnregisterIdempotent is the regression test for the handle
// lifecycle bug: a second Unregister used to crash with a raw
// nil-pointer dereference (h.d was nil'd by the first call).
func TestUnregisterIdempotent(t *testing.T) {
	for _, d := range []Flavor{NewDomain(), NewClassicDomain()} {
		r := d.Register()
		r.Unregister()
		r.Unregister() // must be a no-op, not a nil-deref panic
		r.Unregister()
	}
}

// TestUseAfterUnregisterPanicsDescriptively is the regression test for
// the other half of the lifecycle bug: Synchronize (and ReadLock) on an
// unregistered handle used to fail with an opaque nil-pointer
// dereference instead of naming the misuse.
func TestUseAfterUnregisterPanicsDescriptively(t *testing.T) {
	wantPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s after Unregister did not panic", name)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "used after Unregister") {
				t.Fatalf("%s after Unregister panicked with %v, want a descriptive message", name, r)
			}
		}()
		fn()
	}
	for _, d := range []Flavor{NewDomain(), NewClassicDomain()} {
		r := d.Register()
		r.Unregister()
		wantPanic("Synchronize", r.Synchronize)
		wantPanic("ReadLock", r.ReadLock)
	}
}

// TestStatsRace hammers Stats snapshots concurrently with
// Register/Unregister churn and grace periods, asserting every counter
// is monotonic. Run with -race (the CI race target covers ./rcu/...).
func TestStatsRace(t *testing.T) {
	d := NewDomain()
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Reader churn: register, enter/leave critical sections, unregister.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				r := d.Register()
				for j := 0; j < 4; j++ {
					r.ReadLock()
					r.ReadUnlock()
				}
				r.Unregister()
			}
		}()
	}
	// Synchronizers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				d.Synchronize()
			}
		}()
	}
	// Stats pollers asserting monotonicity.
	errs := make(chan string, 4)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev Stats
			for !stop.Load() {
				s := d.Stats()
				if s.Synchronizes < prev.Synchronizes ||
					s.SyncSpins < prev.SyncSpins ||
					s.SyncYields < prev.SyncYields ||
					s.ReaderHighWater < prev.ReaderHighWater ||
					s.SyncWait.Total() < prev.SyncWait.Total() ||
					s.SyncWait.SumNanos < prev.SyncWait.SumNanos {
					select {
					case errs <- "stats went backwards":
					default:
					}
					return
				}
				prev = s
			}
		}()
	}

	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestStatsMerge pins the cross-domain fold semantics: counters and
// occupancy gauges sum, OldestSyncAgeNanos takes the max, and the wait
// histograms merge bucket-exactly. citrus.Forest.Stats relies on these
// rules for its shard fold.
func TestStatsMerge(t *testing.T) {
	da, db := NewDomain(), NewDomain()
	ra, rb := da.Register(), db.Register()
	defer ra.Unregister()
	defer rb.Unregister()
	for i := 0; i < 3; i++ {
		da.Synchronize()
	}
	for i := 0; i < 5; i++ {
		db.Synchronize()
	}
	sa, sb := da.Stats(), db.Stats()

	merged := sa
	merged.Merge(sb)

	if got, want := merged.Synchronizes, sa.Synchronizes+sb.Synchronizes; got != want {
		t.Fatalf("merged Synchronizes = %d, want %d", got, want)
	}
	if got, want := merged.Readers, sa.Readers+sb.Readers; got != want {
		t.Fatalf("merged Readers = %d, want %d", got, want)
	}
	if got, want := merged.ReaderHighWater, sa.ReaderHighWater+sb.ReaderHighWater; got != want {
		t.Fatalf("merged ReaderHighWater = %d, want %d", got, want)
	}
	if got, want := merged.SyncWait.Total(), sa.SyncWait.Total()+sb.SyncWait.Total(); got != want {
		t.Fatalf("merged SyncWait.Total = %d, want %d", got, want)
	}
	if got, want := merged.SyncWait.Sum(), sa.SyncWait.Sum()+sb.SyncWait.Sum(); got != want {
		t.Fatalf("merged SyncWait.Sum = %v, want %v", got, want)
	}
	for i := range merged.SyncWait.Counts {
		if merged.SyncWait.Counts[i] != sa.SyncWait.Counts[i]+sb.SyncWait.Counts[i] {
			t.Fatalf("bucket %d not merged exactly", i)
		}
	}

	// Gauge rules: ages take the max, occupancy sums.
	x := Stats{ActiveSyncs: 2, ActiveStalls: 1, OldestSyncAgeNanos: 100}
	y := Stats{ActiveSyncs: 3, OldestSyncAgeNanos: 700}
	x.Merge(y)
	if x.ActiveSyncs != 5 || x.ActiveStalls != 1 {
		t.Fatalf("occupancy gauges should sum: %+v", x)
	}
	if x.OldestSyncAgeNanos != 700 {
		t.Fatalf("OldestSyncAgeNanos = %d, want max 700", x.OldestSyncAgeNanos)
	}
	y.Merge(x) // max in the other direction is absorbing
	if y.OldestSyncAgeNanos != 700 {
		t.Fatalf("OldestSyncAgeNanos = %d, want 700", y.OldestSyncAgeNanos)
	}
}

// TestStatsMergeZeroIdentity checks merging a zero Stats changes nothing.
func TestStatsMergeZeroIdentity(t *testing.T) {
	d := NewDomain()
	d.Synchronize()
	s := d.Stats()
	merged := s
	merged.Merge(Stats{})
	if merged != s {
		t.Fatalf("merge with zero changed the snapshot:\n got %+v\nwant %+v", merged, s)
	}
}

// TestActiveSyncAgeGauge drives a Synchronize that blocks on a parked
// reader and checks the in-flight gauges see it: ActiveSyncs goes to 1,
// OldestSyncAgeNanos grows with the block, and both return to zero after
// the grace period completes.
func TestActiveSyncAgeGauge(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    interface {
			Register() Reader
			Synchronize()
			Stats() Stats
		}
	}{
		{"Domain", NewDomain()},
		{"ClassicDomain", NewClassicDomain()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.d.Register()
			defer r.Unregister()
			if s := tc.d.Stats(); s.ActiveSyncs != 0 || s.OldestSyncAgeNanos != 0 {
				t.Fatalf("idle domain reports in-flight syncs: %+v", s)
			}
			r.ReadLock()
			done := make(chan struct{})
			go func() {
				defer close(done)
				tc.d.Synchronize()
			}()
			deadline := time.Now().Add(2 * time.Second)
			for {
				s := tc.d.Stats()
				if s.ActiveSyncs == 1 && s.OldestSyncAgeNanos > 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("gauge never saw the in-flight Synchronize: %+v", s)
				}
				time.Sleep(time.Millisecond)
			}
			time.Sleep(20 * time.Millisecond)
			if s := tc.d.Stats(); s.OldestSyncAgeNanos < (10 * time.Millisecond).Nanoseconds() {
				t.Fatalf("OldestSyncAgeNanos = %v, want to have grown past 10ms",
					time.Duration(s.OldestSyncAgeNanos))
			}
			r.ReadUnlock()
			<-done
			if s := tc.d.Stats(); s.ActiveSyncs != 0 || s.OldestSyncAgeNanos != 0 {
				t.Fatalf("gauges did not return to zero after completion: %+v", s)
			}
		})
	}
}
