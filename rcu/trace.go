package rcu

import "github.com/go-citrus/citrus/citrustrace"

// Traceable is a flavor that can attach a grace-period event tracer.
// Domain and ClassicDomain implement it; consumers (e.g.
// citrus.Tree.EnableTracing) type-assert against it so flavors without
// tracing keep working unchanged.
//
// With a tracer attached, every Synchronize records one EvSync span
// (entry to return — for ClassicDomain that includes queueing behind
// other synchronizers, the paper's Figure 8 bottleneck) and one
// EvReaderWait span per reader it waited on, attributed by reader
// handle id. With no tracer the synchronize path pays one atomic load
// and a predictable branch; the read-side primitives are untouched
// either way.
type Traceable interface {
	// SetTracer attaches tr to the domain; nil detaches. Safe to toggle
	// at any time, concurrently with Synchronize calls (grace periods
	// already in flight finish under the tracer they started with).
	SetTracer(tr *citrustrace.SyncTracer)
}

var (
	_ Traceable = (*Domain)(nil)
	_ Traceable = (*ClassicDomain)(nil)
	_ Traceable = (*EpochDomain)(nil)
)
