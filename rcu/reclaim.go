package rcu

import "sync"

// Reclaimer provides asynchronous grace-period-deferred callbacks — the
// analog of the kernel's call_rcu/rcu_barrier, and the "efficient memory
// reclamation" integration named as future work in §7 of the Citrus
// paper. An updater that has just unpublished an object hands the cleanup
// to Defer instead of blocking in Synchronize itself; a background
// goroutine batches callbacks, waits one grace period per batch, and runs
// them.
//
// In Go the garbage collector frees unreachable memory on its own, so
// Defer is for the cases the GC cannot see: returning buffers to pools,
// closing descriptors held by readers, decrementing external reference
// counts, or recycling objects in place (see examples/rcucache for why
// recycling without a grace period is unsound).
//
// A Reclaimer owns one background goroutine; Close drains all pending
// callbacks (waiting the required grace period) and stops it.
type Reclaimer struct {
	flavor Flavor

	mu      sync.Mutex
	pending []func()
	wake    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	closed  bool
}

// NewReclaimer starts a reclaimer on the given flavor.
func NewReclaimer(flavor Flavor) *Reclaimer {
	r := &Reclaimer{
		flavor: flavor,
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go r.loop()
	return r
}

// Defer schedules fn to run after all read-side critical sections that
// currently exist have completed. Callbacks run on the reclaimer's
// goroutine, in submission order. Defer never blocks on readers. It must
// not be called after Close (it panics, matching use-after-close of
// other resources); callers that legitimately race Close should use
// TryDefer instead.
func (r *Reclaimer) Defer(fn func()) {
	if !r.TryDefer(fn) {
		panic("rcu: Defer on closed Reclaimer")
	}
}

// TryDefer schedules fn like Defer, but reports false instead of
// panicking when the reclaimer is already closed (fn is then never
// run). It is the right call on paths where shutdown is a peer of
// normal operation — e.g. a tree delete retiring a node while the
// owner concurrently closes the reclaimer: the caller falls back to
// whatever not-deferring means for it (for node recycling, dropping
// the node to the garbage collector).
//
// The decision is atomic with Close draining: a true return guarantees
// fn runs after its grace period — if Close is already underway, the
// final drain still sees fn — and a false return guarantees it never
// runs.
func (r *Reclaimer) TryDefer(fn func()) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.pending = append(r.pending, fn)
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default: // a wakeup is already queued
	}
	return true
}

// Barrier blocks until every callback deferred before the call has run
// (the analog of rcu_barrier). It must not be called from inside a
// read-side critical section or from a callback.
func (r *Reclaimer) Barrier() {
	ch := make(chan struct{})
	r.Defer(func() { close(ch) })
	<-ch
}

// Close drains all pending callbacks — waiting the grace periods they
// require — and stops the background goroutine. Close is idempotent.
func (r *Reclaimer) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	<-r.done
}

// loop is the reclaimer goroutine: batch, synchronize, run, repeat.
func (r *Reclaimer) loop() {
	defer close(r.done)
	for {
		select {
		case <-r.wake:
			r.drainOnce()
		case <-r.stop:
			// Final drain: anything deferred before Close must still run
			// after a proper grace period.
			for r.drainOnce() {
			}
			return
		}
	}
}

// drainOnce takes the current batch, waits one grace period, runs the
// batch. It reports whether it ran anything.
func (r *Reclaimer) drainOnce() bool {
	r.mu.Lock()
	batch := r.pending
	r.pending = nil
	r.mu.Unlock()
	if len(batch) == 0 {
		return false
	}
	// One grace period covers the whole batch: every callback was
	// deferred before this point, so every reader that could still see
	// the retired objects is pre-existing here.
	r.flavor.Synchronize()
	for _, fn := range batch {
		fn()
	}
	return true
}
