package rcu

import (
	"sync"
	"time"
)

// defaultDrainBatch bounds how many callbacks one grace period covers in
// the normal (non-expedited) drain. Bounding the batch keeps a slow
// callback from delaying the whole queue behind it and lets the loop
// notice Close between entries; raising it amortizes grace periods over
// more callbacks. Expedited and shutdown drains ignore the bound.
const defaultDrainBatch = 512

// defaultBackpressure is how long Defer/TryDefer block at the hard cap
// waiting for the drain to make room before dropping the callback.
const defaultBackpressure = time.Millisecond

// capPollInterval is how often a backpressured Defer re-checks the
// queue depth against the cap.
const capPollInterval = 50 * time.Microsecond

// Reclaimer provides asynchronous grace-period-deferred callbacks — the
// analog of the kernel's call_rcu/rcu_barrier, and the "efficient memory
// reclamation" integration named as future work in §7 of the Citrus
// paper. An updater that has just unpublished an object hands the cleanup
// to Defer instead of blocking in Synchronize itself; a background
// goroutine batches callbacks, waits one grace period per batch, and runs
// them.
//
// In Go the garbage collector frees unreachable memory on its own, so
// Defer is for the cases the GC cannot see: returning buffers to pools,
// closing descriptors held by readers, decrementing external reference
// counts, or recycling objects in place (see examples/rcucache for why
// recycling without a grace period is unsound).
//
// The queue can be bounded against callback flooding — the age-vs-memory
// failure mode where a stalled reader blocks every grace period while
// updaters keep retiring objects. WithHighWatermark arms an expedited
// drain when the queue grows past a soft threshold; WithHardCap bounds
// the queue absolutely: at the cap, Defer and TryDefer briefly block
// (WithBackpressure) waiting for the drain, then drop the callback —
// counted in Stats, never silently — leaving the object to the garbage
// collector. Both are off by default, preserving the unbounded
// queue-everything behavior.
//
// A Reclaimer owns one background goroutine; Close drains all pending
// callbacks (waiting the required grace periods) and stops it.
type Reclaimer struct {
	flavor Flavor

	// Configuration; immutable after NewReclaimer.
	high         int           // expedite threshold; 0 disables
	cap          int           // hard queue bound; 0 means unbounded
	drainBatch   int           // callbacks per grace period in normal drain
	backpressure time.Duration // blocking budget at the cap before dropping

	// mu guards the queue and ALL accounting below. The counters are
	// plain fields under the mutex the enqueue path already pays — not
	// atomics — so a bounded reclaimer costs retire-heavy workloads
	// nothing over the original unbounded one; Stats and QueueDepth
	// take the lock briefly instead. depth counts callbacks accepted
	// but not yet run (queued plus the batch in flight) and moves only
	// under mu, so the hard cap is never overshot. expedite is armed by
	// the enqueue that crosses the high watermark and cleared once the
	// drain gets back below it, making each crossing count one
	// expedited drain.
	mu       sync.Mutex
	pending  []pendingCB
	inflight time.Time // enqueue time of the in-flight batch's head; zero when none
	closed   bool
	depth    int64
	expedite bool

	deferred  int64
	executed  int64
	dropped   int64
	expedited int64
	gps       int64
	highWater int64

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// pendingCB is one queued callback with its enqueue time, kept so the
// age of the backlog's head — how long the oldest retired object has
// been waiting for its grace period and callback — is observable
// (Stats.OldestAgeNanos, OldestAge). Age and depth together are the
// two axes of the RCU age-memory trade-off.
type pendingCB struct {
	fn func()
	at time.Time
}

// A ReclaimerOption configures a Reclaimer at construction; see
// WithHighWatermark, WithHardCap, WithDrainBatch and WithBackpressure.
type ReclaimerOption func(*Reclaimer)

// WithHighWatermark sets the queue depth at which the reclaimer switches
// to an expedited drain: the background goroutine stops batching and
// drains the whole queue — still one grace period per pass — until the
// depth falls back below n. Each upward crossing triggers (and counts)
// exactly one expedited drain. n <= 0 disables the watermark (the
// default).
func WithHighWatermark(n int) ReclaimerOption {
	return func(r *Reclaimer) {
		if n < 0 {
			n = 0
		}
		r.high = n
	}
}

// WithHardCap bounds the callback queue at n objects. An enqueue that
// finds the queue full blocks for the backpressure window (see
// WithBackpressure) waiting for the drain to make room; if the queue is
// still full the callback is dropped — Stats.Dropped is incremented,
// Defer returns normally and TryDefer returns false — and the retired
// object is left to the garbage collector. Dropping is safe for
// memory-only cleanup (pooled nodes); callbacks with external side
// effects (closing descriptors) should not share a capped reclaimer
// with floodable paths. n <= 0 means unbounded (the default). Barrier
// callbacks bypass the cap so Barrier cannot deadlock against it.
func WithHardCap(n int) ReclaimerOption {
	return func(r *Reclaimer) {
		if n < 0 {
			n = 0
		}
		r.cap = n
	}
}

// WithDrainBatch sets how many callbacks the normal drain runs per
// grace period (default 512). Smaller batches bound how long a slow
// callback can delay those behind it and make Close more responsive;
// larger batches amortize grace periods over more callbacks. Expedited
// and shutdown drains ignore the bound. n <= 0 restores the default.
func WithDrainBatch(n int) ReclaimerOption {
	return func(r *Reclaimer) {
		if n <= 0 {
			n = defaultDrainBatch
		}
		r.drainBatch = n
	}
}

// WithBackpressure sets how long an enqueue blocks at the hard cap
// waiting for room before dropping the callback (default 1ms). Zero
// or negative means drop immediately. Irrelevant without WithHardCap.
func WithBackpressure(d time.Duration) ReclaimerOption {
	return func(r *Reclaimer) {
		if d < 0 {
			d = 0
		}
		r.backpressure = d
	}
}

// NewReclaimer starts a reclaimer on the given flavor. With no options
// the queue is unbounded and callbacks drain in batches of 512 per
// grace period.
func NewReclaimer(flavor Flavor, opts ...ReclaimerOption) *Reclaimer {
	r := &Reclaimer{
		flavor:       flavor,
		drainBatch:   defaultDrainBatch,
		backpressure: defaultBackpressure,
		wake:         make(chan struct{}, 1),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	for _, opt := range opts {
		opt(r)
	}
	go r.loop()
	return r
}

// ReclaimerStats is a point-in-time snapshot of a Reclaimer's activity.
// QueueDepth is a gauge; everything else is cumulative.
type ReclaimerStats struct {
	// Deferred counts callbacks accepted by Defer/TryDefer/Barrier;
	// Executed counts callbacks that have run. Their difference is the
	// backlog (== QueueDepth).
	Deferred int64 `json:"deferred"`
	Executed int64 `json:"executed"`

	// Dropped counts callbacks rejected at the hard cap after the
	// backpressure window expired; the objects they guarded were left
	// to the garbage collector.
	Dropped int64 `json:"dropped"`

	// QueueDepth is the current number of accepted-but-not-run
	// callbacks (settled once per drained batch, so a batch in flight
	// counts until it completes); QueueHighWater the maximum depth ever
	// reached. With a
	// hard cap configured, Defer/TryDefer never grow the depth past the
	// cap; only Barrier callbacks, which bypass the cap to stay
	// deadlock-free, can push QueueHighWater beyond it.
	QueueDepth     int64 `json:"queue_depth"`
	QueueHighWater int64 `json:"queue_high_water"`

	// ExpeditedDrains counts upward crossings of the high watermark,
	// each of which switched the drain to expedited mode once.
	ExpeditedDrains int64 `json:"expedited_drains"`

	// GracePeriods counts Synchronize calls the drain has paid: how
	// many grace periods the batching amortized the backlog over.
	GracePeriods int64 `json:"grace_periods"`

	// OldestAgeNanos is a gauge: the age, in nanoseconds, of the oldest
	// accepted-but-not-run callback (including the batch in flight);
	// 0 with an empty queue. This is the "memory age" of the age-memory
	// trade-off: how stale the most patient retired object is. A
	// healthy reclaimer keeps it near one grace period; a stalled
	// reader shows as an age growing in step with QueueDepth, and the
	// watermark/hard-cap knobs (WithHighWatermark, WithHardCap) should
	// be tuned from exactly this pair of series.
	OldestAgeNanos int64 `json:"oldest_age_ns"`
}

// Stats reports the reclaimer's activity. Safe from any goroutine.
func (r *Reclaimer) Stats() ReclaimerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReclaimerStats{
		Deferred:        r.deferred,
		Executed:        r.executed,
		Dropped:         r.dropped,
		QueueDepth:      r.depth,
		QueueHighWater:  r.highWater,
		ExpeditedDrains: r.expedited,
		GracePeriods:    r.gps,
		OldestAgeNanos:  r.oldestAgeLocked(time.Now()).Nanoseconds(),
	}
}

// oldestAgeLocked computes the backlog head's age under mu. The batch
// in flight was enqueued before anything still queued, so its head
// timestamp wins when a drain is running.
func (r *Reclaimer) oldestAgeLocked(now time.Time) time.Duration {
	switch {
	case !r.inflight.IsZero():
		return now.Sub(r.inflight)
	case len(r.pending) > 0:
		return now.Sub(r.pending[0].at)
	}
	return 0
}

// OldestAge reports the age of the oldest accepted-but-not-run
// callback, 0 with an empty queue; see ReclaimerStats.OldestAgeNanos.
func (r *Reclaimer) OldestAge() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.oldestAgeLocked(time.Now())
}

// QueueDepth reports the current number of accepted-but-not-run
// callbacks. The kvserver health check reads it to detect a growing
// backlog (a stalled reader blocking the drain).
func (r *Reclaimer) QueueDepth() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.depth
}

// deferStatus is the outcome of an enqueue attempt.
type deferStatus int

const (
	deferAccepted deferStatus = iota
	deferDropped              // hard cap, backpressure window expired
	deferClosed               // reclaimer already closed
)

// Defer schedules fn to run after all read-side critical sections that
// currently exist have completed. Callbacks run on the reclaimer's
// goroutine, in submission order. Defer never blocks on readers; with a
// hard cap configured it may block briefly at the cap and then drop fn
// (counted in Stats.Dropped — see WithHardCap). It must not be called
// after Close (it panics, matching use-after-close of other resources);
// callers that legitimately race Close should use TryDefer instead.
func (r *Reclaimer) Defer(fn func()) {
	if r.enqueue(fn, false) == deferClosed {
		panic("rcu: Defer on closed Reclaimer")
	}
}

// TryDefer schedules fn like Defer, but reports false instead of
// panicking when the reclaimer is already closed, and false when the
// hard cap dropped fn (Stats.Dropped distinguishes the two). It is the
// right call on paths where not-deferring has a natural fallback —
// e.g. a tree delete retiring a node while the owner concurrently
// closes the reclaimer, or a capped queue shedding under flood: the
// caller drops the object to the garbage collector.
//
// The decision is atomic with Close draining: a true return guarantees
// fn runs after its grace period — if Close is already underway, the
// final drain still sees fn — and a false return guarantees it never
// runs.
func (r *Reclaimer) TryDefer(fn func()) bool {
	return r.enqueue(fn, false) == deferAccepted
}

// enqueue appends fn to the queue, applying the hard cap unless
// bypassCap. The depth check, the append and all accounting happen
// under one lock acquisition and depth only moves under mu, so the cap
// is never overshot: QueueDepth <= cap always holds.
func (r *Reclaimer) enqueue(fn func(), bypassCap bool) deferStatus {
	waited := false
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return deferClosed
		}
		if r.cap == 0 || bypassCap || r.depth < int64(r.cap) {
			r.pending = append(r.pending, pendingCB{fn: fn, at: time.Now()})
			r.depth++
			r.deferred++
			if r.depth > r.highWater {
				r.highWater = r.depth
			}
			if r.high > 0 && r.depth >= int64(r.high) && !r.expedite {
				// Upward crossing of the high watermark: arm exactly one
				// expedited drain; the drain disarms once back below.
				r.expedite = true
				r.expedited++
			}
			r.mu.Unlock()
			r.kick()
			return deferAccepted
		}
		r.mu.Unlock()
		if waited || !r.waitBelowCap() {
			r.mu.Lock()
			if r.closed {
				// Close arrived during the backpressure wait: this is a
				// defer-after-close, not a cap drop — Defer must panic,
				// TryDefer must report closed, and the drop counter must
				// not move on a closed reclaimer.
				r.mu.Unlock()
				return deferClosed
			}
			r.dropped++
			r.mu.Unlock()
			return deferDropped
		}
		waited = true
	}
}

// waitBelowCap applies backpressure: it blocks, polling, until the
// queue depth falls below the cap, the backpressure window expires, or
// the reclaimer closes. It reports whether room appeared; on close it
// returns false immediately so the caller's closed re-check decides the
// outcome instead of the wait running out its full window.
func (r *Reclaimer) waitBelowCap() bool {
	if r.backpressure <= 0 {
		return false
	}
	r.kick() // make sure the drain is running while we wait on it
	deadline := time.Now().Add(r.backpressure)
	for {
		time.Sleep(capPollSleep(time.Until(deadline)))
		r.mu.Lock()
		room := r.depth < int64(r.cap)
		closed := r.closed
		r.mu.Unlock()
		if room {
			return true
		}
		if closed || !time.Now().Before(deadline) {
			return false
		}
	}
}

// capPollSleep bounds one backpressure poll's sleep: the usual poll
// interval, clamped to the window remaining so a sub-interval
// backpressure setting is not rounded up to a full 50µs sleep.
func capPollSleep(remaining time.Duration) time.Duration {
	if remaining < capPollInterval {
		return remaining
	}
	return capPollInterval
}

// kick wakes the drain loop; a pending wakeup coalesces.
func (r *Reclaimer) kick() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// Barrier blocks until every callback deferred before the call has run
// (the analog of rcu_barrier). The barrier callback bypasses the hard
// cap, so Barrier never deadlocks against a full queue; it panics on a
// closed reclaimer. It must not be called from inside a read-side
// critical section or from a callback.
func (r *Reclaimer) Barrier() {
	ch := make(chan struct{})
	if r.enqueue(func() { close(ch) }, true) == deferClosed {
		panic("rcu: Barrier on closed Reclaimer")
	}
	<-ch
}

// Close drains all pending callbacks — waiting the grace periods they
// require — and stops the background goroutine. Close is idempotent.
func (r *Reclaimer) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	<-r.done
}

// loop is the reclaimer goroutine: batch, synchronize, run, repeat.
func (r *Reclaimer) loop() {
	defer close(r.done)
	for {
		select {
		case <-r.wake:
			// Drain everything available, one bounded batch per grace
			// period, breaking out promptly when Close arrives (the
			// stop case below finishes the job).
			for r.drainOnce(false) {
				select {
				case <-r.stop:
				default:
					continue
				}
				break
			}
		case <-r.stop:
			// Final drain: anything deferred before Close must still run
			// after a proper grace period.
			for r.drainOnce(true) {
			}
			return
		}
	}
}

// drainOnce takes one batch, waits one grace period, runs the batch. It
// reports whether it ran (or requeued) anything. In the normal drain
// the batch is bounded by drainBatch and stop is re-checked between
// callbacks — a Close arriving mid-batch pushes the remainder back for
// the final drain; expedited mode (high watermark crossed) and the
// final drain take the whole queue.
func (r *Reclaimer) drainOnce(final bool) bool {
	r.mu.Lock()
	n := len(r.pending)
	if n == 0 {
		r.mu.Unlock()
		return false
	}
	if !final && !r.expedite && n > r.drainBatch {
		n = r.drainBatch
	}
	batch := r.pending[:n:n]
	if n == len(r.pending) {
		r.pending = nil
	} else {
		r.pending = r.pending[n:]
	}
	r.inflight = batch[0].at // the backlog head's age keeps aging while in flight
	r.mu.Unlock()
	// One grace period covers the whole batch: every callback was
	// deferred before this point, so every reader that could still see
	// the retired objects is pre-existing here.
	r.flavor.Synchronize()
	ran := n
	for i, cb := range batch {
		// Re-check stop every few entries (not every one: the channel
		// poll is cheap but not free, and callbacks are often tiny).
		if !final && i&0x3f == 0 && r.stopped() {
			// Close arrived mid-batch: hand the rest to the final
			// drain (their grace period is re-paid there, which is
			// harmless) so slow callbacks cannot stall shutdown
			// behind the whole batch.
			r.requeue(batch[i:])
			ran = i
			break
		}
		cb.fn()
		batch[i].fn = nil // release the closure before the next GP
	}
	r.mu.Lock()
	r.inflight = time.Time{}
	r.gps++
	r.executed += int64(ran)
	r.depth -= int64(ran)
	if r.expedite && r.depth < int64(r.high) {
		// Back below the watermark: disarm, so the next crossing counts
		// (and expedites) again.
		r.expedite = false
	}
	r.mu.Unlock()
	return true
}

// stopped reports whether Close has been called, without blocking.
func (r *Reclaimer) stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// requeue pushes not-yet-run callbacks back to the front of the queue,
// preserving submission order, for the final drain to run.
func (r *Reclaimer) requeue(rest []pendingCB) {
	r.mu.Lock()
	r.pending = append(rest[:len(rest):len(rest)], r.pending...)
	r.mu.Unlock()
}
