package main

import (
	"errors"
	"math/rand/v2"
	"syscall"
	"time"
)

// retryPolicy bounds the connection-setup retry loop: attempts tries
// total, exponential delay starting at base and capped at cap, each
// delay jittered ±50% so a fleet of workers retrying against a
// restarting server doesn't reconnect in lockstep (the crash-torture
// harness restarts kvserver under open-loop load, so a refused
// connection during recovery is an expected transient, not an error).
type retryPolicy struct {
	attempts int
	base     time.Duration
	cap      time.Duration
}

func defaultRetryPolicy() retryPolicy {
	return retryPolicy{attempts: 6, base: 25 * time.Millisecond, cap: 800 * time.Millisecond}
}

// dialRetry runs dial under the policy, retrying ONLY connection
// refusal (ECONNREFUSED — the listener isn't up yet). Every other
// error is immediate: a refused connection means "try again shortly",
// while a timeout, a reset, or a bad address means the target is
// wrong or wedged and retrying just hides it. sleep and rng are
// injected for the unit test's benefit.
func dialRetry[T any](dial func() (T, error), p retryPolicy, sleep func(time.Duration), rng *rand.Rand) (T, error) {
	var zero T
	delay := p.base
	for attempt := 0; ; attempt++ {
		v, err := dial()
		if err == nil {
			return v, nil
		}
		if !errors.Is(err, syscall.ECONNREFUSED) || attempt+1 >= p.attempts {
			return zero, err
		}
		// Full ±50% jitter around the exponential step.
		d := delay/2 + time.Duration(rng.Int64N(int64(delay)))
		sleep(d)
		if delay *= 2; delay > p.cap {
			delay = p.cap
		}
	}
}
