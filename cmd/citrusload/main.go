// citrusload is the load generator for examples/kvserver: an open-loop
// (fixed arrival rate) or closed-loop (fixed concurrency) driver for
// either server face — the TCP line protocol or the HTTP /kv/{key}
// API — with per-op-type latency histograms and a structured JSON
// report shaped like the repository's BENCH_*.json files.
//
// Why open loop is the default: a closed-loop generator (send, wait,
// send) measures service time under a concurrency it implicitly
// negotiates with the server — when the server stalls, the generator
// politely stops offering load, and the stall's cost vanishes from the
// percentiles. That is coordinated omission. citrusload instead fixes
// the arrival schedule up front (one arrival every 1/rate seconds,
// round-robined across workers) and measures every request from its
// *intended* send time, so a 250ms server stall shows up as ~250ms of
// queueing latency smeared across every arrival scheduled during it —
// which is what real clients would have experienced. The report also
// carries the naive service-time percentiles alongside, so the gap the
// correction closes is visible in the data.
//
// Typical runs:
//
//	citrusload -proto tcp -target 127.0.0.1:7170 -rate 2000 -duration 10s
//	citrusload -proto http -target http://127.0.0.1:7171 -rates 500,1000,2000,4000
//	citrusload -mode closed -workers 16 -duration 10s
//
// With -scrape the generator fetches <scrape>/metrics.prom after each
// point and validates the payload with the strict text-format parser
// (citrusstat/promtext), recording the family count per point — a
// load run doubles as an exposition-format conformance check.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/go-citrus/citrus/citrusstat/promtext"
)

func main() {
	proto := flag.String("proto", "tcp", "server face to load: tcp (line protocol) or http (/kv API)")
	target := flag.String("target", "127.0.0.1:7170", "server address: host:port for -proto tcp, base URL for -proto http")
	mode := flag.String("mode", "open", "open (fixed arrival rate, coordinated-omission-safe) or closed (fixed concurrency)")
	rate := flag.Float64("rate", 1000, "open loop: offered arrival rate, ops/sec")
	ratesFlag := flag.String("rates", "", "open loop: comma-separated rate sweep (overrides -rate)")
	workers := flag.Int("workers", 8, "worker goroutines (closed loop: the fixed concurrency)")
	duration := flag.Duration("duration", 10*time.Second, "measured window per point")
	warmup := flag.Duration("warmup", 2*time.Second, "head of each point excluded from histograms")
	keys := flag.Int64("keys", 16384, "keyspace size; keys drawn uniformly from [0, keys)")
	getFrac := flag.Float64("get", 0.90, "fraction of GETs in the mix")
	setFrac := flag.Float64("set", 0.05, "fraction of SETs in the mix")
	delFrac := flag.Float64("del", 0.05, "fraction of DELs in the mix")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request transport timeout")
	scrape := flag.String("scrape", "", "base URL to scrape <url>/metrics.prom after each point and validate the payload (empty disables)")
	out := flag.String("out", "-", "JSON report path; - for stdout")
	note := flag.String("note", "", "free-form note recorded in the report header")
	cooldown := flag.Duration("cooldown", time.Second, "pause between sweep points")
	flag.Parse()

	cfg := loadConfig{
		mode:     *mode,
		rate:     *rate,
		workers:  *workers,
		duration: *duration,
		warmup:   *warmup,
		keys:     *keys,
		getFrac:  *getFrac,
		setFrac:  *setFrac,
		delFrac:  *delFrac,
		seed:     *seed,
	}
	if cfg.workers < 1 {
		log.Fatal("-workers must be at least 1")
	}
	if cfg.mode != "open" && cfg.mode != "closed" {
		log.Fatalf("-mode must be open or closed, got %q", cfg.mode)
	}

	var newClient func() (Client, error)
	switch *proto {
	case "tcp":
		newClient = newTCPFactory(*target, *timeout)
	case "http":
		newClient = newHTTPFactory(*target, *timeout)
	default:
		log.Fatalf("-proto must be tcp or http, got %q", *proto)
	}

	rates := []float64{cfg.rate}
	if cfg.mode == "closed" {
		rates = []float64{0}
	} else if *ratesFlag != "" {
		rates = rates[:0]
		for _, f := range strings.Split(*ratesFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v <= 0 {
				log.Fatalf("-rates: bad rate %q", f)
			}
			rates = append(rates, v)
		}
	}

	rep := newLoadReport(cfg, *proto, *target, *note)
	for i, r := range rates {
		cfg.rate = r
		if i > 0 {
			time.Sleep(*cooldown)
		}
		if cfg.mode == "open" {
			log.Printf("point %d/%d: offered %.0f ops/s for %v (+%v warmup)", i+1, len(rates), r, cfg.duration, cfg.warmup)
		} else {
			log.Printf("point %d/%d: closed loop, %d workers for %v (+%v warmup)", i+1, len(rates), cfg.workers, cfg.duration, cfg.warmup)
		}
		res, err := runLoad(cfg, newClient)
		if err != nil {
			log.Fatalf("point %d: %v", i+1, err)
		}
		series := 0
		if *scrape != "" {
			series, err = scrapeProm(strings.TrimSuffix(*scrape, "/") + "/metrics.prom")
			if err != nil {
				log.Fatalf("point %d: metrics scrape failed validation: %v", i+1, err)
			}
			log.Printf("point %d: scraped %d metric families, payload valid", i+1, series)
		}
		rep.addPoint(res, series)
		log.Printf("point %d: achieved %.0f ops/s (%d ops)", i+1, res.achieved, res.sent)
	}

	if err := rep.write(*out); err != nil {
		log.Fatal(err)
	}
	if *out != "-" && *out != "" {
		fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
	}
}

// scrapeProm fetches a /metrics.prom payload and validates it with the
// strict parser, returning the metric-family count.
func scrapeProm(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	m, err := promtext.Parse(resp.Body)
	if err != nil {
		return 0, err
	}
	return len(m), nil
}
