package main

import (
	"errors"
	"math/rand/v2"
	"net"
	"syscall"
	"testing"
	"time"
)

func TestDialRetryBacksOffOnRefused(t *testing.T) {
	refused := &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	calls := 0
	dial := func() (int, error) {
		calls++
		if calls < 4 {
			return 0, refused
		}
		return 42, nil
	}
	var slept []time.Duration
	p := retryPolicy{attempts: 6, base: 10 * time.Millisecond, cap: 40 * time.Millisecond}
	rng := rand.New(rand.NewPCG(1, 2))
	v, err := dialRetry(dial, p, func(d time.Duration) { slept = append(slept, d) }, rng)
	if err != nil || v != 42 {
		t.Fatalf("dialRetry = (%v, %v), want (42, nil)", v, err)
	}
	if calls != 4 {
		t.Fatalf("dial called %d times, want 4", calls)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3 (one per refused attempt)", len(slept))
	}
	// Each jittered delay is drawn from [step/2, 3*step/2) around the
	// exponential steps 10ms, 20ms, 40ms (capped).
	steps := []time.Duration{10, 20, 40}
	for i, d := range slept {
		step := steps[i] * time.Millisecond
		if d < step/2 || d >= step/2+step {
			t.Fatalf("sleep[%d] = %v outside jitter window [%v, %v)", i, d, step/2, step/2+step)
		}
	}
}

func TestDialRetryGivesUpAfterAttempts(t *testing.T) {
	refused := &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	calls := 0
	dial := func() (int, error) { calls++; return 0, refused }
	p := retryPolicy{attempts: 3, base: time.Millisecond, cap: time.Millisecond}
	_, err := dialRetry(dial, p, func(time.Duration) {}, rand.New(rand.NewPCG(3, 4)))
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("err = %v, want ECONNREFUSED surfaced", err)
	}
	if calls != 3 {
		t.Fatalf("dial called %d times, want exactly attempts=3", calls)
	}
}

func TestDialRetryDoesNotRetryOtherErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"reset", &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNRESET}},
		{"timeout", &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ETIMEDOUT}},
		{"plain", errors.New("no such host")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			calls := 0
			dial := func() (int, error) { calls++; return 0, tc.err }
			slept := 0
			_, err := dialRetry(dial, defaultRetryPolicy(),
				func(time.Duration) { slept++ }, rand.New(rand.NewPCG(5, 6)))
			if !errors.Is(err, tc.err) {
				t.Fatalf("err = %v, want the dial error surfaced", err)
			}
			if calls != 1 || slept != 0 {
				t.Fatalf("calls=%d slept=%d, want 1 call and no sleeps for a non-refusal error", calls, slept)
			}
		})
	}
}

// TestDialRetryRealRefusal exercises the production wiring end to end:
// a dial against a port that was just closed is refused, and the
// factory's retry makes the connection once the listener returns.
func TestDialRetryRealRefusal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // the port is now refusing

	// First attempt refused; relisten before the retry lands.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(20 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Errorf("relisten: %v", err)
			return
		}
		defer ln2.Close()
		conn, err := ln2.Accept()
		if err == nil {
			conn.Close()
		}
	}()

	p := retryPolicy{attempts: 8, base: 10 * time.Millisecond, cap: 100 * time.Millisecond}
	conn, err := dialRetry(func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, time.Second)
	}, p, time.Sleep, rand.New(rand.NewPCG(7, 8)))
	if err != nil {
		t.Fatalf("dialRetry never connected: %v", err)
	}
	conn.Close()
	<-done
}
