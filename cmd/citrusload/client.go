package main

import (
	"bufio"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// httpKVClient drives kvserver's HTTP face (/kv/{key}). One Client per
// worker; they share one Transport so connection reuse matches a real
// fleet of keep-alive clients.
type httpKVClient struct {
	base string // e.g. http://127.0.0.1:7171
	hc   *http.Client
}

func newHTTPFactory(base string, timeout time.Duration) func() (Client, error) {
	tr := &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
	}
	return func() (Client, error) {
		return &httpKVClient{
			base: strings.TrimSuffix(base, "/"),
			hc:   &http.Client{Transport: tr, Timeout: timeout},
		}, nil
	}
}

func (c *httpKVClient) Do(op Op) Result {
	url := c.base + "/kv/" + strconv.FormatInt(op.Key, 10)
	var req *http.Request
	var err error
	switch op.Kind {
	case OpGet:
		req, err = http.NewRequest(http.MethodGet, url, nil)
	case OpSet:
		req, err = http.NewRequest(http.MethodPut, url, strings.NewReader(op.Value))
	case OpDel:
		req, err = http.NewRequest(http.MethodDelete, url, nil)
	}
	if err != nil {
		return ResErr
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return ResErr
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusCreated:
		return ResOK
	case http.StatusNotFound, http.StatusConflict:
		return ResMiss
	case http.StatusServiceUnavailable:
		return ResShed
	default:
		return ResErr
	}
}

func (c *httpKVClient) Close() { c.hc.CloseIdleConnections() }

// tcpKVClient drives kvserver's line protocol: one persistent
// connection per worker, one in-flight command at a time.
type tcpKVClient struct {
	conn net.Conn
	rd   *bufio.Reader
}

func newTCPFactory(addr string, timeout time.Duration) func() (Client, error) {
	return func() (Client, error) {
		// Connection refusal gets a bounded, jittered retry: the loader
		// is routinely pointed at a server that is still recovering its
		// WAL (or being crash-tortured), and the listener coming up a
		// beat late should cost a backoff, not the worker.
		rng := rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
		conn, err := dialRetry(func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}, defaultRetryPolicy(), time.Sleep, rng)
		if err != nil {
			return nil, err
		}
		return &tcpKVClient{conn: conn, rd: bufio.NewReader(conn)}, nil
	}
}

func (c *tcpKVClient) Do(op Op) Result {
	var cmd string
	switch op.Kind {
	case OpGet:
		cmd = fmt.Sprintf("GET %d\n", op.Key)
	case OpSet:
		cmd = fmt.Sprintf("SET %d %s\n", op.Key, op.Value)
	case OpDel:
		cmd = fmt.Sprintf("DEL %d\n", op.Key)
	}
	if _, err := io.WriteString(c.conn, cmd); err != nil {
		return ResErr
	}
	line, err := c.rd.ReadString('\n')
	if err != nil {
		return ResErr
	}
	switch {
	case strings.HasPrefix(line, "OK"), strings.HasPrefix(line, "VALUE"):
		return ResOK
	case strings.HasPrefix(line, "NOT_FOUND"), strings.HasPrefix(line, "EXISTS"):
		return ResMiss
	case strings.HasPrefix(line, "BUSY"):
		return ResShed
	default:
		return ResErr
	}
}

func (c *tcpKVClient) Close() {
	io.WriteString(c.conn, "QUIT\n") //nolint:errcheck // best-effort goodbye
	c.conn.Close()
}
