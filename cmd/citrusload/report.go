package main

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	"github.com/go-citrus/citrus/citrusstat"
)

// loadReport is the machine-readable result document, shaped like the
// repository's BENCH_*.json trajectory files: the same environment
// header (generated / go_version / goos / goarch / gomaxprocs /
// num_cpu / duration / note) followed by one point per swept offered
// rate.
type loadReport struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Duration   string `json:"duration"`
	Note       string `json:"note,omitempty"`

	Mode    string             `json:"mode"`   // open | closed
	Proto   string             `json:"proto"`  // http | tcp
	Target  string             `json:"target"` // address load was sent to
	Workers int                `json:"workers"`
	Warmup  string             `json:"warmup"`
	Keys    int64              `json:"keys"`
	Mix     map[string]float64 `json:"mix"`

	Points []loadPoint `json:"points"`
}

// loadPoint is one measurement: offered vs achieved rate and the
// per-op outcome/latency breakdown.
type loadPoint struct {
	OfferedRate  float64 `json:"offered_rate,omitempty"` // 0 in closed loop
	AchievedRate float64 `json:"achieved_rate"`
	Sent         int64   `json:"sent"`
	ElapsedMS    float64 `json:"elapsed_ms"`

	// Ops maps op kind ("get"/"set"/"del") to its breakdown; kinds with
	// no traffic are omitted.
	Ops map[string]opReport `json:"ops"`

	// SendLatenessP99Nanos is how far behind schedule the p99 send was
	// (open loop): small values mean the generator kept up with its own
	// schedule and the corrected latencies measure the server, not the
	// client. Omitted in closed loop.
	SendLatenessP99Nanos int64 `json:"send_lateness_p99_ns,omitempty"`

	// ScrapeSeries is the number of metric families a post-point
	// /metrics.prom scrape parsed (with -scrape); 0 when not scraped.
	ScrapeSeries int `json:"scrape_series,omitempty"`
}

// opReport is one op kind's outcomes and latency percentiles, both
// coordinated-omission-corrected (from intended send time) and naive
// service time (from actual send) so the gap is visible in the data.
type opReport struct {
	Count  int64 `json:"count"`
	OK     int64 `json:"ok"`
	Misses int64 `json:"misses"`
	Shed   int64 `json:"shed"`
	Errors int64 `json:"errors"`

	P50Nanos  int64 `json:"p50_ns"`
	P90Nanos  int64 `json:"p90_ns"`
	P99Nanos  int64 `json:"p99_ns"`
	P999Nanos int64 `json:"p999_ns"`
	MaxNanos  int64 `json:"max_ns"` // upper bound of the highest occupied bucket

	ServiceP50Nanos int64 `json:"service_p50_ns"`
	ServiceP99Nanos int64 `json:"service_p99_ns"`
}

func newLoadReport(cfg loadConfig, proto, target, note string) *loadReport {
	return &loadReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Duration:   cfg.duration.String(),
		Note:       note,
		Mode:       cfg.mode,
		Proto:      proto,
		Target:     target,
		Workers:    cfg.workers,
		Warmup:     cfg.warmup.String(),
		Keys:       cfg.keys,
		Mix: map[string]float64{
			"get": cfg.getFrac, "set": cfg.setFrac, "del": cfg.delFrac,
		},
	}
}

// histMax reports the upper bound of the highest occupied bucket — the
// tightest "no sample exceeded this" statement the log2 histogram can
// make.
func histMax(s citrusstat.Snapshot) int64 {
	for i := citrusstat.NumBuckets - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			return int64(1) << uint(i+1)
		}
	}
	return 0
}

// addPoint folds one runResult into the report.
func (r *loadReport) addPoint(res *runResult, scrapeSeries int) {
	pt := loadPoint{
		OfferedRate:  res.offered,
		AchievedRate: res.achieved,
		Sent:         res.sent,
		ElapsedMS:    float64(res.elapsed.Nanoseconds()) / 1e6,
		Ops:          map[string]opReport{},
		ScrapeSeries: scrapeSeries,
	}
	if lat := res.lateness.Snapshot(); lat.Total() > 0 {
		pt.SendLatenessP99Nanos = res.lateness.Snapshot().Percentile(99).Nanoseconds()
	}
	for kind, st := range res.ops {
		if st.total() == 0 {
			continue
		}
		cor := st.corrected.Snapshot()
		svc := st.service.Snapshot()
		pt.Ops[OpKind(kind).String()] = opReport{
			Count:           st.total(),
			OK:              st.ok.Load(),
			Misses:          st.miss.Load(),
			Shed:            st.shed.Load(),
			Errors:          st.errs.Load(),
			P50Nanos:        cor.Percentile(50).Nanoseconds(),
			P90Nanos:        cor.Percentile(90).Nanoseconds(),
			P99Nanos:        cor.Percentile(99).Nanoseconds(),
			P999Nanos:       cor.Percentile(99.9).Nanoseconds(),
			MaxNanos:        histMax(cor),
			ServiceP50Nanos: svc.Percentile(50).Nanoseconds(),
			ServiceP99Nanos: svc.Percentile(99).Nanoseconds(),
		}
	}
	r.Points = append(r.Points, pt)
}

// write serializes the report (indented, trailing newline); "-" means
// stdout.
func (r *loadReport) write(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" || path == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
