package main

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHTTPClientStatusMapping pins the status-code → Result mapping
// against kvserver's documented HTTP contract.
func TestHTTPClientStatusMapping(t *testing.T) {
	var status int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(status)
	}))
	defer ts.Close()

	factory := newHTTPFactory(ts.URL, time.Second)
	c, err := factory()
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	defer c.Close()

	cases := []struct {
		status int
		want   Result
	}{
		{http.StatusOK, ResOK},         // GET hit
		{http.StatusCreated, ResOK},    // PUT took effect
		{http.StatusNotFound, ResMiss}, // GET/DELETE absent key
		{http.StatusConflict, ResMiss}, // PUT over existing key
		{http.StatusServiceUnavailable, ResShed},
		{http.StatusInternalServerError, ResErr},
	}
	for _, tc := range cases {
		status = tc.status
		if got := c.Do(Op{Kind: OpGet, Key: 1}); got != tc.want {
			t.Errorf("status %d: got %v, want %v", tc.status, got, tc.want)
		}
	}
}

// TestHTTPClientMethods checks each op kind reaches the server as the
// right method and path.
func TestHTTPClientMethods(t *testing.T) {
	type hit struct{ method, path, body string }
	var last hit
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := make([]byte, 64)
		n, _ := r.Body.Read(b)
		last = hit{r.Method, r.URL.Path, string(b[:n])}
	}))
	defer ts.Close()

	factory := newHTTPFactory(ts.URL+"/", time.Second) // trailing slash trimmed
	c, err := factory()
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	defer c.Close()

	c.Do(Op{Kind: OpGet, Key: 42})
	if last.method != http.MethodGet || last.path != "/kv/42" {
		t.Errorf("get: %+v", last)
	}
	c.Do(Op{Kind: OpSet, Key: 7, Value: "seven"})
	if last.method != http.MethodPut || last.path != "/kv/7" || last.body != "seven" {
		t.Errorf("set: %+v", last)
	}
	c.Do(Op{Kind: OpDel, Key: 9})
	if last.method != http.MethodDelete || last.path != "/kv/9" {
		t.Errorf("del: %+v", last)
	}
}

// fakeLineServer speaks just enough of kvserver's TCP protocol to
// exercise tcpKVClient: a canned reply per verb.
func fakeLineServer(t *testing.T, replies map[string]string) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					verb := strings.Fields(sc.Text() + " ")[0]
					if verb == "QUIT" {
						fmt.Fprintf(conn, "BYE\n")
						return
					}
					fmt.Fprintf(conn, "%s\n", replies[verb])
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); <-done }
}

func TestTCPClientReplyMapping(t *testing.T) {
	cases := []struct {
		op    Op
		reply map[string]string
		want  Result
	}{
		{Op{Kind: OpSet, Key: 1, Value: "v"}, map[string]string{"SET": "OK"}, ResOK},
		{Op{Kind: OpSet, Key: 1, Value: "v"}, map[string]string{"SET": "EXISTS"}, ResMiss},
		{Op{Kind: OpSet, Key: 1, Value: "v"}, map[string]string{"SET": "BUSY degraded, retry later"}, ResShed},
		{Op{Kind: OpGet, Key: 1}, map[string]string{"GET": "VALUE v"}, ResOK},
		{Op{Kind: OpGet, Key: 1}, map[string]string{"GET": "NOT_FOUND"}, ResMiss},
		{Op{Kind: OpDel, Key: 1}, map[string]string{"DEL": "OK"}, ResOK},
		{Op{Kind: OpDel, Key: 1}, map[string]string{"DEL": "ERR usage: DEL <key>"}, ResErr},
	}
	for i, tc := range cases {
		addr, stop := fakeLineServer(t, tc.reply)
		c, err := newTCPFactory(addr, time.Second)()
		if err != nil {
			stop()
			t.Fatalf("case %d: dial: %v", i, err)
		}
		if got := c.Do(tc.op); got != tc.want {
			t.Errorf("case %d (%v → %v): got %v, want %v", i, tc.op.Kind, tc.reply, got, tc.want)
		}
		c.Close()
		stop()
	}
}

// TestRunLoadOverTCP is a small end-to-end: a fake line server under a
// real open-loop run, all plumbing from schedule to report in play.
func TestRunLoadOverTCP(t *testing.T) {
	addr, stop := fakeLineServer(t, map[string]string{
		"GET": "VALUE v", "SET": "OK", "DEL": "NOT_FOUND",
	})
	defer stop()

	cfg := loadConfig{
		mode:     "open",
		rate:     500,
		workers:  2,
		duration: 200 * time.Millisecond,
		warmup:   50 * time.Millisecond,
		keys:     64,
		getFrac:  0.5, setFrac: 0.3, delFrac: 0.2,
		seed: 3,
	}
	res, err := runLoad(cfg, newTCPFactory(addr, time.Second))
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	if res.sent < 50 {
		t.Fatalf("sent %d ops, want a meaningful run", res.sent)
	}
	if res.ops[OpGet].ok.Load() == 0 || res.ops[OpSet].ok.Load() == 0 || res.ops[OpDel].miss.Load() == 0 {
		t.Errorf("outcome routing wrong: get.ok=%d set.ok=%d del.miss=%d",
			res.ops[OpGet].ok.Load(), res.ops[OpSet].ok.Load(), res.ops[OpDel].miss.Load())
	}
	if res.ops[OpGet].errs.Load()+res.ops[OpSet].errs.Load()+res.ops[OpDel].errs.Load() != 0 {
		t.Error("unexpected transport errors against the fake server")
	}

	// The report layer folds it without losing counts.
	rep := newLoadReport(cfg, "tcp", addr, "test")
	rep.addPoint(res, 0)
	pt := rep.Points[0]
	var n int64
	for _, op := range pt.Ops {
		n += op.Count
	}
	if n != res.sent {
		t.Errorf("report op counts sum to %d, want %d", n, res.sent)
	}
	if pt.Ops["get"].P99Nanos == 0 {
		t.Error("get p99 is zero; histogram not wired into the report")
	}
}
