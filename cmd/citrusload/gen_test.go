package main

import (
	"math/rand"
	"testing"
	"time"
)

// stallClient answers instantly except for one long stall on a chosen
// call, simulating a server that hiccups (a long grace period, a GC
// pause) while the connection is held.
type stallClient struct {
	calls   int
	stallOn int // 1-based call index that stalls; 0 disables
	stall   time.Duration
}

func (c *stallClient) Do(Op) Result {
	c.calls++
	if c.stallOn != 0 && c.calls == c.stallOn {
		time.Sleep(c.stall)
	}
	return ResOK
}

func (c *stallClient) Close() {}

// TestOpenLoopCorrectsCoordinatedOmission is the point of the open
// loop: a single 300ms responder stall delays every arrival scheduled
// behind it, and the corrected histogram (latency from intended send
// time) must show that, while the naive service-time histogram — what
// a closed-loop generator would report — sees only ONE slow sample and
// keeps a tiny p99. If this test fails, the generator has reintroduced
// coordinated omission.
func TestOpenLoopCorrectsCoordinatedOmission(t *testing.T) {
	cfg := loadConfig{
		mode:     "open",
		rate:     1000,
		workers:  1,
		duration: 700 * time.Millisecond,
		warmup:   50 * time.Millisecond,
		keys:     16,
		getFrac:  1,
		seed:     1,
	}
	const stall = 300 * time.Millisecond

	res, err := runLoad(cfg, func() (Client, error) {
		return &stallClient{stallOn: 200, stall: stall}, nil
	})
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	if res.sent < 200 {
		t.Fatalf("suspiciously few ops recorded: %d", res.sent)
	}
	cor := res.ops[OpGet].corrected.Snapshot()
	svc := res.ops[OpGet].service.Snapshot()
	corP99 := cor.Percentile(99)
	svcP99 := svc.Percentile(99)
	t.Logf("stalled run: %d ops, corrected p99=%v service p99=%v", res.sent, corP99, svcP99)

	// ~300 arrivals were scheduled during the stall; their corrected
	// latency ramps from ~300ms down to 0, so well over 1% of samples
	// exceed 100ms.
	if corP99 < 100*time.Millisecond {
		t.Errorf("corrected p99 = %v, want >= 100ms: the stall's queueing delay is missing", corP99)
	}
	// The naive view: one 300ms sample in ~650 — under the p99 cut.
	if svcP99 > 20*time.Millisecond {
		t.Errorf("service p99 = %v, want <= 20ms: the fake client should be fast outside the stall", svcP99)
	}
	if corP99 < 10*svcP99 {
		t.Errorf("corrected p99 (%v) should dwarf naive service p99 (%v)", corP99, svcP99)
	}

	// Control: same schedule, no stall — corrected and service agree
	// that everything was fast.
	res, err = runLoad(cfg, func() (Client, error) {
		return &stallClient{}, nil
	})
	if err != nil {
		t.Fatalf("runLoad (control): %v", err)
	}
	corP99 = res.ops[OpGet].corrected.Snapshot().Percentile(99)
	t.Logf("control run: %d ops, corrected p99=%v", res.sent, corP99)
	if corP99 > 50*time.Millisecond {
		t.Errorf("control corrected p99 = %v, want <= 50ms: generator fell behind its own schedule", corP99)
	}
}

// TestOpenLoopWarmupExcluded pins that samples whose intended time
// falls inside the warmup window stay out of the histograms.
func TestOpenLoopWarmupExcluded(t *testing.T) {
	cfg := loadConfig{
		mode:     "open",
		rate:     1000,
		workers:  2,
		duration: 200 * time.Millisecond,
		warmup:   100 * time.Millisecond,
		keys:     16,
		getFrac:  1,
		seed:     1,
	}
	res, err := runLoad(cfg, func() (Client, error) {
		return &stallClient{}, nil
	})
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	// The schedule spans warmup+duration at 1000/s (~300 arrivals); only
	// the ~200 in the measured window may be recorded.
	if res.sent > 260 {
		t.Errorf("recorded %d ops; warmup arrivals appear to be counted (window holds ~200)", res.sent)
	}
	if got := res.ops[OpGet].total(); got != res.sent {
		t.Errorf("op totals (%d) disagree with sent (%d)", got, res.sent)
	}
}

// TestClosedLoopBasics: fixed concurrency, corrected == service by
// construction, outcome counters fold into the right buckets.
func TestClosedLoopBasics(t *testing.T) {
	cfg := loadConfig{
		mode:     "closed",
		workers:  2,
		duration: 100 * time.Millisecond,
		warmup:   20 * time.Millisecond,
		keys:     16,
		getFrac:  1,
		seed:     1,
	}
	res, err := runLoad(cfg, func() (Client, error) {
		return &stallClient{}, nil
	})
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	if res.sent == 0 {
		t.Fatal("closed loop recorded no ops")
	}
	if res.achieved <= 0 {
		t.Errorf("achieved rate = %v, want > 0", res.achieved)
	}
	st := res.ops[OpGet]
	if st.ok.Load() != res.sent {
		t.Errorf("ok=%d, want all %d sent ops OK", st.ok.Load(), res.sent)
	}
	cor := st.corrected.Snapshot()
	svc := st.service.Snapshot()
	if cor.Total() != svc.Total() || cor.Counts != svc.Counts {
		t.Error("closed loop: corrected and service histograms must be identical")
	}
}

// resultClient returns a fixed Result per call, cycling a script.
type resultClient struct {
	script []Result
	i      int
}

func (c *resultClient) Do(Op) Result {
	r := c.script[c.i%len(c.script)]
	c.i++
	return r
}

func (c *resultClient) Close() {}

func TestOutcomeCounters(t *testing.T) {
	st := &opStats{}
	c := &resultClient{script: []Result{ResOK, ResMiss, ResShed, ResErr, ResOK}}
	for i := 0; i < 5; i++ {
		st.count(c.Do(Op{}))
	}
	if st.ok.Load() != 2 || st.miss.Load() != 1 || st.shed.Load() != 1 || st.errs.Load() != 1 {
		t.Errorf("counters ok=%d miss=%d shed=%d errs=%d, want 2/1/1/1",
			st.ok.Load(), st.miss.Load(), st.shed.Load(), st.errs.Load())
	}
	if st.total() != 5 {
		t.Errorf("total=%d, want 5", st.total())
	}
}

func TestOpMixFractions(t *testing.T) {
	mix := newOpMix(loadConfig{getFrac: 8, setFrac: 1, delFrac: 1}) // unnormalized on purpose
	rng := rand.New(rand.NewSource(42))
	var counts [numOpKinds]int
	const n = 10000
	for i := 0; i < n; i++ {
		counts[mix.pick(rng)]++
	}
	if got := float64(counts[OpGet]) / n; got < 0.75 || got > 0.85 {
		t.Errorf("get fraction %.3f, want ~0.8", got)
	}
	if counts[OpSet] == 0 || counts[OpDel] == 0 {
		t.Errorf("set=%d del=%d, want both drawn", counts[OpSet], counts[OpDel])
	}

	// Degenerate mix falls back to all-GET rather than dividing by zero.
	mix = newOpMix(loadConfig{})
	for i := 0; i < 100; i++ {
		if k := mix.pick(rng); k != OpGet {
			t.Fatalf("zero mix drew %v, want get", k)
		}
	}
}

func TestGenOpDeterministic(t *testing.T) {
	cfg := loadConfig{getFrac: 0.5, setFrac: 0.3, delFrac: 0.2, keys: 128}
	mix := newOpMix(cfg)
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		oa, ob := genOp(a, mix, cfg.keys), genOp(b, mix, cfg.keys)
		if oa != ob {
			t.Fatalf("op %d diverged: %+v vs %+v", i, oa, ob)
		}
		if oa.Key < 0 || oa.Key >= cfg.keys {
			t.Fatalf("key %d outside [0,%d)", oa.Key, cfg.keys)
		}
		if (oa.Kind == OpSet) != (oa.Value != "") {
			t.Fatalf("value presence wrong for %+v", oa)
		}
	}
}
