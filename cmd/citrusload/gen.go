package main

import (
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/citrusstat"
)

// OpKind is one of the workload's operation types.
type OpKind int

const (
	OpGet OpKind = iota
	OpSet
	OpDel
	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpDel:
		return "del"
	}
	return "op-" + strconv.Itoa(int(k))
}

// Op is one generated operation.
type Op struct {
	Kind  OpKind
	Key   int64
	Value string
}

// Result classifies one completed operation.
type Result int

const (
	// ResOK: the operation took effect (or the lookup hit).
	ResOK Result = iota
	// ResMiss: a semantically fine non-effect — GET/DEL of an absent
	// key, SET of a present one. Expected under a random mix.
	ResMiss
	// ResShed: the server refused the write while degraded (TCP BUSY,
	// HTTP 503). The load generator counts these separately — they are
	// the server's backpressure working, not an error.
	ResShed
	// ResErr: transport or protocol failure.
	ResErr
)

// A Client issues operations against one connection/session. Each
// worker goroutine owns one Client; Do blocks until the operation
// completes.
type Client interface {
	Do(op Op) Result
	Close()
}

// loadConfig configures one measurement point.
type loadConfig struct {
	mode     string        // "open" or "closed"
	rate     float64       // open loop: offered arrival rate, ops/sec
	workers  int           // goroutines (closed loop: concurrency)
	duration time.Duration // measured window, warmup excluded
	warmup   time.Duration // head of the run excluded from histograms
	keys     int64         // keyspace [0, keys)
	getFrac  float64       // operation mix; fractions normalized
	setFrac  float64
	delFrac  float64
	seed     int64
}

// opStats accumulates one op kind's outcome counters and latency
// histograms. corrected measures from the *intended* send time (open
// loop) — the coordinated-omission-safe number; service measures from
// the actual write, the number a naive generator would report. In
// closed-loop mode the two are identical by construction.
type opStats struct {
	ok, miss, shed, errs atomic.Int64
	corrected            citrusstat.Histogram
	service              citrusstat.Histogram
}

func (s *opStats) count(r Result) {
	switch r {
	case ResOK:
		s.ok.Add(1)
	case ResMiss:
		s.miss.Add(1)
	case ResShed:
		s.shed.Add(1)
	default:
		s.errs.Add(1)
	}
}

func (s *opStats) total() int64 {
	return s.ok.Load() + s.miss.Load() + s.shed.Load() + s.errs.Load()
}

// runResult is one completed measurement point.
type runResult struct {
	offered  float64 // ops/sec the schedule asked for (0 in closed loop)
	achieved float64 // completions/sec over the measured window
	sent     int64   // operations issued inside the measured window
	elapsed  time.Duration
	ops      [numOpKinds]*opStats
	lateness citrusstat.Histogram // open loop: how far behind schedule sends were
}

// opMix picks op kinds by normalized fractions, deterministically per
// arrival index so open- and closed-loop runs with the same seed issue
// comparable streams.
type opMix struct {
	getCut, setCut float64
}

func newOpMix(cfg loadConfig) opMix {
	tot := cfg.getFrac + cfg.setFrac + cfg.delFrac
	if tot <= 0 {
		return opMix{getCut: 1, setCut: 1}
	}
	return opMix{
		getCut: cfg.getFrac / tot,
		setCut: (cfg.getFrac + cfg.setFrac) / tot,
	}
}

func (m opMix) pick(r *rand.Rand) OpKind {
	f := r.Float64()
	switch {
	case f < m.getCut:
		return OpGet
	case f < m.setCut:
		return OpSet
	default:
		return OpDel
	}
}

// runLoad drives one measurement point. newClient is called once per
// worker; the run owns the returned clients.
//
// Open loop: arrivals are scheduled on a fixed interval (1/rate) from
// a common origin, round-robined across workers — worker w serves
// arrivals w, w+W, w+2W, … at their *scheduled* times. A worker that
// falls behind (a slow response holding its connection) does NOT slow
// the schedule down: the next arrivals' intended times keep marching,
// and their corrected latency — completion minus intended time —
// includes the queueing delay the stall caused. That is the wrk2-style
// correction for coordinated omission; the service histogram alongside
// records what a naive generator (latency from actual send) would have
// claimed.
//
// Closed loop: each worker issues its next op as soon as the previous
// completes — concurrency is fixed, arrival rate floats with the
// server. offered is 0 and corrected==service.
func runLoad(cfg loadConfig, newClient func() (Client, error)) (*runResult, error) {
	res := &runResult{offered: cfg.rate}
	for i := range res.ops {
		res.ops[i] = &opStats{}
	}
	clients := make([]Client, cfg.workers)
	for i := range clients {
		c, err := newClient()
		if err != nil {
			for _, open := range clients[:i] {
				open.Close()
			}
			return nil, err
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	start := time.Now()
	warmupEnd := start.Add(cfg.warmup)
	end := warmupEnd.Add(cfg.duration)
	var sent atomic.Int64
	var done atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			mix := newOpMix(cfg)
			client := clients[w]
			if cfg.mode == "closed" {
				for {
					now := time.Now()
					if now.After(end) {
						return
					}
					op := genOp(rng, mix, cfg.keys)
					t0 := time.Now()
					r := client.Do(op)
					comp := time.Now()
					if t0.After(warmupEnd) {
						st := res.ops[op.Kind]
						st.count(r)
						st.service.Record(comp.Sub(t0))
						st.corrected.Record(comp.Sub(t0))
						sent.Add(1)
						done.Add(1)
					}
					continue
				}
			}
			// Open loop.
			interval := time.Duration(float64(time.Second) * float64(cfg.workers) / cfg.rate)
			next := start.Add(time.Duration(w) * time.Duration(float64(time.Second)/cfg.rate))
			for {
				intended := next
				next = next.Add(interval)
				if intended.After(end) {
					return
				}
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				op := genOp(rng, mix, cfg.keys)
				t0 := time.Now()
				r := client.Do(op)
				comp := time.Now()
				if intended.After(warmupEnd) {
					st := res.ops[op.Kind]
					st.count(r)
					st.corrected.Record(comp.Sub(intended))
					st.service.Record(comp.Sub(t0))
					res.lateness.Record(t0.Sub(intended))
					sent.Add(1)
					done.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	res.sent = sent.Load()
	res.elapsed = time.Since(warmupEnd)
	if res.elapsed > 0 {
		res.achieved = float64(done.Load()) / res.elapsed.Seconds()
	}
	return res, nil
}

// genOp draws one operation. Values are small and deterministic; keys
// uniform over the keyspace.
func genOp(rng *rand.Rand, mix opMix, keys int64) Op {
	kind := mix.pick(rng)
	key := rng.Int63n(keys)
	op := Op{Kind: kind, Key: key}
	if kind == OpSet {
		op.Value = "v" + strconv.FormatInt(key, 10)
	}
	return op
}
