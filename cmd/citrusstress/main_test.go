package main

import "testing"

func TestListMode(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownImplRejected(t *testing.T) {
	if err := run([]string{"-impl", "nonsense"}); err == nil {
		t.Fatal("unknown implementation accepted")
	}
}

func TestUnknownModeRejected(t *testing.T) {
	if err := run([]string{"-mode", "nonsense", "-impl", "Citrus", "-duration", "1ms"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestChurnModeShort(t *testing.T) {
	if testing.Short() {
		t.Skip("timed stress")
	}
	err := run([]string{"-impl", "Citrus", "-mode", "churn", "-duration", "50ms", "-threads", "4", "-keyrange", "64"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLinearModeShort(t *testing.T) {
	if testing.Short() {
		t.Skip("timed stress")
	}
	err := run([]string{"-impl", "Lock-Free", "-mode", "linear", "-duration", "50ms", "-threads", "4"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFalsenegModeShort(t *testing.T) {
	if testing.Short() {
		t.Skip("timed stress")
	}
	err := run([]string{"-impl", "Red-Black", "-mode", "falseneg", "-duration", "50ms", "-threads", "4", "-keyrange", "64"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecycleModeShort(t *testing.T) {
	if testing.Short() {
		t.Skip("timed stress")
	}
	err := run([]string{"-impl", "Citrus", "-mode", "recycle", "-duration", "50ms", "-threads", "4", "-keyrange", "64"})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecycleModeSkipsNonCitrus: recycling is a Citrus feature; other
// implementations are skipped, not failed.
func TestRecycleModeSkipsNonCitrus(t *testing.T) {
	if err := run([]string{"-impl", "Skiplist", "-mode", "recycle", "-duration", "1ms"}); err != nil {
		t.Fatalf("recycle mode on a non-Citrus impl should SKIP, got %v", err)
	}
}

func TestStatsFlagShort(t *testing.T) {
	if testing.Short() {
		t.Skip("timed stress")
	}
	err := run([]string{"-impl", "Citrus", "-mode", "churn", "-duration", "50ms", "-threads", "2", "-keyrange", "32", "-stats"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestBadDurationRejected(t *testing.T) {
	if err := run([]string{"-duration", "soon"}); err == nil {
		t.Fatal("unparseable -duration accepted")
	}
}
