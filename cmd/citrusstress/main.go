// Command citrusstress validates the concurrent search structures under
// sustained load. It complements `go test` by running minutes-long
// adversarial workloads with live progress, in three modes:
//
//	-mode churn    mixed insert/delete/contains hammering a small key
//	               range (maximizing structural conflicts), then a full
//	               structural-invariant check and a membership
//	               cross-check between iteration and search.
//	-mode linear   repeated small, highly concurrent histories, each
//	               checked for linearizability with an exhaustive
//	               Wing&Gong search.
//	-mode falseneg readers continuously search keys that are always
//	               present while writers churn their neighbours; any miss
//	               is a violation of the guarantee RCU provides Citrus.
//	-mode recycle  Citrus with node recycling: update-heavy churn with
//	               value-integrity checks and pool-effectiveness stats.
//
// Select a structure with -impl (default all).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/internal/core"
	"github.com/go-citrus/citrus/internal/dict"
	"github.com/go-citrus/citrus/internal/impls"
	"github.com/go-citrus/citrus/internal/linearizability"
	"github.com/go-citrus/citrus/internal/workload"
	"github.com/go-citrus/citrus/rcu"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "citrusstress:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("citrusstress", flag.ContinueOnError)
	var (
		implName = fs.String("impl", "all", "implementation to stress (see -list) or all")
		list     = fs.Bool("list", false, "list implementation names and exit")
		mode     = fs.String("mode", "churn", "churn, linear, falseneg, or recycle")
		duration = fs.Duration("duration", 2*time.Second, "how long to stress each implementation")
		threads  = fs.Int("threads", 8, "worker goroutines")
		keyRange = fs.Int("keyrange", 128, "key range (small ranges maximize conflicts)")
		stats    = fs.Bool("stats", false, "print the library's native operation/grace-period stats after each run (Citrus implementations only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, f := range impls.All[int, int]() {
			fmt.Println(f.Name)
		}
		return nil
	}

	var selected []impls.NamedFactory[int, int]
	for _, f := range impls.All[int, int]() {
		if *implName == "all" || strings.EqualFold(f.Name, *implName) {
			selected = append(selected, f)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown implementation %q (use -list)", *implName)
	}

	for _, f := range selected {
		fmt.Printf("%-24s %-9s ", f.Name, *mode)
		var err error
		switch *mode {
		case "churn":
			err = stressChurn(f.New, *duration, *threads, *keyRange, *stats)
		case "linear":
			err = stressLinearizability(f.New, *duration, *threads)
		case "falseneg":
			err = stressFalseNegatives(f.New, *duration, *threads, *keyRange, *stats)
		case "recycle":
			if !strings.HasPrefix(f.Name, "Citrus") || strings.Contains(f.Name, "standard") {
				fmt.Println("SKIP (recycling is a Citrus feature)")
				continue
			}
			err = stressRecycling(*duration, *threads, *keyRange, *stats)
		default:
			return fmt.Errorf("unknown mode %q", *mode)
		}
		if err != nil {
			fmt.Println("FAIL")
			return fmt.Errorf("%s: %w", f.Name, err)
		}
		fmt.Println("OK")
	}
	return nil
}

// printTreeStats renders a core.Stats snapshot — the same numbers a
// service reads at runtime — under a finished stress line.
func printTreeStats(s core.Stats) {
	fmt.Printf("\n    ops:  contains=%d inserts=%d (+%d existing, %d retries) deletes=%d (+%d missing, %d retries) two-child=%d",
		s.Contains, s.Inserts, s.InsertExisting, s.InsertRetries,
		s.Deletes, s.DeleteMisses, s.DeleteRetries, s.TwoChildDeletes)
	if s.NodesRetired > 0 {
		fmt.Printf("\n    pool: retired=%d reused=%d (%.0f%%)",
			s.NodesRetired, s.NodesReused, float64(s.NodesReused)/float64(s.NodesRetired)*100)
	}
	if s.RCU != nil {
		gp := s.RCU.SyncWait
		fmt.Printf("\n    rcu:  grace periods=%d mean=%v p50≤%v p99≤%v spins=%d yields=%d readers(hw)=%d",
			s.RCU.Synchronizes, gp.Mean(), gp.Percentile(50), gp.Percentile(99),
			s.RCU.SyncSpins, s.RCU.SyncYields, s.RCU.ReaderHighWater)
	}
	fmt.Print("\n    ")
}

// printMapStats prints native stats when the implementation exposes
// them (the Citrus-backed maps do; others silently don't).
func printMapStats(m dict.Map[int, int]) {
	if ts, ok := m.(impls.TreeStatser); ok {
		printTreeStats(ts.TreeStats())
	}
}

// stressRecycling churns Citrus with node recycling enabled and reports
// pool effectiveness alongside the usual integrity checks.
func stressRecycling(d time.Duration, threads, keyRange int, showStats bool) error {
	dom := rcu.NewDomain()
	rec := rcu.NewReclaimer(dom)
	defer rec.Close()
	tr := core.NewTreeWithRecycling[int, int](dom, rec)

	var (
		stop  atomic.Bool
		total atomic.Int64
		wg    sync.WaitGroup
	)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := workload.NewRNG(seed)
			n := int64(0)
			for !stop.Load() {
				k := rng.Intn(keyRange)
				switch rng.NextOp(workload.ReadMostly(20)) {
				case workload.OpContains:
					if v, ok := h.Contains(k); ok && v != k {
						panic("recycled value leaked across keys")
					}
				case workload.OpInsert:
					h.Insert(k, k)
				default:
					h.Delete(k)
				}
				n++
			}
			total.Add(n)
		}(uint64(w) + 1)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	rec.Barrier()
	if err := tr.CheckInvariants(); err != nil {
		return err
	}
	retired, reused := tr.RecycleStats()
	rate := 0.0
	if retired > 0 {
		rate = float64(reused) / float64(retired) * 100
	}
	fmt.Printf("(%d ops, %d retired, %d reused = %.0f%%) ", total.Load(), retired, reused, rate)
	if showStats {
		printTreeStats(tr.Stats())
	}
	return nil
}

func stressChurn(factory dict.Factory[int, int], d time.Duration, threads, keyRange int, showStats bool) error {
	m := factory()
	var (
		stop  atomic.Bool
		total atomic.Int64
		wg    sync.WaitGroup
	)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := workload.NewRNG(seed)
			n := int64(0)
			for !stop.Load() {
				workload.Apply(h, rng, workload.ReadMostly(20), keyRange)
				n++
			}
			total.Add(n)
		}(uint64(w) + 1)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()

	if err := m.CheckInvariants(); err != nil {
		return err
	}
	// Membership cross-check: quiescent iteration vs point queries.
	h := m.NewHandle()
	defer h.Close()
	inKeys := map[int]bool{}
	for _, k := range m.Keys() {
		inKeys[k] = true
	}
	for k := 0; k < keyRange; k++ {
		if _, ok := h.Contains(k); ok != inKeys[k] {
			return fmt.Errorf("membership mismatch on key %d: Contains=%v, Keys=%v", k, ok, inKeys[k])
		}
	}
	fmt.Printf("(%d ops, %d keys) ", total.Load(), m.Len())
	if showStats {
		printMapStats(m)
	}
	return nil
}

func stressLinearizability(factory dict.Factory[int, int], d time.Duration, threads int) error {
	if threads > 6 {
		threads = 6 // keep histories small enough for the exhaustive checker
	}
	deadline := time.Now().Add(d)
	rounds := 0
	for time.Now().Before(deadline) {
		m := factory()
		rec := linearizability.NewRecorder()
		var wg sync.WaitGroup
		handles := make([]*linearizability.RecordingHandle, threads)
		for p := 0; p < threads; p++ {
			handles[p] = rec.Wrap(m.NewHandle(), p)
		}
		for p := 0; p < threads; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				h := handles[p]
				rng := rand.New(rand.NewSource(int64(rounds*1000 + p)))
				for i := 0; i < 8; i++ {
					k := rng.Intn(3)
					switch rng.Intn(3) {
					case 0:
						h.Insert(k, p*1000+i)
					case 1:
						h.Delete(k)
					default:
						h.Contains(k)
					}
				}
			}(p)
		}
		wg.Wait()
		var ops []linearizability.Op
		for _, h := range handles {
			ops = append(ops, h.Ops()...)
			h.Close()
		}
		if err := linearizability.Check(ops, 0); err != nil {
			core := linearizability.Shrink(ops, 0)
			msg := ""
			for _, op := range core {
				msg += "\n  " + op.String()
			}
			return fmt.Errorf("round %d: %w; minimal failing core:%s", rounds, err, msg)
		}
		rounds++
	}
	fmt.Printf("(%d histories) ", rounds)
	return nil
}

func stressFalseNegatives(factory dict.Factory[int, int], d time.Duration, threads, keyRange int, showStats bool) error {
	m := factory()
	{
		h := m.NewHandle()
		for k := 0; k < keyRange; k++ {
			h.Insert(k, k)
		}
		h.Close()
	}
	var (
		stop       atomic.Bool
		violations atomic.Int64
		reads      atomic.Int64
		wg         sync.WaitGroup
	)
	readers := max(1, threads/2)
	writers := max(1, threads-readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := workload.NewRNG(seed)
			n := int64(0)
			for !stop.Load() {
				k := rng.Intn(keyRange/2) * 2 // even keys are permanent
				if _, ok := h.Contains(k); !ok {
					violations.Add(1)
				}
				n++
			}
			reads.Add(n)
		}(uint64(r) + 1)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := workload.NewRNG(seed)
			for !stop.Load() {
				k := rng.Intn(keyRange/2)*2 + 1 // odd keys churn
				if rng.Intn(2) == 0 {
					h.Delete(k)
				} else {
					h.Insert(k, k)
				}
			}
		}(uint64(w) + 1000)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		return fmt.Errorf("%d false negatives in %d reads", v, reads.Load())
	}
	fmt.Printf("(%d reads, 0 misses) ", reads.Load())
	if showStats {
		printMapStats(m)
	}
	return m.CheckInvariants()
}
