package main

import "testing"

func TestRunQuickFigure8(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns timed benchmark cells")
	}
	err := run([]string{"-quick", "-figure", "8", "-duration", "20ms", "-threads", "1,2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns timed benchmark cells")
	}
	if err := run([]string{"-quick", "-figure", "a1", "-duration", "20ms", "-threads", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-figure", "a2", "-duration", "20ms", "-threads", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPanelSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns timed benchmark cells")
	}
	if err := run([]string{"-quick", "-figure", "10c", "-duration", "10ms", "-threads", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-figure", "nope"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run([]string{"-threads", "0"}); err == nil {
		t.Fatal("zero thread count accepted")
	}
	if err := run([]string{"-threads", "a,b"}); err == nil {
		t.Fatal("garbage thread list accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns timed benchmark cells")
	}
	dir := t.TempDir()
	csv := dir + "/out.csv"
	if err := run([]string{"-quick", "-figure", "8", "-duration", "10ms", "-threads", "1", "-csv", csv}); err != nil {
		t.Fatal(err)
	}
}

func TestImplFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns timed benchmark cells")
	}
	if err := run([]string{"-quick", "-figure", "10a", "-duration", "10ms", "-threads", "1", "-impl", "citrus"}); err != nil {
		t.Fatal(err)
	}
	// A filter matching nothing must not error, just skip.
	if err := run([]string{"-quick", "-figure", "10a", "-duration", "10ms", "-threads", "1", "-impl", "zzz"}); err != nil {
		t.Fatal(err)
	}
}
