package main

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	"github.com/go-citrus/citrus/internal/harness"
)

// report is the machine-readable result document behind -json. It
// mirrors the CSV cells and adds the native-observability numbers
// (grace-period stats, tracing-overhead A/B) that the tables print,
// so a committed report captures everything a regression check needs.
type report struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// GoMaxProcs is the value at report creation, kept for context only:
	// a -procs sweep resets GOMAXPROCS per repetition, so the
	// authoritative value for any measurement is its cell's Procs field,
	// never this header.
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Duration   string `json:"duration"`
	Reps       int    `json:"reps"`
	Threads    []int  `json:"threads"`
	Procs      []int  `json:"procs"`            // the swept GOMAXPROCS axis
	Shards     []int  `json:"shards,omitempty"` // forest shard counts added as series
	Note       string `json:"note,omitempty"`

	// Cells: one row per (figure, series, threads), same as the CSV.
	Cells []reportCell `json:"cells"`

	// GraceStats: the -stats table (Citrus with recycling, native
	// Tree/Domain counters), present when -stats ran.
	GraceStats []reportGP `json:"grace_period_stats,omitempty"`

	// TracingOverhead: the a4 A/B (plain Citrus vs tracing-enabled
	// Citrus on the same workload), present when figure a4 ran.
	TracingOverhead []reportOverhead `json:"tracing_overhead,omitempty"`

	// CombiningAblation: the a5 A/B (update-heavy Citrus with
	// grace-period combining on vs off), with the domain's native
	// lead/share accounting; present when figure a5 ran.
	CombiningAblation []reportCombining `json:"combining_ablation,omitempty"`

	// AgeMemory: the am figure — per (flavor, watermark, threads) cell,
	// sampled reclaimer backlog depth and oldest-callback age against
	// throughput; present when figure am ran. Cells where threads
	// exceeded the effective GOMAXPROCS carry Timeshared=true and a
	// Caveat explaining what the cell actually measured.
	AgeMemory []reportAgeMemory `json:"age_memory,omitempty"`
}

type reportCell struct {
	Figure    string  `json:"figure"`
	Impl      string  `json:"impl"`
	Threads   int     `json:"threads"`
	Procs     int     `json:"procs"`            // effective GOMAXPROCS for this cell
	Shards    int     `json:"shards,omitempty"` // forest shard count; 0 = unsharded
	OpsPerSec float64 `json:"ops_per_sec"`
}

type reportGP struct {
	Threads         int     `json:"threads"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	Synchronizes    int64   `json:"synchronizes"`
	MeanWaitNanos   int64   `json:"mean_wait_ns"`
	P50WaitNanos    int64   `json:"p50_wait_ns"`
	P99WaitNanos    int64   `json:"p99_wait_ns"`
	InsertRetries   int64   `json:"insert_retries"`
	DeleteRetries   int64   `json:"delete_retries"`
	TwoChildDeletes int64   `json:"two_child_deletes"`
	NodesRetired    int64   `json:"nodes_retired"`
	NodesReused     int64   `json:"nodes_reused"`
}

type reportCombining struct {
	Threads           int     `json:"threads"`
	Combining         bool    `json:"combining"`
	OpsPerSec         float64 `json:"ops_per_sec"`
	Synchronizes      int64   `json:"synchronizes"`
	Leads             int64   `json:"leads"`
	Shares            int64   `json:"shares"`
	Expedited         int64   `json:"expedited"`
	MeanWaitNanos     int64   `json:"mean_wait_ns"`
	P99WaitNanos      int64   `json:"p99_wait_ns"`
	FollowerWaits     int64   `json:"follower_waits"`
	FollowerMeanNanos int64   `json:"follower_mean_ns"`
}

type reportAgeMemory struct {
	Flavor     string `json:"flavor"`    // scalable | classic | ebr
	Watermark  string `json:"watermark"` // unbounded | bounded | tight
	Threads    int    `json:"threads"`
	Procs      int    `json:"procs"`      // effective GOMAXPROCS for this cell
	Timeshared bool   `json:"timeshared"` // threads > procs: goroutine timesharing, not parallelism
	Caveat     string `json:"caveat,omitempty"`

	OpsPerSec float64 `json:"ops_per_sec"`

	// Sampled gauges over the measured window (2ms cadence).
	QueueDepthPeak  int64   `json:"queue_depth_peak"`
	QueueDepthMean  float64 `json:"queue_depth_mean"`
	OldestAgePeakNs int64   `json:"oldest_age_peak_ns"`
	OldestAgeMeanNs int64   `json:"oldest_age_mean_ns"`
	Samples         int64   `json:"samples"`

	// Final reclaimer counters, read before Close drained the backlog.
	Deferred        int64 `json:"deferred"`
	Executed        int64 `json:"executed"`
	Dropped         int64 `json:"dropped"`
	ExpeditedDrains int64 `json:"expedited_drains"`
	GracePeriods    int64 `json:"grace_periods"`
	QueueHighWater  int64 `json:"queue_high_water"`
}

type reportOverhead struct {
	Threads      int     `json:"threads"`
	BaselineOps  float64 `json:"baseline_ops_per_sec"` // tracing disabled
	TracedOps    float64 `json:"traced_ops_per_sec"`   // tracing enabled
	OverheadPct  float64 `json:"overhead_pct"`         // (base-traced)/base*100
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

func newReport(duration time.Duration, reps int, threads, procs, shards []int, note string) *report {
	return &report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Duration:   duration.String(),
		Reps:       reps,
		Threads:    threads,
		Procs:      procs,
		Shards:     shards,
		Note:       note,
	}
}

// addCells appends harness cells under a figure id; nil-safe so call
// sites stay unconditional alongside the CSV writes.
func (r *report) addCells(figID string, cells []harness.Cell) {
	if r == nil {
		return
	}
	for _, c := range cells {
		r.Cells = append(r.Cells, reportCell{
			Figure:    figID,
			Impl:      c.Impl,
			Threads:   c.Workers,
			Procs:     c.Procs,
			Shards:    c.Shards,
			OpsPerSec: c.Throughput,
		})
	}
}

func (r *report) addGP(gp reportGP) {
	if r == nil {
		return
	}
	r.GraceStats = append(r.GraceStats, gp)
}

func (r *report) addCombining(c reportCombining) {
	if r == nil {
		return
	}
	r.CombiningAblation = append(r.CombiningAblation, c)
}

func (r *report) addAgeMemory(a reportAgeMemory) {
	if r == nil {
		return
	}
	r.AgeMemory = append(r.AgeMemory, a)
}

func (r *report) addOverhead(o reportOverhead) {
	if r == nil {
		return
	}
	r.TracingOverhead = append(r.TracingOverhead, o)
}

// write serializes the report to path (indented, trailing newline).
func (r *report) write(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
