// Command citrusbench regenerates the tables behind every figure of the
// Citrus paper's evaluation (Arbel & Attiya, PODC 2014, §5).
//
// Each paper figure maps to one or more panels:
//
//	-figure 8     Citrus on classic (global-lock) RCU vs the scalable RCU
//	-figure 9     single writer, N−1 readers (panels 9a, 9b)
//	-figure 10    contains ratio × key range grid (panels 10a..10f)
//	-figure a1    ablation: grace-period frequency and cost in Citrus
//	-figure a4    A/B: Citrus with event tracing off vs on (citrustrace)
//	-figure a5    A/B: grace-period combining on vs off, update-only mix
//	-figure s     range scans under churn (panels s1 mixed, s2 scan-heavy)
//	-figure am    age–memory trade-off: reclaimer backlog depth and oldest
//	              callback age vs throughput, across RCU flavors
//	              (scalable, classic, ebr) and watermark settings
//	-figure all   everything
//
// Panels can also be addressed individually (-figure 10c). The paper runs
// each cell for five seconds and averages five repetitions; that is
// -duration 5s -reps 5, which takes hours for the full grid — the
// defaults are scaled down, and -paper restores the paper's parameters.
//
// Output is a table per panel on stdout (series as columns, thread counts
// as rows, the same layout as the paper's plots) and optionally a CSV
// (-csv results.csv) with one row per (figure, series, threads) cell, or
// a structured JSON report (-json results.json) that also carries the
// grace-period stats (-stats) and the a4 tracing-overhead A/B.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/go-citrus/citrus/internal/dict"
	"github.com/go-citrus/citrus/internal/harness"
	"github.com/go-citrus/citrus/internal/impls"
	"github.com/go-citrus/citrus/internal/workload"
	"github.com/go-citrus/citrus/rcu"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "citrusbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("citrusbench", flag.ContinueOnError)
	var (
		figure   = fs.String("figure", "all", "comma-separated figures to regenerate: 8, 9, 10, s, a1..a5, am, all, or panel ids like 10c or s1")
		duration = fs.Duration("duration", 500*time.Millisecond, "measured duration per cell")
		reps     = fs.Int("reps", 1, "repetitions per cell (arithmetic mean is reported)")
		threads  = fs.String("threads", "", "comma-separated worker counts (default 1,2,4,8,16,32,64)")
		quick    = fs.Bool("quick", false, "tiny preset for smoke runs (100ms, threads 1,2,4, small key ranges)")
		paper    = fs.Bool("paper", false, "the paper's parameters: 5s per cell, 5 reps (slow)")
		csvPath  = fs.String("csv", "", "also append machine-readable results to this CSV file")
		jsonPath = fs.String("json", "", "also write a structured JSON report to this file")
		note     = fs.String("note", "", "free-form note recorded in the JSON report (baseline citation, machine, etc.)")
		verify   = fs.Bool("verify", true, "check structural invariants after every cell")
		implStr  = fs.String("impl", "", "comma-separated series filter (substring match on series names)")
		stats    = fs.Bool("stats", false, "after the selected figures, run Citrus once per thread count and print a native-observability stats table (grace periods, p50/p99 grace-period wait, retry and recycle rates)")
		procsStr = fs.String("procs", "", "comma-separated GOMAXPROCS sweep (e.g. 1,2,4): the selected figures rerun under each value, and every data point records the procs it ran under")
		shardStr = fs.String("shards", "", "comma-separated Citrus-forest shard counts added as extra series to the figure sweeps (e.g. 1,8); 1 is the degenerate single-tree forest")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	workerCounts := harness.DefaultWorkerCounts
	if *threads != "" {
		workerCounts = nil
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("invalid -threads value %q", part)
			}
			workerCounts = append(workerCounts, n)
		}
	}
	// The procs axis: every value reruns the whole selected set under
	// that GOMAXPROCS, and each data point records the value it actually
	// ran under — a report whose header says one thing while cells ran
	// under another is exactly the mislabeling this flag exists to end.
	procsList := []int{runtime.GOMAXPROCS(0)}
	if *procsStr != "" {
		procsList = nil
		for _, part := range strings.Split(*procsStr, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("invalid -procs value %q", part)
			}
			procsList = append(procsList, n)
		}
	}

	var shardCounts []int
	if *shardStr != "" {
		for _, part := range strings.Split(*shardStr, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("invalid -shards value %q", part)
			}
			shardCounts = append(shardCounts, n)
		}
	}
	// Forest series are appended to every figure sweep; shardsByName
	// labels their cells with the shard count afterwards.
	shardsByName := map[string]int{}
	var forestSeries []impls.NamedFactory[int, int]
	for _, n := range shardCounts {
		nf := impls.ForestFactory[int, int](n)
		shardsByName[nf.Name] = n
		forestSeries = append(forestSeries, nf)
	}

	keyRangeScale := 1
	if *paper {
		*duration = 5 * time.Second
		*reps = 5
	}
	if *quick {
		*duration = 100 * time.Millisecond
		*reps = 1
		keyRangeScale = 100 // 2e5 → 2e3, 2e6 → 2e4
		if *threads == "" {
			workerCounts = []int{1, 2, 4}
		}
	}

	var rep *report
	if *jsonPath != "" {
		rep = newReport(*duration, *reps, workerCounts, procsList, shardCounts, *note)
	}

	var csv *os.File
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		csv = f
		fmt.Fprintln(csv, "figure,impl,threads,procs,shards,ops_per_sec")
	}

	figures := strings.Split(*figure, ",")
	for i := range figures {
		figures[i] = strings.TrimSpace(figures[i])
	}
	selected := func(id string) bool {
		for _, f := range figures {
			if f == id || f == "all" {
				return true
			}
		}
		return false
	}
	want := func(f harness.Figure) bool {
		for _, sel := range figures {
			switch sel {
			case "all":
				return true
			case "8", "9", "10", "s":
				if strings.HasPrefix(f.ID, sel) {
					return true
				}
			default:
				if f.ID == sel {
					return true
				}
			}
		}
		return false
	}

	filterSeries := func(series []impls.NamedFactory[int, int]) []impls.NamedFactory[int, int] {
		if *implStr == "" {
			return series
		}
		var keep []impls.NamedFactory[int, int]
		for _, s := range series {
			for _, pat := range strings.Split(*implStr, ",") {
				if strings.Contains(strings.ToLower(s.Name), strings.ToLower(strings.TrimSpace(pat))) {
					keep = append(keep, s)
					break
				}
			}
		}
		return keep
	}

	maxWorkers := 0
	for _, w := range workerCounts {
		if w > maxWorkers {
			maxWorkers = w
		}
	}

	matched := false
	for _, procs := range procsList {
		runtime.GOMAXPROCS(procs)
		fmt.Printf("citrusbench: GOMAXPROCS=%d (NumCPU=%d), duration=%v, reps=%d, threads=%v\n\n",
			runtime.GOMAXPROCS(0), runtime.NumCPU(), *duration, *reps, workerCounts)
		if maxWorkers > procs {
			fmt.Fprintf(os.Stderr,
				"citrusbench: warning: thread counts up to %d exceed GOMAXPROCS=%d — those cells measure goroutine timesharing on %d proc(s), not parallel scaling\n",
				maxWorkers, procs, procs)
		}
		if procs > runtime.NumCPU() {
			fmt.Fprintf(os.Stderr,
				"citrusbench: warning: GOMAXPROCS=%d exceeds NumCPU=%d — the extra procs are OS-timeshared, not real cores\n",
				procs, runtime.NumCPU())
		}

		for _, f := range harness.Figures() {
			if !want(f) {
				continue
			}
			matched = true
			f.KeyRange /= keyRangeScale
			allSeries := f.Series
			f.Series = func() []impls.NamedFactory[int, int] {
				return filterSeries(append(allSeries(), forestSeries...))
			}
			if len(f.Series()) == 0 {
				fmt.Printf("== Figure %s: skipped (no series match -impl %q) ==\n\n", f.ID, *implStr)
				continue
			}
			fmt.Printf("== Figure %s: %s ==\n", f.ID, f.Caption)
			cells, err := f.Run(workerCounts, *duration, *reps, *verify)
			if err != nil {
				return err
			}
			for i := range cells {
				if n, ok := shardsByName[cells[i].Impl]; ok {
					cells[i].Shards = n
				}
			}
			harness.WriteTable(os.Stdout, cells)
			fmt.Println()
			if csv != nil {
				harness.WriteCSV(csv, f.ID, cells)
			}
			rep.addCells(f.ID, cells)
		}

		if selected("a1") {
			matched = true
			if err := runAblation(workerCounts, *duration, keyRangeScale, csv, rep); err != nil {
				return err
			}
		}
		if selected("a2") {
			matched = true
			if err := runSkewAblation(workerCounts, *duration, *reps, keyRangeScale, *verify, csv, rep); err != nil {
				return err
			}
		}
		if selected("a3") {
			matched = true
			if err := runNoSyncAblation(workerCounts, *duration, *reps, keyRangeScale, csv, rep); err != nil {
				return err
			}
		}
		if selected("a4") {
			matched = true
			if err := runTracingOverhead(workerCounts, *duration, *reps, keyRangeScale, csv, rep); err != nil {
				return err
			}
		}
		if selected("a5") {
			matched = true
			if err := runCombiningAblation(workerCounts, *duration, keyRangeScale, csv, rep); err != nil {
				return err
			}
		}
		if selected("am") {
			matched = true
			if err := runAgeMemory(workerCounts, *duration, keyRangeScale, csv, rep); err != nil {
				return err
			}
		}
		if !matched {
			return fmt.Errorf("unknown figure %q (try 8, 9, 10, a1, a2, a3, a4, a5, am, all, or a panel id)", *figure)
		}
		if *stats {
			if err := runStats(workerCounts, *duration, keyRangeScale, csv, rep); err != nil {
				return err
			}
		}
	}
	if rep != nil {
		if err := rep.write(*jsonPath); err != nil {
			return err
		}
		fmt.Printf("wrote JSON report to %s\n", *jsonPath)
	}
	return nil
}

// runTracingOverhead is the A4 A/B: the Figure 10c workload on plain
// Citrus vs Citrus with a citrustrace flight recorder attached for the
// whole run. The delta is the steady-state cost of tracing while
// enabled; the disabled path's cost (a predictable branch) is below
// measurement noise and pinned by an allocation test instead.
func runTracingOverhead(workerCounts []int, duration time.Duration, reps, keyRangeScale int, csv *os.File, rep *report) error {
	fmt.Println("== Ablation A4: event-tracing overhead (50% contains, key range [0,2e5]) ==")
	series := []impls.NamedFactory[int, int]{
		{Name: impls.NameCitrus, New: impls.NewCitrus[int, int]},
		{Name: "Citrus (tracing on)", New: impls.AblationTracedCitrus},
	}
	cfg := harness.Config{
		KeyRange: harness.KeyRangeSmall / keyRangeScale,
		Mix:      harness.Uniform(workload.ReadMostly(50)),
		Duration: duration,
		Seed:     0xA4,
		Prefill:  true,
	}
	cells, err := harness.Sweep(series, workerCounts, cfg, reps)
	if err != nil {
		return err
	}
	harness.WriteTable(os.Stdout, cells)
	// Pair up baseline/traced by thread count for the overhead summary.
	base := map[int]float64{}
	for _, c := range cells {
		if c.Impl == impls.NameCitrus {
			base[c.Workers] = c.Throughput
		}
	}
	fmt.Printf("%-8s %14s %14s %10s\n", "threads", "tracing off", "tracing on", "overhead")
	fmt.Println(strings.Repeat("-", 50))
	for _, c := range cells {
		if c.Impl == impls.NameCitrus {
			continue
		}
		b := base[c.Workers]
		var pct float64
		if b > 0 {
			pct = (b - c.Throughput) / b * 100
		}
		fmt.Printf("%-8d %14.0f %14.0f %9.2f%%\n", c.Workers, b, c.Throughput, pct)
		rep.addOverhead(reportOverhead{
			Threads:     c.Workers,
			BaselineOps: b,
			TracedOps:   c.Throughput,
			OverheadPct: pct,
		})
	}
	fmt.Println()
	if csv != nil {
		harness.WriteCSV(csv, "a4", cells)
	}
	rep.addCells("a4", cells)
	return nil
}

// runCombiningAblation is the A5 A/B behind the grace-period combining
// engine: the update-only mix of Figure 9 (every two-child delete pays a
// Synchronize) on plain Citrus with combining on vs off, per thread
// count. The per-domain lead/share accounting shows the mechanism at
// work — with combining on, concurrent synchronizers collapse onto few
// led scans (leads ≪ synchronizes at high thread counts) and the mean
// per-call synchronize wait drops; with combining off, every call leads
// its own scan, the pre-combining behavior.
func runCombiningAblation(workerCounts []int, duration time.Duration, keyRangeScale int, csv *os.File, rep *report) error {
	fmt.Println("== Ablation A5: grace-period combining (update-only mix, key range [0,2e5]) ==")
	fmt.Printf("%-8s %-10s %12s %9s %8s %8s %8s %11s %10s %11s\n",
		"threads", "combining", "ops/s", "syncs", "leads", "shares", "exped", "mean sync", "p99 sync", "mean follow")
	fmt.Println(strings.Repeat("-", 104))
	for _, w := range workerCounts {
		for _, combining := range []bool{true, false} {
			dom := rcu.NewDomain()
			dom.SetCombining(combining)
			name := "Citrus (combining off)"
			if combining {
				name = "Citrus (combining on)"
			}
			factory := func() dict.Map[int, int] {
				return impls.NewCitrusWithFlavor[int, int](dom, name)
			}
			cfg := harness.Config{
				Workers:  w,
				KeyRange: harness.KeyRangeSmall / keyRangeScale,
				Mix:      harness.Uniform(workload.UpdateOnly()),
				Duration: duration,
				Seed:     0xA5,
				Prefill:  true,
			}
			res, err := harness.Run(factory, cfg)
			if err != nil {
				return err
			}
			st := dom.Stats()
			fw := st.FollowerWait
			fmt.Printf("%-8d %-10v %12.0f %9d %8d %8d %8d %11v %10v %11v\n",
				w, combining, res.Throughput(), st.Synchronizes, st.SyncLeads, st.SyncShares,
				st.SyncExpedited, st.SyncWait.Mean(), st.SyncWait.Percentile(99), fw.Mean())
			if csv != nil {
				fmt.Fprintf(csv, "a5,%s,%d,%d,0,%.0f\n", name, w, res.Procs, res.Throughput())
			}
			rep.addCells("a5", []harness.Cell{{Impl: name, Workers: w, Procs: res.Procs, Throughput: res.Throughput()}})
			rep.addCombining(reportCombining{
				Threads:           w,
				Combining:         combining,
				OpsPerSec:         res.Throughput(),
				Synchronizes:      st.Synchronizes,
				Leads:             st.SyncLeads,
				Shares:            st.SyncShares,
				Expedited:         st.SyncExpedited,
				MeanWaitNanos:     st.SyncWait.Mean().Nanoseconds(),
				P99WaitNanos:      st.SyncWait.Percentile(99).Nanoseconds(),
				FollowerWaits:     fw.Total(),
				FollowerMeanNanos: fw.Mean().Nanoseconds(),
			})
		}
	}
	fmt.Println()
	return nil
}

// runAgeMemory is the am figure: the age–memory trade-off behind
// bounded reclamation, measured per RCU flavor. Each cell runs a
// read-mostly mix (90% contains — reads dominate, but the update tail
// keeps retiring nodes) on Citrus with recycling, while a sampler
// polls the reclaimer's two trade-off gauges: QueueDepth (memory held
// hostage to unfinished grace periods) and OldestAgeNanos (how stale
// the oldest hostage is). The sweep crosses the three flavors
// (scalable, classic, ebr — different grace-period latencies, hence
// different steady-state backlogs) with three watermark settings
// (unbounded, the kvserver defaults, and a deliberately tight bound
// that sheds under pressure), so the table shows what each flavor's
// grace-period behavior costs in resident garbage and what a bound
// buys back — at what throughput price.
//
// Every cell records the GOMAXPROCS it ran under; on a 1-CPU box the
// thread axis measures goroutine timesharing, not parallelism, and the
// JSON report marks those cells timeshared.
func runAgeMemory(workerCounts []int, duration time.Duration, keyRangeScale int, csv *os.File, rep *report) error {
	fmt.Println("== Figure am: age–memory trade-off by RCU flavor and reclaimer watermark (90% contains, recycling on) ==")
	flavors := []struct {
		name string
		new  func() rcu.Flavor
	}{
		{"scalable", func() rcu.Flavor { return rcu.NewDomain() }},
		{"classic", func() rcu.Flavor { return rcu.NewClassicDomain() }},
		{"ebr", func() rcu.Flavor { return rcu.NewEpochDomain() }},
	}
	watermarks := []struct {
		name string
		opts []rcu.ReclaimerOption
	}{
		{"unbounded", nil},
		{"bounded", []rcu.ReclaimerOption{rcu.WithHighWatermark(1024), rcu.WithHardCap(8192)}},
		{"tight", []rcu.ReclaimerOption{rcu.WithHighWatermark(64), rcu.WithHardCap(256)}},
	}
	fmt.Printf("%-10s %-10s %-8s %-6s %12s %9s %9s %11s %11s %9s %8s\n",
		"flavor", "watermark", "threads", "procs", "ops/s", "depth-pk", "depth-avg", "age-pk", "age-avg", "GPs", "dropped")
	fmt.Println(strings.Repeat("-", 114))
	for _, fl := range flavors {
		for _, wm := range watermarks {
			for _, w := range workerCounts {
				dom := fl.new()
				rec := rcu.NewReclaimer(dom, wm.opts...)
				name := fmt.Sprintf("Citrus (%s, %s)", fl.name, wm.name)
				factory := func() dict.Map[int, int] {
					return impls.NewCitrusRecyclingWithFlavor[int, int](dom, rec, name)
				}
				cfg := harness.Config{
					Workers:  w,
					KeyRange: harness.KeyRangeSmall / keyRangeScale,
					Mix:      harness.Uniform(workload.ReadMostly(90)),
					Duration: duration,
					Seed:     0xA6,
					Prefill:  true,
				}

				// Sample the two gauges for the whole measured window. The
				// 2ms cadence is coarse enough to stay off the hot path and
				// fine enough to catch watermark-drain sawtooths.
				stop := make(chan struct{})
				samples := make(chan amSamples, 1)
				go func() {
					var s amSamples
					tick := time.NewTicker(2 * time.Millisecond)
					defer tick.Stop()
					for {
						select {
						case <-stop:
							samples <- s
							return
						case <-tick.C:
							st := rec.Stats()
							s.add(st.QueueDepth, st.OldestAgeNanos)
						}
					}
				}()

				res, err := harness.Run(factory, cfg)
				close(stop)
				s := <-samples
				if err != nil {
					rec.Close()
					return err
				}
				final := rec.Stats() // pre-Close: Close drains the backlog
				rec.Close()

				timeshared := w > res.Procs
				fmt.Printf("%-10s %-10s %-8d %-6d %12.0f %9d %9.0f %11v %11v %9d %8d\n",
					fl.name, wm.name, w, res.Procs, res.Throughput(),
					s.depthPeak, s.mean(s.depthSum),
					time.Duration(s.agePeak), time.Duration(int64(s.mean(s.ageSum))),
					final.GracePeriods, final.Dropped)
				if csv != nil {
					fmt.Fprintf(csv, "am,%s,%d,%d,0,%.0f\n", name, w, res.Procs, res.Throughput())
				}
				rep.addCells("am", []harness.Cell{{Impl: name, Workers: w, Procs: res.Procs, Throughput: res.Throughput()}})
				caveat := ""
				if timeshared {
					caveat = fmt.Sprintf("threads=%d > GOMAXPROCS=%d: cell measures goroutine timesharing, not parallel scaling", w, res.Procs)
				}
				rep.addAgeMemory(reportAgeMemory{
					Flavor:          fl.name,
					Watermark:       wm.name,
					Threads:         w,
					Procs:           res.Procs,
					Timeshared:      timeshared,
					Caveat:          caveat,
					OpsPerSec:       res.Throughput(),
					QueueDepthPeak:  s.depthPeak,
					QueueDepthMean:  s.mean(s.depthSum),
					OldestAgePeakNs: s.agePeak,
					OldestAgeMeanNs: int64(s.mean(s.ageSum)),
					Samples:         s.n,
					Deferred:        final.Deferred,
					Executed:        final.Executed,
					Dropped:         final.Dropped,
					ExpeditedDrains: final.ExpeditedDrains,
					GracePeriods:    final.GracePeriods,
					QueueHighWater:  final.QueueHighWater,
				})
			}
		}
	}
	fmt.Println()
	return nil
}

// amSamples accumulates the sampler's view of one am cell.
type amSamples struct {
	n                  int64
	depthPeak, agePeak int64
	depthSum, ageSum   float64
}

func (s *amSamples) add(depth, age int64) {
	s.n++
	s.depthSum += float64(depth)
	s.ageSum += float64(age)
	if depth > s.depthPeak {
		s.depthPeak = depth
	}
	if age > s.agePeak {
		s.agePeak = age
	}
}

// mean returns sum/n, 0 before the first sample.
func (s *amSamples) mean(sum float64) float64 {
	if s.n == 0 {
		return 0
	}
	return sum / float64(s.n)
}

// runStats exercises Citrus (with node recycling) once per thread count
// and prints the library's own observability counters — the same
// numbers a production service reads from Tree.Stats()/Domain.Stats()
// at runtime — rather than harness-side instrumentation.
func runStats(workerCounts []int, duration time.Duration, keyRangeScale int, csv *os.File, rep *report) error {
	fmt.Println("== Final stats: native Tree/Domain observability (50% contains, key range [0,2e5], recycling on) ==")
	fmt.Printf("%-8s %12s %8s %12s %10s %10s %9s %9s %8s\n",
		"threads", "ops/s", "GPs", "mean GP", "p50 GP", "p99 GP", "ins-rty", "del-rty", "recycle")
	fmt.Println(strings.Repeat("-", 95))
	for _, w := range workerCounts {
		dom := rcu.NewDomain()
		rec := rcu.NewReclaimer(dom)
		var m dict.Map[int, int]
		factory := func() dict.Map[int, int] {
			m = impls.NewCitrusRecyclingWithFlavor[int, int](dom, rec, "Citrus (stats)")
			return m
		}
		cfg := harness.Config{
			Workers:  w,
			KeyRange: harness.KeyRangeSmall / keyRangeScale,
			Mix:      harness.Uniform(workload.ReadMostly(50)),
			Duration: duration,
			Seed:     0x57A75,
			Prefill:  true,
		}
		res, err := harness.Run(factory, cfg)
		if err != nil {
			rec.Close()
			return err
		}
		rec.Barrier() // let deferred recycling drain so reuse counts settle
		s := m.(impls.TreeStatser).TreeStats()
		rec.Close()
		if s.RCU == nil {
			return fmt.Errorf("stats run: flavor reported no RCU stats")
		}
		gp := s.RCU.SyncWait
		retryRate := func(retries, attempts int64) string {
			if attempts == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f%%", float64(retries)/float64(attempts)*100)
		}
		recycleRate := "-"
		if s.NodesRetired > 0 {
			recycleRate = fmt.Sprintf("%.0f%%", float64(s.NodesReused)/float64(s.NodesRetired)*100)
		}
		fmt.Printf("%-8d %12.0f %8d %12v %10v %10v %9s %9s %8s\n",
			w, res.Throughput(), s.RCU.Synchronizes, gp.Mean(), gp.Percentile(50), gp.Percentile(99),
			retryRate(s.InsertRetries, s.Inserts+s.InsertExisting+s.InsertRetries),
			retryRate(s.DeleteRetries, s.Deletes+s.DeleteMisses+s.DeleteRetries),
			recycleRate)
		if csv != nil {
			fmt.Fprintf(csv, "stats,Citrus,%d,%d,0,%.0f\n", w, res.Procs, res.Throughput())
		}
		rep.addGP(reportGP{
			Threads:         w,
			OpsPerSec:       res.Throughput(),
			Synchronizes:    s.RCU.Synchronizes,
			MeanWaitNanos:   gp.Mean().Nanoseconds(),
			P50WaitNanos:    gp.Percentile(50).Nanoseconds(),
			P99WaitNanos:    gp.Percentile(99).Nanoseconds(),
			InsertRetries:   s.InsertRetries,
			DeleteRetries:   s.DeleteRetries,
			TwoChildDeletes: s.TwoChildDeletes,
			NodesRetired:    s.NodesRetired,
			NodesReused:     s.NodesReused,
		})
	}
	fmt.Println()
	return nil
}

// runNoSyncAblation compares Citrus against a mutant whose
// synchronize_rcu is a no-op (rcu.NoSync): the throughput delta is the
// end-to-end price of the grace period in delete (the paper's line 74).
// The mutant is NOT a correct dictionary — its searches can return false
// negatives — so this is strictly a cost measurement.
func runNoSyncAblation(workerCounts []int, duration time.Duration, reps, keyRangeScale int, csv *os.File, rep *report) error {
	fmt.Println("== Ablation A3: end-to-end cost of grace periods (50% contains, key range [0,2e5]) ==")
	series := []impls.NamedFactory[int, int]{
		{Name: impls.NameCitrus, New: impls.NewCitrus[int, int]},
		{Name: "Citrus (no grace periods)", New: impls.AblationNoSyncCitrus},
	}
	cfg := harness.Config{
		KeyRange: harness.KeyRangeSmall / keyRangeScale,
		Mix:      harness.Uniform(workload.ReadMostly(50)),
		Duration: duration,
		Seed:     0xA3,
		Prefill:  true,
		// No Verify: the mutant's quiescent structure is fine, but skip
		// for symmetry with the cost-only purpose.
	}
	cells, err := harness.Sweep(series, workerCounts, cfg, reps)
	if err != nil {
		return err
	}
	harness.WriteTable(os.Stdout, cells)
	fmt.Println()
	if csv != nil {
		harness.WriteCSV(csv, "a3", cells)
	}
	rep.addCells("a3", cells)
	return nil
}

// runSkewAblation is an extension beyond the paper: the Figure 10c
// workload (50% contains) under Zipf(1.2)-skewed keys, where updates
// concentrate on a few hot subtrees. Fine-grained designs keep working;
// designs serializing all updaters behave as before (their bottleneck was
// already global).
func runSkewAblation(workerCounts []int, duration time.Duration, reps, keyRangeScale int, verify bool, csv *os.File, rep *report) error {
	fmt.Println("== Ablation A2 (extension): 50% contains under Zipf(1.2) skew, key range [0,2e5] ==")
	cfg := harness.Config{
		KeyRange: harness.KeyRangeSmall / keyRangeScale,
		Mix:      harness.Uniform(workload.ReadMostly(50)),
		Duration: duration,
		Seed:     0x5EED,
		Prefill:  true,
		Verify:   verify,
		ZipfS:    1.2,
	}
	cells, err := harness.Sweep(impls.Figure[int, int](), workerCounts, cfg, reps)
	if err != nil {
		return err
	}
	harness.WriteTable(os.Stdout, cells)
	fmt.Println()
	if csv != nil {
		harness.WriteCSV(csv, "a2", cells)
	}
	rep.addCells("a2", cells)
	return nil
}

// runAblation measures how often Citrus synchronizes (one grace period
// per two-child delete) and what each grace period costs, across thread
// counts — the accounting behind the paper's observation that Citrus
// "continues to scale, though the cost of synchronize_rcu is evident".
// The numbers come from the domain's native Stats (not a wrapper
// flavor), so this is also an end-to-end check of the observability
// layer the library ships.
func runAblation(workerCounts []int, duration time.Duration, keyRangeScale int, csv *os.File, rep *report) error {
	fmt.Println("== Ablation A1: grace-period frequency and cost in Citrus (50% contains, key range [0,2e5]) ==")
	fmt.Printf("%-8s %12s %10s %12s %11s %10s %10s\n",
		"threads", "ops/s", "syncs/s", "mean sync", "sync share", "op p50", "op p99")
	fmt.Println(strings.Repeat("-", 80))
	for _, w := range workerCounts {
		dom := rcu.NewDomain()
		factory := func() dict.Map[int, int] {
			return impls.NewCitrusWithFlavor[int, int](dom, "Citrus (native stats)")
		}
		cfg := harness.Config{
			Workers:        w,
			KeyRange:       harness.KeyRangeSmall / keyRangeScale,
			Mix:            harness.Uniform(workload.ReadMostly(50)),
			Duration:       duration,
			Seed:           0xAB1A7E,
			Prefill:        true,
			MeasureLatency: true,
		}
		res, err := harness.Run(factory, cfg)
		if err != nil {
			return err
		}
		st := dom.Stats()
		secs := res.Elapsed.Seconds()
		share := st.SyncWait.Sum().Seconds() / (secs * float64(w)) * 100
		fmt.Printf("%-8d %12.0f %10.0f %12v %10.2f%% %10v %10v\n",
			w, res.Throughput(), float64(st.Synchronizes)/secs, st.SyncWait.Mean(), share,
			res.Latency.Percentile(50), res.Latency.Percentile(99))
		if csv != nil {
			fmt.Fprintf(csv, "a1,Citrus,%d,%d,0,%.0f\n", w, res.Procs, res.Throughput())
		}
		rep.addCells("a1", []harness.Cell{{Impl: "Citrus", Workers: w, Procs: res.Procs, Throughput: res.Throughput()}})
	}
	fmt.Println()
	return nil
}
