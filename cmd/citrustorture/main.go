// Command citrustorture is the repository's rcutorture analog: a
// time-boxed, seeded fault-injection harness that drives the search
// structures through the rare interleavings the Citrus paper's proofs
// are about and watches them with three oracles — the reclamation
// epoch-accounting shadow (with node poisoning), the structural
// invariant suite, and an exhaustive linearizability checker whose
// failing histories are shrunk to a minimal core.
//
// The -seed flag drives every schedule-injection decision and every
// workload draw, so a failure report's seed is a reproduction recipe:
//
//	citrustorture -flavor nosync -seed 42 -duration 4s
//
// runs the same injection schedule again. -seeds N sweeps N
// consecutive seeds; -json writes the machine-readable verdicts CI
// archives. The exit status is 1 iff any run failed.
//
// Negative controls (see docs/VERIFICATION.md): `-flavor nosync`,
// `-flavor snapearly` (grace-period combining with its sequence target
// computed one stride early), `-flavor ebrearly` (the epoch flavor with
// its advance threshold computed one epoch early, so pinned readers are
// never waited for) and `-mutant ignoretags -recycle` are deliberately
// broken builds that MUST fail; they verify the harness can see the
// failures it hunts.
//
// `-flavor ebr` swaps the reclamation design under the same oracles:
// the epoch-based rcu.EpochDomain instead of the default per-reader
// counter+flag domain. It is expected to PASS — the point is that the
// harness exercises the flavor seam, not just the default flavor.
//
// `-flavor stalledreader` is a robustness scenario: a dedicated reader
// parks inside its critical section while churn floods the reclaimer,
// and the run additionally asserts — as a positive control — that the
// stall detector fired and the reclaimer's high watermark tripped,
// without the tree corrupting (see docs/RCU.md "Robustness").
//
// `-flavor scanstorm` is the scan-discipline scenario: half the churn
// workers run batched range scans (the read-side critical section is
// dropped every few emissions) against a bounded reclaimer, every scan
// checked in flight for the weak-consistency contract, and the run
// fails if the reclaimer's hard cap ever sheds a callback. Its negative
// control is `-flavor scanhog` (citrus only): unbatched full-range
// scans with a slow consumer hog the read side against a deliberately
// tiny hard cap, and the run MUST fail with shed callbacks and stall
// reports — proving the harness can see a scan workload starving
// reclamation.
//
// `-crash` switches the harness from in-process torture to CRASH
// torture (see internal/crashtorture and docs/DURABILITY.md): the
// kvserver example runs as a child process with a write-ahead log,
// churns over real TCP, is SIGKILLed mid-write at seeded points, and
// every recovery is checked against a durability oracle — every
// acknowledged write survives, in-flight writes may land either way.
// Its negative control is `-crash -crash-fsync nofsync`: the none
// policy buffers acknowledged records in user space, so the KILLed
// child genuinely loses them and the run MUST fail with lost-write
// failures. -seed/-seeds/-json keep their meanings; the crash rounds
// reuse the same verdict document.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/go-citrus/citrus/internal/impls"
	"github.com/go-citrus/citrus/internal/torture"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "citrustorture:", err)
		os.Exit(1)
	}
}

// report is the JSON document written by -json: every run's verdict
// plus the sweep-level outcome.
type report struct {
	Passed bool               `json:"passed"`
	Runs   []*torture.Verdict `json:"runs"`
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("citrustorture", flag.ContinueOnError)
	var (
		implName = fs.String("impl", "citrus", "subject: citrus, forest (sharded citrus), a registry name (see -list), or all")
		list     = fs.Bool("list", false, "list subject names and exit")
		flavor   = fs.String("flavor", "", "citrus RCU flavor: scalable (default), classic, ebr (epoch-based), a negative control (nosync, snapearly, ebrearly, scanhog), or a robustness scenario (stalledreader, scanstorm)")
		mutant   = fs.String("mutant", "", "citrus mutant: ignoretags disables the line 38 tag validation (negative control)")
		recycle  = fs.Bool("recycle", false, "torture citrus with node recycling (disables poisoning)")
		seed     = fs.Uint64("seed", 1, "master seed: injection schedule + workloads derive from it")
		seeds    = fs.Int("seeds", 1, "sweep this many consecutive seeds starting at -seed")
		duration = fs.Duration("duration", 2*time.Second, "time box per run")
		threads  = fs.Int("threads", 8, "churn worker goroutines")
		keyRange = fs.Int("keyrange", 64, "churn key range (small ranges maximize conflicts)")
		shards   = fs.Int("shards", 0, "forest shard count (forest subject only; 0 = default 4)")
		maxSleep = fs.Duration("maxsleep", 0, "cap on injected sleeps (0 = schedpoint default)")
		jsonPath = fs.String("json", "", "write the verdict report as JSON to this file ('-' for stdout)")

		crash       = fs.Bool("crash", false, "crash torture: SIGKILL a WAL-backed kvserver child mid-churn and verify recovery (see docs/DURABILITY.md)")
		crashBin    = fs.String("crash-bin", "", "prebuilt kvserver binary for -crash (empty = go build ./examples/kvserver once)")
		crashRounds = fs.Int("crash-rounds", 4, "SIGKILL rounds per -crash run before the graceful finale")
		crashClient = fs.Int("crash-clients", 4, "concurrent churn connections per -crash run")
		crashKeys   = fs.Int("crash-keys", 128, "key-partition size per churn client (-crash)")
		crashFsync  = fs.String("crash-fsync", "group", "child WAL fsync policy for -crash: always, group, or nofsync (negative control: MUST lose acknowledged writes)")
		crashShards = fs.Int("crash-shards", 0, "child -shards for -crash (0 = unsharded)")
		crashSnap   = fs.Int("crash-snapshot-every", 512, "child -snapshot-every for -crash, so fuzzy snapshots land mid-torture")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *crash {
		return runCrash(out, crashCfgFlags{
			bin: *crashBin, rounds: *crashRounds, clients: *crashClient,
			keys: *crashKeys, fsync: *crashFsync, shards: *crashShards,
			snapEvery: *crashSnap, seed: *seed, seeds: *seeds, jsonPath: *jsonPath,
		})
	}
	if *list {
		fmt.Fprintln(out, "citrus")
		fmt.Fprintln(out, "forest")
		for _, f := range impls.All[int, int]() {
			if !strings.EqualFold(f.Name, "citrus") {
				fmt.Fprintln(out, f.Name)
			}
		}
		return nil
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be at least 1, got %d", *seeds)
	}

	type subjectCfg struct {
		impl, flavor string
	}
	var subjects []subjectCfg
	if *implName == "all" {
		if *flavor != "" || *mutant != "" || *recycle {
			return fmt.Errorf("-impl all cannot be combined with -flavor/-mutant/-recycle")
		}
		subjects = append(subjects,
			subjectCfg{"citrus", "scalable"},
			subjectCfg{"citrus", "classic"},
			subjectCfg{"forest", "scalable"})
		for _, f := range impls.All[int, int]() {
			if !strings.HasPrefix(f.Name, "Citrus") {
				subjects = append(subjects, subjectCfg{f.Name, ""})
			}
		}
	} else {
		subjects = append(subjects, subjectCfg{*implName, *flavor})
	}

	rep := report{Passed: true}
	for _, sub := range subjects {
		for i := 0; i < *seeds; i++ {
			cfg := torture.Config{
				Seed:     *seed + uint64(i),
				Duration: *duration,
				Threads:  *threads,
				KeyRange: *keyRange,
				Impl:     sub.impl,
				Flavor:   sub.flavor,
				Mutant:   *mutant,
				Recycle:  *recycle,
				MaxSleep: *maxSleep,
			}
			if strings.EqualFold(sub.impl, "forest") {
				cfg.Shards = *shards
			}
			v, err := torture.Run(cfg)
			if err != nil {
				return err
			}
			rep.Runs = append(rep.Runs, v)
			printVerdict(out, v)
			if !v.Passed {
				rep.Passed = false
			}
		}
	}

	if err := writeReport(out, rep, *jsonPath); err != nil {
		return err
	}
	if !rep.Passed {
		return fmt.Errorf("%d of %d run(s) failed; reproduce with the seeds printed above", countFailed(rep.Runs), len(rep.Runs))
	}
	return nil
}

func countFailed(runs []*torture.Verdict) int {
	n := 0
	for _, v := range runs {
		if !v.Passed {
			n++
		}
	}
	return n
}

// printVerdict renders one run's outcome for a human: a PASS/FAIL
// line with the reproduction seed, the failure list, and the shrunk
// history when linearizability was the oracle that fired.
func printVerdict(out *os.File, v *torture.Verdict) {
	label := v.Impl
	if v.Shards > 0 {
		label += fmt.Sprintf("(%d)", v.Shards)
	}
	if v.Flavor != "" && v.Flavor != "scalable" {
		label += "/" + v.Flavor
	}
	if v.Mutant != "" {
		label += "+" + v.Mutant
	}
	if v.Recycle {
		label += "+recycle"
	}
	status := "PASS"
	if !v.Passed {
		status = "FAIL"
	}
	fmt.Fprintf(out, "%-32s seed=%-6d %s  (%d rounds, %d ops, %d reclaim checks, %d point hits, %dms)\n",
		label, v.Seed, status, v.Rounds, v.Ops, v.ReclaimChecks, totalHits(v.PointHits), v.ElapsedMS)
	for _, f := range v.Failures {
		fmt.Fprintf(out, "    failure: %s\n", f)
	}
	for _, op := range v.MinimalHistory {
		fmt.Fprintf(out, "    history: %s\n", op)
	}
	if !v.Passed {
		fmt.Fprintf(out, "    reproduce: go run ./cmd/citrustorture %s\n", reproArgs(v))
	}
}

// reproArgs reconstructs the flag line that reruns a verdict's exact
// configuration and injection schedule.
func reproArgs(v *torture.Verdict) string {
	if v.Impl == "kvserver-crash" {
		args := fmt.Sprintf("-crash -crash-fsync %s -seed %d", v.Flavor, v.Seed)
		if v.Shards > 0 {
			args += fmt.Sprintf(" -crash-shards %d", v.Shards)
		}
		return args
	}
	args := fmt.Sprintf("-impl %q -seed %d", v.Impl, v.Seed)
	if v.Shards > 0 {
		args += fmt.Sprintf(" -shards %d", v.Shards)
	}
	if v.Flavor != "" {
		args += " -flavor " + v.Flavor
	}
	if v.Mutant != "" {
		args += " -mutant " + v.Mutant
	}
	if v.Recycle {
		args += " -recycle"
	}
	return args
}

func totalHits(hits map[string]uint64) uint64 {
	var n uint64
	for _, h := range hits {
		n += h
	}
	return n
}
