package main

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/go-citrus/citrus/internal/crashtorture"
)

// crashCfgFlags carries the -crash-* flag values into runCrash.
type crashCfgFlags struct {
	bin       string
	rounds    int
	clients   int
	keys      int
	fsync     string
	shards    int
	snapEvery int
	seed      uint64
	seeds     int
	jsonPath  string
}

// runCrash is the -crash entry point: it sweeps `seeds` consecutive
// seeds through the kill–recover–verify schedule, one child-process
// lineage per seed, and reports verdicts exactly like the in-process
// harness. The kvserver binary is built once and shared across the
// sweep unless -crash-bin supplied one.
func runCrash(out *os.File, cf crashCfgFlags) error {
	if cf.seeds < 1 {
		return fmt.Errorf("-seeds must be at least 1, got %d", cf.seeds)
	}
	bin := cf.bin
	if bin == "" {
		tmp, err := os.MkdirTemp("", "citrustorture-bin-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		fmt.Fprintln(out, "building ./examples/kvserver for crash torture...")
		bin, err = crashtorture.BuildBinary(tmp)
		if err != nil {
			return err
		}
	}

	rep := report{Passed: true}
	for i := 0; i < cf.seeds; i++ {
		v, err := crashtorture.Run(crashtorture.Config{
			Bin:           bin,
			Seed:          cf.seed + uint64(i),
			Rounds:        cf.rounds,
			Clients:       cf.clients,
			KeysPerClient: cf.keys,
			Fsync:         cf.fsync,
			Shards:        cf.shards,
			SnapshotEvery: cf.snapEvery,
		})
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, v)
		printVerdict(out, v)
		if !v.Passed {
			rep.Passed = false
		}
	}
	if err := writeReport(out, rep, cf.jsonPath); err != nil {
		return err
	}
	if !rep.Passed {
		return fmt.Errorf("%d of %d crash run(s) failed; reproduce with -crash -crash-fsync %s and the seeds printed above",
			countFailed(rep.Runs), len(rep.Runs), cf.fsync)
	}
	return nil
}

// writeReport emits the -json document (shared by both harness modes).
func writeReport(out *os.File, rep report, jsonPath string) error {
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if jsonPath == "-" {
		_, err = out.Write(data)
		return err
	}
	return os.WriteFile(jsonPath, data, 0o644)
}
