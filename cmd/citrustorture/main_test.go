package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListMode(t *testing.T) {
	if err := run([]string{"-list"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownImplRejected(t *testing.T) {
	if err := run([]string{"-impl", "nope", "-duration", "50ms"}, os.Stdout); err == nil {
		t.Fatal("unknown -impl accepted")
	}
}

func TestUnknownFlavorRejected(t *testing.T) {
	if err := run([]string{"-flavor", "nope", "-duration", "50ms"}, os.Stdout); err == nil {
		t.Fatal("unknown -flavor accepted")
	}
}

func TestBadSeedsRejected(t *testing.T) {
	if err := run([]string{"-seeds", "0"}, os.Stdout); err == nil {
		t.Fatal("-seeds 0 accepted")
	}
}

func TestAllRejectsCitrusKnobs(t *testing.T) {
	if err := run([]string{"-impl", "all", "-flavor", "nosync"}, os.Stdout); err == nil {
		t.Fatal("-impl all combined with -flavor accepted")
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, os.Stdout); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestSmokePassWritesJSON: a short correct-build run passes and the
// -json report round-trips with the fields CI consumes.
func TestSmokePassWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdict.json")
	err := run([]string{"-seed", "3", "-duration", "150ms", "-threads", "4", "-keyrange", "32", "-json", path}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("verdict JSON does not parse: %v\n%s", err, data)
	}
	if !rep.Passed || len(rep.Runs) != 1 {
		t.Fatalf("report = %+v, want one passed run", rep)
	}
	v := rep.Runs[0]
	if v.Seed != 3 || !v.Passed || v.Ops == 0 || len(v.PointHits) == 0 {
		t.Fatalf("verdict missing substance: %+v", v)
	}
}

// TestNegativeControlExitsNonZero: the nosync control must turn into a
// non-nil error (exit 1) and a failing JSON report.
func TestNegativeControlExitsNonZero(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdict.json")
	err := run([]string{"-flavor", "nosync", "-seed", "1", "-duration", "4s", "-json", path}, os.Stdout)
	if err == nil {
		t.Fatal("nosync run reported success")
	}
	if !strings.Contains(err.Error(), "failed") {
		t.Fatalf("unexpected error: %v", err)
	}
	data, err2 := os.ReadFile(path)
	if err2 != nil {
		t.Fatalf("JSON report not written on failure: %v", err2)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Passed || len(rep.Runs) != 1 || rep.Runs[0].Passed {
		t.Fatalf("failing run's report claims success: %+v", rep)
	}
}

// TestSeedSweep: -seeds N runs N consecutive seeds.
func TestSeedSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdict.json")
	err := run([]string{"-seed", "5", "-seeds", "2", "-duration", "120ms", "-threads", "4", "-keyrange", "32", "-json", path}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 || rep.Runs[0].Seed != 5 || rep.Runs[1].Seed != 6 {
		t.Fatalf("sweep ran wrong seeds: %+v", rep.Runs)
	}
}
