# Development entry points for the Citrus reproduction.

GO ?= go

.PHONY: all ci build test race bench figures figures-paper bench-forest bench-scan bench-am bench-wal loadtest stress torture torture-smoke torture-stall torture-forest torture-scan torture-ebr torture-crash fuzz vet fmt clean

all: build vet test

# What CI runs (see .github/workflows/ci.yml): build, vet, full test
# suite, the race detector over the packages with the most
# concurrency-sensitive invariants (including the citrustrace rings and
# the public tracing toggles), a GOMAXPROCS=4 race pass over the forest
# and kvserver sharding paths, a short citrusbench smoke run that
# exercises the -json report plus the a4 tracing-overhead and a5
# grace-period-combining A/Bs, the committed BENCH_PR4.json combining
# ablation, the BENCH_PR6.json procs×shards sweep, an end-to-end
# kvserver+citrusload load smoke with Prometheus-payload validation,
# and fixed-seed torture smoke runs (correct build, the stalledreader robustness
# scenario, the forest subject with its shard-isolation control, the
# scanstorm/scanhog scan pair with the s1 scan-figure bench smoke, and
# the epoch-flavor pair: a 10-seed ebr race sweep plus the inverted
# ebrearly negative control, with the am age-memory bench behind
# BENCH_PR9.json, and the crash-torture sweep: kill–recover–verify
# against the WAL-backed kvserver with the inverted nofsync control
# and the WAL recovery fuzzer).
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./rcu/... ./internal/core/... ./citrustrace/... ./internal/schedpoint/... ./internal/torture/...
	$(GO) test -race -run 'Trace|Tracing' .
	GOMAXPROCS=4 $(GO) test -race -run 'Forest|Sharded|Partition|Router' . ./internal/partition/... ./internal/impls/... ./examples/kvserver/...
	$(GO) run ./cmd/citrusbench -figure 10c,a4,a5 -quick -impl Citrus -json bench_smoke.json -note "CI smoke"
	$(GO) run ./cmd/citrusbench -figure 10c,a5 -threads 1,2,4,8,16 -impl Citrus -json BENCH_PR4.json -note "CI combining ablation"
	$(MAKE) bench-forest
	$(MAKE) loadtest
	$(MAKE) torture-smoke
	$(MAKE) torture-stall
	$(MAKE) torture-forest
	$(MAKE) torture-scan
	$(MAKE) torture-ebr
	$(MAKE) torture-crash
	$(MAKE) bench-scan
	$(MAKE) bench-am

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per paper figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every figure's table (scaled-down defaults; ~15 min on one core).
figures:
	$(GO) run ./cmd/citrusbench -figure all -duration 1s -csv bench_results.csv

# The paper's parameters: 5s per cell, 5 repetitions. Slow.
figures-paper:
	$(GO) run ./cmd/citrusbench -figure all -paper -csv bench_results.csv

# The procs × shards sweep behind BENCH_PR6.json: figure 10c with
# GOMAXPROCS 1 and 4, unsharded Citrus vs an 8-shard forest, effective
# procs recorded on every data point. On a 1-CPU box -procs 4 measures
# timesharing, and the tool warns exactly so.
bench-forest:
	$(GO) run ./cmd/citrusbench -figure 10c -threads 1,4,8 -procs 1,4 -shards 1,8 -impl Citrus -json BENCH_PR6.json -note "forest sweep"

# End-to-end load smoke: boot a sharded kvserver, sweep it with the
# open-loop generator (docs/OBSERVABILITY.md "citrusload"), validate
# the Prometheus exposition on every point, write the latency report.
loadtest:
	$(GO) build -o /tmp/kvserver-loadtest ./examples/kvserver
	$(GO) build -o /tmp/citrusload-loadtest ./cmd/citrusload
	/tmp/kvserver-loadtest -serve -shards 8 -addr 127.0.0.1:7170 -http 127.0.0.1:7171 & \
	KV_PID=$$!; \
	for i in $$(seq 1 50); do curl -sf http://127.0.0.1:7171/healthz >/dev/null && break; sleep 0.2; done; \
	/tmp/citrusload-loadtest -proto tcp -target 127.0.0.1:7170 \
	    -rates 500,1000 -duration 3s -warmup 1s \
	    -scrape http://127.0.0.1:7171 -out BENCH_load_smoke.json -note "make loadtest"; \
	RC=$$?; kill $$KV_PID; exit $$RC

stress:
	$(GO) run ./cmd/citrusstress -mode churn -duration 5s
	$(GO) run ./cmd/citrusstress -mode linear -duration 5s
	$(GO) run ./cmd/citrusstress -mode falseneg -duration 5s

# Seeded fault-injection torture (docs/VERIFICATION.md "Torture").
# Long sweep: five seeds, 30s each, across both Citrus flavors plus a
# recycling configuration. Failures print their reproduction seed.
torture:
	$(GO) run ./cmd/citrustorture -seed 1 -seeds 5 -duration 30s -json citrustorture.json
	$(GO) run ./cmd/citrustorture -flavor classic -seed 1 -seeds 5 -duration 30s -json citrustorture-classic.json
	$(GO) run ./cmd/citrustorture -recycle -seed 1 -seeds 5 -duration 30s -json citrustorture-recycle.json

# CI-sized fixed-seed smoke: one correct-build run that must pass.
# The negative controls (nosync, snapearly, ignoretags) run as tests in
# internal/torture, so `go test ./...` already proves the harness bites.
torture-smoke:
	$(GO) run ./cmd/citrustorture -seed 1 -duration 2s -json citrustorture-smoke.json

# The robustness scenario (docs/RCU.md "Robustness"): a reader parked in
# its critical section while churn floods a watermarked reclaimer. The
# run fails unless the stall detector fired, the high watermark tripped,
# and the tree stayed correct — positive controls for the whole
# degradation machinery on a fixed seed.
torture-stall:
	$(GO) run ./cmd/citrustorture -flavor stalledreader -seed 1 -duration 4s -json citrustorture-stall.json

# The sharded subject: per-shard reclamation oracles, misroute checks,
# and — under stalledreader — the isolation positive control: shard 0
# stalls, and the run fails unless the sibling shards' grace periods
# kept completing.
torture-forest:
	$(GO) run ./cmd/citrustorture -impl forest -seed 1 -duration 2s -json citrustorture-forest.json
	$(GO) run ./cmd/citrustorture -impl forest -flavor stalledreader -seed 1 -duration 4s -json citrustorture-forest-stall.json

# Scan torture (docs/VERIFICATION.md "Scans"). scanstorm is the
# robustness scenario: half the workers run batched range scans against
# churn on a watermarked reclaimer, and the run fails if scan-side
# critical sections starved reclamation past its memory bound (any shed
# callback) or if no scans completed. scanhog is the matching negative
# control — an unbatched full-range scan dwelling in its critical
# section against a tiny hard cap — judged by the SAME discipline rule,
# so it MUST fail on its fixed seed; the leading `!` inverts it.
torture-scan:
	$(GO) run ./cmd/citrustorture -flavor scanstorm -seed 1 -duration 4s -json citrustorture-scan.json
	$(GO) run ./cmd/citrustorture -impl forest -flavor scanstorm -seed 1 -duration 4s -json citrustorture-scan-forest.json
	! $(GO) run ./cmd/citrustorture -flavor scanhog -seed 11 -duration 2s -json citrustorture-scanhog.json

# The epoch-based flavor (docs/RCU.md "Choosing a flavor"). The correct
# build must pass a 10-seed sweep under the race detector — EBR's reader
# fast path is a single unfenced-looking store and the race pass is what
# certifies the happens-before edges behind it — and the ebrearly mutant
# (advance threshold computed one epoch early, so pinned readers are
# never waited for) MUST fail on its pinned seed; the leading `!`
# inverts it.
torture-ebr:
	$(GO) run -race ./cmd/citrustorture -flavor ebr -seed 1 -seeds 10 -duration 2s -json citrustorture-ebr.json
	$(GO) run ./cmd/citrustorture -impl forest -flavor ebr -seed 1 -duration 2s -json citrustorture-ebr-forest.json
	! $(GO) run ./cmd/citrustorture -flavor ebrearly -seed 1 -duration 2s -json citrustorture-ebrearly.json

# Crash torture (docs/DURABILITY.md, docs/VERIFICATION.md "Crash
# torture"): kill–recover–verify against the WAL-backed kvserver. The
# kvserver binary is built once and shared across the sweep. Ten seeds
# of the durable default (group commit) must pass — every acknowledged
# write survives SIGKILL — and the nofsync negative control, whose acks
# come from a user-space buffer, MUST lose acknowledged writes on its
# fixed seed; the leading `!` inverts it.
torture-crash:
	$(GO) build -o /tmp/kvserver-crash ./examples/kvserver
	$(GO) run ./cmd/citrustorture -crash -crash-bin /tmp/kvserver-crash -seed 1 -seeds 10 -json citrustorture-crash.json
	$(GO) run ./cmd/citrustorture -crash -crash-bin /tmp/kvserver-crash -crash-shards 4 -seed 1 -json citrustorture-crash-forest.json
	! $(GO) run ./cmd/citrustorture -crash -crash-bin /tmp/kvserver-crash -crash-fsync nofsync -seed 1 -json citrustorture-crash-nofsync.json

# WAL append throughput and fsync behavior across the three policies
# (docs/DURABILITY.md "fsync policies"): the group-commit knee is the
# figure — fsyncs/append collapses as writers stack while always pays
# one fsync per record.
bench-wal:
	$(GO) test -bench 'BenchmarkWAL' -benchmem ./internal/wal

# The age–memory figure behind BENCH_PR9.json: reclaimer backlog depth
# and oldest-callback age sampled against throughput, across the three
# RCU flavors × three watermark settings. Every cell records its
# effective GOMAXPROCS; on a 1-CPU box the thread axis measures
# timesharing and the JSON marks those cells with a caveat.
bench-am:
	$(GO) run ./cmd/citrusbench -figure am -threads 1,4,8 -json BENCH_PR9.json -note "age-memory flavor sweep"

# The scan figure behind BENCH_PR8.json: range scans as first-class ops
# racing structural churn (s1: 30% scans / 70% updates; s2: 90% scans),
# Citrus vs Bonsai's path-copied snapshots vs the baselines. Effective
# GOMAXPROCS is recorded per cell — on a 1-CPU box the thread axis
# measures timesharing, and the report says so.
bench-scan:
	$(GO) run ./cmd/citrusbench -figure s -quick -json BENCH_scan_smoke.json -note "scan figure smoke"

# Coverage-guided exploration of the core tree against the map oracle.
fuzz:
	$(GO) test -fuzz=FuzzOpsAgainstOracle -fuzztime 60s ./internal/core

clean:
	rm -f bench_results.csv bench_smoke.json BENCH_scan_smoke.json test_output.txt bench_output.txt citrustorture*.json /tmp/kvserver-crash
