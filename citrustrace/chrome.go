package citrustrace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event serialization. The output is the JSON Object Format
// of the Trace Event specification — {"traceEvents": [...]} — which
// loads directly in chrome://tracing and in Perfetto's legacy-trace
// importer.
//
// Mapping: every ring becomes one named thread (pid 1), so each tree
// handle's operations render as their own track, with the domain's
// grace-period ring ("rcu") and the reclaimer ring alongside. Span
// events become complete events (ph "X" with ts+dur); instant events
// become thread-scoped instants (ph "i"). Grace periods correlate with
// their per-reader waits through args.gp, and reader waits name the
// rcu reader handle id in args.reader — which matches the "reader-N"
// thread labels of that reader's operation ring.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds since epoch
	Dur   *float64       `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   uint32         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

// chromeArgs builds the args object for one event.
func chromeArgs(ev Event) map[string]any {
	switch ev.Type {
	case EvContains:
		return map[string]any{"found": ev.A == 1}
	case EvInsert:
		return map[string]any{"inserted": ev.A == 1, "retries": ev.B}
	case EvDelete:
		outcome := [...]string{"miss", "one-child", "two-child"}
		o := "unknown"
		if ev.A < uint64(len(outcome)) {
			o = outcome[ev.A]
		}
		return map[string]any{"outcome": o, "retries": ev.B}
	case EvLockWait, EvValidateFail:
		return map[string]any{"site": SiteName(ev.A)}
	case EvSync:
		return map[string]any{"gp": ev.A, "spins": ev.B, "yields": ev.C}
	case EvReaderWait:
		return map[string]any{"gp": ev.A, "reader": ev.B, "spins": ev.C}
	case EvGPLead:
		return map[string]any{"gp": ev.A, "seq": ev.B, "readers_waited": ev.C}
	case EvGPShare:
		return map[string]any{"gp": ev.A, "target_seq": ev.B, "inflight_seq": ev.C}
	case EvRetire, EvReclaim:
		return map[string]any{"nodes": ev.A}
	case EvStall:
		return map[string]any{"gp": ev.A, "first_reader": ev.B, "stalled_readers": ev.C}
	default:
		return nil
	}
}

// chromeCat buckets event types into trace categories, so tracks can be
// filtered in the viewer.
func chromeCat(t EventType) string {
	switch t {
	case EvSync, EvReaderWait, EvSyncWait, EvGPLead, EvGPShare, EvStall:
		return "rcu"
	case EvRetire, EvReclaim:
		return "reclaim"
	default:
		return "op"
	}
}

// WriteChromeTrace serializes the trace in Chrome trace_event JSON.
// Shards map to Chrome processes (pid = shard+1), so a forest trace
// merged with MergeShards renders one process group per shard; a
// single-recorder trace stays entirely in pid 1.
func (t Trace) WriteChromeTrace(w io.Writer) error {
	ct := chromeTrace{DisplayTimeUnit: "ns"}
	shards := map[int]bool{}
	for _, ri := range t.Rings {
		shards[ri.Shard] = true
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   chromePID + ri.Shard,
			TID:   ri.ID,
			Args:  map[string]any{"name": ri.Label},
		})
	}
	if len(shards) > 1 {
		for shard := range shards {
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name:  "process_name",
				Phase: "M",
				PID:   chromePID + shard,
				Args:  map[string]any{"name": fmt.Sprintf("shard-%d", shard)},
			})
		}
	}
	for _, ev := range t.Events {
		ce := chromeEvent{
			Name: ev.Type.String(),
			Cat:  chromeCat(ev.Type),
			TS:   float64(ev.Start.Nanoseconds()) / 1e3,
			PID:  chromePID + ev.Shard,
			TID:  ev.Ring,
			Args: chromeArgs(ev),
		}
		if ev.Dur > 0 || isSpan(ev.Type) {
			dur := float64(ev.Dur.Nanoseconds()) / 1e3
			ce.Phase = "X"
			ce.Dur = &dur
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		ct.TraceEvents = append(ct.TraceEvents, ce)
	}
	return json.NewEncoder(w).Encode(ct)
}

// isSpan reports whether the type is a duration event even when the
// measured duration rounds to zero.
func isSpan(t EventType) bool {
	switch t {
	case EvContains, EvInsert, EvDelete, EvLockWait, EvSyncWait, EvSync, EvReaderWait,
		EvGPLead, EvGPShare, EvStall:
		return true
	}
	return false
}
