package citrustrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// makeShardTrace builds a trace with nRings rings and one event per
// ring, with the given epoch and event offsets.
func makeShardTrace(epoch time.Time, nRings int, offsets ...time.Duration) Trace {
	tr := Trace{Epoch: epoch}
	for i := 0; i < nRings; i++ {
		tr.Rings = append(tr.Rings, RingInfo{
			ID:       uint32(i + 1),
			Label:    "ring",
			Recorded: 1,
		})
	}
	for i, off := range offsets {
		tr.Events = append(tr.Events, Event{
			Start: off,
			Dur:   time.Microsecond,
			Type:  EvContains,
			Ring:  uint32(i%nRings + 1),
			A:     uint64(i),
		})
	}
	return tr
}

func TestMergeShardsRebasesAndTags(t *testing.T) {
	base := time.Unix(1000, 0)
	// Shard 1's recorder started 5ms after shard 0's.
	t0 := makeShardTrace(base, 1, 0, 10*time.Millisecond)
	t1 := makeShardTrace(base.Add(5*time.Millisecond), 1, 0, 2*time.Millisecond)

	merged := MergeShards([]Trace{t0, t1})

	if !merged.Epoch.Equal(base) {
		t.Fatalf("merged epoch = %v, want earliest %v", merged.Epoch, base)
	}
	if len(merged.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(merged.Events))
	}
	// On the shared clock: shard0@0, shard1@5ms, shard1@7ms, shard0@10ms.
	wantStarts := []time.Duration{0, 5 * time.Millisecond, 7 * time.Millisecond, 10 * time.Millisecond}
	wantShards := []int{0, 1, 1, 0}
	for i, ev := range merged.Events {
		if ev.Start != wantStarts[i] {
			t.Errorf("event %d: start %v, want %v", i, ev.Start, wantStarts[i])
		}
		if ev.Shard != wantShards[i] {
			t.Errorf("event %d: shard %d, want %d", i, ev.Shard, wantShards[i])
		}
	}
	// Ring IDs must be unique across the merge, and events must point at
	// a ring from their own shard.
	seen := map[uint32]int{}
	for _, ri := range merged.Rings {
		if _, dup := seen[ri.ID]; dup {
			t.Fatalf("duplicate ring ID %d after merge", ri.ID)
		}
		seen[ri.ID] = ri.Shard
	}
	for i, ev := range merged.Events {
		shard, ok := seen[ev.Ring]
		if !ok {
			t.Fatalf("event %d references unknown ring %d", i, ev.Ring)
		}
		if shard != ev.Shard {
			t.Fatalf("event %d: ring shard %d != event shard %d", i, shard, ev.Shard)
		}
	}
}

func TestMergeShardsSkipsEmptyShards(t *testing.T) {
	base := time.Unix(1000, 0)
	// Shard 1 has tracing disabled (zero Trace); shard indices of the
	// others must be preserved, not compacted.
	shards := []Trace{
		makeShardTrace(base, 1, 0),
		{},
		makeShardTrace(base, 1, time.Millisecond),
	}
	merged := MergeShards(shards)
	if len(merged.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(merged.Events))
	}
	if merged.Events[0].Shard != 0 || merged.Events[1].Shard != 2 {
		t.Fatalf("shard indices not preserved: %d, %d",
			merged.Events[0].Shard, merged.Events[1].Shard)
	}

	if all := MergeShards([]Trace{{}, {}}); !all.Epoch.IsZero() || len(all.Events) != 0 {
		t.Fatalf("merge of empty traces should be empty, got %+v", all)
	}
}

func TestMergeShardsFromLiveRecorders(t *testing.T) {
	recA, recB := New(WithRingSize(16)), New(WithRingSize(16))
	ra := recA.NewRing("reader-1")
	rb := recB.NewRing("reader-1")
	now := time.Now()
	ra.Record(EvContains, now, time.Microsecond, 1, 0, 0)
	rb.Record(EvInsert, now, time.Microsecond, 1, 0, 0)

	merged := MergeShards([]Trace{recA.Snapshot(), recB.Snapshot()})
	if len(merged.Events) != 2 || len(merged.Rings) != 2 {
		t.Fatalf("got %d events / %d rings, want 2 / 2", len(merged.Events), len(merged.Rings))
	}
	if merged.Rings[0].ID == merged.Rings[1].ID {
		t.Fatalf("ring IDs collide after merge: %d", merged.Rings[0].ID)
	}

	// The merged trace must survive the JSON round trip with shard tags.
	var buf bytes.Buffer
	if err := merged.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	shardsSeen := map[int]bool{}
	for _, ev := range back.Events {
		shardsSeen[ev.Shard] = true
	}
	if !shardsSeen[0] || !shardsSeen[1] {
		t.Fatalf("JSON round trip lost shard tags: %v", shardsSeen)
	}
}

func TestChromeTraceShardProcesses(t *testing.T) {
	base := time.Unix(1000, 0)
	merged := MergeShards([]Trace{
		makeShardTrace(base, 1, 0),
		makeShardTrace(base, 1, time.Millisecond),
	})
	var buf bytes.Buffer
	if err := merged.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	procNames := map[int]string{}
	for _, ev := range ct.TraceEvents {
		pids[ev.PID] = true
		if ev.Name == "process_name" && ev.Phase == "M" {
			procNames[ev.PID], _ = ev.Args["name"].(string)
		}
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("expected pids 1 and 2 for two shards, got %v", pids)
	}
	for pid, want := range map[int]string{1: "shard-0", 2: "shard-1"} {
		if got := procNames[pid]; !strings.HasPrefix(got, "shard-") || got != want {
			t.Errorf("pid %d process_name = %q, want %q", pid, got, want)
		}
	}
}
