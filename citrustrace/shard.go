package citrustrace

import "sort"

// MergeShards folds one trace per shard — typically one Recorder
// snapshot per forest shard — into a single time-ordered Trace.
//
// Each recorder has its own epoch (the moment it was created), so the
// per-shard timestamps do not share a zero point. The merged trace's
// epoch is the earliest of the inputs' and every event is rebased onto
// it, which keeps cross-shard ordering faithful to wall-clock order up
// to the monotonic clock's resolution.
//
// Ring IDs are only unique within one recorder; the merge assigns fresh
// IDs (dense, in shard order) and rewrites every event to match, so a
// merged trace still satisfies the one-ID-one-track invariant the
// Chrome export relies on. Events and rings carry their source shard in
// the Shard field; the shard index is the position in the input slice.
//
// Nil-epoch (zero Trace) inputs contribute nothing but still occupy a
// shard index, so callers can pass a slice indexed by shard ID with
// gaps for shards that have tracing disabled.
func MergeShards(shards []Trace) Trace {
	var out Trace
	for _, t := range shards {
		if t.Epoch.IsZero() {
			continue
		}
		if out.Epoch.IsZero() || t.Epoch.Before(out.Epoch) {
			out.Epoch = t.Epoch
		}
	}
	if out.Epoch.IsZero() {
		return out
	}
	var nextID uint32
	for shard, t := range shards {
		if t.Epoch.IsZero() {
			continue
		}
		offset := t.Epoch.Sub(out.Epoch)
		remap := make(map[uint32]uint32, len(t.Rings))
		for _, ri := range t.Rings {
			nextID++
			remap[ri.ID] = nextID
			ri.ID = nextID
			ri.Shard = shard
			out.Rings = append(out.Rings, ri)
		}
		for _, ev := range t.Events {
			ev.Start += offset
			ev.Shard = shard
			if id, ok := remap[ev.Ring]; ok {
				ev.Ring = id
			} else {
				// Ring metadata lost (snapshot raced a ring registration);
				// keep the event on a synthetic per-shard track rather
				// than dropping it or colliding with a remapped ID.
				nextID++
				remap[ev.Ring] = nextID
				out.Rings = append(out.Rings, RingInfo{
					ID:    nextID,
					Label: "unknown",
					Shard: shard,
				})
				ev.Ring = nextID
			}
			out.Events = append(out.Events, ev)
		}
	}
	sort.SliceStable(out.Events, func(i, j int) bool {
		if out.Events[i].Start != out.Events[j].Start {
			return out.Events[i].Start < out.Events[j].Start
		}
		return out.Events[i].Ring < out.Events[j].Ring
	})
	return out
}
