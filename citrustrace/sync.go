package citrustrace

import (
	"context"
	rtrace "runtime/trace"
	"sync/atomic"
	"time"
)

// SyncTracer records grace-period events for an RCU domain: one EvSync
// span per Synchronize call plus one EvReaderWait span per reader the
// grace period actually waited on, all into a shared multi-writer ring.
// It also brackets every grace period in a runtime/trace region named
// "rcu.synchronize", so a runtime trace collected while the domain is
// traced (e.g. via /debug/pprof/trace) shows GP waits as regions in
// `go tool trace`.
//
// Obtain one from Recorder.SyncTracer and install it with
// rcu.Domain.SetTracer / rcu.ClassicDomain.SetTracer.
type SyncTracer struct {
	ring   *Ring
	nextGP atomic.Uint64
}

// SyncTracer returns a tracer recording into the recorder's shared ring
// under label (conventionally "rcu").
func (r *Recorder) SyncTracer(label string) *SyncTracer {
	return &SyncTracer{ring: r.SharedRing(label)}
}

// SyncBegin opens a span for one grace period. The returned SyncSpan
// must be finished with End on the same goroutine (runtime/trace
// regions require it); ReaderWait may be called any number of times in
// between.
func (t *SyncTracer) SyncBegin() SyncSpan {
	return SyncSpan{
		t:      t,
		gp:     t.nextGP.Add(1),
		start:  time.Now(),
		region: rtrace.StartRegion(context.Background(), "rcu.synchronize"),
	}
}

// A SyncSpan is one in-progress grace period being traced.
type SyncSpan struct {
	t      *SyncTracer
	gp     uint64
	start  time.Time
	region *rtrace.Region
}

// GP reports the span's grace-period id.
func (s *SyncSpan) GP() uint64 { return s.gp }

// ReaderWait records that the grace period waited on one reader that
// was inside a read-side critical section when it began: the reader's
// handle id, when the wait started, how long it lasted, and how many
// spin iterations it cost.
func (s *SyncSpan) ReaderWait(readerID uint64, start time.Time, wait time.Duration, spins int64) {
	s.t.ring.Record(EvReaderWait, start, wait, s.gp, readerID, uint64(spins))
}

// GPLead records that the call led one grace-period scan under
// combining: the scan's start, the sequence value it published on
// completion, and how many readers it waited on.
func (s *SyncSpan) GPLead(start time.Time, seq uint64, waited int) {
	s.t.ring.Record(EvGPLead, start, time.Since(start), s.gp, seq, uint64(waited))
}

// GPShare records one follower episode under combining: the wait's
// start, the sequence target the call needs, and the in-flight sequence
// value it waited out.
func (s *SyncSpan) GPShare(start time.Time, target, inflight uint64) {
	s.t.ring.Record(EvGPShare, start, time.Since(start), s.gp, target, inflight)
}

// Stall records that the grace period crossed its stall threshold and
// is still waiting: the first blocking reader's handle id and how many
// readers block it in total. The span covers entry-to-report.
func (s *SyncSpan) Stall(firstReader uint64, stalled int) {
	s.t.ring.Record(EvStall, s.start, time.Since(s.start), s.gp, firstReader, uint64(stalled))
}

// End closes the grace-period span with its total spin/yield cost.
func (s *SyncSpan) End(spins, yields int64) {
	s.t.ring.Record(EvSync, s.start, time.Since(s.start), s.gp, uint64(spins), uint64(yields))
	s.region.End()
}
