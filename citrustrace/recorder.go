package citrustrace

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingSize is the per-ring event capacity used when no
// WithRingSize option is given: 4096 events ≈ 2k operations of recent
// history per handle (an op span plus its satellite events), at 56 bytes
// a slot.
const DefaultRingSize = 4096

// A Recorder owns a set of event rings and a shared epoch, and produces
// merged flight-recorder snapshots. Create one with New, hand rings to
// writers with NewRing/SharedRing, and call Snapshot (or the Write*
// helpers) at any time, from any goroutine, concurrently with recording.
type Recorder struct {
	epoch    time.Time
	ringSize int

	mu     sync.Mutex
	rings  atomic.Pointer[[]*Ring] // copy-on-write, so Snapshot takes no lock
	shared map[string]*Ring
	nextID atomic.Uint32
}

// An Option configures a Recorder.
type Option func(*Recorder)

// WithRingSize sets the per-ring event capacity (rounded up to a power
// of two, minimum 8). Bigger rings hold a longer history window; each
// slot costs 56 bytes.
func WithRingSize(n int) Option {
	return func(r *Recorder) {
		size := 8
		for size < n {
			size <<= 1
		}
		r.ringSize = size
	}
}

// New returns an empty Recorder. Its epoch — the zero point of every
// event timestamp — is the moment of the call.
func New(opts ...Option) *Recorder {
	r := &Recorder{epoch: time.Now(), ringSize: DefaultRingSize}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Epoch reports the recorder's time zero.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// NewRing registers and returns a fresh ring. Each writer (tree handle,
// domain, reclaimer) should own one; label is surfaced in dumps and as
// the Chrome-trace thread name.
func (r *Recorder) NewRing(label string) *Ring {
	g := &Ring{
		label: label,
		rec:   r,
		mask:  uint64(r.ringSize - 1),
		slots: make([]slot, r.ringSize),
	}
	g.id = r.nextID.Add(1)
	r.mu.Lock()
	old := r.rings.Load()
	var rs []*Ring
	if old != nil {
		rs = make([]*Ring, len(*old), len(*old)+1)
		copy(rs, *old)
	}
	rs = append(rs, g)
	r.rings.Store(&rs)
	r.mu.Unlock()
	return g
}

// SharedRing returns the ring registered under label, creating it on
// first use. Multiple goroutines may record into it concurrently; the
// RCU domain tracer and the reclaimer use this.
func (r *Recorder) SharedRing(label string) *Ring {
	r.mu.Lock()
	if g, ok := r.shared[label]; ok {
		r.mu.Unlock()
		return g
	}
	r.mu.Unlock()
	// NewRing takes the lock itself; a race here at worst creates an
	// extra ring that loses the map slot below and stays registered but
	// unused — harmless, and shared rings are created once per label.
	g := r.NewRing(label)
	r.mu.Lock()
	if r.shared == nil {
		r.shared = make(map[string]*Ring)
	}
	if exist, ok := r.shared[label]; ok {
		g = exist
	} else {
		r.shared[label] = g
	}
	r.mu.Unlock()
	return g
}

// RingInfo describes one ring in a Trace. Shard is 0 except in traces
// built by MergeShards, where it names the ring's source shard.
type RingInfo struct {
	ID       uint32 `json:"id"`
	Label    string `json:"label"`
	Shard    int    `json:"shard,omitempty"`
	Recorded int64  `json:"recorded"` // events ever recorded
	Dropped  int64  `json:"dropped"`  // of those, overwritten before this snapshot
}

// A Trace is a merged flight-recorder snapshot: every ring's surviving
// events, time-ordered on the recorder's single clock. It is a plain
// value — safe to retain, serialize, and inspect without further
// synchronization.
type Trace struct {
	Epoch  time.Time  `json:"epoch"`
	Rings  []RingInfo `json:"rings,omitempty"`
	Events []Event    `json:"events"`
}

// Dropped sums the events overwritten (lost to ring wraparound) across
// all rings.
func (t Trace) Dropped() int64 {
	var n int64
	for _, ri := range t.Rings {
		n += ri.Dropped
	}
	return n
}

// Snapshot merges all rings into a time-ordered Trace. It runs
// concurrently with recording without blocking writers; events being
// overwritten during the scan are dropped, not torn.
func (r *Recorder) Snapshot() Trace {
	t := Trace{Epoch: r.epoch}
	rsp := r.rings.Load()
	if rsp == nil {
		return t
	}
	for _, g := range *rsp {
		before := len(t.Events)
		t.Events = g.snapshot(t.Events)
		rec := g.Recorded()
		t.Rings = append(t.Rings, RingInfo{
			ID:       g.id,
			Label:    g.label,
			Recorded: rec,
			Dropped:  rec - int64(len(t.Events)-before),
		})
	}
	sort.SliceStable(t.Events, func(i, j int) bool {
		if t.Events[i].Start != t.Events[j].Start {
			return t.Events[i].Start < t.Events[j].Start
		}
		return t.Events[i].Ring < t.Events[j].Ring
	})
	return t
}

// WriteJSON serializes the trace as one JSON object: epoch, per-ring
// metadata, and the time-ordered events.
func (t Trace) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(t)
}

// WriteJSON is shorthand for Snapshot().WriteJSON.
func (r *Recorder) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }

// WriteChromeTrace is shorthand for Snapshot().WriteChromeTrace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error { return r.Snapshot().WriteChromeTrace(w) }
