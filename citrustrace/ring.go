package citrustrace

import (
	"sync/atomic"
	"time"
)

// A Ring is one fixed-size event buffer inside a Recorder. Recording is
// lock-free: the writer claims a slot with one atomic add and publishes
// it with a sequence store, so any number of goroutines may share a ring
// (the per-handle tree rings happen to be single-writer, which makes the
// claim uncontended; the per-domain grace-period ring is genuinely
// multi-writer). Old events are overwritten once the ring is full.
//
// Snapshots run concurrently with writers and take no locks either: a
// slot is read optimistically and discarded if its sequence word changed
// underneath the read (seqlock-style). A torn read is therefore dropped,
// never surfaced.
type Ring struct {
	id    uint32
	label string
	rec   *Recorder
	mask  uint64
	head  atomic.Uint64 // total events ever claimed
	slots []slot
}

// slot is one ring entry. All fields are atomics so that flight-recorder
// snapshots racing with the writer stay within the Go memory model; the
// writer publishes seq last (claim index + 1), and invalidates it first.
type slot struct {
	seq   atomic.Uint64
	start atomic.Int64
	dur   atomic.Int64
	meta  atomic.Uint64 // EventType
	a     atomic.Uint64
	b     atomic.Uint64
	c     atomic.Uint64
}

// ID reports the ring's recorder-unique id (the Ring field of its
// events).
func (g *Ring) ID() uint32 { return g.id }

// Label reports the ring's human-readable label ("reader-3", "rcu", …).
func (g *Ring) Label() string { return g.label }

// Record appends one event. start is converted to the recorder's epoch;
// instant events pass dur 0. Record never blocks and never allocates.
func (g *Ring) Record(t EventType, start time.Time, dur time.Duration, a, b, c uint64) {
	i := g.head.Add(1) - 1
	s := &g.slots[i&g.mask]
	s.seq.Store(0) // invalidate while the payload is torn
	s.start.Store(int64(start.Sub(g.rec.epoch)))
	s.dur.Store(int64(dur))
	s.meta.Store(uint64(t))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.seq.Store(i + 1) // publish
}

// Recorded reports how many events were ever recorded into the ring
// (including overwritten ones).
func (g *Ring) Recorded() int64 { return int64(g.head.Load()) }

// snapshot appends the ring's currently valid events to dst.
func (g *Ring) snapshot(dst []Event) []Event {
	for i := range g.slots {
		s := &g.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue // empty or mid-write
		}
		ev := Event{
			Start: time.Duration(s.start.Load()),
			Dur:   time.Duration(s.dur.Load()),
			Type:  EventType(s.meta.Load()),
			Ring:  g.id,
			A:     s.a.Load(),
			B:     s.b.Load(),
			C:     s.c.Load(),
		}
		if s.seq.Load() != seq || ev.Type == EvNone || int(ev.Type) >= int(numEventTypes) {
			continue // torn by a concurrent overwrite
		}
		dst = append(dst, ev)
	}
	return dst
}
