// Package citrustrace is the event-tracing layer of the Citrus
// reproduction: a low-overhead flight recorder that captures *causality*
// where the stats layer (package citrusstat, rcu.Stats, citrus.Tree
// Stats) captures *counts*.
//
// Events are typed, fixed-size records — operation spans, per-node lock
// waits, validation retries, synchronize_rcu spans with a per-reader
// wait breakdown, node retire/reclaim — written into per-writer,
// fixed-size, lock-free ring buffers. Old events are overwritten by new
// ones, so a recorder holds a sliding window of recent history ("flight
// recorder" semantics): when a grace period stalls or a delete spins on
// validation, the window shows which readers were waited on and how the
// phases interleaved.
//
// A Recorder owns the rings. Writers obtain a Ring (one per tree handle;
// a shared ring per RCU domain and per reclaimer) and record into it
// without locks: one atomic slot claim plus plain atomic stores. A
// Snapshot merges every ring on demand, validates slots against
// concurrent overwrite, time-orders the surviving events, and can be
// serialized to JSON or to the Chrome trace_event format
// (chrome://tracing, Perfetto; see WriteChromeTrace).
//
// The package is dependency-free and usable on its own; the Citrus stack
// wires it through citrus.Tree.EnableTracing, rcu.Domain.SetTracer and
// internal/core.Tree.SetTracer, all gated behind a single
// atomic-pointer nil check so that disabled tracing costs one
// predictable branch on the hot paths and allocates nothing.
package citrustrace

import (
	"encoding/json"
	"fmt"
	"time"
)

// EventType identifies what an Event records. Span events carry a
// non-zero duration; instant events have Dur == 0 by construction.
type EventType uint8

const (
	// EvNone marks an empty or invalidated slot; never surfaced by
	// Snapshot.
	EvNone EventType = iota

	// EvContains is a wait-free lookup span. A = 1 if the key was found.
	EvContains

	// EvInsert is an insert span. A = 1 if the key was inserted (0: key
	// already present); B = validation retries paid by this call.
	EvInsert

	// EvDelete is a delete span. A = outcome (0: key absent, 1:
	// single-child unlink, 2: successor relocation — the paper's
	// two-child delete, which paid one inline grace period); B =
	// validation retries paid by this call.
	EvDelete

	// EvLockWait is a span covering time spent blocked acquiring a
	// per-node lock that was contended (uncontended acquisitions emit
	// nothing). A = lock site (see SiteName).
	EvLockWait

	// EvValidateFail is an instant event: a post-lock validation failed
	// and the operation will retry (the paper's lines 32/84). A = site.
	EvValidateFail

	// EvSyncWait is a span recorded by the *updater* around its
	// synchronize_rcu call in a two-child delete (the paper's line 74):
	// how long this operation waited for the grace period, including any
	// queueing the flavor imposes.
	EvSyncWait

	// EvSync is a span recorded by the *domain* for one grace period,
	// from Synchronize entry to return. A = grace-period id (correlates
	// with EvReaderWait), B = total spin iterations, C = total yields.
	EvSync

	// EvReaderWait is a span recorded by the domain for one reader it
	// actually waited on during a grace period: the reader was inside a
	// read-side critical section when the grace period began. A =
	// grace-period id, B = reader handle id (rcu.Handle.ID), C = spin
	// iterations spent on this reader.
	EvReaderWait

	// EvGPLead is a span recorded by the scalable domain when a
	// Synchronize call led a grace-period scan under combining: the
	// election was won and the reader scan ran on this goroutine. A =
	// grace-period id (correlates with the surrounding EvSync), B = the
	// sequence value published when the scan completed, C = how many
	// readers the scan actually waited on.
	EvGPLead

	// EvGPShare is a span recorded by the scalable domain for one
	// follower episode under combining: the call piggybacked on a grace
	// period led elsewhere, covering the wait from observing the
	// in-flight sequence to its completion. A = grace-period id of the
	// sharing call's own span (EvSync), B = the sequence target the
	// call needs, C = the in-flight sequence value it waited out.
	EvGPShare

	// EvRetire is an instant event: a delete handed unlinked nodes to
	// deferred reclamation. A = number of nodes retired.
	EvRetire

	// EvReclaim is an instant event: a retired node's grace period
	// elapsed and it was returned to the allocation pool. A = number of
	// nodes reclaimed.
	EvReclaim

	// EvStall is a span recorded by a domain when a Synchronize call
	// crossed its stall threshold (rcu.SetStallTimeout): the wait so far,
	// from call entry to the report. A = grace-period id (correlates
	// with the surrounding EvSync), B = the id of the first reader the
	// call is blocked on, C = how many readers it is blocked on. A long
	// stall re-fires with doubling intervals, so one hung reader shows
	// as a small series of growing EvStall spans.
	EvStall

	numEventTypes // sentinel
)

var eventTypeNames = [numEventTypes]string{
	EvNone:         "none",
	EvContains:     "contains",
	EvInsert:       "insert",
	EvDelete:       "delete",
	EvLockWait:     "lock-wait",
	EvValidateFail: "validate-fail",
	EvSyncWait:     "sync-wait",
	EvSync:         "synchronize",
	EvReaderWait:   "reader-wait",
	EvGPLead:       "gp-lead",
	EvGPShare:      "gp-share",
	EvRetire:       "retire",
	EvReclaim:      "reclaim",
	EvStall:        "stall",
}

// String returns the event type's stable wire name (used in both the
// JSON dump and the Chrome trace).
func (t EventType) String() string {
	if int(t) < len(eventTypeNames) {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("event-%d", uint8(t))
}

// MarshalJSON encodes the type as its name, keeping dumps readable.
func (t EventType) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON accepts the wire names MarshalJSON emits, so trace
// dumps round-trip through encoding/json (tooling that post-processes
// /debug/trace output relies on this). Unknown names — including the
// "event-N" form used for types this build doesn't know — decode as
// EvNone rather than failing, keeping old readers forward-compatible
// with traces from newer writers.
func (t *EventType) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range eventTypeNames {
		if n == name {
			*t = EventType(i)
			return nil
		}
	}
	*t = EvNone
	return nil
}

// Lock/validation sites, carried in the A argument of EvLockWait and
// EvValidateFail events. They name the paper's lock acquisitions:
// insert locks the parent (line 26); delete locks the parent and the
// target (47–48) and, for a two-child delete, the successor's parent
// (67) and the successor (68); validation failures are the retries of
// lines 32 and 84 (split by which validation failed).
const (
	SiteInsertParent       uint64 = iota + 1 // insert: parent of the new leaf
	SiteDeleteParent                         // delete: parent of the target
	SiteDeleteTarget                         // delete: the target node
	SiteDeleteSuccParent                     // two-child delete: successor's parent
	SiteDeleteSucc                           // two-child delete: the successor
	SiteValidateInsert                       // insert validation failed (line 32)
	SiteValidateDelete                       // delete target validation failed
	SiteValidateDeleteSucc                   // successor validation failed (line 69)
	numSites
)

var siteNames = [numSites]string{
	SiteInsertParent:       "insert-parent",
	SiteDeleteParent:       "delete-parent",
	SiteDeleteTarget:       "delete-target",
	SiteDeleteSuccParent:   "delete-succ-parent",
	SiteDeleteSucc:         "delete-succ",
	SiteValidateInsert:     "validate-insert",
	SiteValidateDelete:     "validate-delete",
	SiteValidateDeleteSucc: "validate-delete-succ",
}

// SiteName names a lock/validation site constant; unknown values format
// as "site-N".
func SiteName(s uint64) string {
	if s < numSites && siteNames[s] != "" {
		return siteNames[s]
	}
	return fmt.Sprintf("site-%d", s)
}

// An Event is one record captured by a ring. Span events cover
// [Start, Start+Dur); instant events have Dur == 0. Start is relative
// to the recorder's epoch (Trace.Epoch), so events from different rings
// share one clock. The meaning of A, B and C depends on Type.
//
// Shard is 0 for a single-recorder trace; MergeShards sets it to the
// source shard's index when folding per-shard flight recorders into one
// trace, so a merged dump still attributes every event.
type Event struct {
	Start time.Duration `json:"start"`
	Dur   time.Duration `json:"dur"`
	Type  EventType     `json:"type"`
	Ring  uint32        `json:"ring"`
	Shard int           `json:"shard,omitempty"`
	A     uint64        `json:"a,omitempty"`
	B     uint64        `json:"b,omitempty"`
	C     uint64        `json:"c,omitempty"`
}
