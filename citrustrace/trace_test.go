package citrustrace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRingRecordAndSnapshot(t *testing.T) {
	rec := New(WithRingSize(64))
	g := rec.NewRing("test")
	base := rec.Epoch()
	for i := 0; i < 10; i++ {
		g.Record(EvContains, base.Add(time.Duration(i)*time.Microsecond), time.Microsecond, uint64(i%2), 0, 0)
	}
	tr := rec.Snapshot()
	if len(tr.Events) != 10 {
		t.Fatalf("got %d events, want 10", len(tr.Events))
	}
	for i, ev := range tr.Events {
		if ev.Type != EvContains {
			t.Errorf("event %d: type %v, want contains", i, ev.Type)
		}
		if ev.Ring != g.ID() {
			t.Errorf("event %d: ring %d, want %d", i, ev.Ring, g.ID())
		}
		if i > 0 && ev.Start < tr.Events[i-1].Start {
			t.Errorf("events out of order at %d: %v < %v", i, ev.Start, tr.Events[i-1].Start)
		}
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped %d, want 0", tr.Dropped())
	}
}

func TestRingWraparoundKeepsNewest(t *testing.T) {
	rec := New(WithRingSize(8))
	g := rec.NewRing("wrap")
	base := rec.Epoch()
	const total = 100
	for i := 0; i < total; i++ {
		g.Record(EvInsert, base.Add(time.Duration(i)*time.Millisecond), 0, uint64(i), 0, 0)
	}
	tr := rec.Snapshot()
	if len(tr.Events) != 8 {
		t.Fatalf("got %d events, want ring size 8", len(tr.Events))
	}
	// The survivors must be the newest 8 (A carries the sequence).
	for _, ev := range tr.Events {
		if ev.A < total-8 {
			t.Errorf("event A=%d survived; older than the newest 8", ev.A)
		}
	}
	if got := tr.Dropped(); got != total-8 {
		t.Errorf("dropped %d, want %d", got, total-8)
	}
	if g.Recorded() != total {
		t.Errorf("recorded %d, want %d", g.Recorded(), total)
	}
}

func TestWithRingSizeRoundsUp(t *testing.T) {
	rec := New(WithRingSize(100))
	g := rec.NewRing("x")
	if len(g.slots) != 128 {
		t.Errorf("ring size %d, want 128 (next power of two)", len(g.slots))
	}
	rec = New(WithRingSize(1))
	if g := rec.NewRing("y"); len(g.slots) != 8 {
		t.Errorf("ring size %d, want minimum 8", len(g.slots))
	}
}

func TestSnapshotMergesAndOrdersAcrossRings(t *testing.T) {
	rec := New(WithRingSize(16))
	a := rec.NewRing("a")
	b := rec.NewRing("b")
	base := rec.Epoch()
	// Interleave timestamps across the two rings.
	a.Record(EvInsert, base.Add(3*time.Microsecond), 0, 0, 0, 0)
	b.Record(EvDelete, base.Add(1*time.Microsecond), 0, 0, 0, 0)
	a.Record(EvInsert, base.Add(2*time.Microsecond), 0, 0, 0, 0)
	b.Record(EvDelete, base.Add(4*time.Microsecond), 0, 0, 0, 0)
	tr := rec.Snapshot()
	if len(tr.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(tr.Events))
	}
	wantOrder := []EventType{EvDelete, EvInsert, EvInsert, EvDelete}
	for i, ev := range tr.Events {
		if ev.Type != wantOrder[i] {
			t.Errorf("position %d: %v, want %v", i, ev.Type, wantOrder[i])
		}
	}
	if len(tr.Rings) != 2 {
		t.Fatalf("got %d rings, want 2", len(tr.Rings))
	}
	if tr.Rings[0].Label != "a" || tr.Rings[1].Label != "b" {
		t.Errorf("ring labels %q/%q, want a/b", tr.Rings[0].Label, tr.Rings[1].Label)
	}
}

func TestSharedRingIsSingletonPerLabel(t *testing.T) {
	rec := New()
	if rec.SharedRing("rcu") != rec.SharedRing("rcu") {
		t.Error("SharedRing returned different rings for the same label")
	}
	if rec.SharedRing("rcu") == rec.SharedRing("reclaim") {
		t.Error("SharedRing returned the same ring for different labels")
	}
}

// TestConcurrentRecordAndSnapshot hammers a shared ring from several
// writers while snapshotting continuously; under -race this is the
// proof that the flight recorder can run against a live workload.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	rec := New(WithRingSize(64))
	g := rec.SharedRing("shared")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g.Record(EvSync, time.Now(), time.Duration(i), uint64(w), uint64(i), 0)
			}
		}(w)
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		tr := rec.Snapshot()
		for _, ev := range tr.Events {
			if ev.Type != EvSync {
				t.Errorf("torn event surfaced: %+v", ev)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestWriteJSONRoundTrips(t *testing.T) {
	rec := New(WithRingSize(16))
	g := rec.NewRing("reader-1")
	g.Record(EvDelete, time.Now(), 5*time.Microsecond, 2, 1, 0)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		Rings []struct {
			Label string `json:"label"`
		} `json:"rings"`
		Events []struct {
			Type string `json:"type"`
			A    uint64 `json:"a"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(tr.Events) != 1 || tr.Events[0].Type != "delete" || tr.Events[0].A != 2 {
		t.Errorf("unexpected events: %+v", tr.Events)
	}
	if len(tr.Rings) != 1 || tr.Rings[0].Label != "reader-1" {
		t.Errorf("unexpected rings: %+v", tr.Rings)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	rec := New(WithRingSize(16))
	ops := rec.NewRing("reader-1")
	now := time.Now()
	ops.Record(EvInsert, now, 3*time.Microsecond, 1, 0, 0)
	ops.Record(EvValidateFail, now.Add(time.Microsecond), 0, SiteValidateInsert, 0, 0)
	st := rec.SyncTracer("rcu")
	span := st.SyncBegin()
	span.ReaderWait(7, now, 2*time.Microsecond, 5)
	span.End(5, 0)

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TID   uint32         `json:"tid"`
			Dur   *float64       `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	for _, ev := range ct.TraceEvents {
		byName[ev.Name+"/"+ev.Phase]++
		switch ev.Name {
		case "insert":
			if ev.Phase != "X" || ev.Dur == nil {
				t.Errorf("insert should be a complete event with dur: %+v", ev)
			}
		case "validate-fail":
			if ev.Phase != "i" {
				t.Errorf("validate-fail should be an instant: %+v", ev)
			}
			if ev.Args["site"] != "validate-insert" {
				t.Errorf("validate-fail args: %+v", ev.Args)
			}
		case "reader-wait":
			if got := ev.Args["reader"].(float64); got != 7 {
				t.Errorf("reader-wait attributed to reader %v, want 7", got)
			}
		}
	}
	// Two thread_name metadata events (ops ring + rcu ring) and the four
	// recorded events.
	if byName["thread_name/M"] != 2 {
		t.Errorf("thread_name metadata events: %d, want 2", byName["thread_name/M"])
	}
	for _, want := range []string{"insert/X", "validate-fail/i", "synchronize/X", "reader-wait/X"} {
		if byName[want] != 1 {
			t.Errorf("missing chrome event %s (have %v)", want, byName)
		}
	}
}

func TestSyncTracerGPCorrelation(t *testing.T) {
	rec := New()
	st := rec.SyncTracer("rcu")
	s1 := st.SyncBegin()
	s1.End(0, 0)
	s2 := st.SyncBegin()
	s2.ReaderWait(3, time.Now(), time.Microsecond, 10)
	s2.End(10, 1)
	if s1.GP() == s2.GP() {
		t.Fatal("grace periods share an id")
	}
	tr := rec.Snapshot()
	var syncs, waits int
	for _, ev := range tr.Events {
		switch ev.Type {
		case EvSync:
			syncs++
		case EvReaderWait:
			waits++
			if ev.A != s2.GP() || ev.B != 3 {
				t.Errorf("reader wait gp=%d reader=%d, want gp=%d reader=3", ev.A, ev.B, s2.GP())
			}
		}
	}
	if syncs != 2 || waits != 1 {
		t.Errorf("got %d syncs, %d reader waits; want 2, 1", syncs, waits)
	}
}

func TestEventTypeNames(t *testing.T) {
	for ty := EvNone; ty < numEventTypes; ty++ {
		if ty.String() == "" {
			t.Errorf("event type %d has no name", ty)
		}
	}
	if EventType(200).String() != "event-200" {
		t.Errorf("unknown type formatting: %s", EventType(200).String())
	}
	if SiteName(SiteDeleteSucc) != "delete-succ" || SiteName(99) != "site-99" {
		t.Error("site naming broken")
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	rec := New(WithRingSize(64))
	g := rec.NewRing("alloc")
	now := time.Now()
	if avg := testing.AllocsPerRun(1000, func() {
		g.Record(EvContains, now, time.Microsecond, 1, 0, 0)
	}); avg != 0 {
		t.Errorf("Record allocates %.1f objects per call, want 0", avg)
	}
}
