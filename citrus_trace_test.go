package citrus

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"github.com/go-citrus/citrus/citrustrace"
)

// TestEnableTracingEndToEnd drives the public tracing API: enable,
// run a mixed workload, dump, and cross-check the trace against the
// tree's own counters.
func TestEnableTracingEndToEnd(t *testing.T) {
	tree := New[int, string]()
	if rec := tree.TraceRecorder(); rec != nil {
		t.Fatal("tracing enabled by default")
	}
	if tr := tree.DumpTrace(); len(tr.Events) != 0 || len(tr.Rings) != 0 {
		t.Fatal("DumpTrace with tracing disabled should be empty")
	}

	rec := tree.EnableTracing()
	if tree.TraceRecorder() != rec {
		t.Fatal("TraceRecorder does not report the recorder EnableTracing returned")
	}

	h := tree.NewHandle()
	defer h.Close()
	// Scrambled insertion order so interior nodes have two children and
	// deletes exercise the successor-relocation (grace-period) path.
	const n = 64
	for i := 0; i < n; i++ {
		h.Insert(i*37%n, "v")
	}
	for k := 0; k < n; k++ {
		h.Contains(k)
	}
	// Delete in the same scrambled order (ascending would always remove
	// the tree minimum, which never has two children).
	for i := 0; i < n; i++ {
		h.Delete(i * 37 % n)
	}

	tr := tree.DumpTrace()
	counts := map[citrustrace.EventType]int{}
	for _, ev := range tr.Events {
		counts[ev.Type]++
	}
	st := tree.Stats()
	// The default ring (4096 slots) comfortably holds this workload, so
	// event counts must match the counters exactly.
	if got := counts[citrustrace.EvInsert]; int64(got) != st.Inserts {
		t.Errorf("EvInsert = %d, want %d (Stats.Inserts)", got, st.Inserts)
	}
	if got := counts[citrustrace.EvContains]; int64(got) != st.Contains {
		t.Errorf("EvContains = %d, want %d (Stats.Contains)", got, st.Contains)
	}
	if got := counts[citrustrace.EvDelete]; int64(got) != st.Deletes+st.DeleteMisses {
		t.Errorf("EvDelete = %d, want %d", got, st.Deletes+st.DeleteMisses)
	}
	// Every two-child delete pays one grace period: the updater-side
	// wait span and the domain-side synchronize span must both agree
	// with the TwoChildDeletes counter.
	if got := counts[citrustrace.EvSyncWait]; int64(got) != st.TwoChildDeletes {
		t.Errorf("EvSyncWait = %d, want %d (Stats.TwoChildDeletes)", got, st.TwoChildDeletes)
	}
	if got := counts[citrustrace.EvSync]; int64(got) != st.TwoChildDeletes {
		t.Errorf("EvSync = %d, want %d (Stats.TwoChildDeletes)", got, st.TwoChildDeletes)
	}
	if st.TwoChildDeletes == 0 {
		t.Error("workload produced no two-child deletes; grace-period tracing untested")
	}

	tree.DisableTracing()
	if tree.TraceRecorder() != nil {
		t.Fatal("TraceRecorder non-nil after DisableTracing")
	}
	// The recorder outlives detachment: a final snapshot still works.
	if got := len(rec.Snapshot().Events); got != len(tr.Events) {
		t.Errorf("post-disable snapshot has %d events, want %d", got, len(tr.Events))
	}
}

// TestDumpTraceChromeFormat writes the Chrome trace_event dump through
// the public API and checks that it parses and that grace-period waits
// name the reader handle that was waited on.
func TestDumpTraceChromeFormat(t *testing.T) {
	tree := New[int, int]()
	tree.EnableTracing()
	h := tree.NewHandle()
	defer h.Close()
	for i := 0; i < 32; i++ {
		h.Insert(i*21%32, i) // scrambled: interior nodes get two children
	}
	for i := 0; i < 32; i++ {
		h.Delete(i * 21 % 32)
	}
	var buf bytes.Buffer
	if err := tree.DumpTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("chrome dump is not valid JSON: %v", err)
	}
	var readerRing string
	var syncs int
	for _, ev := range ct.TraceEvents {
		switch {
		case ev.Name == "thread_name" && ev.Phase == "M":
			if name, _ := ev.Args["name"].(string); len(name) > 7 && name[:7] == "reader-" {
				readerRing = name
			}
		case ev.Name == "synchronize":
			syncs++
		}
	}
	if readerRing == "" {
		t.Error("no reader-<id> ring in the chrome dump")
	}
	if syncs == 0 {
		t.Error("no synchronize spans in the chrome dump")
	}
}

// TestTracingToggleRace hammers EnableTracing/DisableTracing/DumpTrace
// against a live workload through the public API; run with -race.
func TestTracingToggleRace(t *testing.T) {
	tree := New[int, int]()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tree.NewHandle()
			defer h.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (w*101 + i) % 128
				switch i % 3 {
				case 0:
					h.Insert(k, k)
				case 1:
					h.Delete(k)
				default:
					h.Contains(k)
				}
			}
		}(w)
	}
	deadline := time.Now().Add(400 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		switch i % 4 {
		case 0:
			tree.EnableTracing(citrustrace.WithRingSize(256))
		case 1, 2:
			tree.DumpTrace()
		case 3:
			tree.DisableTracing()
		}
	}
	close(stop)
	wg.Wait()
	tree.DisableTracing()
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after traced churn: %v", err)
	}
}
