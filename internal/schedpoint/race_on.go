//go:build race

package schedpoint

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
