//go:build !race

package schedpoint

// raceEnabled reports whether the race detector instruments this build;
// the disabled-path overhead pin relaxes its bound under -race, where
// every atomic load pays the detector's bookkeeping.
const raceEnabled = false
