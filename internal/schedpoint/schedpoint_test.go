package schedpoint

import (
	"sync"
	"testing"
	"time"
)

// TestDisabledHitAllocatesNothing pins half of the disabled-path
// contract: with no policy enabled, Hit allocates nothing at any point.
func TestDisabledHitAllocatesNothing(t *testing.T) {
	Disable()
	if avg := testing.AllocsPerRun(1000, func() {
		for pt := Point(0); pt < NumPoints; pt++ {
			Hit(pt)
		}
	}); avg != 0 {
		t.Errorf("disabled Hit allocates %.2f objects per sweep, want 0", avg)
	}
}

// TestDisabledHitIsBranchCheap pins the other half: the disabled path
// is one atomic load plus a branch. The bound is deliberately loose —
// two orders of magnitude above the expected ~1ns — so it fails only if
// someone puts real work (a map lookup, a lock, a time read) ahead of
// the nil check, not on a slow CI machine.
func TestDisabledHitIsBranchCheap(t *testing.T) {
	Disable()
	const iters = 1_000_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		Hit(CoreReadCS)
	}
	perOp := time.Since(start) / iters
	bound := 150 * time.Nanosecond
	if raceEnabled {
		bound = 1500 * time.Nanosecond // the detector instruments the load
	}
	if perOp > bound {
		t.Errorf("disabled Hit costs %v/op, want ≤ %v", perOp, bound)
	}
}

func BenchmarkDisabledHit(b *testing.B) {
	Disable()
	for i := 0; i < b.N; i++ {
		Hit(CoreReadCS)
	}
}

func BenchmarkEnabledHitNopOnly(b *testing.B) {
	p := NewPolicy(1)
	for pt := Point(0); pt < NumPoints; pt++ {
		p.SetWeights(pt, Weights{}) // always nop: isolates dispatch cost
	}
	Enable(p)
	defer Disable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hit(CoreReadCS)
	}
}

// TestDecisionsDeterministicPerSeed: the action chosen for the n-th hit
// of a point is a pure function of (seed, point, n).
func TestDecisionsDeterministicPerSeed(t *testing.T) {
	w := Weights{Gosched: 3000, Spin: 2000, Sleep: 1000}
	seq := func(seed uint64, pt Point) []act {
		out := make([]act, 256)
		for i := range out {
			out[i] = action(splitmix64(seed^uint64(pt)<<56^uint64(i+1)), w)
		}
		return out
	}
	a := seq(42, CoreSearchToLock)
	b := seq(42, CoreSearchToLock)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(43, CoreSearchToLock)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("seeds 42 and 43 produced identical 256-decision sequences")
	}
}

// TestActionRespectsWeights: degenerate weight tables force every draw
// into the expected action.
func TestActionRespectsWeights(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    Weights
		want act
	}{
		{"all nop", Weights{}, actNop},
		{"all gosched", Weights{Gosched: weightScale}, actGosched},
		{"all spin", Weights{Spin: weightScale}, actSpin},
		{"all sleep", Weights{Sleep: weightScale}, actSleep},
	} {
		for i := uint64(0); i < 1000; i++ {
			if got := action(splitmix64(i), tc.w); got != tc.want {
				t.Fatalf("%s: draw %d classified %v, want %v", tc.name, i, got, tc.want)
			}
		}
	}
}

// TestHitCountsPerPoint: every strike is counted under its own point,
// and Hits is keyed by the documented names.
func TestHitCountsPerPoint(t *testing.T) {
	p := NewPolicy(7)
	for pt := Point(0); pt < NumPoints; pt++ {
		p.SetWeights(pt, Weights{}) // count without perturbing
	}
	Enable(p)
	defer Disable()
	for i := 0; i < 5; i++ {
		Hit(CoreSearchToLock)
	}
	Hit(RCUSyncScan)
	hits := p.Hits()
	if hits[CoreSearchToLock.String()] != 5 {
		t.Errorf("core.search.lock hits = %d, want 5", hits[CoreSearchToLock.String()])
	}
	if hits[RCUSyncScan.String()] != 1 {
		t.Errorf("rcu.sync.scan hits = %d, want 1", hits[RCUSyncScan.String()])
	}
	if got := p.TotalHits(); got != 6 {
		t.Errorf("TotalHits = %d, want 6", got)
	}
	if _, ok := hits["core.mark.grace"]; !ok {
		t.Error("Hits map is missing the documented point name core.mark.grace")
	}
}

// TestEnableDisableUnderFire: toggling the policy while goroutines
// hammer Hit is safe (exercised under -race in CI).
func TestEnableDisableUnderFire(t *testing.T) {
	p := NewPolicy(3)
	p.SetMaxSleep(10 * time.Microsecond)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					Hit(CoreReadCS)
					Hit(RCUReadLockPublish)
				}
			}
		}()
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		if i%2 == 0 {
			Enable(p)
		} else {
			Disable()
		}
	}
	close(stop)
	wg.Wait()
	// The toggling above opens only nanosecond-wide enabled windows, so
	// whether any worker hit inside one is scheduling luck. Land one hit
	// in a window we control to make the assertion deterministic.
	Enable(p)
	Hit(CoreReadCS)
	Disable()
	if p.TotalHits() == 0 {
		t.Error("no hits recorded while the policy was enabled")
	}
}

func TestPointNames(t *testing.T) {
	seen := map[string]bool{}
	for pt := Point(0); pt < NumPoints; pt++ {
		n := pt.String()
		if n == "" || n == "schedpoint.invalid" {
			t.Fatalf("point %d has no name", pt)
		}
		if seen[n] {
			t.Fatalf("duplicate point name %q", n)
		}
		seen[n] = true
	}
	if NumPoints.String() != "schedpoint.invalid" {
		t.Error("out-of-range point did not stringify as invalid")
	}
}
