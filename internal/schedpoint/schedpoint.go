// Package schedpoint provides named schedule-injection points compiled
// into the hot paths of the rcu package and the Citrus core — the
// rcutorture idea applied to this repository. Each point marks one of
// the interleaving windows the paper's §4 proof obligations are about
// (between a search and its lock, between marking a node and its grace
// period, between an RCU reader's counter read and its flag publish,
// …). Under a torture run, a seeded policy decides at every hit whether
// to do nothing, yield the processor, spin, or sleep briefly, which
// drives the scheduler into the rare interleavings those windows admit.
//
// When no policy is enabled — the production state — Hit is one atomic
// pointer load and one predictable branch, allocates nothing, and takes
// no locks, the same contract as the tracing layer's disabled path
// (there is a test pinning both properties).
//
// Determinism: a policy's decision for the n-th hit of a point is a
// pure function of (seed, point, n). Replaying a run with the same seed
// replays the same decision sequence per point even though goroutine
// interleaving differs, which is what lets cmd/citrustorture reproduce
// failures from a printed seed.
package schedpoint

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Point names one injection site. The sites are chosen to attack
// specific lemmas of the paper; docs/VERIFICATION.md maps each point to
// the proof obligation it stresses.
type Point uint8

// The injection points compiled into the library.
const (
	// RCUReadLockPublish sits inside ReadLock between reading the
	// grace-period counter/state and publishing the reader's
	// critical-section word — the classic URCU race window.
	RCUReadLockPublish Point = iota

	// RCUSyncScan sits inside Synchronize's per-reader scan, between
	// readers — stretching the window in which a scanned reader's state
	// is stale while later readers are still being examined.
	RCUSyncScan

	// RCUSyncFlip sits at the start of Synchronize, before the
	// grace-period counter flip (classic flavor) or the snapshot
	// (scalable flavor).
	RCUSyncFlip

	// CoreSearchToLock sits between a search returning (prev, tag,
	// curr) and the operation locking prev — the window tag validation
	// (Lemma 3 / Figure 5) exists for.
	CoreSearchToLock

	// CoreValidateToLink sits between a successful validation and the
	// link store, stretching lock hold times and the windows of
	// concurrent operations that will fail validation against it.
	CoreValidateToLink

	// CoreMarkToGrace sits between marking the deleted node (and
	// publishing the successor copy) and the grace period of the
	// paper's line 74 — the Figure 4 window.
	CoreMarkToGrace

	// CoreBeforeReclaim sits on the reclaimer goroutine immediately
	// before a retired node is reclaimed (poisoned or pooled), after
	// its grace period elapsed.
	CoreBeforeReclaim

	// CoreReadCS sits inside the read-side critical section's descent
	// loop, once per visited node — the point that suspends searches
	// mid-tree, where Lemma 2 and the Figure 4 guarantee are live.
	CoreReadCS

	// RCUGPElect sits in the scalable domain's grace-period combining
	// path, between a Synchronize call snapshotting the sequence target
	// it needs and the leader-election loop — the window in which a
	// shared grace period could, if the protocol were wrong, be one
	// that never snapshotted this call's pre-existing readers.
	RCUGPElect

	// CoreScanCS sits inside a range scan's visit loop, once per visited
	// node — like CoreReadCS, but scans hold their critical section
	// across many nodes, so suspending here stretches a whole-traversal
	// grace-period pin rather than a single descent.
	CoreScanCS

	// NumPoints is the number of injection points.
	NumPoints
)

var pointNames = [NumPoints]string{
	RCUReadLockPublish: "rcu.readlock.publish",
	RCUSyncScan:        "rcu.sync.scan",
	RCUSyncFlip:        "rcu.sync.flip",
	CoreSearchToLock:   "core.search.lock",
	CoreValidateToLink: "core.validate.link",
	CoreMarkToGrace:    "core.mark.grace",
	CoreBeforeReclaim:  "core.reclaim",
	CoreReadCS:         "core.read.cs",
	RCUGPElect:         "rcu.gp.elect",
	CoreScanCS:         "core.scan.cs",
}

func (p Point) String() string {
	if p < NumPoints {
		return pointNames[p]
	}
	return "schedpoint.invalid"
}

// Weights is a point's action distribution in basis points (out of
// 10000); the remainder is "do nothing". The zero value never perturbs.
type Weights struct {
	Gosched uint32 // yield the processor
	Spin    uint32 // busy-spin spinIters iterations
	Sleep   uint32 // sleep a pseudo-random duration up to MaxSleep
}

const weightScale = 10000

// counter is a per-point hit counter on its own cache line, so torture
// runs don't serialize unrelated points through false sharing.
type counter struct {
	n atomic.Uint64
	_ [120]byte
}

// Policy is a seeded injection policy: per-point action weights plus
// the spin/sleep magnitudes. A Policy must be fully configured before
// Enable; after that it is only read (hit counters aside), so one
// policy may serve any number of goroutines.
type Policy struct {
	seed      uint64
	spinIters uint32
	maxSleep  time.Duration
	weights   [NumPoints]Weights
	hits      [NumPoints]counter
}

// DefaultMaxSleep is the default cap on injected sleeps. Long enough to
// let a whole delete + grace period + reclaim pass under a suspended
// reader, short enough to keep torture throughput in the tens of
// thousands of operations per second.
const DefaultMaxSleep = 200 * time.Microsecond

// NewPolicy returns a policy with the default torture weights: every
// point yields a few percent of the time, spins occasionally, and
// sleeps rarely — rare enough to keep throughput, often enough that a
// multi-second run suspends thousands of operations inside each window.
func NewPolicy(seed uint64) *Policy {
	p := &Policy{seed: seed, spinIters: 2000, maxSleep: DefaultMaxSleep}
	for pt := Point(0); pt < NumPoints; pt++ {
		p.weights[pt] = Weights{Gosched: 2000, Spin: 400, Sleep: 100}
	}
	// The reader-side and reclaim-side points carry more sleep weight:
	// suspending a reader mid-descent (or delaying a reclaim) is what
	// makes the reclamation oracle's windows observable.
	p.weights[CoreReadCS].Sleep = 300
	p.weights[CoreBeforeReclaim].Sleep = 300
	p.weights[CoreSearchToLock].Sleep = 300
	// Stretching the election window is what lets a mis-combined grace
	// period (one that never snapshotted the waiter's readers) actually
	// release a waiter while a stale reader is still mid-descent.
	p.weights[RCUGPElect].Sleep = 300
	return p
}

// Seed reports the policy's seed.
func (p *Policy) Seed() uint64 { return p.seed }

// SetWeights overrides one point's action distribution. Must be called
// before Enable.
func (p *Policy) SetWeights(pt Point, w Weights) { p.weights[pt] = w }

// SetMaxSleep caps injected sleeps. Must be called before Enable.
func (p *Policy) SetMaxSleep(d time.Duration) {
	if d > 0 {
		p.maxSleep = d
	}
}

// Hits returns the per-point hit counts, keyed by point name.
func (p *Policy) Hits() map[string]uint64 {
	m := make(map[string]uint64, NumPoints)
	for pt := Point(0); pt < NumPoints; pt++ {
		m[pt.String()] = p.hits[pt].n.Load()
	}
	return m
}

// TotalHits reports the sum of all per-point hit counts.
func (p *Policy) TotalHits() uint64 {
	var t uint64
	for pt := Point(0); pt < NumPoints; pt++ {
		t += p.hits[pt].n.Load()
	}
	return t
}

// active is the process-wide enabled policy; nil means injection is
// off. One pointer for the whole process keeps the disabled check to a
// single load of an always-shared cache line.
var active atomic.Pointer[Policy]

// Enable turns injection on with the given policy. Torture harnesses
// own this switch; enabling injection in production makes no sense.
func Enable(p *Policy) { active.Store(p) }

// Disable turns injection off. Hits already in flight complete their
// current action.
func Disable() { active.Store(nil) }

// Enabled reports whether a policy is currently enabled.
func Enabled() bool { return active.Load() != nil }

// Hit marks one arrival at an injection point. With injection disabled
// this is one atomic load and one branch; it never allocates.
func Hit(pt Point) {
	if p := active.Load(); p != nil {
		p.strike(pt)
	}
}

// spinSink absorbs spin-loop results so the loop cannot be optimized
// away.
var spinSink atomic.Uint64

// strike is the slow path: draw a deterministic decision for this
// point's n-th hit and perform it.
func (p *Policy) strike(pt Point) {
	idx := p.hits[pt].n.Add(1)
	r := splitmix64(p.seed ^ uint64(pt)<<56 ^ idx)
	w := &p.weights[pt]
	switch a := action(r, *w); a {
	case actGosched:
		runtime.Gosched()
	case actSpin:
		x := r
		for i := uint32(0); i < p.spinIters; i++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
		spinSink.Store(x)
	case actSleep:
		// 1ns..maxSleep, biased uniform from the draw's high bits.
		time.Sleep(time.Duration(1 + (r>>16)%uint64(p.maxSleep)))
	}
}

type act uint8

const (
	actNop act = iota
	actGosched
	actSpin
	actSleep
)

// action classifies a raw draw against the weights; split out so tests
// can pin the decision function without performing the actions.
func action(r uint64, w Weights) act {
	roll := uint32(r % weightScale)
	switch {
	case roll < w.Gosched:
		return actGosched
	case roll < w.Gosched+w.Spin:
		return actSpin
	case roll < w.Gosched+w.Spin+w.Sleep:
		return actSleep
	default:
		return actNop
	}
}

// splitmix64 is the SplitMix64 mixer — one multiply-xorshift cascade,
// enough to decorrelate (seed, point, index) triples.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
