package avl

import "testing"

// rootKey returns the key of the real root (below the holder).
func rootKey(tr *Tree[int, int]) int {
	return tr.rootHolder.child[dirRight].Load().key
}

// TestSingleThreadedRotations drives each of the four classic AVL
// imbalance shapes and checks that the relaxed-balance repair performed
// the right rotation (root key, exact heights — exact because there is
// no concurrency to leave staleness behind).
func TestSingleThreadedRotations(t *testing.T) {
	cases := []struct {
		name   string
		keys   []int
		root   int
		leaves [2]int
	}{
		{"RR (single left rotation)", []int{10, 20, 30}, 20, [2]int{10, 30}},
		{"LL (single right rotation)", []int{30, 20, 10}, 20, [2]int{10, 30}},
		{"LR (double rotation)", []int{30, 10, 20}, 20, [2]int{10, 30}},
		{"RL (double rotation)", []int{10, 30, 20}, 20, [2]int{10, 30}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := New[int, int]()
			h := tr.NewHandle()
			defer h.Close()
			for _, k := range tc.keys {
				if !h.Insert(k, k) {
					t.Fatalf("Insert(%d) = false", k)
				}
			}
			root := tr.rootHolder.child[dirRight].Load()
			if root.key != tc.root {
				t.Fatalf("root = %d, want %d", root.key, tc.root)
			}
			if got := root.height.Load(); got != 2 {
				t.Fatalf("root height = %d, want 2", got)
			}
			l := root.child[dirLeft].Load()
			r := root.child[dirRight].Load()
			if l == nil || r == nil || l.key != tc.leaves[0] || r.key != tc.leaves[1] {
				t.Fatalf("children = (%v, %v), want %v", l, r, tc.leaves)
			}
			if l.height.Load() != 1 || r.height.Load() != 1 {
				t.Fatal("leaf heights wrong")
			}
			if l.parent.Load() != root || r.parent.Load() != root {
				t.Fatal("parent pointers not rewired by rotation")
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRotationPreservesValuesAndMembership runs larger sorted inserts
// (continuous rotations) and verifies every pair afterwards.
func TestRotationPreservesValuesAndMembership(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	const n = 2048
	for i := 0; i < n; i++ {
		if !h.Insert(i, i*7) {
			t.Fatalf("Insert(%d) = false", i)
		}
	}
	for i := 0; i < n; i++ {
		if v, ok := h.Contains(i); !ok || v != i*7 {
			t.Fatalf("Contains(%d) = (%d, %v)", i, v, ok)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUnlinkedNodeVersionTerminal: once a node is unlinked its version
// must stay ovlUnlinked forever (searches and validators key off it).
func TestUnlinkedNodeVersionTerminal(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	h.Insert(10, 10)
	h.Insert(5, 5)
	victim := tr.rootHolder.child[dirRight].Load().child[dirLeft].Load()
	if victim.key != 5 {
		t.Fatalf("layout: %d", victim.key)
	}
	if !h.Delete(5) {
		t.Fatal("Delete(5) = false")
	}
	if victim.version.Load()&ovlUnlinked == 0 {
		t.Fatal("unlinked leaf does not carry the unlinked version")
	}
	// Reinserting the key must allocate a new node, not resurrect.
	h.Insert(5, 55)
	again := tr.rootHolder.child[dirRight].Load().child[dirLeft].Load()
	if again == victim {
		t.Fatal("unlinked node resurrected")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
