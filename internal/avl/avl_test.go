package avl

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	tr := New[int, string]()
	h := tr.NewHandle()
	defer h.Close()
	if _, ok := h.Contains(2); ok {
		t.Fatal("Contains on empty tree = true")
	}
	if !h.Insert(2, "two") || h.Insert(2, "dos") {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := h.Contains(2); !ok || v != "two" {
		t.Fatalf("Contains(2) = (%q, %v)", v, ok)
	}
	if !h.Delete(2) || h.Delete(2) {
		t.Fatal("Delete semantics broken")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRoutingNodeLifecycle pins the partially external behaviour down:
// deleting a node with two children leaves it in place as a routing node;
// a later insert of the same key revives it in place; removing its
// children lets it be unlinked.
func TestRoutingNodeLifecycle(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	h.Insert(50, 1)
	h.Insert(25, 2)
	h.Insert(75, 3)

	root := tr.rootHolder.child[dirRight].Load()
	if root.key != 50 {
		t.Fatalf("unexpected layout, root key %d", root.key)
	}
	if !h.Delete(50) {
		t.Fatal("Delete(50) = false")
	}
	// 50 has two children → it must still be physically present, as a
	// routing node.
	if got := tr.rootHolder.child[dirRight].Load(); got != root {
		t.Fatal("two-child delete restructured instead of leaving a routing node")
	}
	if root.value.Load() != nil {
		t.Fatal("routing node still carries a value")
	}
	if _, ok := h.Contains(50); ok {
		t.Fatal("routing node's key reported present")
	}

	// Reviving the key must reuse the routing node in place.
	if !h.Insert(50, 9) {
		t.Fatal("revive Insert(50) = false")
	}
	if got := tr.rootHolder.child[dirRight].Load(); got != root {
		t.Fatal("revival allocated a new node instead of reusing the router")
	}
	if v, ok := h.Contains(50); !ok || v != 9 {
		t.Fatalf("Contains(50) = (%d, %v) after revival", v, ok)
	}

	// Delete it again, then remove a child: the disposable router must be
	// unlinked by the child removal's repair walk.
	h.Delete(50)
	h.Delete(25)
	if got := tr.rootHolder.child[dirRight].Load(); got == root {
		t.Fatal("disposable routing node was not unlinked")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestVersionChangesOnRotation: a rotation must advance the pivot's OVL
// so optimistic readers that validated against the old version retry.
func TestVersionChangesOnRotation(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	h.Insert(10, 0)
	pivot := tr.rootHolder.child[dirRight].Load()
	before := pivot.version.Load()
	// Ascending inserts force a left rotation at the root pivot.
	h.Insert(20, 0)
	h.Insert(30, 0)
	after := pivot.version.Load()
	if after == before {
		t.Fatalf("pivot version unchanged by rotation (%#x)", after)
	}
	if after&ovlShrinking != 0 {
		t.Fatalf("pivot left with shrinking bit set (%#x)", after)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHeightStaysLogarithmic: relaxed balance still keeps sorted inserts
// from degenerating (this is where the unbalanced Citrus tree goes to
// O(n) depth).
func TestHeightStaysLogarithmic(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	const n = 8192
	for i := 0; i < n; i++ {
		h.Insert(i, i)
	}
	var depth func(x *node[int, int]) int
	depth = func(x *node[int, int]) int {
		if x == nil {
			return 0
		}
		return 1 + max(depth(x.child[dirLeft].Load()), depth(x.child[dirRight].Load()))
	}
	// Strict AVL gives ≈1.44·log2(n) ≈ 19; relaxed balance with a single
	// writer repairs everything, so allow a small slack over that.
	if got := depth(tr.rootHolder.child[dirRight].Load()); got > 26 {
		t.Fatalf("depth %d after %d sorted inserts; balancing is not working", got, n)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOptimisticReadersDuringRotations runs readers on permanently
// present keys while a writer forces continuous rebalancing in their
// vicinity; the OVL protocol must never let a reader miss one.
func TestOptimisticReadersDuringRotations(t *testing.T) {
	tr := New[int, int]()
	w := tr.NewHandle()
	// Permanent keys spread widely; churn keys interleave.
	const n = 1024
	for k := 0; k < n; k += 2 {
		w.Insert(k, k)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	misses := make(chan int, 16)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(n/2) * 2
				if v, ok := h.Contains(k); !ok || v != k {
					select {
					case misses <- k:
					default:
					}
					return
				}
			}
		}(int64(r))
	}

	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < 30000; i++ {
		k := rng.Intn(n/2)*2 + 1
		if rng.Intn(2) == 0 {
			w.Insert(k, k)
		} else {
			w.Delete(k)
		}
	}
	close(stop)
	wg.Wait()
	w.Close()
	select {
	case k := <-misses:
		t.Fatalf("reader missed permanently present key %d", k)
	default:
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyTreeReinstall: draining the tree empties the root holder; a
// subsequent insert must reinstall a root.
func TestEmptyTreeReinstall(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	h.Insert(1, 1)
	h.Delete(1)
	if tr.rootHolder.child[dirRight].Load() != nil {
		t.Fatal("root not cleared after draining")
	}
	if !h.Insert(2, 2) {
		t.Fatal("Insert after drain = false")
	}
	if v, ok := h.Contains(2); !ok || v != 2 {
		t.Fatalf("Contains(2) = (%d, %v)", v, ok)
	}
}
