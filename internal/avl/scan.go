package avl

import "cmp"

// Range scans — iterated optimistic ceiling searches.
//
// The tree has no stable iteration order under concurrent rotations, so
// a scan advances a cursor: each step is an independent ceiling search
// (smallest key strictly above the cursor) that follows exactly the
// hand-over-hand OVL validation protocol of Contains — a search that
// slept through a shrink detects the version change and retries from a
// validated ancestor. Routing nodes (value == nil, the partially
// external design's logically deleted keys) are skipped by advancing
// the cursor past them.
//
// Weak consistency: every emitted pair was present at the instant its
// ceiling search linearized, emissions ascend strictly, and a key
// present for the scan's whole duration cannot be missed — unlike
// Citrus, this tree never relocates a key (two-child deletes leave a
// routing node in place), so a persistent key is found the moment the
// cursor passes below it. Cost: O(log n) per emitted pair.

// RangeScan calls fn on pairs with lo ≤ key < hi in ascending key
// order, stopping early when fn returns false. Weakly consistent.
func (h *Handle[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	bound, strict := &lo, false
	for {
		k, vp, ok := h.t.ceiling(bound, strict)
		if !ok || cmp.Compare(k, hi) >= 0 {
			return
		}
		if vp != nil { // routing nodes hold no value: advance past them
			if !fn(k, *vp) {
				return
			}
		}
		kk := k
		bound, strict = &kk, true
	}
}

// Scan calls fn on every pair in ascending key order, stopping early
// when fn returns false. Weakly consistent.
func (h *Handle[K, V]) Scan(fn func(key K, value V) bool) {
	var bound *K
	strict := false
	for {
		k, vp, ok := h.t.ceiling(bound, strict)
		if !ok {
			return
		}
		if vp != nil {
			if !fn(k, *vp) {
				return
			}
		}
		kk := k
		bound, strict = &kk, true
	}
}

// ceiling returns the node pair with the smallest key at (or, when
// strict, strictly above) bound; nil bound means the tree's minimum.
// The returned value pointer is nil for a routing node. Retries from
// the root whenever the epoch validation protocol demands it.
func (t *Tree[K, V]) ceiling(bound *K, strict bool) (K, *V, bool) {
	var zero K
	for {
		right := t.rootHolder.child[dirRight].Load()
		if right == nil {
			return zero, nil, false
		}
		ovl := right.version.Load()
		if ovl&ovlBusyMask != 0 {
			right.waitUntilShrinkCompleted(ovl)
			continue
		}
		if t.rootHolder.child[dirRight].Load() != right {
			continue
		}
		k, vp, found, st := t.attemptCeiling(bound, strict, right, ovl)
		if st == statusDone {
			return k, vp, found
		}
	}
}

// attemptCeiling searches the subtree rooted at n for the smallest
// qualifying key while n's version stays nodeOVL, mirroring
// attemptGet's validation discipline; statusRetry sends the caller back
// up to a validated ancestor.
func (t *Tree[K, V]) attemptCeiling(bound *K, strict bool, n *node[K, V], nodeOVL uint64) (K, *V, bool, status) {
	var zero K
	for {
		qualifies := true
		if bound != nil {
			c := cmp.Compare(*bound, n.key)
			qualifies = c < 0 || (c == 0 && !strict)
		}
		dir := dirRight
		if qualifies {
			dir = dirLeft // a smaller qualifying key may exist on the left
		}
		child := n.child[dir].Load()
		if child == nil {
			if n.version.Load() != nodeOVL {
				return zero, nil, false, statusRetry
			}
			if qualifies {
				return n.key, n.value.Load(), true, statusDone
			}
			return zero, nil, false, statusDone
		}
		childOVL := child.version.Load()
		if childOVL&ovlBusyMask != 0 {
			child.waitUntilShrinkCompleted(childOVL)
			if n.version.Load() != nodeOVL {
				return zero, nil, false, statusRetry
			}
			continue // re-read the child link
		}
		if child != n.child[dir].Load() {
			if n.version.Load() != nodeOVL {
				return zero, nil, false, statusRetry
			}
			continue
		}
		if n.version.Load() != nodeOVL {
			return zero, nil, false, statusRetry
		}
		k, vp, found, st := t.attemptCeiling(bound, strict, child, childOVL)
		if st == statusDone {
			if found {
				return k, vp, true, statusDone
			}
			if qualifies {
				// Nothing smaller below: n itself is the ceiling.
				return n.key, n.value.Load(), true, statusDone
			}
			return zero, nil, false, statusDone
		}
		if n.version.Load() != nodeOVL {
			return zero, nil, false, statusRetry
		}
	}
}
