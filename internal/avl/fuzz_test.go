package avl

import "testing"

// FuzzOpsAgainstOracle interprets fuzz input as an op script (2 bytes
// per op) run against both the AVL tree and a map oracle, checking every
// return value and the structural invariants at the end. The relaxed
// balancer's repair walk is the main target: the fallback-rotation bug
// found during development (see rebalance.go) is exactly the class this
// catches.
func FuzzOpsAgainstOracle(f *testing.F) {
	f.Add([]byte{0, 10, 0, 20, 0, 30})          // RR rotation
	f.Add([]byte{0, 30, 0, 10, 0, 20, 1, 30})   // LR + delete
	f.Add([]byte{0, 2, 0, 1, 0, 3, 1, 2, 0, 2}) // routing node revival
	drain := make([]byte, 0, 120)
	for k := byte(0); k < 30; k++ {
		drain = append(drain, 0, k)
	}
	for k := byte(0); k < 30; k++ {
		drain = append(drain, 1, k)
	}
	f.Add(drain)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := New[int, int]()
		h := tr.NewHandle()
		defer h.Close()
		oracle := map[int]int{}
		for i := 0; i+1 < len(data); i += 2 {
			k := int(data[i+1] % 48)
			switch data[i] % 3 {
			case 0:
				_, present := oracle[k]
				if h.Insert(k, i) == present {
					t.Fatalf("op %d: Insert(%d) disagreed with oracle (present=%v)", i/2, k, present)
				}
				if !present {
					oracle[k] = i
				}
			case 1:
				_, present := oracle[k]
				if h.Delete(k) != present {
					t.Fatalf("op %d: Delete(%d) disagreed with oracle (present=%v)", i/2, k, present)
				}
				delete(oracle, k)
			default:
				wantV, wantOK := oracle[k]
				gotV, gotOK := h.Contains(k)
				if gotOK != wantOK || (wantOK && gotV != wantV) {
					t.Fatalf("op %d: Contains(%d) = (%d, %v), want (%d, %v)", i/2, k, gotV, gotOK, wantV, wantOK)
				}
			}
		}
		if got, want := tr.Len(), len(oracle); got != want {
			t.Fatalf("Len() = %d, oracle %d", got, want)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
