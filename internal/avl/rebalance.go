package avl

import "cmp"

// Relaxed-balance repair, following the structure of Bronson et al.'s
// reference implementation (SnapTree): after an update changes a subtree
// height or leaves a routing node with at most one child, the updater
// walks toward the root, fixing cached heights, unlinking disposable
// routing nodes, and rotating where the AVL condition broke. All repairs
// take per-node locks only; searches are deflected with the shrinking OVL
// bit for exactly the duration of a rotation's pointer swaps.

// Follow-up conditions computed by nodeCondition.
const (
	conditionNothing   = -1
	conditionUnlink    = -2
	conditionRebalance = -3
	// Any value >= 0 is the replacement height for a stale height field.
)

// nodeCondition classifies what n needs (no locks; callers revalidate).
func nodeCondition[K cmp.Ordered, V any](n *node[K, V]) int32 {
	nL := n.child[dirLeft].Load()
	nR := n.child[dirRight].Load()
	if (nL == nil || nR == nil) && n.value.Load() == nil {
		return conditionUnlink
	}
	hN := n.height.Load()
	hL0, hR0 := height(nL), height(nR)
	hNRepl := 1 + max32(hL0, hR0)
	if bal := hL0 - hR0; bal < -1 || bal > 1 {
		return conditionRebalance
	}
	if hN != hNRepl {
		return hNRepl
	}
	return conditionNothing
}

// fixHeightAndRebalance repairs the tree starting at n and walking toward
// the root until nothing more is required.
func (t *Tree[K, V]) fixHeightAndRebalance(n *node[K, V]) {
	for n != nil && !n.holder {
		condition := nodeCondition(n)
		if condition == conditionNothing || n.version.Load()&ovlUnlinked != 0 {
			return
		}
		var next *node[K, V]
		if condition != conditionUnlink && condition != conditionRebalance {
			n.mu.Lock()
			next = t.fixHeightLocked(n)
			n.mu.Unlock()
		} else {
			nParent := n.parent.Load()
			if nParent == nil {
				return
			}
			nParent.mu.Lock()
			if nParent.version.Load()&ovlUnlinked == 0 && n.parent.Load() == nParent {
				n.mu.Lock()
				next = t.rebalanceLocked(nParent, n)
				n.mu.Unlock()
			} else {
				next = n // holder changed under us; retry this node
			}
			nParent.mu.Unlock()
		}
		if next == nil {
			return
		}
		n = next
	}
}

// fixHeightLocked refreshes n's cached height (n locked). It returns the
// parent if the height changed (repair continues upward), n itself if a
// rotation turned out to be needed, or nil if nothing is left to do.
func (t *Tree[K, V]) fixHeightLocked(n *node[K, V]) *node[K, V] {
	hL := height(n.child[dirLeft].Load())
	hR := height(n.child[dirRight].Load())
	if bal := hL - hR; bal < -1 || bal > 1 {
		return n // needs a rotation instead
	}
	hRepl := 1 + max32(hL, hR)
	if n.height.Load() == hRepl {
		return nil
	}
	n.height.Store(hRepl)
	return n.parent.Load()
}

// rebalanceLocked repairs node n under nParent's and n's locks: unlink a
// disposable routing node, rotate if the AVL condition broke, or just fix
// the height. Returns the next node to repair (or nil).
func (t *Tree[K, V]) rebalanceLocked(nParent, n *node[K, V]) *node[K, V] {
	nL := n.child[dirLeft].Load()
	nR := n.child[dirRight].Load()
	if (nL == nil || nR == nil) && n.value.Load() == nil {
		dir := -1
		switch n {
		case nParent.child[dirLeft].Load():
			dir = dirLeft
		case nParent.child[dirRight].Load():
			dir = dirRight
		}
		if dir == -1 {
			return n // moved; retry
		}
		t.unlinkLocked(nParent, n, dir)
		return nParent
	}
	hN := n.height.Load()
	hL0, hR0 := height(nL), height(nR)
	hNRepl := 1 + max32(hL0, hR0)
	switch {
	case hL0-hR0 > 1:
		return t.rebalanceToRightLocked(nParent, n, nL, hR0)
	case hL0-hR0 < -1:
		return t.rebalanceToLeftLocked(nParent, n, nR, hL0)
	case hNRepl != hN:
		n.height.Store(hNRepl)
		return nParent
	default:
		return nil
	}
}

// rebalanceToRightLocked fixes a left-heavy n (locks held: nParent, n; it
// additionally locks nL, and nLR for a double rotation).
func (t *Tree[K, V]) rebalanceToRightLocked(nParent, n, nL *node[K, V], hR0 int32) *node[K, V] {
	nL.mu.Lock()
	defer nL.mu.Unlock()
	hL := nL.height.Load()
	if hL-hR0 <= 1 {
		return n // already repaired by someone else; re-examine
	}
	nLR := nL.child[dirRight].Load()
	hLL0 := height(nL.child[dirLeft].Load())
	hLR0 := height(nLR)
	if hLL0 >= hLR0 {
		return t.rotateRightLocked(nParent, n, nL, hR0, hLL0, nLR, hLR0)
	}
	// Left-right shape: usually a double rotation, unless nLR's own
	// balance forbids it, in which case nL is rotated left first.
	nLR.mu.Lock()
	defer nLR.mu.Unlock()
	hLR := nLR.height.Load()
	if hLL0 >= hLR {
		return t.rotateRightLocked(nParent, n, nL, hR0, hLL0, nLR, hLR)
	}
	hLRL := height(nLR.child[dirLeft].Load())
	if b := hLL0 - hLRL; b >= -1 && b <= 1 && !((hLL0 == 0 || hLRL == 0) && nL.value.Load() == nil) {
		return t.rotateRightOverLeftLocked(nParent, n, nL, hR0, hLL0, nLR, hLRL)
	}
	return t.rotateLeftLocked(n, nL, nLR, hLL0)
}

// rebalanceToLeftLocked mirrors rebalanceToRightLocked for a right-heavy n.
func (t *Tree[K, V]) rebalanceToLeftLocked(nParent, n, nR *node[K, V], hL0 int32) *node[K, V] {
	nR.mu.Lock()
	defer nR.mu.Unlock()
	hR := nR.height.Load()
	if hL0-hR >= -1 {
		return n
	}
	nRL := nR.child[dirLeft].Load()
	hRL0 := height(nRL)
	hRR0 := height(nR.child[dirRight].Load())
	if hRR0 >= hRL0 {
		return t.rotateLeftTopLocked(nParent, n, nR, hL0, nRL, hRL0, hRR0)
	}
	nRL.mu.Lock()
	defer nRL.mu.Unlock()
	hRL := nRL.height.Load()
	if hRR0 >= hRL {
		return t.rotateLeftTopLocked(nParent, n, nR, hL0, nRL, hRL, hRR0)
	}
	hRLR := height(nRL.child[dirRight].Load())
	if b := hRR0 - hRLR; b >= -1 && b <= 1 && !((hRR0 == 0 || hRLR == 0) && nR.value.Load() == nil) {
		return t.rotateLeftOverRightLocked(nParent, n, nR, hL0, nRL, hRLR, hRR0)
	}
	return t.rotateRightInnerLocked(n, nR, nRL, hRR0)
}

// rotateRightLocked: single right rotation; n moves down-right, nL rises.
// Locks held: nParent, n, nL.
func (t *Tree[K, V]) rotateRightLocked(nParent, n, nL *node[K, V], hR, hLL0 int32, nLR *node[K, V], hLR0 int32) *node[K, V] {
	nodeOVL := n.version.Load()
	n.version.Store(nodeOVL | ovlShrinking)

	n.child[dirLeft].Store(nLR)
	if nLR != nil {
		nLR.parent.Store(n)
	}
	nL.child[dirRight].Store(n)
	n.parent.Store(nL)
	if nParent.child[dirLeft].Load() == n {
		nParent.child[dirLeft].Store(nL)
	} else {
		nParent.child[dirRight].Store(nL)
	}
	nL.parent.Store(nParent)

	hNRepl := 1 + max32(hLR0, hR)
	n.height.Store(hNRepl)
	nL.height.Store(1 + max32(hLL0, hNRepl))

	n.version.Store((nodeOVL + versionStep) &^ ovlShrinking)

	// Follow-up analysis (per SnapTree): n, then nL, then the parent.
	if bal := hLR0 - hR; bal < -1 || bal > 1 {
		return n
	}
	if (nLR == nil || hR == 0) && n.value.Load() == nil {
		return n // n became a disposable routing node
	}
	if bal := hLL0 - hNRepl; bal < -1 || bal > 1 {
		return nL
	}
	if hLL0 == 0 && nL.value.Load() == nil {
		return nL
	}
	return nParent
}

// rotateLeftTopLocked: single left rotation at n; nR rises. Locks held:
// nParent, n, nR.
func (t *Tree[K, V]) rotateLeftTopLocked(nParent, n, nR *node[K, V], hL int32, nRL *node[K, V], hRL0, hRR0 int32) *node[K, V] {
	nodeOVL := n.version.Load()
	n.version.Store(nodeOVL | ovlShrinking)

	n.child[dirRight].Store(nRL)
	if nRL != nil {
		nRL.parent.Store(n)
	}
	nR.child[dirLeft].Store(n)
	n.parent.Store(nR)
	if nParent.child[dirLeft].Load() == n {
		nParent.child[dirLeft].Store(nR)
	} else {
		nParent.child[dirRight].Store(nR)
	}
	nR.parent.Store(nParent)

	hNRepl := 1 + max32(hL, hRL0)
	n.height.Store(hNRepl)
	nR.height.Store(1 + max32(hNRepl, hRR0))

	n.version.Store((nodeOVL + versionStep) &^ ovlShrinking)

	if bal := hRL0 - hL; bal < -1 || bal > 1 {
		return n
	}
	if (nRL == nil || hL == 0) && n.value.Load() == nil {
		return n
	}
	if bal := hRR0 - hNRepl; bal < -1 || bal > 1 {
		return nR
	}
	if hRR0 == 0 && nR.value.Load() == nil {
		return nR
	}
	return nParent
}

// rotateRightOverLeftLocked: double rotation (left-right); nLR rises two
// levels. Locks held: nParent, n, nL, nLR.
func (t *Tree[K, V]) rotateRightOverLeftLocked(nParent, n, nL *node[K, V], hR, hLL0 int32, nLR *node[K, V], hLRL int32) *node[K, V] {
	nLRL := nLR.child[dirLeft].Load()
	nLRR := nLR.child[dirRight].Load()
	hLRR := height(nLRR)

	nodeOVL := n.version.Load()
	leftOVL := nL.version.Load()
	n.version.Store(nodeOVL | ovlShrinking)
	nL.version.Store(leftOVL | ovlShrinking)

	n.child[dirLeft].Store(nLRR)
	if nLRR != nil {
		nLRR.parent.Store(n)
	}
	nL.child[dirRight].Store(nLRL)
	if nLRL != nil {
		nLRL.parent.Store(nL)
	}
	nLR.child[dirLeft].Store(nL)
	nL.parent.Store(nLR)
	nLR.child[dirRight].Store(n)
	n.parent.Store(nLR)
	if nParent.child[dirLeft].Load() == n {
		nParent.child[dirLeft].Store(nLR)
	} else {
		nParent.child[dirRight].Store(nLR)
	}
	nLR.parent.Store(nParent)

	hNRepl := 1 + max32(hLRR, hR)
	n.height.Store(hNRepl)
	hLRepl := 1 + max32(hLL0, hLRL)
	nL.height.Store(hLRepl)
	nLR.height.Store(1 + max32(hNRepl, hLRepl))

	n.version.Store((nodeOVL + versionStep) &^ ovlShrinking)
	nL.version.Store((leftOVL + versionStep) &^ ovlShrinking)

	if bal := hLRR - hR; bal < -1 || bal > 1 {
		return n
	}
	if (nLRR == nil || hR == 0) && n.value.Load() == nil {
		return n
	}
	if bal := hLRepl - hNRepl; bal < -1 || bal > 1 {
		return nLR
	}
	return nParent
}

// rotateLeftOverRightLocked mirrors rotateRightOverLeftLocked (right-left
// double rotation); nRL rises two levels. Locks held: nParent, n, nR, nRL.
func (t *Tree[K, V]) rotateLeftOverRightLocked(nParent, n, nR *node[K, V], hL int32, nRL *node[K, V], hRLR, hRR0 int32) *node[K, V] {
	nRLL := nRL.child[dirLeft].Load()
	nRLR := nRL.child[dirRight].Load()
	hRLL := height(nRLL)

	nodeOVL := n.version.Load()
	rightOVL := nR.version.Load()
	n.version.Store(nodeOVL | ovlShrinking)
	nR.version.Store(rightOVL | ovlShrinking)

	n.child[dirRight].Store(nRLL)
	if nRLL != nil {
		nRLL.parent.Store(n)
	}
	nR.child[dirLeft].Store(nRLR)
	if nRLR != nil {
		nRLR.parent.Store(nR)
	}
	nRL.child[dirRight].Store(nR)
	nR.parent.Store(nRL)
	nRL.child[dirLeft].Store(n)
	n.parent.Store(nRL)
	if nParent.child[dirLeft].Load() == n {
		nParent.child[dirLeft].Store(nRL)
	} else {
		nParent.child[dirRight].Store(nRL)
	}
	nRL.parent.Store(nParent)

	hNRepl := 1 + max32(hL, hRLL)
	n.height.Store(hNRepl)
	hRRepl := 1 + max32(hRLR, hRR0)
	nR.height.Store(hRRepl)
	nRL.height.Store(1 + max32(hNRepl, hRRepl))

	n.version.Store((nodeOVL + versionStep) &^ ovlShrinking)
	nR.version.Store((rightOVL + versionStep) &^ ovlShrinking)

	if bal := hRLL - hL; bal < -1 || bal > 1 {
		return n
	}
	if (nRLL == nil || hL == 0) && n.value.Load() == nil {
		return n
	}
	if bal := hRRepl - hNRepl; bal < -1 || bal > 1 {
		return nRL
	}
	return nParent
}

// rotateLeftLocked rotates nL left beneath n to convert a left-right shape
// into left-left when the double rotation is not applicable (SnapTree's
// recursive fallback). Locks held: nParent, n, nL, nLR. n acts as the
// parent of the rotation; nLR rises to n's left.
func (t *Tree[K, V]) rotateLeftLocked(n, nL, nLR *node[K, V], hLL0 int32) *node[K, V] {
	nLRL := nLR.child[dirLeft].Load()
	hLRL := height(nLRL)
	hLRR := height(nLR.child[dirRight].Load())

	leftOVL := nL.version.Load()
	nL.version.Store(leftOVL | ovlShrinking)

	nL.child[dirRight].Store(nLRL)
	if nLRL != nil {
		nLRL.parent.Store(nL)
	}
	nLR.child[dirLeft].Store(nL)
	nL.parent.Store(nLR)
	n.child[dirLeft].Store(nLR)
	nLR.parent.Store(n)

	hLRepl := 1 + max32(hLL0, hLRL)
	nL.height.Store(hLRepl)
	nLR.height.Store(1 + max32(hLRepl, hLRR))

	nL.version.Store((leftOVL + versionStep) &^ ovlShrinking)

	// Follow-up analysis: the rotation may have left the pivot or the
	// riser unbalanced or as a disposable routing node; those must be
	// repaired before resuming at n (which is still left-heavy — that was
	// the point of this preparatory rotation).
	if bal := hLRL - hLL0; bal < -1 || bal > 1 {
		return nL
	}
	if (nLRL == nil || hLL0 == 0) && nL.value.Load() == nil {
		return nL
	}
	if bal := hLRR - hLRepl; bal < -1 || bal > 1 {
		return nLR
	}
	if hLRR == 0 && nLR.value.Load() == nil {
		return nLR
	}
	return n
}

// rotateRightInnerLocked mirrors rotateLeftLocked: rotates nR right
// beneath n to convert right-left into right-right. Locks held: nParent,
// n, nR, nRL.
func (t *Tree[K, V]) rotateRightInnerLocked(n, nR, nRL *node[K, V], hRR0 int32) *node[K, V] {
	nRLR := nRL.child[dirRight].Load()
	hRLR := height(nRLR)
	hRLL := height(nRL.child[dirLeft].Load())

	rightOVL := nR.version.Load()
	nR.version.Store(rightOVL | ovlShrinking)

	nR.child[dirLeft].Store(nRLR)
	if nRLR != nil {
		nRLR.parent.Store(nR)
	}
	nRL.child[dirRight].Store(nR)
	nR.parent.Store(nRL)
	n.child[dirRight].Store(nRL)
	nRL.parent.Store(n)

	hRRepl := 1 + max32(hRR0, hRLR)
	nR.height.Store(hRRepl)
	nRL.height.Store(1 + max32(hRRepl, hRLL))

	nR.version.Store((rightOVL + versionStep) &^ ovlShrinking)

	// Follow-up analysis, mirroring rotateLeftLocked.
	if bal := hRLR - hRR0; bal < -1 || bal > 1 {
		return nR
	}
	if (nRLR == nil || hRR0 == 0) && nR.value.Load() == nil {
		return nR
	}
	if bal := hRLL - hRRepl; bal < -1 || bal > 1 {
		return nRL
	}
	if hRLL == 0 && nRL.value.Load() == nil {
		return nRL
	}
	return n
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
