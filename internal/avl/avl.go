// Package avl implements the practical concurrent binary search tree of
// Bronson, Casper, Chafi & Olukotun (PPoPP 2010) — the "AVL" series in the
// Citrus paper's evaluation (the C port by Howard is the one benchmarked
// there; this is a faithful Go port of the published algorithm).
//
// The tree is a partially external relaxed-balance AVL tree:
//
//   - Searches are optimistic and lock-free: each node carries a version
//     word (an "OVL"). A rotation marks the moving node as shrinking,
//     performs the swap, then advances the version; a search that slept
//     through a shrink detects the version change and retries from a
//     validated ancestor, hand-over-hand.
//   - Deleting a node with two children does not restructure: the node's
//     value is cleared, leaving a routing node. Routing nodes are unlinked
//     later, when they have at most one child. This keeps delete's locked
//     section tiny — the trick that makes updates scale.
//   - Balancing is relaxed: every update repairs the heights/rotations its
//     own change made necessary, walking toward the root under per-node
//     locks, so balance is restored without a global pass.
package avl

import (
	"cmp"
	"runtime"
	"sync"
	"sync/atomic"
)

// Version-word (OVL) bits: bit 0 marks a node unlinked forever; bit 1 is
// set transiently while the node shrinks (moves down in a rotation); each
// completed shrink adds versionStep.
const (
	ovlUnlinked     = 1
	ovlShrinking    = 2
	ovlBusyMask     = ovlUnlinked | ovlShrinking
	versionStep     = 4
	spinsBeforeWait = 64
)

const (
	dirLeft  = 0
	dirRight = 1
)

type node[K cmp.Ordered, V any] struct {
	mu      sync.Mutex
	key     K
	holder  bool // the root holder: never unlinked, never compared
	version atomic.Uint64
	height  atomic.Int32
	value   atomic.Pointer[V] // nil = routing node (key logically absent)
	parent  atomic.Pointer[node[K, V]]
	child   [2]atomic.Pointer[node[K, V]]
}

func height[K cmp.Ordered, V any](n *node[K, V]) int32 {
	if n == nil {
		return 0
	}
	return n.height.Load()
}

// waitUntilShrinkCompleted spins until the node is no longer shrinking
// with the given version (SnapTree's waitUntilShrinkCompleted).
func (n *node[K, V]) waitUntilShrinkCompleted(ovl uint64) {
	if ovl&ovlShrinking == 0 {
		return
	}
	for spins := 0; n.version.Load() == ovl; spins++ {
		if spins >= spinsBeforeWait {
			runtime.Gosched()
		}
	}
}

// Tree is the concurrent AVL tree. Access it through per-goroutine
// Handles.
type Tree[K cmp.Ordered, V any] struct {
	rootHolder *node[K, V] // its right child is the real root
}

// New returns an empty tree.
func New[K cmp.Ordered, V any]() *Tree[K, V] {
	rh := &node[K, V]{holder: true}
	rh.height.Store(1)
	return &Tree[K, V]{rootHolder: rh}
}

// A Handle is one goroutine's access point (stateless; for API symmetry).
type Handle[K cmp.Ordered, V any] struct {
	t *Tree[K, V]
}

// NewHandle returns a handle for the calling goroutine.
func (t *Tree[K, V]) NewHandle() *Handle[K, V] { return &Handle[K, V]{t: t} }

// Close releases the handle (no-op).
func (h *Handle[K, V]) Close() {}

// retryMarker distinguishes "result ready" from "retry from an ancestor".
type status uint8

const (
	statusDone status = iota
	statusRetry
)

// Contains returns the value stored under key, if any. Lock-free.
func (h *Handle[K, V]) Contains(key K) (V, bool) {
	t := h.t
	for {
		right := t.rootHolder.child[dirRight].Load()
		if right == nil {
			var zero V
			return zero, false
		}
		if c := cmp.Compare(key, right.key); c == 0 {
			vp := right.value.Load()
			if vp == nil {
				var zero V
				return zero, false
			}
			return *vp, true
		}
		ovl := right.version.Load()
		if ovl&ovlBusyMask != 0 {
			right.waitUntilShrinkCompleted(ovl)
			continue
		}
		if t.rootHolder.child[dirRight].Load() != right {
			continue
		}
		vp, st := t.attemptGet(key, right, ovl)
		if st == statusDone {
			if vp == nil {
				var zero V
				return zero, false
			}
			return *vp, true
		}
	}
}

// attemptGet searches below node (whose key is known != key) while node's
// version stays nodeOVL; statusRetry sends the caller back up.
func (t *Tree[K, V]) attemptGet(key K, n *node[K, V], nodeOVL uint64) (*V, status) {
	for {
		dir := dirRight
		if cmp.Less(key, n.key) {
			dir = dirLeft
		}
		child := n.child[dir].Load()
		if child == nil {
			if n.version.Load() != nodeOVL {
				return nil, statusRetry
			}
			return nil, statusDone // key absent
		}
		if c := cmp.Compare(key, child.key); c == 0 {
			// Value reads are atomic; a non-nil value means the key was
			// present while the node was still reachable.
			return child.value.Load(), statusDone
		}
		childOVL := child.version.Load()
		if childOVL&ovlBusyMask != 0 {
			child.waitUntilShrinkCompleted(childOVL)
			if n.version.Load() != nodeOVL {
				return nil, statusRetry
			}
			continue // re-read the child link
		}
		if child != n.child[dir].Load() {
			if n.version.Load() != nodeOVL {
				return nil, statusRetry
			}
			continue
		}
		if n.version.Load() != nodeOVL {
			return nil, statusRetry
		}
		vp, st := t.attemptGet(key, child, childOVL)
		if st == statusDone {
			return vp, statusDone
		}
		if n.version.Load() != nodeOVL {
			return nil, statusRetry
		}
	}
}

// Insert adds (key, value); it returns false if key is already present.
func (h *Handle[K, V]) Insert(key K, value V) bool {
	t := h.t
	vp := &value
	for {
		right := t.rootHolder.child[dirRight].Load()
		if right == nil {
			// Empty tree: install the root under the holder's lock.
			t.rootHolder.mu.Lock()
			if t.rootHolder.child[dirRight].Load() == nil {
				n := &node[K, V]{key: key}
				n.value.Store(vp)
				n.height.Store(1)
				n.parent.Store(t.rootHolder)
				t.rootHolder.child[dirRight].Store(n)
				t.rootHolder.height.Store(2)
				t.rootHolder.mu.Unlock()
				return true
			}
			t.rootHolder.mu.Unlock()
			continue
		}
		if c := cmp.Compare(key, right.key); c == 0 {
			ok, st := t.attemptNodeInsert(vp, right)
			if st == statusDone {
				return ok
			}
			continue
		}
		ovl := right.version.Load()
		if ovl&ovlBusyMask != 0 {
			right.waitUntilShrinkCompleted(ovl)
			continue
		}
		if t.rootHolder.child[dirRight].Load() != right {
			continue
		}
		ok, st := t.attemptInsert(key, vp, right, ovl)
		if st == statusDone {
			return ok
		}
	}
}

// attemptInsert inserts below n (key != n.key) while n's version stays
// nodeOVL.
func (t *Tree[K, V]) attemptInsert(key K, vp *V, n *node[K, V], nodeOVL uint64) (bool, status) {
	for {
		dir := dirRight
		if cmp.Less(key, n.key) {
			dir = dirLeft
		}
		child := n.child[dir].Load()
		if n.version.Load() != nodeOVL {
			return false, statusRetry
		}
		if child == nil {
			// Insert a new leaf here, under n's lock, revalidating.
			n.mu.Lock()
			if n.version.Load() != nodeOVL {
				n.mu.Unlock()
				return false, statusRetry
			}
			if n.child[dir].Load() != nil {
				n.mu.Unlock()
				continue // a child appeared; descend into it
			}
			leaf := &node[K, V]{key: key}
			leaf.value.Store(vp)
			leaf.height.Store(1)
			leaf.parent.Store(n)
			n.child[dir].Store(leaf)
			n.mu.Unlock()
			t.fixHeightAndRebalance(n)
			return true, statusDone
		}
		if c := cmp.Compare(key, child.key); c == 0 {
			ok, st := t.attemptNodeInsert(vp, child)
			if st == statusDone {
				return ok, statusDone
			}
			if n.version.Load() != nodeOVL {
				return false, statusRetry
			}
			continue
		}
		childOVL := child.version.Load()
		if childOVL&ovlBusyMask != 0 {
			child.waitUntilShrinkCompleted(childOVL)
			if n.version.Load() != nodeOVL {
				return false, statusRetry
			}
			continue
		}
		if child != n.child[dir].Load() {
			if n.version.Load() != nodeOVL {
				return false, statusRetry
			}
			continue
		}
		if n.version.Load() != nodeOVL {
			return false, statusRetry
		}
		ok, st := t.attemptInsert(key, vp, child, childOVL)
		if st == statusDone {
			return ok, statusDone
		}
		if n.version.Load() != nodeOVL {
			return false, statusRetry
		}
	}
}

// attemptNodeInsert performs insert-if-absent on an existing node with the
// target key (it may be a routing node, in which case the key is revived
// in place — the partially external trick in reverse).
func (t *Tree[K, V]) attemptNodeInsert(vp *V, n *node[K, V]) (bool, status) {
	if n.value.Load() != nil {
		// Present. The value was non-nil while the node was reachable
		// (unlink clears the value under lock before the node can leave
		// the tree), so the failed insert linearizes at that read.
		return false, statusDone
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.version.Load()&ovlUnlinked != 0 {
		return false, statusRetry
	}
	if n.value.Load() != nil {
		return false, statusDone
	}
	n.value.Store(vp)
	return true, statusDone
}

// Delete removes key; it returns false if key is absent.
func (h *Handle[K, V]) Delete(key K) bool {
	t := h.t
	for {
		right := t.rootHolder.child[dirRight].Load()
		if right == nil {
			return false
		}
		if c := cmp.Compare(key, right.key); c == 0 {
			ok, st := t.attemptRmNode(t.rootHolder, right)
			if st == statusDone {
				return ok
			}
			continue
		}
		ovl := right.version.Load()
		if ovl&ovlBusyMask != 0 {
			right.waitUntilShrinkCompleted(ovl)
			continue
		}
		if t.rootHolder.child[dirRight].Load() != right {
			continue
		}
		ok, st := t.attemptRemove(key, right, ovl)
		if st == statusDone {
			return ok
		}
	}
}

// attemptRemove searches below n (key != n.key) and removes the key.
func (t *Tree[K, V]) attemptRemove(key K, n *node[K, V], nodeOVL uint64) (bool, status) {
	for {
		dir := dirRight
		if cmp.Less(key, n.key) {
			dir = dirLeft
		}
		child := n.child[dir].Load()
		if n.version.Load() != nodeOVL {
			return false, statusRetry
		}
		if child == nil {
			return false, statusDone // absent
		}
		if c := cmp.Compare(key, child.key); c == 0 {
			ok, st := t.attemptRmNode(n, child)
			if st == statusDone {
				return ok, statusDone
			}
			if n.version.Load() != nodeOVL {
				return false, statusRetry
			}
			continue
		}
		childOVL := child.version.Load()
		if childOVL&ovlBusyMask != 0 {
			child.waitUntilShrinkCompleted(childOVL)
			if n.version.Load() != nodeOVL {
				return false, statusRetry
			}
			continue
		}
		if child != n.child[dir].Load() {
			if n.version.Load() != nodeOVL {
				return false, statusRetry
			}
			continue
		}
		if n.version.Load() != nodeOVL {
			return false, statusRetry
		}
		ok, st := t.attemptRemove(key, child, childOVL)
		if st == statusDone {
			return ok, statusDone
		}
		if n.version.Load() != nodeOVL {
			return false, statusRetry
		}
	}
}

// attemptRmNode removes the key held by n (whose parent is believed to be
// parent). A node with two children is only logically deleted (value
// cleared → routing node); a node with at most one child is unlinked under
// the parent's and its own lock.
func (t *Tree[K, V]) attemptRmNode(parent, n *node[K, V]) (bool, status) {
	if n.value.Load() == nil {
		// Routing node (or already unlinked): need the lock to make the
		// "absent" verdict trustworthy.
		n.mu.Lock()
		unlinked := n.version.Load()&ovlUnlinked != 0
		absent := n.value.Load() == nil
		n.mu.Unlock()
		if unlinked {
			return false, statusRetry
		}
		if absent {
			return false, statusDone
		}
		// Value reappeared; fall through and delete it.
	}
	if n.child[dirLeft].Load() != nil && n.child[dirRight].Load() != nil {
		// Two children: logical delete only.
		n.mu.Lock()
		if n.version.Load()&ovlUnlinked != 0 {
			n.mu.Unlock()
			return false, statusRetry
		}
		if n.value.Load() == nil {
			n.mu.Unlock()
			return false, statusDone
		}
		if n.child[dirLeft].Load() == nil || n.child[dirRight].Load() == nil {
			// Lost a child since the check; restart this node.
			n.mu.Unlock()
			return false, statusRetry
		}
		n.value.Store(nil)
		n.mu.Unlock()
		return true, statusDone
	}

	// At most one child: unlink, locking parent before node.
	parent.mu.Lock()
	if parent.version.Load()&ovlUnlinked != 0 || n.parent.Load() != parent {
		parent.mu.Unlock()
		return false, statusRetry
	}
	n.mu.Lock()
	if n.version.Load()&ovlUnlinked != 0 {
		n.mu.Unlock()
		parent.mu.Unlock()
		return false, statusRetry
	}
	if n.value.Load() == nil {
		n.mu.Unlock()
		parent.mu.Unlock()
		return false, statusDone
	}
	dir := -1
	switch n {
	case parent.child[dirLeft].Load():
		dir = dirLeft
	case parent.child[dirRight].Load():
		dir = dirRight
	}
	if dir == -1 { // n moved away from parent since validation
		n.mu.Unlock()
		parent.mu.Unlock()
		return false, statusRetry
	}
	if n.child[dirLeft].Load() != nil && n.child[dirRight].Load() != nil {
		// Grew a second child meanwhile: logical delete instead.
		n.value.Store(nil)
		n.mu.Unlock()
		parent.mu.Unlock()
		return true, statusDone
	}
	t.unlinkLocked(parent, n, dir)
	n.mu.Unlock()
	parent.mu.Unlock()
	t.fixHeightAndRebalance(parent)
	return true, statusDone
}

// unlinkLocked splices n — known to have at most one child and to be
// parent's child in direction dir — out of the tree. Both locks held.
func (t *Tree[K, V]) unlinkLocked(parent, n *node[K, V], dir int) {
	splice := n.child[dirLeft].Load()
	if splice == nil {
		splice = n.child[dirRight].Load()
	}
	parent.child[dir].Store(splice)
	if splice != nil {
		splice.parent.Store(parent)
	}
	n.version.Store(ovlUnlinked)
	n.value.Store(nil)
}
