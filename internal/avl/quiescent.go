package avl

import (
	"cmp"
	"fmt"
)

// Quiescent-only observers, used by tests and the benchmark harness
// between phases.

// Len reports the number of keys (routing nodes excluded). Quiescent use
// only.
func (t *Tree[K, V]) Len() int {
	n := 0
	t.Range(func(K, V) bool { n++; return true })
	return n
}

// Keys returns all keys in ascending order; a full-range scan.
// Quiescent use only.
func (t *Tree[K, V]) Keys() []K {
	var ks []K
	t.Range(func(k K, _ V) bool { ks = append(ks, k); return true })
	return ks
}

// Range calls fn on every present pair in ascending key order until fn
// returns false. Quiescent use only; runs the concurrent scan engine
// (scan.go) so quiescent and live reads share one traversal path.
func (t *Tree[K, V]) Range(fn func(key K, value V) bool) {
	h := t.NewHandle()
	defer h.Close()
	h.Scan(fn)
}

// CheckInvariants verifies, for a quiescent tree: BST order (over all
// nodes, routing included), parent back-pointers, no reachable unlinked
// or shrinking node, and that no disposable routing node (≤ 1 child, no
// value) lingers.
//
// Deliberately NOT checked: exact cached heights and the strict AVL
// balance condition. The tree is *relaxed* balanced (that is the point of
// the design): a repair walk stops as soon as it reaches a node whose
// cached height did not change, so an ancestor whose subtree shrank
// through a rotation below may keep a stale height until a later update
// passes through it. Searches are correct regardless; balance only
// affects path length.
func (t *Tree[K, V]) CheckInvariants() error {
	var prev *K
	var check func(n, parent *node[K, V]) error
	check = func(n, parent *node[K, V]) error {
		if n == nil {
			return nil
		}
		if v := n.version.Load(); v&ovlUnlinked != 0 {
			return fmt.Errorf("reachable node %v is unlinked", n.key)
		} else if v&ovlShrinking != 0 {
			return fmt.Errorf("node %v still shrinking at quiescence", n.key)
		}
		if n.parent.Load() != parent {
			return fmt.Errorf("node %v has a stale parent pointer", n.key)
		}
		nL, nR := n.child[dirLeft].Load(), n.child[dirRight].Load()
		if (nL == nil || nR == nil) && n.value.Load() == nil {
			return fmt.Errorf("disposable routing node %v not unlinked", n.key)
		}
		if err := check(nL, n); err != nil {
			return err
		}
		if prev != nil && cmp.Compare(n.key, *prev) <= 0 {
			return fmt.Errorf("BST order violated: %v after %v", n.key, *prev)
		}
		k := n.key
		prev = &k
		return check(nR, n)
	}
	return check(t.rootHolder.child[dirRight].Load(), t.rootHolder)
}
