package linearizability

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/go-citrus/citrus/internal/impls"
)

func TestEmptyHistory(t *testing.T) {
	if err := Check(nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialHistoryAccepted(t *testing.T) {
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
		{Kind: Contains, Key: 1, Value: 10, OK: true, Call: 3, Return: 4},
		{Kind: Delete, Key: 1, OK: true, Call: 5, Return: 6},
		{Kind: Contains, Key: 1, OK: false, Call: 7, Return: 8},
		{Kind: Delete, Key: 1, OK: false, Call: 9, Return: 10},
	}
	if err := Check(ops, 0); err != nil {
		t.Fatal(err)
	}
}

func TestStaleReadRejected(t *testing.T) {
	// insert(1) completes strictly before contains(1) starts, yet the
	// contains misses: not linearizable.
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
		{Kind: Contains, Key: 1, OK: false, Call: 3, Return: 4},
	}
	if err := Check(ops, 0); err == nil {
		t.Fatal("stale read accepted")
	}
}

func TestConcurrentReadMayGoEitherWay(t *testing.T) {
	// contains overlaps the insert: both found and not-found are valid.
	for _, found := range []bool{true, false} {
		op := Op{Kind: Contains, Key: 1, OK: found, Call: 2, Return: 5}
		if found {
			op.Value = 10
		}
		ops := []Op{
			{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 4},
			op,
		}
		if err := Check(ops, 0); err != nil {
			t.Fatalf("found=%v: %v", found, err)
		}
	}
}

func TestDoubleSuccessfulInsertRejected(t *testing.T) {
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
		{Kind: Insert, Key: 1, Value: 11, OK: true, Call: 3, Return: 4},
	}
	if err := Check(ops, 0); err == nil {
		t.Fatal("two successful inserts of the same key accepted")
	}
}

func TestValueMismatchRejected(t *testing.T) {
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
		{Kind: Contains, Key: 1, Value: 99, OK: true, Call: 3, Return: 4},
	}
	if err := Check(ops, 0); err == nil {
		t.Fatal("wrong value accepted")
	}
}

func TestInterleavingRequiringReorder(t *testing.T) {
	// Three overlapping ops that only linearize in a non-call order:
	// delete must go first even though it was invoked last among pending.
	ops := []Op{
		{Kind: Insert, Key: 5, Value: 1, OK: true, Call: 1, Return: 10},
		{Kind: Delete, Key: 5, OK: false, Call: 2, Return: 9},
		{Kind: Contains, Key: 5, Value: 1, OK: true, Call: 3, Return: 8},
	}
	// delete fails → it linearized before the insert; contains succeeded →
	// after the insert. Valid: delete, insert, contains.
	if err := Check(ops, 0); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryBoundEnforced(t *testing.T) {
	ops := make([]Op, 70)
	for i := range ops {
		ops[i] = Op{Kind: Contains, Key: 1, OK: false, Call: int64(2 * i), Return: int64(2*i + 1)}
	}
	if err := Check(ops, 0); err == nil {
		t.Fatal("oversized history accepted")
	}
}

// TestRealHistoriesLinearizable records genuinely concurrent histories on
// every implementation and verifies each is linearizable. Small key space
// and op counts keep the exhaustive checker fast while maximizing
// interleaving.
func TestRealHistoriesLinearizable(t *testing.T) {
	for _, f := range impls.All[int, int]() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for round := 0; round < 30; round++ {
				m := f.New()
				rec := NewRecorder()
				const procs = 4
				handles := make([]*RecordingHandle, procs)
				for p := range handles {
					handles[p] = rec.Wrap(m.NewHandle(), p)
				}
				var wg sync.WaitGroup
				for p := 0; p < procs; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						h := handles[p]
						rng := rand.New(rand.NewSource(int64(round*100 + p)))
						for i := 0; i < 10; i++ {
							k := rng.Intn(3)
							switch rng.Intn(3) {
							case 0:
								h.Insert(k, p*1000+i)
							case 1:
								h.Delete(k)
							default:
								h.Contains(k)
							}
						}
					}(p)
				}
				wg.Wait()
				var ops []Op
				for _, h := range handles {
					ops = append(ops, h.Ops()...)
					h.Close()
				}
				if err := Check(ops, 0); err != nil {
					t.Fatalf("round %d: %v\nhistory:\n%s", round, err, dumpOps(ops))
				}
			}
		})
	}
}

func dumpOps(ops []Op) string {
	s := ""
	for _, o := range ops {
		s += o.String() + "\n"
	}
	return s
}
