package linearizability

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/go-citrus/citrus/internal/impls"
)

// The pinned fabricated histories: each encodes one way a scan can be
// impossible under the weak consistency spec, and the checker must
// reject every one. These are the scan analogue of
// TestStaleReadRejected — a checker that accepts them checks nothing.

func TestScanPhantomKeyRejected(t *testing.T) {
	// Key 5 was never successfully inserted, yet a scan returned it.
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
		{Kind: Scan, Lo: 0, Hi: 100, Keys: []int{1, 5}, Call: 3, Return: 4},
	}
	if err := Check(ops, 0); err == nil {
		t.Fatal("scan returning a never-inserted key accepted")
	}
}

func TestScanDeadKeyRejected(t *testing.T) {
	// Key 1 was inserted and then provably deleted before the scan
	// window opened (delete starts after the insert returns, completes
	// before the scan is called) — yet the scan returned it.
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
		{Kind: Delete, Key: 1, OK: true, Call: 3, Return: 4},
		{Kind: Scan, Lo: 0, Hi: 100, Keys: []int{1}, Call: 5, Return: 6},
	}
	if err := Check(ops, 0); err == nil {
		t.Fatal("scan returning a provably dead key accepted")
	}
}

func TestScanMissingPermanentKeyRejected(t *testing.T) {
	// Key 2's insert completed before the scan began and no delete ever
	// touched it: the must-appear clause requires it in the output.
	ops := []Op{
		{Kind: Insert, Key: 2, Value: 20, OK: true, Call: 1, Return: 2},
		{Kind: Insert, Key: 7, Value: 70, OK: true, Call: 3, Return: 4},
		{Kind: Scan, Lo: 0, Hi: 100, Keys: []int{7}, Call: 5, Return: 6},
	}
	if err := Check(ops, 0); err == nil {
		t.Fatal("scan missing a provably present key accepted")
	}
}

func TestScanUnsortedRejected(t *testing.T) {
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
		{Kind: Insert, Key: 2, Value: 20, OK: true, Call: 3, Return: 4},
		{Kind: Scan, Lo: 0, Hi: 100, Keys: []int{2, 1}, Call: 5, Return: 6},
	}
	if err := Check(ops, 0); err == nil {
		t.Fatal("descending scan output accepted")
	}
}

func TestScanDuplicateRejected(t *testing.T) {
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
		{Kind: Scan, Lo: 0, Hi: 100, Keys: []int{1, 1}, Call: 3, Return: 4},
	}
	if err := Check(ops, 0); err == nil {
		t.Fatal("duplicate scan emission accepted")
	}
}

func TestScanOutOfBoundsRejected(t *testing.T) {
	ops := []Op{
		{Kind: Insert, Key: 50, Value: 1, OK: true, Call: 1, Return: 2},
		{Kind: Scan, Lo: 0, Hi: 10, Keys: []int{50}, Call: 3, Return: 4},
	}
	if err := Check(ops, 0); err == nil {
		t.Fatal("out-of-bounds scan emission accepted")
	}
}

// Ambiguous histories the checker must ACCEPT: the conservative spec
// only rejects provable impossibilities.

func TestScanOverlappingUpdateAccepted(t *testing.T) {
	// The delete overlaps the scan window, so both including and
	// omitting the key are valid.
	for _, keys := range [][]int{{1}, {}} {
		ops := []Op{
			{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
			{Kind: Delete, Key: 1, OK: true, Call: 3, Return: 8},
			{Kind: Scan, Lo: 0, Hi: 100, Keys: keys, Call: 4, Return: 7},
		}
		if err := Check(ops, 0); err != nil {
			t.Fatalf("keys=%v: %v", keys, err)
		}
	}
}

func TestScanInconsistentCutAccepted(t *testing.T) {
	// Two keys that never coexisted — 1 deleted before 9 was inserted,
	// with both updates inside the scan window. A linearizable scan
	// could never return both; the weak spec explicitly permits it.
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
		{Kind: Delete, Key: 1, OK: true, Call: 4, Return: 5},
		{Kind: Insert, Key: 9, Value: 90, OK: true, Call: 6, Return: 7},
		{Kind: Scan, Lo: 0, Hi: 100, Keys: []int{1, 9}, Call: 3, Return: 8},
	}
	if err := Check(ops, 0); err != nil {
		t.Fatal(err)
	}
}

// TestShrinkScanHistory verifies Shrink reduces a failing scan history
// to a minimal core that still contains the offending scan.
func TestShrinkScanHistory(t *testing.T) {
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
		{Kind: Insert, Key: 2, Value: 20, OK: true, Call: 3, Return: 4},
		{Kind: Delete, Key: 2, OK: true, Call: 5, Return: 6},
		{Kind: Contains, Key: 1, Value: 10, OK: true, Call: 7, Return: 8},
		// Phantom: 5 never inserted.
		{Kind: Scan, Lo: 0, Hi: 100, Keys: []int{1, 5}, Call: 9, Return: 10},
	}
	if Check(ops, 0) == nil {
		t.Fatal("fabricated history unexpectedly valid")
	}
	small := Shrink(ops, 0)
	if Check(small, 0) == nil {
		t.Fatal("shrunk history no longer fails")
	}
	hasScan := false
	for _, op := range small {
		if op.Kind == Scan {
			hasScan = true
		}
	}
	if !hasScan {
		t.Fatalf("shrunk history lost the scan: %s", dumpOps(small))
	}
	// The phantom-key violation needs only the scan itself.
	if len(small) != 1 {
		t.Fatalf("shrunk history has %d ops, want 1:\n%s", len(small), dumpOps(small))
	}
}

// TestRealScanHistoriesValid records genuinely concurrent histories
// with scans mixed into the op stream on every implementation and
// verifies each passes the combined checker (linearizability for
// single-key ops, weak consistency for scans).
func TestRealScanHistoriesValid(t *testing.T) {
	for _, f := range impls.All[int, int]() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for round := 0; round < 20; round++ {
				m := f.New()
				rec := NewRecorder()
				const procs = 4
				handles := make([]*RecordingHandle, procs)
				for p := range handles {
					handles[p] = rec.Wrap(m.NewHandle(), p)
				}
				var wg sync.WaitGroup
				for p := 0; p < procs; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						h := handles[p]
						rng := rand.New(rand.NewSource(int64(round*100 + p)))
						for i := 0; i < 8; i++ {
							k := rng.Intn(4)
							switch rng.Intn(4) {
							case 0:
								h.Insert(k, p*1000+i)
							case 1:
								h.Delete(k)
							case 2:
								h.Contains(k)
							default:
								h.RangeScan(0, 4, func(int, int) bool { return true })
							}
						}
					}(p)
				}
				wg.Wait()
				var ops []Op
				for _, h := range handles {
					ops = append(ops, h.Ops()...)
					h.Close()
				}
				impls.CloseMap(m)
				if err := Check(ops, 0); err != nil {
					t.Fatalf("round %d: %v\nhistory:\n%s", round, err, dumpOps(ops))
				}
			}
		})
	}
}
