package linearizability

// Shrink reduces a non-linearizable history to a locally minimal failing
// sub-history: it greedily removes operations while the remainder still
// fails Check, which turns a thousand-op stress failure into the handful
// of operations a human can actually diagnose.
//
// Removing a *completed* operation from a failing history is not always
// failure-preserving (the removed op's effect may have been what made
// the rest explainable), so the result is only guaranteed to fail — every
// candidate removal is re-verified — and to be locally minimal: removing
// any single remaining op makes the history linearizable or the checker
// inapplicable.
//
// If ops is linearizable (or empty), Shrink returns it unchanged.
func Shrink(ops []Op, maxOps int) []Op {
	if Check(ops, maxOps) == nil {
		return ops
	}
	cur := make([]Op, len(ops))
	copy(cur, ops)

	for {
		removedAny := false
		for i := 0; i < len(cur); i++ {
			candidate := make([]Op, 0, len(cur)-1)
			candidate = append(candidate, cur[:i]...)
			candidate = append(candidate, cur[i+1:]...)
			if Check(candidate, maxOps) != nil {
				cur = candidate
				removedAny = true
				i-- // the slot now holds the next op; retry it
			}
		}
		if !removedAny {
			return cur
		}
	}
}
