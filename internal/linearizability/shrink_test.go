package linearizability

import (
	"math/rand"
	"testing"
)

func TestShrinkKeepsLinearizableHistoriesIntact(t *testing.T) {
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
		{Kind: Contains, Key: 1, Value: 10, OK: true, Call: 3, Return: 4},
	}
	got := Shrink(ops, 0)
	if len(got) != len(ops) {
		t.Fatalf("Shrink changed a linearizable history: %v", got)
	}
}

func TestShrinkFindsMinimalCore(t *testing.T) {
	// Bury a 2-op violation (insert then missed read) under unrelated
	// linearizable noise on other keys.
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 10, OK: true, Call: 1, Return: 2},
		{Kind: Contains, Key: 1, OK: false, Call: 3, Return: 4}, // the bug
	}
	ts := int64(10)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		k := 100 + rng.Intn(5)
		ops = append(ops,
			Op{Kind: Insert, Key: k, Value: i, OK: true, Call: ts, Return: ts + 1},
			Op{Kind: Delete, Key: k, OK: true, Call: ts + 2, Return: ts + 3},
		)
		ts += 4
	}
	if Check(ops, 0) == nil {
		t.Fatal("constructed history unexpectedly linearizable")
	}
	got := Shrink(ops, 0)
	if len(got) != 2 {
		t.Fatalf("Shrink left %d ops, want the 2-op core:\n%s", len(got), dumpOps(got))
	}
	if Check(got, 0) == nil {
		t.Fatal("shrunk history is linearizable")
	}
	if got[0].Key != 1 || got[1].Key != 1 {
		t.Fatalf("shrunk to the wrong ops:\n%s", dumpOps(got))
	}
}

func TestShrinkResultLocallyMinimal(t *testing.T) {
	ops := []Op{
		{Kind: Insert, Key: 1, Value: 1, OK: true, Call: 1, Return: 2},
		{Kind: Insert, Key: 1, Value: 2, OK: true, Call: 3, Return: 4}, // impossible second success
		{Kind: Contains, Key: 1, Value: 1, OK: true, Call: 5, Return: 6},
		{Kind: Delete, Key: 1, OK: true, Call: 7, Return: 8},
	}
	got := Shrink(ops, 0)
	if Check(got, 0) == nil {
		t.Fatal("shrunk history is linearizable")
	}
	for i := range got {
		cand := append(append([]Op{}, got[:i]...), got[i+1:]...)
		if Check(cand, 0) != nil {
			t.Fatalf("not locally minimal: removing op %d still fails\n%s", i, dumpOps(got))
		}
	}
}
