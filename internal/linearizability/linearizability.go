// Package linearizability records histories of dictionary operations and
// checks them for linearizability against the sequential dictionary
// specification (§2 of the Citrus paper), using the classic Wing & Gong
// depth-first search with memoization.
//
// The checker is exponential in the worst case, so it is meant for the
// small, highly concurrent histories used in tests — dozens of
// operations over a handful of keys — where it is exhaustive and fast.
package linearizability

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/go-citrus/citrus/internal/dict"
)

// Kind is a dictionary operation type.
type Kind uint8

// Operation kinds.
const (
	Contains Kind = iota
	Insert
	Delete
)

func (k Kind) String() string {
	switch k {
	case Contains:
		return "contains"
	case Insert:
		return "insert"
	default:
		return "delete"
	}
}

// Op is one completed operation in a history: its arguments, result, and
// invocation/response timestamps drawn from a shared logical clock.
type Op struct {
	Kind   Kind
	Key    int
	Value  int  // argument for Insert; returned value for Contains
	OK     bool // Contains: found; Insert/Delete: succeeded
	Call   int64
	Return int64
	Proc   int // recording goroutine, for error reporting
}

func (o Op) String() string {
	switch o.Kind {
	case Contains:
		return fmt.Sprintf("p%d contains(%d) = (%d,%v) @[%d,%d]", o.Proc, o.Key, o.Value, o.OK, o.Call, o.Return)
	case Insert:
		return fmt.Sprintf("p%d insert(%d,%d) = %v @[%d,%d]", o.Proc, o.Key, o.Value, o.OK, o.Call, o.Return)
	default:
		return fmt.Sprintf("p%d delete(%d) = %v @[%d,%d]", o.Proc, o.Key, o.OK, o.Call, o.Return)
	}
}

// Recorder assigns timestamps from one shared logical clock (an atomic
// counter, which yields an order consistent with real time) and collects
// per-goroutine histories.
type Recorder struct {
	clock atomic.Int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Wrap returns a handle that forwards to h and appends every completed
// operation to a private log. Each goroutine must use its own wrapped
// handle; collect the logs with Ops afterwards.
func (r *Recorder) Wrap(h dict.Handle[int, int], proc int) *RecordingHandle {
	return &RecordingHandle{inner: h, rec: r, proc: proc}
}

// RecordingHandle is a dict.Handle that logs operations.
type RecordingHandle struct {
	inner dict.Handle[int, int]
	rec   *Recorder
	proc  int
	log   []Op
}

var _ dict.Handle[int, int] = (*RecordingHandle)(nil)

// Contains forwards and records.
func (h *RecordingHandle) Contains(key int) (int, bool) {
	call := h.rec.clock.Add(1)
	v, ok := h.inner.Contains(key)
	ret := h.rec.clock.Add(1)
	h.log = append(h.log, Op{Kind: Contains, Key: key, Value: v, OK: ok, Call: call, Return: ret, Proc: h.proc})
	return v, ok
}

// Insert forwards and records.
func (h *RecordingHandle) Insert(key, value int) bool {
	call := h.rec.clock.Add(1)
	ok := h.inner.Insert(key, value)
	ret := h.rec.clock.Add(1)
	h.log = append(h.log, Op{Kind: Insert, Key: key, Value: value, OK: ok, Call: call, Return: ret, Proc: h.proc})
	return ok
}

// Delete forwards and records.
func (h *RecordingHandle) Delete(key int) bool {
	call := h.rec.clock.Add(1)
	ok := h.inner.Delete(key)
	ret := h.rec.clock.Add(1)
	h.log = append(h.log, Op{Kind: Delete, Key: key, OK: ok, Call: call, Return: ret, Proc: h.proc})
	return ok
}

// Close forwards to the wrapped handle.
func (h *RecordingHandle) Close() { h.inner.Close() }

// Ops returns this handle's log.
func (h *RecordingHandle) Ops() []Op { return h.log }

// Check reports whether the history (ops from all goroutines, in any
// order) is linearizable with respect to the dictionary specification,
// starting from an empty dictionary. maxOps guards against accidentally
// feeding the exponential checker a huge history (0 means 64).
func Check(ops []Op, maxOps int) error {
	if maxOps == 0 {
		maxOps = 64
	}
	if len(ops) > maxOps {
		return fmt.Errorf("history has %d ops, checker bound is %d", len(ops), maxOps)
	}
	if len(ops) == 0 {
		return nil
	}
	sorted := make([]Op, len(ops))
	copy(sorted, ops)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Call < sorted[j].Call })

	n := len(sorted)
	if n > 63 {
		return fmt.Errorf("history has %d ops, above the 63-op bitmask limit", n)
	}
	type memoKey struct {
		done  uint64
		state string
	}
	visited := map[memoKey]bool{}

	state := map[int]int{} // the dictionary model
	var dfs func(done uint64) bool
	dfs = func(done uint64) bool {
		if done == uint64(1)<<n-1 {
			return true
		}
		key := memoKey{done, encode(state)}
		if visited[key] {
			return false
		}
		visited[key] = true

		// An op may linearize next iff it is pending and no other pending
		// op returned before it was invoked.
		minReturn := int64(1 << 62)
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && sorted[i].Return < minReturn {
				minReturn = sorted[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			op := sorted[i]
			if op.Call > minReturn {
				break // sorted by Call: nothing later can be minimal either
			}
			old, present := state[op.Key]
			if !applies(op, old, present) {
				continue
			}
			mutate(state, op)
			if dfs(done | 1<<i) {
				return true
			}
			// Undo.
			if present {
				state[op.Key] = old
			} else {
				delete(state, op.Key)
			}
		}
		return false
	}
	if !dfs(0) {
		return fmt.Errorf("history of %d ops is not linearizable", n)
	}
	return nil
}

// applies reports whether op's recorded result is consistent with a model
// where key currently maps to old (if present).
func applies(op Op, old int, present bool) bool {
	switch op.Kind {
	case Contains:
		if op.OK {
			return present && old == op.Value
		}
		return !present
	case Insert:
		return op.OK == !present
	default: // Delete
		return op.OK == present
	}
}

// mutate applies a successful update to the model.
func mutate(state map[int]int, op Op) {
	switch op.Kind {
	case Insert:
		if op.OK {
			state[op.Key] = op.Value
		}
	case Delete:
		if op.OK {
			delete(state, op.Key)
		}
	}
}

// encode canonicalizes the model state for memoization.
func encode(state map[int]int) string {
	keys := make([]int, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	b := make([]byte, 0, len(keys)*8)
	for _, k := range keys {
		b = append(b, byte(k), byte(k>>8), byte(k>>16), byte(k>>24))
		v := state[k]
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}
