// Package linearizability records histories of dictionary operations and
// checks them for linearizability against the sequential dictionary
// specification (§2 of the Citrus paper), using the classic Wing & Gong
// depth-first search with memoization.
//
// The checker is exponential in the worst case, so it is meant for the
// small, highly concurrent histories used in tests — dozens of
// operations over a handful of keys — where it is exhaustive and fast.
package linearizability

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/go-citrus/citrus/internal/dict"
)

// Kind is a dictionary operation type.
type Kind uint8

// Operation kinds.
const (
	Contains Kind = iota
	Insert
	Delete
	Scan
)

func (k Kind) String() string {
	switch k {
	case Contains:
		return "contains"
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	default:
		return "scan"
	}
}

// Op is one completed operation in a history: its arguments, result, and
// invocation/response timestamps drawn from a shared logical clock.
type Op struct {
	Kind   Kind
	Key    int
	Value  int  // argument for Insert; returned value for Contains
	OK     bool // Contains: found; Insert/Delete: succeeded
	Lo, Hi int  // Scan only: half-open bounds [Lo, Hi)
	Keys   []int
	Call   int64
	Return int64
	Proc   int // recording goroutine, for error reporting
}

func (o Op) String() string {
	switch o.Kind {
	case Contains:
		return fmt.Sprintf("p%d contains(%d) = (%d,%v) @[%d,%d]", o.Proc, o.Key, o.Value, o.OK, o.Call, o.Return)
	case Insert:
		return fmt.Sprintf("p%d insert(%d,%d) = %v @[%d,%d]", o.Proc, o.Key, o.Value, o.OK, o.Call, o.Return)
	case Delete:
		return fmt.Sprintf("p%d delete(%d) = %v @[%d,%d]", o.Proc, o.Key, o.OK, o.Call, o.Return)
	default:
		return fmt.Sprintf("p%d scan[%d,%d) = %v @[%d,%d]", o.Proc, o.Lo, o.Hi, o.Keys, o.Call, o.Return)
	}
}

// Recorder assigns timestamps from one shared logical clock (an atomic
// counter, which yields an order consistent with real time) and collects
// per-goroutine histories.
type Recorder struct {
	clock atomic.Int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Wrap returns a handle that forwards to h and appends every completed
// operation to a private log. Each goroutine must use its own wrapped
// handle; collect the logs with Ops afterwards.
func (r *Recorder) Wrap(h dict.Handle[int, int], proc int) *RecordingHandle {
	return &RecordingHandle{inner: h, rec: r, proc: proc}
}

// RecordingHandle is a dict.Handle that logs operations.
type RecordingHandle struct {
	inner dict.Handle[int, int]
	rec   *Recorder
	proc  int
	log   []Op
}

var _ dict.Handle[int, int] = (*RecordingHandle)(nil)

// Contains forwards and records.
func (h *RecordingHandle) Contains(key int) (int, bool) {
	call := h.rec.clock.Add(1)
	v, ok := h.inner.Contains(key)
	ret := h.rec.clock.Add(1)
	h.log = append(h.log, Op{Kind: Contains, Key: key, Value: v, OK: ok, Call: call, Return: ret, Proc: h.proc})
	return v, ok
}

// Insert forwards and records.
func (h *RecordingHandle) Insert(key, value int) bool {
	call := h.rec.clock.Add(1)
	ok := h.inner.Insert(key, value)
	ret := h.rec.clock.Add(1)
	h.log = append(h.log, Op{Kind: Insert, Key: key, Value: value, OK: ok, Call: call, Return: ret, Proc: h.proc})
	return ok
}

// Delete forwards and records.
func (h *RecordingHandle) Delete(key int) bool {
	call := h.rec.clock.Add(1)
	ok := h.inner.Delete(key)
	ret := h.rec.clock.Add(1)
	h.log = append(h.log, Op{Kind: Delete, Key: key, OK: ok, Call: call, Return: ret, Proc: h.proc})
	return ok
}

// RangeScan forwards and records the scan window and the returned key
// sequence; the recorded Scan op is checked by CheckScans's weak
// consistency spec rather than the linearizability DFS.
func (h *RecordingHandle) RangeScan(lo, hi int, fn func(key int, value int) bool) {
	call := h.rec.clock.Add(1)
	var keys []int
	h.inner.RangeScan(lo, hi, func(k, v int) bool {
		keys = append(keys, k)
		return fn(k, v)
	})
	ret := h.rec.clock.Add(1)
	h.log = append(h.log, Op{Kind: Scan, Lo: lo, Hi: hi, Keys: keys, Call: call, Return: ret, Proc: h.proc})
}

// Scan forwards and records as a full-range RangeScan.
func (h *RecordingHandle) Scan(fn func(key int, value int) bool) {
	call := h.rec.clock.Add(1)
	var keys []int
	h.inner.Scan(func(k, v int) bool {
		keys = append(keys, k)
		return fn(k, v)
	})
	ret := h.rec.clock.Add(1)
	h.log = append(h.log, Op{Kind: Scan, Lo: minInt, Hi: maxInt, Keys: keys, Call: call, Return: ret, Proc: h.proc})
}

// Snapshot forwards without recording: a snapshot's reads happen after
// the handle call returns, so they cannot be attributed to one history
// window. The snapshot consistency contract is exercised by the
// conformance kit instead.
func (h *RecordingHandle) Snapshot() dict.Snapshot[int, int] { return h.inner.Snapshot() }

const (
	maxInt = int(^uint(0) >> 1)
	minInt = -maxInt - 1
)

// Close forwards to the wrapped handle.
func (h *RecordingHandle) Close() { h.inner.Close() }

// Ops returns this handle's log.
func (h *RecordingHandle) Ops() []Op { return h.log }

// Check reports whether the history (ops from all goroutines, in any
// order) is valid: the single-key operations must be linearizable with
// respect to the dictionary specification starting from an empty
// dictionary (Wing & Gong DFS), and every Scan op must satisfy the weak
// consistency scan specification (CheckScans) against the single-key
// ops. Scans are deliberately NOT placed in the linearization order —
// that is the package-level point: multi-key RCU reads are weakly, not
// linearizably, consistent. maxOps guards against accidentally feeding
// the exponential checker a huge history (0 means 64).
func Check(ops []Op, maxOps int) error {
	if maxOps == 0 {
		maxOps = 64
	}
	var scans []Op
	filtered := make([]Op, 0, len(ops))
	for _, op := range ops {
		if op.Kind == Scan {
			scans = append(scans, op)
		} else {
			filtered = append(filtered, op)
		}
	}
	if err := CheckScans(scans, filtered); err != nil {
		return err
	}
	ops = filtered
	if len(ops) > maxOps {
		return fmt.Errorf("history has %d ops, checker bound is %d", len(ops), maxOps)
	}
	if len(ops) == 0 {
		return nil
	}
	sorted := make([]Op, len(ops))
	copy(sorted, ops)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Call < sorted[j].Call })

	n := len(sorted)
	if n > 63 {
		return fmt.Errorf("history has %d ops, above the 63-op bitmask limit", n)
	}
	type memoKey struct {
		done  uint64
		state string
	}
	visited := map[memoKey]bool{}

	state := map[int]int{} // the dictionary model
	var dfs func(done uint64) bool
	dfs = func(done uint64) bool {
		if done == uint64(1)<<n-1 {
			return true
		}
		key := memoKey{done, encode(state)}
		if visited[key] {
			return false
		}
		visited[key] = true

		// An op may linearize next iff it is pending and no other pending
		// op returned before it was invoked.
		minReturn := int64(1 << 62)
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && sorted[i].Return < minReturn {
				minReturn = sorted[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			op := sorted[i]
			if op.Call > minReturn {
				break // sorted by Call: nothing later can be minimal either
			}
			old, present := state[op.Key]
			if !applies(op, old, present) {
				continue
			}
			mutate(state, op)
			if dfs(done | 1<<i) {
				return true
			}
			// Undo.
			if present {
				state[op.Key] = old
			} else {
				delete(state, op.Key)
			}
		}
		return false
	}
	if !dfs(0) {
		return fmt.Errorf("history of %d ops is not linearizable", n)
	}
	return nil
}

// applies reports whether op's recorded result is consistent with a model
// where key currently maps to old (if present).
func applies(op Op, old int, present bool) bool {
	switch op.Kind {
	case Contains:
		if op.OK {
			return present && old == op.Value
		}
		return !present
	case Insert:
		return op.OK == !present
	default: // Delete
		return op.OK == present
	}
}

// mutate applies a successful update to the model.
func mutate(state map[int]int, op Op) {
	switch op.Kind {
	case Insert:
		if op.OK {
			state[op.Key] = op.Value
		}
	case Delete:
		if op.OK {
			delete(state, op.Key)
		}
	}
}

// CheckScans verifies every Scan op against the weak consistency scan
// specification, using the single-key ops in updates as the ground
// truth. The spec, per scan with window [c, r] = [Call, Return] and
// bounds [Lo, Hi):
//
//  1. Order: the returned keys ascend strictly (no duplicates) and lie
//     within [Lo, Hi).
//  2. No phantoms: every returned key was possibly live at some instant
//     of the window. The test is conservative (it only rejects provable
//     impossibilities, so overlapping-update ambiguity never yields a
//     false alarm): key k is provably dead for the whole window iff
//     every successful Insert(k) invoked before r is "killed" by a
//     successful Delete(k) that provably starts after the insert
//     completes (D.Call > I.Return) and completes before the window
//     opens (D.Return < c) — then every linearization orders each
//     insert's effect before a delete before c, so k cannot be present
//     inside the window. In particular a key with no successful insert
//     invoked before r at all is provably dead.
//  3. Must-appear: a key in [Lo, Hi) that is provably present for the
//     whole window must be returned. Conservative again: k is provably
//     present throughout iff some successful Insert(k) completes before
//     the window opens (I.Return < c) and every successful Delete(k)
//     provably precedes that insert (D.Return < I.Call) — then in every
//     linearization the insert's effect outlives all deletes and
//     predates c.
//
// What is deliberately NOT required is a consistent cut: two returned
// keys need never have coexisted. That is exactly the downgrade from
// linearizable single-key reads the package comment of citrus describes
// for RCU traversals.
func CheckScans(scans, updates []Op) error {
	if len(scans) == 0 {
		return nil
	}
	inserts := map[int][]Op{} // successful only
	deletes := map[int][]Op{}
	for _, op := range updates {
		if !op.OK {
			continue
		}
		switch op.Kind {
		case Insert:
			inserts[op.Key] = append(inserts[op.Key], op)
		case Delete:
			deletes[op.Key] = append(deletes[op.Key], op)
		}
	}
	for _, s := range scans {
		if s.Kind != Scan {
			return fmt.Errorf("CheckScans given non-scan op %v", s)
		}
		c, r := s.Call, s.Return
		returned := map[int]bool{}
		for i, k := range s.Keys {
			if k < s.Lo || (s.Hi > s.Lo && k >= s.Hi) {
				return fmt.Errorf("scan %v returned key %d outside [%d,%d)", s, k, s.Lo, s.Hi)
			}
			if i > 0 && k <= s.Keys[i-1] {
				return fmt.Errorf("scan %v returned %d after %d: not strictly ascending", s, k, s.Keys[i-1])
			}
			returned[k] = true
			if provablyDead(k, c, r, inserts[k], deletes[k]) {
				return fmt.Errorf("scan %v returned key %d, which was provably absent for the whole window", s, k)
			}
		}
		// Must-appear over every key the history ever inserted in range.
		for k, ins := range inserts {
			if k < s.Lo || k >= s.Hi || returned[k] {
				continue
			}
			if provablyPresent(k, c, ins, deletes[k]) {
				return fmt.Errorf("scan %v missed key %d, which was provably present for the whole window", s, k)
			}
		}
	}
	return nil
}

// provablyDead reports whether k cannot have been present at any instant
// of [c, r]: every successful insert invoked before r has a killing
// delete that provably follows it and completes before c.
func provablyDead(k int, c, r int64, ins, dels []Op) bool {
	for _, i := range ins {
		if i.Call > r {
			continue // cannot take effect inside the window
		}
		killed := false
		for _, d := range dels {
			if d.Call > i.Return && d.Return < c {
				killed = true
				break
			}
		}
		if !killed {
			return false
		}
	}
	return true
}

// provablyPresent reports whether k must have been present for all of
// [c, r]: some successful insert completes before c and provably
// follows every successful delete of k.
func provablyPresent(k int, c int64, ins, dels []Op) bool {
	for _, i := range ins {
		if i.Return >= c {
			continue
		}
		outlives := true
		for _, d := range dels {
			if d.Return >= i.Call {
				outlives = false
				break
			}
		}
		if outlives {
			return true
		}
	}
	return false
}

// encode canonicalizes the model state for memoization.
func encode(state map[int]int) string {
	keys := make([]int, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	b := make([]byte, 0, len(keys)*8)
	for _, k := range keys {
		b = append(b, byte(k), byte(k>>8), byte(k>>16), byte(k>>24))
		v := state[k]
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}
