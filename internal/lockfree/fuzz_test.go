package lockfree

import "testing"

// FuzzOpsAgainstOracle interprets fuzz input as an op script (2 bytes
// per op) run against both the external BST and a map oracle. The
// descriptor state machine (IFLAG/DFLAG/MARK) has no concurrency here,
// but the routing/sentinel arithmetic and the sibling-copy paths are
// fully exercised.
func FuzzOpsAgainstOracle(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 1, 2, 2})
	f.Add([]byte{0, 5, 0, 3, 0, 8, 1, 5, 0, 5, 1, 3, 1, 8, 1, 5})
	seq := make([]byte, 0, 100)
	for k := byte(0); k < 25; k++ {
		seq = append(seq, 0, k, 1, k)
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := New[int, int]()
		h := tr.NewHandle()
		defer h.Close()
		oracle := map[int]int{}
		for i := 0; i+1 < len(data); i += 2 {
			k := int(data[i+1] % 48)
			switch data[i] % 3 {
			case 0:
				_, present := oracle[k]
				if h.Insert(k, i) == present {
					t.Fatalf("op %d: Insert(%d) disagreed with oracle (present=%v)", i/2, k, present)
				}
				if !present {
					oracle[k] = i
				}
			case 1:
				_, present := oracle[k]
				if h.Delete(k) != present {
					t.Fatalf("op %d: Delete(%d) disagreed with oracle (present=%v)", i/2, k, present)
				}
				delete(oracle, k)
			default:
				wantV, wantOK := oracle[k]
				gotV, gotOK := h.Contains(k)
				if gotOK != wantOK || (wantOK && gotV != wantV) {
					t.Fatalf("op %d: Contains(%d) = (%d, %v), want (%d, %v)", i/2, k, gotV, gotOK, wantV, wantOK)
				}
			}
		}
		if got, want := tr.Len(), len(oracle); got != want {
			t.Fatalf("Len() = %d, oracle %d", got, want)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
