// Package lockfree implements the non-blocking external binary search
// tree of Ellen, Fatourou, Ruppert & van Breugel ("Non-blocking Binary
// Search Trees", PODC 2010) — standing in for the "Lock-Free" series of
// the Citrus paper's evaluation (Natarajan & Mittal's edge-marked tree;
// see DESIGN.md, substitution S3: N&M steals bits from pointers, which
// has no safe Go equivalent, so we use the canonical descriptor-based
// member of the same class).
//
// The tree is external: keys live in leaves; internal nodes are routing
// nodes with exactly two children. Every update installs an operation
// descriptor in the affected internal node(s) with CAS (IFLAG for
// inserts, DFLAG/MARK for deletes) and then performs the child-pointer
// swing; any thread that encounters a descriptor helps the operation
// finish before retrying its own, so some operation always completes
// (lock-freedom). Searches never write and never retry: a single
// root-to-leaf descent suffices, so Contains is wait-free like Citrus's.
package lockfree

import (
	"cmp"
	"fmt"
	"sync/atomic"
)

// Update-field states (the paper's CLEAN/IFLAG/DFLAG/MARK).
type state uint8

const (
	clean state = iota
	iflag
	dflag
	mark
)

// sentinel ranks: every real key < inf1 < inf2 (the paper's ∞₁, ∞₂).
type sentinel uint8

const (
	realKey sentinel = iota
	inf1
	inf2
)

// update is an immutable (state, descriptor) pair; the node's update field
// is an atomic pointer to one, CASed as a unit.
type update[K cmp.Ordered, V any] struct {
	state state
	ii    *iinfo[K, V] // for iflag
	di    *dinfo[K, V] // for dflag / mark
}

// iinfo describes an in-progress insert.
type iinfo[K cmp.Ordered, V any] struct {
	p           *node[K, V] // internal node being split
	l           *node[K, V] // leaf being replaced
	newInternal *node[K, V]
}

// dinfo describes an in-progress delete.
type dinfo[K cmp.Ordered, V any] struct {
	gp, p   *node[K, V]
	l       *node[K, V]
	pupdate *update[K, V] // p's update field as read by the deleter
}

// node is either a leaf (leaf==true; key/value meaningful) or an internal
// routing node (children and update field meaningful). Internal keys are
// routing values only.
type node[K cmp.Ordered, V any] struct {
	key    K
	rank   sentinel
	value  V
	leaf   bool
	left   atomic.Pointer[node[K, V]]
	right  atomic.Pointer[node[K, V]]
	update atomic.Pointer[update[K, V]]
}

// compareKey orders key against n's routing key, with sentinel ranks
// above every real key.
func (n *node[K, V]) compareKey(key K) int {
	if n.rank != realKey {
		return -1 // key < ∞₁ ≤ n
	}
	return cmp.Compare(key, n.key)
}

// Tree is the concurrent lock-free external BST.
type Tree[K cmp.Ordered, V any] struct {
	root *node[K, V]
}

func newClean[K cmp.Ordered, V any]() *update[K, V] {
	return &update[K, V]{state: clean}
}

// New returns an empty tree: a root routing node with rank ∞₂ whose
// children are the ∞₁ and ∞₂ leaves.
func New[K cmp.Ordered, V any]() *Tree[K, V] {
	root := &node[K, V]{rank: inf2}
	root.update.Store(newClean[K, V]())
	l1 := &node[K, V]{rank: inf1, leaf: true}
	l2 := &node[K, V]{rank: inf2, leaf: true}
	root.left.Store(l1)
	root.right.Store(l2)
	return &Tree[K, V]{root: root}
}

// A Handle is one goroutine's access point (stateless here; present for
// API symmetry with the RCU-based structures).
type Handle[K cmp.Ordered, V any] struct {
	t *Tree[K, V]
}

// NewHandle returns a handle for the calling goroutine.
func (t *Tree[K, V]) NewHandle() *Handle[K, V] { return &Handle[K, V]{t: t} }

// Close releases the handle (no-op).
func (h *Handle[K, V]) Close() {}

// searchResult carries the paper's Search outputs.
type searchResult[K cmp.Ordered, V any] struct {
	gp, p    *node[K, V]
	l        *node[K, V]
	pupdate  *update[K, V]
	gpupdate *update[K, V]
}

// search descends from the root to the leaf where key belongs, recording
// the parent, grandparent, and their update fields (read before the child
// pointer, as the algorithm requires).
func (t *Tree[K, V]) search(key K) searchResult[K, V] {
	var r searchResult[K, V]
	r.l = t.root
	for !r.l.leaf {
		r.gp, r.p = r.p, r.l
		r.gpupdate = r.pupdate
		r.pupdate = r.p.update.Load()
		if r.p.compareKey(key) < 0 {
			r.l = r.p.left.Load()
		} else {
			r.l = r.p.right.Load()
		}
	}
	return r
}

// Contains returns the value stored under key, if any. Wait-free: a single
// descent, no helping, no retries.
func (h *Handle[K, V]) Contains(key K) (V, bool) {
	r := h.t.search(key)
	if r.l.rank == realKey && r.l.compareKey(key) == 0 {
		return r.l.value, true
	}
	var zero V
	return zero, false
}

// Insert adds (key, value); it returns false if key is already present.
func (h *Handle[K, V]) Insert(key K, value V) bool {
	t := h.t
	for {
		r := t.search(key)
		if r.l.compareKey(key) == 0 && r.l.rank == realKey {
			return false
		}
		if r.pupdate.state != clean {
			t.help(r.pupdate)
			continue
		}
		// Build the replacement subtree: an internal node whose children
		// are the old leaf and the new one, routed by the larger key.
		newLeaf := &node[K, V]{key: key, value: value, leaf: true}
		sibling := &node[K, V]{key: r.l.key, rank: r.l.rank, value: r.l.value, leaf: true}
		ni := &node[K, V]{}
		ni.update.Store(newClean[K, V]())
		if r.l.compareKey(key) < 0 { // key < l.key: route by l's key
			ni.key, ni.rank = r.l.key, r.l.rank
			ni.left.Store(newLeaf)
			ni.right.Store(sibling)
		} else {
			ni.key, ni.rank = key, realKey
			ni.left.Store(sibling)
			ni.right.Store(newLeaf)
		}
		op := &iinfo[K, V]{p: r.p, l: r.l, newInternal: ni}
		flagged := &update[K, V]{state: iflag, ii: op}
		if r.p.update.CompareAndSwap(r.pupdate, flagged) {
			t.helpInsert(op)
			return true
		}
		t.help(r.p.update.Load())
	}
}

// helpInsert completes an insert whose descriptor is installed: swing the
// child pointer, then unflag.
func (t *Tree[K, V]) helpInsert(op *iinfo[K, V]) {
	t.casChild(op.p, op.l, op.newInternal)
	flagged := op.p.update.Load()
	if flagged.state == iflag && flagged.ii == op {
		op.p.update.CompareAndSwap(flagged, &update[K, V]{state: clean, ii: op})
	}
}

// Delete removes key; it returns false if key is absent.
func (h *Handle[K, V]) Delete(key K) bool {
	t := h.t
	for {
		r := t.search(key)
		if !(r.l.rank == realKey && r.l.compareKey(key) == 0) {
			return false
		}
		if r.gpupdate.state != clean {
			t.help(r.gpupdate)
			continue
		}
		if r.pupdate.state != clean {
			t.help(r.pupdate)
			continue
		}
		op := &dinfo[K, V]{gp: r.gp, p: r.p, l: r.l, pupdate: r.pupdate}
		flagged := &update[K, V]{state: dflag, di: op}
		if r.gp.update.CompareAndSwap(r.gpupdate, flagged) {
			if t.helpDelete(op) {
				return true
			}
			continue
		}
		t.help(r.gp.update.Load())
	}
}

// helpDelete tries to mark the parent and finish the delete; on failure it
// unflags the grandparent and reports false so the deleter retries.
func (t *Tree[K, V]) helpDelete(op *dinfo[K, V]) bool {
	marked := &update[K, V]{state: mark, di: op}
	if op.p.update.CompareAndSwap(op.pupdate, marked) {
		t.helpMarked(op)
		return true
	}
	cur := op.p.update.Load()
	if cur.state == mark && cur.di == op {
		// Someone else marked it for us; finish.
		t.helpMarked(op)
		return true
	}
	t.help(cur)
	// Backtrack: remove our flag from the grandparent.
	flagged := op.gp.update.Load()
	if flagged.state == dflag && flagged.di == op {
		op.gp.update.CompareAndSwap(flagged, &update[K, V]{state: clean, di: op})
	}
	return false
}

// helpMarked swings the grandparent's child pointer past the marked
// parent (unlinking the deleted leaf and its parent) and unflags.
func (t *Tree[K, V]) helpMarked(op *dinfo[K, V]) {
	// The sibling of the deleted leaf replaces the parent.
	other := op.p.right.Load()
	if other == op.l {
		other = op.p.left.Load()
	}
	t.casChild(op.gp, op.p, other)
	flagged := op.gp.update.Load()
	if flagged.state == dflag && flagged.di == op {
		op.gp.update.CompareAndSwap(flagged, &update[K, V]{state: clean, di: op})
	}
}

// help advances whatever operation owns the given update value.
func (t *Tree[K, V]) help(u *update[K, V]) {
	switch u.state {
	case iflag:
		t.helpInsert(u.ii)
	case mark:
		t.helpMarked(u.di)
	case dflag:
		t.helpDelete(u.di)
	}
}

// casChild swings parent's child pointer from old to new on the side
// new's routing key belongs to (the paper's CAS-Child: new.key <
// parent.key goes left, otherwise right).
func (t *Tree[K, V]) casChild(parent, old, newN *node[K, V]) {
	if nodeLess(newN, parent) {
		parent.left.CompareAndSwap(old, newN)
	} else {
		parent.right.CompareAndSwap(old, newN)
	}
}

// nodeLess orders nodes by (sentinel rank, key): every real key < ∞₁ < ∞₂.
func nodeLess[K cmp.Ordered, V any](a, b *node[K, V]) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.rank == realKey && cmp.Less(a.key, b.key)
}

// RangeScan calls fn on pairs with lo ≤ key < hi in ascending key order,
// stopping early when fn returns false. Weakly consistent and wait-free
// for the scanner: a single pruned in-order descent with no helping and
// no retries. Safe under concurrency because routing keys are immutable,
// every CAS-installed replacement subtree respects its position's
// routing bounds, and unlinked internal nodes keep their child pointers
// — a scan that entered a just-unlinked subtree still ends at valid
// leaves.
func (h *Handle[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	h.t.scan(&lo, &hi, fn)
}

// Scan calls fn on every pair in ascending key order, stopping early
// when fn returns false. Weakly consistent.
func (h *Handle[K, V]) Scan(fn func(key K, value V) bool) {
	h.t.scan(nil, nil, fn)
}

// scan is the bounded in-order leaf walk (lo inclusive, hi exclusive,
// nil = unbounded), pruning subtrees by the internal nodes' routing
// keys: a left subtree holds keys below the router, a right subtree
// keys at or above it.
func (t *Tree[K, V]) scan(lo, hi *K, fn func(K, V) bool) {
	// Monotone emission filter: a key deleted and reinserted mid-scan can
	// be reachable twice — once through a stale spliced-out subtree the
	// walk already entered, once at its new live position further right —
	// so a leaf is emitted only when its key strictly exceeds the last
	// emission (the same filter core's scan engine applies for Citrus's
	// successor copies).
	var (
		last K
		have bool
	)
	var walk func(n *node[K, V]) bool
	walk = func(n *node[K, V]) bool {
		if n == nil {
			return true
		}
		if n.leaf {
			if n.rank != realKey {
				return true // the ∞ leaves carry no key
			}
			if lo != nil && cmp.Compare(n.key, *lo) < 0 {
				return true
			}
			if hi != nil && cmp.Compare(n.key, *hi) >= 0 {
				return false // leaves ascend: nothing further qualifies
			}
			if have && cmp.Compare(n.key, last) <= 0 {
				return true
			}
			last, have = n.key, true
			return fn(n.key, n.value)
		}
		if lo == nil || n.compareKey(*lo) < 0 { // lo < router: left may qualify
			if !walk(n.left.Load()) {
				return false
			}
		}
		if hi == nil || n.compareKey(*hi) > 0 { // hi > router: right may qualify
			return walk(n.right.Load())
		}
		return true
	}
	walk(t.root)
}

// Len reports the number of keys. Quiescent use only.
func (t *Tree[K, V]) Len() int {
	n := 0
	t.Range(func(K, V) bool { n++; return true })
	return n
}

// Keys returns all keys in ascending order; a full-range scan.
// Quiescent use only.
func (t *Tree[K, V]) Keys() []K {
	var ks []K
	t.Range(func(k K, _ V) bool { ks = append(ks, k); return true })
	return ks
}

// Range calls fn on every pair in ascending key order until fn returns
// false. Quiescent use only; shares the scan walk.
func (t *Tree[K, V]) Range(fn func(key K, value V) bool) {
	t.scan(nil, nil, fn)
}

// CheckInvariants verifies, for a quiescent tree, the external-BST shape:
// every internal node has two children, leaf keys are strictly ascending,
// routing keys separate the subtrees, and no reachable update field is
// left flagged or marked.
func (t *Tree[K, V]) CheckInvariants() error {
	var prevLeaf *node[K, V]
	var walk func(n *node[K, V]) error
	walk = func(n *node[K, V]) error {
		if n == nil {
			return fmt.Errorf("nil child in external tree")
		}
		if n.leaf {
			if prevLeaf != nil {
				if c := compareNodes(prevLeaf, n); c >= 0 {
					return fmt.Errorf("leaf order violated at %v", n.key)
				}
			}
			prevLeaf = n
			return nil
		}
		if u := n.update.Load(); u == nil || u.state != clean {
			return fmt.Errorf("reachable internal node has non-clean update state")
		}
		l, r := n.left.Load(), n.right.Load()
		if l == nil || r == nil {
			return fmt.Errorf("internal node missing a child")
		}
		if err := walk(l); err != nil {
			return err
		}
		return walk(r)
	}
	if err := walk(t.root); err != nil {
		return err
	}
	// Routing separation: every leaf in a left subtree is < the router;
	// right subtree ≥ router.
	var sep func(n *node[K, V]) error
	var checkAll func(n, router *node[K, V], wantLess bool) error
	checkAll = func(n, router *node[K, V], wantLess bool) error {
		if n == nil {
			return nil
		}
		if n.leaf {
			c := compareNodes(n, router)
			if wantLess && c >= 0 {
				return fmt.Errorf("leaf %v not below router %v", n.key, router.key)
			}
			if !wantLess && c < 0 {
				return fmt.Errorf("leaf %v not at/above router %v", n.key, router.key)
			}
			return nil
		}
		if err := checkAll(n.left.Load(), router, wantLess); err != nil {
			return err
		}
		return checkAll(n.right.Load(), router, wantLess)
	}
	sep = func(n *node[K, V]) error {
		if n.leaf {
			return nil
		}
		if err := checkAll(n.left.Load(), n, true); err != nil {
			return err
		}
		if err := checkAll(n.right.Load(), n, false); err != nil {
			return err
		}
		if err := sep(n.left.Load()); err != nil {
			return err
		}
		return sep(n.right.Load())
	}
	return sep(t.root)
}

// compareNodes orders two nodes by (rank, key).
func compareNodes[K cmp.Ordered, V any](a, b *node[K, V]) int {
	if a.rank != b.rank {
		return int(a.rank) - int(b.rank)
	}
	if a.rank != realKey {
		return 0
	}
	return cmp.Compare(a.key, b.key)
}
