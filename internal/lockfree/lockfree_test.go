package lockfree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestBasicOps(t *testing.T) {
	tr := New[int, string]()
	h := tr.NewHandle()
	defer h.Close()
	if _, ok := h.Contains(4); ok {
		t.Fatal("Contains on empty tree = true")
	}
	if !h.Insert(4, "four") || h.Insert(4, "quattro") {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := h.Contains(4); !ok || v != "four" {
		t.Fatalf("Contains(4) = (%q, %v)", v, ok)
	}
	if !h.Delete(4) || h.Delete(4) {
		t.Fatal("Delete semantics broken")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestExternalShape verifies the defining property of the external tree:
// real keys live only in leaves, internal nodes are pure routers with two
// children, and the sentinel skeleton survives arbitrary histories.
func TestExternalShape(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		k := rng.Intn(200)
		if rng.Intn(3) == 0 {
			h.Delete(k)
		} else {
			h.Insert(k, k)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	leaves, internals := 0, 0
	var walk func(n *node[int, int])
	walk = func(n *node[int, int]) {
		if n == nil {
			t.Fatal("nil child in external tree")
		}
		if n.leaf {
			leaves++
			return
		}
		internals++
		walk(n.left.Load())
		walk(n.right.Load())
	}
	walk(tr.root)
	// An external binary tree with L leaves has exactly L−1 internal
	// nodes.
	if internals != leaves-1 {
		t.Fatalf("external shape broken: %d leaves, %d internals", leaves, internals)
	}
	// Leaves = real keys + the two sentinels.
	if want := tr.Len() + 2; leaves != want {
		t.Fatalf("leaves = %d, want %d", leaves, want)
	}
}

// TestRootSentinelsUndeletable: the two ∞ leaves and the root router must
// survive any operation mix, including deleting every real key.
func TestRootSentinelsUndeletable(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	for i := 0; i < 100; i++ {
		h.Insert(i, i)
	}
	for i := 0; i < 100; i++ {
		h.Delete(i)
	}
	if got := tr.Len(); got != 0 {
		t.Fatalf("Len() = %d after deleting everything", got)
	}
	l, r := tr.root.left.Load(), tr.root.right.Load()
	if l == nil || !l.leaf || l.rank != inf1 || r == nil || !r.leaf || r.rank != inf2 {
		t.Fatal("sentinel skeleton damaged")
	}
	// Still usable afterwards.
	if !h.Insert(7, 7) {
		t.Fatal("Insert after drain = false")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHelpingUnderContention hammers a tiny key set so operations
// constantly collide on the same grandparent/parent pairs, forcing the
// IFLAG/DFLAG/MARK helping protocol through all its transitions; the
// summed outcome must stay exact.
func TestHelpingUnderContention(t *testing.T) {
	tr := New[int, int]()
	const (
		goroutines = 8
		opsEach    = 5000
		keys       = 3 // tiny: maximal descriptor collisions
	)
	var inserts, deletes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				k := rng.Intn(keys)
				if rng.Intn(2) == 0 {
					if h.Insert(k, k) {
						inserts.Add(1)
					}
				} else if h.Delete(k) {
					deletes.Add(1)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got, want := int(inserts.Load()-deletes.Load()), tr.Len(); got != want {
		t.Fatalf("inserts-deletes = %d but Len() = %d", got, want)
	}
}

// TestDescriptorsQuiesceClean: after all operations complete no reachable
// internal node may keep a non-CLEAN update descriptor (a stuck flag
// would block all future updates through that node).
func TestDescriptorsQuiesceClean(t *testing.T) {
	tr := New[int, int]()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				k := rng.Intn(64)
				switch rng.Intn(3) {
				case 0:
					h.Insert(k, k)
				case 1:
					h.Delete(k)
				default:
					h.Contains(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()

	var walk func(n *node[int, int])
	walk = func(n *node[int, int]) {
		if n == nil || n.leaf {
			return
		}
		if u := n.update.Load(); u == nil || u.state != clean {
			t.Fatal("reachable internal node left with a non-clean descriptor")
		}
		walk(n.left.Load())
		walk(n.right.Load())
	}
	walk(tr.root)

	// The structure must still accept updates everywhere.
	h := tr.NewHandle()
	defer h.Close()
	for k := 0; k < 64; k++ {
		h.Delete(k)
		if !h.Insert(k, k) {
			t.Fatalf("tree wedged: Insert(%d) = false after delete", k)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestValuesSurviveSiblingCopies(t *testing.T) {
	// Deleting a leaf replaces its sibling with a copy (in the insert
	// path) — values must ride along.
	tr := New[int, string]()
	h := tr.NewHandle()
	defer h.Close()
	h.Insert(10, "ten")
	h.Insert(20, "twenty") // sibling copy of leaf 10 is created here
	h.Insert(15, "fifteen")
	h.Delete(20)
	for k, want := range map[int]string{10: "ten", 15: "fifteen"} {
		if v, ok := h.Contains(k); !ok || v != want {
			t.Fatalf("Contains(%d) = (%q, %v), want (%q, true)", k, v, ok, want)
		}
	}
}
