package seqbst

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	tr := New[string, int]()
	if _, ok := tr.Contains("a"); ok {
		t.Fatal("Contains on empty tree = true")
	}
	if !tr.Insert("a", 1) || tr.Insert("a", 2) {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := tr.Contains("a"); !ok || v != 1 {
		t.Fatalf("Contains(a) = (%d, %v)", v, ok)
	}
	if !tr.Delete("a") || tr.Delete("a") {
		t.Fatal("Delete semantics broken")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteShapes(t *testing.T) {
	cases := []struct {
		keys []int
		del  int
	}{
		{[]int{50}, 50},
		{[]int{50, 30}, 50},
		{[]int{50, 70}, 50},
		{[]int{50, 30, 70}, 50},                 // two children, succ is right child
		{[]int{50, 30, 80, 60, 55, 65}, 50},     // deep successor with right subtree
		{[]int{50, 30, 80, 60, 90, 55, 70}, 80}, // interior two-child delete
	}
	for _, tc := range cases {
		tr := New[int, int]()
		for _, k := range tc.keys {
			tr.Insert(k, k*3)
		}
		if !tr.Delete(tc.del) {
			t.Fatalf("keys %v: Delete(%d) = false", tc.keys, tc.del)
		}
		for _, k := range tc.keys {
			v, ok := tr.Contains(k)
			if k == tc.del {
				if ok {
					t.Fatalf("keys %v: deleted %d still present", tc.keys, k)
				}
			} else if !ok || v != k*3 {
				t.Fatalf("keys %v after Delete(%d): Contains(%d) = (%d, %v)", tc.keys, tc.del, k, v, ok)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("keys %v: %v", tc.keys, err)
		}
	}
}

// TestQuickAgainstMap is a testing/quick property: any operation script
// leaves the tree agreeing with a map oracle.
func TestQuickAgainstMap(t *testing.T) {
	property := func(keys []uint8, dels []uint8) bool {
		tr := New[int, int]()
		oracle := map[int]int{}
		for i, kb := range keys {
			k := int(kb % 64)
			_, present := oracle[k]
			if tr.Insert(k, i) == present {
				return false
			}
			if !present {
				oracle[k] = i
			}
		}
		for _, kb := range dels {
			k := int(kb % 64)
			_, present := oracle[k]
			if tr.Delete(k) != present {
				return false
			}
			delete(oracle, k)
		}
		if tr.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if got, ok := tr.Contains(k); !ok || got != v {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeysSortedAndRange(t *testing.T) {
	tr := New[int, int]()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		tr.Insert(rng.Intn(1000), i)
	}
	ks := tr.Keys()
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("Keys() unsorted at %d", i)
		}
	}
	count := 0
	tr.Range(func(k, v int) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("Range early-stop visited %d", count)
	}
}

// TestLockedIsConcurrencySafe is the coarse-grained baseline's contract.
func TestLockedIsConcurrencySafe(t *testing.T) {
	l := NewLocked[int, int]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w * 1000; k < w*1000+500; k++ {
				if !l.Insert(k, k) {
					t.Errorf("Insert(%d) = false", k)
				}
			}
			for k := w * 1000; k < w*1000+500; k += 2 {
				if !l.Delete(k) {
					t.Errorf("Delete(%d) = false", k)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := l.Len(); got != 8*250 {
		t.Fatalf("Len() = %d, want %d", got, 8*250)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
