// Package seqbst implements the textbook sequential internal binary search
// tree that Citrus is derived from (the paper's §3 notes that Citrus
// "greatly resembles the sequential algorithm"). It is used as the
// single-threaded oracle in tests and as the zero-synchronization baseline
// in benchmarks; a sync.Mutex-wrapped variant (NewLocked) serves as the
// coarse-grained-locking strawman.
package seqbst

import (
	"cmp"
	"fmt"
	"sync"
)

type node[K cmp.Ordered, V any] struct {
	key         K
	value       V
	left, right *node[K, V]
}

// Tree is a sequential internal BST. Not safe for concurrent use; see
// Locked for a coarse-grained concurrent wrapper.
type Tree[K cmp.Ordered, V any] struct {
	root *node[K, V]
	size int
}

// New returns an empty sequential tree.
func New[K cmp.Ordered, V any]() *Tree[K, V] { return &Tree[K, V]{} }

// Contains returns the value stored under key, if any.
func (t *Tree[K, V]) Contains(key K) (V, bool) {
	n := t.root
	for n != nil {
		switch c := cmp.Compare(key, n.key); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.value, true
		}
	}
	var zero V
	return zero, false
}

// Insert adds (key, value); it returns false if key is already present.
func (t *Tree[K, V]) Insert(key K, value V) bool {
	link := &t.root
	for *link != nil {
		n := *link
		switch c := cmp.Compare(key, n.key); {
		case c < 0:
			link = &n.left
		case c > 0:
			link = &n.right
		default:
			return false
		}
	}
	*link = &node[K, V]{key: key, value: value}
	t.size++
	return true
}

// Delete removes key; it returns false if key is absent. A node with two
// children is replaced by its successor, exactly the transformation Citrus
// performs concurrently.
func (t *Tree[K, V]) Delete(key K) bool {
	link := &t.root
	for *link != nil && (*link).key != key {
		if cmp.Less(key, (*link).key) {
			link = &(*link).left
		} else {
			link = &(*link).right
		}
	}
	n := *link
	if n == nil {
		return false
	}
	switch {
	case n.left == nil:
		*link = n.right
	case n.right == nil:
		*link = n.left
	default:
		// Two children: splice out the successor and move its pair here.
		sl := &n.right
		for (*sl).left != nil {
			sl = &(*sl).left
		}
		succ := *sl
		n.key, n.value = succ.key, succ.value
		*sl = succ.right
	}
	t.size--
	return true
}

// Len reports the number of keys.
func (t *Tree[K, V]) Len() int { return t.size }

// Keys returns all keys in ascending order; implemented as a full-range
// scan so the oracle exercises the same path the scan API does.
func (t *Tree[K, V]) Keys() []K {
	ks := make([]K, 0, t.size)
	t.Range(func(k K, _ V) bool { ks = append(ks, k); return true })
	return ks
}

// RangeScan calls fn on pairs with lo ≤ key < hi in ascending key order
// until fn returns false — the sequential specification the concurrent
// implementations' scans are tested against.
func (t *Tree[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	rangeWalk(t.root, &lo, &hi, fn)
}

// Range calls fn on every pair in ascending key order until fn returns
// false.
func (t *Tree[K, V]) Range(fn func(key K, value V) bool) {
	rangeWalk(t.root, nil, nil, fn)
}

// rangeWalk is the bounded in-order traversal: nil bounds are unbounded,
// lo inclusive, hi exclusive. Reports whether fn never returned false.
func rangeWalk[K cmp.Ordered, V any](n *node[K, V], lo, hi *K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if lo != nil && cmp.Compare(n.key, *lo) < 0 {
		return rangeWalk(n.right, lo, hi, fn)
	}
	if hi != nil && cmp.Compare(n.key, *hi) >= 0 {
		return rangeWalk(n.left, lo, hi, fn)
	}
	return rangeWalk(n.left, lo, hi, fn) && fn(n.key, n.value) && rangeWalk(n.right, lo, hi, fn)
}

// CheckInvariants verifies the BST ordering property and the size counter.
func (t *Tree[K, V]) CheckInvariants() error {
	count := 0
	var prev *K
	var check func(n *node[K, V]) error
	check = func(n *node[K, V]) error {
		if n == nil {
			return nil
		}
		if err := check(n.left); err != nil {
			return err
		}
		if prev != nil && cmp.Compare(n.key, *prev) <= 0 {
			return fmt.Errorf("BST order violated: %v after %v", n.key, *prev)
		}
		k := n.key
		prev = &k
		count++
		return check(n.right)
	}
	if err := check(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size counter %d, counted %d nodes", t.size, count)
	}
	return nil
}

// Locked wraps Tree with a single mutex: the coarse-grained baseline. Its
// Handle methods are safe for concurrent use from any number of goroutines.
type Locked[K cmp.Ordered, V any] struct {
	mu sync.Mutex
	t  *Tree[K, V]
}

// NewLocked returns an empty mutex-guarded tree.
func NewLocked[K cmp.Ordered, V any]() *Locked[K, V] {
	return &Locked[K, V]{t: New[K, V]()}
}

// Contains returns the value stored under key, if any.
func (l *Locked[K, V]) Contains(key K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Contains(key)
}

// Insert adds (key, value); it returns false if key is already present.
func (l *Locked[K, V]) Insert(key K, value V) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Insert(key, value)
}

// Delete removes key; it returns false if key is absent.
func (l *Locked[K, V]) Delete(key K) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Delete(key)
}

// Len reports the number of keys.
func (l *Locked[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Len()
}

// Keys returns all keys in ascending order.
func (l *Locked[K, V]) Keys() []K {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Keys()
}

// RangeScan calls fn on pairs with lo ≤ key < hi in ascending key order
// until fn returns false, holding the mutex for the whole traversal —
// every scan is trivially a snapshot, at the cost of blocking all
// writers for its duration. fn must not call back into the tree.
func (l *Locked[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.t.RangeScan(lo, hi, fn)
}

// Scan calls fn on every pair in ascending key order until fn returns
// false, holding the mutex for the whole traversal.
func (l *Locked[K, V]) Scan(fn func(key K, value V) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.t.Range(fn)
}

// CheckInvariants verifies the underlying tree.
func (l *Locked[K, V]) CheckInvariants() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.CheckInvariants()
}
