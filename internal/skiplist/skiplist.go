// Package skiplist implements the lazy lock-based optimistic skiplist of
// Herlihy, Lev, Luchangco & Shavit ("A Simple Optimistic Skiplist
// Algorithm", SIROCCO 2007) — the "Skiplist" series in the Citrus paper's
// evaluation (its C port by Gramoli lives in synchrobench).
//
// Updates lock only the predecessors of the affected node and validate
// after locking (like Citrus); membership queries are lock-free and rely
// on two per-node flags: fullyLinked (the node is linked at every level)
// and marked (the node is logically deleted). A contains is linearizable
// because a key is in the set exactly when an unmarked, fully linked node
// with that key is in the bottom-level list.
package skiplist

import (
	"cmp"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxLevel bounds tower heights; 2^32 expected keys is far beyond any
// workload here.
const maxLevel = 32

// pInverse is the inverse of the level-promotion probability (p = 1/2).
const pInverse = 2

type kind uint8

const (
	kindNormal kind = iota
	kindHead
	kindTail
)

type node[K cmp.Ordered, V any] struct {
	mu          sync.Mutex
	key         K
	value       V
	kind        kind
	topLayer    int
	next        [maxLevel]atomic.Pointer[node[K, V]]
	marked      atomic.Bool
	fullyLinked atomic.Bool
}

// compareKey orders key against n's key with the head/tail sentinels as
// −∞/+∞.
func (n *node[K, V]) compareKey(key K) int {
	switch n.kind {
	case kindHead:
		return +1
	case kindTail:
		return -1
	default:
		return cmp.Compare(key, n.key)
	}
}

// List is the concurrent skiplist. Create with New; access through
// per-goroutine Handles (the handle carries the level-generator state).
type List[K cmp.Ordered, V any] struct {
	head *node[K, V]
	tail *node[K, V]
	seed atomic.Uint64
}

// New returns an empty skiplist.
func New[K cmp.Ordered, V any]() *List[K, V] {
	l := &List[K, V]{
		head: &node[K, V]{kind: kindHead, topLayer: maxLevel - 1},
		tail: &node[K, V]{kind: kindTail, topLayer: maxLevel - 1},
	}
	l.head.fullyLinked.Store(true)
	l.tail.fullyLinked.Store(true)
	for i := 0; i < maxLevel; i++ {
		l.head.next[i].Store(l.tail)
	}
	l.seed.Store(0x9E3779B97F4A7C15)
	return l
}

// A Handle is one goroutine's access point; it owns a private PRNG for
// tower heights. Handles must not be shared between goroutines.
type Handle[K cmp.Ordered, V any] struct {
	l   *List[K, V]
	rng uint64
}

// NewHandle returns a handle for the calling goroutine.
func (l *List[K, V]) NewHandle() *Handle[K, V] {
	return &Handle[K, V]{l: l, rng: l.seed.Add(0x9E3779B97F4A7C15)}
}

// Close releases the handle (no-op; present for API symmetry).
func (h *Handle[K, V]) Close() {}

// randomLevel draws a geometric(1/pInverse) tower height in [0, maxLevel).
func (h *Handle[K, V]) randomLevel() int {
	// xorshift64*
	x := h.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	h.rng = x
	r := x * 0x2545F4914F6CDD1D
	lvl := 0
	for r%pInverse == 0 && lvl < maxLevel-1 {
		lvl++
		r /= pInverse
	}
	return lvl
}

// find locates key, filling preds/succs per layer, and returns the highest
// layer at which a node with the key was found (or -1).
func (l *List[K, V]) find(key K, preds, succs *[maxLevel]*node[K, V]) int {
	found := -1
	pred := l.head
	for layer := maxLevel - 1; layer >= 0; layer-- {
		curr := pred.next[layer].Load()
		for curr.compareKey(key) > 0 {
			pred = curr
			curr = pred.next[layer].Load()
		}
		if found == -1 && curr.compareKey(key) == 0 {
			found = layer
		}
		preds[layer] = pred
		succs[layer] = curr
	}
	return found
}

// Contains returns the value stored under key, if any. Lock-free.
func (h *Handle[K, V]) Contains(key K) (V, bool) {
	var preds, succs [maxLevel]*node[K, V]
	lFound := h.l.find(key, &preds, &succs)
	if lFound != -1 {
		n := succs[lFound]
		if n.fullyLinked.Load() && !n.marked.Load() {
			return n.value, true
		}
	}
	var zero V
	return zero, false
}

// Insert adds (key, value); it returns false if key is already present.
func (h *Handle[K, V]) Insert(key K, value V) bool {
	topLayer := h.randomLevel()
	var preds, succs [maxLevel]*node[K, V]
	for {
		lFound := h.l.find(key, &preds, &succs)
		if lFound != -1 {
			found := succs[lFound]
			if !found.marked.Load() {
				// Key present (possibly mid-insert): wait until it is
				// fully linked so our false return is linearizable.
				for !found.fullyLinked.Load() {
					runtime.Gosched()
				}
				return false
			}
			// Marked node on its way out: retry until it is unlinked.
			continue
		}

		// Lock all predecessors bottom-up and validate.
		valid := true
		highestLocked := -1
		var prevPred *node[K, V]
		for layer := 0; valid && layer <= topLayer; layer++ {
			pred, succ := preds[layer], succs[layer]
			if pred != prevPred { // don't lock the same node twice
				pred.mu.Lock()
				highestLocked = layer
				prevPred = pred
			}
			valid = !pred.marked.Load() && !succ.marked.Load() &&
				pred.next[layer].Load() == succ
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}

		n := &node[K, V]{key: key, value: value, topLayer: topLayer}
		for layer := 0; layer <= topLayer; layer++ {
			n.next[layer].Store(succs[layer])
		}
		for layer := 0; layer <= topLayer; layer++ {
			preds[layer].next[layer].Store(n)
		}
		n.fullyLinked.Store(true) // linearization point
		unlockPreds(&preds, highestLocked)
		return true
	}
}

// Delete removes key; it returns false if key is absent.
func (h *Handle[K, V]) Delete(key K) bool {
	var victim *node[K, V]
	isMarked := false
	topLayer := -1
	var preds, succs [maxLevel]*node[K, V]
	for {
		lFound := h.l.find(key, &preds, &succs)
		if !isMarked {
			if lFound == -1 {
				return false
			}
			victim = succs[lFound]
			if victim.topLayer != lFound || !victim.fullyLinked.Load() || victim.marked.Load() {
				return false
			}
			topLayer = victim.topLayer
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return false
			}
			victim.marked.Store(true) // linearization point
			isMarked = true
		}

		valid := true
		highestLocked := -1
		var prevPred *node[K, V]
		for layer := 0; valid && layer <= topLayer; layer++ {
			pred := preds[layer]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = layer
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[layer].Load() == victim
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}

		for layer := topLayer; layer >= 0; layer-- {
			preds[layer].next[layer].Store(victim.next[layer].Load())
		}
		victim.mu.Unlock()
		unlockPreds(&preds, highestLocked)
		return true
	}
}

// unlockPreds unlocks the distinct predecessors locked up to layer
// highestLocked (inclusive).
func unlockPreds[K cmp.Ordered, V any](preds *[maxLevel]*node[K, V], highestLocked int) {
	var prev *node[K, V]
	for layer := 0; layer <= highestLocked; layer++ {
		if preds[layer] != prev {
			preds[layer].mu.Unlock()
			prev = preds[layer]
		}
	}
}

// RangeScan calls fn on pairs with lo ≤ key < hi in ascending key order,
// stopping early when fn returns false. Weakly consistent and lock-free:
// the scan descends the towers to lo's predecessor, then walks the
// bottom-level list, emitting only nodes that are fully linked and
// unmarked at visit time. The bottom chain is always key-sorted and an
// unlinked node's next pointers are never modified, so the walk emits
// each key at most once in ascending order and cannot skip a node that
// stays present for the whole scan.
func (h *Handle[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	h.l.scan(&lo, &hi, fn)
}

// Scan calls fn on every pair in ascending key order, stopping early
// when fn returns false. Weakly consistent and lock-free.
func (h *Handle[K, V]) Scan(fn func(key K, value V) bool) {
	h.l.scan(nil, nil, fn)
}

// scan walks the bottom-level list between the optional bounds (lo
// inclusive, hi exclusive; nil = unbounded).
func (l *List[K, V]) scan(lo, hi *K, fn func(K, V) bool) {
	pred := l.head
	if lo != nil {
		// Tower descent to lo's predecessor, as in find, but only preds.
		for layer := maxLevel - 1; layer >= 0; layer-- {
			curr := pred.next[layer].Load()
			for curr.compareKey(*lo) > 0 {
				pred = curr
				curr = pred.next[layer].Load()
			}
		}
	}
	for c := pred.next[0].Load(); c.kind != kindTail; c = c.next[0].Load() {
		if lo != nil && cmp.Compare(c.key, *lo) < 0 {
			continue // pred raced below lo: keep walking up to the bound
		}
		if hi != nil && cmp.Compare(c.key, *hi) >= 0 {
			return
		}
		if c.fullyLinked.Load() && !c.marked.Load() {
			if !fn(c.key, c.value) {
				return
			}
		}
	}
}

// Len reports the number of keys. Quiescent use only.
func (l *List[K, V]) Len() int {
	n := 0
	l.Range(func(K, V) bool { n++; return true })
	return n
}

// Keys returns all keys in ascending order; a full-range scan.
// Quiescent use only.
func (l *List[K, V]) Keys() []K {
	var ks []K
	l.Range(func(k K, _ V) bool { ks = append(ks, k); return true })
	return ks
}

// Range calls fn on every pair in ascending key order until fn returns
// false. Quiescent use only; shares the scan walk.
func (l *List[K, V]) Range(fn func(key K, value V) bool) {
	l.scan(nil, nil, fn)
}

// CheckInvariants verifies, for a quiescent list, that every layer is
// sorted, every node is fully linked and unmarked, and each tower is a
// sublist of the one below.
func (l *List[K, V]) CheckInvariants() error {
	for layer := 0; layer < maxLevel; layer++ {
		prev := l.head
		for c := l.head.next[layer].Load(); ; c = c.next[layer].Load() {
			if c == nil {
				return fmt.Errorf("layer %d: nil link", layer)
			}
			if c.kind == kindTail {
				break
			}
			if c.kind != kindNormal {
				return fmt.Errorf("layer %d: sentinel in the middle", layer)
			}
			if c.marked.Load() {
				return fmt.Errorf("layer %d: reachable marked node %v", layer, c.key)
			}
			if !c.fullyLinked.Load() {
				return fmt.Errorf("layer %d: reachable non-fully-linked node %v", layer, c.key)
			}
			if c.topLayer < layer {
				return fmt.Errorf("layer %d: node %v has topLayer %d", layer, c.key, c.topLayer)
			}
			if prev.kind == kindNormal && cmp.Compare(c.key, prev.key) <= 0 {
				return fmt.Errorf("layer %d: order violated (%v after %v)", layer, c.key, prev.key)
			}
			prev = c
		}
	}
	// Towers must appear at every lower layer: count per layer must be
	// non-increasing with height.
	prevCount := -1
	for layer := maxLevel - 1; layer >= 0; layer-- {
		count := 0
		for c := l.head.next[layer].Load(); c.kind != kindTail; c = c.next[layer].Load() {
			count++
		}
		if prevCount != -1 && count < prevCount {
			return fmt.Errorf("layer %d has %d nodes, layer above has %d", layer, count, prevCount)
		}
		prevCount = count
	}
	return nil
}
