package skiplist

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	l := New[int, string]()
	h := l.NewHandle()
	defer h.Close()
	if _, ok := h.Contains(3); ok {
		t.Fatal("Contains on empty list = true")
	}
	if !h.Insert(3, "three") || h.Insert(3, "tres") {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := h.Contains(3); !ok || v != "three" {
		t.Fatalf("Contains(3) = (%q, %v)", v, ok)
	}
	if !h.Delete(3) || h.Delete(3) {
		t.Fatal("Delete semantics broken")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTowerDistribution verifies randomLevel draws a geometric(1/2)
// distribution: roughly half the towers at each level relative to the one
// below, and no tower at absurd heights for small n.
func TestTowerDistribution(t *testing.T) {
	l := New[int, int]()
	h := l.NewHandle()
	defer h.Close()
	counts := make([]int, maxLevel)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[h.randomLevel()]++
	}
	if counts[0] < n/3 || counts[0] > 2*n/3 {
		t.Fatalf("level-0 towers: %d of %d, want ≈ half", counts[0], n)
	}
	for lvl := 1; lvl < 8; lvl++ {
		expected := float64(n) / math.Pow(2, float64(lvl+1))
		got := float64(counts[lvl])
		if got < expected*0.8 || got > expected*1.25 {
			t.Fatalf("level-%d towers: %.0f, want ≈ %.0f", lvl, got, expected)
		}
	}
}

// TestTowersAreSublists checks the defining skiplist shape after many
// operations: every level is a sublist of the level below.
func TestTowersAreSublists(t *testing.T) {
	l := New[int, int]()
	h := l.NewHandle()
	defer h.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		k := rng.Intn(500)
		if rng.Intn(3) == 0 {
			h.Delete(k)
		} else {
			h.Insert(k, k)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Explicit sublist check at each level.
	for lvl := 1; lvl < maxLevel; lvl++ {
		lower := map[int]bool{}
		for c := l.head.next[lvl-1].Load(); c.kind != kindTail; c = c.next[lvl-1].Load() {
			lower[c.key] = true
		}
		for c := l.head.next[lvl].Load(); c.kind != kindTail; c = c.next[lvl].Load() {
			if !lower[c.key] {
				t.Fatalf("key %d at level %d missing from level %d", c.key, lvl, lvl-1)
			}
		}
	}
}

func TestRangeOrdered(t *testing.T) {
	l := New[int, int]()
	h := l.NewHandle()
	defer h.Close()
	for _, k := range []int{5, 1, 9, 3, 7} {
		h.Insert(k, k*2)
	}
	var keys []int
	l.Range(func(k, v int) bool {
		if v != k*2 {
			t.Fatalf("Range pair (%d, %d)", k, v)
		}
		keys = append(keys, k)
		return true
	})
	want := []int{1, 3, 5, 7, 9}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Range order %v, want %v", keys, want)
		}
	}
	// Early termination.
	n := 0
	l.Range(func(int, int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("Range visited %d after early stop, want 2", n)
	}
}

// TestConcurrentDisjointKeys has writers on disjoint key sets with
// continuous readers; the optimistic lock/validate path gets exercised on
// shared predecessors (towers overlap even when keys don't).
func TestConcurrentDisjointKeys(t *testing.T) {
	l := New[int, int]()
	const writers = 6
	const perWriter = 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := l.NewHandle()
			defer h.Close()
			for round := 0; round < 3; round++ {
				for k := w; k < writers*perWriter; k += writers {
					if !h.Insert(k, k) {
						t.Errorf("Insert(%d) = false", k)
						return
					}
				}
				for k := w; k < writers*perWriter; k += writers {
					if round == 2 && k%3 == 0 {
						continue
					}
					if !h.Delete(k) {
						t.Errorf("Delete(%d) = false", k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	h := l.NewHandle()
	defer h.Close()
	for k := 0; k < writers*perWriter; k++ {
		_, ok := h.Contains(k)
		if want := k%3 == 0; ok != want {
			t.Fatalf("Contains(%d) = %v, want %v", k, ok, want)
		}
	}
}

func TestLenAndKeys(t *testing.T) {
	l := New[int, int]()
	h := l.NewHandle()
	defer h.Close()
	for i := 0; i < 100; i++ {
		h.Insert(i, i)
	}
	for i := 0; i < 100; i += 2 {
		h.Delete(i)
	}
	if got := l.Len(); got != 50 {
		t.Fatalf("Len() = %d, want 50", got)
	}
	ks := l.Keys()
	if len(ks) != 50 || ks[0] != 1 || ks[49] != 99 {
		t.Fatalf("Keys() = %v", ks)
	}
}
