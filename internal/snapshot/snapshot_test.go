package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeAndPublish(t *testing.T, dir string, lsn uint64, pairs map[int64]string) string {
	t.Helper()
	file, keys, err := Write(dir, lsn, func(emit func(int64, string) error) error {
		for k, v := range pairs {
			if err := emit(k, v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if keys != int64(len(pairs)) {
		t.Fatalf("Write counted %d keys, want %d", keys, len(pairs))
	}
	if err := Publish(dir, file, lsn, keys); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	return file
}

func load(t *testing.T, dir string) (uint64, map[int64]string) {
	t.Helper()
	got := map[int64]string{}
	lsn, keys, err := Load(dir, func(k int64, v string) error {
		got[k] = v
		return nil
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if keys != int64(len(got)) {
		t.Fatalf("Load counted %d, map has %d", keys, len(got))
	}
	return lsn, got
}

func TestWritePublishLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pairs := map[int64]string{}
	for i := int64(0); i < 1000; i++ {
		pairs[i*7] = fmt.Sprintf("value-%d-%s", i, strings.Repeat("x", int(i%31)))
	}
	pairs[-5] = "" // negative key, empty value
	writeAndPublish(t, dir, 4242, pairs)
	lsn, got := load(t, dir)
	if lsn != 4242 {
		t.Fatalf("loaded LSN %d, want 4242", lsn)
	}
	if len(got) != len(pairs) {
		t.Fatalf("loaded %d pairs, want %d", len(got), len(pairs))
	}
	for k, v := range pairs {
		if got[k] != v {
			t.Fatalf("key %d: %q, want %q", k, got[k], v)
		}
	}
}

func TestLoadMissingManifest(t *testing.T) {
	_, _, err := Load(t.TempDir(), func(int64, string) error { return nil })
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Load on empty dir = %v, want ErrNoSnapshot", err)
	}
}

func TestPublishSupersedesOldSnapshots(t *testing.T) {
	dir := t.TempDir()
	old := writeAndPublish(t, dir, 10, map[int64]string{1: "a"})
	writeAndPublish(t, dir, 20, map[int64]string{1: "b", 2: "c"})
	if _, err := os.Stat(filepath.Join(dir, old)); !os.IsNotExist(err) {
		t.Fatalf("old snapshot %s not removed (err=%v)", old, err)
	}
	lsn, got := load(t, dir)
	if lsn != 20 || got[1] != "b" || got[2] != "c" {
		t.Fatalf("loaded lsn=%d pairs=%v", lsn, got)
	}
}

// TestLoadRejectsCorruption flips one bit at every byte offset of a
// snapshot file and asserts Load either fails loudly or — never —
// returns silently wrong data. (The CRC covers everything, so every
// flip must be caught; flips in the length fields may instead surface
// as truncation or implausible-length errors, which is also loud.)
func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	file := writeAndPublish(t, dir, 7, map[int64]string{1: "alpha", 2: "beta", 3: "gamma"})
	path := filepath.Join(dir, file)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(orig); off++ {
		data := append([]byte(nil), orig...)
		data[off] ^= 0x10
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := Load(dir, func(int64, string) error { return nil })
		if err == nil {
			t.Fatalf("bit flip at offset %d loaded without error", off)
		}
	}
	// Restore and confirm it loads again.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir, func(int64, string) error { return nil }); err != nil {
		t.Fatalf("restored snapshot failed to load: %v", err)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	dir := t.TempDir()
	file := writeAndPublish(t, dir, 7, map[int64]string{1: "alpha", 2: "beta"})
	path := filepath.Join(dir, file)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(orig); cut++ {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(dir, func(int64, string) error { return nil }); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", cut)
		}
	}
}

func TestLoadRejectsManifestFileMismatch(t *testing.T) {
	dir := t.TempDir()
	writeAndPublish(t, dir, 30, map[int64]string{1: "a"})
	// Manifest claiming a different LSN than the file header must fail.
	if err := Publish(dir, fmt.Sprintf("snap-%016x.snap", 30), 31, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir, func(int64, string) error { return nil }); err == nil {
		t.Fatalf("LSN mismatch between manifest and file loaded without error")
	}
}

func TestWriteScanErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("scan failed")
	_, _, err := Write(dir, 1, func(emit func(int64, string) error) error {
		emit(1, "partial")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Write = %v, want scan error", err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		t.Fatalf("leftover file after failed Write: %s", e.Name())
	}
}
