// Package snapshot writes and loads kvserver's fuzzy snapshots: a
// checksummed dump of the key/value map taken by a batched RCU range
// scan while writers keep running, stamped with the WAL LSN captured
// just before the scan started.
//
// The snapshot is "fuzzy" — the scan holds no global lock, so the file
// is not a point-in-time image. It is nevertheless a sound recovery
// base because of the ordering invariant kvserver maintains (apply to
// the tree BEFORE appending to the WAL, both under a per-key stripe
// lock): every record with LSN ≤ the captured snapLSN was already
// applied when the scan began, so for each key the snapshot holds a
// state at least as new as snapLSN, and replaying the WAL suffix
// (LSN > snapLSN) — whose SET/DEL records are idempotent last-write-
// wins per key — converges every key to its true final state. The full
// argument is in docs/DURABILITY.md.
//
// File format (little-endian):
//
//	magic "CITRSNAP" | u32 version | u64 lsn
//	repeated: tag 0x01 | u64 key | u32 value length | value bytes
//	trailer:  tag 0x00 | u64 record count | u32 CRC32C over all prior bytes
//
// Files are written to a temp name, fsynced, then renamed; the MANIFEST
// (a tiny JSON document naming the current snapshot file and LSN) is
// replaced the same way, so a crash at any point leaves either the old
// or the new snapshot installed — never a half-written one.
package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

const (
	magic        = "CITRSNAP"
	version      = 1
	manifestName = "MANIFEST"
	tagRecord    = 0x01
	tagEnd       = 0x00
	// maxValueBytes bounds the value-length field on load; anything
	// larger is treated as corruption, not an allocation request.
	maxValueBytes = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrNoSnapshot is returned by Load when no snapshot is installed —
// a fresh data directory, recoverable from the WAL alone.
var ErrNoSnapshot = errors.New("snapshot: no manifest")

// Manifest names the installed snapshot.
type Manifest struct {
	File string `json:"file"`
	LSN  uint64 `json:"lsn"`
	Keys int64  `json:"keys"`
}

// crcWriter mirrors everything written through it into a running CRC32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// snapshotPath names a snapshot file by the LSN it is stamped with.
func snapshotPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", lsn))
}

// Write streams a snapshot stamped with lsn into dir. scan must call
// emit once per key/value pair; ordering does not matter. The file is
// durable (written to a temp name, fsynced, renamed, directory
// fsynced) when Write returns, but NOT yet installed — call Publish
// after any in-flight readers of the scanned structure are done.
// It returns the snapshot's file name (within dir) and the pair count.
func Write(dir string, lsn uint64, scan func(emit func(key int64, value string) error) error) (file string, keys int64, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, err
	}
	final := snapshotPath(dir, lsn)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", 0, err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	cw := &crcWriter{w: f}
	var hdr [20]byte
	copy(hdr[0:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:12], version)
	binary.LittleEndian.PutUint64(hdr[12:20], lsn)
	if _, err = cw.Write(hdr[:]); err != nil {
		return "", 0, err
	}
	var count int64
	emit := func(key int64, value string) error {
		var rec [13]byte
		rec[0] = tagRecord
		binary.LittleEndian.PutUint64(rec[1:9], uint64(key))
		binary.LittleEndian.PutUint32(rec[9:13], uint32(len(value)))
		if _, werr := cw.Write(rec[:]); werr != nil {
			return werr
		}
		if _, werr := io.WriteString(cw, value); werr != nil {
			return werr
		}
		count++
		return nil
	}
	if err = scan(emit); err != nil {
		return "", 0, err
	}
	var end [9]byte
	end[0] = tagEnd
	binary.LittleEndian.PutUint64(end[1:9], uint64(count))
	if _, err = cw.Write(end[:]); err != nil {
		return "", 0, err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], cw.crc)
	if _, err = f.Write(crc[:]); err != nil {
		return "", 0, err
	}
	if err = f.Sync(); err != nil {
		return "", 0, err
	}
	if err = f.Close(); err != nil {
		return "", 0, err
	}
	if err = os.Rename(tmp, final); err != nil {
		return "", 0, err
	}
	if err = syncDir(dir); err != nil {
		return "", 0, err
	}
	return filepath.Base(final), count, nil
}

// Publish installs file (previously produced by Write) as the current
// snapshot by atomically replacing the MANIFEST, then best-effort
// removes superseded snapshot files.
func Publish(dir, file string, lsn uint64, keys int64) error {
	data, err := json.Marshal(Manifest{File: file, LSN: lsn, Keys: keys})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	// fsync the manifest contents before the rename makes them visible.
	if f, err := os.Open(tmp); err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	// Older snapshots are superseded; losing this cleanup to a crash
	// only wastes disk, so errors are ignored.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	for _, e := range ents {
		name := e.Name()
		if name == file || !strings.HasPrefix(name, "snap-") {
			continue
		}
		if strings.HasSuffix(name, ".snap") || strings.HasSuffix(name, ".snap.tmp") {
			os.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}

// Load reads the installed snapshot, calling apply for every pair, and
// returns the stamped LSN and pair count. A missing manifest returns
// ErrNoSnapshot (recover from the WAL alone); an unreadable or corrupt
// snapshot returns a loud error — silently starting empty would turn a
// disk fault into data loss.
func Load(dir string, apply func(key int64, value string) error) (lsn uint64, keys int64, err error) {
	mdata, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return 0, 0, ErrNoSnapshot
	}
	if err != nil {
		return 0, 0, err
	}
	var m Manifest
	if err := json.Unmarshal(mdata, &m); err != nil {
		return 0, 0, fmt.Errorf("snapshot: corrupt manifest: %w", err)
	}
	f, err := os.Open(filepath.Join(dir, m.File))
	if err != nil {
		return 0, 0, fmt.Errorf("snapshot: manifest names %s: %w", m.File, err)
	}
	defer f.Close()

	crc := uint32(0)
	update := func(p []byte) { crc = crc32.Update(crc, castagnoli, p) }
	var hdr [20]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("snapshot: %s: short header: %w", m.File, err)
	}
	update(hdr[:])
	if string(hdr[0:8]) != magic {
		return 0, 0, fmt.Errorf("snapshot: %s: bad magic", m.File)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != version {
		return 0, 0, fmt.Errorf("snapshot: %s: unsupported version %d", m.File, v)
	}
	lsn = binary.LittleEndian.Uint64(hdr[12:20])
	if lsn != m.LSN {
		return 0, 0, fmt.Errorf("snapshot: %s: LSN %d does not match manifest %d", m.File, lsn, m.LSN)
	}
	var count int64
	var value []byte
	for {
		var tag [1]byte
		if _, err := io.ReadFull(f, tag[:]); err != nil {
			return 0, 0, fmt.Errorf("snapshot: %s: truncated at record %d: %w", m.File, count, err)
		}
		update(tag[:])
		if tag[0] == tagEnd {
			break
		}
		if tag[0] != tagRecord {
			return 0, 0, fmt.Errorf("snapshot: %s: bad tag %#x at record %d", m.File, tag[0], count)
		}
		var rec [12]byte
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			return 0, 0, fmt.Errorf("snapshot: %s: truncated record %d: %w", m.File, count, err)
		}
		update(rec[:])
		key := int64(binary.LittleEndian.Uint64(rec[0:8]))
		vlen := binary.LittleEndian.Uint32(rec[8:12])
		if vlen > maxValueBytes {
			return 0, 0, fmt.Errorf("snapshot: %s: implausible value length %d at record %d", m.File, vlen, count)
		}
		if cap(value) < int(vlen) {
			value = make([]byte, vlen)
		}
		value = value[:vlen]
		if _, err := io.ReadFull(f, value); err != nil {
			return 0, 0, fmt.Errorf("snapshot: %s: truncated value at record %d: %w", m.File, count, err)
		}
		update(value)
		if err := apply(key, string(value)); err != nil {
			return 0, 0, err
		}
		count++
	}
	var tail [12]byte // u64 count + u32 crc
	if _, err := io.ReadFull(f, tail[:]); err != nil {
		return 0, 0, fmt.Errorf("snapshot: %s: truncated trailer: %w", m.File, err)
	}
	update(tail[0:8])
	if want := int64(binary.LittleEndian.Uint64(tail[0:8])); want != count {
		return 0, 0, fmt.Errorf("snapshot: %s: trailer says %d records, read %d", m.File, want, count)
	}
	if got := binary.LittleEndian.Uint32(tail[8:12]); got != crc {
		return 0, 0, fmt.Errorf("snapshot: %s: CRC mismatch (stored %08x, computed %08x)", m.File, got, crc)
	}
	return lsn, count, nil
}

// syncDir fsyncs a directory so renames in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
