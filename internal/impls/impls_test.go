package impls

import (
	"sync"
	"testing"

	"github.com/go-citrus/citrus/internal/core"
	"github.com/go-citrus/citrus/internal/dict"
	"github.com/go-citrus/citrus/internal/dicttest"
	"github.com/go-citrus/citrus/rcu"
)

// TestConformance subjects every implementation to the shared battery:
// sequential semantics, delete shapes, oracle-driven random sequences,
// testing/quick property scripts, concurrent stress, and the
// no-false-negative guarantee.
func TestConformance(t *testing.T) {
	for _, f := range All[int, int]() {
		t.Run(f.Name, func(t *testing.T) {
			dicttest.RunAll(t, f.New)
		})
	}
}

// TestConformanceRecyclingCitrus runs the same battery over Citrus with
// node recycling enabled — the configuration where use-after-retirement
// bugs would surface.
func TestConformanceRecyclingCitrus(t *testing.T) {
	var mu sync.Mutex
	var recs []*rcu.Reclaimer
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range recs {
			r.Close()
		}
	})
	factory := func() dict.Map[int, int] {
		dom := rcu.NewDomain()
		rec := rcu.NewReclaimer(dom)
		mu.Lock()
		recs = append(recs, rec)
		mu.Unlock()
		return &recyclingMap{t: core.NewTreeWithRecycling[int, int](dom, rec)}
	}
	dicttest.RunAll(t, factory)
}

// TestConformanceForest runs the battery over forests at several shard
// counts: the degenerate single shard, a count that doesn't divide
// anything evenly, and a larger power of two. (The 4-shard forest also
// runs via All's registry entry in TestConformance.)
func TestConformanceForest(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		f := ForestFactory[int, int](shards)
		t.Run(f.Name, func(t *testing.T) {
			dicttest.RunAll(t, f.New)
		})
	}
}

type recyclingMap struct{ t *core.Tree[int, int] }

func (m *recyclingMap) NewHandle() dict.Handle[int, int] { return weak[int, int](m.t.NewHandle()) }
func (m *recyclingMap) Len() int                         { return m.t.Len() }
func (m *recyclingMap) Keys() []int                      { return m.t.Keys() }
func (m *recyclingMap) CheckInvariants() error           { return m.t.CheckInvariants() }
func (m *recyclingMap) Name() string                     { return "Citrus (recycling)" }
