package impls

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/go-citrus/citrus/internal/dict"
)

// TestGenericStringKeys instantiates every implementation with string
// keys and float64 values and runs an oracle-checked random sequence:
// the comparisons, sentinel handling and successor logic must be purely
// cmp.Ordered-generic, with no hidden integer assumptions.
func TestGenericStringKeys(t *testing.T) {
	factories := map[string]func() dict.Map[string, float64]{
		NameCitrus:        NewCitrus[string, float64],
		NameCitrusClassic: NewCitrusClassic[string, float64],
		NameBonsai:        NewBonsai[string, float64],
		NameRedBlack:      NewRedBlack[string, float64],
		NameAVL:           NewAVL[string, float64],
		NameLockFree:      NewLockFree[string, float64],
		NameSkiplist:      NewSkiplist[string, float64],
		NameCoarseLock:    NewCoarseLock[string, float64],
		NameHandOverHand:  NewHandOverHand[string, float64],
		NameRCUHash:       NewRCUHash[string, float64],
	}
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			m := factory()
			h := m.NewHandle()
			defer h.Close()
			oracle := map[string]float64{}
			rng := rand.New(rand.NewSource(17))
			key := func() string { return fmt.Sprintf("key-%03d", rng.Intn(80)) }
			for i := 0; i < 8000; i++ {
				k := key()
				switch rng.Intn(3) {
				case 0:
					_, present := oracle[k]
					if got := h.Insert(k, float64(i)); got == present {
						t.Fatalf("op %d: Insert(%q) = %v, present=%v", i, k, got, present)
					}
					if !present {
						oracle[k] = float64(i)
					}
				case 1:
					_, present := oracle[k]
					if got := h.Delete(k); got != present {
						t.Fatalf("op %d: Delete(%q) = %v, present=%v", i, k, got, present)
					}
					delete(oracle, k)
				default:
					wantV, wantOK := oracle[k]
					gotV, gotOK := h.Contains(k)
					if gotOK != wantOK || (wantOK && gotV != wantV) {
						t.Fatalf("op %d: Contains(%q) = (%v, %v), want (%v, %v)", i, k, gotV, gotOK, wantV, wantOK)
					}
				}
			}
			if got, want := m.Len(), len(oracle); got != want {
				t.Fatalf("Len() = %d, oracle %d", got, want)
			}
			keys := m.Keys()
			for i := 1; i < len(keys); i++ {
				if keys[i-1] >= keys[i] {
					t.Fatalf("Keys() not ascending at %d: %q, %q", i, keys[i-1], keys[i])
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
