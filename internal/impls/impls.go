// Package impls adapts every search structure in this repository to the
// common dict.Map interface and provides the registry used by the
// benchmark harness, the conformance test kit, and the CLIs.
//
// The implementation set mirrors the Citrus paper's evaluation (§5):
// Citrus itself (on both RCU flavors), the RCU-based trees with
// coarse-grained updates (Bonsai, relativistic red-black), and the
// best-available concurrent dictionaries (Bronson AVL, lock-free external
// BST, lazy skiplist) — plus three structures from beyond the figures: a
// mutex-wrapped sequential BST (coarse-grained strawman), the
// hand-over-hand BST (§1's "natural approach"), and the relativistic
// hash table (§6's prior art).
package impls

import (
	"cmp"
	"fmt"

	citrus "github.com/go-citrus/citrus"
	"github.com/go-citrus/citrus/citrustrace"
	"github.com/go-citrus/citrus/internal/avl"
	"github.com/go-citrus/citrus/internal/bonsai"
	"github.com/go-citrus/citrus/internal/core"
	"github.com/go-citrus/citrus/internal/dict"
	"github.com/go-citrus/citrus/internal/hohbst"
	"github.com/go-citrus/citrus/internal/lockfree"
	"github.com/go-citrus/citrus/internal/rbtree"
	"github.com/go-citrus/citrus/internal/rhash"
	"github.com/go-citrus/citrus/internal/seqbst"
	"github.com/go-citrus/citrus/internal/skiplist"
	"github.com/go-citrus/citrus/rcu"
)

// Implementation names as they appear in benchmark output; these are the
// series labels of the paper's figures.
const (
	NameCitrus        = "Citrus"
	NameCitrusClassic = "Citrus (standard RCU)"
	NameCitrusEBR     = "Citrus (EBR)"
	NameAVL           = "AVL"
	NameSkiplist      = "Skiplist"
	NameBonsai        = "Bonsai"
	NameRedBlack      = "Red-Black"
	NameLockFree      = "Lock-Free"
	NameCoarseLock    = "Coarse-Lock BST"
	NameHandOverHand  = "Hand-over-Hand BST"
	NameRCUHash       = "RCU Hash Table"
	NameForest        = "Citrus Forest"
)

// NewCitrus returns a Citrus tree on the paper's scalable RCU flavor.
func NewCitrus[K cmp.Ordered, V any]() dict.Map[K, V] {
	return &citrusMap[K, V]{t: core.NewTree[K, V](rcu.NewDomain()), name: NameCitrus}
}

// NewCitrusClassic returns a Citrus tree on the classic global-lock RCU
// flavor — the left-hand series of the paper's Figure 8.
func NewCitrusClassic[K cmp.Ordered, V any]() dict.Map[K, V] {
	return &citrusMap[K, V]{t: core.NewTree[K, V](rcu.NewClassicDomain()), name: NameCitrusClassic}
}

// NewCitrusEBR returns a Citrus tree on the epoch-based reclamation
// flavor — readers pin a global epoch instead of publishing per-section
// counters, trading the scalable flavor's per-reader stores for a
// single shared epoch word (see rcu.EpochDomain).
func NewCitrusEBR[K cmp.Ordered, V any]() dict.Map[K, V] {
	return &citrusMap[K, V]{t: core.NewTree[K, V](rcu.NewEpochDomain()), name: NameCitrusEBR}
}

// AblationNoSyncCitrus builds the A3 ablation subject: Citrus over a
// flavor whose Synchronize returns immediately. Contains may then return
// false negatives (the guarantee of the paper's line 74 is gone — see
// core's mutation test), but updates still validate, so the structure
// stays intact; comparing its throughput against real Citrus isolates
// the end-to-end cost of grace periods.
func AblationNoSyncCitrus() dict.Map[int, int] {
	return NewCitrusWithFlavor[int, int](rcu.NoSync(rcu.NewDomain()), "Citrus (no grace periods)")
}

// AblationTracedCitrus builds the A4 ablation subject: Citrus with a
// citrustrace flight recorder attached (per-handle operation rings plus
// the domain's grace-period ring), so the throughput delta against
// plain Citrus is the end-to-end cost of event tracing while enabled.
// The recorder is created per tree and never snapshotted during the
// run, matching the flight-recorder deployment mode.
func AblationTracedCitrus() dict.Map[int, int] {
	dom := rcu.NewDomain()
	t := core.NewTree[int, int](dom)
	rec := citrustrace.New()
	dom.SetTracer(rec.SyncTracer("rcu"))
	t.SetTracer(rec)
	return &citrusMap[int, int]{t: t, name: "Citrus (tracing on)"}
}

// NewCitrusWithFlavor returns a Citrus tree on an arbitrary RCU flavor
// under an arbitrary series name — used by the ablation benchmarks, e.g.
// with an rcu.InstrumentedFlavor to account grace periods.
func NewCitrusWithFlavor[K cmp.Ordered, V any](flavor rcu.Flavor, name string) dict.Map[K, V] {
	return &citrusMap[K, V]{t: core.NewTree[K, V](flavor), name: name}
}

// NewCitrusRecyclingWithFlavor returns a Citrus tree with node
// recycling through rec, for stats/ablation runs that report pool
// effectiveness. The caller owns rec's lifecycle.
func NewCitrusRecyclingWithFlavor[K cmp.Ordered, V any](flavor rcu.Flavor, rec *rcu.Reclaimer, name string) dict.Map[K, V] {
	return &citrusMap[K, V]{t: core.NewTreeWithRecycling[K, V](flavor, rec), name: name}
}

// nativeHandle is the method set every native structure's handle
// provides on its own: single-key ops plus the weakly consistent scans
// added across the module. It is dict.Handle minus Snapshot.
type nativeHandle[K cmp.Ordered, V any] interface {
	Contains(key K) (V, bool)
	Insert(key K, value V) bool
	Delete(key K) bool
	RangeScan(lo, hi K, fn func(key K, value V) bool)
	Scan(fn func(key K, value V) bool)
	Close()
}

// weakHandle lifts a nativeHandle to dict.Handle by adding the typed
// weakly-consistent Snapshot downgrade: structures without a
// point-in-time view (everything but Bonsai and the coarse lock) serve
// Snapshot as live scans labeled dict.WeaklyConsistent.
type weakHandle[K cmp.Ordered, V any] struct{ nativeHandle[K, V] }

func (h weakHandle[K, V]) Snapshot() dict.Snapshot[K, V] {
	return dict.NewWeakSnapshot[K, V](h.nativeHandle)
}

func weak[K cmp.Ordered, V any](h nativeHandle[K, V]) dict.Handle[K, V] {
	return weakHandle[K, V]{h}
}

// TreeStatser is implemented by the Citrus-backed maps: it exposes the
// core tree's operation counters (and, via Stats.RCU, the flavor's
// grace-period accounting) to the benchmark and stress binaries.
// Other implementations don't implement it; callers type-assert.
type TreeStatser interface {
	TreeStats() core.Stats
}

type citrusMap[K cmp.Ordered, V any] struct {
	t    *core.Tree[K, V]
	name string
}

func (m *citrusMap[K, V]) NewHandle() dict.Handle[K, V] { return weak[K, V](m.t.NewHandle()) }
func (m *citrusMap[K, V]) Len() int                     { return m.t.Len() }
func (m *citrusMap[K, V]) Keys() []K                    { return m.t.Keys() }
func (m *citrusMap[K, V]) CheckInvariants() error       { return m.t.CheckInvariants() }
func (m *citrusMap[K, V]) Name() string                 { return m.name }
func (m *citrusMap[K, V]) TreeStats() core.Stats        { return m.t.Stats() }

// NewBonsai returns the RCU path-copying weight-balanced tree.
func NewBonsai[K cmp.Ordered, V any]() dict.Map[K, V] {
	return &bonsaiMap[K, V]{t: bonsai.New[K, V]()}
}

type bonsaiMap[K cmp.Ordered, V any] struct{ t *bonsai.Tree[K, V] }

func (m *bonsaiMap[K, V]) NewHandle() dict.Handle[K, V] { return bonsaiHandle[K, V]{m.t.NewHandle()} }
func (m *bonsaiMap[K, V]) Len() int                     { return m.t.Len() }
func (m *bonsaiMap[K, V]) Keys() []K                    { return m.t.Keys() }
func (m *bonsaiMap[K, V]) CheckInvariants() error       { return m.t.CheckInvariants() }
func (m *bonsaiMap[K, V]) Name() string                 { return NameBonsai }

// bonsaiHandle lifts the bonsai handle to dict.Handle with a REAL
// snapshot: path copying means capturing the root pins an immutable
// version of the whole tree (the GC keeps it alive), so Snapshot is
// dict.SnapshotConsistent — the structure the weakly consistent
// implementations are contrasted against in the conformance kit.
type bonsaiHandle[K cmp.Ordered, V any] struct{ *bonsai.Handle[K, V] }

func (h bonsaiHandle[K, V]) Snapshot() dict.Snapshot[K, V] {
	return bonsaiSnapshot[K, V]{h.Handle.Snap()}
}

type bonsaiSnapshot[K cmp.Ordered, V any] struct{ s bonsai.Snap[K, V] }

func (s bonsaiSnapshot[K, V]) Consistency() dict.Consistency { return dict.SnapshotConsistent }
func (s bonsaiSnapshot[K, V]) Range(lo, hi K, fn func(key K, value V) bool) {
	s.s.Range(lo, hi, fn)
}
func (s bonsaiSnapshot[K, V]) All(fn func(key K, value V) bool) { s.s.All(fn) }
func (s bonsaiSnapshot[K, V]) Close()                           {}

// NewRedBlack returns the relativistic red-black tree.
func NewRedBlack[K cmp.Ordered, V any]() dict.Map[K, V] {
	return &rbMap[K, V]{t: rbtree.New[K, V]()}
}

type rbMap[K cmp.Ordered, V any] struct{ t *rbtree.Tree[K, V] }

func (m *rbMap[K, V]) NewHandle() dict.Handle[K, V] { return weak[K, V](m.t.NewHandle()) }
func (m *rbMap[K, V]) Len() int                     { return m.t.Len() }
func (m *rbMap[K, V]) Keys() []K                    { return m.t.Keys() }
func (m *rbMap[K, V]) CheckInvariants() error       { return m.t.CheckInvariants() }
func (m *rbMap[K, V]) Name() string                 { return NameRedBlack }

// NewAVL returns the Bronson et al. optimistic AVL tree.
func NewAVL[K cmp.Ordered, V any]() dict.Map[K, V] {
	return &avlMap[K, V]{t: avl.New[K, V]()}
}

type avlMap[K cmp.Ordered, V any] struct{ t *avl.Tree[K, V] }

func (m *avlMap[K, V]) NewHandle() dict.Handle[K, V] { return weak[K, V](m.t.NewHandle()) }
func (m *avlMap[K, V]) Len() int                     { return m.t.Len() }
func (m *avlMap[K, V]) Keys() []K                    { return m.t.Keys() }
func (m *avlMap[K, V]) CheckInvariants() error       { return m.t.CheckInvariants() }
func (m *avlMap[K, V]) Name() string                 { return NameAVL }

// NewLockFree returns the non-blocking external BST.
func NewLockFree[K cmp.Ordered, V any]() dict.Map[K, V] {
	return &lfMap[K, V]{t: lockfree.New[K, V]()}
}

type lfMap[K cmp.Ordered, V any] struct{ t *lockfree.Tree[K, V] }

func (m *lfMap[K, V]) NewHandle() dict.Handle[K, V] { return weak[K, V](m.t.NewHandle()) }
func (m *lfMap[K, V]) Len() int                     { return m.t.Len() }
func (m *lfMap[K, V]) Keys() []K                    { return m.t.Keys() }
func (m *lfMap[K, V]) CheckInvariants() error       { return m.t.CheckInvariants() }
func (m *lfMap[K, V]) Name() string                 { return NameLockFree }

// NewSkiplist returns the lazy lock-based skiplist.
func NewSkiplist[K cmp.Ordered, V any]() dict.Map[K, V] {
	return &slMap[K, V]{l: skiplist.New[K, V]()}
}

type slMap[K cmp.Ordered, V any] struct{ l *skiplist.List[K, V] }

func (m *slMap[K, V]) NewHandle() dict.Handle[K, V] { return weak[K, V](m.l.NewHandle()) }
func (m *slMap[K, V]) Len() int                     { return m.l.Len() }
func (m *slMap[K, V]) Keys() []K                    { return m.l.Keys() }
func (m *slMap[K, V]) CheckInvariants() error       { return m.l.CheckInvariants() }
func (m *slMap[K, V]) Name() string                 { return NameSkiplist }

// NewHandOverHand returns the lock-coupling BST — the fine-grained
// locking strawman from the paper's introduction (readers pay two lock
// operations per visited node).
func NewHandOverHand[K cmp.Ordered, V any]() dict.Map[K, V] {
	return &hohMap[K, V]{t: hohbst.New[K, V]()}
}

type hohMap[K cmp.Ordered, V any] struct{ t *hohbst.Tree[K, V] }

func (m *hohMap[K, V]) NewHandle() dict.Handle[K, V] { return weak[K, V](m.t.NewHandle()) }
func (m *hohMap[K, V]) Len() int                     { return m.t.Len() }
func (m *hohMap[K, V]) Keys() []K                    { return m.t.Keys() }
func (m *hohMap[K, V]) CheckInvariants() error       { return m.t.CheckInvariants() }
func (m *hohMap[K, V]) Name() string                 { return NameHandOverHand }

// NewRCUHash returns the relativistic hash table (per-bucket locks, RCU
// readers, reader-transparent resize) — the §6 related-work design whose
// bucket-grained update concurrency Citrus generalizes to per-node.
func NewRCUHash[K cmp.Ordered, V any]() dict.Map[K, V] {
	return &rhashMap[K, V]{m: rhash.New[K, V]()}
}

type rhashMap[K cmp.Ordered, V any] struct{ m *rhash.Map[K, V] }

func (m *rhashMap[K, V]) NewHandle() dict.Handle[K, V] { return weak[K, V](m.m.NewHandle()) }
func (m *rhashMap[K, V]) Len() int                     { return m.m.Len() }
func (m *rhashMap[K, V]) Keys() []K                    { return m.m.Keys() }
func (m *rhashMap[K, V]) CheckInvariants() error       { return m.m.CheckInvariants() }
func (m *rhashMap[K, V]) Name() string                 { return NameRCUHash }

// NewCoarseLock returns a sequential BST behind one mutex.
func NewCoarseLock[K cmp.Ordered, V any]() dict.Map[K, V] {
	return &lockedMap[K, V]{t: seqbst.NewLocked[K, V]()}
}

type lockedMap[K cmp.Ordered, V any] struct{ t *seqbst.Locked[K, V] }

func (m *lockedMap[K, V]) NewHandle() dict.Handle[K, V] { return lockedHandle[K, V]{m.t} }
func (m *lockedMap[K, V]) Len() int                     { return m.t.Len() }
func (m *lockedMap[K, V]) Keys() []K                    { return m.t.Keys() }
func (m *lockedMap[K, V]) CheckInvariants() error       { return m.t.CheckInvariants() }
func (m *lockedMap[K, V]) Name() string                 { return NameCoarseLock }

type lockedHandle[K cmp.Ordered, V any] struct{ t *seqbst.Locked[K, V] }

func (h lockedHandle[K, V]) Contains(key K) (V, bool)   { return h.t.Contains(key) }
func (h lockedHandle[K, V]) Insert(key K, value V) bool { return h.t.Insert(key, value) }
func (h lockedHandle[K, V]) Delete(key K) bool          { return h.t.Delete(key) }
func (h lockedHandle[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	h.t.RangeScan(lo, hi, fn)
}
func (h lockedHandle[K, V]) Scan(fn func(key K, value V) bool) { h.t.Scan(fn) }

// Snapshot materializes all pairs under the mutex: holding the one lock
// for the collection makes the copy a true point-in-time view, so the
// coarse lock is the second dict.SnapshotConsistent implementation
// (trivially — by excluding all concurrency).
func (h lockedHandle[K, V]) Snapshot() dict.Snapshot[K, V] {
	var pairs []dict.Pair[K, V]
	h.t.Scan(func(k K, v V) bool {
		pairs = append(pairs, dict.Pair[K, V]{Key: k, Value: v})
		return true
	})
	return dict.NewMaterializedSnapshot(pairs)
}
func (h lockedHandle[K, V]) Close() {}

// NewForestMap returns a sharded Citrus forest behind the dict API:
// the key space hash-partitioned over the given number of independent
// trees, each with its own RCU domain and reclaimer. The returned map
// implements MapCloser (the forest owns per-shard reclaimer goroutines)
// and ForestStatser.
func NewForestMap[K cmp.Ordered, V any](shards int) dict.Map[K, V] {
	name := NameForest
	if shards != 1 {
		name = fmt.Sprintf("%s (%d shards)", NameForest, shards)
	}
	return &forestMap[K, V]{f: citrus.NewForest[K, V](shards), name: name}
}

// ForestFactory returns a registry entry for an n-shard forest, for
// callers (bench, torture) that sweep the shard axis.
func ForestFactory[K cmp.Ordered, V any](shards int) NamedFactory[K, V] {
	name := NameForest
	if shards != 1 {
		name = fmt.Sprintf("%s (%d shards)", NameForest, shards)
	}
	return NamedFactory[K, V]{name, func() dict.Map[K, V] { return NewForestMap[K, V](shards) }}
}

// MapCloser is implemented by maps that own background resources (the
// forest's per-shard reclaimers); harness and test drivers type-assert
// and call Close after the last handle is done.
type MapCloser interface {
	Close()
}

// ForestStatser exposes the forest's folded + per-shard statistics.
type ForestStatser interface {
	ForestStats() citrus.ForestStats
}

type forestMap[K cmp.Ordered, V any] struct {
	f    *citrus.Forest[K, V]
	name string
}

func (m *forestMap[K, V]) NewHandle() dict.Handle[K, V]    { return forestHandle[K, V]{m.f.NewHandle()} }
func (m *forestMap[K, V]) Len() int                        { return m.f.Len() }
func (m *forestMap[K, V]) Keys() []K                       { return m.f.Keys() }
func (m *forestMap[K, V]) CheckInvariants() error          { return m.f.CheckInvariants() }
func (m *forestMap[K, V]) Name() string                    { return m.name }
func (m *forestMap[K, V]) Close()                          { m.f.Close() }
func (m *forestMap[K, V]) ForestStats() citrus.ForestStats { return m.f.Stats() }

type forestHandle[K cmp.Ordered, V any] struct {
	h *citrus.ForestHandle[K, V]
}

func (h forestHandle[K, V]) Contains(key K) (V, bool)   { return h.h.Get(key) }
func (h forestHandle[K, V]) Insert(key K, value V) bool { return h.h.Insert(key, value) }
func (h forestHandle[K, V]) Delete(key K) bool          { return h.h.Delete(key) }
func (h forestHandle[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	h.h.RangeScan(lo, hi, fn)
}
func (h forestHandle[K, V]) Scan(fn func(key K, value V) bool) { h.h.Scan(fn) }
func (h forestHandle[K, V]) Snapshot() dict.Snapshot[K, V]     { return dict.NewWeakSnapshot[K, V](h) }
func (h forestHandle[K, V]) Close()                            { h.h.Close() }

// CloseMap releases a map's background resources when it has any (a
// no-op for every non-forest implementation).
func CloseMap[K cmp.Ordered, V any](m dict.Map[K, V]) {
	if c, ok := m.(MapCloser); ok {
		c.Close()
	}
}

// A NamedFactory pairs a display name with a factory.
type NamedFactory[K cmp.Ordered, V any] struct {
	Name string
	New  dict.Factory[K, V]
}

// All returns factories for every concurrent implementation, in the
// series order of the paper's figures.
func All[K cmp.Ordered, V any]() []NamedFactory[K, V] {
	return []NamedFactory[K, V]{
		{NameCitrus, NewCitrus[K, V]},
		{NameCitrusClassic, NewCitrusClassic[K, V]},
		{NameCitrusEBR, NewCitrusEBR[K, V]},
		{NameAVL, NewAVL[K, V]},
		{NameSkiplist, NewSkiplist[K, V]},
		{NameBonsai, NewBonsai[K, V]},
		{NameRedBlack, NewRedBlack[K, V]},
		{NameLockFree, NewLockFree[K, V]},
		{NameCoarseLock, NewCoarseLock[K, V]},
		{NameHandOverHand, NewHandOverHand[K, V]},
		{NameRCUHash, NewRCUHash[K, V]},
		ForestFactory[K, V](4),
	}
}

// Figure returns the six series of Figures 9 and 10, in the paper's
// legend order.
func Figure[K cmp.Ordered, V any]() []NamedFactory[K, V] {
	return []NamedFactory[K, V]{
		{NameCitrus, NewCitrus[K, V]},
		{NameAVL, NewAVL[K, V]},
		{NameSkiplist, NewSkiplist[K, V]},
		{NameBonsai, NewBonsai[K, V]},
		{NameRedBlack, NewRedBlack[K, V]},
		{NameLockFree, NewLockFree[K, V]},
	}
}
