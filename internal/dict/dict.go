// Package dict defines the common dictionary API shared by every search
// structure in this repository: the Citrus tree and the five comparison
// structures from the paper's evaluation, plus the sequential oracle.
//
// The paper's dictionary abstract data type (§2):
//
//	insert(k, v)  — adds (k, v); true iff k was absent
//	delete(k)     — removes k; true iff k was present
//	contains(k)   — returns (v, true) if present, else (zero, false)
//
// Beyond the paper, the API carries the range operations real KV traffic
// needs: RangeScan/Scan (in-order, early-stoppable iteration) and
// Snapshot (a point-in-time view where the implementation can provide
// one, a typed weakly consistent downgrade where it cannot). See the
// Consistency type for exactly what each class promises.
//
// Several implementations (Citrus, the relativistic red-black tree) need a
// per-goroutine reader registration for RCU, so the API hands out
// per-goroutine Handles rather than exposing methods on the shared object.
// Implementations without per-goroutine state return a shared handle.
package dict

import "cmp"

// Handle is a single goroutine's access point to a Map. A Handle must not
// be used by two goroutines concurrently. Close releases any per-goroutine
// resources (for RCU-based maps, the reader registration).
type Handle[K cmp.Ordered, V any] interface {
	// Contains returns the value stored under key, if any.
	Contains(key K) (V, bool)

	// Insert adds (key, value); it returns false (and stores nothing) if
	// key is already present.
	Insert(key K, value V) bool

	// Delete removes key; it returns false if key is absent.
	Delete(key K) bool

	// RangeScan calls fn on pairs with lo ≤ key < hi in ascending key
	// order, stopping early when fn returns false. The bound is half-open:
	// lo is included, hi is excluded. Keys are visited at most once per
	// scan. Consistency is the implementation's scan class (see
	// Consistency): weakly consistent scans promise only that every
	// emitted pair was present at some instant during the scan and that
	// keys present for the scan's whole duration are emitted.
	RangeScan(lo, hi K, fn func(key K, value V) bool)

	// Scan calls fn on every pair in ascending key order, stopping early
	// when fn returns false. It is RangeScan over the whole key space —
	// a separate method because cmp.Ordered has no ±∞ values to bound
	// RangeScan with.
	Scan(fn func(key K, value V) bool)

	// Snapshot returns an iterable view of the dictionary. Implementations
	// with a persistent-structure root (Bonsai) or a global lock return a
	// true point-in-time view (SnapshotConsistent); the rest return a
	// typed downgrade that reads the live structure weakly consistently.
	// The caller must Close the snapshot.
	Snapshot() Snapshot[K, V]

	// Close releases the handle.
	Close()
}

// Consistency classifies what a scan or snapshot promises.
type Consistency uint8

const (
	// WeaklyConsistent scans read the live structure: every emitted pair
	// was present at some instant during the scan, every key present for
	// the scan's whole duration is emitted exactly once, and emitted keys
	// ascend strictly. No cross-key atomicity: a scan concurrent with
	// updates may observe some of them and miss others, and the emitted
	// set need not equal the dictionary's state at any single instant.
	WeaklyConsistent Consistency = iota

	// SnapshotConsistent scans observe one point-in-time state: the
	// emitted set equals the dictionary's contents at some single instant
	// within the operation that captured the view.
	SnapshotConsistent
)

// String names the consistency class for reports and metrics.
func (c Consistency) String() string {
	switch c {
	case WeaklyConsistent:
		return "weakly-consistent"
	case SnapshotConsistent:
		return "snapshot"
	default:
		return "unknown"
	}
}

// Snapshot is an iterable view of a dictionary, obtained from
// Handle.Snapshot. Its Consistency reports whether the view is a true
// point-in-time capture or a weakly consistent downgrade over the live
// structure. A Snapshot is single-goroutine, like the Handle that made it,
// and must be Closed when done (a weak snapshot pins nothing, but a
// materialized one may hold memory).
type Snapshot[K cmp.Ordered, V any] interface {
	// Consistency reports what this view promises.
	Consistency() Consistency

	// Range calls fn on pairs with lo ≤ key < hi in ascending key order,
	// stopping early when fn returns false.
	Range(lo, hi K, fn func(key K, value V) bool)

	// All calls fn on every pair in ascending key order, stopping early
	// when fn returns false.
	All(fn func(key K, value V) bool)

	// Close releases the view.
	Close()
}

// Scanner is the scan subset of Handle: what a weak snapshot needs from
// the live handle it wraps.
type Scanner[K cmp.Ordered, V any] interface {
	RangeScan(lo, hi K, fn func(key K, value V) bool)
	Scan(fn func(key K, value V) bool)
}

// NewWeakSnapshot wraps a live handle's scan methods as a
// WeaklyConsistent Snapshot — the typed downgrade for implementations
// that cannot capture a point-in-time view. The snapshot stays valid
// only while the underlying handle is open.
func NewWeakSnapshot[K cmp.Ordered, V any](h Scanner[K, V]) Snapshot[K, V] {
	return weakSnapshot[K, V]{h: h}
}

type weakSnapshot[K cmp.Ordered, V any] struct {
	h Scanner[K, V]
}

func (s weakSnapshot[K, V]) Consistency() Consistency { return WeaklyConsistent }

func (s weakSnapshot[K, V]) Range(lo, hi K, fn func(K, V) bool) { s.h.RangeScan(lo, hi, fn) }

func (s weakSnapshot[K, V]) All(fn func(K, V) bool) { s.h.Scan(fn) }

func (s weakSnapshot[K, V]) Close() {}

// Pair is one key/value entry of a materialized snapshot.
type Pair[K cmp.Ordered, V any] struct {
	Key   K
	Value V
}

// NewMaterializedSnapshot wraps pairs — which must already be in strictly
// ascending key order — as a SnapshotConsistent view. Used by
// implementations whose only point-in-time capture is copying under a
// lock (the coarse-locked oracle).
func NewMaterializedSnapshot[K cmp.Ordered, V any](pairs []Pair[K, V]) Snapshot[K, V] {
	return &materializedSnapshot[K, V]{pairs: pairs}
}

type materializedSnapshot[K cmp.Ordered, V any] struct {
	pairs []Pair[K, V]
}

func (s *materializedSnapshot[K, V]) Consistency() Consistency { return SnapshotConsistent }

func (s *materializedSnapshot[K, V]) Range(lo, hi K, fn func(K, V) bool) {
	for _, p := range s.pairs {
		if p.Key < lo {
			continue
		}
		if p.Key >= hi {
			return
		}
		if !fn(p.Key, p.Value) {
			return
		}
	}
}

func (s *materializedSnapshot[K, V]) All(fn func(K, V) bool) {
	for _, p := range s.pairs {
		if !fn(p.Key, p.Value) {
			return
		}
	}
}

func (s *materializedSnapshot[K, V]) Close() { s.pairs = nil }

// Map is a concurrent dictionary that hands out per-goroutine Handles.
type Map[K cmp.Ordered, V any] interface {
	// NewHandle registers a handle for the calling goroutine.
	NewHandle() Handle[K, V]

	// Len reports the number of keys. Quiescent use only.
	Len() int

	// Keys returns all keys in ascending order. Quiescent use only.
	Keys() []K

	// CheckInvariants verifies implementation-specific structural
	// invariants. Quiescent use only; returns nil if the structure is
	// sound.
	CheckInvariants() error

	// Name identifies the implementation in benchmark output (the series
	// label used in the paper's figures).
	Name() string
}

// Factory creates an empty Map; the benchmark harness and the conformance
// test kit instantiate implementations through factories.
type Factory[K cmp.Ordered, V any] func() Map[K, V]
