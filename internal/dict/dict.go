// Package dict defines the common dictionary API shared by every search
// structure in this repository: the Citrus tree and the five comparison
// structures from the paper's evaluation, plus the sequential oracle.
//
// The paper's dictionary abstract data type (§2):
//
//	insert(k, v)  — adds (k, v); true iff k was absent
//	delete(k)     — removes k; true iff k was present
//	contains(k)   — returns (v, true) if present, else (zero, false)
//
// Several implementations (Citrus, the relativistic red-black tree) need a
// per-goroutine reader registration for RCU, so the API hands out
// per-goroutine Handles rather than exposing methods on the shared object.
// Implementations without per-goroutine state return a shared handle.
package dict

import "cmp"

// Handle is a single goroutine's access point to a Map. A Handle must not
// be used by two goroutines concurrently. Close releases any per-goroutine
// resources (for RCU-based maps, the reader registration).
type Handle[K cmp.Ordered, V any] interface {
	// Contains returns the value stored under key, if any.
	Contains(key K) (V, bool)

	// Insert adds (key, value); it returns false (and stores nothing) if
	// key is already present.
	Insert(key K, value V) bool

	// Delete removes key; it returns false if key is absent.
	Delete(key K) bool

	// Close releases the handle.
	Close()
}

// Map is a concurrent dictionary that hands out per-goroutine Handles.
type Map[K cmp.Ordered, V any] interface {
	// NewHandle registers a handle for the calling goroutine.
	NewHandle() Handle[K, V]

	// Len reports the number of keys. Quiescent use only.
	Len() int

	// Keys returns all keys in ascending order. Quiescent use only.
	Keys() []K

	// CheckInvariants verifies implementation-specific structural
	// invariants. Quiescent use only; returns nil if the structure is
	// sound.
	CheckInvariants() error

	// Name identifies the implementation in benchmark output (the series
	// label used in the paper's figures).
	Name() string
}

// Factory creates an empty Map; the benchmark harness and the conformance
// test kit instantiate implementations through factories.
type Factory[K cmp.Ordered, V any] func() Map[K, V]
