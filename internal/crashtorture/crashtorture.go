// Package crashtorture is the kill–recover–verify harness behind
// `citrustorture -crash`: it runs the kvserver example as a CHILD
// PROCESS with a write-ahead log, churns it over TCP while tracking
// exactly which writes were acknowledged, SIGKILLs it mid-churn at a
// seeded point, restarts it, and checks the durability oracle against
// the recovered state:
//
//   - every ACKNOWLEDGED write must survive the crash (under an fsync
//     policy that promises durability — always or group);
//   - a write that was IN FLIGHT when the process died (sent, no reply)
//     may have happened or not — both outcomes are legal, and the model
//     resolves the ambiguity from the recovered state before the next
//     round;
//   - recovery must announce itself: the restarted server's
//     /metrics.prom must carry the kvserver_recovery_* and
//     kvserver_wal_* series the strict parser accepts.
//
// SIGKILL gives the child no chance to flush: the kernel reclaims the
// process mid-write. That is exactly the failure the WAL's ack
// protocol (apply → append → fsync → reply) is built for, and it is
// also why `-fsync none` is this harness's negative control — the
// none policy buffers acknowledged records in USER SPACE, so a KILLed
// child genuinely loses them and the oracle MUST report lost writes
// (see docs/DURABILITY.md). A harness that passes nofsync is a
// harness that cannot see the bug it hunts.
//
// The final round exits gracefully (SIGTERM) instead of KILLing, then
// verifies once more — pinning the drain path's flush-before-close
// ordering from a separate process, where a lost buffer cannot be
// papered over by shared memory.
package crashtorture

import (
	"bufio"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/go-citrus/citrus/citrusstat/promtext"
	"github.com/go-citrus/citrus/internal/torture"
)

// Config parameterizes one crash-torture run. The zero value is not
// runnable: Bin must point at a kvserver binary (BuildBinary compiles
// one) and Seed should be set for reproducibility.
type Config struct {
	Bin  string // kvserver binary to exec
	Dir  string // durable state dir; empty = fresh temp dir, removed on pass
	Seed uint64

	Rounds        int    // SIGKILL rounds before the graceful finale (default 4)
	Clients       int    // concurrent churn connections (default 4)
	KeysPerClient int    // disjoint key-partition size per client (default 128)
	Fsync         string // WAL fsync policy handed to the child (default group)
	Shards        int    // child -shards (0 = child default, unsharded)
	SnapshotEvery int    // child -snapshot-every (default 512; snapshots mid-torture)

	// MinKill/MaxKill bound the seeded churn window before SIGKILL
	// (defaults 300ms and 1200ms). The draw is per round, from the
	// run's seed, so a failing seed replays the same kill schedule.
	MinKill, MaxKill time.Duration

	Out io.Writer // optional progress log (nil = quiet)
}

func (c *Config) setDefaults() {
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.KeysPerClient <= 0 {
		c.KeysPerClient = 128
	}
	if c.Fsync == "" {
		c.Fsync = "group"
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 512
	}
	if c.MinKill <= 0 {
		c.MinKill = 300 * time.Millisecond
	}
	if c.MaxKill <= c.MinKill {
		c.MaxKill = c.MinKill + 900*time.Millisecond
	}
}

// expectDurable reports whether the configured fsync policy promises
// acked writes survive SIGKILL. none (alias nofsync) does not — it is
// the negative control, and lost-write failures are its PASS
// condition for the inverted CI step.
func (c *Config) expectDurable() bool {
	p := strings.ToLower(c.Fsync)
	return p != "none" && p != "nofsync"
}

// BuildBinary compiles ./examples/kvserver from the enclosing module
// into dir and returns the binary path. The harness runs the REAL
// server binary, not an in-process stand-in: recovery must work from
// cold in a fresh address space.
func BuildBinary(dir string) (string, error) {
	root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		return "", fmt.Errorf("locate module root: %w", err)
	}
	bin := filepath.Join(dir, "kvserver")
	cmd := exec.Command("go", "build", "-o", bin, "./examples/kvserver")
	cmd.Dir = strings.TrimSpace(string(root))
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("build kvserver: %w\n%s", err, out)
	}
	return bin, nil
}

// pendingOp is a write that was sent but never answered when the
// child died. opSet carries the value that would be resident if the
// write landed.
type pendingOp struct {
	set   bool
	value string
}

// keyState is the oracle's belief about one key. pending non-nil
// means the belief is ambiguous until the next observation.
type keyState struct {
	present bool
	value   string
	pending *pendingOp
}

// Run executes the full kill–recover–verify schedule and folds the
// outcome into a torture.Verdict (Impl "kvserver-crash", Flavor = the
// fsync policy) so `citrustorture -crash -json` reports crash runs in
// the same document as in-process runs.
func Run(cfg Config) (*torture.Verdict, error) {
	cfg.setDefaults()
	if cfg.Bin == "" {
		return nil, fmt.Errorf("crashtorture: Config.Bin is required (see BuildBinary)")
	}
	start := time.Now()
	v := &torture.Verdict{
		Seed:   cfg.Seed,
		Impl:   "kvserver-crash",
		Flavor: strings.ToLower(cfg.Fsync),
		Shards: cfg.Shards,
		Passed: true,
		PointHits: map[string]uint64{
			"sigkills": 0, "pending_resolved": 0, "recoveries_verified": 0,
		},
	}
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "crashtorture-*")
		if err != nil {
			return nil, err
		}
		dir = d
	}

	h := &harness{cfg: cfg, dir: dir, v: v}
	h.rng = rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9E3779B97F4A7C15))
	h.model = make(map[int64]*keyState)

	if err := h.runAll(); err != nil {
		// Infrastructure errors (build, exec, dial) are errors, not
		// verdict failures — the oracle never got to speak.
		return nil, err
	}
	v.ElapsedMS = time.Since(start).Milliseconds()
	if v.Passed && cfg.Dir == "" {
		os.RemoveAll(dir)
	} else if !v.Passed {
		v.Failures = append(v.Failures,
			fmt.Sprintf("durable state preserved for inspection in %s", dir))
	}
	return v, nil
}

// harness carries one run's mutable state across rounds.
type harness struct {
	cfg   Config
	dir   string
	v     *torture.Verdict
	rng   *rand.Rand
	model map[int64]*keyState // guarded by mu during churn
	mu    sync.Mutex
}

func (h *harness) logf(format string, args ...any) {
	if h.cfg.Out != nil {
		fmt.Fprintf(h.cfg.Out, "crashtorture: "+format+"\n", args...)
	}
}

func (h *harness) fail(format string, args ...any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.v.Passed = false
	if len(h.v.Failures) < 32 { // keep reports readable
		h.v.Failures = append(h.v.Failures, fmt.Sprintf(format, args...))
	}
}

func (h *harness) runAll() error {
	for round := 0; round < h.cfg.Rounds; round++ {
		child, err := h.startChild()
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		if round > 0 {
			h.verifyRecovery(child, round)
		}
		killAfter := h.cfg.MinKill +
			time.Duration(h.rng.Int64N(int64(h.cfg.MaxKill-h.cfg.MinKill)))
		h.churn(child, killAfter)
		h.logf("round %d: SIGKILL after %v churn (%d ops so far)", round, killAfter, h.v.Ops)
		if err := child.kill(); err != nil {
			return fmt.Errorf("round %d: kill: %w", round, err)
		}
		h.v.PointHits["sigkills"]++
		h.v.Rounds++
	}

	// Graceful finale: recover, verify, churn briefly, SIGTERM, and
	// demand a clean exit — then one last cold verify.
	child, err := h.startChild()
	if err != nil {
		return fmt.Errorf("finale: %w", err)
	}
	h.verifyRecovery(child, h.cfg.Rounds)
	h.churn(child, h.cfg.MinKill)
	if err := child.terminate(); err != nil {
		h.fail("graceful shutdown: %v", err)
	}
	h.v.Rounds++

	child, err = h.startChild()
	if err != nil {
		return fmt.Errorf("post-drain verify: %w", err)
	}
	h.verifyRecovery(child, h.cfg.Rounds+1)
	if err := child.terminate(); err != nil {
		h.fail("final shutdown: %v", err)
	}
	return nil
}

// startChild execs the kvserver binary against the run's WAL dir on
// ephemeral ports and waits until both faces are up.
func (h *harness) startChild() (*child, error) {
	args := []string{
		"-serve", "-demo=false",
		"-addr", "127.0.0.1:0", "-http", "127.0.0.1:0",
		"-wal-dir", h.dir,
		"-fsync", h.cfg.Fsync,
		"-snapshot-every", fmt.Sprint(h.cfg.SnapshotEvery),
	}
	if h.cfg.Shards > 0 {
		args = append(args, "-shards", fmt.Sprint(h.cfg.Shards))
	}
	c := &child{cmd: exec.Command(h.cfg.Bin, args...)}
	stderr, err := c.cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	c.cmd.Stdout = io.Discard
	if err := c.cmd.Start(); err != nil {
		return nil, err
	}
	addrc := make(chan string, 2)
	go c.scanStderr(stderr, addrc)

	deadline := time.After(30 * time.Second)
	for c.tcpAddr == "" || c.httpAddr == "" {
		select {
		case line := <-addrc:
			if addr, ok := strings.CutPrefix(line, "tcp "); ok {
				c.tcpAddr = addr
			} else if addr, ok := strings.CutPrefix(line, "http "); ok {
				c.httpAddr = addr
			}
		case <-deadline:
			c.kill() //nolint:errcheck // already failing
			return nil, fmt.Errorf("child did not announce its listeners; last stderr:\n%s", c.tail())
		}
	}
	// The TCP accept loop is up once the address is logged; one probe
	// round-trip confirms the protocol face answers.
	conn, err := net.DialTimeout("tcp", c.tcpAddr, 5*time.Second)
	if err != nil {
		c.kill() //nolint:errcheck
		return nil, fmt.Errorf("probe dial: %w", err)
	}
	conn.Close()
	return c, nil
}

// child is one incarnation of the kvserver process.
type child struct {
	cmd      *exec.Cmd
	tcpAddr  string
	httpAddr string

	mu    sync.Mutex
	lines []string // stderr ring for failure reports
}

// scanStderr parses the child's startup log for the bound addresses
// and keeps a short tail for diagnostics.
func (c *child) scanStderr(r io.Reader, addrc chan<- string) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		c.mu.Lock()
		if len(c.lines) >= 64 {
			c.lines = c.lines[1:]
		}
		c.lines = append(c.lines, line)
		c.mu.Unlock()
		if i := strings.Index(line, "kvserver listening on "); i >= 0 {
			addr := line[i+len("kvserver listening on "):]
			if j := strings.IndexByte(addr, ' '); j >= 0 {
				addr = addr[:j]
			}
			addrc <- "tcp " + addr
		}
		if i := strings.Index(line, "stats on http://"); i >= 0 {
			addr := line[i+len("stats on http://"):]
			if j := strings.IndexByte(addr, '/'); j >= 0 {
				addr = addr[:j]
			}
			addrc <- "http " + addr
		}
	}
}

func (c *child) tail() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return strings.Join(c.lines, "\n")
}

// kill SIGKILLs the child and reaps it. SIGKILL is the point: the
// child gets no signal handler, no defer, no flush.
func (c *child) kill() error {
	if err := c.cmd.Process.Kill(); err != nil {
		return err
	}
	c.cmd.Wait() //nolint:errcheck // "signal: killed" is the expected outcome
	return nil
}

// terminate asks for a graceful drain (SIGTERM) and demands exit 0
// within the drain budget — the drain path must flush and close the
// WAL, not abandon it.
func (c *child) terminate() error {
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- c.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("child exited non-zero after SIGTERM: %v; stderr tail:\n%s", err, c.tail())
		}
		return nil
	case <-time.After(30 * time.Second):
		c.cmd.Process.Kill() //nolint:errcheck
		return fmt.Errorf("child did not exit within 30s of SIGTERM; stderr tail:\n%s", c.tail())
	}
}

// conn is one churn client's protocol connection.
type conn struct {
	c  net.Conn
	rd *bufio.Reader
}

func dialKV(addr string) (*conn, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &conn{c: c, rd: bufio.NewReader(c)}, nil
}

// request sends one command line and reads the one-line reply. An
// error means the reply never arrived — the write's fate is unknown.
func (k *conn) request(line string) (string, error) {
	if _, err := fmt.Fprintf(k.c, "%s\n", line); err != nil {
		return "", err
	}
	reply, err := k.rd.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(reply), nil
}

func (k *conn) close() { k.c.Close() }

// churn drives Clients concurrent connections, each over its own
// disjoint key partition, for roughly killAfter. Each client loops:
// consult the model, send the opposite write (SET if absent, mostly
// DEL if present), mark the key pending, and resolve the pending mark
// from the acknowledgement. A connection error leaves the pending mark
// for verifyRecovery to resolve.
func (h *harness) churn(c *child, killAfter time.Duration) {
	stopc := make(chan struct{})
	time.AfterFunc(killAfter, func() { close(stopc) })
	var wg sync.WaitGroup
	for cl := 0; cl < h.cfg.Clients; cl++ {
		wg.Add(1)
		// Per-client deterministic draws: the stream depends only on
		// (seed, client), never on goroutine interleaving.
		rng := rand.New(rand.NewPCG(h.cfg.Seed, uint64(cl)+0xC17A05))
		go func(cl int, rng *rand.Rand) {
			defer wg.Done()
			h.churnClient(c, cl, rng, stopc)
		}(cl, rng)
	}
	wg.Wait()
}

func (h *harness) churnClient(c *child, cl int, rng *rand.Rand, stopc <-chan struct{}) {
	kv, err := dialKV(c.tcpAddr)
	if err != nil {
		h.fail("client %d: dial: %v", cl, err)
		return
	}
	defer kv.close()
	base := int64(cl) * 1_000_000
	for seq := 0; ; seq++ {
		select {
		case <-stopc:
			return
		default:
		}
		key := base + rng.Int64N(int64(h.cfg.KeysPerClient))
		h.mu.Lock()
		st := h.model[key]
		if st == nil {
			st = &keyState{}
			h.model[key] = st
		}
		if st.pending != nil {
			// Never stack ambiguity: a key with an unresolved in-flight
			// write sits out until the next recovery resolves it.
			h.mu.Unlock()
			continue
		}
		// SET is insert-if-absent by protocol, so the only effective
		// write on a present key is DEL and on an absent key is SET.
		doSet := !st.present
		val := fmt.Sprintf("c%d-s%d", cl, seq)
		st.pending = &pendingOp{set: doSet, value: val}
		h.mu.Unlock()

		var reply string
		if doSet {
			reply, err = kv.request(fmt.Sprintf("SET %d %s", key, val))
		} else {
			reply, err = kv.request(fmt.Sprintf("DEL %d", key))
		}
		if err != nil {
			return // child died mid-request: pending stays for the oracle
		}
		h.resolveReply(kv, key, st, doSet, val, reply)
	}
}

// resolveReply folds one acknowledged reply into the model.
func (h *harness) resolveReply(kv *conn, key int64, st *keyState, wasSet bool, val, reply string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.v.Ops++
	switch {
	case reply == "OK" && wasSet:
		st.present, st.value, st.pending = true, val, nil
	case reply == "OK": // DEL
		st.present, st.value, st.pending = false, "", nil
	case reply == "EXISTS" && wasSet:
		// The model said absent (churnClient only SETs absent keys), so
		// the server resurrected a key or lost a delete.
		h.v.Passed = false
		h.v.Failures = append(h.v.Failures,
			fmt.Sprintf("key %d: SET answered EXISTS but the oracle says the key was absent", key))
		st.present, st.pending = true, nil
	case reply == "NOT_FOUND" && !wasSet:
		h.v.Passed = false
		h.v.Failures = append(h.v.Failures,
			fmt.Sprintf("key %d: DEL answered NOT_FOUND but the oracle says the key was present", key))
		st.present, st.value, st.pending = false, "", nil
	case strings.HasPrefix(reply, "BUSY"):
		// Shed before reaching the tree: definitively not applied.
		st.pending = nil
	case strings.HasPrefix(reply, "TIMEOUT"):
		// The grace-period deadline fired before the delete took effect;
		// whether it eventually did is ambiguous. Resolve by observation
		// on the same connection (per-key order holds per connection).
		h.mu.Unlock()
		obs, err := kv.request(fmt.Sprintf("GET %d", key))
		h.mu.Lock()
		if err != nil {
			return // pending survives for the next recovery
		}
		st.present = strings.HasPrefix(obs, "VALUE")
		if st.present {
			st.value = strings.TrimPrefix(obs, "VALUE ")
		} else {
			st.value = ""
		}
		st.pending = nil
	default:
		h.v.Passed = false
		h.v.Failures = append(h.v.Failures,
			fmt.Sprintf("key %d: unexpected reply %q", key, reply))
		st.pending = nil
	}
}

// verifyRecovery is the oracle proper: after a restart, every key the
// run has ever touched is read back and compared against the model.
// Keys with a pending in-flight write accept either outcome and the
// model adopts what it observes; keys without one must match exactly —
// a mismatch is a lost acknowledged write (or a resurrection). It then
// scrapes /metrics.prom and demands the recovery announced itself.
func (h *harness) verifyRecovery(c *child, round int) {
	kv, err := dialKV(c.tcpAddr)
	if err != nil {
		h.fail("verify round %d: dial: %v", round, err)
		return
	}
	defer kv.close()

	h.mu.Lock()
	keys := make([]int64, 0, len(h.model))
	for k := range h.model {
		keys = append(keys, k)
	}
	h.mu.Unlock()

	lost, resurrected := 0, 0
	for _, key := range keys {
		obs, err := kv.request(fmt.Sprintf("GET %d", key))
		if err != nil {
			h.fail("verify round %d: GET %d: %v", round, key, err)
			return
		}
		obsPresent := strings.HasPrefix(obs, "VALUE")
		obsValue := strings.TrimPrefix(obs, "VALUE ")

		h.mu.Lock()
		st := h.model[key]
		switch {
		case st.pending != nil:
			// In-flight at the kill: either outcome is legal. Adopt the
			// observation; sanity-check a landed SET carries its value.
			p := st.pending
			if obsPresent && p.set && !st.present && obsValue != p.value {
				h.fail("key %d: in-flight SET landed with value %q, want %q", key, obsValue, p.value)
			}
			st.present, st.value, st.pending = obsPresent, obsValue, nil
			if !obsPresent {
				st.value = ""
			}
			h.v.PointHits["pending_resolved"]++
		case st.present && !obsPresent:
			lost++
			if lost <= 8 {
				h.failLocked("round %d: acknowledged key %d (value %q) LOST across crash", round, key, st.value)
			}
			st.present, st.value = false, ""
		case st.present && obsValue != st.value:
			h.failLocked("round %d: key %d recovered with value %q, want %q", round, key, obsValue, st.value)
			st.value = obsValue
		case !st.present && obsPresent:
			resurrected++
			if resurrected <= 8 {
				h.failLocked("round %d: deleted key %d RESURRECTED as %q across crash", round, key, obsValue)
			}
			st.present, st.value = true, obsValue
		}
		h.mu.Unlock()
	}
	if lost > 8 {
		h.fail("round %d: ... and %d more lost acknowledged keys", round, lost-8)
	}
	if resurrected > 8 {
		h.fail("round %d: ... and %d more resurrected keys", round, resurrected-8)
	}
	h.v.ReclaimChecks += int64(len(keys))
	h.v.PointHits["recoveries_verified"]++
	h.logf("round %d: verified %d keys (%d in-flight resolved, %d lost, %d resurrected)",
		round, len(keys), h.v.PointHits["pending_resolved"], lost, resurrected)

	h.checkMetrics(c, round)
}

// failLocked is fail for callers already holding h.mu.
func (h *harness) failLocked(format string, args ...any) {
	h.v.Passed = false
	if len(h.v.Failures) < 32 {
		h.v.Failures = append(h.v.Failures, fmt.Sprintf(format, args...))
	}
}

// checkMetrics scrapes the restarted child's /metrics.prom through
// the strict parser and requires the durability series.
func (h *harness) checkMetrics(c *child, round int) {
	resp, err := http.Get("http://" + c.httpAddr + "/metrics.prom")
	if err != nil {
		h.fail("verify round %d: scrape /metrics.prom: %v", round, err)
		return
	}
	defer resp.Body.Close()
	m, err := promtext.Parse(resp.Body)
	if err != nil {
		h.fail("verify round %d: /metrics.prom failed strict parse: %v", round, err)
		return
	}
	for _, name := range []string{
		"kvserver_wal_appends_total",
		"kvserver_wal_durable_lsn",
		"kvserver_recovery_records_replayed",
		"kvserver_recovery_seconds",
	} {
		if _, ok := m[name]; !ok {
			h.fail("verify round %d: restarted server's /metrics.prom lacks %s", round, name)
		}
	}
}
