package harness

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyBuckets is the number of power-of-two histogram buckets; bucket
// i counts samples in [2^i, 2^(i+1)) nanoseconds, which spans 1ns to
// ~4.6h — more than any dictionary operation.
const latencyBuckets = 44

// sampleShift subsamples latency measurements: timing every operation
// would roughly double the cost of a 100ns tree lookup and distort the
// experiment, so one in 2^sampleShift operations is timed.
const sampleShift = 6

// LatencyHist is a lock-free power-of-two histogram shared by all
// workers of a run.
type LatencyHist struct {
	counts [latencyBuckets]atomic.Int64
}

// Record adds one sample.
func (h *LatencyHist) Record(d time.Duration) {
	n := d.Nanoseconds()
	if n < 1 {
		n = 1
	}
	b := 63 - bits.LeadingZeros64(uint64(n))
	if b >= latencyBuckets {
		b = latencyBuckets - 1
	}
	h.counts[b].Add(1)
}

// Total reports the number of recorded samples.
func (h *LatencyHist) Total() int64 {
	var t int64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Percentile returns an upper bound for the p-th percentile (p in
// [0, 100]), at power-of-two resolution.
func (h *LatencyHist) Percentile(p float64) time.Duration {
	total := h.Total()
	if total == 0 {
		return 0
	}
	want := int64(p / 100 * float64(total))
	if want < 1 {
		want = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= want {
			return time.Duration(uint64(1) << uint(i+1)) // bucket upper edge
		}
	}
	return time.Duration(uint64(1) << latencyBuckets)
}

// Summary formats the standard percentiles.
func (h *LatencyHist) Summary() string {
	if h.Total() == 0 {
		return "no latency samples"
	}
	return fmt.Sprintf("p50≤%v p99≤%v p99.9≤%v (n=%d sampled)",
		h.Percentile(50), h.Percentile(99), h.Percentile(99.9), h.Total())
}
