package harness

import "github.com/go-citrus/citrus/citrusstat"

// LatencyHist is the lock-free power-of-two histogram shared by all
// workers of a run. It is the same implementation the library's runtime
// observability layer uses for grace-period waits (package citrusstat),
// so harness tables and live /metrics endpoints report through one code
// path.
type LatencyHist = citrusstat.Histogram

// sampleShift subsamples latency measurements: timing every operation
// would roughly double the cost of a 100ns tree lookup and distort the
// experiment, so one in 2^sampleShift operations is timed.
const sampleShift = 6
