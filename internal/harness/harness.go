// Package harness runs timed throughput experiments against dict.Map
// implementations, reproducing the methodology of the Citrus paper's §5:
// every worker runs for a fixed wall-clock duration, continuously
// executing randomly chosen operations on randomly chosen keys; the
// reported figure is overall throughput (total operations divided by
// running time), averaged over repetitions.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/internal/dict"
	"github.com/go-citrus/citrus/internal/impls"
	"github.com/go-citrus/citrus/internal/workload"
)

// MixFor assigns a mix to each worker; this generalizes the paper's two
// shapes: the uniform mixes of Figures 8 and 10, and Figure 9's single
// writer with N−1 pure readers.
type MixFor func(worker, totalWorkers int) workload.Mix

// Uniform gives every worker the same mix.
func Uniform(m workload.Mix) MixFor {
	return func(int, int) workload.Mix { return m }
}

// SingleWriter gives worker 0 the 50/50 update mix and everyone else pure
// contains (the paper's Figure 9 workload).
func SingleWriter() MixFor {
	return func(worker, _ int) workload.Mix {
		if worker == 0 {
			return workload.UpdateOnly()
		}
		return workload.ReadOnly()
	}
}

// Config describes one experiment cell.
type Config struct {
	Workers  int
	KeyRange int
	Mix      MixFor
	Duration time.Duration
	Seed     uint64  // base seed; worker w uses Seed+w
	Prefill  bool    // fill to KeyRange/2 before measuring (paper setup)
	Verify   bool    // run CheckInvariants after the measurement
	ZipfS    float64 // > 1: draw keys Zipf(s)-skewed instead of uniformly

	// ScanLen caps the span of OpScan range scans (mixes with ScanPct >
	// 0); spans are drawn Zipf(1.5)-skewed over [1, ScanLen] so short
	// pagination-style windows dominate with a heavy tail of wide
	// sweeps. 0 defaults to KeyRange/64 (at least 16). One scan counts
	// as one operation in Result.Ops regardless of its width; the pairs
	// it visited land in Result.ScanPairs.
	ScanLen int

	// MeasureLatency samples one in 2^sampleShift operations into
	// Result.Latency. The paper reports only throughput; latency
	// percentiles are an extension for tail analysis (e.g. the grace
	// period in Citrus's two-child delete is pure tail).
	MeasureLatency bool
}

// Result is the outcome of one run.
type Result struct {
	Ops       int64         // operations completed across all workers (scans count once each)
	ScanOps   int64         // range scans among Ops
	ScanPairs int64         // pairs emitted by those scans
	Elapsed   time.Duration // measured wall-clock time
	Workers   int
	Procs     int          // effective GOMAXPROCS while the cell ran
	FinalLen  int          // size after the run (0 if Verify is false)
	Latency   *LatencyHist // sampled per-op latency (nil unless measured)
}

// Throughput reports operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Run executes one experiment cell against a fresh map from factory.
func Run(factory dict.Factory[int, int], cfg Config) (Result, error) {
	if cfg.Workers <= 0 || cfg.KeyRange <= 1 {
		return Result{}, fmt.Errorf("harness: invalid config %+v", cfg)
	}
	m := factory()
	defer impls.CloseMap(m) // forests own reclaimer goroutines per shard
	if cfg.Prefill {
		workload.Prefill(m, cfg.KeyRange, int64(cfg.Seed))
	}

	scanLen := cfg.ScanLen
	if scanLen <= 0 {
		scanLen = cfg.KeyRange / 64
		if scanLen < 16 {
			scanLen = 16
		}
	}

	var (
		start      = make(chan struct{})
		stop       atomic.Bool
		total      atomic.Int64
		totalScans atomic.Int64
		totalPairs atomic.Int64
		wg         sync.WaitGroup
		hist       *LatencyHist
	)
	if cfg.MeasureLatency {
		hist = &LatencyHist{}
	}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := workload.NewRNG(cfg.Seed + uint64(w)*0x9E3779B97F4A7C15 + 1)
			mix := cfg.Mix(w, cfg.Workers)
			draw := func() int { return rng.Intn(cfg.KeyRange) }
			if cfg.ZipfS > 1 {
				z := workload.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.KeyRange-1))
				draw = func() int { return z.Intn(cfg.KeyRange) }
			}
			var lens *workload.ScanLens
			if mix.ScanPct > 0 {
				lens = workload.NewScanLens(rng, 1.5, scanLen)
			}
			scans, pairs := int64(0), int64(0)
			apply := func(kind workload.OpKind, key int) {
				if kind == workload.OpScan {
					pairs += int64(workload.ApplyScan(h, key, lens.Next()))
					scans++
					return
				}
				workload.ApplyOp(h, kind, key)
			}
			<-start
			ops := int64(0)
			// Check the stop flag every few operations: a per-op atomic
			// load is measurable noise at nanosecond op costs.
			for !stop.Load() {
				for i := 0; i < 32; i++ {
					kind, key := rng.NextOp(mix), draw()
					if hist != nil && uint64(ops+int64(i))&(1<<sampleShift-1) == 0 {
						begin := time.Now()
						apply(kind, key)
						hist.Record(time.Since(begin))
					} else {
						apply(kind, key)
					}
				}
				ops += 32
			}
			total.Add(ops)
			totalScans.Add(scans)
			totalPairs.Add(pairs)
		}(w)
	}

	begin := time.Now()
	close(start)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(begin)

	// Record the procs actually in effect, not whatever the report
	// header said once at startup: a sweep that resets GOMAXPROCS
	// between reps must label each data point with the value it ran
	// under.
	res := Result{
		Ops:       total.Load(),
		ScanOps:   totalScans.Load(),
		ScanPairs: totalPairs.Load(),
		Elapsed:   elapsed,
		Workers:   cfg.Workers,
		Procs:     runtime.GOMAXPROCS(0),
		Latency:   hist,
	}
	if cfg.Verify {
		if err := m.CheckInvariants(); err != nil {
			return res, fmt.Errorf("%s: post-run invariant violation: %w", m.Name(), err)
		}
		res.FinalLen = m.Len()
	}
	return res, nil
}

// RunAveraged repeats Run `reps` times and returns the arithmetic mean
// throughput, as in the paper ("each experiment was run five times ...
// we report the arithmetic average").
func RunAveraged(factory dict.Factory[int, int], cfg Config, reps int) (float64, error) {
	if reps <= 0 {
		reps = 1
	}
	sum := 0.0
	for i := 0; i < reps; i++ {
		cfg.Seed += uint64(i) * 7919
		res, err := Run(factory, cfg)
		if err != nil {
			return 0, err
		}
		sum += res.Throughput()
	}
	return sum / float64(reps), nil
}

// Cell is one point of a sweep: an implementation at a worker count,
// labeled with the conditions it actually ran under.
type Cell struct {
	Impl       string
	Workers    int
	Procs      int // effective GOMAXPROCS for this cell's runs
	Shards     int // forest shard count; 0 for unsharded implementations
	Throughput float64
}

// Sweep runs cfg at each worker count for each implementation and returns
// all cells in row-major order (implementations outer, workers inner).
func Sweep(series []impls.NamedFactory[int, int], workerCounts []int, cfg Config, reps int) ([]Cell, error) {
	var cells []Cell
	for _, im := range series {
		for _, w := range workerCounts {
			c := cfg
			c.Workers = w
			tp, err := RunAveraged(im.New, c, reps)
			if err != nil {
				return cells, fmt.Errorf("%s @ %d workers: %w", im.Name, w, err)
			}
			cells = append(cells, Cell{
				Impl:       im.Name,
				Workers:    w,
				Procs:      runtime.GOMAXPROCS(0),
				Throughput: tp,
			})
		}
	}
	return cells, nil
}
