package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/go-citrus/citrus/internal/impls"
	"github.com/go-citrus/citrus/internal/workload"
)

// The paper's key ranges (§5): [0, 2·10⁵] and [0, 2·10⁶].
const (
	KeyRangeSmall = 200_000
	KeyRangeLarge = 2_000_000
)

// DefaultWorkerCounts is the thread axis of every figure (1 to 64).
var DefaultWorkerCounts = []int{1, 2, 4, 8, 16, 32, 64}

// Figure describes one reproducible panel of the paper's evaluation, or
// one of this repo's extension panels (the s* scan figures).
type Figure struct {
	ID       string // e.g. "8", "9a", "10d", "s1"
	Caption  string
	KeyRange int
	Mix      MixFor
	MixName  string
	ScanLen  int // max range-scan span for mixes with scans (0 = harness default)
	Series   func() []impls.NamedFactory[int, int]
}

// Figures returns every panel of the paper's evaluation, keyed by panel
// id. Figure 8 compares the two RCU flavors under Citrus; Figure 9 is the
// single-writer workload; Figure 10 is the 2×3 grid of contains ratios ×
// key ranges.
func Figures() []Figure {
	fig8Series := func() []impls.NamedFactory[int, int] {
		return []impls.NamedFactory[int, int]{
			{Name: impls.NameCitrusClassic, New: impls.NewCitrusClassic[int, int]},
			{Name: impls.NameCitrus, New: impls.NewCitrus[int, int]},
		}
	}
	var figs []Figure
	figs = append(figs, Figure{
		ID:       "8",
		Caption:  "Impact of concurrent updates on the standard RCU implementation vs the paper's scalable one (50% contains, key range [0,2e5])",
		KeyRange: KeyRangeSmall,
		Mix:      Uniform(workload.ReadMostly(50)),
		MixName:  "50% contains",
		Series:   fig8Series,
	})
	for _, p := range []struct {
		id       string
		keyRange int
	}{{"9a", KeyRangeSmall}, {"9b", KeyRangeLarge}} {
		figs = append(figs, Figure{
			ID:       p.id,
			Caption:  fmt.Sprintf("Single writer (50%%i/50%%d), N−1 readers, key range [0,%.0e]", float64(p.keyRange)),
			KeyRange: p.keyRange,
			Mix:      SingleWriter(),
			MixName:  "single writer",
			Series:   impls.Figure[int, int],
		})
	}
	panels := []struct {
		id       string
		contains int
		keyRange int
	}{
		{"10a", 100, KeyRangeSmall},
		{"10b", 98, KeyRangeSmall},
		{"10c", 50, KeyRangeSmall},
		{"10d", 100, KeyRangeLarge},
		{"10e", 98, KeyRangeLarge},
		{"10f", 50, KeyRangeLarge},
	}
	for _, p := range panels {
		figs = append(figs, Figure{
			ID: p.id,
			Caption: fmt.Sprintf("%d%% contains, key range [0,%.0e]",
				p.contains, float64(p.keyRange)),
			KeyRange: p.keyRange,
			Mix:      Uniform(workload.ReadMostly(p.contains)),
			MixName:  fmt.Sprintf("%d%% contains", p.contains),
			Series:   impls.Figure[int, int],
		})
	}
	// The scan panels (extension beyond the paper): range scans as
	// first-class operations racing structural churn. s1 is the mixed
	// scan/update shape (scans paginate while updates restructure under
	// them); s2 is scan-dominated. Spans are Zipf(1.5)-skewed up to 512
	// keys. One scan counts as one operation, so the absolute ops/s of
	// these panels is not comparable to the point-op figures — the
	// comparison that matters is across series within the panel: the RCU
	// scan (one traversal per read-side section) vs Bonsai's path-copied
	// snapshot vs the lock-based and lock-free baselines.
	figs = append(figs, Figure{
		ID:       "s1",
		Caption:  "Range scans under churn: 30% scans (Zipf spans ≤ 512) / 70% updates, key range [0,2e5]",
		KeyRange: KeyRangeSmall,
		Mix:      Uniform(workload.ScanMixed(30)),
		MixName:  "30% scans",
		ScanLen:  512,
		Series:   impls.Figure[int, int],
	}, Figure{
		ID:       "s2",
		Caption:  "Scan-heavy: 90% scans (Zipf spans ≤ 512) / 10% updates, key range [0,2e5]",
		KeyRange: KeyRangeSmall,
		Mix:      Uniform(workload.ScanHeavy()),
		MixName:  "90% scans",
		ScanLen:  512,
		Series:   impls.Figure[int, int],
	})
	return figs
}

// FigureByID returns the panel with the given id, or false.
func FigureByID(id string) (Figure, bool) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// RunFigure sweeps one panel and returns its cells.
func (f Figure) Run(workerCounts []int, duration time.Duration, reps int, verify bool) ([]Cell, error) {
	cfg := Config{
		KeyRange: f.KeyRange,
		Mix:      f.Mix,
		Duration: duration,
		Seed:     0xC17125,
		Prefill:  true,
		Verify:   verify,
		ScanLen:  f.ScanLen,
	}
	return Sweep(f.Series(), workerCounts, cfg, reps)
}

// WriteTable renders cells as the paper-style table: one row per worker
// count, one column per implementation series.
func WriteTable(w io.Writer, cells []Cell) {
	var series []string
	seen := map[string]bool{}
	workerSet := map[int]bool{}
	tp := map[string]map[int]float64{}
	for _, c := range cells {
		if !seen[c.Impl] {
			seen[c.Impl] = true
			series = append(series, c.Impl)
			tp[c.Impl] = map[int]float64{}
		}
		workerSet[c.Workers] = true
		tp[c.Impl][c.Workers] = c.Throughput
	}
	var workers []int
	for n := range workerSet {
		workers = append(workers, n)
	}
	sort.Ints(workers)

	fmt.Fprintf(w, "%-8s", "threads")
	for _, s := range series {
		fmt.Fprintf(w, " %22s", s)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 8+23*len(series)))
	for _, n := range workers {
		fmt.Fprintf(w, "%-8d", n)
		for _, s := range series {
			fmt.Fprintf(w, " %22s", formatOps(tp[s][n]))
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV renders cells as "figure,impl,threads,procs,shards,ops_per_sec"
// rows — procs is the GOMAXPROCS each cell actually ran under, shards the
// forest shard count (0 for unsharded implementations).
func WriteCSV(w io.Writer, figID string, cells []Cell) {
	for _, c := range cells {
		fmt.Fprintf(w, "%s,%s,%d,%d,%d,%.0f\n", figID, c.Impl, c.Workers, c.Procs, c.Shards, c.Throughput)
	}
}

func formatOps(v float64) string {
	switch {
	case v == 0:
		return "-"
	case v >= 1e6:
		return fmt.Sprintf("%.2fM ops/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk ops/s", v/1e3)
	default:
		return fmt.Sprintf("%.0f ops/s", v)
	}
}
