package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestWriteTableGolden pins the exact table layout (the CLIs' contract
// with people who parse their output with awk).
func TestWriteTableGolden(t *testing.T) {
	cells := []Cell{
		{Impl: "Citrus", Workers: 1, Throughput: 2_580_000},
		{Impl: "Citrus", Workers: 64, Throughput: 990_000},
		{Impl: "Bonsai", Workers: 1, Throughput: 950},
		{Impl: "Bonsai", Workers: 64, Throughput: 12_400},
	}
	var b bytes.Buffer
	WriteTable(&b, cells)
	want := strings.Join([]string{
		"threads                  Citrus                 Bonsai",
		"------------------------------------------------------",
		"1                   2.58M ops/s              950 ops/s",
		"64                 990.0k ops/s            12.4k ops/s",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Fatalf("table changed:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteTableMissingCells(t *testing.T) {
	// A series missing a worker count renders "-", not a zero.
	cells := []Cell{
		{Impl: "A", Workers: 1, Throughput: 100},
		{Impl: "B", Workers: 2, Throughput: 200},
	}
	var b bytes.Buffer
	WriteTable(&b, cells)
	out := b.String()
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cells not rendered as '-':\n%s", out)
	}
}

func TestWriteCSVGolden(t *testing.T) {
	var b bytes.Buffer
	WriteCSV(&b, "10c", []Cell{
		{Impl: "AVL", Workers: 8, Procs: 4, Throughput: 1234567.89},
		{Impl: "Citrus Forest (8 shards)", Workers: 8, Procs: 1, Shards: 8, Throughput: 1000},
	})
	want := "10c,AVL,8,4,0,1234568\n" +
		"10c,Citrus Forest (8 shards),8,1,8,1000\n"
	if got := b.String(); got != want {
		t.Fatalf("CSV rows = %q, want %q", got, want)
	}
}
