package harness

import (
	"testing"
	"time"

	"github.com/go-citrus/citrus/internal/impls"
	"github.com/go-citrus/citrus/internal/workload"
)

func TestLatencyHistEmpty(t *testing.T) {
	var h LatencyHist
	if h.Total() != 0 {
		t.Fatal("empty histogram has samples")
	}
	if h.Percentile(99) != 0 {
		t.Fatal("empty histogram has a percentile")
	}
	if h.Summary() != "no latency samples" {
		t.Fatalf("Summary() = %q", h.Summary())
	}
}

func TestLatencyHistBucketing(t *testing.T) {
	var h LatencyHist
	// 1000 samples at ~100ns, 10 at ~1ms: p50 must land inside 100ns's
	// bucket [64ns, 128ns) (interpolated, see citrusstat), p99.9 inside
	// 1ms's bucket [524µs, 1.05ms].
	for i := 0; i < 1000; i++ {
		h.Record(100 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond)
	}
	if got := h.Total(); got != 1010 {
		t.Fatalf("Total() = %d", got)
	}
	if p50 := h.Percentile(50); p50 < 64*time.Nanosecond || p50 >= 128*time.Nanosecond {
		t.Fatalf("p50 = %v, want within [64ns, 128ns)", p50)
	}
	if p999 := h.Percentile(99.9); p999 < 524288*time.Nanosecond || p999 > 1048576*time.Nanosecond {
		t.Fatalf("p99.9 = %v, want within [524µs, 1.05ms]", p999)
	}
	if h.Percentile(100) < h.Percentile(50) {
		t.Fatal("percentiles not monotone")
	}
}

func TestLatencyHistExtremes(t *testing.T) {
	var h LatencyHist
	h.Record(0)              // clamps to 1ns bucket
	h.Record(10 * time.Hour) // clamps to the top bucket
	if h.Total() != 2 {
		t.Fatal("clamped samples lost")
	}
}

func TestRunWithLatencyMeasurement(t *testing.T) {
	cfg := quickConfig(2)
	cfg.MeasureLatency = true
	cfg.Duration = 50 * time.Millisecond
	res, err := Run(impls.NewCitrus[int, int], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency == nil || res.Latency.Total() == 0 {
		t.Fatal("no latency samples collected")
	}
	// Sampling is 1 in 2^sampleShift; allow generous slack.
	if got, expect := res.Latency.Total(), res.Ops>>sampleShift; got > expect*2 || got < expect/4 {
		t.Fatalf("sampled %d of %d ops, expected ≈%d", got, res.Ops, expect)
	}
	if res.Latency.Percentile(50) <= 0 {
		t.Fatal("p50 not positive")
	}
}

func TestRunWithZipfSkew(t *testing.T) {
	cfg := quickConfig(2)
	cfg.ZipfS = 1.2
	cfg.Duration = 30 * time.Millisecond
	res, err := Run(impls.NewCitrus[int, int], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops <= 0 {
		t.Fatal("no operations under skewed keys")
	}
}

func TestNoSyncFlavorAblationRuns(t *testing.T) {
	// The A3 ablation's factory (Citrus over a neutered-synchronize
	// flavor) must survive the harness churn; linearizability of contains
	// is knowingly sacrificed, structure must stay intact (Verify).
	factory := impls.AblationNoSyncCitrus
	cfg := quickConfig(4)
	cfg.Duration = 50 * time.Millisecond
	cfg.Mix = Uniform(workload.ReadMostly(20)) // update-heavy
	if _, err := Run(factory, cfg); err != nil {
		t.Fatal(err)
	}
}
