package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/go-citrus/citrus/internal/impls"
	"github.com/go-citrus/citrus/internal/workload"
)

func quickConfig(workers int) Config {
	return Config{
		Workers:  workers,
		KeyRange: 1024,
		Mix:      Uniform(workload.ReadMostly(50)),
		Duration: 30 * time.Millisecond,
		Seed:     1,
		Prefill:  true,
		Verify:   true,
	}
}

func TestRunProducesThroughput(t *testing.T) {
	for _, f := range impls.All[int, int]() {
		t.Run(f.Name, func(t *testing.T) {
			res, err := Run(f.New, quickConfig(4))
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops <= 0 {
				t.Fatalf("Ops = %d, want > 0", res.Ops)
			}
			if res.Throughput() <= 0 {
				t.Fatalf("Throughput = %f, want > 0", res.Throughput())
			}
		})
	}
}

func TestPrefillHalfFills(t *testing.T) {
	m := impls.NewCitrus[int, int]()
	workload.Prefill(m, 1000, 42)
	if got := m.Len(); got != 500 {
		t.Fatalf("prefilled Len() = %d, want 500", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleWriterMix(t *testing.T) {
	mf := SingleWriter()
	if m := mf(0, 8); m.ContainsPct != 0 || m.InsertPct != 50 || m.DeletePct != 50 {
		t.Fatalf("writer mix = %+v", m)
	}
	if m := mf(3, 8); m.ContainsPct != 100 {
		t.Fatalf("reader mix = %+v", m)
	}
}

func TestMixDistribution(t *testing.T) {
	mix := workload.ReadMostly(98)
	if !mix.Valid() {
		t.Fatalf("mix %+v does not sum to 100", mix)
	}
	rng := workload.NewRNG(7)
	counts := map[workload.OpKind]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[rng.NextOp(mix)]++
	}
	gotContains := float64(counts[workload.OpContains]) / n * 100
	if gotContains < 97.5 || gotContains > 98.5 {
		t.Fatalf("contains share = %.2f%%, want ≈98%%", gotContains)
	}
	if counts[workload.OpInsert] == 0 || counts[workload.OpDelete] == 0 {
		t.Fatal("no updates drawn from a 98% contains mix")
	}
}

func TestFiguresComplete(t *testing.T) {
	figs := Figures()
	want := []string{"8", "9a", "9b", "10a", "10b", "10c", "10d", "10e", "10f", "s1", "s2"}
	if len(figs) != len(want) {
		t.Fatalf("Figures() has %d panels, want %d", len(figs), len(want))
	}
	for i, id := range want {
		if figs[i].ID != id {
			t.Fatalf("panel %d = %s, want %s", i, figs[i].ID, id)
		}
		if _, ok := FigureByID(id); !ok {
			t.Fatalf("FigureByID(%s) not found", id)
		}
	}
	// Figure 8 carries the two RCU flavors; figure 10 panels carry the six
	// dictionaries.
	if s := figs[0].Series(); len(s) != 2 {
		t.Fatalf("figure 8 has %d series, want 2", len(s))
	}
	if s := figs[3].Series(); len(s) != 6 {
		t.Fatalf("figure 10a has %d series, want 6", len(s))
	}
}

func TestFigureRunQuick(t *testing.T) {
	f, ok := FigureByID("8")
	if !ok {
		t.Fatal("figure 8 missing")
	}
	f.KeyRange = 512 // shrink for test speed; prefill is half of this
	cells, err := f.Run([]int{1, 2}, 20*time.Millisecond, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4 (2 series × 2 worker counts)", len(cells))
	}
	var table, csv bytes.Buffer
	WriteTable(&table, cells)
	WriteCSV(&csv, f.ID, cells)
	out := table.String()
	if !strings.Contains(out, "threads") || !strings.Contains(out, impls.NameCitrus) {
		t.Fatalf("table missing headers:\n%s", out)
	}
	if got := strings.Count(csv.String(), "\n"); got != 4 {
		t.Fatalf("CSV has %d rows, want 4", got)
	}
}

func TestSweepOrdering(t *testing.T) {
	series := []impls.NamedFactory[int, int]{
		{Name: impls.NameCitrus, New: impls.NewCitrus[int, int]},
		{Name: impls.NameSkiplist, New: impls.NewSkiplist[int, int]},
	}
	cfg := quickConfig(0)
	cfg.Duration = 10 * time.Millisecond
	cells, err := Sweep(series, []int{1, 2}, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []struct {
		impl    string
		workers int
	}{
		{impls.NameCitrus, 1}, {impls.NameCitrus, 2},
		{impls.NameSkiplist, 1}, {impls.NameSkiplist, 2},
	}
	for i, w := range wantOrder {
		if cells[i].Impl != w.impl || cells[i].Workers != w.workers {
			t.Fatalf("cell %d = %+v, want %+v", i, cells[i], w)
		}
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := Run(impls.NewCitrus[int, int], Config{}); err == nil {
		t.Fatal("Run accepted a zero config")
	}
}

// TestRunScanMix: a scan-bearing mix produces scan work, counts scans
// into Ops, and keeps the structure coherent.
func TestRunScanMix(t *testing.T) {
	res, err := Run(impls.NewCitrus[int, int], Config{
		Workers:  2,
		KeyRange: 4096,
		Mix:      Uniform(workload.ScanMixed(30)),
		Duration: 100 * time.Millisecond,
		Seed:     11,
		Prefill:  true,
		Verify:   true,
		ScanLen:  128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScanOps == 0 {
		t.Fatal("no scans executed under a 30% scan mix")
	}
	if res.ScanPairs == 0 {
		t.Fatal("scans over a prefilled structure visited no pairs")
	}
	if res.ScanOps > res.Ops {
		t.Fatalf("ScanOps %d exceeds Ops %d", res.ScanOps, res.Ops)
	}
}

// TestScanFigureQuick: the s1 panel runs end to end at toy scale and
// carries all six series.
func TestScanFigureQuick(t *testing.T) {
	f, ok := FigureByID("s1")
	if !ok {
		t.Fatal("figure s1 missing")
	}
	if len(f.Series()) != 6 {
		t.Fatalf("s1 has %d series, want 6", len(f.Series()))
	}
	f.KeyRange = 2048
	cells, err := f.Run([]int{2}, 50*time.Millisecond, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("s1 produced %d cells, want 6", len(cells))
	}
	for _, c := range cells {
		if c.Throughput <= 0 {
			t.Fatalf("%s: zero throughput", c.Impl)
		}
	}
}
