package dicttest

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/go-citrus/citrus/internal/dict"
)

// Scan conformance: every implementation's RangeScan/Scan/Snapshot must
// honor the dict.Handle contract — ascending strict order, no
// duplicates, half-open [lo, hi) bounds, early stop, and (under churn)
// the weak consistency guarantees: no key invented, no permanently
// present key missed. Snapshot-consistent implementations additionally
// must serve a view that concurrent updates cannot perturb.

// testScanBounds checks half-open bound semantics and ordering against
// a sequential oracle over an awkwardly-gapped key set.
func testScanBounds(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	h := m.NewHandle()
	defer h.Close()
	keys := []int{2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	for _, k := range keys {
		h.Insert(k, k*10)
	}
	for _, tc := range []struct{ lo, hi int }{
		{0, 200},   // superset
		{2, 145},   // exact cover
		{2, 144},   // hi exclusive cuts the max
		{3, 89},    // both bounds are present keys; hi excluded
		{4, 89},    // lo between keys
		{5, 6},     // single key
		{6, 8},     // lo absent, one key
		{8, 8},     // empty range, bound present
		{10, 4},    // inverted: must be empty
		{-50, 2},   // below everything, hi cuts at first key
		{145, 500}, // above everything
	} {
		var want []int
		for _, k := range keys {
			if k >= tc.lo && k < tc.hi {
				want = append(want, k)
			}
		}
		var got []int
		h.RangeScan(tc.lo, tc.hi, func(k, v int) bool {
			if v != k*10 {
				t.Fatalf("RangeScan[%d,%d) returned (%d,%d); value for %d is %d", tc.lo, tc.hi, k, v, k, k*10)
			}
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("RangeScan[%d,%d) = %v, want %v", tc.lo, tc.hi, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("RangeScan[%d,%d) = %v, want %v", tc.lo, tc.hi, got, want)
			}
		}
	}
	// Unbounded Scan covers everything in order.
	var all []int
	h.Scan(func(k, _ int) bool { all = append(all, k); return true })
	if len(all) != len(keys) {
		t.Fatalf("Scan = %v, want %v", all, keys)
	}
	for i := range all {
		if all[i] != keys[i] {
			t.Fatalf("Scan = %v, want %v", all, keys)
		}
	}
	// Empty structure: no callbacks.
	empty := factory()
	eh := empty.NewHandle()
	defer eh.Close()
	eh.Scan(func(int, int) bool { t.Fatal("Scan on empty map emitted a pair"); return false })
	eh.RangeScan(-100, 100, func(int, int) bool {
		t.Fatal("RangeScan on empty map emitted a pair")
		return false
	})
}

// testScanEarlyStop verifies fn returning false halts the scan exactly
// there, for every possible stopping point.
func testScanEarlyStop(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	h := m.NewHandle()
	defer h.Close()
	const n = 40
	for k := 0; k < n; k++ {
		h.Insert(k, k)
	}
	for stopAfter := 0; stopAfter <= n; stopAfter++ {
		seen := 0
		h.Scan(func(k, _ int) bool {
			if k != seen {
				t.Fatalf("stop-at-%d scan emitted %d at position %d", stopAfter, k, seen)
			}
			seen++
			return seen < stopAfter
		})
		want := stopAfter
		if want == 0 {
			want = 1 // the first emission is what returns false
		}
		if want > n {
			want = n
		}
		if seen != want {
			t.Fatalf("scan stopped after %d pairs, want %d", seen, want)
		}
	}
}

// testKeysEqualsScan pins the Keys()-is-a-scan equivalence: after a
// churny (but quiesced) history, Keys(), an unbounded Scan, and a
// RangeScan over the full range must return identical key sequences.
func testKeysEqualsScan(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	h := m.NewHandle()
	defer h.Close()
	rng := rand.New(rand.NewSource(7))
	const keyRange = 120
	for i := 0; i < 4000; i++ {
		k := rng.Intn(keyRange)
		if rng.Intn(3) == 0 {
			h.Delete(k)
		} else {
			h.Insert(k, k)
		}
	}
	keys := m.Keys()
	var scanned, ranged []int
	h.Scan(func(k, _ int) bool { scanned = append(scanned, k); return true })
	h.RangeScan(-1, keyRange+1, func(k, _ int) bool { ranged = append(ranged, k); return true })
	if len(keys) != len(scanned) || len(keys) != len(ranged) {
		t.Fatalf("Keys %d, Scan %d, RangeScan %d pairs", len(keys), len(scanned), len(ranged))
	}
	for i := range keys {
		if keys[i] != scanned[i] || keys[i] != ranged[i] {
			t.Fatalf("position %d: Keys %d, Scan %d, RangeScan %d", i, keys[i], scanned[i], ranged[i])
		}
	}
}

// testScanDuringChurn runs scanners against writers churning a disjoint
// key set: permanent keys (even) must appear in every scan that covers
// them, emissions must ascend strictly within bounds, and no scan may
// invent a key nobody inserted. This is the weak consistency contract
// every implementation promises, checked structurally.
func testScanDuringChurn(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	const keyRange = 96 // even keys permanent, odd keys churn
	{
		h := m.NewHandle()
		for k := 0; k < keyRange; k++ {
			h.Insert(k, k*3+1)
		}
		h.Close()
	}
	stop := make(chan struct{})
	var missing, unsorted, outOfBounds, phantom, badValue atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // writers on odd keys
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keyRange/2)*2 + 1
				if rng.Intn(2) == 0 {
					h.Delete(k)
				} else {
					h.Insert(k, k*3+1)
				}
			}
		}(int64(i))
	}
	for i := 0; i < 2; i++ { // scanners
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(1000 + seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := rng.Intn(keyRange)
				hi := lo + 1 + rng.Intn(keyRange-lo)
				prev := -1
				seen := map[int]bool{}
				h.RangeScan(lo, hi, func(k, v int) bool {
					if k < lo || k >= hi {
						outOfBounds.Add(1)
					}
					if k <= prev {
						unsorted.Add(1)
					}
					prev = k
					if k < 0 || k >= keyRange {
						phantom.Add(1)
					} else if v != k*3+1 {
						badValue.Add(1)
					}
					seen[k] = true
					return true
				})
				for k := lo; k < hi; k += 1 {
					if k%2 == 0 && k >= 0 && k < keyRange && !seen[k] {
						missing.Add(1)
					}
				}
			}
		}(int64(i))
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := missing.Load(); n != 0 {
		t.Errorf("%d permanent keys missing from scans that covered them", n)
	}
	if n := unsorted.Load(); n != 0 {
		t.Errorf("%d emissions out of order or duplicated", n)
	}
	if n := outOfBounds.Load(); n != 0 {
		t.Errorf("%d emissions outside the requested bounds", n)
	}
	if n := phantom.Load(); n != 0 {
		t.Errorf("%d emissions of keys nobody ever inserted", n)
	}
	if n := badValue.Load(); n != 0 {
		t.Errorf("%d emissions with a value never stored for their key", n)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// testSnapshot checks the Snapshot contract. All implementations: the
// view honors bounds/order/early-stop and is coherent with the
// structure at capture when quiescent. Snapshot-consistent
// implementations additionally: the captured view is immune to updates
// applied after capture.
func testSnapshot(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	h := m.NewHandle()
	defer h.Close()
	const n = 50
	for k := 0; k < n; k++ {
		h.Insert(k, k+100)
	}
	snap := h.Snapshot()
	defer snap.Close()
	cons := snap.Consistency()
	if cons != dict.SnapshotConsistent && cons != dict.WeaklyConsistent {
		t.Fatalf("Snapshot().Consistency() = %v, not a known class", cons)
	}

	readAll := func(s dict.Snapshot[int, int]) []int {
		var ks []int
		prev := -1
		s.All(func(k, v int) bool {
			if k <= prev {
				t.Fatalf("snapshot All emitted %d after %d", k, prev)
			}
			prev = k
			if v != k+100 && cons == dict.SnapshotConsistent {
				t.Fatalf("snapshot value for %d = %d, want %d", k, v, k+100)
			}
			ks = append(ks, k)
			return true
		})
		return ks
	}
	if got := readAll(snap); len(got) != n {
		t.Fatalf("quiescent snapshot has %d keys, want %d", len(got), n)
	}
	// Bounds and early stop on the view.
	var ranged []int
	snap.Range(10, 20, func(k, _ int) bool { ranged = append(ranged, k); return true })
	if len(ranged) != 10 || ranged[0] != 10 || ranged[9] != 19 {
		t.Fatalf("snapshot Range[10,20) = %v", ranged)
	}
	count := 0
	snap.Range(0, n, func(int, int) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("snapshot Range early stop: emitted %d, want 5", count)
	}

	if cons == dict.SnapshotConsistent {
		// Mutate AFTER capture: the view must not move.
		h.Delete(0)
		h.Insert(n+10, 1)
		h.Delete(25)
		if got := readAll(snap); len(got) != n || got[0] != 0 {
			t.Fatalf("snapshot-consistent view changed under updates: %d keys, first %v", len(got), got)
		}
		found := false
		snap.Range(25, 26, func(k, _ int) bool { found = k == 25; return true })
		if !found {
			t.Fatal("snapshot-consistent view lost key 25 deleted after capture")
		}
	}

	// A snapshot taken during churn must still be internally ordered and
	// must include every permanently present key (weak or strong).
	m2 := factory()
	{
		hh := m2.NewHandle()
		for k := 0; k < n; k++ {
			hh.Insert(k*2, k) // even keys permanent
		}
		hh.Close()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hh := m2.NewHandle()
		defer hh.Close()
		rng := rand.New(rand.NewSource(3))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := rng.Intn(n)*2 + 1
			if rng.Intn(2) == 0 {
				hh.Insert(k, k)
			} else {
				hh.Delete(k)
			}
		}
	}()
	hh := m2.NewHandle()
	for round := 0; round < 20; round++ {
		s := hh.Snapshot()
		prev := -1
		seen := map[int]bool{}
		s.All(func(k, _ int) bool {
			if k <= prev {
				t.Errorf("churn snapshot emitted %d after %d", k, prev)
			}
			prev = k
			seen[k] = true
			return true
		})
		s.Close()
		for k := 0; k < n; k++ {
			if !seen[k*2] {
				t.Errorf("churn snapshot missed permanent key %d", k*2)
			}
		}
		if t.Failed() {
			break
		}
	}
	hh.Close()
	close(stop)
	wg.Wait()
}
