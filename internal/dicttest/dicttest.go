// Package dicttest is a reusable conformance, property and stress test
// kit for dict.Map implementations. Every search structure in this
// repository is subjected to the same battery (see internal/impls's
// tests), so an algorithm-specific bug cannot hide behind a weaker
// structure-specific test file.
package dicttest

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"github.com/go-citrus/citrus/internal/dict"
)

// RunAll runs the full battery against the factory.
func RunAll(t *testing.T, factory dict.Factory[int, int]) {
	t.Helper()
	t.Run("Empty", func(t *testing.T) { testEmpty(t, factory) })
	t.Run("BasicSemantics", func(t *testing.T) { testBasicSemantics(t, factory) })
	t.Run("DeleteShapes", func(t *testing.T) { testDeleteShapes(t, factory) })
	t.Run("SequentialOracle", func(t *testing.T) { testSequentialOracle(t, factory) })
	t.Run("QuickProperty", func(t *testing.T) { testQuickProperty(t, factory) })
	t.Run("AscendingDescending", func(t *testing.T) { testAscendingDescending(t, factory) })
	t.Run("PartitionedWriters", func(t *testing.T) { testPartitionedWriters(t, factory) })
	t.Run("MixedChurn", func(t *testing.T) { testMixedChurn(t, factory) })
	t.Run("NoFalseNegatives", func(t *testing.T) { testNoFalseNegatives(t, factory) })
	t.Run("InsertDeleteRace", func(t *testing.T) { testInsertDeleteRace(t, factory) })
	t.Run("PhasedInvariants", func(t *testing.T) { testPhasedInvariants(t, factory) })
	t.Run("ValueIntegrity", func(t *testing.T) { testValueIntegrity(t, factory) })
	t.Run("HandleChurn", func(t *testing.T) { testHandleChurn(t, factory) })
	t.Run("ScanBounds", func(t *testing.T) { testScanBounds(t, factory) })
	t.Run("ScanEarlyStop", func(t *testing.T) { testScanEarlyStop(t, factory) })
	t.Run("KeysEqualsScan", func(t *testing.T) { testKeysEqualsScan(t, factory) })
	t.Run("ScanDuringChurn", func(t *testing.T) { testScanDuringChurn(t, factory) })
	t.Run("Snapshot", func(t *testing.T) { testSnapshot(t, factory) })
}

// testHandleChurn registers and unregisters handles continuously while
// other goroutines operate: for RCU-based structures this exercises the
// reader-registry copy-on-write racing Synchronize, a path no
// steady-state workload touches.
func testHandleChurn(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	{
		h := m.NewHandle()
		for k := 0; k < 64; k++ {
			h.Insert(k, k)
		}
		h.Close()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Steady workers keep updates (and grace periods) flowing.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(64)
				if rng.Intn(2) == 0 {
					h.Delete(k | 1)
				} else {
					h.Insert(k|1, k)
				}
			}
		}(int64(i))
	}
	// Churners: short-lived handles, a few ops each.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				h := m.NewHandle()
				for j := 0; j < 4; j++ {
					if _, ok := h.Contains(rng.Intn(32) * 2); !ok {
						t.Errorf("short-lived handle missed a permanent key")
						h.Close()
						return
					}
				}
				h.Close()
			}
		}(int64(i))
	}
	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// testPhasedInvariants checks structural invariants at many intermediate
// quiescent points of one long history, not just at the end: each round
// churns concurrently, joins, and validates. A corruption that a later
// round would accidentally repair cannot hide.
func testPhasedInvariants(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	const (
		rounds     = 12
		goroutines = 6
		opsEach    = 400
		keyRange   = 40
	)
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				h := m.NewHandle()
				defer h.Close()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsEach; i++ {
					k := rng.Intn(keyRange)
					switch rng.Intn(3) {
					case 0:
						h.Insert(k, k)
					case 1:
						h.Delete(k)
					default:
						h.Contains(k)
					}
				}
			}(int64(r*100 + g))
		}
		wg.Wait()
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		keys := m.Keys()
		if got := m.Len(); got != len(keys) {
			t.Fatalf("round %d: Len() = %d but Keys() has %d", r, got, len(keys))
		}
	}
}

// testValueIntegrity: every value returned by a concurrent Contains must
// be one that some insert actually stored *for that key* — returning a
// neighbouring key's value (as a torn read or a misrouted search would)
// is a correctness bug even when membership is right. Writers always
// store key*3+1, so any other value convicts.
func testValueIntegrity(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	const keyRange = 32
	{
		h := m.NewHandle()
		for k := 0; k < keyRange; k++ {
			h.Insert(k, k*3+1)
		}
		h.Close()
	}
	stop := make(chan struct{})
	var bad atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keyRange)
				if v, ok := h.Contains(k); ok && v != k*3+1 {
					bad.Add(1)
				}
			}
		}(int64(i))
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(50 + seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keyRange)
				if rng.Intn(2) == 0 {
					h.Delete(k)
				} else {
					h.Insert(k, k*3+1)
				}
			}
		}(int64(i))
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d Contains calls returned a value never stored for their key", n)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func testEmpty(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	h := m.NewHandle()
	defer h.Close()
	if _, ok := h.Contains(7); ok {
		t.Fatal("Contains on empty map = true")
	}
	if h.Delete(7) {
		t.Fatal("Delete on empty map = true")
	}
	if got := m.Len(); got != 0 {
		t.Fatalf("Len() = %d, want 0", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func testBasicSemantics(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	h := m.NewHandle()
	defer h.Close()
	if !h.Insert(5, 50) {
		t.Fatal("Insert(5) = false on empty map")
	}
	if h.Insert(5, 51) {
		t.Fatal("duplicate Insert(5) = true")
	}
	if v, ok := h.Contains(5); !ok || v != 50 {
		t.Fatalf("Contains(5) = (%d, %v), want (50, true); duplicate insert must not overwrite", v, ok)
	}
	if !h.Delete(5) || h.Delete(5) {
		t.Fatal("Delete semantics broken")
	}
	// Reinsert after delete must see the new value.
	if !h.Insert(5, 52) {
		t.Fatal("reinsert after delete = false")
	}
	if v, _ := h.Contains(5); v != 52 {
		t.Fatalf("Contains(5) after reinsert = %d, want 52", v)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func testDeleteShapes(t *testing.T, factory dict.Factory[int, int]) {
	shapes := [][]int{
		{50},
		{50, 30},
		{50, 70},
		{50, 30, 70},
		{50, 30, 20},
		{50, 30, 40},
		{50, 30, 70, 60, 80},
		{50, 30, 80, 60, 70, 55},
		{50, 30, 80, 60, 55, 57},
		{50, 25, 75, 60, 90, 55, 65},
	}
	for _, keys := range shapes {
		for _, del := range keys {
			m := factory()
			h := m.NewHandle()
			for _, k := range keys {
				if !h.Insert(k, k*10) {
					t.Fatalf("shape %v: Insert(%d) = false", keys, k)
				}
			}
			if !h.Delete(del) {
				t.Fatalf("shape %v: Delete(%d) = false", keys, del)
			}
			for _, k := range keys {
				v, ok := h.Contains(k)
				if k == del {
					if ok {
						t.Fatalf("shape %v: deleted key %d still present", keys, del)
					}
					continue
				}
				if !ok || v != k*10 {
					t.Fatalf("shape %v after Delete(%d): Contains(%d) = (%d, %v)", keys, del, k, v, ok)
				}
			}
			if got, want := m.Len(), len(keys)-1; got != want {
				t.Fatalf("shape %v: Len() = %d, want %d", keys, got, want)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("shape %v after Delete(%d): %v", keys, del, err)
			}
			h.Close()
		}
	}
}

func testSequentialOracle(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	h := m.NewHandle()
	defer h.Close()
	oracle := map[int]int{}
	rng := rand.New(rand.NewSource(42))
	const keyRange = 150
	for i := 0; i < 15000; i++ {
		k := rng.Intn(keyRange)
		switch rng.Intn(3) {
		case 0:
			_, present := oracle[k]
			if got := h.Insert(k, i); got == present {
				t.Fatalf("op %d: Insert(%d) = %v, present=%v", i, k, got, present)
			}
			if !present {
				oracle[k] = i
			}
		case 1:
			_, present := oracle[k]
			if got := h.Delete(k); got != present {
				t.Fatalf("op %d: Delete(%d) = %v, present=%v", i, k, got, present)
			}
			delete(oracle, k)
		default:
			wantV, wantOK := oracle[k]
			gotV, gotOK := h.Contains(k)
			if gotOK != wantOK || (wantOK && gotV != wantV) {
				t.Fatalf("op %d: Contains(%d) = (%d, %v), want (%d, %v)", i, k, gotV, gotOK, wantV, wantOK)
			}
		}
	}
	if got, want := m.Len(), len(oracle); got != want {
		t.Fatalf("Len() = %d, oracle %d", got, want)
	}
	keys := m.Keys()
	if len(keys) != len(oracle) {
		t.Fatalf("Keys() returned %d keys, oracle %d", len(keys), len(oracle))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys() not strictly ascending at %d: %v", i, keys[max(0, i-2):min(len(keys), i+2)])
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// testQuickProperty uses testing/quick to generate random operation
// scripts and checks each against a map oracle, including final contents.
func testQuickProperty(t *testing.T, factory dict.Factory[int, int]) {
	type op struct {
		Kind uint8
		Key  uint8 // small key space provokes structural cases
	}
	property := func(script []op) bool {
		m := factory()
		h := m.NewHandle()
		defer h.Close()
		oracle := map[int]int{}
		for i, o := range script {
			k := int(o.Key)
			switch o.Kind % 3 {
			case 0:
				_, present := oracle[k]
				if h.Insert(k, i) == present {
					return false
				}
				if !present {
					oracle[k] = i
				}
			case 1:
				_, present := oracle[k]
				if h.Delete(k) != present {
					return false
				}
				delete(oracle, k)
			default:
				wantV, wantOK := oracle[k]
				gotV, gotOK := h.Contains(k)
				if gotOK != wantOK || (wantOK && gotV != wantV) {
					return false
				}
			}
		}
		if m.Len() != len(oracle) {
			return false
		}
		for _, k := range m.Keys() {
			if _, ok := oracle[k]; !ok {
				return false
			}
		}
		return m.CheckInvariants() == nil
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(values []reflect.Value, rng *rand.Rand) {
			n := 50 + rng.Intn(400)
			script := make([]op, n)
			for i := range script {
				script[i] = op{Kind: uint8(rng.Intn(3)), Key: uint8(rng.Intn(40))}
			}
			values[0] = reflect.ValueOf(script)
		},
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func testAscendingDescending(t *testing.T, factory dict.Factory[int, int]) {
	for _, tc := range []struct {
		name string
		key  func(i int) int
	}{
		{"ascending", func(i int) int { return i }},
		{"descending", func(i int) int { return 2000 - i }},
	} {
		m := factory()
		h := m.NewHandle()
		const n = 800
		for i := 0; i < n; i++ {
			if !h.Insert(tc.key(i), i) {
				t.Fatalf("%s: Insert(%d) = false", tc.name, tc.key(i))
			}
		}
		if got := m.Len(); got != n {
			t.Fatalf("%s: Len() = %d, want %d", tc.name, got, n)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := 0; i < n; i += 2 {
			if !h.Delete(tc.key(i)) {
				t.Fatalf("%s: Delete(%d) = false", tc.name, tc.key(i))
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("%s after deletes: %v", tc.name, err)
		}
		h.Close()
	}
}

func testPartitionedWriters(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	const (
		writers = 8
		perPart = 200
		rounds  = 3
	)
	var wg sync.WaitGroup
	for p := 0; p < writers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			base := p * perPart
			for r := 0; r < rounds; r++ {
				for k := base; k < base+perPart; k++ {
					if !h.Insert(k, k+r) {
						t.Errorf("writer %d: Insert(%d) = false in round %d", p, k, r)
						return
					}
				}
				for k := base; k < base+perPart; k++ {
					if r == rounds-1 && k%3 == 0 {
						continue
					}
					if !h.Delete(k) {
						t.Errorf("writer %d: Delete(%d) = false in round %d", p, k, r)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	h := m.NewHandle()
	defer h.Close()
	want := 0
	for k := 0; k < writers*perPart; k++ {
		_, ok := h.Contains(k)
		if k%3 == 0 {
			want++
			if !ok {
				t.Fatalf("key %d should have survived", k)
			}
		} else if ok {
			t.Fatalf("key %d should be gone", k)
		}
	}
	if got := m.Len(); got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
}

func testMixedChurn(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	const (
		goroutines = 8
		opsEach    = 3000
		keyRange   = 48
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				k := rng.Intn(keyRange)
				switch rng.Intn(3) {
				case 0:
					h.Insert(k, k)
				case 1:
					h.Delete(k)
				default:
					h.Contains(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Quiescent membership must agree between Keys() and Contains().
	h := m.NewHandle()
	defer h.Close()
	inKeys := map[int]bool{}
	for _, k := range m.Keys() {
		inKeys[k] = true
	}
	for k := 0; k < keyRange; k++ {
		if _, ok := h.Contains(k); ok != inKeys[k] {
			t.Fatalf("Contains(%d) = %v but Keys() says %v", k, ok, inKeys[k])
		}
	}
}

// testNoFalseNegatives checks the guarantee motivating Citrus's use of
// RCU: keys present for the whole run are found by every single Contains,
// no matter how much the structure churns around them.
func testNoFalseNegatives(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	const n = 300
	{
		h := m.NewHandle()
		for k := 0; k < n; k++ {
			h.Insert(k, k)
		}
		h.Close()
	}
	perm := make([]int, 0, n/2)
	for k := 0; k < n; k += 2 {
		perm = append(perm, k)
	}

	stop := make(chan struct{})
	var violations atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := perm[rng.Intn(len(perm))]
				if v, ok := h.Contains(k); !ok || v != k {
					violations.Add(1)
				}
			}
		}(int64(i))
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(100 + seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(n/2)*2 + 1
				if rng.Intn(2) == 0 {
					h.Delete(k)
				} else {
					h.Insert(k, k)
				}
			}
		}(int64(i))
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d false negatives on permanently present keys", v)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// testInsertDeleteRace hammers a single key from many goroutines; the
// number of successful inserts must exceed successful deletes by exactly
// 0 or 1 (depending on the final state), which catches double-deletes and
// lost inserts.
func testInsertDeleteRace(t *testing.T, factory dict.Factory[int, int]) {
	m := factory()
	const (
		goroutines = 8
		opsEach    = 2000
		key        = 7
	)
	var inserts, deletes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				if rng.Intn(2) == 0 {
					if h.Insert(key, i) {
						inserts.Add(1)
					}
				} else if h.Delete(key) {
					deletes.Add(1)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	h := m.NewHandle()
	defer h.Close()
	_, present := h.Contains(key)
	diff := inserts.Load() - deletes.Load()
	want := int64(0)
	if present {
		want = 1
	}
	if diff != want {
		t.Fatalf("inserts-deletes = %d, final presence = %v (want diff %d)", diff, present, want)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
