// Package workload generates the synthetic dictionary workloads of the
// Citrus paper's evaluation (§5): each thread continuously executes
// operations drawn from a fixed distribution with keys drawn uniformly
// from a fixed range, against a structure pre-filled to half the range.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/go-citrus/citrus/internal/dict"
)

// Mix is an operation distribution in percent. The paper names workloads
// by their contains share ("100% contains", "98% contains", "50%
// contains") with the remainder split evenly between insert and delete.
type Mix struct {
	ContainsPct int
	InsertPct   int
	DeletePct   int
}

// ReadMostly returns the paper's standard mix with the given contains
// percentage and the remainder split evenly between inserts and deletes.
func ReadMostly(containsPct int) Mix {
	rest := 100 - containsPct
	return Mix{ContainsPct: containsPct, InsertPct: rest / 2, DeletePct: rest - rest/2}
}

// UpdateOnly is the single-writer mix of Figure 9: 50% insert, 50% delete.
func UpdateOnly() Mix { return Mix{InsertPct: 50, DeletePct: 50} }

// ReadOnly is 100% contains.
func ReadOnly() Mix { return Mix{ContainsPct: 100} }

func (m Mix) String() string {
	return fmt.Sprintf("%d%%c/%d%%i/%d%%d", m.ContainsPct, m.InsertPct, m.DeletePct)
}

// Valid reports whether the mix sums to 100%.
func (m Mix) Valid() bool {
	return m.ContainsPct >= 0 && m.InsertPct >= 0 && m.DeletePct >= 0 &&
		m.ContainsPct+m.InsertPct+m.DeletePct == 100
}

// RNG is the per-worker pseudo-random generator: xorshift64*, the same
// class of cheap thread-local generator used by synchrobench-style
// harnesses, so key generation does not serialize workers or dominate the
// measured operation cost.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded from seed (0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Next returns the next raw 64-bit value.
func (r *RNG) Next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value uniform in [0, n).
func (r *RNG) Intn(n int) int {
	return int(r.Next() % uint64(n))
}

// OpKind is a dictionary operation type.
type OpKind uint8

// Operation kinds.
const (
	OpContains OpKind = iota
	OpInsert
	OpDelete
)

// NextOp draws an operation kind from the mix.
func (r *RNG) NextOp(m Mix) OpKind {
	p := r.Intn(100)
	switch {
	case p < m.ContainsPct:
		return OpContains
	case p < m.ContainsPct+m.InsertPct:
		return OpInsert
	default:
		return OpDelete
	}
}

// Apply executes one randomly drawn operation against h, with the key
// drawn uniformly, and returns its kind.
func Apply(h dict.Handle[int, int], r *RNG, m Mix, keyRange int) OpKind {
	kind := r.NextOp(m)
	ApplyOp(h, kind, r.Intn(keyRange))
	return kind
}

// ApplyOp executes one operation of the given kind on the given key;
// callers that need a non-uniform key distribution (see Zipf) draw the
// key themselves.
func ApplyOp(h dict.Handle[int, int], kind OpKind, key int) {
	switch kind {
	case OpContains:
		h.Contains(key)
	case OpInsert:
		h.Insert(key, key)
	default:
		h.Delete(key)
	}
}

// Prefill inserts exactly keyRange/2 distinct uniformly chosen keys, as
// in the paper's setup ("the tree was pre-filled to the size of half the
// key range"). It is deterministic for a given seed.
func Prefill(m dict.Map[int, int], keyRange int, seed int64) {
	perm := rand.New(rand.NewSource(seed)).Perm(keyRange)
	h := m.NewHandle()
	defer h.Close()
	for _, k := range perm[:keyRange/2] {
		h.Insert(k, k)
	}
}

func (k OpKind) String() string {
	switch k {
	case OpContains:
		return "contains"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return "unknown"
	}
}
