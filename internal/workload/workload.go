// Package workload generates the synthetic dictionary workloads of the
// Citrus paper's evaluation (§5): each thread continuously executes
// operations drawn from a fixed distribution with keys drawn uniformly
// from a fixed range, against a structure pre-filled to half the range.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/go-citrus/citrus/internal/dict"
)

// Mix is an operation distribution in percent. The paper names workloads
// by their contains share ("100% contains", "98% contains", "50%
// contains") with the remainder split evenly between insert and delete.
// ScanPct is an extension beyond the paper: a share of range scans, with
// starting keys drawn like any other key and lengths drawn by the caller
// (see ScanLens for the Zipf-skewed length distribution the harness
// uses).
type Mix struct {
	ContainsPct int
	InsertPct   int
	DeletePct   int
	ScanPct     int
}

// ReadMostly returns the paper's standard mix with the given contains
// percentage and the remainder split evenly between inserts and deletes.
func ReadMostly(containsPct int) Mix {
	rest := 100 - containsPct
	return Mix{ContainsPct: containsPct, InsertPct: rest / 2, DeletePct: rest - rest/2}
}

// UpdateOnly is the single-writer mix of Figure 9: 50% insert, 50% delete.
func UpdateOnly() Mix { return Mix{InsertPct: 50, DeletePct: 50} }

// ReadOnly is 100% contains.
func ReadOnly() Mix { return Mix{ContainsPct: 100} }

// ScanMixed is the mixed scan/update workload: scanPct range scans with
// the remainder split evenly between inserts and deletes, so every scan
// races ongoing structural churn.
func ScanMixed(scanPct int) Mix {
	rest := 100 - scanPct
	return Mix{ScanPct: scanPct, InsertPct: rest / 2, DeletePct: rest - rest/2}
}

// ScanHeavy is the scan-dominated mix: 90% scans, 10% updates.
func ScanHeavy() Mix { return ScanMixed(90) }

func (m Mix) String() string {
	s := fmt.Sprintf("%d%%c/%d%%i/%d%%d", m.ContainsPct, m.InsertPct, m.DeletePct)
	if m.ScanPct != 0 {
		s += fmt.Sprintf("/%d%%s", m.ScanPct)
	}
	return s
}

// Valid reports whether the mix sums to 100%.
func (m Mix) Valid() bool {
	return m.ContainsPct >= 0 && m.InsertPct >= 0 && m.DeletePct >= 0 && m.ScanPct >= 0 &&
		m.ContainsPct+m.InsertPct+m.DeletePct+m.ScanPct == 100
}

// RNG is the per-worker pseudo-random generator: xorshift64*, the same
// class of cheap thread-local generator used by synchrobench-style
// harnesses, so key generation does not serialize workers or dominate the
// measured operation cost.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded from seed (0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Next returns the next raw 64-bit value.
func (r *RNG) Next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value uniform in [0, n).
func (r *RNG) Intn(n int) int {
	return int(r.Next() % uint64(n))
}

// OpKind is a dictionary operation type.
type OpKind uint8

// Operation kinds.
const (
	OpContains OpKind = iota
	OpInsert
	OpDelete
	OpScan
)

// NextOp draws an operation kind from the mix.
func (r *RNG) NextOp(m Mix) OpKind {
	p := r.Intn(100)
	switch {
	case p < m.ContainsPct:
		return OpContains
	case p < m.ContainsPct+m.InsertPct:
		return OpInsert
	case p < m.ContainsPct+m.InsertPct+m.DeletePct:
		return OpDelete
	default:
		return OpScan
	}
}

// Apply executes one randomly drawn operation against h, with the key
// drawn uniformly, and returns its kind. Scans get a fixed short span
// (keyRange/16); callers wanting Zipf-shaped spans drive ApplyScan with
// a ScanLens themselves.
func Apply(h dict.Handle[int, int], r *RNG, m Mix, keyRange int) OpKind {
	kind := r.NextOp(m)
	if kind == OpScan {
		span := keyRange / 16
		if span < 1 {
			span = 1
		}
		ApplyScan(h, r.Intn(keyRange), span)
		return kind
	}
	ApplyOp(h, kind, r.Intn(keyRange))
	return kind
}

// ApplyOp executes one operation of the given kind on the given key;
// callers that need a non-uniform key distribution (see Zipf) draw the
// key themselves. OpScan needs a length and is not handled here — use
// ApplyScan.
func ApplyOp(h dict.Handle[int, int], kind OpKind, key int) {
	switch kind {
	case OpContains:
		h.Contains(key)
	case OpInsert:
		h.Insert(key, key)
	case OpDelete:
		h.Delete(key)
	}
}

// ApplyScan runs one range scan over the half-open window [lo, lo+span)
// and returns the number of pairs it visited.
func ApplyScan(h dict.Handle[int, int], lo, span int) int {
	pairs := 0
	h.RangeScan(lo, lo+span, func(int, int) bool { pairs++; return true })
	return pairs
}

// ScanLens draws range-scan spans Zipf(s)-skewed over [1, max]: most
// scans are short, near-point probes, with a heavy tail of wide sweeps —
// the shape real range-query traffic takes (small pagination windows
// dominating, occasional full exports). s must be > 1 (the sampler's
// requirement); 1.5 is a reasonable default.
type ScanLens struct {
	z *Zipf
}

// NewScanLens returns a span sampler over [1, max] with exponent s.
func NewScanLens(rng *RNG, s float64, max int) *ScanLens {
	if max < 1 {
		max = 1
	}
	return &ScanLens{z: NewZipf(rng, s, 1, uint64(max-1))}
}

// Next draws the next span. Rank order maps directly to span (rank 0,
// the most probable, is span 1) — no scattering, unlike Zipf.Intn,
// because short spans being the common case IS the point.
func (l *ScanLens) Next() int {
	return 1 + int(l.z.Uint64())
}

// Prefill inserts exactly keyRange/2 distinct uniformly chosen keys, as
// in the paper's setup ("the tree was pre-filled to the size of half the
// key range"). It is deterministic for a given seed.
func Prefill(m dict.Map[int, int], keyRange int, seed int64) {
	perm := rand.New(rand.NewSource(seed)).Perm(keyRange)
	h := m.NewHandle()
	defer h.Close()
	for _, k := range perm[:keyRange/2] {
		h.Insert(k, k)
	}
}

func (k OpKind) String() string {
	switch k {
	case OpContains:
		return "contains"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	default:
		return "unknown"
	}
}
