package workload

import (
	"math/rand"
	"testing"
)

func TestZipfRejectsInvalidParams(t *testing.T) {
	r := NewRNG(1)
	if NewZipf(r, 1.0, 1, 100) != nil {
		t.Fatal("s = 1.0 accepted")
	}
	if NewZipf(r, 1.5, 0.5, 100) != nil {
		t.Fatal("v < 1 accepted")
	}
	if NewZipf(r, 1.5, 1, 100) == nil {
		t.Fatal("valid parameters rejected")
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(NewRNG(2), 1.3, 1, 99)
	for i := 0; i < 100000; i++ {
		if k := z.Uint64(); k > 99 {
			t.Fatalf("rank %d out of [0, 99]", k)
		}
	}
}

// TestZipfMatchesStdlib cross-checks our sampler against math/rand's
// implementation of the same algorithm: the head-of-distribution mass
// must agree closely.
func TestZipfMatchesStdlib(t *testing.T) {
	const (
		s    = 1.2
		v    = 1.0
		imax = 1000
		n    = 300000
	)
	ours := NewZipf(NewRNG(3), s, v, imax)
	std := rand.NewZipf(rand.New(rand.NewSource(4)), s, v, imax)

	count := func(draw func() uint64) (rank0, rank1, top10 int) {
		for i := 0; i < n; i++ {
			k := draw()
			if k == 0 {
				rank0++
			}
			if k == 1 {
				rank1++
			}
			if k < 10 {
				top10++
			}
		}
		return
	}
	o0, o1, o10 := count(ours.Uint64)
	s0, s1, s10 := count(std.Uint64)

	within := func(a, b int, tol float64) bool {
		fa, fb := float64(a), float64(b)
		return fa > fb*(1-tol) && fa < fb*(1+tol)
	}
	if !within(o0, s0, 0.05) || !within(o1, s1, 0.07) || !within(o10, s10, 0.05) {
		t.Fatalf("head mass differs from stdlib: ours (%d, %d, %d), stdlib (%d, %d, %d)",
			o0, o1, o10, s0, s1, s10)
	}
}

func TestZipfMonotoneHead(t *testing.T) {
	z := NewZipf(NewRNG(5), 1.4, 1, 500)
	counts := make([]int, 501)
	for i := 0; i < 400000; i++ {
		counts[z.Uint64()]++
	}
	// Frequencies over the first ranks must be (statistically) decreasing
	// and rank 0 must dominate.
	for r := 1; r < 5; r++ {
		if counts[r] >= counts[r-1] {
			t.Fatalf("rank %d (%d draws) not below rank %d (%d draws)", r, counts[r], r-1, counts[r-1])
		}
	}
	if counts[0] < 400000/5 {
		t.Fatalf("rank 0 drew only %d of 400000; not a skewed head", counts[0])
	}
}

func TestZipfIntnScattersWithinRange(t *testing.T) {
	z := NewZipf(NewRNG(6), 1.3, 1, 1<<20)
	seen := map[int]int{}
	for i := 0; i < 100000; i++ {
		k := z.Intn(1000)
		if k < 0 || k >= 1000 {
			t.Fatalf("Intn out of range: %d", k)
		}
		seen[k]++
	}
	// Still skewed: the hottest scattered key dominates the median one.
	hottest := 0
	for _, c := range seen {
		if c > hottest {
			hottest = c
		}
	}
	if hottest < 10000 {
		t.Fatalf("hottest key drew %d of 100000; scatter destroyed the skew", hottest)
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(NewRNG(7), 1.5, 1, 100)
	b := NewZipf(NewRNG(7), 1.5, 1, 100)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}
