package workload

import (
	"testing"
	"testing/quick"

	"github.com/go-citrus/citrus/internal/impls"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestIntnUniformish(t *testing.T) {
	r := NewRNG(9)
	const n, buckets = 400000, 16
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		v := r.Intn(buckets)
		if v < 0 || v >= buckets {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d draws, want ≈%d", b, c, want)
		}
	}
}

func TestMixConstructors(t *testing.T) {
	for _, pct := range []int{0, 50, 98, 100} {
		m := ReadMostly(pct)
		if !m.Valid() {
			t.Fatalf("ReadMostly(%d) = %+v invalid", pct, m)
		}
		if m.ContainsPct != pct {
			t.Fatalf("ReadMostly(%d).ContainsPct = %d", pct, m.ContainsPct)
		}
		if diff := m.InsertPct - m.DeletePct; diff < -1 || diff > 1 {
			t.Fatalf("ReadMostly(%d) update split uneven: %+v", pct, m)
		}
	}
	if m := UpdateOnly(); !m.Valid() || m.ContainsPct != 0 {
		t.Fatalf("UpdateOnly() = %+v", m)
	}
	if m := ReadOnly(); !m.Valid() || m.ContainsPct != 100 {
		t.Fatalf("ReadOnly() = %+v", m)
	}
}

// TestMixValidQuick: ReadMostly always sums to 100 for any percentage.
func TestMixValidQuick(t *testing.T) {
	property := func(p uint8) bool {
		return ReadMostly(int(p) % 101).Valid()
	}
	if err := quick.Check(property, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtremeMixesDrawOnlyTheirOps(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if op := r.NextOp(ReadOnly()); op != OpContains {
			t.Fatalf("ReadOnly drew %v", op)
		}
		if op := r.NextOp(UpdateOnly()); op == OpContains {
			t.Fatal("UpdateOnly drew a contains")
		}
	}
}

func TestPrefillDeterministicAndSized(t *testing.T) {
	m1 := impls.NewCitrus[int, int]()
	m2 := impls.NewCitrus[int, int]()
	Prefill(m1, 2000, 7)
	Prefill(m2, 2000, 7)
	if m1.Len() != 1000 || m2.Len() != 1000 {
		t.Fatalf("prefill sizes %d, %d; want 1000", m1.Len(), m2.Len())
	}
	k1, k2 := m1.Keys(), m2.Keys()
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("prefill not deterministic for equal seeds")
		}
	}
}

func TestApplyCoversAllOps(t *testing.T) {
	m := impls.NewCitrus[int, int]()
	h := m.NewHandle()
	defer h.Close()
	r := NewRNG(3)
	seen := map[OpKind]bool{}
	for i := 0; i < 10000; i++ {
		seen[Apply(h, r, ReadMostly(50), 64)] = true
	}
	if !seen[OpContains] || !seen[OpInsert] || !seen[OpDelete] {
		t.Fatalf("Apply drew only %v", seen)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanMixConstructors(t *testing.T) {
	for _, pct := range []int{0, 30, 90, 100} {
		m := ScanMixed(pct)
		if !m.Valid() {
			t.Fatalf("ScanMixed(%d) = %+v invalid", pct, m)
		}
		if m.ScanPct != pct || m.ContainsPct != 0 {
			t.Fatalf("ScanMixed(%d) = %+v", pct, m)
		}
		if diff := m.InsertPct - m.DeletePct; diff < -1 || diff > 1 {
			t.Fatalf("ScanMixed(%d) update split uneven: %+v", pct, m)
		}
	}
	if m := ScanHeavy(); !m.Valid() || m.ScanPct != 90 {
		t.Fatalf("ScanHeavy() = %+v", m)
	}
	if s := ScanMixed(30).String(); s != "0%c/35%i/35%d/30%s" {
		t.Fatalf("ScanMixed(30).String() = %q", s)
	}
}

func TestScanMixDrawsScans(t *testing.T) {
	r := NewRNG(9)
	counts := map[OpKind]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.NextOp(ScanMixed(30))]++
	}
	share := float64(counts[OpScan]) / n * 100
	if share < 29 || share > 31 {
		t.Fatalf("scan share = %.2f%%, want ≈30%%", share)
	}
	if counts[OpInsert] == 0 || counts[OpDelete] == 0 {
		t.Fatal("no updates drawn from a 30% scan mix")
	}
	if counts[OpContains] != 0 {
		t.Fatal("ScanMixed drew a contains")
	}
}

// TestScanLensShape: spans stay in [1, max] and short spans dominate —
// the median must sit well below the cap and span 1 must be the mode.
func TestScanLensShape(t *testing.T) {
	r := NewRNG(17)
	lens := NewScanLens(r, 1.5, 512)
	const n = 50000
	counts := map[int]int{}
	var all []int
	for i := 0; i < n; i++ {
		l := lens.Next()
		if l < 1 || l > 512 {
			t.Fatalf("span %d outside [1, 512]", l)
		}
		counts[l]++
		all = append(all, l)
	}
	mode, best := 0, 0
	for l, c := range counts {
		if c > best {
			mode, best = l, c
		}
	}
	if mode != 1 {
		t.Fatalf("modal span = %d, want 1", mode)
	}
	short := 0
	for _, l := range all {
		if l <= 16 {
			short++
		}
	}
	if float64(short)/n < 0.5 {
		t.Fatalf("only %.1f%% of spans ≤ 16; the distribution is not short-dominated", float64(short)/n*100)
	}
	if counts[512] == 0 && counts[511] == 0 && counts[510] == 0 {
		t.Log("note: no near-max spans drawn (tail is thin but legal)")
	}
}

func TestApplyScanCountsPairs(t *testing.T) {
	m := impls.NewCitrus[int, int]()
	h := m.NewHandle()
	defer h.Close()
	for k := 0; k < 100; k++ {
		h.Insert(k, k)
	}
	if got := ApplyScan(h, 10, 20); got != 20 {
		t.Fatalf("ApplyScan over a dense range visited %d pairs, want 20", got)
	}
	if got := ApplyScan(h, 90, 50); got != 10 {
		t.Fatalf("ApplyScan past the end visited %d pairs, want 10", got)
	}
}

func TestApplyHandlesScanMix(t *testing.T) {
	m := impls.NewCitrus[int, int]()
	h := m.NewHandle()
	defer h.Close()
	r := NewRNG(21)
	seen := map[OpKind]bool{}
	for i := 0; i < 10000; i++ {
		seen[Apply(h, r, ScanMixed(30), 64)] = true
	}
	if !seen[OpScan] || !seen[OpInsert] || !seen[OpDelete] {
		t.Fatalf("Apply drew only %v", seen)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
