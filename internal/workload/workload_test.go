package workload

import (
	"testing"
	"testing/quick"

	"github.com/go-citrus/citrus/internal/impls"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestIntnUniformish(t *testing.T) {
	r := NewRNG(9)
	const n, buckets = 400000, 16
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		v := r.Intn(buckets)
		if v < 0 || v >= buckets {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d draws, want ≈%d", b, c, want)
		}
	}
}

func TestMixConstructors(t *testing.T) {
	for _, pct := range []int{0, 50, 98, 100} {
		m := ReadMostly(pct)
		if !m.Valid() {
			t.Fatalf("ReadMostly(%d) = %+v invalid", pct, m)
		}
		if m.ContainsPct != pct {
			t.Fatalf("ReadMostly(%d).ContainsPct = %d", pct, m.ContainsPct)
		}
		if diff := m.InsertPct - m.DeletePct; diff < -1 || diff > 1 {
			t.Fatalf("ReadMostly(%d) update split uneven: %+v", pct, m)
		}
	}
	if m := UpdateOnly(); !m.Valid() || m.ContainsPct != 0 {
		t.Fatalf("UpdateOnly() = %+v", m)
	}
	if m := ReadOnly(); !m.Valid() || m.ContainsPct != 100 {
		t.Fatalf("ReadOnly() = %+v", m)
	}
}

// TestMixValidQuick: ReadMostly always sums to 100 for any percentage.
func TestMixValidQuick(t *testing.T) {
	property := func(p uint8) bool {
		return ReadMostly(int(p) % 101).Valid()
	}
	if err := quick.Check(property, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtremeMixesDrawOnlyTheirOps(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if op := r.NextOp(ReadOnly()); op != OpContains {
			t.Fatalf("ReadOnly drew %v", op)
		}
		if op := r.NextOp(UpdateOnly()); op == OpContains {
			t.Fatal("UpdateOnly drew a contains")
		}
	}
}

func TestPrefillDeterministicAndSized(t *testing.T) {
	m1 := impls.NewCitrus[int, int]()
	m2 := impls.NewCitrus[int, int]()
	Prefill(m1, 2000, 7)
	Prefill(m2, 2000, 7)
	if m1.Len() != 1000 || m2.Len() != 1000 {
		t.Fatalf("prefill sizes %d, %d; want 1000", m1.Len(), m2.Len())
	}
	k1, k2 := m1.Keys(), m2.Keys()
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("prefill not deterministic for equal seeds")
		}
	}
}

func TestApplyCoversAllOps(t *testing.T) {
	m := impls.NewCitrus[int, int]()
	h := m.NewHandle()
	defer h.Close()
	r := NewRNG(3)
	seen := map[OpKind]bool{}
	for i := 0; i < 10000; i++ {
		seen[Apply(h, r, ReadMostly(50), 64)] = true
	}
	if !seen[OpContains] || !seen[OpInsert] || !seen[OpDelete] {
		t.Fatalf("Apply drew only %v", seen)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
