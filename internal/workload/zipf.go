package workload

import "math"

// Zipf draws keys from a bounded Zipf distribution — an extension beyond
// the paper's uniform workloads, for studying hot-key contention (skewed
// accesses concentrate updates on a few subtrees, which stresses the
// fine-grained-locking story very differently from uniform keys).
//
// The sampler uses rejection-inversion from the hat function of the
// Zipf-Mandelbrot density (W. Hörmann & G. Derflinger, "Rejection-
// inversion to generate variates from monotone discrete distributions",
// TOMACS 1996) — the same algorithm as math/rand's Zipf — re-hosted on
// the workload RNG so each worker keeps its private generator. The
// exponent s must be > 1 (the algorithm's requirement); rank 0 is the
// hottest key.
type Zipf struct {
	rng  *RNG
	imax float64
	v    float64
	q    float64

	oneMinusQ    float64
	oneMinusQInv float64
	hxm          float64
	hx0MinusHxm  float64
	s            float64
}

// NewZipf returns a sampler over ranks [0, imax] with exponent s > 1 and
// value offset v ≥ 1 (v = 1 gives the classic Zipf law). It returns nil
// for invalid parameters, matching math/rand.NewZipf.
func NewZipf(rng *RNG, s, v float64, imax uint64) *Zipf {
	if s <= 1.0 || v < 1 {
		return nil
	}
	z := &Zipf{rng: rng, imax: float64(imax), v: v, q: s}
	z.oneMinusQ = 1.0 - z.q
	z.oneMinusQInv = 1.0 / z.oneMinusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0MinusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-z.q*math.Log(z.v+1.0)))
	return z
}

// h is the integral of the hat function.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneMinusQ*math.Log(z.v+x)) * z.oneMinusQInv
}

// hinv is h's inverse.
func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneMinusQInv*math.Log(z.oneMinusQ*x)) - z.v
}

// float64 returns a uniform value in [0, 1) from the worker RNG.
func (z *Zipf) float64() float64 {
	return float64(z.rng.Next()>>11) / (1 << 53)
}

// Uint64 draws a rank in [0, imax], with P(k) ∝ ((v+k)^(-s)).
func (z *Zipf) Uint64() uint64 {
	if z == nil {
		panic("workload: draw from nil Zipf (invalid parameters)")
	}
	for {
		r := z.float64()
		ur := z.hxm + r*z.hx0MinusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}

// Intn draws a key in [0, n): the Zipf rank scattered over the key space
// by a fixed multiplicative hash, so the hottest keys are not neighbours
// in the tree (neighbouring hot keys would measure lock contention on
// one subtree rather than skew itself; pass-through rank order is
// available via Uint64 when that is the point).
func (z *Zipf) Intn(n int) int {
	rank := z.Uint64()
	return int((rank * 0x9E3779B97F4A7C15) % uint64(n))
}
