package partition

import (
	"hash/maphash"
	"testing"
)

// Two routers built from the same seed must agree on every key — this
// is the property rhash broke by minting a fresh seed per map, and the
// property the forest's lifetime-stable routing rests on.
func TestRoutersAgreeUnderSameSeed(t *testing.T) {
	seed := maphash.MakeSeed()
	a := NewRouter[int](seed, 8)
	b := NewRouter[int](seed, 8)
	for k := -1000; k < 1000; k++ {
		if pa, pb := a.Partition(k), b.Partition(k); pa != pb {
			t.Fatalf("routers over the same seed disagree on key %d: %d vs %d", k, pa, pb)
		}
	}
	sa := NewRouter[string](seed, 5)
	sb := NewRouter[string](seed, 5)
	for _, k := range []string{"", "a", "b", "citrus", "forest", "grace period"} {
		if pa, pb := sa.Partition(k), sb.Partition(k); pa != pb {
			t.Fatalf("string routers over the same seed disagree on %q: %d vs %d", k, pa, pb)
		}
	}
}

func TestPartitionInRange(t *testing.T) {
	r := NewRouter[int](maphash.MakeSeed(), 7)
	hit := make([]bool, 7)
	for k := 0; k < 10000; k++ {
		p := r.Partition(k)
		if p < 0 || p >= 7 {
			t.Fatalf("Partition(%d) = %d, out of [0,7)", k, p)
		}
		hit[p] = true
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("partition %d never hit in 10000 uniform keys", i)
		}
	}
}

// Routing must be deterministic across repeated calls (a key cannot
// migrate between partitions during a router's lifetime).
func TestPartitionStableAcrossCalls(t *testing.T) {
	r := NewRouter[int](SharedSeed(), 16)
	want := make(map[int]int)
	for k := 0; k < 512; k++ {
		want[k] = r.Partition(k)
	}
	for round := 0; round < 3; round++ {
		for k := 0; k < 512; k++ {
			if got := r.Partition(k); got != want[k] {
				t.Fatalf("round %d: Partition(%d) moved from %d to %d", round, k, want[k], got)
			}
		}
	}
}

// SharedSeed is one seed: routers that default to it agree without
// coordination.
func TestSharedSeedIsStable(t *testing.T) {
	if SharedSeed() != SharedSeed() {
		t.Fatal("SharedSeed returned two different seeds")
	}
	a := NewRouter[uint64](SharedSeed(), 4)
	b := NewRouter[uint64](SharedSeed(), 4)
	for k := uint64(0); k < 256; k++ {
		if a.Partition(k) != b.Partition(k) {
			t.Fatalf("SharedSeed routers disagree on %d", k)
		}
	}
}

// Different seeds should give (near-certainly) different hash
// functions; this guards against Hash accidentally ignoring its seed.
func TestHashUsesSeed(t *testing.T) {
	s1, s2 := maphash.MakeSeed(), maphash.MakeSeed()
	same := 0
	const n = 256
	for k := 0; k < n; k++ {
		if Hash(s1, k) == Hash(s2, k) {
			same++
		}
	}
	if same == n {
		t.Fatal("Hash ignored its seed: two fresh seeds hashed 256 keys identically")
	}
}

func TestNewRouterPanicsOnZeroPartitions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRouter(seed, 0) did not panic")
		}
	}()
	NewRouter[int](maphash.MakeSeed(), 0)
}
