// Package partition is the shared seeded key-partitioning helper behind
// every hash router in the repository: the relativistic hash table's
// bucket selection (internal/rhash) and the Citrus forest's shard
// router (citrus.Forest).
//
// The point of sharing one helper — and one explicit seed — is
// agreement: two routers built over the same key set must send every
// key to the same partition, or a key inserted through one router is
// invisible through the other. hash/maphash.MakeSeed returns a fresh
// random seed per call, so "make a new seed per structure" silently
// breaks that property the moment two structures are expected to agree
// (a forest and its rebuilt successor, a router and a debug tool
// inspecting its shards). Callers that need agreement pass the same
// Seed; callers that don't can use SharedSeed, one process-wide seed
// minted once.
package partition

import "hash/maphash"

// Hash returns the seeded hash of key. Equal keys hash equally under
// the same seed — across calls, goroutines, and separately constructed
// routers — which is the stability property the tests pin. Different
// seeds give independent hash functions (deliberately: a fresh seed per
// process keeps hash-flooding attackers guessing, exactly like Go's
// built-in maps).
func Hash[K comparable](seed maphash.Seed, key K) uint64 {
	return maphash.Comparable(seed, key)
}

// A Router deterministically assigns keys to one of n partitions under
// a fixed seed. The zero value is not usable; build one with NewRouter.
type Router[K comparable] struct {
	seed maphash.Seed
	n    uint64
}

// NewRouter returns a router over n partitions (n must be at least 1).
// Two routers built with the same seed and n agree on every key.
func NewRouter[K comparable](seed maphash.Seed, n int) Router[K] {
	if n < 1 {
		panic("partition: router needs at least 1 partition")
	}
	return Router[K]{seed: seed, n: uint64(n)}
}

// Partition returns key's partition in [0, n).
func (r Router[K]) Partition(key K) int {
	return int(maphash.Comparable(r.seed, key) % r.n)
}

// N reports the number of partitions.
func (r Router[K]) N() int { return int(r.n) }

// sharedSeed is minted once per process, at init: every caller that
// does not need a caller-controlled seed shares it, so all their
// routers agree by default.
var sharedSeed = maphash.MakeSeed()

// SharedSeed returns the process-wide seed. Structures that default to
// it (rhash.New, citrus.NewForest) agree with each other on where any
// key hashes without the caller threading a seed through.
func SharedSeed() maphash.Seed { return sharedSeed }
