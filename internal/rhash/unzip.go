package rhash

// Incremental "unzip" expansion, after Triplett, McKenney & Walpole
// ("Resizable, scalable, concurrent hash tables via relativistic
// programming", USENIX ATC 2011). Unlike the copy-based grow, no entry
// is copied: the new table's buckets initially point *into* the old
// chains (each old chain holds the entries of exactly two new buckets,
// interleaved), and the chains are then "unzipped" in place, one splice
// per chain per grace period.
//
// Reader correctness during the unzip rests on two facts:
//
//  1. Lookups tolerate imposters: a chain may contain entries that hash
//     to the sibling bucket; they cost steps, never wrong answers,
//     because lookups compare full keys and walk to nil.
//
//  2. A splice at entry p (p.next = q, skipping a run of sibling
//     entries) can strand only readers that are *inside the skipped
//     run* — and the only way into that run is through p or through the
//     sibling bucket's own path, which the splice does not touch. A
//     reader can be inside the run via p only if it read p.next before
//     the splice; therefore each chain performs at most one splice per
//     grace period: by the time the next splice (whose skipped run is
//     reachable through the previous one) executes, every reader that
//     crossed the previous splice point has finished. This is exactly
//     the paper's "wait for readers between unzip passes".
//
// Writers are excluded for the duration of the resize (resizeMu), as in
// the copy-based grow; Triplett's full design also admits concurrent
// writers with bucket-pair locking, which we trade away for a smaller
// correctness surface. Readers — the relativistic half — are never
// excluded, never retried, and never see a torn table.
func (m *Map[K, V]) growUnzip(oldLen int) {
	m.resizeMu.Lock()
	defer m.resizeMu.Unlock()
	old := m.tab.Load()
	if len(old.buckets) != oldLen {
		return // someone else already resized
	}
	next := newTable[K, V](2 * oldLen)

	// Step 1: point every new bucket at its first entry within the old
	// chain. Entries are shared, not copied.
	for j := range next.buckets {
		for e := old.buckets[j%oldLen].Load(); e != nil; e = e.next.Load() {
			if m.bucket(next, e.key) == j {
				next.buckets[j].Store(e)
				break
			}
		}
	}

	// Step 2: publish, then wait out every reader of the old table.
	m.tab.Store(next)
	m.flavor.Synchronize()

	// Step 3: plan the splices per old chain. With writers excluded the
	// chains are frozen (only our own splices modify them), so the plan
	// can be computed up front: walking a chain, every time a side
	// reappears after a run of the other side, the last entry of that
	// side must be spliced forward.
	type splice struct{ from, to *entry[K, V] }
	plans := make([][]splice, oldLen)
	for i := 0; i < oldLen; i++ {
		last := make(map[int]*entry[K, V], 2) // side (new bucket) → last entry seen
		for e := old.buckets[i].Load(); e != nil; e = e.next.Load() {
			side := m.bucket(next, e.key)
			if p := last[side]; p != nil && p.next.Load() != e {
				plans[i] = append(plans[i], splice{from: p, to: e})
			}
			last[side] = e
		}
		// The final entry of each side may still trail sibling entries;
		// terminate its side explicitly.
		for _, p := range last {
			if p.next.Load() != nil {
				tail := p.next.Load()
				side := m.bucket(next, p.key)
				// Walk to the next same-side entry (none, by
				// construction of the plan above) or nil.
				for tail != nil && m.bucket(next, tail.key) != side {
					tail = tail.next.Load()
				}
				if tail == nil && p.next.Load() != nil {
					plans[i] = append(plans[i], splice{from: p, to: nil})
				}
			}
		}
	}

	// Step 4: execute, one splice per chain per pass, a grace period
	// between passes (see invariant 2 above).
	for step := 0; ; step++ {
		progress := false
		for i := range plans {
			if step < len(plans[i]) {
				s := plans[i][step]
				s.from.next.Store(s.to)
				progress = true
			}
		}
		if !progress {
			break
		}
		m.flavor.Synchronize()
	}
}
