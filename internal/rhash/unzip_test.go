package rhash

import (
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// TestUnzipPreservesEntries white-boxes the in-place property: after an
// unzip grow, every entry object in the new table is the same pointer
// that was in the old one (no copies), every chain is fully unzipped
// (no imposters remain), and nothing is lost.
func TestUnzipPreservesEntries(t *testing.T) {
	m := New[int, int]()
	h := m.NewHandle()
	defer h.Close()

	limit := maxLoad * initialBuckets // fill right up to the threshold
	for k := 0; k < limit; k++ {
		if !h.Insert(k, k) {
			t.Fatalf("Insert(%d) = false", k)
		}
	}
	old := m.tab.Load()
	before := map[int]*entry[int, int]{}
	for i := range old.buckets {
		for e := old.buckets[i].Load(); e != nil; e = e.next.Load() {
			before[e.key] = e
		}
	}

	h.Insert(limit, limit) // crosses the threshold → unzip grow
	next := m.tab.Load()
	if next == old || len(next.buckets) != 2*len(old.buckets) {
		t.Fatalf("table did not double: %d buckets", len(next.buckets))
	}
	seen := 0
	for i := range next.buckets {
		for e := next.buckets[i].Load(); e != nil; e = e.next.Load() {
			if got := m.bucket(next, e.key); got != i {
				t.Fatalf("imposter left after unzip: key %d in bucket %d, hashes to %d", e.key, i, got)
			}
			if p, ok := before[e.key]; ok && p != e {
				t.Fatalf("entry for key %d was copied, not migrated", e.key)
			}
			seen++
		}
	}
	if seen != limit+1 {
		t.Fatalf("unzip lost entries: %d of %d reachable", seen, limit+1)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUnzipWaitsForSuspendedReader: the unzip must not splice any chain
// while a pre-existing reader is inside its critical section — the
// reader could be standing in a run the splice would skip. The resize
// therefore blocks (in its first grace period) until the reader leaves;
// meanwhile the already-published new table serves fresh lookups.
func TestUnzipWaitsForSuspendedReader(t *testing.T) {
	m := New[int, int]()
	w := m.NewHandle()
	defer w.Close()
	limit := maxLoad * initialBuckets
	for k := 0; k < limit; k++ {
		w.Insert(k, k)
	}

	reader := m.NewHandle()
	inCS := true
	defer func() {
		if inCS {
			reader.r.ReadUnlock() // keep deferred Close legal on failure
		}
		reader.Close()
	}()
	reader.r.ReadLock()
	oldTab := m.tab.Load()

	growDone := make(chan struct{})
	go func() {
		defer close(growDone)
		h := m.NewHandle()
		defer h.Close()
		h.Insert(limit, limit) // triggers the unzip
	}()

	// The new table must be published promptly (readers switch over)...
	deadline := time.Now().Add(2 * time.Second)
	for m.tab.Load() == oldTab {
		if time.Now().After(deadline) {
			t.Fatal("new table never published")
		}
		runtime.Gosched()
	}
	// ...but the grow must be parked in its grace period.
	select {
	case <-growDone:
		t.Fatal("unzip completed while a pre-existing reader was inside its critical section")
	case <-time.After(20 * time.Millisecond):
	}
	// The old generation's chains are still unspliced: the suspended
	// reader's world is intact. Verify by walking an old chain fully.
	count := 0
	for i := range oldTab.buckets {
		for e := oldTab.buckets[i].Load(); e != nil; e = e.next.Load() {
			count++
		}
	}
	// limit prefilled + the insert that triggered the grow (it lands in
	// the old table before the resize runs).
	if count != limit+1 {
		t.Fatalf("old chains lost entries while a reader held them: %d of %d", count, limit+1)
	}

	reader.r.ReadUnlock()
	inCS = false
	select {
	case <-growDone:
	case <-time.After(5 * time.Second):
		t.Fatal("unzip never completed after the reader left")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= limit; k++ {
		if v, ok := w.Contains(k); !ok || v != k {
			t.Fatalf("Contains(%d) = (%d, %v) after unzip", k, v, ok)
		}
	}
}

// TestUnzipVersusCopyEquivalence: both resize strategies must yield the
// same dictionary for the same operation sequence.
func TestUnzipVersusCopyEquivalence(t *testing.T) {
	a := New[int, int]() // unzip
	b := NewCopyResize[int, int]()
	ha, hb := a.NewHandle(), b.NewHandle()
	defer ha.Close()
	defer hb.Close()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 30000; i++ {
		k := rng.Intn(2000)
		if rng.Intn(3) == 0 {
			if ha.Delete(k) != hb.Delete(k) {
				t.Fatalf("op %d: Delete(%d) diverged", i, k)
			}
		} else {
			if ha.Insert(k, k) != hb.Insert(k, k) {
				t.Fatalf("op %d: Insert(%d) diverged", i, k)
			}
		}
	}
	if a.Len() != b.Len() {
		t.Fatalf("sizes diverged: %d vs %d", a.Len(), b.Len())
	}
	ka, kb := a.Keys(), b.Keys()
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("key sets diverged at %d: %d vs %d", i, ka[i], kb[i])
		}
	}
	if a.Buckets() <= initialBuckets || b.Buckets() <= initialBuckets {
		t.Fatal("no growth happened; test is vacuous")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUnzipInterleavedChain constructs, deterministically, the chain
// shape the unzip exists for: one old bucket whose chain alternates
// between its two future buckets entry by entry (head insertion makes
// chain order the reverse of insertion order, so the shape is fully
// controlled). Every splice path — same-side gaps on both sides plus
// both tail terminations — executes, and the result is checked entry by
// entry.
func TestUnzipInterleavedChain(t *testing.T) {
	m := New[int, int]()
	h := m.NewHandle()
	defer h.Close()

	// Collect keys by their (old bucket, new bucket) routing. Sides of
	// old bucket 0: new buckets 0 and initialBuckets.
	oldT := m.tab.Load()
	nextShape := newTable[int, int](2 * initialBuckets)
	var sideA, sideB []int
	for k := 0; len(sideA) < 3 || len(sideB) < 3; k++ {
		if m.bucket(oldT, k) != 0 {
			continue
		}
		if m.bucket(nextShape, k) == 0 {
			sideA = append(sideA, k)
		} else {
			sideB = append(sideB, k)
		}
	}

	// Insert alternating so the chain reads A B A B A B from the head.
	order := []int{sideB[2], sideA[2], sideB[1], sideA[1], sideB[0], sideA[0]}
	for _, k := range order {
		if !h.Insert(k, k*7) {
			t.Fatalf("Insert(%d) = false", k)
		}
	}

	m.growUnzip(initialBuckets) // force the resize regardless of load

	next := m.tab.Load()
	if len(next.buckets) != 2*initialBuckets {
		t.Fatalf("unzip did not double the table")
	}
	collect := func(b int) []int {
		var ks []int
		for e := next.buckets[b].Load(); e != nil; e = e.next.Load() {
			ks = append(ks, e.key)
		}
		return ks
	}
	gotA, gotB := collect(0), collect(initialBuckets)
	if len(gotA) != 3 || len(gotB) != 3 {
		t.Fatalf("unzipped chains wrong length: A=%v B=%v", gotA, gotB)
	}
	for i := 0; i < 3; i++ {
		if gotA[i] != sideA[i] || gotB[i] != sideB[i] {
			t.Fatalf("unzip scrambled chains: A=%v (want %v), B=%v (want %v)",
				gotA, sideA, gotB, sideB)
		}
	}
	for _, k := range order {
		if v, ok := h.Contains(k); !ok || v != k*7 {
			t.Fatalf("Contains(%d) = (%d, %v) after unzip", k, v, ok)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
