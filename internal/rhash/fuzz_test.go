package rhash

import "testing"

// FuzzOpsAgainstOracle interprets fuzz input as an op script run against
// both the hash table and a map oracle. Growth (and therefore the unzip)
// triggers organically once scripts insert past the load factor.
func FuzzOpsAgainstOracle(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 1})
	grow := make([]byte, 0, 200)
	for k := byte(0); k < 60; k++ { // crosses the resize threshold twice
		grow = append(grow, 0, k)
	}
	for k := byte(0); k < 60; k += 2 {
		grow = append(grow, 1, k)
	}
	f.Add(grow)

	f.Fuzz(func(t *testing.T, data []byte) {
		m := New[int, int]()
		h := m.NewHandle()
		defer h.Close()
		oracle := map[int]int{}
		for i := 0; i+1 < len(data); i += 2 {
			k := int(data[i+1])
			switch data[i] % 3 {
			case 0:
				_, present := oracle[k]
				if h.Insert(k, i) == present {
					t.Fatalf("op %d: Insert(%d) disagreed with oracle (present=%v)", i/2, k, present)
				}
				if !present {
					oracle[k] = i
				}
			case 1:
				_, present := oracle[k]
				if h.Delete(k) != present {
					t.Fatalf("op %d: Delete(%d) disagreed with oracle (present=%v)", i/2, k, present)
				}
				delete(oracle, k)
			default:
				wantV, wantOK := oracle[k]
				gotV, gotOK := h.Contains(k)
				if gotOK != wantOK || (wantOK && gotV != wantV) {
					t.Fatalf("op %d: Contains(%d) = (%d, %v), want (%d, %v)", i/2, k, gotV, gotOK, wantV, wantOK)
				}
			}
		}
		if got, want := m.Len(), len(oracle); got != want {
			t.Fatalf("Len() = %d, oracle %d", got, want)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
