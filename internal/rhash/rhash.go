// Package rhash implements a relativistic hash table: RCU readers, one
// lock per bucket for updates, and a resize that never blocks readers —
// the design family of Triplett, McKenney & Walpole (SIGOPS OSR 2010 /
// USENIX ATC 2011) that the Citrus paper's related-work section (§6)
// describes as the state of RCU data structures before Citrus: update
// concurrency limited to structural partitions (buckets), rather than
// Citrus's per-node locking.
//
// Lookups run inside RCU read-side critical sections and never block:
// they load the current table pointer, hash into a bucket, and walk an
// immutable-enough chain (nodes are unlinked by relinking predecessors;
// an unlinked node's next pointer still leads down its old chain, so a
// reader standing on one finishes correctly — the same "portal"
// argument as the relativistic red-black tree's rotations).
//
// Resize never blocks readers. Two strategies are provided:
//
//   - the default is Triplett's incremental *unzip* (see unzip.go): the
//     new table's buckets point into the old chains and entries are
//     migrated in place, one splice per chain per grace period — no
//     copies, no reader ever sees a torn chain;
//   - NewCopyResize builds a fresh table of entry copies and publishes
//     it with one store (one grace period's worth of waiting, more
//     allocation) — the simpler reference implementation the unzip is
//     tested against.
//
// In both, the resizer excludes writers for its duration (Triplett's
// full design also admits concurrent writers via bucket-pair locking,
// which we trade for a smaller correctness surface).
package rhash

import (
	"cmp"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/go-citrus/citrus/internal/partition"
	"github.com/go-citrus/citrus/rcu"
)

// Sizing policy: start small, double when average chain length would
// exceed maxLoad.
const (
	initialBuckets = 8
	maxLoad        = 3
)

type entry[K cmp.Ordered, V any] struct {
	key   K
	value V
	next  atomic.Pointer[entry[K, V]]
}

// table is one generation of the bucket array; a resize builds a new
// one and publishes it atomically.
type table[K cmp.Ordered, V any] struct {
	buckets []atomic.Pointer[entry[K, V]]
	locks   []sync.Mutex
}

func newTable[K cmp.Ordered, V any](n int) *table[K, V] {
	return &table[K, V]{
		buckets: make([]atomic.Pointer[entry[K, V]], n),
		locks:   make([]sync.Mutex, n),
	}
}

// Map is the concurrent hash table. Create with New; access through
// per-goroutine Handles.
type Map[K cmp.Ordered, V any] struct {
	flavor     rcu.Flavor
	seed       maphash.Seed
	resizeMu   sync.RWMutex // writers share it; a resizer excludes writers
	tab        atomic.Pointer[table[K, V]]
	size       atomic.Int64
	copyResize bool // use the copy-based grow instead of the unzip
}

// New returns an empty map using its own RCU domain.
func New[K cmp.Ordered, V any]() *Map[K, V] {
	return NewWithFlavor[K, V](rcu.NewDomain())
}

// NewWithFlavor returns an empty map whose readers register with the
// given RCU flavor.
//
// The bucket hash uses the process-wide partition.SharedSeed rather
// than a fresh seed per map, so two maps (or a map and any other
// router built on the shared seed) agree on where a key hashes —
// minting a seed per map made separately constructed routers over the
// same key set disagree, which broke any consumer comparing or
// migrating between two instances. Use NewWithSeed for an explicit,
// caller-controlled seed.
func NewWithFlavor[K cmp.Ordered, V any](flavor rcu.Flavor) *Map[K, V] {
	return NewWithSeed[K, V](flavor, partition.SharedSeed())
}

// NewWithSeed returns an empty map whose bucket hash uses the given
// seed. Maps built with equal seeds route every key identically.
func NewWithSeed[K cmp.Ordered, V any](flavor rcu.Flavor, seed maphash.Seed) *Map[K, V] {
	m := &Map[K, V]{flavor: flavor, seed: seed}
	m.tab.Store(newTable[K, V](initialBuckets))
	return m
}

// NewCopyResize returns a map that grows by copying every entry into a
// fresh table (one grace period, more allocation) instead of the
// incremental in-place unzip. Kept for comparison and as the simpler
// reference implementation; behaviour is otherwise identical.
func NewCopyResize[K cmp.Ordered, V any]() *Map[K, V] {
	m := New[K, V]()
	m.copyResize = true
	return m
}

// A Handle is one goroutine's access point (it carries the RCU reader).
type Handle[K cmp.Ordered, V any] struct {
	m *Map[K, V]
	r rcu.Reader
}

// NewHandle registers a handle for the calling goroutine.
func (m *Map[K, V]) NewHandle() *Handle[K, V] {
	return &Handle[K, V]{m: m, r: m.flavor.Register()}
}

// Close unregisters the handle.
func (h *Handle[K, V]) Close() {
	h.r.Unregister()
	h.r = nil
}

func (m *Map[K, V]) bucket(t *table[K, V], key K) int {
	return int(partition.Hash(m.seed, key) % uint64(len(t.buckets)))
}

// Contains returns the value stored under key, if any. Wait-free: one
// chain walk inside a read-side critical section.
func (h *Handle[K, V]) Contains(key K) (V, bool) {
	h.r.ReadLock()
	t := h.m.tab.Load()
	e := t.buckets[h.m.bucket(t, key)].Load()
	for e != nil {
		if e.key == key {
			v := e.value
			h.r.ReadUnlock()
			return v, true
		}
		e = e.next.Load()
	}
	h.r.ReadUnlock()
	var zero V
	return zero, false
}

// Insert adds (key, value); it returns false if key is already present.
func (h *Handle[K, V]) Insert(key K, value V) bool {
	m := h.m
	m.resizeMu.RLock()
	t := m.tab.Load()
	b := m.bucket(t, key)
	t.locks[b].Lock()
	for e := t.buckets[b].Load(); e != nil; e = e.next.Load() {
		if e.key == key {
			t.locks[b].Unlock()
			m.resizeMu.RUnlock()
			return false
		}
	}
	e := &entry[K, V]{key: key, value: value}
	e.next.Store(t.buckets[b].Load())
	t.buckets[b].Store(e) // publish: readers see the new head atomically
	t.locks[b].Unlock()
	m.resizeMu.RUnlock()

	if m.size.Add(1) > int64(maxLoad*len(t.buckets)) {
		if m.copyResize {
			m.grow(len(t.buckets))
		} else {
			m.growUnzip(len(t.buckets))
		}
	}
	return true
}

// Delete removes key; it returns false if key is absent.
func (h *Handle[K, V]) Delete(key K) bool {
	m := h.m
	m.resizeMu.RLock()
	defer m.resizeMu.RUnlock()
	t := m.tab.Load()
	b := m.bucket(t, key)
	t.locks[b].Lock()
	defer t.locks[b].Unlock()

	var prev *entry[K, V]
	for e := t.buckets[b].Load(); e != nil; e = e.next.Load() {
		if e.key == key {
			// Unlink by relinking the predecessor (or the head). The
			// removed entry keeps its next pointer, so a reader standing
			// on it still reaches the rest of the chain.
			next := e.next.Load()
			if prev == nil {
				t.buckets[b].Store(next)
			} else {
				prev.next.Store(next)
			}
			m.size.Add(-1)
			return true
		}
		prev = e
	}
	return false
}

// RangeScan calls fn on pairs with lo ≤ key < hi in ascending key
// order, stopping early when fn returns false. A hash table has no
// native key order, so the scan collects every in-range pair from all
// buckets inside one read-side critical section, sorts, and emits.
// Weakly consistent: the collection phase sees each bucket chain at a
// possibly different instant, but every emitted pair was present at
// some point during the scan, and a key present throughout cannot be
// missed (its chain is walked exactly once and unlinked entries keep
// their next pointers). O(n) time and O(result) memory per scan.
func (h *Handle[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	h.scan(&lo, &hi, fn)
}

// Scan calls fn on every pair in ascending key order, stopping early
// when fn returns false. Weakly consistent; see RangeScan.
func (h *Handle[K, V]) Scan(fn func(key K, value V) bool) {
	h.scan(nil, nil, fn)
}

func (h *Handle[K, V]) scan(lo, hi *K, fn func(K, V) bool) {
	type pair struct {
		key   K
		value V
	}
	var pairs []pair
	h.r.ReadLock()
	t := h.m.tab.Load()
	for i := range t.buckets {
		for e := t.buckets[i].Load(); e != nil; e = e.next.Load() {
			if lo != nil && cmp.Less(e.key, *lo) {
				continue
			}
			if hi != nil && !cmp.Less(e.key, *hi) {
				continue
			}
			pairs = append(pairs, pair{e.key, e.value})
		}
	}
	h.r.ReadUnlock()
	sort.Slice(pairs, func(i, j int) bool { return cmp.Less(pairs[i].key, pairs[j].key) })
	for i := range pairs {
		// A chain can be walked while a concurrent unzip splices it, so the
		// same key may be collected twice across generations; dedupe on the
		// sorted output.
		if i > 0 && pairs[i].key == pairs[i-1].key {
			continue
		}
		if !fn(pairs[i].key, pairs[i].value) {
			return
		}
	}
}

// grow doubles the bucket array if it is still oldLen buckets long
// (otherwise another writer already resized). Writers are excluded for
// the duration; readers are not — they finish on the old generation's
// frozen chains.
func (m *Map[K, V]) grow(oldLen int) {
	m.resizeMu.Lock()
	defer m.resizeMu.Unlock()
	old := m.tab.Load()
	if len(old.buckets) != oldLen {
		return
	}
	next := newTable[K, V](2 * oldLen)
	for i := range old.buckets {
		for e := old.buckets[i].Load(); e != nil; e = e.next.Load() {
			// Fresh copies: the old generation stays intact for readers
			// that already hold it.
			c := &entry[K, V]{key: e.key, value: e.value}
			b := m.bucket(next, e.key)
			c.next.Store(next.buckets[b].Load())
			next.buckets[b].Store(c)
		}
	}
	m.tab.Store(next)
	// In C this is where the old table's chains would be retired after
	// synchronize_rcu; Go's GC retires them once the last reader drops
	// its reference, which is the same grace-period condition.
}

// Len reports the number of keys.
func (m *Map[K, V]) Len() int { return int(m.size.Load()) }

// Buckets reports the current bucket count (for tests and tuning).
func (m *Map[K, V]) Buckets() int { return len(m.tab.Load().buckets) }

// Keys returns all keys in ascending order; a full-range scan.
// Quiescent use only.
func (m *Map[K, V]) Keys() []K {
	h := m.NewHandle()
	defer h.Close()
	var ks []K
	h.Scan(func(k K, _ V) bool { ks = append(ks, k); return true })
	return ks
}

// Range calls fn on every pair (in hash order, not key order — hash
// tables have no meaningful key order during iteration) until fn
// returns false. Quiescent use only.
func (m *Map[K, V]) Range(fn func(key K, value V) bool) {
	t := m.tab.Load()
	for i := range t.buckets {
		for e := t.buckets[i].Load(); e != nil; e = e.next.Load() {
			if !fn(e.key, e.value) {
				return
			}
		}
	}
}

// CheckInvariants verifies, for a quiescent map: every entry hashes to
// the bucket that holds it, no key occurs twice, the size counter is
// exact, and the load factor respects the resize policy.
func (m *Map[K, V]) CheckInvariants() error {
	t := m.tab.Load()
	seen := make(map[K]bool)
	count := 0
	for i := range t.buckets {
		for e := t.buckets[i].Load(); e != nil; e = e.next.Load() {
			if got := m.bucket(t, e.key); got != i {
				return fmt.Errorf("key %v in bucket %d, hashes to %d", e.key, i, got)
			}
			if seen[e.key] {
				return fmt.Errorf("key %v occurs twice", e.key)
			}
			seen[e.key] = true
			count++
		}
	}
	if got := m.Len(); got != count {
		return fmt.Errorf("size counter %d, counted %d", got, count)
	}
	if count > 2*maxLoad*len(t.buckets) {
		return fmt.Errorf("load factor runaway: %d keys in %d buckets", count, len(t.buckets))
	}
	return nil
}
