package rhash

import (
	"hash/maphash"
	"math/rand"
	"sync"
	"testing"

	"github.com/go-citrus/citrus/rcu"
)

func TestBasicOps(t *testing.T) {
	m := New[string, int]()
	h := m.NewHandle()
	defer h.Close()
	if _, ok := h.Contains("a"); ok {
		t.Fatal("Contains on empty map = true")
	}
	if !h.Insert("a", 1) || h.Insert("a", 2) {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := h.Contains("a"); !ok || v != 1 {
		t.Fatalf("Contains(a) = (%d, %v)", v, ok)
	}
	if !h.Delete("a") || h.Delete("a") {
		t.Fatal("Delete semantics broken")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthKeepsEverything(t *testing.T) {
	m := New[int, int]()
	h := m.NewHandle()
	defer h.Close()
	const n = 10000
	for k := 0; k < n; k++ {
		if !h.Insert(k, k*2) {
			t.Fatalf("Insert(%d) = false", k)
		}
	}
	if got := m.Buckets(); got < n/(2*maxLoad) {
		t.Fatalf("table never grew: %d buckets for %d keys", got, n)
	}
	for k := 0; k < n; k++ {
		if v, ok := h.Contains(k); !ok || v != k*2 {
			t.Fatalf("Contains(%d) = (%d, %v) after growth", k, v, ok)
		}
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len() = %d, want %d", got, n)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReaderSuspendedAcrossResize is the relativistic property of the
// copy-based resize: a reader paused mid-chain-walk while the table is
// resized (and further mutated) completes its lookup correctly on the
// old, frozen generation. (The unzip resize has a different discipline —
// it *waits* for such readers; see TestUnzipWaitsForSuspendedReader.)
func TestReaderSuspendedAcrossResize(t *testing.T) {
	m := NewCopyResize[int, int]()
	w := m.NewHandle()
	defer w.Close()
	// Fill without triggering growth yet.
	limit := maxLoad * initialBuckets
	for k := 0; k < limit; k++ {
		w.Insert(k, k)
	}
	target := limit - 1 // present before the reader starts, never deleted

	// The reader captures the current table inside its critical section,
	// then pauses before walking.
	reader := m.NewHandle()
	defer reader.Close()
	reader.r.ReadLock()
	oldTab := m.tab.Load()

	// Writer triggers a resize and churns the new generation.
	for k := limit; k < limit*8; k++ {
		w.Insert(k, k)
	}
	if m.tab.Load() == oldTab {
		t.Fatal("no resize happened")
	}

	// The reader resumes on its old, frozen generation.
	e := oldTab.buckets[m.bucket(oldTab, target)].Load()
	found := false
	for ; e != nil; e = e.next.Load() {
		if e.key == target {
			found = e.value == target
			break
		}
	}
	reader.r.ReadUnlock()
	if !found {
		t.Fatal("suspended reader missed a key that predates its critical section")
	}
	// And a fresh lookup sees the new generation.
	if v, ok := reader.Contains(limit + 3); !ok || v != limit+3 {
		t.Fatalf("post-resize lookup = (%d, %v)", v, ok)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOracle(t *testing.T) {
	m := New[int, int]()
	h := m.NewHandle()
	defer h.Close()
	oracle := map[int]int{}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20000; i++ {
		k := rng.Intn(500)
		switch rng.Intn(3) {
		case 0:
			_, present := oracle[k]
			if got := h.Insert(k, i); got == present {
				t.Fatalf("op %d: Insert(%d) = %v, present=%v", i, k, got, present)
			}
			if !present {
				oracle[k] = i
			}
		case 1:
			_, present := oracle[k]
			if got := h.Delete(k); got != present {
				t.Fatalf("op %d: Delete(%d) = %v, present=%v", i, k, got, present)
			}
			delete(oracle, k)
		default:
			wantV, wantOK := oracle[k]
			gotV, gotOK := h.Contains(k)
			if gotOK != wantOK || (wantOK && gotV != wantV) {
				t.Fatalf("op %d: Contains(%d) = (%d, %v), want (%d, %v)", i, k, gotV, gotOK, wantV, wantOK)
			}
		}
	}
	if got, want := m.Len(), len(oracle); got != want {
		t.Fatalf("Len() = %d, oracle %d", got, want)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentChurnAcrossResizes drives writers hard enough to force
// several growth steps mid-flight while readers check permanent keys.
func TestConcurrentChurnAcrossResizes(t *testing.T) {
	m := New[int, int]()
	{
		h := m.NewHandle()
		for k := 0; k < 64; k++ {
			h.Insert(-k-1, k) // negative keys are permanent
		}
		h.Close()
	}
	startBuckets := m.Buckets()

	var readers, writers sync.WaitGroup
	var misses int64
	var missMu sync.Mutex
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := -rng.Intn(64) - 1
				if _, ok := h.Contains(k); !ok {
					missMu.Lock()
					misses++
					missMu.Unlock()
				}
			}
		}(int64(r))
	}
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			h := m.NewHandle()
			defer h.Close()
			base := w * 100000
			for k := base; k < base+30000; k++ {
				h.Insert(k, k)
				if k%3 == 0 {
					h.Delete(k)
				}
			}
		}(w)
	}
	writers.Wait() // writers finish on their own; then stop the readers
	close(stop)
	readers.Wait()

	if misses != 0 {
		t.Fatalf("%d misses on permanent keys across resizes", misses)
	}
	if m.Buckets() <= startBuckets {
		t.Fatalf("no growth under load: %d buckets", m.Buckets())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Two maps (same seed, same bucket count) must place every key in the
// same bucket — the routing-stability property the shared partition
// seed exists for. Before the fix each map minted its own seed, so two
// maps over the same key set disagreed on every key's bucket.
func TestRoutingStableAcrossInstances(t *testing.T) {
	a := New[int, int]()
	b := New[int, int]()
	ta, tb := a.tab.Load(), b.tab.Load()
	if len(ta.buckets) != len(tb.buckets) {
		t.Fatalf("fresh maps differ in bucket count: %d vs %d", len(ta.buckets), len(tb.buckets))
	}
	for k := 0; k < 4096; k++ {
		if ba, bb := a.bucket(ta, k), b.bucket(tb, k); ba != bb {
			t.Fatalf("two default-seeded maps disagree on key %d: bucket %d vs %d", k, ba, bb)
		}
	}
}

// An explicit seed gives the same guarantee across flavors and
// construction orders.
func TestRoutingStableUnderExplicitSeed(t *testing.T) {
	seed := maphash.MakeSeed()
	a := NewWithSeed[string, int](rcu.NewDomain(), seed)
	b := NewWithSeed[string, int](rcu.NewClassicDomain(), seed)
	ta, tb := a.tab.Load(), b.tab.Load()
	keys := []string{"", "a", "forest", "shard", "grace", "period", "citrus"}
	for _, k := range keys {
		if ba, bb := a.bucket(ta, k), b.bucket(tb, k); ba != bb {
			t.Fatalf("same-seed maps disagree on %q: bucket %d vs %d", k, ba, bb)
		}
	}
}
