package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment writes n records into a standalone segment file and
// returns the file path, the frame boundaries (byte offset just past
// each record), and the payloads.
func buildSegment(t testing.TB, dir string, first LSN, n int) (path string, bounds []int64, payloads [][]byte) {
	t.Helper()
	var buf []byte
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("payload-%d-%s", i, bytes.Repeat([]byte{byte('a' + i%26)}, i%17)))
		payloads = append(payloads, p)
		buf = appendFrame(buf, first+LSN(i), p)
		bounds = append(bounds, int64(len(buf)))
	}
	path = segmentPath(dir, first)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, bounds, payloads
}

// TestRecoverTruncateEveryOffset is the prefix-durability proof: for a
// segment of n records, truncate the file at EVERY byte offset and
// reopen. Open must never panic, must recover exactly the records
// whose frames are fully contained in the truncated file, must discard
// the torn tail, and a second Open must find nothing left to repair.
func TestRecoverTruncateEveryOffset(t *testing.T) {
	master := t.TempDir()
	path, bounds, payloads := buildSegment(t, master, 1, 12)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		dir := filepath.Join(master, fmt.Sprintf("cut-%04d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segmentPath(dir, 1), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// The expected surviving prefix: every record whose frame ends
		// at or before the cut.
		wantRecs := 0
		var wantValid int64
		for i, b := range bounds {
			if b <= cut {
				wantRecs = i + 1
				wantValid = b
			}
		}
		l, info, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if info.Records != int64(wantRecs) {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, info.Records, wantRecs)
		}
		if wantTorn := cut - wantValid; info.TornBytes != wantTorn {
			t.Fatalf("cut=%d: torn bytes %d, want %d", cut, info.TornBytes, wantTorn)
		}
		// The surviving records are byte-identical to what was appended.
		i := 0
		if err := l.Replay(0, func(lsn LSN, payload []byte) error {
			if lsn != LSN(i+1) || !bytes.Equal(payload, payloads[i]) {
				return fmt.Errorf("record %d: lsn=%d payload=%q", i, lsn, payload)
			}
			i++
			return nil
		}); err != nil {
			t.Fatalf("cut=%d: replay: %v", cut, err)
		}
		if i != wantRecs {
			t.Fatalf("cut=%d: replayed %d, want %d", cut, i, wantRecs)
		}
		// The torn tail is gone from disk.
		fi, err := os.Stat(segmentPath(dir, 1))
		if err != nil {
			t.Fatalf("cut=%d: stat after repair: %v", cut, err)
		}
		if fi.Size() != wantValid {
			t.Fatalf("cut=%d: file size %d after repair, want %d", cut, fi.Size(), wantValid)
		}
		// The log is usable: the next append continues the sequence.
		lsn, err := l.Append([]byte("resume"))
		if err != nil || lsn != LSN(wantRecs+1) {
			t.Fatalf("cut=%d: append after repair: lsn=%d err=%v", cut, lsn, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		// Idempotence: a second Open finds a clean log.
		l2, info2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: second Open: %v", cut, err)
		}
		if info2.TornBytes != 0 || info2.Records != int64(wantRecs)+1 {
			t.Fatalf("cut=%d: second Open not clean: %+v", cut, info2)
		}
		l2.Close()
		os.RemoveAll(dir)
	}
}

// TestRecoverTornTailViaMangleHook drives the same property through
// the fault-injection hook: the LAST physical write is torn mid-frame,
// exactly as an OS crash would leave it.
func TestRecoverTornTailViaMangleHook(t *testing.T) {
	dir := t.TempDir()
	writes := 0
	tearAt := 5 // tear the 5th write halfway through
	l, _, err := Open(dir, Options{
		Policy: PolicyAlways,
		Hooks: Hooks{MangleWrite: func(b []byte) []byte {
			writes++
			if writes == tearAt {
				return b[:len(b)/2]
			}
			return b
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tearAt; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%d-padding-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon without Close — the torn write is the tail, like a crash.
	// (Closing would append nothing but fsync; the file already holds
	// the torn frame.) Stop the committer goroutine only.
	l.mu.Lock()
	l.closed = true
	l.f.Close()
	l.mu.Unlock()
	close(l.stopc)
	<-l.donec

	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open over torn tail: %v", err)
	}
	defer l2.Close()
	if info.Records != int64(tearAt-1) {
		t.Fatalf("recovered %d records, want %d", info.Records, tearAt-1)
	}
	if info.TornBytes == 0 || info.TornFile == "" {
		t.Fatalf("torn tail not reported: %+v", info)
	}
}

// TestRecoverBitFlipInTail verifies a bit flip in the last frame is
// caught by the CRC and truncated like a torn write.
func TestRecoverBitFlipInTail(t *testing.T) {
	dir := t.TempDir()
	path, bounds, _ := buildSegment(t, dir, 1, 6)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit inside the LAST record.
	data[bounds[4]+frameHeaderSize+2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if info.Records != 5 || info.TornBytes != bounds[5]-bounds[4] {
		t.Fatalf("bit flip recovery: %+v (want 5 records, %d torn)", info, bounds[5]-bounds[4])
	}
}

// FuzzWALRecover feeds arbitrary bytes to Open as a last segment. The
// properties: Open never panics; if it succeeds, a second Open over
// the repaired directory reports zero torn bytes (repair is
// idempotent) and Replay visits exactly info.Records records.
func FuzzWALRecover(f *testing.F) {
	f.Add([]byte{})
	var valid []byte
	valid = appendFrame(valid, 1, []byte("hello"))
	valid = appendFrame(valid, 2, []byte("world"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(append(append([]byte{}, valid...), 0x01, 0x02))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, info, err := Open(dir, Options{})
		if err != nil {
			return // rejected loudly — acceptable for arbitrary garbage
		}
		n := int64(0)
		if err := l.Replay(0, func(lsn LSN, payload []byte) error {
			n++
			return nil
		}); err != nil {
			t.Fatalf("replay after repair: %v", err)
		}
		if n != info.Records {
			t.Fatalf("replay saw %d records, recovery reported %d", n, info.Records)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		l2, info2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open after repair: %v", err)
		}
		if info2.TornBytes != 0 {
			t.Fatalf("repair not idempotent: second Open found %d torn bytes", info2.TornBytes)
		}
		if info2.Records != info.Records {
			t.Fatalf("second Open found %d records, first found %d", info2.Records, info.Records)
		}
		l2.Close()
	})
}
