package wal

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkWALAppend measures the append→durable round trip per fsync
// policy and writer parallelism — the `make bench-wal` target. The
// interesting comparison is always vs group at parallelism > 1: group
// commit amortizes one fsync across every concurrent writer.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 128)
	for _, pol := range []Policy{PolicyAlways, PolicyGroup, PolicyNone} {
		for _, par := range []int{1, 8} {
			b.Run(fmt.Sprintf("policy=%s/writers=%d", pol, par), func(b *testing.B) {
				l, _, err := Open(b.TempDir(), Options{Policy: pol})
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				b.SetBytes(int64(frameSize(payload)))
				b.SetParallelism(par)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						lsn, err := l.Append(payload)
						if err != nil {
							b.Fatal(err)
						}
						if err := l.WaitDurable(lsn); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.StopTimer()
				st := l.Stats()
				if st.Appends > 0 {
					b.ReportMetric(float64(st.Fsyncs)/float64(st.Appends), "fsyncs/append")
				}
			})
		}
	}
}

// BenchmarkWALReplay measures recovery replay throughput.
func BenchmarkWALReplay(b *testing.B) {
	l, _, err := Open(b.TempDir(), Options{Policy: PolicyNone})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 128)
	const n = 10000
	for i := 0; i < n; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(n * frameSize(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cnt atomic.Int64
		if err := l.Replay(0, func(lsn LSN, payload []byte) error {
			cnt.Add(1)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if cnt.Load() != n {
			b.Fatalf("replayed %d, want %d", cnt.Load(), n)
		}
	}
}
