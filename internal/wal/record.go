package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Frame layout (all little-endian):
//
//	offset 0  u32  payload length
//	offset 4  u32  CRC32C over bytes 8..end (LSN + payload)
//	offset 8  u64  LSN
//	offset 16 ...  payload
const frameHeaderSize = 16

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameSize is the on-disk size of a frame carrying payload.
func frameSize(payload []byte) int { return frameHeaderSize + len(payload) }

// appendFrame appends the frame for (lsn, payload) to dst.
func appendFrame(dst []byte, lsn LSN, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(lsn))
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameError describes why a frame failed validation — distinguishing
// a torn tail (recoverable on the last segment) from I/O problems.
type frameError struct {
	off    int64
	reason string
}

func (e *frameError) Error() string {
	return fmt.Sprintf("invalid frame at offset %d: %s", e.off, e.reason)
}

// readRecords scans the segment at path, whose first record must carry
// LSN first, calling fn (if non-nil) for each valid record in order.
// It returns the number of valid records, the byte offset just past
// the last valid frame (the truncation point for a torn tail), a
// *frameError if validation stopped early (nil if the file ended
// exactly on a frame boundary), and any I/O or callback error.
//
// Validation is strict: the length field is bounded, the LSN must be
// exactly the expected next LSN, and the CRC must match. Any mismatch
// stops the scan — on the last segment of a log that is a torn tail to
// truncate; anywhere else it is corruption.
func readRecords(path string, first LSN, fn func(lsn LSN, payload []byte) error) (records int64, validSize int64, ferr *frameError, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, err
	}
	defer f.Close()

	var hdr [frameHeaderSize]byte
	var payload []byte
	expect := first
	for {
		n, rerr := io.ReadFull(f, hdr[:])
		if rerr == io.EOF {
			return records, validSize, nil, nil
		}
		if rerr == io.ErrUnexpectedEOF {
			return records, validSize, &frameError{validSize, fmt.Sprintf("truncated header (%d of %d bytes)", n, frameHeaderSize)}, nil
		}
		if rerr != nil {
			return records, validSize, nil, rerr
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		if plen > maxRecordBytes {
			return records, validSize, &frameError{validSize, fmt.Sprintf("implausible payload length %d", plen)}, nil
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if n, rerr := io.ReadFull(f, payload); rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return records, validSize, &frameError{validSize, fmt.Sprintf("truncated payload (%d of %d bytes)", n, plen)}, nil
			}
			return records, validSize, nil, rerr
		}
		lsn := LSN(binary.LittleEndian.Uint64(hdr[8:16]))
		crc := crc32.Update(0, castagnoli, hdr[8:16])
		crc = crc32.Update(crc, castagnoli, payload)
		if got := binary.LittleEndian.Uint32(hdr[4:8]); got != crc {
			return records, validSize, &frameError{validSize, fmt.Sprintf("CRC mismatch (stored %08x, computed %08x)", got, crc)}, nil
		}
		if lsn != expect {
			return records, validSize, &frameError{validSize, fmt.Sprintf("LSN %d, want %d", lsn, expect)}, nil
		}
		if fn != nil {
			if cberr := fn(lsn, payload); cberr != nil {
				return records, validSize, nil, cberr
			}
		}
		records++
		validSize += int64(frameHeaderSize) + int64(plen)
		expect++
	}
}
