// Package wal is the durability substrate behind kvserver's -wal-dir:
// a segmented, append-only write-ahead log with CRC32C-framed records,
// group commit, and torn-tail recovery.
//
// The log stores opaque payloads; callers encode their own operations.
// Every record is framed as
//
//	u32 payload length | u32 CRC32C over (lsn, payload) | u64 LSN | payload
//
// with all integers little-endian. LSNs are assigned contiguously from
// 1 by Append, so a valid log is a gapless prefix 1..TailLSN (or
// s..TailLSN after snapshot truncation dropped whole segments below s).
// On Open the segments are re-validated frame by frame; the LAST
// segment may end in a torn frame — a crash mid-write — which Open
// truncates away, restoring the longest valid prefix (prefix
// durability; see the truncate-at-every-offset test). An invalid frame
// anywhere else is corruption and fails Open.
//
// Durability is governed by the fsync Policy:
//
//   - PolicyGroup (default): Append buffers the frame and wakes the
//     committer, which writes and fsyncs everything buffered — one
//     fsync covers every append since the previous one (group commit).
//     WaitDurable blocks until the caller's LSN is covered.
//   - PolicyAlways: Append writes and fsyncs inline before returning;
//     WaitDurable is a no-op. One fsync per append — the slow, simple
//     bound.
//   - PolicyNone: Append buffers and returns; WaitDurable returns
//     immediately. The buffer is flushed lazily (FlushEvery, or when it
//     grows past flushChunk) and never fsynced until Close. A killed
//     process loses its buffered tail — acknowledged writes included.
//     This is the crash-torture harness's "nofsync" negative control,
//     not a production setting.
//
// Fault-injection hooks (Options.Hooks) let tests write torn or
// corrupted frames and skip fsyncs without a real power failure; see
// docs/DURABILITY.md.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/go-citrus/citrus/citrusstat"
)

// LSN is a log sequence number: the 1-based index of a record in the
// log. 0 means "no record" (an empty log, or "replay everything").
type LSN uint64

// Policy selects when an Append becomes durable; see the package
// comment. The zero value is PolicyGroup.
type Policy int

const (
	// PolicyGroup batches fsyncs: one fsync covers every append since
	// the previous fsync, and WaitDurable blocks until covered.
	PolicyGroup Policy = iota
	// PolicyAlways fsyncs inline in every Append.
	PolicyAlways
	// PolicyNone acknowledges appends while they still sit in the
	// user-space buffer. NOT durable against a process kill.
	PolicyNone
)

// ParsePolicy maps a -fsync flag value to its Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "", "group":
		return PolicyGroup, nil
	case "always":
		return PolicyAlways, nil
	case "none", "nofsync":
		return PolicyNone, nil
	default:
		return 0, fmt.Errorf("unknown fsync policy %q (want always, group, or none)", s)
	}
}

func (p Policy) String() string {
	switch p {
	case PolicyGroup:
		return "group"
	case PolicyAlways:
		return "always"
	case PolicyNone:
		return "none"
	}
	return "policy-" + strconv.Itoa(int(p))
}

const (
	defaultSegmentBytes = int64(4 << 20)
	defaultFlushEvery   = 500 * time.Millisecond
	// flushChunk bounds how many bytes PolicyNone lets accumulate in the
	// user-space buffer before forcing a flush to the OS.
	flushChunk = 256 << 10
	// maxRecordBytes is the framing sanity bound: a length field past it
	// is treated as a torn/corrupt frame, not an allocation request.
	maxRecordBytes = 1 << 24
)

// ErrClosed is returned by Append and WaitDurable after Close.
var ErrClosed = errors.New("wal: log closed")

// Hooks are fault-injection points for tests. Leave nil in production.
type Hooks struct {
	// MangleWrite, if set, transforms the byte slice of every physical
	// write — returning a shortened slice simulates a torn write,
	// flipping a bit simulates media corruption. The returned slice is
	// what reaches the file.
	MangleWrite func([]byte) []byte
	// SkipFsync, if set and returning true, skips that fsync while still
	// advancing the durable LSN — the "device lied" fault.
	SkipFsync func() bool
}

// Options configure Open.
type Options struct {
	// SegmentBytes is the roll threshold (default 4 MiB): an append that
	// would push the active segment past it starts a new segment first.
	SegmentBytes int64
	// Policy is the fsync policy (default PolicyGroup).
	Policy Policy
	// FlushEvery is PolicyNone's lazy flush period (default 500ms).
	FlushEvery time.Duration
	// Hooks are the fault-injection points; nil in production.
	Hooks Hooks
}

// RecoveryInfo reports what Open found and repaired.
type RecoveryInfo struct {
	Segments int   `json:"segments"`
	Records  int64 `json:"records"`
	FirstLSN LSN   `json:"first_lsn"` // lowest surviving LSN (0 when empty)
	LastLSN  LSN   `json:"last_lsn"`  // highest surviving LSN (0 when empty)
	// TornBytes counts bytes truncated from the last segment's tail — a
	// partially written frame from a crash. TornFile names the segment.
	TornBytes int64  `json:"torn_bytes"`
	TornFile  string `json:"torn_file,omitempty"`
}

// Stats is a point-in-time snapshot of the log's activity.
type Stats struct {
	Appends       int64 `json:"appends"`
	AppendedBytes int64 `json:"appended_bytes"`
	Fsyncs        int64 `json:"fsyncs"`
	// FsyncsSkipped counts fsyncs suppressed by the SkipFsync hook.
	FsyncsSkipped   int64 `json:"fsyncs_skipped,omitempty"`
	SegmentsRolled  int64 `json:"segments_rolled"`
	SegmentsRemoved int64 `json:"segments_removed"`
	Segments        int   `json:"segments"`
	TailLSN         LSN   `json:"tail_lsn"`
	FlushedLSN      LSN   `json:"flushed_lsn"`
	DurableLSN      LSN   `json:"durable_lsn"`
	PendingBytes    int   `json:"pending_bytes"`
	// FsyncWait is the fsync latency distribution — the group-commit
	// price every durable Append pays a share of.
	FsyncWait citrusstat.Snapshot `json:"fsync_wait"`
}

// segInfo tracks one on-disk segment. Segments are ordered by first
// LSN; the last entry is the active (append) segment.
type segInfo struct {
	path  string
	first LSN // first LSN stored (== next LSN when still empty)
	last  LSN // last LSN stored (first-1 when empty)
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	dir  string
	opts Options

	fsyncHist citrusstat.Histogram

	mu      sync.Mutex
	durCond *sync.Cond // signaled when durable advances or err/closed flips
	buf     []byte     // frames appended but not yet written to the OS
	tail    LSN        // last assigned LSN
	flushed LSN        // last LSN written to the OS
	durable LSN        // last LSN fsynced
	f       *os.File   // active segment
	segs    []segInfo
	segSize int64 // bytes physically written to the active segment
	closed  bool
	err     error // sticky I/O error; the log is dead once set

	appends, appendedBytes          int64
	fsyncs, fsyncsSkipped           int64
	segmentsRolled, segmentsRemoved int64

	wake  chan struct{}
	stopc chan struct{}
	donec chan struct{}
}

// Open opens (creating if needed) the log in dir, validates every
// segment, truncates a torn tail on the last one, and positions the
// log for appending. The returned RecoveryInfo describes what was
// found; replay the surviving records with Replay before appending.
func Open(dir string, opts Options) (*Log, RecoveryInfo, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = defaultFlushEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, err
	}
	l := &Log{
		dir:   dir,
		opts:  opts,
		wake:  make(chan struct{}, 1),
		stopc: make(chan struct{}),
		donec: make(chan struct{}),
	}
	l.durCond = sync.NewCond(&l.mu)

	info, err := l.recover()
	if err != nil {
		return nil, info, err
	}
	go l.committer()
	return l, info, nil
}

// segmentPath names a segment by the first LSN it holds.
func segmentPath(dir string, first LSN) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", uint64(first)))
}

// listSegments returns the segment files in dir ordered by first LSN.
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
		first, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: unparseable name", name)
		}
		segs = append(segs, segInfo{path: filepath.Join(dir, name), first: LSN(first)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// recover scans the on-disk segments, truncates a torn tail on the
// last one, and opens the active segment for appending.
func (l *Log) recover() (RecoveryInfo, error) {
	var info RecoveryInfo
	segs, err := listSegments(l.dir)
	if err != nil {
		return info, err
	}
	if len(segs) == 0 {
		// Fresh log: first record will be LSN 1.
		return info, l.startSegment(1)
	}
	expect := segs[0].first
	info.FirstLSN = segs[0].first
	var lastSize int64
	for i := range segs {
		last := i == len(segs)-1
		if segs[i].first != expect {
			return info, fmt.Errorf("wal: segment %s: starts at LSN %d, want %d (gap — missing segment?)",
				filepath.Base(segs[i].path), segs[i].first, expect)
		}
		recs, validSize, frameErr, ioErr := readRecords(segs[i].path, segs[i].first, nil)
		if ioErr != nil {
			return info, ioErr
		}
		if frameErr != nil && !last {
			return info, fmt.Errorf("wal: segment %s: invalid frame mid-log: %w",
				filepath.Base(segs[i].path), frameErr)
		}
		segs[i].last = segs[i].first + LSN(recs) - 1
		if recs == 0 {
			segs[i].last = segs[i].first - 1
		}
		info.Records += recs
		expect = segs[i].last + 1
		if last {
			st, err := os.Stat(segs[i].path)
			if err != nil {
				return info, err
			}
			if st.Size() > validSize {
				info.TornBytes = st.Size() - validSize
				info.TornFile = filepath.Base(segs[i].path)
				if err := os.Truncate(segs[i].path, validSize); err != nil {
					return info, fmt.Errorf("wal: truncating torn tail of %s: %w", segs[i].path, err)
				}
			}
			lastSize = validSize
		}
	}
	info.Segments = len(segs)
	l.segs = segs
	active := &l.segs[len(l.segs)-1]
	l.tail = active.last
	l.flushed = l.tail
	l.durable = l.tail
	if info.Records > 0 {
		info.LastLSN = l.tail
	} else {
		info.FirstLSN = 0
	}
	f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return info, err
	}
	l.f = f
	l.segSize = lastSize
	return info, nil
}

// startSegment creates and opens a fresh segment whose first record
// will carry LSN first. Caller holds mu (or runs before concurrency).
func (l *Log) startSegment(first LSN) error {
	f, err := os.OpenFile(segmentPath(l.dir, first), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.segSize = 0
	l.segs = append(l.segs, segInfo{path: f.Name(), first: first, last: first - 1})
	return syncDir(l.dir)
}

// Append assigns the next LSN to payload and stages the frame for the
// configured policy. It returns the assigned LSN; pair it with
// WaitDurable before acknowledging the write to a client.
func (l *Log) Append(payload []byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	lsn := l.tail + 1
	frameBytes := int64(frameSize(payload))
	if l.segSize+int64(len(l.buf))+frameBytes > l.opts.SegmentBytes && l.segSize+int64(len(l.buf)) > 0 {
		if err := l.rollLocked(lsn); err != nil {
			return 0, err
		}
	}
	l.buf = appendFrame(l.buf, lsn, payload)
	l.tail = lsn
	l.segs[len(l.segs)-1].last = lsn
	l.appends++
	l.appendedBytes += frameBytes
	switch l.opts.Policy {
	case PolicyAlways:
		if err := l.flushLocked(); err != nil {
			return 0, err
		}
		if err := l.fsyncLocked(); err != nil {
			return 0, err
		}
	case PolicyGroup:
		l.kick()
	case PolicyNone:
		if len(l.buf) >= flushChunk {
			l.kick()
		}
	}
	return lsn, nil
}

// WaitDurable blocks until lsn is durable under the configured policy:
// fsynced for PolicyAlways/PolicyGroup, immediately (without any
// durability) for PolicyNone. It returns the log's sticky error if the
// log died, and ErrClosed if Close ran before lsn became durable.
func (l *Log) WaitDurable(lsn LSN) error {
	if l.opts.Policy == PolicyNone {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable < lsn {
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		l.durCond.Wait()
	}
	return l.err
}

// Sync flushes the buffer and fsyncs the active segment, whatever the
// policy — the drain path's explicit flush point.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	return l.fsyncLocked()
}

// TailLSN reports the last assigned LSN. Because callers append only
// after applying (see the kvserver durable store), every record at or
// below TailLSN has been applied — which is what makes TailLSN a sound
// fuzzy-snapshot position.
func (l *Log) TailLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// DurableLSN reports the last fsynced LSN.
func (l *Log) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Cut rolls to a fresh segment so everything appended so far sits in
// sealed segments — called by the snapshotter before truncation so the
// snapshot LSN lands on (or near) a segment boundary. A no-op on an
// empty active segment.
func (l *Log) Cut() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if l.segSize+int64(len(l.buf)) == 0 {
		return nil
	}
	return l.rollLocked(l.tail + 1)
}

// TruncateBefore removes sealed segments whose every record is at or
// below lsn — they are covered by a durable snapshot at lsn and no
// longer needed for recovery. The active segment always survives. It
// returns how many segment files were removed.
func (l *Log) TruncateBefore(lsn LSN) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.segs) > 1 && l.segs[0].last <= lsn {
		if err := os.Remove(l.segs[0].path); err != nil {
			return removed, err
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		l.segmentsRemoved += int64(removed)
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Replay streams every record with LSN strictly greater than from, in
// LSN order, to fn. Call it after Open and before any Append — it reads
// the segment files directly and does not see unflushed appends.
func (l *Log) Replay(from LSN, fn func(lsn LSN, payload []byte) error) error {
	l.mu.Lock()
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	segs := append([]segInfo(nil), l.segs...)
	l.mu.Unlock()
	for _, s := range segs {
		if s.last < s.first || s.last <= from {
			continue // empty, or wholly below the replay point
		}
		_, _, frameErr, err := readRecords(s.path, s.first, func(lsn LSN, payload []byte) error {
			if lsn <= from {
				return nil
			}
			return fn(lsn, payload)
		})
		if err != nil {
			return err
		}
		if frameErr != nil {
			return fmt.Errorf("wal: replay %s: %w", filepath.Base(s.path), frameErr)
		}
	}
	return nil
}

// Stats snapshots the log's counters and gauges.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:         l.appends,
		AppendedBytes:   l.appendedBytes,
		Fsyncs:          l.fsyncs,
		FsyncsSkipped:   l.fsyncsSkipped,
		SegmentsRolled:  l.segmentsRolled,
		SegmentsRemoved: l.segmentsRemoved,
		Segments:        len(l.segs),
		TailLSN:         l.tail,
		FlushedLSN:      l.flushed,
		DurableLSN:      l.durable,
		PendingBytes:    len(l.buf),
		FsyncWait:       l.fsyncHist.Snapshot(),
	}
}

// Policy reports the configured fsync policy.
func (l *Log) Policy() Policy { return l.opts.Policy }

// Dir reports the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes and fsyncs everything buffered — whatever the policy —
// and closes the active segment. Idempotent; Append and WaitDurable
// return ErrClosed afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		<-l.donec
		return err
	}
	l.closed = true
	ferr := l.flushLocked()
	if ferr == nil {
		ferr = l.fsyncLocked()
	}
	if cerr := l.f.Close(); ferr == nil && cerr != nil {
		ferr = cerr
	}
	l.durCond.Broadcast()
	l.mu.Unlock()
	close(l.stopc)
	<-l.donec
	return ferr
}

// committer is the background flush/fsync goroutine: group commit for
// PolicyGroup, lazy flushing for PolicyNone. (PolicyAlways flushes
// inline in Append; the goroutine just waits for Close.)
func (l *Log) committer() {
	defer close(l.donec)
	ticker := time.NewTicker(l.opts.FlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-l.stopc:
			return
		case <-l.wake:
		case <-ticker.C:
			if l.opts.Policy != PolicyNone {
				continue
			}
		}
		l.mu.Lock()
		if l.closed || l.err != nil {
			l.mu.Unlock()
			continue
		}
		if err := l.flushLocked(); err == nil && l.opts.Policy == PolicyGroup && l.durable < l.flushed {
			l.fsyncLocked() //nolint:errcheck // sticky error recorded; waiters woken
		}
		l.mu.Unlock()
	}
}

// kick wakes the committer; a pending wakeup coalesces.
func (l *Log) kick() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// flushLocked writes the buffer to the active segment. Caller holds mu.
func (l *Log) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if len(l.buf) == 0 {
		return nil
	}
	b := l.buf
	if l.opts.Hooks.MangleWrite != nil {
		b = l.opts.Hooks.MangleWrite(b)
	}
	n, err := l.f.Write(b)
	l.segSize += int64(n)
	if err != nil {
		l.fail(err)
		return err
	}
	l.buf = l.buf[:0]
	l.flushed = l.tail
	return nil
}

// fsyncLocked fsyncs the active segment and advances the durable LSN.
// Caller holds mu and has flushed.
func (l *Log) fsyncLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.opts.Hooks.SkipFsync != nil && l.opts.Hooks.SkipFsync() {
		l.fsyncsSkipped++
		l.durable = l.flushed
		l.durCond.Broadcast()
		return nil
	}
	t0 := time.Now()
	err := l.f.Sync()
	l.fsyncHist.Record(time.Since(t0))
	if err != nil {
		l.fail(err)
		return err
	}
	l.fsyncs++
	l.durable = l.flushed
	l.durCond.Broadcast()
	return nil
}

// rollLocked seals the active segment (flush + fsync + close) and
// starts a new one whose first record will be next. Caller holds mu.
func (l *Log) rollLocked(next LSN) error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.fsyncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.fail(err)
		return err
	}
	if err := l.startSegment(next); err != nil {
		l.fail(err)
		return err
	}
	l.segmentsRolled++
	return nil
}

// fail records the sticky error and wakes every waiter. Caller holds mu.
func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = err
	}
	l.durCond.Broadcast()
}

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
