package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collect replays the whole log into a slice of (lsn, payload) pairs.
func collect(t *testing.T, l *Log, from LSN) []string {
	t.Helper()
	var out []string
	if err := l.Replay(from, func(lsn LSN, payload []byte) error {
		out = append(out, fmt.Sprintf("%d:%s", lsn, payload))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, info, err := Open(dir, Options{Policy: PolicyGroup})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if info.Records != 0 || info.TornBytes != 0 {
		t.Fatalf("fresh log reported recovery %+v", info)
	}
	for i := 0; i < 100; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("rec-%03d", i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if lsn != LSN(i+1) {
			t.Fatalf("Append %d assigned LSN %d, want %d", i, lsn, i+1)
		}
	}
	if err := l.WaitDurable(100); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	got := collect(t, l, 0)
	if len(got) != 100 || got[0] != "1:rec-000" || got[99] != "100:rec-099" {
		t.Fatalf("replay mismatch: len=%d first=%q last=%q", len(got), got[0], got[len(got)-1])
	}
	// Replay from the middle skips the prefix.
	mid := collect(t, l, 60)
	if len(mid) != 40 || mid[0] != "61:rec-060" {
		t.Fatalf("replay from 60: len=%d first=%q", len(mid), mid[0])
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}

	// Reopen: everything survives, no torn bytes.
	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if info.Records != 100 || info.TornBytes != 0 || info.FirstLSN != 1 || info.LastLSN != 100 {
		t.Fatalf("reopen recovery %+v", info)
	}
	if l2.TailLSN() != 100 {
		t.Fatalf("reopened tail %d, want 100", l2.TailLSN())
	}
	// Appends continue the sequence.
	lsn, err := l2.Append([]byte("after"))
	if err != nil || lsn != 101 {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestSegmentRollAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force frequent rolls.
	l, _, err := Open(dir, Options{SegmentBytes: 256, Policy: PolicyAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	payload := bytes.Repeat([]byte("p"), 48) // 64B frames → 4 per segment
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.SegmentsRolled == 0 || st.Segments < 2 {
		t.Fatalf("expected multiple segments, got stats %+v", st)
	}
	if got := collect(t, l, 0); len(got) != n {
		t.Fatalf("replay across segments: %d records, want %d", len(got), n)
	}

	// Truncate everything below LSN 20: only whole sealed segments go.
	removed, err := l.TruncateBefore(20)
	if err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	if removed == 0 {
		t.Fatalf("TruncateBefore removed nothing")
	}
	got := collect(t, l, 20)
	if len(got) != n-20 || got[0] != fmt.Sprintf("21:%s", payload) {
		t.Fatalf("post-truncate replay: len=%d first=%.20q", len(got), got[0])
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen after truncation: log starts at the surviving segment.
	l2, info, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if info.LastLSN != n || info.FirstLSN == 1 {
		t.Fatalf("reopen after truncate: %+v", info)
	}
}

func TestCutSealsActiveSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Cut(); err != nil {
		t.Fatalf("Cut: %v", err)
	}
	// Everything ≤ 5 is now in a sealed segment and can be truncated.
	removed, err := l.TruncateBefore(5)
	if err != nil || removed != 1 {
		t.Fatalf("TruncateBefore after Cut: removed=%d err=%v", removed, err)
	}
	// Cut on an empty active segment is a no-op.
	if err := l.Cut(); err != nil {
		t.Fatalf("empty Cut: %v", err)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("segments after empty cut: %+v", st)
	}
	// The sequence continues unbroken.
	lsn, err := l.Append([]byte("y"))
	if err != nil || lsn != 6 {
		t.Fatalf("append after cut: lsn=%d err=%v", lsn, err)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: PolicyGroup})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					errs <- err
					return
				}
				if err := l.WaitDurable(lsn); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("writer: %v", err)
	}
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("appends %d, want %d", st.Appends, writers*perWriter)
	}
	if st.DurableLSN != LSN(writers*perWriter) {
		t.Fatalf("durable %d, want %d", st.DurableLSN, writers*perWriter)
	}
	// The whole point of group commit: far fewer fsyncs than appends.
	if st.Fsyncs >= st.Appends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
	if got := collect(t, l, 0); len(got) != writers*perWriter {
		t.Fatalf("replay %d records, want %d", len(got), writers*perWriter)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestPolicyNoneBuffersInUserSpace(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: PolicyNone, FlushEvery: time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	lsn, err := l.Append([]byte("volatile"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	// WaitDurable lies immediately — that is the policy's contract.
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	st := l.Stats()
	if st.PendingBytes == 0 {
		t.Fatalf("PolicyNone flushed eagerly; a SIGKILL here would lose nothing (stats %+v)", st)
	}
	if st.DurableLSN != 0 {
		t.Fatalf("PolicyNone claimed durability: %+v", st)
	}
	// A process kill here loses the buffered tail: the segment file on
	// disk must not contain the record yet.
	seg := segmentPath(dir, 1)
	if fi, err := os.Stat(seg); err != nil || fi.Size() != 0 {
		t.Fatalf("segment has %v bytes on disk before flush (err=%v)", fi, err)
	}
	// Close flushes it.
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if fi, err := os.Stat(seg); err != nil || fi.Size() == 0 {
		t.Fatalf("Close did not flush: %v err=%v", fi, err)
	}
}

func TestSkipFsyncHookCountsButAdvances(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{
		Policy: PolicyAlways,
		Hooks:  Hooks{SkipFsync: func() bool { return true }},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.FsyncsSkipped == 0 || st.Fsyncs != 0 {
		t.Fatalf("skip hook not exercised: %+v", st)
	}
	if st.DurableLSN != 1 {
		t.Fatalf("skipped fsync must still (falsely) advance durable: %+v", st)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		err  bool
	}{
		{"always", PolicyAlways, false},
		{"group", PolicyGroup, false},
		{"", PolicyGroup, false},
		{"none", PolicyNone, false},
		{"nofsync", PolicyNone, false},
		{"NONE", PolicyNone, false},
		{"sometimes", 0, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err != nil) != c.err || (err == nil && got != c.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

func TestSyncFlushesWhateverThePolicy(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: PolicyNone, FlushEvery: time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("drainme")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st := l.Stats()
	if st.PendingBytes != 0 || st.DurableLSN != 1 || st.Fsyncs == 0 {
		t.Fatalf("Sync did not flush+fsync: %+v", st)
	}
}

func TestOpenRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 128, Policy: PolicyAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	payload := bytes.Repeat([]byte("z"), 40)
	for i := 0; i < 12; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 3 {
		t.Fatalf("want ≥3 segments, got %+v", l.Stats())
	}
	l.Close()
	// Flip a bit in the FIRST segment — not the last, so this is not a
	// torn tail but unrecoverable corruption.
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize+3] ^= 0x40
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatalf("Open accepted mid-log corruption")
	}
}

func TestOpenRejectsSegmentGap(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 128, Policy: PolicyAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	payload := bytes.Repeat([]byte("z"), 40)
	for i := 0; i < 12; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	// Deleting a middle segment leaves an LSN gap Open must refuse.
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatalf("Open accepted a missing middle segment")
	}
}

func TestEmptySegmentAfterRollCrash(t *testing.T) {
	// A crash between startSegment and the first append leaves an empty
	// active segment — legal, and the log must resume from it.
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Cut(); err != nil { // rolls; new active segment stays empty
		t.Fatal(err)
	}
	l.Close()
	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with empty tail segment: %v", err)
	}
	defer l2.Close()
	if info.Records != 3 || info.LastLSN != 3 {
		t.Fatalf("recovery %+v", info)
	}
	lsn, err := l2.Append([]byte("b"))
	if err != nil || lsn != 4 {
		t.Fatalf("append: lsn=%d err=%v", lsn, err)
	}
}

func TestRejectsForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	// Non-WAL files in the directory (snapshots, manifests) are ignored.
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000001.snap"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with foreign files: %v", err)
	}
	defer l.Close()
	if info.Segments != 0 {
		t.Fatalf("foreign files counted as segments: %+v", info)
	}
}
