package torture

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/internal/core"
	"github.com/go-citrus/citrus/internal/dict"
	"github.com/go-citrus/citrus/internal/impls"
	"github.com/go-citrus/citrus/internal/linearizability"
	"github.com/go-citrus/citrus/internal/schedpoint"
	"github.com/go-citrus/citrus/internal/workload"
	"github.com/go-citrus/citrus/rcu"
)

// Config selects what to torture and how hard. The zero value is not
// runnable; Run fills defaults for Duration/Threads/KeyRange but the
// subject fields mean: Impl "" or "citrus" is the Citrus tree under the
// flavor/mutant/recycle knobs, any other value must match a registry
// name from internal/impls (case-insensitive), for which the knobs must
// be left at their zero values.
type Config struct {
	Seed     uint64        // master seed: injection policy + workloads derive from it
	Duration time.Duration // total time box (default 2s)
	Threads  int           // churn workers (default 8)
	KeyRange int           // churn key range (default 64; small = conflict-heavy)

	Impl    string // "", "citrus", "forest", or an impls registry name
	Flavor  string // "", "scalable", "classic", "ebr", "nosync", "snapearly", "ebrearly", "stalledreader", "scanstorm", "scanhog" — citrus/forest only (scanhog: citrus only)
	Mutant  string // "", "ignoretags" — Citrus only
	Recycle bool   // node recycling (citrus/forest; disables poisoning)
	Shards  int    // forest shard count (default 4; forest only)

	MaxSleep time.Duration // cap on injected sleeps (0 = schedpoint default)
}

// Verdict is a run's machine-readable outcome, designed to be emitted
// as JSON by cmd/citrustorture and archived by CI. Reproduce a failure
// by re-running with the same Config — Seed drives every injection
// decision and every workload draw.
type Verdict struct {
	Seed    uint64 `json:"seed"`
	Impl    string `json:"impl"`
	Flavor  string `json:"flavor,omitempty"`
	Mutant  string `json:"mutant,omitempty"`
	Recycle bool   `json:"recycle,omitempty"`
	Shards  int    `json:"shards,omitempty"`

	Passed         bool     `json:"passed"`
	Failures       []string `json:"failures,omitempty"`
	MinimalHistory []string `json:"minimal_history,omitempty"`

	Rounds            int   `json:"rounds"`
	Ops               int64 `json:"ops"`
	PermanentReads    int64 `json:"permanent_reads"`
	FalseNegatives    int64 `json:"false_negatives"`
	ValueCorruptions  int64 `json:"value_corruptions"`
	ReclaimChecks     int64 `json:"reclaim_checks"`
	ReclaimViolations int64 `json:"reclaim_violations"`
	PoisonTrips       int64 `json:"poison_trips"`

	// Scan-reader accounting: range scans completed by the round's
	// dedicated scanner workers and the pairs they emitted. Scan-side
	// violations (a missed permanent key, an out-of-order or out-of-bounds
	// emission, a phantom key, a wrong value) are Failures, not counters.
	ScanOps   int64 `json:"scan_ops,omitempty"`
	ScanPairs int64 `json:"scan_pairs,omitempty"`

	// Robustness accounting, populated by the stalledreader flavor (and
	// by any flavor whose reclaimer sheds): stall reports fired by the
	// domain, callbacks dropped at the reclaimer's hard cap, expedited
	// drains armed by the high watermark, and the deepest the callback
	// queue ever got. For stalledreader these double as the positive
	// control: a run that trips neither the stall detector nor the
	// watermark fails.
	StallReports          int64 `json:"stall_reports,omitempty"`
	ReclaimDropped        int64 `json:"reclaim_dropped,omitempty"`
	ReclaimExpedited      int64 `json:"reclaim_expedited,omitempty"`
	ReclaimQueueHighWater int64 `json:"reclaim_queue_high_water,omitempty"`

	// SiblingSyncs (forest + stalledreader): grace periods completed by
	// the NON-stalled shards' domains while shard 0's reader was being
	// parked — the shard-isolation positive control. Zero means the
	// stall leaked across shards (or nothing ran), and the run fails.
	SiblingSyncs int64             `json:"sibling_syncs,omitempty"`
	NodesRetired int64             `json:"nodes_retired,omitempty"`
	NodesReused  int64             `json:"nodes_reused,omitempty"`
	PointHits    map[string]uint64 `json:"point_hits"`
	ElapsedMS    int64             `json:"elapsed_ms"`
}

func (v *Verdict) fail(format string, args ...any) {
	v.Failures = append(v.Failures, fmt.Sprintf(format, args...))
}

// subject is one torture target: a handle factory plus the quiescent
// hooks the round checks need. Citrus subjects carry the full oracle
// wiring; registry subjects only the generic dict surface.
type subject struct {
	newHandle func() dict.Handle[int, int]
	keys      func() []int
	check     func() error
	barrier   func()                // flush retirements; nil when not applicable
	fold      func(v *Verdict)      // accumulate oracle/pool stats; nil ok
	violation func() (int64, error) // oracle verdict; nil when no oracle
	close     func()
}

// buildSubject constructs a fresh torture target for cfg. Each round
// and each linearizability burst gets its own, so a corrupted structure
// from one round cannot mask or fabricate failures in the next.
func buildSubject(cfg Config) (*subject, error) {
	name := cfg.Impl
	if cfg.Shards != 0 && !strings.EqualFold(name, "forest") {
		return nil, fmt.Errorf("shards apply only to the forest subject, not %q", name)
	}
	if name == "" || strings.EqualFold(name, "citrus") {
		return buildCitrusSubject(cfg)
	}
	if strings.EqualFold(name, "forest") {
		if cfg.Mutant != "" {
			return nil, fmt.Errorf("mutants apply only to the citrus subject, not %q", name)
		}
		return buildForestSubject(cfg)
	}
	if cfg.Flavor != "" || cfg.Mutant != "" || cfg.Recycle {
		return nil, fmt.Errorf("flavor/mutant/recycle apply only to the citrus subject, not %q", name)
	}
	for _, f := range impls.All[int, int]() {
		if strings.EqualFold(f.Name, name) {
			m := f.New()
			return &subject{
				newHandle: m.NewHandle,
				keys:      m.Keys,
				check:     m.CheckInvariants,
				close:     func() {},
			}, nil
		}
	}
	return nil, fmt.Errorf("unknown implementation %q", name)
}

// Stalled-reader scenario knobs: the parker holds a read-side critical
// section for stallPark with stallGap between parks; the domain's stall
// threshold and the reclaimer watermarks are set low enough that every
// park of a busy round trips both.
const (
	stallThreshold = 5 * time.Millisecond
	stallPark      = 40 * time.Millisecond
	stallGap       = 10 * time.Millisecond
	stallHigh      = 16   // reclaimer high watermark
	stallCap       = 1024 // reclaimer hard cap
	stallBatch     = 64   // reclaimer drain batch
)

// Scan scenario knobs. scanstorm is the disciplined configuration: half
// the churn workers become scanners whose traversals are BATCHED —
// every scanBatch emissions the read-side critical section is dropped
// and the scan re-descends by key — so grace periods keep completing
// under the same bounded reclaimer the stalledreader scenario uses, and
// the run fails if the hard cap ever sheds a callback. scanhog is its
// negative control: the same scan-heavy duty cycle but each scan is one
// UNBATCHED full-range traversal with a slow consumer (hogDwell per
// emission) holding the critical section throughout, against a
// deliberately tiny hard cap — the PR5 backpressure/stall machinery
// must visibly trip (stall reports, shed callbacks), which the verdict
// reports as a failure. A harness that passes scanhog could not have
// detected a scan workload starving reclamation.
const (
	scanBatch = 8                      // scanstorm: emissions per read-side critical section
	hogDwell  = 500 * time.Microsecond // scanhog: consumer dwell per emission, inside the CS
	hogHigh   = 8                      // scanhog reclaimer high watermark
	hogCap    = 32                     // scanhog reclaimer hard cap (tiny by design)
	hogBatch  = 8                      // scanhog reclaimer drain batch
)

func buildCitrusSubject(cfg Config) (*subject, error) {
	var inner rcu.Flavor
	var stalldom *rcu.Domain
	var recOpts []rcu.ReclaimerOption
	var stallReports atomic.Int64
	switch cfg.Flavor {
	case "", "scalable":
		inner = rcu.NewDomain()
	case "classic":
		inner = rcu.NewClassicDomain()
	case "nosync":
		inner = rcu.NoSync(rcu.NewDomain())
	case "snapearly":
		// Negative control for grace-period combining: sequence targets
		// are computed one stride early, so Synchronize can return before
		// pre-existing readers finish. The oracles must catch it.
		sd := rcu.NewDomain()
		sd.SetSnapEarlyMutant(true)
		inner = sd
	case "ebr":
		// Epoch-based reclamation: readers pin the global epoch instead
		// of publishing per-section counters, and Synchronize advances
		// the epoch twice. Same oracle, same churn — the flavor seam is
		// the only thing that changes.
		inner = rcu.NewEpochDomain()
	case "ebrearly":
		// Negative control for the epoch flavor: the advance threshold is
		// computed one epoch early, so pre-existing pinned readers are
		// never waited for and Synchronize returns immediately over live
		// critical sections. The reclamation oracle must catch the
		// premature reclamations this allows.
		ed := rcu.NewEpochDomain()
		ed.SetAdvanceEarlyMutant(true)
		inner = ed
	case "stalledreader":
		// Robustness scenario: a dedicated reader goroutine parks inside
		// its critical section, stalling every grace period it predates.
		// The stall detector and the reclaimer watermarks must both trip
		// (checked as a positive control in Run), and the tree must come
		// through the abuse uncorrupted.
		stalldom = rcu.NewDomain()
		stalldom.SetSiteCapture(true)
		stalldom.SetStallTimeout(stallThreshold)
		inner = stalldom
	case "scanstorm":
		// Scan-heavy robustness scenario: batched scans against the same
		// bounded reclaimer stalledreader uses. Run fails the verdict if
		// the hard cap ever sheds — batching must keep reclamation fed.
		inner = rcu.NewDomain()
		recOpts = append(recOpts,
			rcu.WithHighWatermark(stallHigh),
			rcu.WithHardCap(stallCap),
			rcu.WithDrainBatch(stallBatch))
	case "scanhog":
		// Negative control for scan discipline: unbatched full-range
		// scans with a slow consumer hold the read side while churn
		// floods a reclaimer with a deliberately tiny hard cap. The shed
		// callbacks (and stall reports) MUST surface as a failure.
		sd := rcu.NewDomain()
		sd.SetStallTimeout(stallThreshold)
		sd.SetStallHandler(func(rcu.StallReport) { stallReports.Add(1) })
		inner = sd
		recOpts = append(recOpts,
			rcu.WithHighWatermark(hogHigh),
			rcu.WithHardCap(hogCap),
			rcu.WithDrainBatch(hogBatch))
	default:
		return nil, fmt.Errorf("unknown flavor %q (scalable, classic, ebr, nosync, snapearly, ebrearly, stalledreader, scanstorm, scanhog)", cfg.Flavor)
	}
	o := NewOracle(inner)
	if stalldom != nil {
		stalldom.SetStallHandler(func(rcu.StallReport) { stallReports.Add(1) })
		recOpts = append(recOpts,
			rcu.WithHighWatermark(stallHigh),
			rcu.WithHardCap(stallCap),
			rcu.WithDrainBatch(stallBatch))
	}
	rec := rcu.NewReclaimer(o, recOpts...)
	var tr *core.Tree[int, int]
	if cfg.Recycle {
		tr = core.NewTreeWithRecycling[int, int](o, rec)
		tr.EnableTorture(rec, o, false) // poisoned nodes must never be pooled
	} else {
		tr = core.NewTree[int, int](o)
		tr.EnableTorture(rec, o, true)
	}
	stopParker := func() {}
	if stalldom != nil {
		// The parker registers through the oracle like every other
		// reader, so its critical sections participate in the epoch
		// accounting and its handle id is what stall reports name.
		stop := make(chan struct{})
		done := make(chan struct{})
		pr := o.Register()
		go func() {
			defer close(done)
			defer pr.Unregister()
			for {
				pr.ReadLock()
				select {
				case <-stop:
					pr.ReadUnlock()
					return
				case <-time.After(stallPark):
				}
				pr.ReadUnlock()
				select {
				case <-stop:
					return
				case <-time.After(stallGap):
				}
			}
		}()
		stopParker = func() { close(stop); <-done }
	}
	return &subject{
		newHandle: func() dict.Handle[int, int] { return coreTortureHandle{tr.NewHandle()} },
		keys:      tr.Keys,
		check:     tr.CheckInvariants,
		barrier:   rec.Barrier,
		fold: func(v *Verdict) {
			v.ReclaimChecks += o.Checks()
			v.ReclaimViolations += o.Violations()
			v.PoisonTrips += tr.PoisonTrips()
			retired, reused := tr.RecycleStats()
			v.NodesRetired += retired
			v.NodesReused += reused
			v.StallReports += stallReports.Load()
			rs := rec.Stats()
			v.ReclaimDropped += rs.Dropped
			v.ReclaimExpedited += rs.ExpeditedDrains
			if rs.QueueHighWater > v.ReclaimQueueHighWater {
				v.ReclaimQueueHighWater = rs.QueueHighWater
			}
		},
		violation: func() (int64, error) {
			if n, first := tr.TortureReport(); n != 0 {
				return n, first
			}
			if o.Violations() != 0 {
				return o.Violations(), o.FirstViolation()
			}
			if trips := tr.PoisonTrips(); trips != 0 {
				return trips, fmt.Errorf("a search walked a reclaimed (poisoned) node %d time(s)", trips)
			}
			return 0, nil
		},
		close: func() {
			stopParker()
			rec.Close()
		},
	}, nil
}

// coreTortureHandle lifts a core handle to dict.Handle with the weakly
// consistent Snapshot downgrade (the same lift internal/impls applies).
type coreTortureHandle struct{ *core.Handle[int, int] }

func (h coreTortureHandle) Snapshot() dict.Snapshot[int, int] {
	return dict.NewWeakSnapshot[int, int](h.Handle)
}

// batchedScanner is the optional bounded-dwell scan face a subject
// handle may expose. The core handle has it (coreTortureHandle inherits
// it by embedding); the forest's collect-per-shard scans already run in
// bounded critical sections and fall back to plain RangeScan.
type batchedScanner interface {
	RangeScanBatched(lo, hi, batch int, fn func(key, value int) bool)
}

// splitmix64 is the standard seed expander (Steele et al.), used to
// derive independent per-round and per-worker streams from the master
// seed — the same derivation schedpoint uses for injection decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Run executes one torture run and returns its verdict. The only error
// return is a config error; a subject failing its oracles is a Passed:
// false verdict, not an error.
//
// A run is a sequence of rounds against fresh subjects, each round
// three movements: (1) churn — Threads workers hammer a small key
// range under the seeded injection policy, with keys ≡ 0 (mod 4)
// permanent so any Contains miss on them is a caught false negative
// (the Figure 4 failure mode) and any wrong value a caught corruption;
// a quarter of the workers (half under the scan scenarios) are scan
// readers whose range scans are checked in flight for the weak
// consistency contract — strict ascent, bounds, no phantoms, every
// permanent key in bounds present — and whose traversals feed the same
// poison tripwire point reads use, so a reclaimed node visited mid-scan
// is caught; (2) quiesce — retirements are flushed, the reclamation
// oracle's verdict is read, structural invariants are checked, and
// quiescent iteration is cross-checked against point queries; (3) a
// small recorded history (point ops plus scans) is checked for
// linearizability with the scan ops judged by the weak-consistency scan
// spec, and a failing history is shrunk to a locally minimal core
// before it is reported.
func Run(cfg Config) (*Verdict, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 8
	}
	if cfg.KeyRange < 8 {
		cfg.KeyRange = 64
	}
	// Validate impl/flavor before spending the time box — and close the
	// probe subject, which owns reclaimer goroutines (and, for the
	// forest, one per shard).
	if s, err := buildSubject(cfg); err != nil {
		return nil, err
	} else {
		s.close()
	}
	switch cfg.Mutant {
	case "":
	case "ignoretags":
		core.SetMutant(core.MutantIgnoreTags)
		defer core.SetMutant(core.MutantNone)
	default:
		return nil, fmt.Errorf("unknown mutant %q (ignoretags)", cfg.Mutant)
	}

	pol := schedpoint.NewPolicy(cfg.Seed)
	if cfg.MaxSleep > 0 {
		pol.SetMaxSleep(cfg.MaxSleep)
	}
	schedpoint.Enable(pol)
	defer schedpoint.Disable()

	v := &Verdict{Seed: cfg.Seed, Impl: cfg.Impl, Flavor: cfg.Flavor, Mutant: cfg.Mutant, Recycle: cfg.Recycle}
	if v.Impl == "" {
		v.Impl = "citrus"
	}
	if strings.EqualFold(v.Impl, "forest") {
		v.Shards = cfg.Shards
		if v.Shards <= 0 {
			v.Shards = 4
		}
	}
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for round := 0; time.Now().Before(deadline) && len(v.Failures) == 0; round++ {
		slice := 150 * time.Millisecond
		if rem := time.Until(deadline); rem < slice {
			slice = rem
		}
		roundSeed := splitmix64(cfg.Seed ^ uint64(round)<<32)
		runRound(cfg, v, roundSeed, slice)
		v.Rounds++
	}
	if cfg.Flavor == "stalledreader" && len(v.Failures) == 0 {
		// Positive control: the whole point of the scenario is to trip
		// the robustness machinery. A run that survives without a single
		// stall report or watermark crossing means the detector or the
		// reclaimer bounds are broken (or the parker never parked), so
		// the run must fail rather than quietly prove nothing.
		if v.StallReports == 0 {
			v.fail("positive control: the parked reader never tripped the stall detector (0 stall reports)")
		}
		if v.ReclaimExpedited == 0 {
			v.fail("positive control: the delete churn never crossed the reclaimer high watermark (0 expedited drains)")
		}
		if strings.EqualFold(v.Impl, "forest") && v.SiblingSyncs == 0 {
			v.fail("positive control: no sibling-shard grace periods completed while shard 0's reader was parked — the stall leaked across shards")
		}
	}
	if (cfg.Flavor == "scanstorm" || cfg.Flavor == "scanhog") && len(v.Failures) == 0 {
		// Both scan scenarios are judged by the same reclamation
		// discipline: scans must not starve the reclaimer past its bound.
		// scanstorm's batching satisfies it; scanhog's unbatched hogging
		// violates it by design, so this is where the negative control's
		// required failure comes from.
		if v.ScanOps == 0 {
			v.fail("positive control: the %s scenario completed no scans", cfg.Flavor)
		}
		if v.ReclaimDropped != 0 {
			v.fail("scan reclamation discipline: the reclaimer shed %d callback(s) at its hard cap — scan-side critical sections starved grace periods past the memory bound (%d stall report(s), queue high-water %d)",
				v.ReclaimDropped, v.StallReports, v.ReclaimQueueHighWater)
		}
	}
	v.PointHits = pol.Hits()
	v.ElapsedMS = time.Since(start).Milliseconds()
	v.Passed = len(v.Failures) == 0
	return v, nil
}

// runRound runs one churn+quiesce+history round against a fresh
// subject. Failures are appended to v; the caller stops on the first.
func runRound(cfg Config, v *Verdict, roundSeed uint64, slice time.Duration) {
	s, err := buildSubject(cfg)
	if err != nil {
		v.fail("subject: %v", err)
		return
	}
	defer s.close()

	// Permanent keys (≡ 0 mod 4) are inserted up front and never
	// deleted; every draw of one is a membership probe.
	{
		h := s.newHandle()
		for k := 0; k < cfg.KeyRange; k += 4 {
			h.Insert(k, k)
		}
		h.Close()
	}

	var (
		stop        atomic.Bool
		ops         atomic.Int64
		permReads   atomic.Int64
		falseNegs   atomic.Int64
		corruptions atomic.Int64
		wg          sync.WaitGroup

		// Scan-reader verdicts, checked structurally inside every scan:
		// a permanent key (≡ 0 mod 4) inside the bounds that the scan
		// failed to emit, an emission that broke strict ascent, landed
		// outside the requested bounds, named a key nobody could have
		// inserted, or carried a value never stored under its key.
		scanOps      atomic.Int64
		scanPairs    atomic.Int64
		scanMissing  atomic.Int64
		scanUnsorted atomic.Int64
		scanBounds   atomic.Int64
		scanPhantom  atomic.Int64
		scanBadValue atomic.Int64
	)

	// Scan readers join the churn: a quarter of the workers by default,
	// half under the scan scenarios. Registry subjects and every citrus
	// flavor get them — a poisoned node visited mid-scan lands in the
	// same PoisonTrips tripwire the point operations use.
	scanners := cfg.Threads / 4
	if cfg.Flavor == "scanstorm" || cfg.Flavor == "scanhog" {
		scanners = cfg.Threads / 2
		if scanners < 1 {
			scanners = 1
		}
	}

	mix := workload.Mix{ContainsPct: 20, InsertPct: 40, DeletePct: 40}
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		if w < scanners {
			go func(seed uint64) {
				defer wg.Done()
				h := s.newHandle()
				defer h.Close()
				rng := workload.NewRNG(seed)
				n, pairs := int64(0), int64(0)
				for !stop.Load() {
					lo := rng.Intn(cfg.KeyRange)
					hi := lo + 1 + rng.Intn(cfg.KeyRange-lo)
					if cfg.Flavor == "scanhog" {
						lo, hi = 0, cfg.KeyRange // one long unbatched traversal
					}
					prev := lo - 1
					seen := make(map[int]bool, hi-lo)
					emit := func(k, val int) bool {
						pairs++
						if k < lo || k >= hi {
							scanBounds.Add(1)
						}
						if k <= prev {
							scanUnsorted.Add(1)
						}
						prev = k
						if k < 0 || k >= cfg.KeyRange {
							scanPhantom.Add(1)
						} else if val != k {
							scanBadValue.Add(1)
						}
						seen[k] = true
						if cfg.Flavor == "scanhog" {
							time.Sleep(hogDwell) // slow consumer inside the CS
						}
						return true
					}
					switch {
					case cfg.Flavor == "scanhog":
						h.RangeScan(lo, hi, emit)
					case cfg.Flavor == "scanstorm":
						if bs, ok := h.(batchedScanner); ok {
							bs.RangeScanBatched(lo, hi, scanBatch, emit)
						} else {
							// The forest collects per shard in bounded
							// critical sections; the window is the batch.
							h.RangeScan(lo, hi, emit)
						}
					case rng.Intn(8) == 0:
						// Exercise the Snapshot face too: weakly
						// consistent views promise the same contract.
						snap := h.Snapshot()
						snap.Range(lo, hi, emit)
						snap.Close()
					default:
						h.RangeScan(lo, hi, emit)
					}
					for k := (lo + 3) / 4 * 4; k < hi; k += 4 {
						if k >= 0 && !seen[k] {
							scanMissing.Add(1)
						}
					}
					n++
				}
				scanOps.Add(n)
				scanPairs.Add(pairs)
				ops.Add(n)
			}(splitmix64(roundSeed ^ uint64(w)))
			continue
		}
		go func(seed uint64) {
			defer wg.Done()
			h := s.newHandle()
			defer h.Close()
			rng := workload.NewRNG(seed)
			n := int64(0)
			for !stop.Load() {
				k := rng.Intn(cfg.KeyRange)
				if k%4 == 0 {
					permReads.Add(1)
					v, ok := h.Contains(k)
					if !ok {
						falseNegs.Add(1)
					} else if v != k {
						corruptions.Add(1)
					}
				} else {
					switch rng.NextOp(mix) {
					case workload.OpContains:
						if v, ok := h.Contains(k); ok && v != k {
							corruptions.Add(1)
						}
					case workload.OpInsert:
						h.Insert(k, k)
					default:
						h.Delete(k)
					}
				}
				n++
			}
			ops.Add(n)
		}(splitmix64(roundSeed ^ uint64(w)))
	}
	time.Sleep(slice)
	stop.Store(true)
	wg.Wait()
	v.Ops += ops.Load()
	v.PermanentReads += permReads.Load()
	v.FalseNegatives += falseNegs.Load()
	v.ValueCorruptions += corruptions.Load()
	v.ScanOps += scanOps.Load()
	v.ScanPairs += scanPairs.Load()
	if n := scanMissing.Load(); n != 0 {
		v.fail("%d scan(s) missed a permanently present key inside their bounds (the weak-consistency must-appear clause failed)", n)
	}
	if n := scanUnsorted.Load(); n != 0 {
		v.fail("%d scan emission(s) out of order or duplicated", n)
	}
	if n := scanBounds.Load(); n != 0 {
		v.fail("%d scan emission(s) outside the requested bounds", n)
	}
	if n := scanPhantom.Load(); n != 0 {
		v.fail("%d scan emission(s) of keys outside the key range — phantom reads", n)
	}
	if n := scanBadValue.Load(); n != 0 {
		v.fail("%d scan emission(s) carried a value never stored under their key", n)
	}

	// Quiesce: flush retirements so the oracle has seen every
	// reclamation this round caused, then read the verdicts.
	if s.barrier != nil {
		s.barrier()
	}
	if fn := falseNegs.Load(); fn != 0 {
		v.fail("%d false negative(s) on permanently present keys in %d probes (the line 74 guarantee failed)", fn, permReads.Load())
	}
	if c := corruptions.Load(); c != 0 {
		v.fail("%d value corruption(s): Contains returned a value that was never stored under that key", c)
	}
	if s.violation != nil {
		if n, first := s.violation(); n != 0 {
			v.fail("reclamation oracle: %d violation(s); first: %v", n, first)
		}
	}
	if err := s.check(); err != nil {
		v.fail("structural invariants: %v", err)
	}
	if len(v.Failures) == 0 {
		h := s.newHandle()
		inKeys := map[int]bool{}
		for _, k := range s.keys() {
			inKeys[k] = true
		}
		for k := 0; k < cfg.KeyRange; k++ {
			if _, ok := h.Contains(k); ok != inKeys[k] {
				v.fail("membership mismatch on key %d: Contains=%v, quiescent iteration=%v", k, ok, inKeys[k])
				break
			}
		}
		h.Close()
	}
	if s.fold != nil {
		s.fold(v)
	}
	if len(v.Failures) != 0 {
		return
	}
	runHistory(cfg, v, splitmix64(roundSeed^0xD1CEB0C5))
}

// runHistory records one small, highly concurrent history against a
// fresh subject and checks it for linearizability; a failing history is
// shrunk to a locally minimal core for the verdict.
func runHistory(cfg Config, v *Verdict, seed uint64) {
	s, err := buildSubject(cfg)
	if err != nil {
		v.fail("history subject: %v", err)
		return
	}
	defer s.close()

	procs := cfg.Threads
	if procs > 4 {
		procs = 4 // keep the history inside the exhaustive checker's reach
	}
	rec := linearizability.NewRecorder()
	handles := make([]*linearizability.RecordingHandle, procs)
	for p := 0; p < procs; p++ {
		handles[p] = rec.Wrap(s.newHandle(), p)
	}
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := handles[p]
			rng := workload.NewRNG(splitmix64(seed ^ uint64(p)))
			for i := 0; i < 8; i++ {
				k := rng.Intn(3)
				switch rng.Intn(4) {
				case 0:
					h.Insert(k, p*100+i) // distinct values expose stale reads
				case 1:
					h.Delete(k)
				case 2:
					h.Contains(k)
				default:
					// Recorded scans are checked against the weak
					// consistency spec (linearizability.CheckScans) while
					// the point ops around them stay in the Wing & Gong
					// search.
					h.RangeScan(0, 3, func(int, int) bool { return true })
				}
			}
		}(p)
	}
	wg.Wait()
	var ops []linearizability.Op
	for _, h := range handles {
		ops = append(ops, h.Ops()...)
		h.Close()
	}
	if err := linearizability.Check(ops, 0); err != nil {
		minimal := linearizability.Shrink(ops, 0)
		v.fail("linearizability: %v (minimal core: %d ops)", err, len(minimal))
		for _, op := range minimal {
			v.MinimalHistory = append(v.MinimalHistory, op.String())
		}
	}
}
