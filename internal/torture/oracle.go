// Package torture is the seeded fault-injection torture harness behind
// cmd/citrustorture: an rcutorture-style adversarial layer that drives
// the repository's search structures through the rare interleavings the
// paper's §4 proof obligations are about, using the schedule-injection
// points of internal/schedpoint, and watches them with three oracles —
// the linearizability checker, the structural invariant suite, and this
// package's reclamation-safety Oracle.
package torture

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/go-citrus/citrus/rcu"
)

// Oracle is an epoch-accounting shadow of an RCU flavor: it wraps a
// real flavor, stamps every reader's critical-section entry with a
// global retirement epoch, and can decide — at the instant a retired
// node is reclaimed — whether any reader that could still reach the
// node is inside its critical section. It implements rcu.Flavor (so a
// tree runs on it transparently) and core.ReclaimOracle (so the tree's
// reclamation path consults it).
//
// Soundness: a violation is reported only if a reader (a) recorded its
// entry epoch before the node's retirement stamp and (b) still holds
// that entry at check time. With sequentially consistent atomics that
// means the reader entered its section before the node was retired and
// is still inside it when the node is reclaimed — exactly the
// executions the RCU property (Figure 2) forbids. A reader between its
// inner ReadLock and its entry store is invisible for one instruction,
// so the oracle can miss a violation (it is a detector, not a prover)
// but never invents one: the correct flavors pass under arbitrary
// schedules.
type Oracle struct {
	inner rcu.Flavor
	epoch atomic.Uint64 // bumped once per retirement; entry stamps quote it

	mu      sync.Mutex // registration copy-on-write, as in rcu.Domain
	readers atomic.Pointer[[]*oreader]
	nextID  atomic.Uint64

	checks     atomic.Int64
	violations atomic.Int64
	vmu        sync.Mutex
	first      error
}

var _ rcu.Flavor = (*Oracle)(nil)

// NewOracle returns an oracle shadowing the given flavor.
func NewOracle(inner rcu.Flavor) *Oracle {
	o := &Oracle{inner: inner}
	o.epoch.Store(1) // entry stamp 0 means "outside any critical section"
	return o
}

// oreader pairs a wrapped reader with its entry-epoch word, padded like
// the rcu handles so the torture run measures the library's sharing
// behaviour, not the oracle's.
type oreader struct {
	_     [128]byte
	entry atomic.Uint64 // 0 = outside; else epoch observed at entry
	_     [120]byte

	o     *Oracle
	inner rcu.Reader
	id    uint64
}

// Register wraps a reader of the shadowed flavor.
func (o *Oracle) Register() rcu.Reader {
	r := &oreader{o: o, inner: o.inner.Register(), id: o.nextID.Add(1)}
	o.mu.Lock()
	defer o.mu.Unlock()
	old := o.readers.Load()
	var rs []*oreader
	if old != nil {
		rs = make([]*oreader, len(*old), len(*old)+1)
		copy(rs, *old)
	}
	rs = append(rs, r)
	o.readers.Store(&rs)
	return r
}

// Synchronize passes through to the shadowed flavor.
func (o *Oracle) Synchronize() { o.inner.Synchronize() }

// RetireStamp records a retirement instant: it advances the epoch and
// returns the new value. Implements core.ReclaimOracle.
func (o *Oracle) RetireStamp() uint64 { return o.epoch.Add(1) }

// CheckReclaim reports whether the node retired at stamp may be
// reclaimed now: it returns a non-nil error iff some reader entered its
// critical section before the retirement and is still inside it —
// i.e. the grace period that was supposed to separate retirement from
// reclamation did not happen. Implements core.ReclaimOracle.
func (o *Oracle) CheckReclaim(stamp uint64) error {
	o.checks.Add(1)
	rsp := o.readers.Load()
	if rsp == nil {
		return nil
	}
	for _, r := range *rsp {
		if e := r.entry.Load(); e != 0 && e < stamp {
			o.violations.Add(1)
			err := fmt.Errorf("torture: reclamation violation: reader %d entered its read-side critical section at epoch %d and is still inside it, but a node retired at epoch %d is being reclaimed (no grace period separated them)", r.id, e, stamp)
			o.vmu.Lock()
			if o.first == nil {
				o.first = err
			}
			o.vmu.Unlock()
			return err
		}
	}
	return nil
}

// Checks reports how many reclamations the oracle examined.
func (o *Oracle) Checks() int64 { return o.checks.Load() }

// Violations reports how many reclamations were flagged.
func (o *Oracle) Violations() int64 { return o.violations.Load() }

// FirstViolation returns the first flagged reclamation's error, nil if
// none.
func (o *Oracle) FirstViolation() error {
	o.vmu.Lock()
	defer o.vmu.Unlock()
	return o.first
}

// ReadLock enters the shadowed reader's critical section, then records
// the entry epoch. Recording after the inner ReadLock keeps the oracle
// conservative: a delayed entry store can only make the reader look
// younger (missing a real violation), never older (inventing one).
func (r *oreader) ReadLock() {
	r.inner.ReadLock()
	r.entry.Store(r.o.epoch.Load())
}

// ReadUnlock clears the entry stamp, then leaves the shadowed reader's
// critical section — the reverse order of ReadLock, for the same
// conservatism.
func (r *oreader) ReadUnlock() {
	r.entry.Store(0)
	r.inner.ReadUnlock()
}

// Synchronize passes through to the oracle's flavor.
func (r *oreader) Synchronize() { r.o.Synchronize() }

// Unregister removes the reader from the oracle and the shadowed
// flavor.
func (r *oreader) Unregister() {
	o := r.o
	o.mu.Lock()
	old := o.readers.Load()
	if old != nil {
		rs := make([]*oreader, 0, len(*old))
		for _, x := range *old {
			if x != r {
				rs = append(rs, x)
			}
		}
		o.readers.Store(&rs)
	}
	o.mu.Unlock()
	r.inner.Unregister()
}

// ID exposes the wrapped reader's id when it has one, so trace
// attribution keeps working through the oracle.
func (r *oreader) ID() uint64 {
	if ider, ok := r.inner.(interface{ ID() uint64 }); ok {
		return ider.ID()
	}
	return r.id
}
