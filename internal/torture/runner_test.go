package torture

import (
	"testing"
	"time"
)

// The negative controls: torture runs against deliberately broken
// builds must FAIL, quickly and attributably — they are the "tests for
// the tests" (docs/VERIFICATION.md). Each uses a fixed seed so a
// regression here is a deterministic repro, not a flake.

// TestNegativeControlNoSync: Citrus over a flavor whose Synchronize
// returns immediately must be caught — by the reclamation oracle, the
// poison tripwire, or a false negative on a permanent key.
func TestNegativeControlNoSync(t *testing.T) {
	v, err := Run(Config{
		Seed:     1,
		Duration: 4 * time.Second,
		Threads:  8,
		KeyRange: 64,
		Flavor:   "nosync",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Passed {
		t.Fatalf("torture passed the nosync mutant: verdict %+v", v)
	}
	t.Logf("nosync caught in %dms after %d ops: %v", v.ElapsedMS, v.Ops, v.Failures)
}

// TestNegativeControlIgnoreTags: disabling the line 38 tag validation
// under node recycling must be caught — recycled nodes accept stale
// (tag, nil-slot) validations, so inserts publish under nodes living a
// different life elsewhere in the tree.
//
// Unlike the flavor mutants above, catching this one needs a recycled
// node to be revalidated in a narrow window, so the catch time is
// load-sensitive: typically 2-4s, but race instrumentation has been
// seen to stretch it past 8s. The box is sized so a miss needs two
// back-to-back worst-case windows, not one.
func TestNegativeControlIgnoreTags(t *testing.T) {
	v, err := Run(Config{
		Seed:     1,
		Duration: 20 * time.Second,
		Threads:  8,
		KeyRange: 64,
		Mutant:   "ignoretags",
		Recycle:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Passed {
		t.Fatalf("torture passed the ignoretags mutant: verdict %+v", v)
	}
	t.Logf("ignoretags caught in %dms after %d ops: %v", v.ElapsedMS, v.Ops, v.Failures)
}

// TestNegativeControlSnapEarly: the combining mutant that computes its
// sequence target one grace-period stride early — releasing a
// Synchronize caller before pre-existing readers finish — must be
// caught, proving the oracle suite covers the combining protocol's one
// soundness obligation and not just an absent Synchronize.
func TestNegativeControlSnapEarly(t *testing.T) {
	v, err := Run(Config{
		Seed:     1,
		Duration: 4 * time.Second,
		Threads:  8,
		KeyRange: 64,
		Flavor:   "snapearly",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Passed {
		t.Fatalf("torture passed the snapearly mutant: verdict %+v", v)
	}
	t.Logf("snapearly caught in %dms after %d ops: %v", v.ElapsedMS, v.Ops, v.Failures)
}

// TestNegativeControlEBREarly: the epoch-flavor mutant whose advance
// threshold is computed one epoch early — so Synchronize never waits
// for readers pinned at the entry epoch — must be caught on its pinned
// seed, proving the reclamation oracle bites on the EBR design too and
// an ebr PASS means something.
func TestNegativeControlEBREarly(t *testing.T) {
	v, err := Run(Config{
		Seed:     1,
		Duration: 4 * time.Second,
		Threads:  8,
		KeyRange: 64,
		Flavor:   "ebrearly",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Passed {
		t.Fatalf("torture passed the ebrearly mutant: verdict %+v", v)
	}
	t.Logf("ebrearly caught in %dms after %d ops: %v", v.ElapsedMS, v.Ops, v.Failures)
}

// TestRealBuildSurvivesManySeeds: the correct tree on all three flavors
// must pass under distinct injection schedules — the oracle suite has
// no false positives. Ten seeds per the acceptance criteria.
func TestRealBuildSurvivesManySeeds(t *testing.T) {
	dur := 250 * time.Millisecond
	if testing.Short() {
		dur = 120 * time.Millisecond
	}
	for seed := uint64(1); seed <= 10; seed++ {
		flavor := "scalable"
		switch seed % 3 {
		case 0:
			flavor = "classic"
		case 1:
			flavor = "ebr"
		}
		v, err := Run(Config{
			Seed:     seed,
			Duration: dur,
			Threads:  8,
			KeyRange: 64,
			Flavor:   flavor,
			Recycle:  seed%3 == 0, // mix pooled and poisoned configurations
		})
		if err != nil {
			t.Fatal(err)
		}
		if !v.Passed {
			t.Fatalf("seed %d (%s): correct build failed torture: %v (history: %v)",
				seed, flavor, v.Failures, v.MinimalHistory)
		}
		if total := totalHits(v.PointHits); total == 0 {
			t.Fatalf("seed %d: no schedule points fired; the injection layer is dead", seed)
		}
		if v.ReclaimChecks == 0 {
			t.Fatalf("seed %d: the oracle checked no reclamations; the torture wiring is dead", seed)
		}
	}
}

func totalHits(hits map[string]uint64) uint64 {
	var n uint64
	for _, h := range hits {
		n += h
	}
	return n
}

// TestSeedReproducesFailure: the replay story — rerunning a failing
// configuration with its printed seed fails again.
func TestSeedReproducesFailure(t *testing.T) {
	cfg := Config{
		Seed:     42,
		Duration: 4 * time.Second,
		Threads:  8,
		KeyRange: 64,
		Flavor:   "nosync",
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Passed {
		t.Fatal("setup: nosync did not fail on seed 42")
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Passed {
		t.Fatalf("seed 42 failed once (%v) but passed on replay", first.Failures)
	}
}

// TestStalledReaderScenario: the robustness flavor must PASS — the tree
// survives a reader parked in its critical section while deletes flood
// the reclaimer — while its positive controls prove the machinery
// actually engaged: stall reports fired, the high watermark armed an
// expedited drain, and the bounded queue never exceeded the hard cap.
func TestStalledReaderScenario(t *testing.T) {
	dur := 2 * time.Second
	if testing.Short() {
		dur = 800 * time.Millisecond
	}
	v, err := Run(Config{
		Seed:     1,
		Duration: dur,
		Threads:  8,
		KeyRange: 64,
		Flavor:   "stalledreader",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Passed {
		t.Fatalf("stalledreader scenario failed: %v (history: %v)", v.Failures, v.MinimalHistory)
	}
	// Run already enforces these as positive controls; assert them here
	// too so a regression in that enforcement is itself caught.
	if v.StallReports == 0 {
		t.Fatal("no stall reports despite the parked reader")
	}
	if v.ReclaimExpedited == 0 {
		t.Fatal("the reclaimer high watermark never tripped")
	}
	if v.ReclaimQueueHighWater > stallCap {
		t.Fatalf("reclaimer queue reached %d, above the hard cap %d", v.ReclaimQueueHighWater, stallCap)
	}
	t.Logf("stalledreader: %d stall reports, %d expedited drains, %d dropped, queue high-water %d",
		v.StallReports, v.ReclaimExpedited, v.ReclaimDropped, v.ReclaimQueueHighWater)
}

// TestRegistryImplSmoke: the runner handles non-Citrus registry
// subjects (no oracle, still churn + invariants + linearizability).
func TestRegistryImplSmoke(t *testing.T) {
	v, err := Run(Config{
		Seed:     7,
		Duration: 150 * time.Millisecond,
		Threads:  4,
		KeyRange: 32,
		Impl:     "Skiplist",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Passed {
		t.Fatalf("skiplist failed torture smoke: %v", v.Failures)
	}
	if v.ReclaimChecks != 0 {
		t.Fatal("a non-Citrus subject reported oracle checks")
	}
}

// TestConfigValidation: bad knobs are config errors, not verdicts.
func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Impl: "NoSuchTree"},
		{Flavor: "bogus"},
		{Mutant: "bogus"},
		{Impl: "Skiplist", Flavor: "classic"}, // knobs on a non-citrus subject
		{Impl: "Skiplist", Recycle: true},
		{Impl: "forest", Flavor: "scanhog"}, // the hog cannot hold a forest's read side
	}
	for _, cfg := range cases {
		cfg.Duration = 50 * time.Millisecond
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run(%+v) accepted an invalid config", cfg)
		}
	}
}
