package torture

import (
	"testing"

	"github.com/go-citrus/citrus/internal/core"
	"github.com/go-citrus/citrus/rcu"
)

// TestOracleFlagsReclaimInsideStaleCS: the deterministic core of the
// NoSync negative control. A reader enters its critical section, a node
// is retired after that entry, and the (neutered) grace period lets the
// reclamation check run while the reader is still inside — the oracle
// must flag it.
func TestOracleFlagsReclaimInsideStaleCS(t *testing.T) {
	o := NewOracle(rcu.NoSync(rcu.NewDomain()))
	r := o.Register()
	defer r.Unregister()

	r.ReadLock()
	stamp := o.RetireStamp() // node retired while the reader is inside
	o.Synchronize()          // neutered: returns immediately
	if err := o.CheckReclaim(stamp); err == nil {
		t.Fatal("oracle missed a reclamation inside a stale critical section")
	}
	r.ReadUnlock()

	if o.Violations() != 1 {
		t.Fatalf("Violations = %d, want 1", o.Violations())
	}
	if o.FirstViolation() == nil {
		t.Fatal("FirstViolation = nil after a flagged reclamation")
	}
	if o.Checks() != 1 {
		t.Fatalf("Checks = %d, want 1", o.Checks())
	}
}

// TestOracleNoFalsePositiveAfterRealSync: with a working Synchronize
// between retirement and reclamation, the pre-existing reader has left
// its critical section by check time, so the oracle stays silent.
func TestOracleNoFalsePositiveAfterRealSync(t *testing.T) {
	o := NewOracle(rcu.NewDomain())
	r := o.Register()
	defer r.Unregister()

	r.ReadLock()
	stamp := o.RetireStamp()
	done := make(chan struct{})
	go func() {
		o.Synchronize() // blocks until r leaves its section
		if err := o.CheckReclaim(stamp); err != nil {
			t.Errorf("false positive after a real grace period: %v", err)
		}
		close(done)
	}()
	r.ReadUnlock()
	<-done

	if o.Violations() != 0 {
		t.Fatalf("Violations = %d, want 0", o.Violations())
	}
}

// TestOracleIgnoresLaterReaders: a reader that enters its critical
// section after the retirement cannot hold a reference to the retired
// node, so it must not be flagged even though it is inside a section at
// check time.
func TestOracleIgnoresLaterReaders(t *testing.T) {
	o := NewOracle(rcu.NoSync(rcu.NewDomain()))
	r := o.Register()
	defer r.Unregister()

	stamp := o.RetireStamp()
	r.ReadLock() // enters at an epoch >= stamp
	defer r.ReadUnlock()
	if err := o.CheckReclaim(stamp); err != nil {
		t.Fatalf("oracle flagged a reader that entered after retirement: %v", err)
	}
}

// TestOracleUnregisterForgetsReader: an unregistered reader's last
// entry stamp must not haunt later checks.
func TestOracleUnregisterForgetsReader(t *testing.T) {
	o := NewOracle(rcu.NoSync(rcu.NewDomain()))
	r := o.Register()
	r.ReadLock()
	stamp := o.RetireStamp()
	r.ReadUnlock()
	r.Unregister()

	if err := o.CheckReclaim(stamp); err != nil {
		t.Fatalf("unregistered reader flagged: %v", err)
	}
}

// TestOracleEndToEndNoSyncTree is the whole tentpole in one
// deterministic test, in the style of core's mutation tests: a tree on
// a NoSync flavor (shadowed by the oracle) retires a node while a
// hand-suspended reader's critical section still spans it, and the
// oracle — wired through core.EnableTorture — records the violation.
func TestOracleEndToEndNoSyncTree(t *testing.T) {
	o := NewOracle(rcu.NoSync(rcu.NewDomain()))
	rec := rcu.NewReclaimer(o)
	defer rec.Close()
	tr := core.NewTree[int, int](o)
	tr.EnableTorture(rec, o, true)

	h := tr.NewHandle()
	defer h.Close()
	for _, k := range []int{10, 5, 15} {
		h.Insert(k, k)
	}

	// A reader suspended mid-search: critical section open, then a
	// delete retires a node, then the (absent) grace period "elapses".
	reader := o.Register()
	defer reader.Unregister()
	reader.ReadLock()

	h2 := tr.NewHandle()
	defer h2.Close()
	if !h2.Delete(5) {
		t.Fatal("Delete(5) = false")
	}
	rec.Barrier() // flush the reclaim callback; NoSync makes it immediate

	reader.ReadUnlock()

	violations, first := tr.TortureReport()
	if violations == 0 || first == nil {
		t.Fatalf("TortureReport = (%d, %v); the NoSync reclamation inside an open critical section went unflagged", violations, first)
	}
	if o.Violations() == 0 {
		t.Fatal("oracle recorded no violations")
	}
}

// TestOracleEndToEndRealDomainClean: the same wiring on a real Domain
// stays silent — the no-false-positive half of the negative control.
func TestOracleEndToEndRealDomainClean(t *testing.T) {
	o := NewOracle(rcu.NewDomain())
	rec := rcu.NewReclaimer(o)
	defer rec.Close()
	tr := core.NewTree[int, int](o)
	tr.EnableTorture(rec, o, true)

	h := tr.NewHandle()
	defer h.Close()
	for k := 0; k < 32; k++ {
		h.Insert(k, k)
	}
	for k := 0; k < 32; k += 2 {
		h.Delete(k)
	}
	rec.Barrier()

	if v, first := tr.TortureReport(); v != 0 {
		t.Fatalf("violations on a correct flavor: %d (%v)", v, first)
	}
	if o.Checks() == 0 {
		t.Fatal("oracle saw no reclamations; the wiring is dead")
	}
	if trips := tr.PoisonTrips(); trips != 0 {
		t.Fatalf("PoisonTrips = %d on a correct flavor, want 0", trips)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
