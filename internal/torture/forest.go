package torture

import (
	"fmt"
	"slices"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/internal/core"
	"github.com/go-citrus/citrus/internal/dict"
	"github.com/go-citrus/citrus/internal/partition"
	"github.com/go-citrus/citrus/rcu"
)

// The forest subject tortures the sharded configuration: KeyRange keys
// hash-routed (the same seeded router citrus.Forest uses) across Shards
// independent trees, each with its own flavor wrapped in its own
// reclamation oracle and its own reclaimer. Every oracle verdict is
// per shard, so a cross-shard misroute (a key written to one shard and
// read from another) surfaces as a false negative and a reclamation
// that one shard's epochs can't justify surfaces in that shard's
// oracle alone.
//
// Under -flavor stalledreader only shard 0 gets the parked reader and
// the stall plumbing: the scenario's claim is isolation, and the
// positive control demands both that shard 0 reports stalls AND that
// the sibling shards' grace periods kept completing while it was
// parked (Verdict.SiblingSyncs > 0). The negative controls (nosync,
// snapearly, ebrearly) apply to every shard — routing must not launder
// a broken grace period into a pass.
type forestSubject struct {
	router  partition.Router[int]
	trees   []*core.Tree[int, int]
	oracles []*Oracle
	recs    []*rcu.Reclaimer
}

func buildForestSubject(cfg Config) (*subject, error) {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 4
	}
	var stalldom *rcu.Domain
	newInner := func(shard int) (rcu.Flavor, error) {
		switch cfg.Flavor {
		case "", "scalable":
			return rcu.NewDomain(), nil
		case "classic":
			return rcu.NewClassicDomain(), nil
		case "nosync":
			return rcu.NoSync(rcu.NewDomain()), nil
		case "snapearly":
			sd := rcu.NewDomain()
			sd.SetSnapEarlyMutant(true)
			return sd, nil
		case "ebr":
			return rcu.NewEpochDomain(), nil
		case "ebrearly":
			ed := rcu.NewEpochDomain()
			ed.SetAdvanceEarlyMutant(true)
			return ed, nil
		case "stalledreader":
			d := rcu.NewDomain()
			if shard == 0 {
				d.SetSiteCapture(true)
				d.SetStallTimeout(stallThreshold)
				stalldom = d
			}
			return d, nil
		case "scanstorm":
			// Scan-heavy scenario: every shard's reclaimer runs bounded
			// (watermarks below) and the run fails if any shard sheds.
			return rcu.NewDomain(), nil
		case "scanhog":
			return nil, fmt.Errorf("scanhog applies only to the citrus subject: the forest's scans collect per shard and emit outside the critical sections, so a slow consumer cannot hog the read side")
		default:
			return nil, fmt.Errorf("unknown flavor %q (scalable, classic, ebr, nosync, snapearly, ebrearly, stalledreader, scanstorm)", cfg.Flavor)
		}
	}

	fs := &forestSubject{
		router:  partition.NewRouter[int](partition.SharedSeed(), shards),
		trees:   make([]*core.Tree[int, int], shards),
		oracles: make([]*Oracle, shards),
		recs:    make([]*rcu.Reclaimer, shards),
	}
	inners := make([]rcu.Flavor, shards)
	var stallReports atomic.Int64
	for i := 0; i < shards; i++ {
		inner, err := newInner(i)
		if err != nil {
			return nil, err
		}
		inners[i] = inner
		o := NewOracle(inner)
		var recOpts []rcu.ReclaimerOption
		if stalldom != nil && i == 0 {
			stalldom.SetStallHandler(func(rcu.StallReport) { stallReports.Add(1) })
			recOpts = append(recOpts,
				rcu.WithHighWatermark(stallHigh),
				rcu.WithHardCap(stallCap),
				rcu.WithDrainBatch(stallBatch))
		}
		if cfg.Flavor == "scanstorm" {
			recOpts = append(recOpts,
				rcu.WithHighWatermark(stallHigh),
				rcu.WithHardCap(stallCap),
				rcu.WithDrainBatch(stallBatch))
		}
		rec := rcu.NewReclaimer(o, recOpts...)
		var tr *core.Tree[int, int]
		if cfg.Recycle {
			tr = core.NewTreeWithRecycling[int, int](o, rec)
			tr.EnableTorture(rec, o, false)
		} else {
			tr = core.NewTree[int, int](o)
			tr.EnableTorture(rec, o, true)
		}
		fs.trees[i], fs.oracles[i], fs.recs[i] = tr, o, rec
	}

	// Sibling grace-period baseline: Synchronizes on every domain except
	// shard 0, read again at fold time. Only meaningful for
	// stalledreader, but cheap enough to keep unconditionally.
	sibSyncs := func() int64 {
		var n int64
		for i := 1; i < shards; i++ {
			if src, ok := inners[i].(rcu.StatsSource); ok {
				n += src.Stats().Synchronizes
			}
		}
		return n
	}
	sibBase := sibSyncs()

	stopParker := func() {}
	if stalldom != nil {
		// Park inside shard 0's read side, registered through shard 0's
		// oracle so the parked sections join its epoch accounting.
		stop := make(chan struct{})
		done := make(chan struct{})
		pr := fs.oracles[0].Register()
		go func() {
			defer close(done)
			defer pr.Unregister()
			for {
				pr.ReadLock()
				select {
				case <-stop:
					pr.ReadUnlock()
					return
				case <-time.After(stallPark):
				}
				pr.ReadUnlock()
				select {
				case <-stop:
					return
				case <-time.After(stallGap):
				}
			}
		}()
		stopParker = func() { close(stop); <-done }
	}

	return &subject{
		newHandle: func() dict.Handle[int, int] {
			h := &forestTortureHandle{fs: fs, hs: make([]*core.Handle[int, int], shards)}
			for i := range fs.trees {
				h.hs[i] = fs.trees[i].NewHandle()
			}
			return h
		},
		keys: func() []int {
			var ks []int
			for _, tr := range fs.trees {
				ks = append(ks, tr.Keys()...)
			}
			slices.Sort(ks)
			return ks
		},
		check: func() error {
			for i, tr := range fs.trees {
				if err := tr.CheckInvariants(); err != nil {
					return fmt.Errorf("shard %d: %w", i, err)
				}
				var misrouted error
				tr.Range(func(k, _ int) bool {
					if want := fs.router.Partition(k); want != i {
						misrouted = fmt.Errorf("key %d found in shard %d, routes to %d", k, i, want)
						return false
					}
					return true
				})
				if misrouted != nil {
					return misrouted
				}
			}
			return nil
		},
		barrier: func() {
			for _, rec := range fs.recs {
				rec.Barrier()
			}
		},
		fold: func(v *Verdict) {
			for i := range fs.trees {
				v.ReclaimChecks += fs.oracles[i].Checks()
				v.ReclaimViolations += fs.oracles[i].Violations()
				v.PoisonTrips += fs.trees[i].PoisonTrips()
				retired, reused := fs.trees[i].RecycleStats()
				v.NodesRetired += retired
				v.NodesReused += reused
				rs := fs.recs[i].Stats()
				v.ReclaimDropped += rs.Dropped
				v.ReclaimExpedited += rs.ExpeditedDrains
				if rs.QueueHighWater > v.ReclaimQueueHighWater {
					v.ReclaimQueueHighWater = rs.QueueHighWater
				}
			}
			v.StallReports += stallReports.Load()
			v.SiblingSyncs += sibSyncs() - sibBase
		},
		violation: func() (int64, error) {
			for i := range fs.trees {
				if n, first := fs.trees[i].TortureReport(); n != 0 {
					return n, fmt.Errorf("shard %d: %w", i, first)
				}
				if fs.oracles[i].Violations() != 0 {
					return fs.oracles[i].Violations(), fmt.Errorf("shard %d: %w", i, fs.oracles[i].FirstViolation())
				}
				if trips := fs.trees[i].PoisonTrips(); trips != 0 {
					return trips, fmt.Errorf("shard %d: a search walked a reclaimed (poisoned) node %d time(s)", i, trips)
				}
			}
			return 0, nil
		},
		close: func() {
			stopParker()
			for _, rec := range fs.recs {
				rec.Close()
			}
		},
	}, nil
}

// forestTortureHandle mirrors citrus.ForestHandle: one core handle per
// shard, operations routed by the shared-seed hash.
type forestTortureHandle struct {
	fs *forestSubject
	hs []*core.Handle[int, int]
}

func (h *forestTortureHandle) Contains(key int) (int, bool) {
	return h.hs[h.fs.router.Partition(key)].Contains(key)
}

func (h *forestTortureHandle) Insert(key, value int) bool {
	return h.hs[h.fs.router.Partition(key)].Insert(key, value)
}

func (h *forestTortureHandle) Delete(key int) bool {
	return h.hs[h.fs.router.Partition(key)].Delete(key)
}

// RangeScan scans every shard for in-range pairs (each inside its own
// read-side critical section) and emits the sorted union in ascending
// key order — the same collect-and-merge shape as citrus.ForestHandle.
func (h *forestTortureHandle) RangeScan(lo, hi int, fn func(key int, value int) bool) {
	type pair struct{ k, v int }
	var pairs []pair
	for _, sh := range h.hs {
		sh.RangeScan(lo, hi, func(k, v int) bool {
			pairs = append(pairs, pair{k, v})
			return true
		})
	}
	slices.SortFunc(pairs, func(a, b pair) int { return a.k - b.k })
	for _, p := range pairs {
		if !fn(p.k, p.v) {
			return
		}
	}
}

// Scan emits every shard's pairs in ascending global key order.
func (h *forestTortureHandle) Scan(fn func(key int, value int) bool) {
	type pair struct{ k, v int }
	var pairs []pair
	for _, sh := range h.hs {
		sh.Scan(func(k, v int) bool {
			pairs = append(pairs, pair{k, v})
			return true
		})
	}
	slices.SortFunc(pairs, func(a, b pair) int { return a.k - b.k })
	for _, p := range pairs {
		if !fn(p.k, p.v) {
			return
		}
	}
}

// Snapshot is the weakly consistent downgrade, like the real forest's.
func (h *forestTortureHandle) Snapshot() dict.Snapshot[int, int] {
	return dict.NewWeakSnapshot[int, int](h)
}

func (h *forestTortureHandle) Close() {
	for _, sh := range h.hs {
		sh.Close()
	}
}
