package torture

import (
	"strings"
	"testing"
	"time"
)

// TestScanStormManySeeds: the acceptance gate for the scan scenario —
// ten distinct injection schedules of scan-heavy churn (half the
// workers running batched scans against the bounded reclaimer) must all
// pass, including the in-flight weak-consistency checks on every scan
// and the reclamation-discipline check that the hard cap never shed.
// CI runs this under -race as well as without.
func TestScanStormManySeeds(t *testing.T) {
	dur := 300 * time.Millisecond
	if testing.Short() {
		dur = 150 * time.Millisecond
	}
	for seed := uint64(1); seed <= 10; seed++ {
		v, err := Run(Config{
			Seed:     seed,
			Duration: dur,
			Threads:  8,
			KeyRange: 64,
			Flavor:   "scanstorm",
		})
		if err != nil {
			t.Fatal(err)
		}
		if !v.Passed {
			t.Fatalf("seed %d: scanstorm failed: %v (history: %v)", seed, v.Failures, v.MinimalHistory)
		}
		if v.ScanOps == 0 || v.ScanPairs == 0 {
			t.Fatalf("seed %d: no scan work recorded (ops %d, pairs %d)", seed, v.ScanOps, v.ScanPairs)
		}
		if v.ReclaimDropped != 0 {
			t.Fatalf("seed %d: batched scans still shed %d callback(s)", seed, v.ReclaimDropped)
		}
	}
}

// TestScanStormForest: the sharded configuration under the same
// scenario — per-shard bounded reclaimers, scans merging across shards.
func TestScanStormForest(t *testing.T) {
	v, err := Run(Config{
		Seed:     3,
		Duration: 400 * time.Millisecond,
		Threads:  8,
		KeyRange: 64,
		Impl:     "forest",
		Flavor:   "scanstorm",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Passed {
		t.Fatalf("forest scanstorm failed: %v", v.Failures)
	}
	if v.ScanOps == 0 {
		t.Fatal("forest scanstorm completed no scans")
	}
}

// TestNegativeControlScanHog: the scan-discipline negative control.
// Unbatched full-range scans with a slow consumer hold the read-side
// critical section for tens of milliseconds while churn floods a
// reclaimer capped at hogCap callbacks: the PR5 backpressure machinery
// MUST visibly trip (shed callbacks at the hard cap, stall reports from
// the armed detector) and the harness MUST turn that into a failing
// verdict. Fixed seed: a regression here is a deterministic repro.
func TestNegativeControlScanHog(t *testing.T) {
	v, err := Run(Config{
		Seed:     11,
		Duration: 2 * time.Second,
		Threads:  8,
		KeyRange: 64,
		Flavor:   "scanhog",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Passed {
		t.Fatalf("torture passed the scanhog negative control: verdict %+v", v)
	}
	if v.ReclaimDropped == 0 {
		t.Fatalf("scanhog failed for the wrong reason — the hard cap never shed: %v", v.Failures)
	}
	found := false
	for _, f := range v.Failures {
		if strings.Contains(f, "hard cap") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no failure names the hard cap: %v", v.Failures)
	}
	t.Logf("scanhog tripped: %d dropped, %d stall reports, queue high-water %d, %d scans",
		v.ReclaimDropped, v.StallReports, v.ReclaimQueueHighWater, v.ScanOps)
}

// TestScanReadersInDefaultRounds: scan readers are not scenario-only —
// plain rounds dedicate a quarter of the workers to scanning, on citrus
// and on registry subjects alike.
func TestScanReadersInDefaultRounds(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 5, Duration: 200 * time.Millisecond, Threads: 8, KeyRange: 64},
		{Seed: 5, Duration: 200 * time.Millisecond, Threads: 8, KeyRange: 64, Impl: "Skiplist"},
	} {
		v, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Passed {
			t.Fatalf("%q: %v", cfg.Impl, v.Failures)
		}
		if v.ScanOps == 0 {
			t.Fatalf("%q: default rounds ran no scans", cfg.Impl)
		}
	}
}
