package bonsai

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	tr := New[int, string]()
	h := tr.NewHandle()
	defer h.Close()
	if _, ok := h.Contains(1); ok {
		t.Fatal("Contains on empty tree = true")
	}
	if !h.Insert(1, "one") || h.Insert(1, "uno") {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := h.Contains(1); !ok || v != "one" {
		t.Fatalf("Contains(1) = (%q, %v)", v, ok)
	}
	if !h.Delete(1) || h.Delete(1) {
		t.Fatal("Delete semantics broken")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWeightBalanceMaintained validates the Adams balance bound after
// every mutation for adversarial insertion orders.
func TestWeightBalanceMaintained(t *testing.T) {
	for _, tc := range []struct {
		name string
		key  func(i int) int
	}{
		{"ascending", func(i int) int { return i }},
		{"descending", func(i int) int { return 5000 - i }},
		{"zigzag", func(i int) int {
			if i%2 == 0 {
				return i
			}
			return 5000 - i
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := New[int, int]()
			h := tr.NewHandle()
			defer h.Close()
			for i := 0; i < 2000; i++ {
				h.Insert(tc.key(i), i)
				if i%97 == 0 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("after %d inserts: %v", i+1, err)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Height must be logarithmic (weight-balance ⇒ height bound).
			depth := maxDepth(tr.root.Load())
			if bound := 3 * int(math.Log2(2000)+1); depth > bound {
				t.Fatalf("depth %d exceeds balanced bound %d", depth, bound)
			}
		})
	}
}

func maxDepth(n *node[int, int]) int {
	if n == nil {
		return 0
	}
	return 1 + max(maxDepth(n.left), maxDepth(n.right))
}

// TestDeleteRebalances drains a tree in sorted order — the worst case for
// deletion balance — validating invariants throughout.
func TestDeleteRebalances(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	const n = 1500
	for i := 0; i < n; i++ {
		h.Insert(i, i)
	}
	for i := 0; i < n; i++ {
		if !h.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
		if i%53 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after deleting %d: %v", i, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d after drain", tr.Len())
	}
}

// TestSnapshotIsolation is the property Bonsai buys with path copying: a
// traversal started before a batch of updates sees none of them, even
// though the updates complete while the traversal is suspended mid-walk.
func TestSnapshotIsolation(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	const n = 1000
	for i := 0; i < n; i++ {
		h.Insert(i, 0)
	}

	reached := make(chan struct{})
	resume := make(chan struct{})
	got := make(chan int, 1)
	go func() {
		count := 0
		tr.Range(func(k, v int) bool {
			if v != 0 {
				t.Errorf("snapshot observed updated value %d at key %d", v, k)
			}
			count++
			if k == n/2 {
				reached <- struct{}{}
				<-resume
			}
			return true
		})
		got <- count
	}()

	<-reached
	// Delete every key above the rendezvous and half below it.
	for k := 0; k < n; k += 2 {
		h.Delete(k)
	}
	close(resume)
	if count := <-got; count != n {
		t.Fatalf("suspended traversal saw %d keys, want the full snapshot %d", count, n)
	}
	if got := tr.Len(); got != n/2 {
		t.Fatalf("Len() = %d after deletes, want %d", got, n/2)
	}
}

// TestOldRootsRemainValid: a reader that captured the root before updates
// can keep using that snapshot indefinitely (persistence); GC plays the
// role of RCU-deferred reclamation.
func TestOldRootsRemainValid(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	for i := 0; i < 500; i++ {
		h.Insert(i, i)
	}
	snapshot := tr.root.Load()
	for i := 0; i < 500; i++ {
		h.Delete(i)
	}
	if tr.Len() != 0 {
		t.Fatal("tree should be empty")
	}
	// Walk the captured snapshot: all 500 keys still there, in order.
	count, prev := 0, -1
	var walk func(n *node[int, int])
	walk = func(n *node[int, int]) {
		if n == nil {
			return
		}
		walk(n.left)
		if n.key <= prev {
			t.Fatalf("snapshot order violated at %d", n.key)
		}
		prev = n.key
		count++
		walk(n.right)
	}
	walk(snapshot)
	if count != 500 {
		t.Fatalf("snapshot has %d keys, want 500", count)
	}
}

// TestUpdatersSerializeCorrectly: concurrent writers on the global update
// lock must not lose updates.
func TestUpdatersSerializeCorrectly(t *testing.T) {
	tr := New[int, int]()
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				k := w*perWriter + i
				if !h.Insert(k, k) {
					t.Errorf("Insert(%d) = false", k)
				}
				if rng.Intn(4) == 0 {
					if !h.Delete(k) {
						t.Errorf("Delete(%d) = false", k)
					}
					if !h.Insert(k, k) {
						t.Errorf("re-Insert(%d) = false", k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := tr.Len(); got != writers*perWriter {
		t.Fatalf("Len() = %d, want %d", got, writers*perWriter)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSizeCaching(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	rng := rand.New(rand.NewSource(11))
	live := map[int]bool{}
	for i := 0; i < 4000; i++ {
		k := rng.Intn(300)
		if rng.Intn(2) == 0 {
			if h.Insert(k, k) {
				live[k] = true
			}
		} else if h.Delete(k) {
			delete(live, k)
		}
		if got := tr.Len(); got != len(live) {
			t.Fatalf("op %d: Len() = %d, oracle %d", i, got, len(live))
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
