// Package bonsai implements the Bonsai tree of Clements, Kaashoek &
// Zeldovich ("Scalable Address Spaces Using RCU Balanced Trees", ASPLOS
// 2012) — the "Bonsai" series in the Citrus paper's evaluation.
//
// Bonsai is a weight-balanced binary search tree updated in functional
// style: an update never modifies reachable nodes, it builds a fresh copy
// of the root-to-leaf path (plus any rebalanced nodes) and publishes the
// new root with a single atomic store. Readers load the root inside an RCU
// read-side critical section and traverse an immutable snapshot, so they
// need no locks and no validation. All updaters serialize behind one
// mutex — precisely the coarse-grained design whose update-side flatline
// the Citrus paper demonstrates (Figures 9 and 10).
//
// The balance scheme is the classic Adams/weight-balanced discipline (as
// in Haskell's Data.Map): a node's subtree may be at most delta times
// heavier than its sibling, restored with single or double rotations
// chosen by the ratio test. In C the RCU read lock also defers frees; in
// Go the garbage collector retires old snapshots, and the read-side
// critical section is kept so the read path pays the same synchronization
// cost as the original.
package bonsai

import (
	"cmp"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/go-citrus/citrus/rcu"
)

// Weight-balance parameters (Adams' tree as tuned in Data.Map).
const (
	delta = 3 // max weight ratio between siblings
	ratio = 2 // single-vs-double rotation threshold
)

// node is an immutable tree node; size caches the subtree key count.
type node[K cmp.Ordered, V any] struct {
	key         K
	value       V
	size        int
	left, right *node[K, V]
}

func size[K cmp.Ordered, V any](n *node[K, V]) int {
	if n == nil {
		return 0
	}
	return n.size
}

func mk[K cmp.Ordered, V any](key K, value V, l, r *node[K, V]) *node[K, V] {
	return &node[K, V]{key: key, value: value, size: size(l) + size(r) + 1, left: l, right: r}
}

// Tree is the concurrent Bonsai tree.
type Tree[K cmp.Ordered, V any] struct {
	mu     sync.Mutex // serializes all updaters (the design's bottleneck)
	root   atomic.Pointer[node[K, V]]
	flavor rcu.Flavor
}

// New returns an empty Bonsai tree using its own RCU domain.
func New[K cmp.Ordered, V any]() *Tree[K, V] {
	return NewWithFlavor[K, V](rcu.NewDomain())
}

// NewWithFlavor returns an empty Bonsai tree whose readers register with
// the given RCU flavor.
func NewWithFlavor[K cmp.Ordered, V any](flavor rcu.Flavor) *Tree[K, V] {
	return &Tree[K, V]{flavor: flavor}
}

// A Handle is one goroutine's access point (it carries the RCU reader).
type Handle[K cmp.Ordered, V any] struct {
	t *Tree[K, V]
	r rcu.Reader
}

// NewHandle registers a handle for the calling goroutine.
func (t *Tree[K, V]) NewHandle() *Handle[K, V] {
	return &Handle[K, V]{t: t, r: t.flavor.Register()}
}

// Close unregisters the handle.
func (h *Handle[K, V]) Close() {
	h.r.Unregister()
	h.r = nil
}

// Contains returns the value stored under key, if any. It traverses an
// immutable snapshot inside a read-side critical section.
func (h *Handle[K, V]) Contains(key K) (V, bool) {
	h.r.ReadLock()
	n := h.t.root.Load()
	for n != nil {
		switch c := cmp.Compare(key, n.key); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			v := n.value
			h.r.ReadUnlock()
			return v, true
		}
	}
	h.r.ReadUnlock()
	var zero V
	return zero, false
}

// Insert adds (key, value); it returns false if key is already present.
func (h *Handle[K, V]) Insert(key K, value V) bool {
	t := h.t
	t.mu.Lock()
	defer t.mu.Unlock()
	newRoot, ok := insert(t.root.Load(), key, value)
	if ok {
		t.root.Store(newRoot)
	}
	return ok
}

// Delete removes key; it returns false if key is absent.
func (h *Handle[K, V]) Delete(key K) bool {
	t := h.t
	t.mu.Lock()
	defer t.mu.Unlock()
	newRoot, ok := remove(t.root.Load(), key)
	if ok {
		t.root.Store(newRoot)
	}
	return ok
}

func insert[K cmp.Ordered, V any](n *node[K, V], key K, value V) (*node[K, V], bool) {
	if n == nil {
		return mk(key, value, nil, nil), true
	}
	switch c := cmp.Compare(key, n.key); {
	case c < 0:
		l, ok := insert(n.left, key, value)
		if !ok {
			return nil, false
		}
		return balanceL(n.key, n.value, l, n.right), true
	case c > 0:
		r, ok := insert(n.right, key, value)
		if !ok {
			return nil, false
		}
		return balanceR(n.key, n.value, n.left, r), true
	default:
		return nil, false
	}
}

func remove[K cmp.Ordered, V any](n *node[K, V], key K) (*node[K, V], bool) {
	if n == nil {
		return nil, false
	}
	switch c := cmp.Compare(key, n.key); {
	case c < 0:
		l, ok := remove(n.left, key)
		if !ok {
			return nil, false
		}
		return balanceR(n.key, n.value, l, n.right), true
	case c > 0:
		r, ok := remove(n.right, key)
		if !ok {
			return nil, false
		}
		return balanceL(n.key, n.value, n.left, r), true
	default:
		return glue(n.left, n.right), true
	}
}

// glue joins two subtrees whose keys are already correctly ordered.
func glue[K cmp.Ordered, V any](l, r *node[K, V]) *node[K, V] {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case size(l) > size(r):
		k, v, l2 := deleteMax(l)
		return balanceR(k, v, l2, r)
	default:
		k, v, r2 := deleteMin(r)
		return balanceL(k, v, l, r2)
	}
}

func deleteMin[K cmp.Ordered, V any](n *node[K, V]) (K, V, *node[K, V]) {
	if n.left == nil {
		return n.key, n.value, n.right
	}
	k, v, l := deleteMin(n.left)
	return k, v, balanceR(n.key, n.value, l, n.right)
}

func deleteMax[K cmp.Ordered, V any](n *node[K, V]) (K, V, *node[K, V]) {
	if n.right == nil {
		return n.key, n.value, n.left
	}
	k, v, r := deleteMax(n.right)
	return k, v, balanceL(n.key, n.value, n.left, r)
}

// balanceL restores balance when the left subtree may have grown (or the
// right shrunk) by one.
func balanceL[K cmp.Ordered, V any](key K, value V, l, r *node[K, V]) *node[K, V] {
	sl, sr := size(l), size(r)
	if sl+sr <= 1 || sl <= delta*sr {
		return mk(key, value, l, r)
	}
	if size(l.right) < ratio*size(l.left) {
		// Single rotation right.
		return mk(l.key, l.value, l.left, mk(key, value, l.right, r))
	}
	// Double rotation: left-right.
	lr := l.right
	return mk(lr.key, lr.value,
		mk(l.key, l.value, l.left, lr.left),
		mk(key, value, lr.right, r))
}

// balanceR restores balance when the right subtree may have grown (or the
// left shrunk) by one.
func balanceR[K cmp.Ordered, V any](key K, value V, l, r *node[K, V]) *node[K, V] {
	sl, sr := size(l), size(r)
	if sl+sr <= 1 || sr <= delta*sl {
		return mk(key, value, l, r)
	}
	if size(r.left) < ratio*size(r.right) {
		// Single rotation left.
		return mk(r.key, r.value, mk(key, value, l, r.left), r.right)
	}
	// Double rotation: right-left.
	rl := r.left
	return mk(rl.key, rl.value,
		mk(key, value, l, rl.left),
		mk(r.key, r.value, rl.right, r.right))
}

// RangeScan calls fn on pairs with lo ≤ key < hi in ascending key order,
// stopping early when fn returns false. The whole traversal runs over
// one root capture inside a read-side critical section, so — unlike
// Citrus — a Bonsai scan is snapshot-consistent: it observes exactly the
// dictionary state at the instant the root was loaded.
func (h *Handle[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	h.r.ReadLock()
	rangeWalk(h.t.root.Load(), &lo, &hi, fn)
	h.r.ReadUnlock()
}

// Scan calls fn on every pair of one root capture in ascending key
// order, stopping early when fn returns false. Snapshot-consistent.
func (h *Handle[K, V]) Scan(fn func(key K, value V) bool) {
	h.r.ReadLock()
	rangeWalk(h.t.root.Load(), nil, nil, fn)
	h.r.ReadUnlock()
}

// Snap is an immutable point-in-time view of the tree: the root captured
// by Handle.Snap. Nodes are never modified after publication, so the
// view stays valid indefinitely — in Go the garbage collector keeps the
// captured version alive (the C original would pin it with the RCU read
// lock instead, which is why captures happen inside a critical section).
type Snap[K cmp.Ordered, V any] struct {
	root *node[K, V]
}

// Snap captures the current root as an immutable snapshot.
func (h *Handle[K, V]) Snap() Snap[K, V] {
	h.r.ReadLock()
	root := h.t.root.Load()
	h.r.ReadUnlock()
	return Snap[K, V]{root: root}
}

// Len reports the snapshot's key count.
func (s Snap[K, V]) Len() int { return size(s.root) }

// Range calls fn on the snapshot's pairs with lo ≤ key < hi in ascending
// key order, stopping early when fn returns false.
func (s Snap[K, V]) Range(lo, hi K, fn func(key K, value V) bool) {
	rangeWalk(s.root, &lo, &hi, fn)
}

// All calls fn on every snapshot pair in ascending key order, stopping
// early when fn returns false.
func (s Snap[K, V]) All(fn func(key K, value V) bool) {
	rangeWalk(s.root, nil, nil, fn)
}

// rangeWalk is the bounded in-order traversal shared by scans and
// snapshots: nil bounds are unbounded, lo inclusive, hi exclusive. It
// reports whether the walk ran to completion (fn never returned false).
func rangeWalk[K cmp.Ordered, V any](n *node[K, V], lo, hi *K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if lo != nil && cmp.Compare(n.key, *lo) < 0 {
		return rangeWalk(n.right, lo, hi, fn)
	}
	if hi != nil && cmp.Compare(n.key, *hi) >= 0 {
		return rangeWalk(n.left, lo, hi, fn)
	}
	return rangeWalk(n.left, lo, hi, fn) && fn(n.key, n.value) && rangeWalk(n.right, lo, hi, fn)
}

// Len reports the number of keys. Safe at any time (snapshot).
func (t *Tree[K, V]) Len() int { return size(t.root.Load()) }

// Keys returns all keys in ascending order, from a single snapshot. Safe
// at any time; implemented as a full-range scan of the snapshot.
func (t *Tree[K, V]) Keys() []K {
	root := t.root.Load()
	ks := make([]K, 0, size(root))
	rangeWalk(root, nil, nil, func(k K, _ V) bool { ks = append(ks, k); return true })
	return ks
}

// Range calls fn on every pair of one snapshot, in ascending key order,
// until fn returns false. Unlike Citrus, Bonsai gives consistent
// iteration for free — the paper's Figure 1 anomaly cannot happen on an
// immutable snapshot.
func (t *Tree[K, V]) Range(fn func(key K, value V) bool) {
	rangeWalk(t.root.Load(), nil, nil, fn)
}

// CheckInvariants verifies BST order, size caching, and the weight-balance
// bound on a snapshot.
func (t *Tree[K, V]) CheckInvariants() error {
	var prev *K
	var check func(n *node[K, V]) error
	check = func(n *node[K, V]) error {
		if n == nil {
			return nil
		}
		if err := check(n.left); err != nil {
			return err
		}
		if prev != nil && cmp.Compare(n.key, *prev) <= 0 {
			return fmt.Errorf("BST order violated: %v after %v", n.key, *prev)
		}
		k := n.key
		prev = &k
		if got := size(n.left) + size(n.right) + 1; n.size != got {
			return fmt.Errorf("node %v caches size %d, subtree has %d", n.key, n.size, got)
		}
		if sl, sr := size(n.left), size(n.right); sl+sr > 1 && (sl > delta*sr || sr > delta*sl) {
			return fmt.Errorf("node %v weight-unbalanced: |L|=%d |R|=%d", n.key, sl, sr)
		}
		return check(n.right)
	}
	return check(t.root.Load())
}
