// Package hohbst implements an internal binary search tree synchronized
// by hand-over-hand locking (lock coupling) — the "natural approach" for
// fine-grained synchronization that the Citrus paper's introduction
// contrasts RCU against. Every operation, including lookups, descends
// the tree holding a sliding window of two node locks: the child is
// locked before the parent is released, so the path cannot be cut out
// from under a traversal.
//
// The structure is correct and deadlock-free (locks are only ever
// acquired downward), and updates on different branches proceed
// concurrently. Its weakness is exactly the paper's motivation: *readers
// pay two lock operations per visited node*, serializing against each
// other and against writers near the root — compare
// BenchmarkContainsScaling, where Citrus's wait-free lookups cost a
// fraction of this design's.
package hohbst

import (
	"cmp"
	"fmt"
	"sync"
)

// node fields are protected by mu of the node itself for key/value and
// by the *parent's* mu for the incoming link; since traversals hold
// parent and child locks together, both conventions are satisfied
// everywhere below.
type node[K cmp.Ordered, V any] struct {
	mu          sync.Mutex
	key         K
	value       V
	left, right *node[K, V]
}

// Tree is the lock-coupling BST. Its zero value is not usable; create
// with New. All methods are safe for concurrent use (there is no
// per-goroutine handle state; NewHandle exists for registry symmetry).
type Tree[K cmp.Ordered, V any] struct {
	mu   sync.Mutex // guards root (acts as the root's parent lock)
	root *node[K, V]
	size int // guarded by mu... only written with structural locks held; see add/sub
	szMu sync.Mutex
}

// New returns an empty tree.
func New[K cmp.Ordered, V any]() *Tree[K, V] { return &Tree[K, V]{} }

// A Handle is one goroutine's access point (stateless; registry
// symmetry).
type Handle[K cmp.Ordered, V any] struct{ t *Tree[K, V] }

// NewHandle returns a handle for the calling goroutine.
func (t *Tree[K, V]) NewHandle() *Handle[K, V] { return &Handle[K, V]{t: t} }

// Close releases the handle (no-op).
func (h *Handle[K, V]) Close() {}

func (t *Tree[K, V]) addSize(d int) {
	t.szMu.Lock()
	t.size += d
	t.szMu.Unlock()
}

// Contains returns the value stored under key, if any. It lock-couples
// from the root: O(depth) lock/unlock pairs per call.
func (h *Handle[K, V]) Contains(key K) (V, bool) {
	t := h.t
	t.mu.Lock()
	n := t.root
	if n == nil {
		t.mu.Unlock()
		var zero V
		return zero, false
	}
	n.mu.Lock()
	t.mu.Unlock()
	for {
		c := cmp.Compare(key, n.key)
		if c == 0 {
			v := n.value
			n.mu.Unlock()
			return v, true
		}
		next := n.left
		if c > 0 {
			next = n.right
		}
		if next == nil {
			n.mu.Unlock()
			var zero V
			return zero, false
		}
		next.mu.Lock() // couple: child before parent release
		n.mu.Unlock()
		n = next
	}
}

// Insert adds (key, value); it returns false if key is already present.
func (h *Handle[K, V]) Insert(key K, value V) bool {
	t := h.t
	t.mu.Lock()
	if t.root == nil {
		t.root = &node[K, V]{key: key, value: value}
		t.mu.Unlock()
		t.addSize(1)
		return true
	}
	n := t.root
	n.mu.Lock()
	t.mu.Unlock()
	for {
		c := cmp.Compare(key, n.key)
		if c == 0 {
			n.mu.Unlock()
			return false
		}
		link := &n.left
		if c > 0 {
			link = &n.right
		}
		if *link == nil {
			*link = &node[K, V]{key: key, value: value}
			n.mu.Unlock()
			t.addSize(1)
			return true
		}
		next := *link
		next.mu.Lock()
		n.mu.Unlock()
		n = next
	}
}

// Delete removes key; it returns false if key is absent. A victim with
// two children is not unlinked: the successor's pair is moved into it
// (legal here — unlike in Citrus, every reader locks, so in-place key
// mutation cannot be observed mid-flight) and the successor node is
// unlinked instead.
func (h *Handle[K, V]) Delete(key K) bool {
	t := h.t
	t.mu.Lock()
	if t.root == nil {
		t.mu.Unlock()
		return false
	}
	// Descend holding (parentLink-owner, current). The tree lock plays
	// parent for the root.
	curr := t.root
	curr.mu.Lock()
	// unlockParent releases whichever parent lock is currently held.
	var parent *node[K, V] // nil = the tree lock is the parent
	unlockParent := func() {
		if parent == nil {
			t.mu.Unlock()
		} else {
			parent.mu.Unlock()
		}
	}
	link := &t.root
	for {
		c := cmp.Compare(key, curr.key)
		if c == 0 {
			break
		}
		next := curr.left
		nextLink := &curr.left
		if c > 0 {
			next = curr.right
			nextLink = &curr.right
		}
		if next == nil {
			unlockParent()
			curr.mu.Unlock()
			return false
		}
		next.mu.Lock()
		unlockParent()
		parent, link = curr, nextLink
		curr = next
	}

	switch {
	case curr.left == nil || curr.right == nil:
		// ≤1 child: splice curr out of its parent link.
		repl := curr.left
		if repl == nil {
			repl = curr.right
		}
		*link = repl
		unlockParent()
		curr.mu.Unlock()
	default:
		// Two children: parent is no longer needed; curr stays locked
		// while we couple down to the successor.
		unlockParent()
		sp := curr // successor's parent; == curr means succ is curr.right
		succ := curr.right
		succ.mu.Lock()
		for succ.left != nil {
			next := succ.left
			next.mu.Lock()
			if sp != curr {
				sp.mu.Unlock()
			}
			sp, succ = succ, next
		}
		// Unlink succ (it has no left child) and move its pair into curr.
		if sp == curr {
			curr.right = succ.right
		} else {
			sp.left = succ.right
			sp.mu.Unlock()
		}
		curr.key, curr.value = succ.key, succ.value
		succ.mu.Unlock()
		curr.mu.Unlock()
	}
	t.addSize(-1)
	return true
}

// Len reports the number of keys. Quiescent use only.
func (t *Tree[K, V]) Len() int {
	t.szMu.Lock()
	defer t.szMu.Unlock()
	return t.size
}

// Keys returns all keys in ascending order. Quiescent use only.
func (t *Tree[K, V]) Keys() []K {
	var ks []K
	t.Range(func(k K, _ V) bool { ks = append(ks, k); return true })
	return ks
}

// Range calls fn on every pair in ascending key order until fn returns
// false. Quiescent use only.
func (t *Tree[K, V]) Range(fn func(key K, value V) bool) {
	var walk func(n *node[K, V]) bool
	walk = func(n *node[K, V]) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.key, n.value) && walk(n.right)
	}
	walk(t.root)
}

// CheckInvariants verifies BST order and the size counter. Quiescent use
// only.
func (t *Tree[K, V]) CheckInvariants() error {
	count := 0
	var prev *K
	var check func(n *node[K, V]) error
	check = func(n *node[K, V]) error {
		if n == nil {
			return nil
		}
		if err := check(n.left); err != nil {
			return err
		}
		if prev != nil && cmp.Compare(n.key, *prev) <= 0 {
			return fmt.Errorf("BST order violated: %v after %v", n.key, *prev)
		}
		k := n.key
		prev = &k
		count++
		return check(n.right)
	}
	if err := check(t.root); err != nil {
		return err
	}
	if count != t.Len() {
		return fmt.Errorf("size counter %d, counted %d", t.Len(), count)
	}
	return nil
}
