// Package hohbst implements an internal binary search tree synchronized
// by hand-over-hand locking (lock coupling) — the "natural approach" for
// fine-grained synchronization that the Citrus paper's introduction
// contrasts RCU against. Every operation, including lookups, descends
// the tree holding a sliding window of two node locks: the child is
// locked before the parent is released, so the path cannot be cut out
// from under a traversal.
//
// The structure is correct and deadlock-free (locks are only ever
// acquired downward), and updates on different branches proceed
// concurrently. Its weakness is exactly the paper's motivation: *readers
// pay two lock operations per visited node*, serializing against each
// other and against writers near the root — compare
// BenchmarkContainsScaling, where Citrus's wait-free lookups cost a
// fraction of this design's.
package hohbst

import (
	"cmp"
	"fmt"
	"sync"
)

// node fields are protected by mu of the node itself for key/value and
// by the *parent's* mu for the incoming link; since traversals hold
// parent and child locks together, both conventions are satisfied
// everywhere below.
type node[K cmp.Ordered, V any] struct {
	mu          sync.Mutex
	key         K
	value       V
	left, right *node[K, V]
}

// Tree is the lock-coupling BST. Its zero value is not usable; create
// with New. All methods are safe for concurrent use (there is no
// per-goroutine handle state; NewHandle exists for registry symmetry).
type Tree[K cmp.Ordered, V any] struct {
	mu   sync.Mutex // guards root (acts as the root's parent lock)
	root *node[K, V]
	size int // guarded by mu... only written with structural locks held; see add/sub
	szMu sync.Mutex
}

// New returns an empty tree.
func New[K cmp.Ordered, V any]() *Tree[K, V] { return &Tree[K, V]{} }

// A Handle is one goroutine's access point (stateless; registry
// symmetry).
type Handle[K cmp.Ordered, V any] struct{ t *Tree[K, V] }

// NewHandle returns a handle for the calling goroutine.
func (t *Tree[K, V]) NewHandle() *Handle[K, V] { return &Handle[K, V]{t: t} }

// Close releases the handle (no-op).
func (h *Handle[K, V]) Close() {}

func (t *Tree[K, V]) addSize(d int) {
	t.szMu.Lock()
	t.size += d
	t.szMu.Unlock()
}

// Contains returns the value stored under key, if any. It lock-couples
// from the root: O(depth) lock/unlock pairs per call.
func (h *Handle[K, V]) Contains(key K) (V, bool) {
	t := h.t
	t.mu.Lock()
	n := t.root
	if n == nil {
		t.mu.Unlock()
		var zero V
		return zero, false
	}
	n.mu.Lock()
	t.mu.Unlock()
	for {
		c := cmp.Compare(key, n.key)
		if c == 0 {
			v := n.value
			n.mu.Unlock()
			return v, true
		}
		next := n.left
		if c > 0 {
			next = n.right
		}
		if next == nil {
			n.mu.Unlock()
			var zero V
			return zero, false
		}
		next.mu.Lock() // couple: child before parent release
		n.mu.Unlock()
		n = next
	}
}

// Insert adds (key, value); it returns false if key is already present.
func (h *Handle[K, V]) Insert(key K, value V) bool {
	t := h.t
	t.mu.Lock()
	if t.root == nil {
		t.root = &node[K, V]{key: key, value: value}
		t.mu.Unlock()
		t.addSize(1)
		return true
	}
	n := t.root
	n.mu.Lock()
	t.mu.Unlock()
	for {
		c := cmp.Compare(key, n.key)
		if c == 0 {
			n.mu.Unlock()
			return false
		}
		link := &n.left
		if c > 0 {
			link = &n.right
		}
		if *link == nil {
			*link = &node[K, V]{key: key, value: value}
			n.mu.Unlock()
			t.addSize(1)
			return true
		}
		next := *link
		next.mu.Lock()
		n.mu.Unlock()
		n = next
	}
}

// Delete removes key; it returns false if key is absent. A victim with
// two children is not unlinked: the successor's pair is moved into it
// (legal here — unlike in Citrus, every reader locks, so in-place key
// mutation cannot be observed mid-flight) and the successor node is
// unlinked instead.
func (h *Handle[K, V]) Delete(key K) bool {
	t := h.t
	t.mu.Lock()
	if t.root == nil {
		t.mu.Unlock()
		return false
	}
	// Descend holding (parentLink-owner, current). The tree lock plays
	// parent for the root.
	curr := t.root
	curr.mu.Lock()
	// unlockParent releases whichever parent lock is currently held.
	var parent *node[K, V] // nil = the tree lock is the parent
	unlockParent := func() {
		if parent == nil {
			t.mu.Unlock()
		} else {
			parent.mu.Unlock()
		}
	}
	link := &t.root
	for {
		c := cmp.Compare(key, curr.key)
		if c == 0 {
			break
		}
		next := curr.left
		nextLink := &curr.left
		if c > 0 {
			next = curr.right
			nextLink = &curr.right
		}
		if next == nil {
			unlockParent()
			curr.mu.Unlock()
			return false
		}
		next.mu.Lock()
		unlockParent()
		parent, link = curr, nextLink
		curr = next
	}

	switch {
	case curr.left == nil || curr.right == nil:
		// ≤1 child: splice curr out of its parent link.
		repl := curr.left
		if repl == nil {
			repl = curr.right
		}
		*link = repl
		unlockParent()
		curr.mu.Unlock()
	default:
		// Two children: parent is no longer needed; curr stays locked
		// while we couple down to the successor.
		unlockParent()
		sp := curr // successor's parent; == curr means succ is curr.right
		succ := curr.right
		succ.mu.Lock()
		for succ.left != nil {
			next := succ.left
			next.mu.Lock()
			if sp != curr {
				sp.mu.Unlock()
			}
			sp, succ = succ, next
		}
		// Unlink succ (it has no left child) and move its pair into curr.
		if sp == curr {
			curr.right = succ.right
		} else {
			sp.left = succ.right
			sp.mu.Unlock()
		}
		curr.key, curr.value = succ.key, succ.value
		succ.mu.Unlock()
		curr.mu.Unlock()
	}
	t.addSize(-1)
	return true
}

// RangeScan calls fn on pairs with lo ≤ key < hi in ascending key
// order, stopping early when fn returns false. Weakly consistent: the
// scan advances a cursor, and each step is an independent lock-coupled
// ceiling search (smallest key at/above the cursor). Per-step searches
// are required rather than a single coupled in-order walk because a
// two-child delete moves the successor's pair into the victim in place
// — keys relocate, so any traversal that parks on a node may find the
// key under it changed; re-searching by key tolerates that. Each
// emitted pair was present at the instant its search held the node
// lock, and emissions ascend strictly.
func (h *Handle[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	bound, strict := &lo, false
	for {
		k, v, ok := h.t.ceiling(bound, strict)
		if !ok || cmp.Compare(k, hi) >= 0 {
			return
		}
		if !fn(k, v) {
			return
		}
		kk := k
		bound, strict = &kk, true
	}
}

// Scan calls fn on every pair in ascending key order, stopping early
// when fn returns false. Weakly consistent; see RangeScan.
func (h *Handle[K, V]) Scan(fn func(key K, value V) bool) {
	var bound *K
	strict := false
	for {
		k, v, ok := h.t.ceiling(bound, strict)
		if !ok {
			return
		}
		if !fn(k, v) {
			return
		}
		kk := k
		bound, strict = &kk, true
	}
}

// ceiling returns the pair with the smallest key at (or, when strict,
// strictly above) bound; nil bound means the tree's minimum. It
// lock-couples down the tree, remembering the best qualifying node seen
// and re-locking it at the end is unnecessary: the best candidate's
// pair is captured while its lock is held, so the returned snapshot was
// present at that instant.
func (t *Tree[K, V]) ceiling(bound *K, strict bool) (K, V, bool) {
	var (
		bestK K
		bestV V
		found bool
	)
	t.mu.Lock()
	n := t.root
	if n == nil {
		t.mu.Unlock()
		return bestK, bestV, false
	}
	n.mu.Lock()
	t.mu.Unlock()
	for {
		qualifies := true
		if bound != nil {
			c := cmp.Compare(*bound, n.key)
			qualifies = c < 0 || (c == 0 && !strict)
		}
		var next *node[K, V]
		if qualifies {
			// n is a candidate; a smaller one may exist on the left.
			bestK, bestV, found = n.key, n.value, true
			next = n.left
		} else {
			next = n.right
		}
		if next == nil {
			n.mu.Unlock()
			return bestK, bestV, found
		}
		next.mu.Lock() // couple: child before parent release
		n.mu.Unlock()
		n = next
	}
}

// Len reports the number of keys. Quiescent use only.
func (t *Tree[K, V]) Len() int {
	t.szMu.Lock()
	defer t.szMu.Unlock()
	return t.size
}

// Keys returns all keys in ascending order. Quiescent use only.
func (t *Tree[K, V]) Keys() []K {
	var ks []K
	t.Range(func(k K, _ V) bool { ks = append(ks, k); return true })
	return ks
}

// Range calls fn on every pair in ascending key order until fn returns
// false. Runs the concurrent scan path (iterated ceiling searches) so
// quiescent and live reads share one traversal.
func (t *Tree[K, V]) Range(fn func(key K, value V) bool) {
	h := t.NewHandle()
	defer h.Close()
	h.Scan(fn)
}

// CheckInvariants verifies BST order and the size counter. Quiescent use
// only.
func (t *Tree[K, V]) CheckInvariants() error {
	count := 0
	var prev *K
	var check func(n *node[K, V]) error
	check = func(n *node[K, V]) error {
		if n == nil {
			return nil
		}
		if err := check(n.left); err != nil {
			return err
		}
		if prev != nil && cmp.Compare(n.key, *prev) <= 0 {
			return fmt.Errorf("BST order violated: %v after %v", n.key, *prev)
		}
		k := n.key
		prev = &k
		count++
		return check(n.right)
	}
	if err := check(t.root); err != nil {
		return err
	}
	if count != t.Len() {
		return fmt.Errorf("size counter %d, counted %d", t.Len(), count)
	}
	return nil
}
