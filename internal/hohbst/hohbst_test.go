package hohbst

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	tr := New[int, string]()
	h := tr.NewHandle()
	defer h.Close()
	if _, ok := h.Contains(8); ok {
		t.Fatal("Contains on empty tree = true")
	}
	if !h.Insert(8, "eight") || h.Insert(8, "acht") {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := h.Contains(8); !ok || v != "eight" {
		t.Fatalf("Contains(8) = (%q, %v)", v, ok)
	}
	if !h.Delete(8) || h.Delete(8) {
		t.Fatal("Delete semantics broken")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTwoChildDeleteMovesSuccessorInPlace pins down the in-place
// key/value move (legal here because readers lock): after deleting a
// two-child node, the successor's pair must be found under the
// successor's key, once, and the tree must stay ordered.
func TestTwoChildDeleteMovesSuccessorInPlace(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	for _, k := range []int{50, 25, 75, 60, 90, 55, 65} {
		h.Insert(k, k+1000)
	}
	if !h.Delete(50) {
		t.Fatal("Delete(50) = false")
	}
	if _, ok := h.Contains(50); ok {
		t.Fatal("50 still present")
	}
	if v, ok := h.Contains(55); !ok || v != 1055 {
		t.Fatalf("successor pair lost: (%d, %v)", v, ok)
	}
	want := []int{25, 55, 60, 65, 75, 90}
	got := tr.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestNoDeadlockUnderCrossingTraffic drives heavy bidirectional traffic
// (ascending readers, descending writers and vice versa) through shared
// paths; lock coupling must never deadlock because all acquisition is
// downward.
func TestNoDeadlockUnderCrossingTraffic(t *testing.T) {
	tr := New[int, int]()
	seed := tr.NewHandle()
	for k := 0; k < 256; k += 2 {
		seed.Insert(k, k)
	}
	seed.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 3000; i++ {
				k := rng.Intn(256)
				switch g % 3 {
				case 0:
					h.Contains(k)
				case 1:
					h.Insert(k|1, k)
				default:
					h.Delete(k | 1)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Even keys are untouchable by the writers above.
	h := tr.NewHandle()
	defer h.Close()
	for k := 0; k < 256; k += 2 {
		if _, ok := h.Contains(k); !ok {
			t.Fatalf("permanent key %d lost", k)
		}
	}
}

func TestDeleteRootShapes(t *testing.T) {
	for _, keys := range [][]int{
		{10},
		{10, 5},
		{10, 15},
		{10, 5, 15},
		{10, 15, 12, 20},
	} {
		tr := New[int, int]()
		h := tr.NewHandle()
		for _, k := range keys {
			h.Insert(k, k)
		}
		if !h.Delete(10) {
			t.Fatalf("keys %v: Delete(root) = false", keys)
		}
		if got := tr.Len(); got != len(keys)-1 {
			t.Fatalf("keys %v: Len() = %d", keys, got)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("keys %v: %v", keys, err)
		}
		h.Close()
	}
}
