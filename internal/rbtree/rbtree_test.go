package rbtree

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestBasicOps(t *testing.T) {
	tr := New[int, string]()
	h := tr.NewHandle()
	defer h.Close()
	if _, ok := h.Contains(1); ok {
		t.Fatal("Contains on empty tree = true")
	}
	if !h.Insert(1, "one") || h.Insert(1, "uno") {
		t.Fatal("Insert semantics broken")
	}
	if v, ok := h.Contains(1); !ok || v != "one" {
		t.Fatalf("Contains(1) = (%q, %v)", v, ok)
	}
	if !h.Delete(1) || h.Delete(1) {
		t.Fatal("Delete semantics broken")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantsAfterEveryOp drives random operations and validates the
// full red-black invariant set after every single mutation. This is the
// workhorse test for the fixup paths (copying rotations included).
func TestInvariantsAfterEveryOp(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	oracle := map[int]int{}
	rng := rand.New(rand.NewSource(7))
	const keyRange = 128
	for i := 0; i < 6000; i++ {
		k := rng.Intn(keyRange)
		if rng.Intn(2) == 0 {
			_, present := oracle[k]
			if got := h.Insert(k, i); got == present {
				t.Fatalf("op %d: Insert(%d) = %v with present=%v", i, k, got, present)
			}
			if !present {
				oracle[k] = i
			}
		} else {
			_, present := oracle[k]
			if got := h.Delete(k); got != present {
				t.Fatalf("op %d: Delete(%d) = %v with present=%v", i, k, got, present)
			}
			delete(oracle, k)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	for k, v := range oracle {
		if got, ok := h.Contains(k); !ok || got != v {
			t.Fatalf("Contains(%d) = (%d, %v), want (%d, true)", k, got, ok, v)
		}
	}
	if got, want := tr.Len(), len(oracle); got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
}

// TestDeleteShapes covers every RB-DELETE branch, including the deep
// successor that triggers the grace-period swap.
func TestDeleteShapes(t *testing.T) {
	build := func(keys ...int) (*Tree[int, int], *Handle[int, int]) {
		tr := New[int, int]()
		h := tr.NewHandle()
		for _, k := range keys {
			h.Insert(k, k)
		}
		return tr, h
	}
	t.Run("leaf", func(t *testing.T) {
		tr, h := build(10, 5, 15)
		if !h.Delete(5) {
			t.Fatal("Delete(5) = false")
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("successor is right child", func(t *testing.T) {
		tr, h := build(10, 5, 15, 20)
		if !h.Delete(10) {
			t.Fatal("Delete(10) = false")
		}
		if _, ok := h.Contains(15); !ok {
			t.Fatal("successor lost")
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("deep successor", func(t *testing.T) {
		tr, h := build(10, 5, 20, 15, 25, 12)
		if !h.Delete(10) {
			t.Fatal("Delete(10) = false")
		}
		for _, k := range []int{5, 12, 15, 20, 25} {
			if _, ok := h.Contains(k); !ok {
				t.Fatalf("key %d lost", k)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("drain", func(t *testing.T) {
		tr, h := build()
		for i := 0; i < 200; i++ {
			h.Insert(i*7%200, i)
		}
		for i := 0; i < 200; i++ {
			if !h.Delete(i) {
				t.Fatalf("Delete(%d) = false", i)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after Delete(%d): %v", i, err)
			}
		}
		if tr.Len() != 0 {
			t.Fatal("tree not empty")
		}
	})
}

// TestLogarithmicHeight sanity-checks that balancing actually happens for
// a sequential insertion order (which would degenerate in Citrus).
func TestLogarithmicHeight(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	const n = 4096
	for i := 0; i < n; i++ {
		h.Insert(i, i)
	}
	var height func(n *node[int, int]) int
	height = func(x *node[int, int]) int {
		if x == tr.nilN {
			return 0
		}
		return 1 + max(height(x.child[left].Load()), height(x.child[right].Load()))
	}
	if got := height(tr.root.Load()); got > 2*13 { // 2·log2(4096+1) bound
		t.Fatalf("height %d exceeds red-black bound", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReadersDuringWrites runs lock-free readers against a single writer
// and checks that keys that are permanently present are never missed —
// the relativistic guarantee the copying rotations and the grace-period
// swap exist to provide.
func TestReadersDuringWrites(t *testing.T) {
	tr := New[int, int]()
	w := tr.NewHandle()
	const n = 512
	perm := make([]int, 0, n/2)
	for k := 0; k < n; k++ {
		w.Insert(k, k)
		if k%2 == 0 {
			perm = append(perm, k)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := perm[rng.Intn(len(perm))]
				if v, ok := h.Contains(k); !ok || v != k {
					select {
					case errs <- errRec{k}:
					default:
					}
					return
				}
			}
		}(int64(i))
	}

	rng := rand.New(rand.NewSource(99))
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		k := rng.Intn(n/2)*2 + 1 // odd churn keys only
		if rng.Intn(2) == 0 {
			w.Delete(k)
		} else {
			w.Insert(k, k)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

type errRec struct{ k int }

func (e errRec) Error() string { return "reader missed permanently present key" }
