// Package rbtree implements a relativistic red-black tree in the style of
// Howard & Walpole ("Relativistic red-black trees", CC:P&E 2013) — the
// "Red-Black" series in the Citrus paper's evaluation.
//
// The tree admits exactly one writer at a time (a global mutex — this is
// the coarse-grained design whose update-side flatline the Citrus paper
// demonstrates), while readers run wait-free inside RCU read-side critical
// sections. Because readers traverse while the writer restructures, every
// physical transformation must keep all concurrent searches on a correct
// path:
//
//   - Recoloring is done in place: readers never look at colors.
//   - A rotation never moves the pivot in place (that would send readers
//     bound for the moved subtree down the wrong branch). Instead the node
//     moving *down* is copied; the copy is hooked beneath the rising node
//     and the rotation becomes visible with a single child-pointer store.
//     The unlinked original still points at valid subtrees, so readers
//     already past it finish correctly.
//   - Deleting a node with two children publishes a *copy* of its
//     successor at the victim's position, waits a grace period
//     (synchronize_rcu) so every search that might be heading for the
//     successor's old position completes, and only then splices the
//     original successor out — the same discipline Citrus generalizes.
//
// Structure bookkeeping (parent pointers, colors, the nil sentinel's
// scratch parent) is touched only by the exclusive writer; key and value
// are immutable per node; child pointers are atomics because readers
// chase them lock-free.
package rbtree

import (
	"cmp"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/go-citrus/citrus/rcu"
)

type color uint8

const (
	red color = iota
	black
)

const (
	left  = 0
	right = 1
)

type node[K cmp.Ordered, V any] struct {
	key    K
	value  V
	color  color       // writer-only
	parent *node[K, V] // writer-only
	child  [2]atomic.Pointer[node[K, V]]
}

// Tree is the concurrent relativistic red-black tree.
type Tree[K cmp.Ordered, V any] struct {
	mu     sync.Mutex // the single-writer lock
	flavor rcu.Flavor
	nilN   *node[K, V] // black sentinel; leaves and the empty root point here
	root   atomic.Pointer[node[K, V]]
	size   int // writer-only
}

// New returns an empty tree using its own RCU domain.
func New[K cmp.Ordered, V any]() *Tree[K, V] {
	return NewWithFlavor[K, V](rcu.NewDomain())
}

// NewWithFlavor returns an empty tree whose readers and grace periods use
// the given RCU flavor.
func NewWithFlavor[K cmp.Ordered, V any](flavor rcu.Flavor) *Tree[K, V] {
	t := &Tree[K, V]{flavor: flavor}
	t.nilN = &node[K, V]{color: black}
	t.nilN.child[left].Store(t.nilN)
	t.nilN.child[right].Store(t.nilN)
	t.root.Store(t.nilN)
	return t
}

// A Handle is one goroutine's access point (it carries the RCU reader).
type Handle[K cmp.Ordered, V any] struct {
	t *Tree[K, V]
	r rcu.Reader
}

// NewHandle registers a handle for the calling goroutine.
func (t *Tree[K, V]) NewHandle() *Handle[K, V] {
	return &Handle[K, V]{t: t, r: t.flavor.Register()}
}

// Close unregisters the handle.
func (h *Handle[K, V]) Close() {
	h.r.Unregister()
	h.r = nil
}

// Contains returns the value stored under key, if any. Wait-free; runs
// inside a read-side critical section.
func (h *Handle[K, V]) Contains(key K) (V, bool) {
	t := h.t
	h.r.ReadLock()
	n := t.root.Load()
	for n != t.nilN {
		switch c := cmp.Compare(key, n.key); {
		case c < 0:
			n = n.child[left].Load()
		case c > 0:
			n = n.child[right].Load()
		default:
			v := n.value
			h.r.ReadUnlock()
			return v, true
		}
	}
	h.r.ReadUnlock()
	var zero V
	return zero, false
}

// Insert adds (key, value); it returns false if key is already present.
func (h *Handle[K, V]) Insert(key K, value V) bool {
	t := h.t
	t.mu.Lock()
	defer t.mu.Unlock()

	parent := t.nilN
	n := t.root.Load()
	for n != t.nilN {
		parent = n
		switch c := cmp.Compare(key, n.key); {
		case c < 0:
			n = n.child[left].Load()
		case c > 0:
			n = n.child[right].Load()
		default:
			return false
		}
	}
	z := &node[K, V]{key: key, value: value, color: red, parent: parent}
	z.child[left].Store(t.nilN)
	z.child[right].Store(t.nilN)
	if parent == t.nilN {
		t.root.Store(z)
	} else if cmp.Less(key, parent.key) {
		parent.child[left].Store(z)
	} else {
		parent.child[right].Store(z)
	}
	t.insertFixup(z)
	t.size++
	return true
}

// insertFixup is CLRS's RB-INSERT-FIXUP with rotations that copy the
// down-moving node (see rotate).
func (t *Tree[K, V]) insertFixup(z *node[K, V]) {
	for z.parent.color == red {
		gp := z.parent.parent
		if z.parent == gp.child[left].Load() {
			uncle := gp.child[right].Load()
			if uncle.color == red {
				z.parent.color = black
				uncle.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.child[right].Load() {
				z = t.rotate(z.parent, left)
			}
			z.parent.color = black
			z.parent.parent.color = red
			t.rotate(z.parent.parent, right)
		} else {
			uncle := gp.child[left].Load()
			if uncle.color == red {
				z.parent.color = black
				uncle.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.child[left].Load() {
				z = t.rotate(z.parent, right)
			}
			z.parent.color = black
			z.parent.parent.color = red
			t.rotate(z.parent.parent, left)
		}
	}
	t.root.Load().color = black
}

// rotate performs a relativistic rotation at pivot x in the given
// direction (left: x's right child rises; right: mirrored). The pivot is
// not moved in place — a copy x' is created beneath the rising node and
// the whole rotation becomes visible to readers with the final
// child-pointer store. It returns x', which takes x's role for the
// caller; the unlinked original keeps valid child pointers so readers
// already inside it stay on track.
func (t *Tree[K, V]) rotate(x *node[K, V], dir int) *node[K, V] {
	up := 1 - dir // the side the rising child is on
	y := x.child[up].Load()
	mid := y.child[dir].Load() // subtree that changes sides

	xc := &node[K, V]{key: x.key, value: x.value, color: x.color, parent: y}
	xc.child[dir].Store(x.child[dir].Load())
	xc.child[up].Store(mid)
	if c := x.child[dir].Load(); c != t.nilN {
		c.parent = xc
	}
	if mid != t.nilN {
		mid.parent = xc
	}

	y.child[dir].Store(xc) // readers entering y now route through the copy

	p := x.parent
	y.parent = p
	if p == t.nilN {
		t.root.Store(y) // publication: the rotation is now visible
	} else if p.child[left].Load() == x {
		p.child[left].Store(y)
	} else {
		p.child[right].Store(y)
	}
	return xc
}

// Delete removes key; it returns false if key is absent.
func (h *Handle[K, V]) Delete(key K) bool {
	t := h.t
	t.mu.Lock()
	defer t.mu.Unlock()

	z := t.root.Load()
	for z != t.nilN && z.key != key {
		if cmp.Less(key, z.key) {
			z = z.child[left].Load()
		} else {
			z = z.child[right].Load()
		}
	}
	if z == t.nilN {
		return false
	}

	var x, xp *node[K, V]
	origColor := z.color
	switch {
	case z.child[left].Load() == t.nilN:
		x, xp = z.child[right].Load(), z.parent
		t.transplant(z, x)
	case z.child[right].Load() == t.nilN:
		x, xp = z.child[left].Load(), z.parent
		t.transplant(z, x)
	default:
		// Two children: replace z by its successor y.
		y := z.child[right].Load()
		for y.child[left].Load() != t.nilN {
			y = y.child[left].Load()
		}
		origColor = y.color
		x = y.child[right].Load()
		if y == z.child[right].Load() {
			// The successor is z's right child: it rises in place. Give
			// it z's left subtree *before* unlinking z; a reader at y
			// can only be searching keys ≥ y.key (it came through z
			// going right), so it never follows the new left link.
			y.child[left].Store(z.child[left].Load())
			z.child[left].Load().parent = y
			y.color = z.color
			t.transplant(z, y)
			xp = y
		} else {
			// Deep successor: publish a copy of y at z's position, wait
			// out pre-existing readers, then splice the original y.
			yc := &node[K, V]{key: y.key, value: y.value, color: z.color}
			zl, zr := z.child[left].Load(), z.child[right].Load()
			yc.child[left].Store(zl)
			yc.child[right].Store(zr)
			zl.parent = yc
			// zr is y's subtree root; its parent is rewritten below only
			// if it is y itself — but y != zr here, so:
			zr.parent = yc

			// y is about to be spliced; record its live parent first. If
			// y's parent is z (impossible here: y is deeper) we'd need
			// yc, so assert the invariant by construction.
			t.transplant(z, yc)

			t.flavor.Synchronize() // readers bound for old y finish

			// y is a left child with no left child: splice it out.
			yp := y.parent
			yr := y.child[right].Load()
			yp.child[left].Store(yr)
			if yr != t.nilN {
				yr.parent = yp
			}
			x, xp = yr, yp
		}
	}
	if origColor == black {
		t.deleteFixup(x, xp)
	}
	t.size--
	return true
}

// transplant replaces subtree u by subtree v in u's parent. v may be the
// sentinel; its parent field is writer-only scratch, as in CLRS.
func (t *Tree[K, V]) transplant(u, v *node[K, V]) {
	p := u.parent
	v.parent = p
	switch {
	case p == t.nilN:
		t.root.Store(v)
	case p.child[left].Load() == u:
		p.child[left].Store(v)
	default:
		p.child[right].Store(v)
	}
}

// deleteFixup is CLRS's RB-DELETE-FIXUP adapted to copying rotations: x
// may be the sentinel, whose parent field is scratch, so whenever a
// rotation copies x's parent the fixup continues with the returned copy
// rather than re-reading x.parent (the sentinel's scratch pointer is never
// written inside rotate and could be stale). xp always names x's live
// parent.
func (t *Tree[K, V]) deleteFixup(x, xp *node[K, V]) {
	for x != t.root.Load() && x.color == black {
		if x == xp.child[left].Load() {
			w := xp.child[right].Load()
			if w.color == red {
				w.color = black
				xp.color = red
				xp = t.rotate(xp, left) // copy of xp is x's new parent
				w = xp.child[right].Load()
			}
			if w.child[left].Load().color == black && w.child[right].Load().color == black {
				w.color = red
				x, xp = xp, xp.parent
				continue
			}
			if w.child[right].Load().color == black {
				w.child[left].Load().color = black
				w.color = red
				t.rotate(w, right) // w's copy moves down; xp unchanged
				w = xp.child[right].Load()
			}
			w.color = xp.color
			xp.color = black
			w.child[right].Load().color = black
			t.rotate(xp, left)
			x = t.root.Load()
		} else {
			w := xp.child[left].Load()
			if w.color == red {
				w.color = black
				xp.color = red
				xp = t.rotate(xp, right)
				w = xp.child[left].Load()
			}
			if w.child[right].Load().color == black && w.child[left].Load().color == black {
				w.color = red
				x, xp = xp, xp.parent
				continue
			}
			if w.child[left].Load().color == black {
				w.child[right].Load().color = black
				w.color = red
				t.rotate(w, left)
				w = xp.child[left].Load()
			}
			w.color = xp.color
			xp.color = black
			w.child[left].Load().color = black
			t.rotate(xp, right)
			x = t.root.Load()
		}
	}
	x.color = black
}

// RangeScan calls fn on pairs with lo ≤ key < hi in ascending key order,
// stopping early when fn returns false. Weakly consistent. Because the
// writer's copying rotations can relocate whole subtrees mid-traversal,
// a single stack walk could emit duplicates or misroute; instead each
// step is an independent ceiling search — the exact reader protocol the
// relativistic discipline guarantees correct — in its own short
// read-side critical section, so scans never pin a grace period across
// the whole traversal. Cost: O(log n) per emitted pair.
func (h *Handle[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	bound, strict := &lo, false
	for {
		k, v, ok := h.ceiling(bound, strict)
		if !ok || cmp.Compare(k, hi) >= 0 {
			return
		}
		if !fn(k, v) {
			return
		}
		kk := k
		bound, strict = &kk, true
	}
}

// Scan calls fn on every pair in ascending key order, stopping early
// when fn returns false. Weakly consistent; see RangeScan.
func (h *Handle[K, V]) Scan(fn func(key K, value V) bool) {
	var bound *K
	strict := false
	for {
		k, v, ok := h.ceiling(bound, strict)
		if !ok {
			return
		}
		if !fn(k, v) {
			return
		}
		kk := k
		bound, strict = &kk, true
	}
}

// ceiling returns the pair with the smallest key at (or, when strict,
// strictly above) bound; nil bound means the tree's minimum. One
// wait-free descent inside a read-side critical section, tracking the
// best candidate seen so far.
func (h *Handle[K, V]) ceiling(bound *K, strict bool) (K, V, bool) {
	t := h.t
	h.r.ReadLock()
	defer h.r.ReadUnlock()
	n := t.root.Load()
	var bestK K
	var bestV V
	found := false
	for n != t.nilN {
		c := -1
		if bound != nil {
			c = cmp.Compare(*bound, n.key)
		}
		if c < 0 || (c == 0 && !strict) {
			bestK, bestV, found = n.key, n.value, true
			if c == 0 {
				break // exact ceiling; nothing smaller qualifies
			}
			n = n.child[left].Load()
		} else {
			n = n.child[right].Load()
		}
	}
	return bestK, bestV, found
}

// Len reports the number of keys. Quiescent use only.
func (t *Tree[K, V]) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Keys returns all keys in ascending order; a full-range scan.
// Quiescent use only.
func (t *Tree[K, V]) Keys() []K {
	var ks []K
	t.Range(func(k K, _ V) bool { ks = append(ks, k); return true })
	return ks
}

// Range calls fn on every pair in ascending key order until fn returns
// false. Quiescent use only; runs the scan engine through a temporary
// handle so quiescent and live reads share one traversal path.
func (t *Tree[K, V]) Range(fn func(key K, value V) bool) {
	h := t.NewHandle()
	defer h.Close()
	h.Scan(fn)
}

// CheckInvariants verifies, for a quiescent tree, the BST order and all
// red-black properties: the root and sentinel are black, no red node has a
// red child, and every root-to-leaf path has the same black height.
func (t *Tree[K, V]) CheckInvariants() error {
	if t.nilN.color != black {
		return fmt.Errorf("sentinel is not black")
	}
	root := t.root.Load()
	if root != t.nilN && root.color != black {
		return fmt.Errorf("root is not black")
	}
	var prev *K
	count := 0
	var check func(n *node[K, V]) (int, error)
	check = func(n *node[K, V]) (int, error) {
		if n == t.nilN {
			return 1, nil
		}
		if n.color == red {
			if n.child[left].Load().color == red || n.child[right].Load().color == red {
				return 0, fmt.Errorf("red node %v has a red child", n.key)
			}
		}
		lh, err := check(n.child[left].Load())
		if err != nil {
			return 0, err
		}
		if prev != nil && cmp.Compare(n.key, *prev) <= 0 {
			return 0, fmt.Errorf("BST order violated: %v after %v", n.key, *prev)
		}
		k := n.key
		prev = &k
		count++
		rh, err := check(n.child[right].Load())
		if err != nil {
			return 0, err
		}
		if lh != rh {
			return 0, fmt.Errorf("black height mismatch at %v: %d vs %d", n.key, lh, rh)
		}
		bh := lh
		if n.color == black {
			bh++
		}
		return bh, nil
	}
	if _, err := check(root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size counter %d, counted %d nodes", t.size, count)
	}
	return nil
}
