package rbtree

import (
	"runtime"
	"testing"
	"time"

	"github.com/go-citrus/citrus/rcu"
)

// TestDeepSuccessorSwapWaitsForReaders is the red-black analog of the
// Citrus Figure-4 test: a reader suspended between the root and a deep
// successor's old position must keep the delete blocked in its grace
// period and still find the successor where it used to be; only after
// the reader leaves may the delete splice the original out.
func TestDeepSuccessorSwapWaitsForReaders(t *testing.T) {
	dom := rcu.NewDomain()
	tr := NewWithFlavor[int, int](dom)
	w := tr.NewHandle()
	defer w.Close()
	// Build a shape where delete(10) has a deep successor: 10's right
	// subtree {20, 15, 25} → successor 15 is not 10's right child.
	for _, k := range []int{10, 5, 20, 15, 25, 12} {
		w.Insert(k, k)
	}
	// Find the victim and its successor's parent in the current shape.
	z := tr.root.Load()
	for z != tr.nilN && z.key != 10 {
		if 10 < z.key {
			z = z.child[left].Load()
		} else {
			z = z.child[right].Load()
		}
	}
	if z == tr.nilN {
		t.Fatal("victim not found")
	}
	zr := z.child[right].Load()
	if zr == tr.nilN || zr.child[left].Load() == tr.nilN {
		t.Skip("rebalancing produced a shallow successor; shape-dependent test not applicable")
	}
	succ := zr
	for succ.child[left].Load() != tr.nilN {
		succ = succ.child[left].Load()
	}
	succParent := succ.parent

	// Reader pauses holding a read-side critical section, conceptually
	// mid-search toward the successor's old position.
	reader := dom.Register()
	defer reader.Unregister()
	reader.ReadLock()

	delDone := make(chan struct{})
	go func() {
		defer close(delDone)
		h := tr.NewHandle()
		defer h.Close()
		if !h.Delete(10) {
			t.Error("Delete(10) = false")
		}
	}()

	// Wait for the copy to be published at the victim's position.
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := tr.root.Load()
		for n != tr.nilN && n.key != succ.key {
			if succ.key < n.key {
				n = n.child[left].Load()
			} else {
				n = n.child[right].Load()
			}
		}
		if n != tr.nilN && n != succ {
			break // a *copy* of the successor is reachable
		}
		if time.Now().After(deadline) {
			t.Fatal("successor copy never published")
		}
		runtime.Gosched()
	}

	// The delete must now be parked in synchronize_rcu: the original
	// successor must still hang off its old parent for our reader.
	select {
	case <-delDone:
		t.Fatal("delete completed while a pre-existing reader was active")
	case <-time.After(20 * time.Millisecond):
	}
	if succParent.child[left].Load() != succ {
		t.Fatal("old successor unlinked before the grace period elapsed")
	}

	reader.ReadUnlock()
	<-delDone
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The key survives (via the copy), the victim is gone.
	h := tr.NewHandle()
	defer h.Close()
	if _, ok := h.Contains(10); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := h.Contains(succ.key); !ok || v != succ.key {
		t.Fatalf("successor key lost: (%d, %v)", v, ok)
	}
}

// TestRotationLeavesPortal white-boxes the copying rotation: after a
// rotation, the unlinked original must still route searches correctly
// (it is a "portal" for readers that were standing on it).
func TestRotationLeavesPortal(t *testing.T) {
	tr := New[int, int]()
	h := tr.NewHandle()
	defer h.Close()
	h.Insert(10, 10)
	oldRoot := tr.root.Load() // node 10, soon to be rotated down by a copy
	h.Insert(20, 20)
	h.Insert(30, 30) // forces a left rotation at 10

	if tr.root.Load() == oldRoot {
		t.Fatal("expected the root to change through rotation")
	}
	// The original node 10 was copied; the stale original must still
	// lead to every key a reader standing on it could be seeking.
	for _, k := range []int{10, 20, 30} {
		n := oldRoot
		for n != tr.nilN && n.key != k {
			if k < n.key {
				n = n.child[left].Load()
			} else {
				n = n.child[right].Load()
			}
		}
		if n == tr.nilN {
			t.Fatalf("search for %d starting at the unlinked original dead-ends", k)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
