package core

import "sync/atomic"

// Mutants — deliberately broken algorithm variants for torture negative
// controls, in the spirit of rcu.NoSync: a verification harness is only
// credible if disabling the mechanism under test makes the harness
// fail. Production code must never set a mutant; the switch exists so
// cmd/citrustorture can prove, in CI, that its oracles bite.

// Mutant selects an algorithm mutation.
type Mutant uint32

const (
	// MutantNone is the correct algorithm.
	MutantNone Mutant = iota

	// MutantIgnoreTags disables the paper's line-38 tag validation: an
	// update that found a nil child link validates successfully even if
	// the link was recycled since the tag was read. With node recycling
	// enabled this recreates the Figure 5 ABA — a stale insert can link
	// its node under a recycled parent now living elsewhere in the
	// tree, corrupting BST order.
	MutantIgnoreTags
)

// activeMutant is read by validate on its nil-link path (one atomic
// load under the already-held parent lock — off the wait-free read
// path entirely).
var activeMutant atomic.Uint32

// SetMutant installs a mutant process-wide. Torture harnesses must
// restore MutantNone when done.
func SetMutant(m Mutant) { activeMutant.Store(uint32(m)) }

// CurrentMutant reports the installed mutant.
func CurrentMutant() Mutant { return Mutant(activeMutant.Load()) }
