package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/go-citrus/citrus/citrustrace"
	"github.com/go-citrus/citrus/internal/schedpoint"
	"github.com/go-citrus/citrus/rcu"
)

// Event tracing.
//
// The tree holds one atomic recorder pointer; every operation loads it
// once, so with tracing disabled the hot paths pay a single predictable
// branch and allocate nothing (there is a test pinning both). With
// tracing enabled, each handle records into its own ring — single
// writer, like the op counters — labelled with the handle's RCU reader
// id so that grace-period waits in the domain's ring (EvReaderWait,
// keyed by the same id) are attributable to the handle whose read-side
// critical sections they waited on.

// SetTracer attaches rec as the tree's flight recorder; nil detaches.
// Safe to toggle at any time, concurrently with operations and with
// trace dumps: operations already in flight finish recording into the
// recorder they started with.
func (t *Tree[K, V]) SetTracer(rec *citrustrace.Recorder) { t.tracer.Store(rec) }

// Tracer reports the currently attached flight recorder, nil when
// tracing is disabled.
func (t *Tree[K, V]) Tracer() *citrustrace.Recorder { return t.tracer.Load() }

// Flavor reports the tree's RCU flavor (shared by all of its handles).
func (t *Tree[K, V]) Flavor() rcu.Flavor { return t.flavor }

// opTrace is the per-operation trace context. A nil *opTrace means
// tracing is disabled; all its methods are nil-safe so call sites stay
// unconditional. The struct itself lives inside the Handle (one op at a
// time per handle, by contract), so tracing allocates nothing per op.
type opTrace struct {
	ring    *citrustrace.Ring
	start   time.Time
	retries uint64
}

// traceStart begins tracing one operation, returning nil when tracing
// is disabled. On a handle's first traced operation under a given
// recorder it registers the handle's ring.
func (h *Handle[K, V]) traceStart() *opTrace {
	rec := h.t.tracer.Load()
	if rec == nil {
		return nil
	}
	if h.ringRec != rec {
		label := "handle"
		if ider, ok := h.r.(interface{ ID() uint64 }); ok {
			label = fmt.Sprintf("reader-%d", ider.ID())
		}
		h.ring = rec.NewRing(label)
		h.ringRec = rec
	}
	h.tc = opTrace{ring: h.ring, start: time.Now()}
	return &h.tc
}

// lock acquires mu, recording an EvLockWait span if the lock was
// contended. With tc nil it is a plain Lock.
func (tc *opTrace) lock(mu *sync.Mutex, site uint64) {
	if tc == nil {
		mu.Lock()
		return
	}
	if mu.TryLock() {
		return
	}
	w0 := time.Now()
	mu.Lock()
	tc.ring.Record(citrustrace.EvLockWait, w0, time.Since(w0), site, 0, 0)
}

// validateFail records a post-lock validation failure (the operation
// will retry).
func (tc *opTrace) validateFail(site uint64) {
	if tc == nil {
		return
	}
	tc.retries++
	tc.ring.Record(citrustrace.EvValidateFail, time.Now(), 0, site, 0, 0)
}

// syncWait records the span this operation spent inside
// flavor.Synchronize (the paper's line 74). The caller captures w0 just
// before the call, gated on tc != nil.
func (tc *opTrace) syncWait(w0 time.Time) {
	if tc == nil {
		return
	}
	tc.ring.Record(citrustrace.EvSyncWait, w0, time.Since(w0), 0, 0, 0)
}

// retired records that the operation handed n nodes to deferred
// reclamation.
func (tc *opTrace) retired(n uint64) {
	if tc == nil {
		return
	}
	tc.ring.Record(citrustrace.EvRetire, time.Now(), 0, n, 0, 0)
}

// end closes the operation span. outcome is the event's A argument;
// accumulated validation retries ride along as B.
func (tc *opTrace) end(t citrustrace.EventType, outcome uint64) {
	if tc == nil {
		return
	}
	tc.ring.Record(t, tc.start, time.Since(tc.start), outcome, tc.retries, 0)
}

// containsTraced is Contains with operation-span recording; kept off
// the untraced path so the wait-free lookup keeps its exact shape when
// tracing is disabled. The search mirrors Contains line for line
// (including reading the value inside the read-side critical section).
func (h *Handle[K, V]) containsTraced(key K) (V, bool) {
	tc := h.traceStart()
	r := h.reader()
	h.ops.contains.inc()
	r.ReadLock()
	prev := h.t.root
	curr := prev.child[right].Load()
	c := curr.compareKey(key)
	dir := right
	for curr != nil && c != 0 {
		schedpoint.Hit(schedpoint.CoreReadCS) // torture: suspend mid-descent
		prev = curr
		if c < 0 {
			dir = left
		} else {
			dir = right
		}
		curr = prev.child[dir].Load()
		if curr != nil {
			c = curr.compareKey(key)
		}
	}
	var v V
	found := curr != nil
	if found {
		v = curr.value // inside the critical section, as in Contains
	}
	r.ReadUnlock()
	var outcome uint64
	if found {
		outcome = 1
	}
	tc.end(citrustrace.EvContains, outcome)
	return v, found
}
