package core

import (
	"math/rand"
	"testing"

	"github.com/go-citrus/citrus/rcu"
)

func newIntTree(t testing.TB) (*Tree[int, int], *Handle[int, int]) {
	t.Helper()
	tr := NewTree[int, int](rcu.NewDomain())
	h := tr.NewHandle()
	t.Cleanup(h.Close)
	return tr, h
}

func TestEmptyTree(t *testing.T) {
	tr, h := newIntTree(t)
	if _, ok := h.Contains(42); ok {
		t.Fatal("Contains(42) on empty tree = true")
	}
	if h.Delete(42) {
		t.Fatal("Delete(42) on empty tree = true")
	}
	if got := tr.Len(); got != 0 {
		t.Fatalf("Len() = %d, want 0", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertContainsDelete(t *testing.T) {
	tr, h := newIntTree(t)
	if !h.Insert(10, 100) {
		t.Fatal("Insert(10) = false on empty tree")
	}
	if h.Insert(10, 999) {
		t.Fatal("duplicate Insert(10) = true")
	}
	if v, ok := h.Contains(10); !ok || v != 100 {
		t.Fatalf("Contains(10) = (%d, %v), want (100, true)", v, ok)
	}
	if _, ok := h.Contains(11); ok {
		t.Fatal("Contains(11) = true, key never inserted")
	}
	if !h.Delete(10) {
		t.Fatal("Delete(10) = false")
	}
	if h.Delete(10) {
		t.Fatal("second Delete(10) = true")
	}
	if _, ok := h.Contains(10); ok {
		t.Fatal("Contains(10) = true after delete")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteShapes exercises every structural case of delete: leaf, single
// left child, single right child, two children with the successor being the
// right child, and two children with a deep successor.
func TestDeleteShapes(t *testing.T) {
	cases := []struct {
		name   string
		keys   []int // insertion order shapes the unbalanced tree
		del    int
		remain []int
	}{
		{"leaf", []int{50, 30, 70}, 30, []int{50, 70}},
		{"single left child", []int{50, 30, 20}, 30, []int{20, 50}},
		{"single right child", []int{50, 30, 40}, 30, []int{40, 50}},
		{"two children, successor is right child", []int{50, 30, 70, 60, 80}, 50, []int{30, 60, 70, 80}},
		{"two children, deep successor", []int{50, 30, 80, 60, 70, 55}, 50, []int{30, 55, 60, 70, 80}},
		{"deep successor with right subtree", []int{50, 30, 80, 60, 55, 57}, 50, []int{30, 55, 57, 60, 80}},
		{"root of all", []int{50}, 50, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, h := newIntTree(t)
			for _, k := range tc.keys {
				if !h.Insert(k, k*10) {
					t.Fatalf("Insert(%d) = false", k)
				}
			}
			if !h.Delete(tc.del) {
				t.Fatalf("Delete(%d) = false", tc.del)
			}
			got := tr.Keys()
			if len(got) != len(tc.remain) {
				t.Fatalf("Keys() = %v, want %v", got, tc.remain)
			}
			for i, k := range tc.remain {
				if got[i] != k {
					t.Fatalf("Keys() = %v, want %v", got, tc.remain)
				}
			}
			// Values must have moved with their keys (the successor copy
			// carries the value).
			for _, k := range tc.remain {
				if v, ok := h.Contains(k); !ok || v != k*10 {
					t.Fatalf("Contains(%d) = (%d, %v), want (%d, true)", k, v, ok, k*10)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSequentialRandomOpsAgainstOracle(t *testing.T) {
	tr, h := newIntTree(t)
	oracle := map[int]int{}
	rng := rand.New(rand.NewSource(1))
	const keyRange = 200
	for i := 0; i < 20000; i++ {
		k := rng.Intn(keyRange)
		switch rng.Intn(3) {
		case 0:
			wantOK := func() bool { _, ok := oracle[k]; return !ok }()
			if got := h.Insert(k, i); got != wantOK {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, k, got, wantOK)
			}
			if wantOK {
				oracle[k] = i
			}
		case 1:
			_, wantOK := oracle[k]
			if got := h.Delete(k); got != wantOK {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, wantOK)
			}
			delete(oracle, k)
		case 2:
			wantV, wantOK := oracle[k]
			gotV, gotOK := h.Contains(k)
			if gotOK != wantOK || (wantOK && gotV != wantV) {
				t.Fatalf("op %d: Contains(%d) = (%d, %v), want (%d, %v)", i, k, gotV, gotOK, wantV, wantOK)
			}
		}
	}
	if got, want := tr.Len(), len(oracle); got != want {
		t.Fatalf("Len() = %d, oracle has %d", got, want)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGenericKeyTypes(t *testing.T) {
	tr := NewTree[string, []byte](rcu.NewDomain())
	h := tr.NewHandle()
	defer h.Close()
	words := []string{"pear", "apple", "quince", "citrus", "banana", "fig"}
	for _, w := range words {
		if !h.Insert(w, []byte(w)) {
			t.Fatalf("Insert(%q) = false", w)
		}
	}
	if v, ok := h.Contains("citrus"); !ok || string(v) != "citrus" {
		t.Fatalf("Contains(citrus) = (%q, %v)", v, ok)
	}
	if !h.Delete("apple") {
		t.Fatal("Delete(apple) = false")
	}
	want := []string{"banana", "citrus", "fig", "pear", "quince"}
	got := tr.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTagIncrementOnNilLink(t *testing.T) {
	tr, h := newIntTree(t)
	h.Insert(50, 0)
	h.Insert(30, 0)
	n50 := tr.root.child[right].Load().child[left].Load()
	if n50.key != 50 {
		t.Fatalf("unexpected layout: root-left key %d", n50.key)
	}
	before := n50.tag[left].Load()
	h.Delete(30) // leaf delete sets n50.child[left] to nil
	if after := n50.tag[left].Load(); after != before+1 {
		t.Fatalf("tag[left] = %d after child removed, want %d", after, before+1)
	}
	h.Insert(20, 0) // relinks the nil slot; tag must not move
	if after := n50.tag[left].Load(); after != before+1 {
		t.Fatalf("tag[left] = %d after reinsert, want %d", after, before+1)
	}
}

func TestSuccessorCopyPreservesValue(t *testing.T) {
	// Deleting a two-child node replaces it with a *copy* of the successor
	// (paper line 70); the copy must carry the successor's value, and the
	// old successor node must be unreachable afterwards.
	tr, h := newIntTree(t)
	for _, k := range []int{50, 25, 75, 60, 90, 55} {
		h.Insert(k, k+1000)
	}
	if !h.Delete(50) {
		t.Fatal("Delete(50) = false")
	}
	if v, ok := h.Contains(55); !ok || v != 1055 {
		t.Fatalf("Contains(55) = (%d, %v), want (1055, true)", v, ok)
	}
	if got, want := tr.Len(), 5; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAscendingDescending(t *testing.T) {
	for _, tc := range []struct {
		name string
		keys func(i int) int
	}{
		{"ascending", func(i int) int { return i }},
		{"descending", func(i int) int { return 1000 - i }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, h := newIntTree(t)
			const n = 500
			for i := 0; i < n; i++ {
				if !h.Insert(tc.keys(i), i) {
					t.Fatalf("Insert(%d) = false", tc.keys(i))
				}
			}
			if got := tr.Len(); got != n {
				t.Fatalf("Len() = %d, want %d", got, n)
			}
			// An unbalanced internal BST degenerates to a list here.
			if got := tr.Height(); got != n {
				t.Fatalf("Height() = %d, want %d (unbalanced tree)", got, n)
			}
			for i := 0; i < n; i++ {
				if !h.Delete(tc.keys(i)) {
					t.Fatalf("Delete(%d) = false", tc.keys(i))
				}
			}
			if got := tr.Len(); got != 0 {
				t.Fatalf("Len() = %d after deleting all, want 0", got)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
