package core

import (
	"cmp"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/citrustrace"
	"github.com/go-citrus/citrus/internal/schedpoint"
	"github.com/go-citrus/citrus/rcu"
)

// Node recycling — the "efficient memory reclamation" integration named
// as future work in §7 of the paper, built on rcu.Reclaimer (call_rcu).
//
// Without recycling, unlinked nodes are simply dropped for the garbage
// collector. With recycling, delete retires them into a pool and insert
// reuses them, eliminating the allocation per insert on churn-heavy
// workloads. Reuse of type-stable memory is where RCU structures
// traditionally go wrong, so the rules here are deliberate:
//
//  1. A retired node enters the pool only after a grace period
//     (Reclaimer.Defer), so no reader inside a read-side critical
//     section can still be traversing it when it is reinitialized.
//
//  2. Grace periods do not cover *updaters* holding stale references
//     from before the node was unlinked: an insert may still lock the
//     recycled node and run validate against it. Pointer-identity checks
//     (prev.child[dir] == curr) fail naturally — the recycled node's
//     slots hold different pointers — but the nil-slot check would pass,
//     so recycling bumps BOTH tag counters, making any stale
//     (tag, nil-slot) validation fail. Tags are never reset: they count
//     monotonically across a node's lives.
//
//  3. Resetting the marked flag is done under the node's own mutex,
//     because exactly those stale validators read it under that mutex.
type nodePool[K cmp.Ordered, V any] struct {
	rec  *rcu.Reclaimer
	pool sync.Pool

	// Instrumentation (tests and the ablation benches).
	retired atomic.Int64
	reused  atomic.Int64
}

// NewTreeWithRecycling returns an empty tree that recycles unlinked
// nodes through rec: delete hands retired nodes to the reclaimer, which
// returns them to an allocation pool after a grace period, and insert
// draws from that pool. The caller owns rec's lifecycle; closing it
// stops recycling gracefully (retired nodes are still drained, later
// inserts fall back to allocation).
func NewTreeWithRecycling[K cmp.Ordered, V any](flavor rcu.Flavor, rec *rcu.Reclaimer) *Tree[K, V] {
	t := NewTree[K, V](flavor)
	t.recycle = &nodePool[K, V]{rec: rec}
	return t
}

// retire hands an unlinked node to the reclaimer (no-op without
// recycling or torture mode). Callers guarantee n is unreachable from
// the root; readers may still be crossing it, which is exactly what the
// deferred grace period covers — and exactly what torture mode's oracle
// check and poisoning verify at the moment the grace period ends.
func (t *Tree[K, V]) retire(n *node[K, V]) {
	p, tor := t.recycle, t.torture
	if p == nil && tor == nil {
		return
	}
	var rec *rcu.Reclaimer
	if p != nil {
		p.retired.Add(1)
		rec = p.rec
	} else {
		rec = tor.rec
	}
	var stamp uint64
	if tor != nil && tor.oracle != nil {
		stamp = tor.oracle.RetireStamp()
	}
	deferred := rec.TryDefer(func() {
		// The grace period has elapsed; this runs on the reclaimer
		// goroutine.
		schedpoint.Hit(schedpoint.CoreBeforeReclaim)
		if tor != nil {
			if tor.oracle != nil {
				if err := tor.oracle.CheckReclaim(stamp); err != nil {
					tor.fail(err)
				}
			}
			if tor.poison {
				t.poisonNode(n)
				return // poisoned nodes are never pooled
			}
		}
		if p != nil {
			p.put(n)
			if rec := t.tracer.Load(); rec != nil {
				rec.SharedRing("reclaim").Record(citrustrace.EvReclaim, time.Now(), 0, 1, 0, 0)
			}
		}
	})
	if !deferred {
		// The reclaimer is closed (a delete racing shutdown) or its hard
		// cap shed the callback (queue flooded behind a stalled reader).
		// Drop the node to the garbage collector: it is unreachable from
		// the root, was never pooled, and the GC frees it only once
		// readers quit — so correctness needs nothing further, only the
		// recycling economy is lost. Oracle accounting is skipped for the
		// same reason poisoning is: the node never re-enters circulation.
		return
	}
}

// put reinitializes a node whose grace period has elapsed and pools it.
func (p *nodePool[K, V]) put(n *node[K, V]) {
	n.mu.Lock()
	n.marked = false // stale validators read this under n.mu (rule 3)
	n.mu.Unlock()
	n.child[left].Store(nil)
	n.child[right].Store(nil)
	var zero V
	n.value = zero // don't pin the old value while pooled
	// Bump, never reset, the tags (rule 2): a validator holding a
	// pre-retirement tag must fail against the node's next life.
	n.tag[left].Add(1)
	n.tag[right].Add(1)
	p.pool.Put(n)
}

// newNodeReusing returns a pooled node reinitialized for (key, value),
// or a fresh one.
func (t *Tree[K, V]) newNodeReusing(key K, value V) *node[K, V] {
	p := t.recycle
	if p == nil {
		return newNode(key, value)
	}
	pooled := p.pool.Get()
	if pooled == nil {
		return newNode(key, value)
	}
	n, ok := pooled.(*node[K, V])
	if !ok {
		return newNode(key, value)
	}
	p.reused.Add(1)
	// key/value/kind are only ever read by operations that can reach the
	// node through the tree, and the node is unpublished here; stale
	// lockers touch only mu, marked, child and tag (see validate).
	n.key = key
	n.value = value
	return n
}

// RecycleStats reports (nodes retired, nodes reused) since creation; it
// returns zeros for trees without recycling. For tests and benchmarks.
func (t *Tree[K, V]) RecycleStats() (retired, reused int64) {
	if t.recycle == nil {
		return 0, 0
	}
	return t.recycle.retired.Load(), t.recycle.reused.Load()
}
