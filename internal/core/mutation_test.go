package core

import (
	"testing"
	"time"

	"github.com/go-citrus/citrus/rcu"
)

// TestFigure4FalseNegativeWithoutGracePeriod is the mutation twin of
// TestFigure4NoFalseNegative: the identical schedule run over
// rcu.NoSync, where synchronize_rcu (line 74) is a no-op. Now the delete
// races past the suspended search and unlinks the old successor, and the
// search — resuming from its stale position — deterministically returns
// a false negative for a key that was in the set the whole time.
//
// The test proves two things: that line 74 is load-bearing (remove it
// and this observable failure appears), and that the Figure-4 test
// actually exercises the guarantee it claims to (it fails under the
// mutation rather than passing vacuously).
func TestFigure4FalseNegativeWithoutGracePeriod(t *testing.T) {
	dom := rcu.NewDomain()
	tr := NewTree[int, int](rcu.NoSync(dom))
	w := tr.NewHandle()
	defer w.Close()
	for _, k := range []int{50, 30, 80, 60, 55} {
		w.Insert(k, k)
	}
	// Successor of 50 is 55: 50 → right 80 → left 60 → left 55.

	// The reader walks by hand to node 60 inside a (real) read-side
	// critical section — the NoSync wrapper keeps readers intact and only
	// neuters waiting.
	reader := dom.Register()
	defer reader.Unregister()
	reader.ReadLock()
	n := tr.root.child[right].Load() // +∞ sentinel
	n = n.child[left].Load()         // 50
	n = n.child[right].Load()        // 80
	n = n.child[left].Load()         // 60
	if n.key != 60 {
		t.Fatalf("layout: expected 60, got %d", n.key)
	}
	stale := n

	// The delete does NOT block: with Synchronize neutered it publishes
	// the copy and immediately unlinks the old successor, while our
	// reader is still mid-search.
	delDone := make(chan struct{})
	go func() {
		defer close(delDone)
		h := tr.NewHandle()
		defer h.Close()
		if !h.Delete(50) {
			t.Error("Delete(50) = false")
		}
	}()
	select {
	case <-delDone:
	case <-time.After(5 * time.Second):
		t.Fatal("delete blocked even though grace periods are disabled")
	}

	// The suspended reader resumes: key 55 is logically in the set
	// (Contains through the root finds the copy), but the reader's next
	// step hits the hole where the successor used to be.
	got := stale.child[left].Load()
	reader.ReadUnlock()
	if got != nil {
		t.Fatalf("old successor still linked (%v); the mutation did not take effect", got.key)
	}
	// For contrast: a fresh search does find 55 via the published copy.
	h := tr.NewHandle()
	defer h.Close()
	if _, ok := h.Contains(55); !ok {
		t.Fatal("key 55 vanished entirely; expected only the stale reader to miss it")
	}
	// `got == nil` IS the false negative: a get suspended at `stale`
	// would have concluded 55 ∉ set. With real grace periods (see
	// TestFigure4NoFalseNegative) this cannot happen.
}
