package core

import (
	"sync"
	"testing"
	"time"

	"github.com/go-citrus/citrus/citrustrace"
	"github.com/go-citrus/citrus/rcu"
)

// TestDisabledTracingAllocatesNothing pins the satellite guarantee:
// with no recorder attached, the hot paths allocate zero bytes per
// operation (Contains both ways, insert-of-existing, delete-miss — the
// paths that allocate nothing by design; a successful insert allocates
// its node regardless of tracing).
func TestDisabledTracingAllocatesNothing(t *testing.T) {
	tr := NewTree[int, int](rcu.NewDomain())
	h := tr.NewHandle()
	defer h.Close()
	h.Insert(1, 10)

	for _, tc := range []struct {
		name string
		op   func()
	}{
		{"Contains hit", func() { h.Contains(1) }},
		{"Contains miss", func() { h.Contains(2) }},
		{"Insert existing", func() { h.Insert(1, 10) }},
		{"Delete miss", func() { h.Delete(2) }},
	} {
		if avg := testing.AllocsPerRun(500, tc.op); avg != 0 {
			t.Errorf("%s: %.2f allocs/op with tracing disabled, want 0", tc.name, avg)
		}
	}
}

// TestTracedOpsAllocateNothingSteadyState: after a handle's ring
// exists, traced operations reuse the handle-resident trace context, so
// even the *enabled* path adds no per-op allocation on the same paths.
func TestTracedOpsAllocateNothingSteadyState(t *testing.T) {
	tr := NewTree[int, int](rcu.NewDomain())
	rec := citrustrace.New()
	tr.SetTracer(rec)
	h := tr.NewHandle()
	defer h.Close()
	h.Insert(1, 10)
	h.Contains(1) // creates the ring
	if avg := testing.AllocsPerRun(500, func() { h.Contains(1) }); avg != 0 {
		t.Errorf("traced Contains allocates %.2f objects/op in steady state, want 0", avg)
	}
}

func TestTraceEventsMirrorOperations(t *testing.T) {
	dom := rcu.NewDomain()
	tr := NewTree[int, int](dom)
	rec := citrustrace.New()
	dom.SetTracer(rec.SyncTracer("rcu"))
	tr.SetTracer(rec)
	h := tr.NewHandle()
	defer h.Close()

	// Build 1..7 then delete an inner node (5 has two children after
	// inserting 4,5,6 under the right shape) to force a two-child path.
	for _, k := range []int{4, 2, 6, 1, 3, 5, 7} {
		if !h.Insert(k, k*10) {
			t.Fatalf("insert %d failed", k)
		}
	}
	h.Insert(4, 0)    // existing
	h.Contains(3)     // hit
	h.Contains(99)    // miss
	h.Delete(99)      // miss
	if !h.Delete(4) { // root of the subtree: two children → grace period
		t.Fatal("delete 4 failed")
	}
	if !h.Delete(1) { // leaf: single-child path
		t.Fatal("delete 1 failed")
	}

	counts := map[citrustrace.EventType]int{}
	outcomes := map[[2]uint64]int{}
	for _, ev := range rec.Snapshot().Events {
		counts[ev.Type]++
		if ev.Type == citrustrace.EvInsert || ev.Type == citrustrace.EvDelete || ev.Type == citrustrace.EvContains {
			outcomes[[2]uint64{uint64(ev.Type), ev.A}]++
		}
	}
	if got := counts[citrustrace.EvInsert]; got != 8 {
		t.Errorf("EvInsert = %d, want 8", got)
	}
	if got := outcomes[[2]uint64{uint64(citrustrace.EvInsert), 0}]; got != 1 {
		t.Errorf("insert-existing events = %d, want 1", got)
	}
	if got := counts[citrustrace.EvContains]; got != 2 {
		t.Errorf("EvContains = %d, want 2", got)
	}
	if got := outcomes[[2]uint64{uint64(citrustrace.EvContains), 1}]; got != 1 {
		t.Errorf("contains-hit events = %d, want 1", got)
	}
	if got := counts[citrustrace.EvDelete]; got != 3 {
		t.Errorf("EvDelete = %d, want 3", got)
	}
	for a, want := range map[uint64]int{0: 1, 1: 1, 2: 1} { // miss, one-child, two-child
		if got := outcomes[[2]uint64{uint64(citrustrace.EvDelete), a}]; got != want {
			t.Errorf("delete outcome %d events = %d, want %d", a, got, want)
		}
	}
	// The two-child delete paid one grace period: updater-side wait span
	// plus domain-side sync span.
	if got := counts[citrustrace.EvSyncWait]; got != 1 {
		t.Errorf("EvSyncWait = %d, want 1", got)
	}
	if got := counts[citrustrace.EvSync]; got != 1 {
		t.Errorf("EvSync = %d, want 1", got)
	}
	// Each successful delete emits one EvRetire instant (A = node count:
	// 1 for the simple path, 2 for successor relocation).
	if got := counts[citrustrace.EvRetire]; got != 2 {
		t.Errorf("EvRetire = %d, want 2", got)
	}
}

func TestReclaimEventsWithRecycling(t *testing.T) {
	dom := rcu.NewDomain()
	rc := rcu.NewReclaimer(dom)
	defer rc.Close()
	tr := NewTreeWithRecycling[int, int](dom, rc)
	rec := citrustrace.New()
	tr.SetTracer(rec)
	h := tr.NewHandle()
	defer h.Close()
	for k := 0; k < 32; k++ {
		h.Insert(k, k)
	}
	for k := 0; k < 32; k++ {
		h.Delete(k)
	}
	rc.Barrier() // drain deferred reclamation
	var reclaims int
	for _, ev := range rec.Snapshot().Events {
		if ev.Type == citrustrace.EvReclaim {
			reclaims++
		}
	}
	retired, _ := tr.RecycleStats()
	if reclaims == 0 {
		t.Fatal("no EvReclaim events after draining the reclaimer")
	}
	if int64(reclaims) != retired {
		t.Errorf("EvReclaim events = %d, want %d (nodes retired)", reclaims, retired)
	}
}

// TestTraceToggleAndDumpUnderChurn is the -race hammer required by the
// issue: DumpTrace (Recorder.Snapshot) and SetTracer toggles run
// against concurrent insert/delete/contains without synchronization
// with the workers.
func TestTraceToggleAndDumpUnderChurn(t *testing.T) {
	dom := rcu.NewDomain()
	tr := NewTree[int, int](dom)
	const (
		workers  = 4
		keyRange = 256
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := uint64(w)*2654435761 + 1
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				k := int(rng>>33) % keyRange
				switch i % 4 {
				case 0:
					h.Insert(k, k)
				case 1:
					h.Delete(k)
				default:
					h.Contains(k)
				}
			}
		}(w)
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	var lastRec *citrustrace.Recorder
	for i := 0; time.Now().Before(deadline); i++ {
		switch i % 3 {
		case 0:
			rec := citrustrace.New(citrustrace.WithRingSize(512))
			dom.SetTracer(rec.SyncTracer("rcu"))
			tr.SetTracer(rec)
			lastRec = rec
		case 1:
			if lastRec != nil {
				lastRec.Snapshot() // DumpTrace equivalent, mid-flight
			}
		case 2:
			tr.SetTracer(nil)
			dom.SetTracer(nil)
		}
	}
	close(stop)
	wg.Wait()
	tr.SetTracer(nil)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("tree invariants violated after traced churn: %v", err)
	}
	if lastRec != nil {
		for _, ev := range lastRec.Snapshot().Events {
			if ev.Type == citrustrace.EvNone {
				t.Fatal("snapshot surfaced an empty slot")
			}
		}
	}
}

// TestHandleRingLabeledByReaderID: the handle's ring is named after its
// RCU reader id, which is what EvReaderWait events carry — the pivot
// that makes grace-period waits attributable to a specific handle.
func TestHandleRingLabeledByReaderID(t *testing.T) {
	dom := rcu.NewDomain()
	tr := NewTree[int, int](dom)
	rec := citrustrace.New()
	tr.SetTracer(rec)
	h := tr.NewHandle()
	defer h.Close()
	h.Contains(1)
	snap := rec.Snapshot()
	if len(snap.Rings) != 1 {
		t.Fatalf("got %d rings, want 1", len(snap.Rings))
	}
	id := h.r.(interface{ ID() uint64 }).ID()
	want := "reader-" + string(rune('0'+id))
	if id > 9 { // keep the assertion simple for single-digit ids
		t.Skip("unexpectedly large reader id")
	}
	if snap.Rings[0].Label != want {
		t.Errorf("ring label %q, want %q", snap.Rings[0].Label, want)
	}
}
