package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/go-citrus/citrus/rcu"
)

func newRecyclingTree(t testing.TB) (*Tree[int, int], *rcu.Reclaimer) {
	t.Helper()
	dom := rcu.NewDomain()
	rec := rcu.NewReclaimer(dom)
	t.Cleanup(rec.Close)
	return NewTreeWithRecycling[int, int](dom, rec), rec
}

func TestRecyclingSequentialOracle(t *testing.T) {
	tr, rec := newRecyclingTree(t)
	h := tr.NewHandle()
	defer h.Close()
	oracle := map[int]int{}
	rng := rand.New(rand.NewSource(13))
	const keyRange = 100
	for i := 0; i < 30000; i++ {
		k := rng.Intn(keyRange)
		switch rng.Intn(3) {
		case 0:
			_, present := oracle[k]
			if got := h.Insert(k, i); got == present {
				t.Fatalf("op %d: Insert(%d) = %v, present=%v", i, k, got, present)
			}
			if !present {
				oracle[k] = i
			}
		case 1:
			_, present := oracle[k]
			if got := h.Delete(k); got != present {
				t.Fatalf("op %d: Delete(%d) = %v, present=%v", i, k, got, present)
			}
			delete(oracle, k)
		default:
			wantV, wantOK := oracle[k]
			gotV, gotOK := h.Contains(k)
			if gotOK != wantOK || (wantOK && gotV != wantV) {
				t.Fatalf("op %d: Contains(%d) = (%d, %v), want (%d, %v)", i, k, gotV, gotOK, wantV, wantOK)
			}
		}
	}
	if got, want := tr.Len(), len(oracle); got != want {
		t.Fatalf("Len() = %d, oracle %d", got, want)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rec.Barrier()
	retired, _ := tr.RecycleStats()
	if retired == 0 {
		t.Fatal("no nodes were retired by a delete-heavy run")
	}
	// Force reuse deterministically: with retirements drained to the pool
	// (Barrier above), churn until an insert draws from it. The loop
	// tolerates sync.Pool's right to drop items under GC pressure.
	for i := 0; i < 1000; i++ {
		if _, reused := tr.RecycleStats(); reused > 0 {
			return
		}
		h.Delete(i % keyRange)
		h.Insert(i%keyRange, i)
		rec.Barrier()
	}
	t.Fatal("no retired nodes were ever reused")
}

// TestRecyclingStaleValidatorDefeated white-boxes rule 2 of the
// recycling design: a validator holding a (node, tag) pair from the
// node's previous life must fail validation after the node is recycled,
// even though the slot it validates is nil in both lives.
func TestRecyclingStaleValidatorDefeated(t *testing.T) {
	tr, rec := newRecyclingTree(t)
	h := tr.NewHandle()
	defer h.Close()

	// Life 1: node 30 as a leaf under 50.
	h.Insert(50, 0)
	h.Insert(30, 0)
	inf := tr.root.child[right].Load()
	n30 := inf.child[left].Load().child[left].Load()
	if n30.key != 30 {
		t.Fatalf("layout: got %d", n30.key)
	}
	staleTag := n30.tag[left].Load() // as an insert's get would capture

	// Unlink 30 and wait for it to reach the pool.
	h.Delete(30)
	rec.Barrier()

	// The stale validation (insert of, say, 20 under the old node 30)
	// must fail now, regardless of what life the node is in.
	n30.mu.Lock()
	ok := validate(n30, staleTag, nil, left)
	n30.mu.Unlock()
	if ok {
		t.Fatal("stale validator passed against a recycled node (tag not bumped?)")
	}
}

// TestRecyclingReusesMemory verifies actual reuse: churn one key's
// subtree and require the reuse counter to approach the retire counter.
func TestRecyclingReusesMemory(t *testing.T) {
	tr, rec := newRecyclingTree(t)
	h := tr.NewHandle()
	defer h.Close()
	for _, k := range []int{50, 25, 75} {
		h.Insert(k, k)
	}
	for i := 0; i < 2000; i++ {
		if !h.Delete(25) || !h.Insert(25, i) {
			t.Fatal("churn failed")
		}
		if i%100 == 0 {
			rec.Barrier() // let retirements complete so the pool refills
		}
	}
	rec.Barrier()
	retired, reused := tr.RecycleStats()
	if retired < 1000 {
		t.Fatalf("retired only %d nodes", retired)
	}
	if reused < retired/4 {
		t.Fatalf("reused %d of %d retired nodes; pool is not working", reused, retired)
	}
}

// TestRecyclingConcurrentChurn is the adversarial case: heavy concurrent
// insert/delete over a small range with recycling on, under -race, while
// readers hammer permanently present keys. The grace-period gating and
// the tag bumps are what keep this correct.
func TestRecyclingConcurrentChurn(t *testing.T) {
	tr, _ := newRecyclingTree(t)
	w := tr.NewHandle()
	const n = 200
	perm := make([]int, 0, n/2)
	for k := 0; k < n; k++ {
		w.Insert(k, k)
		if k%2 == 0 {
			perm = append(perm, k)
		}
	}
	w.Close()

	stop := make(chan struct{})
	var violations atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := perm[rng.Intn(len(perm))]
				if v, ok := h.Contains(k); !ok || v != k {
					violations.Add(1)
				}
			}
		}(int64(i))
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(100 + seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(n/2)*2 + 1
				if rng.Intn(2) == 0 {
					h.Delete(k)
				} else {
					h.Insert(k, k)
				}
			}
		}(int64(i))
	}
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	if v := violations.Load(); v != 0 {
		t.Fatalf("%d false negatives with recycling enabled", v)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range perm {
		h := tr.NewHandle()
		if v, ok := h.Contains(k); !ok || v != k {
			t.Fatalf("permanent key %d corrupted: (%d, %v)", k, v, ok)
		}
		h.Close()
	}
}

// TestRecyclingContainsOnChurnedKeys is the regression test for the one
// paper-vs-recycling interaction that needed code to move: the value
// read of contains must happen inside the read-side critical section,
// because a churned key's node can be retired, grace-period'd, and
// reinitialized for a different insert while a contains that found it is
// still in flight. Under -race, a value read outside the critical
// section shows up here as a data race with newNodeReusing; semantically
// it would return another key's value.
func TestRecyclingContainsOnChurnedKeys(t *testing.T) {
	tr, _ := newRecyclingTree(t)
	w := tr.NewHandle()
	const n = 64
	for k := 0; k < n; k++ {
		w.Insert(k, k*10)
	}
	w.Close()

	stop := make(chan struct{})
	var wrong atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(n)
				if v, ok := h.Contains(k); ok && v != k*10 {
					wrong.Add(1) // another key's value leaked through reuse
				}
			}
		}(int64(i))
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(500 + seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(n)
				if rng.Intn(2) == 0 {
					h.Delete(k)
				} else {
					h.Insert(k, k*10)
				}
			}
		}(int64(i))
	}
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	if v := wrong.Load(); v != 0 {
		t.Fatalf("%d contains calls returned a recycled node's new value", v)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecyclingDeleteRacesClose is the regression test for the
// retire/Close lifecycle panic: a delete that unlinks a node while the
// owner concurrently closes the reclaimer used to hit Defer's
// panic-on-closed. retire now uses TryDefer and drops the node to the
// GC when it loses the race. Run under -race; the tree must stay
// operable (inserts fall back to allocation) and invariant-clean.
func TestRecyclingDeleteRacesClose(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		dom := rcu.NewDomain()
		rec := rcu.NewReclaimer(dom)
		tr := NewTreeWithRecycling[int, int](dom, rec)
		w := tr.NewHandle()
		const n = 256
		for k := 0; k < n; k++ {
			w.Insert(k, k)
		}
		w.Close()

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				h := tr.NewHandle()
				defer h.Close()
				rng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					k := rng.Intn(n)
					if rng.Intn(2) == 0 {
						h.Delete(k)
					} else {
						h.Insert(k, k)
					}
				}
			}(int64(iter*10 + i))
		}
		// Close while deletes are in full flight: before the fix this
		// panicked in retire's rec.Defer.
		time.Sleep(time.Duration(1+iter) * time.Millisecond)
		rec.Close()
		time.Sleep(5 * time.Millisecond)
		close(stop)
		wg.Wait()

		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

// TestRecyclingClosedReclaimerDrains: closing the reclaimer mid-life
// must not lose retirements or wedge the tree.
func TestRecyclingClosedReclaimerDrains(t *testing.T) {
	dom := rcu.NewDomain()
	rec := rcu.NewReclaimer(dom)
	tr := NewTreeWithRecycling[int, int](dom, rec)
	h := tr.NewHandle()
	defer h.Close()
	for k := 0; k < 100; k++ {
		h.Insert(k, k)
	}
	for k := 0; k < 100; k++ {
		h.Delete(k)
	}
	rec.Close() // drains all pending retirements
	retired, _ := tr.RecycleStats()
	if retired == 0 {
		t.Fatal("nothing retired")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
