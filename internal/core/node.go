package core

import (
	"cmp"
	"sync"
	"sync/atomic"
)

// Child directions. The paper writes child[left] and child[right]; we keep
// the same indexing.
const (
	left  = 0
	right = 1
)

// kind distinguishes the two sentinel nodes (§2: dummy keys −1 and ∞,
// generalized here to −∞/+∞ so keys stay generic) from ordinary nodes.
type kind uint8

const (
	kindNormal kind = iota
	kindNegInf      // the root sentinel; every node is in its right subtree
	kindPosInf      // the root's right child; every key is in its left subtree

	// kindPoisoned marks a tree's poison sentinel: in torture mode,
	// reclaimed nodes' child links are swung to it, so any search that
	// reaches memory after its grace period supposedly expired lands on
	// the sentinel and is counted as a reclamation violation
	// (torture.go). Never reachable from the root in a correct
	// execution.
	kindPoisoned
)

// node is a Citrus tree node.
//
// Synchronization per field:
//   - key, value, kind: immutable after creation (Key(v) never changes, §2).
//   - child, tag: written only while holding mu, but read by lock-free
//     searches, hence atomic.
//   - marked: read and written only while holding mu (every validate call
//     runs with the inspected node locked, and every mark is performed by
//     the lock holder).
type node[K cmp.Ordered, V any] struct {
	mu     sync.Mutex
	key    K
	value  V
	kind   kind
	marked bool
	child  [2]atomic.Pointer[node[K, V]]
	tag    [2]atomic.Uint64
}

// newNode returns an unlinked, unmarked leaf holding (key, value).
func newNode[K cmp.Ordered, V any](key K, value V) *node[K, V] {
	return &node[K, V]{key: key, value: value}
}

// compareKey orders the search key against n's key, treating sentinels as
// unequal extremes: +∞ is greater than every key, −∞ smaller. Returns
// <0 if key < n.key, 0 if equal, >0 if key > n.key.
func (n *node[K, V]) compareKey(key K) int {
	switch n.kind {
	case kindPosInf:
		return -1 // key < +∞: searches descend left of the sentinel
	case kindNegInf:
		return +1
	case kindPoisoned:
		// A search inside a read-side critical section walked through a
		// reclaimed node — a Lemma 2 / grace-period violation. Count the
		// trip on the sentinel itself (its tags are otherwise unused)
		// and steer left: the sentinel's children are nil, so the
		// search terminates as a miss.
		n.tag[left].Add(1)
		return -1
	default:
		return cmp.Compare(key, n.key)
	}
}

// incrementTag is the paper's incrementTag (lines 39–41): after a child
// link was rewritten, bump the direction's tag iff the link is now nil, so
// a later insert validating against a stale tag fails (ABA defense).
// Caller must hold n.mu.
func incrementTag[K cmp.Ordered, V any](n *node[K, V], dir int) {
	if n.child[dir].Load() == nil {
		n.tag[dir].Add(1)
	}
}

// validate is the paper's validate (lines 33–38). Caller must hold prev.mu,
// and curr.mu when curr is non-nil. It checks, purely locally, that
//   - prev is still in the tree (unmarked),
//   - prev still links to curr in direction dir,
//   - curr (if any) is still in the tree, and otherwise
//   - the nil link was not recycled since the tag was read (line 38).
func validate[K cmp.Ordered, V any](prev *node[K, V], tag uint64, curr *node[K, V], dir int) bool {
	if prev.marked || prev.child[dir].Load() != curr {
		return false
	}
	if curr != nil { // if curr ≠ ⊥ validate curr's marked bit (line 36)
		return !curr.marked
	}
	if Mutant(activeMutant.Load()) == MutantIgnoreTags {
		return true // MUTANT: line 38's ABA defense disabled (mutant.go)
	}
	return prev.tag[dir].Load() == tag // otherwise validate tag (line 38)
}
