package core

import (
	"cmp"

	"github.com/go-citrus/citrus/internal/schedpoint"
)

// Range scans — in-order traversal inside RCU read-side critical
// sections, the first multi-key read operation on the tree.
//
// A scan is weakly consistent (dict.WeaklyConsistent): it promises that
//
//   - emitted keys ascend strictly and each is emitted at most once;
//   - every emitted pair was present at some instant during the scan;
//   - every key present for the scan's whole duration is emitted.
//
// and nothing more — a scan concurrent with updates is not a snapshot
// of any single instant (the paper's Figure 1 argument: RCU readers
// visiting several nodes can observe concurrent updates in different
// orders).
//
// Why the promises hold inside one critical section:
//
//   - Keys are immutable per node, and an in-order stack walk pops keys
//     in non-decreasing order under the paper's weak BST property; the
//     only transient anomaly is a duplicate, produced when a two-child
//     delete publishes the successor's copy (line 73) before the
//     original successor is unlinked (line 80). The monotone-emission
//     filter drops exactly those.
//   - A key present throughout cannot be missed: the only transition
//     that moves a key to an earlier in-order position is that same
//     successor relocation, and its unlink waits for a grace period
//     (line 74) — which our read lock blocks. Until we unlock, the
//     original successor stays reachable ahead of the cursor.
//   - Single-child deletes unlink a node whose child links stay intact
//     (retire poisons/reuses only after a grace period), so a scan that
//     entered the unlinked node still descends into a valid subtree.
//
// The batched variants drop and re-acquire the read lock every `batch`
// emitted pairs, so a long scan never pins a grace period across the
// whole traversal — the PR5 stall/backpressure story depends on this.
// Each batch re-descends from the root to the cursor (the last emitted
// key, strictly), making a batch boundary equivalent to restarting a
// fresh bounded scan: the same three promises hold across batches, at
// the cost of O(height) re-descent work per batch.

// Scan outcome of one batch (one read-side critical section).
const (
	scanExhausted = iota // range fully visited
	scanStopped          // fn returned false
	scanYielded          // batch budget spent; resume above s.last
)

// scanState carries a scan across batches: the upper bound, the
// monotone-emission cursor, and a reusable traversal stack.
type scanState[K cmp.Ordered, V any] struct {
	h     *Handle[K, V]
	hi    *K // exclusive upper bound; nil = unbounded
	fn    func(K, V) bool
	last  K    // largest emitted key, valid when have
	have  bool // something was emitted
	stack []*node[K, V]
}

// runBatch executes one read-side critical section: descend to the
// first candidate at (or, when strict, strictly above) bound, then emit
// in-order pairs until the range is exhausted, fn stops the scan, or
// the batch budget (0 = unlimited) is spent.
func (s *scanState[K, V]) runBatch(bound *K, strict bool, budget int) int {
	h := s.h
	r := h.reader()
	h.ops.scanSections.inc()
	var emitted, visited int64
	defer func() { h.ops.scanPairs.add(emitted); h.ops.scanNodes.add(visited) }()

	r.ReadLock()
	s.stack = s.stack[:0]
	// Descend to the ceiling of the cursor: prune subtrees entirely
	// below the bound, pushing every node whose key (and left subtree)
	// may still be in range. compareKey handles the sentinels — and, in
	// torture mode, counts the trip if the scan ever lands on reclaimed
	// memory, exactly like a point search.
	curr := h.t.root
	for curr != nil {
		schedpoint.Hit(schedpoint.CoreScanCS)
		visited++
		c := -1
		if bound != nil {
			c = curr.compareKey(*bound)
		} else if curr.kind == kindPoisoned {
			curr.tag[left].Add(1) // the trip compareKey would have counted
		}
		switch {
		case c < 0: // bound < curr.key: curr and its left subtree qualify
			s.stack = append(s.stack, curr)
			curr = curr.child[left].Load()
		case c == 0 && !strict: // curr.key == bound: included (half-open lo)
			s.stack = append(s.stack, curr)
			curr = nil
		default: // curr.key at or below the bound: skip curr and its left subtree
			curr = curr.child[right].Load()
		}
	}

	for len(s.stack) > 0 {
		n := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if n.kind == kindNormal {
			if s.hi != nil && cmp.Compare(n.key, *s.hi) >= 0 {
				// Past the upper bound. Every node still stacked is an
				// ancestor reached by a left turn, so its key — and its
				// whole right subtree — is larger still: the scan is done.
				r.ReadUnlock()
				return scanExhausted
			}
			// Monotone-emission filter: drop the transient duplicates a
			// concurrent two-child delete's successor copy produces.
			if !s.have || cmp.Compare(n.key, s.last) > 0 {
				if !s.fn(n.key, n.value) {
					r.ReadUnlock()
					return scanStopped
				}
				s.last = n.key
				s.have = true
				emitted++
				if budget > 0 && emitted >= int64(budget) {
					r.ReadUnlock()
					return scanYielded
				}
			}
		}
		// In-order successor: the leftmost path of n's right subtree.
		// No bound check needed — everything here is above the cursor.
		curr = n.child[right].Load()
		for curr != nil {
			schedpoint.Hit(schedpoint.CoreScanCS)
			visited++
			if curr.kind == kindPoisoned {
				curr.tag[left].Add(1)
			}
			s.stack = append(s.stack, curr)
			curr = curr.child[left].Load()
		}
	}
	r.ReadUnlock()
	return scanExhausted
}

// RangeScan calls fn on pairs with lo ≤ key < hi in ascending key order
// inside one read-side critical section, stopping early when fn returns
// false. Weakly consistent (see the file comment); fn must not call
// back into the tree through the same handle.
func (h *Handle[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	h.ops.scans.inc()
	s := scanState[K, V]{h: h, hi: &hi, fn: fn}
	s.runBatch(&lo, false, 0)
}

// Scan calls fn on every pair in ascending key order inside one
// read-side critical section, stopping early when fn returns false.
// Weakly consistent.
func (h *Handle[K, V]) Scan(fn func(key K, value V) bool) {
	h.ops.scans.inc()
	s := scanState[K, V]{h: h, fn: fn}
	s.runBatch(nil, false, 0)
}

// RangeScanBatched is RangeScan, but the read lock is dropped and
// re-acquired every batch emitted pairs, so a long scan never pins one
// grace period across the whole traversal. Each batch resumes with a
// fresh descent strictly above the last emitted key. batch ≤ 0 means
// unbatched.
func (h *Handle[K, V]) RangeScanBatched(lo, hi K, batch int, fn func(key K, value V) bool) {
	if batch <= 0 {
		h.RangeScan(lo, hi, fn)
		return
	}
	h.ops.scans.inc()
	s := scanState[K, V]{h: h, hi: &hi, fn: fn}
	bound, strict := lo, false
	for {
		if s.runBatch(&bound, strict, batch) != scanYielded {
			return
		}
		bound, strict = s.last, true
	}
}

// ScanBatched is Scan with the batched read-lock discipline of
// RangeScanBatched. batch ≤ 0 means unbatched.
func (h *Handle[K, V]) ScanBatched(batch int, fn func(key K, value V) bool) {
	if batch <= 0 {
		h.Scan(fn)
		return
	}
	h.ops.scans.inc()
	s := scanState[K, V]{h: h, fn: fn}
	var bound *K
	strict := false
	for {
		if s.runBatch(bound, strict, batch) != scanYielded {
			return
		}
		b := s.last
		bound, strict = &b, true
	}
}
