package core

import (
	"fmt"
	"io"
)

// Debug/tooling output for the tree. Quiescent use only, like the other
// whole-tree observers.

// Dump writes an indented sideways rendering of the tree to w: right
// subtree above, left below, one node per line as "key=value" plus
// markers for sentinels. Intended for debugging sessions and test
// failure output.
func (t *Tree[K, V]) Dump(w io.Writer) {
	var walk func(n *node[K, V], depth int)
	walk = func(n *node[K, V], depth int) {
		if n == nil {
			return
		}
		walk(n.child[right].Load(), depth+1)
		switch n.kind {
		case kindNegInf:
			fmt.Fprintf(w, "%*s-inf (root)\n", depth*4, "")
		case kindPosInf:
			fmt.Fprintf(w, "%*s+inf\n", depth*4, "")
		default:
			fmt.Fprintf(w, "%*s%v=%v\n", depth*4, "", n.key, n.value)
		}
		walk(n.child[left].Load(), depth+1)
	}
	walk(t.root, 0)
}

// WriteDOT writes the tree as a Graphviz digraph: sentinels as boxes,
// regular nodes labeled "key\nvalue", solid edges for children and the
// per-direction tag values on nil slots. Render with `dot -Tsvg`.
func (t *Tree[K, V]) WriteDOT(w io.Writer) {
	fmt.Fprintln(w, "digraph citrus {")
	fmt.Fprintln(w, "  node [fontname=\"monospace\"];")
	id := 0
	var walk func(n *node[K, V]) int
	walk = func(n *node[K, V]) int {
		my := id
		id++
		switch n.kind {
		case kindNegInf:
			fmt.Fprintf(w, "  n%d [shape=box, label=\"-inf\"];\n", my)
		case kindPosInf:
			fmt.Fprintf(w, "  n%d [shape=box, label=\"+inf\"];\n", my)
		default:
			fmt.Fprintf(w, "  n%d [label=\"%v\\n%v\"];\n", my, n.key, n.value)
		}
		for dir, name := range [2]string{"L", "R"} {
			if c := n.child[dir].Load(); c != nil {
				child := walk(c)
				fmt.Fprintf(w, "  n%d -> n%d [label=\"%s\"];\n", my, child, name)
			} else if tag := n.tag[dir].Load(); tag > 0 {
				// Surface non-zero tags on empty slots: they are the ABA
				// evidence a debugger usually wants.
				fmt.Fprintf(w, "  t%d_%d [shape=plaintext, label=\"tag=%d\"];\n", my, dir, tag)
				fmt.Fprintf(w, "  n%d -> t%d_%d [style=dotted, label=\"%s\"];\n", my, my, dir, name)
			}
		}
		return my
	}
	walk(t.root)
	fmt.Fprintln(w, "}")
}
