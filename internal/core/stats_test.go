package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/go-citrus/citrus/rcu"
)

// TestHandleCloseIdempotent is the regression test for the handle
// lifecycle bug: a second Close used to crash inside
// rcu.Handle.Unregister with a raw nil-pointer dereference.
func TestHandleCloseIdempotent(t *testing.T) {
	tr := NewTree[int, int](rcu.NewDomain())
	h := tr.NewHandle()
	h.Insert(1, 1)
	h.Close()
	h.Close() // must be a no-op
	h.Close()
}

// TestHandleUseAfterClosePanicsDescriptively: operations on a closed
// handle used to die with an opaque nil dereference; they must name the
// misuse instead.
func TestHandleUseAfterClosePanicsDescriptively(t *testing.T) {
	tr := NewTree[int, int](rcu.NewDomain())
	ops := map[string]func(h *Handle[int, int]){
		"Contains": func(h *Handle[int, int]) { h.Contains(1) },
		"Insert":   func(h *Handle[int, int]) { h.Insert(1, 1) },
		"Delete":   func(h *Handle[int, int]) { h.Delete(1) },
	}
	for name, op := range ops {
		h := tr.NewHandle()
		h.Close()
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s after Close did not panic", name)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "Handle used after Close") {
					t.Fatalf("%s after Close panicked with %v, want descriptive message", name, r)
				}
			}()
			op(h)
		}()
	}
}

func TestTreeStatsCountsOperations(t *testing.T) {
	tr := NewTree[int, int](rcu.NewDomain())
	h := tr.NewHandle()
	defer h.Close()

	// Build 2 with both children, then delete it: a successor-relocation
	// delete with exactly one inline grace period.
	h.Insert(2, 2)
	h.Insert(1, 1)
	h.Insert(3, 3)
	h.Insert(2, 9) // exists
	h.Contains(1)
	h.Contains(42) // miss still counts as a Contains call
	h.Delete(2)    // two children
	h.Delete(2)    // miss
	h.Delete(1)    // leaf

	s := tr.Stats()
	if s.Inserts != 3 || s.InsertExisting != 1 {
		t.Fatalf("Inserts=%d InsertExisting=%d, want 3/1", s.Inserts, s.InsertExisting)
	}
	if s.Contains != 2 {
		t.Fatalf("Contains=%d, want 2", s.Contains)
	}
	if s.Deletes != 2 || s.DeleteMisses != 1 {
		t.Fatalf("Deletes=%d DeleteMisses=%d, want 2/1", s.Deletes, s.DeleteMisses)
	}
	if s.TwoChildDeletes != 1 {
		t.Fatalf("TwoChildDeletes=%d, want 1", s.TwoChildDeletes)
	}
	if s.InsertRetries != 0 || s.DeleteRetries != 0 {
		t.Fatalf("sequential run recorded retries: %+v", s)
	}
	if s.RCU == nil {
		t.Fatal("tree on rcu.Domain reported no RCU stats")
	}
	// The two-child delete ran exactly one inline Synchronize.
	if s.RCU.Synchronizes != 1 {
		t.Fatalf("RCU.Synchronizes=%d, want 1 (one per two-child delete)", s.RCU.Synchronizes)
	}
}

// TestTreeStatsSurviveClose: a closed handle's counts fold into the
// tree totals, so Stats never goes backwards across handle churn.
func TestTreeStatsSurviveClose(t *testing.T) {
	tr := NewTree[int, int](rcu.NewDomain())
	h := tr.NewHandle()
	h.Insert(1, 1)
	h.Contains(1)
	h.Close()
	s := tr.Stats()
	if s.Inserts != 1 || s.Contains != 1 {
		t.Fatalf("counters lost on Close: %+v", s)
	}
}

// TestTreeStatsNoStatsFlavor: a flavor without accounting must yield
// RCU == nil, not a panic.
func TestTreeStatsNoStatsFlavor(t *testing.T) {
	tr := NewTree[int, int](rcu.NoSync(rcu.NewDomain()))
	h := tr.NewHandle()
	defer h.Close()
	h.Insert(1, 1)
	if s := tr.Stats(); s.RCU != nil {
		t.Fatalf("NoSync flavor reported RCU stats: %+v", s.RCU)
	}
}

func TestTreeStatsRecycling(t *testing.T) {
	dom := rcu.NewDomain()
	rec := rcu.NewReclaimer(dom)
	defer rec.Close()
	tr := NewTreeWithRecycling[int, int](dom, rec)
	h := tr.NewHandle()
	defer h.Close()
	for i := 0; i < 8; i++ {
		h.Insert(i, i)
	}
	for i := 0; i < 8; i++ {
		h.Delete(i)
	}
	rec.Barrier()
	for i := 0; i < 8; i++ {
		h.Insert(i, i)
	}
	s := tr.Stats()
	if s.NodesRetired == 0 {
		t.Fatalf("no retirements recorded: %+v", s)
	}
	if s.NodesReused == 0 {
		t.Fatalf("no reuse recorded after barrier: %+v", s)
	}
	retired, reused := tr.RecycleStats()
	if s.NodesRetired != retired || s.NodesReused != reused {
		t.Fatalf("Stats (%d/%d) disagrees with RecycleStats (%d/%d)",
			s.NodesRetired, s.NodesReused, retired, reused)
	}
}

// TestStatsSnapshotRace hammers Tree.Stats concurrently with a churning
// insert/delete/contains workload and handle open/close cycles,
// asserting all counters are monotonic. Run under -race by the CI race
// target for ./internal/core/....
func TestStatsSnapshotRace(t *testing.T) {
	tr := NewTree[int, int](rcu.NewDomain())
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Churning workers with periodic handle turnover.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for !stop.Load() {
				h := tr.NewHandle()
				for i := 0; i < 64; i++ {
					k := (seed*31 + i*7) % 32
					switch i % 3 {
					case 0:
						h.Insert(k, k)
					case 1:
						h.Delete(k)
					default:
						h.Contains(k)
					}
				}
				h.Close()
			}
		}(w)
	}

	// Stats pollers asserting per-counter monotonicity.
	errs := make(chan string, 2)
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev Stats
			for !stop.Load() {
				s := tr.Stats()
				bad := s.Contains < prev.Contains ||
					s.Inserts < prev.Inserts ||
					s.InsertExisting < prev.InsertExisting ||
					s.InsertRetries < prev.InsertRetries ||
					s.Deletes < prev.Deletes ||
					s.DeleteMisses < prev.DeleteMisses ||
					s.DeleteRetries < prev.DeleteRetries ||
					s.TwoChildDeletes < prev.TwoChildDeletes
				if !bad && s.RCU != nil && prev.RCU != nil {
					bad = s.RCU.Synchronizes < prev.RCU.Synchronizes ||
						s.RCU.SyncWait.Total() < prev.RCU.SyncWait.Total()
				}
				if bad {
					select {
					case errs <- "stats snapshot went backwards":
					default:
					}
					return
				}
				prev = s
			}
		}()
	}

	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Post-run sanity: successful inserts − successful deletes == keys
	// resident (exact once quiescent).
	s := tr.Stats()
	if got, want := tr.Len(), int(s.Inserts-s.Deletes); got != want {
		t.Fatalf("Len()=%d but Inserts-Deletes=%d", got, want)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
