package core

import (
	"testing"

	"github.com/go-citrus/citrus/rcu"
)

// FuzzOpsAgainstOracle interprets the fuzz input as an operation script
// (2 bytes per op: kind, key) applied to both the Citrus tree and a map
// oracle, checking every return value and the structural invariants at
// the end. `go test` runs the seed corpus as regression tests;
// `go test -fuzz=FuzzOpsAgainstOracle ./internal/core` explores.
func FuzzOpsAgainstOracle(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 1})
	f.Add([]byte{0, 10, 0, 5, 0, 15, 1, 10, 2, 5, 1, 15})
	f.Add([]byte{
		0, 50, 0, 25, 0, 75, 0, 60, 0, 90, 0, 55, // build
		1, 50, 2, 55, 1, 55, 0, 50, 1, 25, 1, 75, // churn two-child deletes
	})
	seq := make([]byte, 0, 128)
	for k := byte(0); k < 32; k++ {
		seq = append(seq, 0, k)
	}
	for k := byte(0); k < 32; k += 2 {
		seq = append(seq, 1, k)
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewTree[int, int](rcu.NewDomain())
		h := tr.NewHandle()
		defer h.Close()
		oracle := map[int]int{}
		for i := 0; i+1 < len(data); i += 2 {
			kind := data[i] % 3
			k := int(data[i+1] % 64)
			switch kind {
			case 0:
				_, present := oracle[k]
				if got := h.Insert(k, i); got == present {
					t.Fatalf("op %d: Insert(%d) = %v, present=%v", i/2, k, got, present)
				}
				if !present {
					oracle[k] = i
				}
			case 1:
				_, present := oracle[k]
				if got := h.Delete(k); got != present {
					t.Fatalf("op %d: Delete(%d) = %v, present=%v", i/2, k, got, present)
				}
				delete(oracle, k)
			default:
				wantV, wantOK := oracle[k]
				gotV, gotOK := h.Contains(k)
				if gotOK != wantOK || (wantOK && gotV != wantV) {
					t.Fatalf("op %d: Contains(%d) = (%d, %v), want (%d, %v)",
						i/2, k, gotV, gotOK, wantV, wantOK)
				}
			}
		}
		if got, want := tr.Len(), len(oracle); got != want {
			t.Fatalf("Len() = %d, oracle %d", got, want)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
