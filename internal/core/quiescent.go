package core

import (
	"cmp"
	"fmt"
)

// The helpers in this file observe the whole tree and are meaningful only
// in quiescent states — when no update is in flight. The paper's Figure 1
// shows why: RCU readers that visit several nodes can observe concurrent
// updates in different orders, so no consistent multi-key view exists
// while updates run. Tests and tooling call these between phases; they are
// not part of the concurrent API.

// Len reports the number of keys in the tree. Quiescent use only.
func (t *Tree[K, V]) Len() int {
	n := 0
	t.Range(func(K, V) bool { n++; return true })
	return n
}

// Range calls fn on every key/value pair in ascending key order until fn
// returns false. It runs the concurrent scan engine (scan.go) through a
// temporary handle — one traversal path for quiescent and live reads —
// but remains documented quiescent-only: under concurrent updates it
// inherits the engine's weak consistency, not a snapshot.
func (t *Tree[K, V]) Range(fn func(key K, value V) bool) {
	h := t.NewHandle()
	defer h.Close()
	h.Scan(fn)
}

// Keys returns all keys in ascending order. Quiescent use only.
func (t *Tree[K, V]) Keys() []K {
	var ks []K
	t.Range(func(k K, _ V) bool { ks = append(ks, k); return true })
	return ks
}

// Height reports the height of the tree (sentinels excluded; empty tree is
// 0). Quiescent use only; used by balance-related benchmarks.
func (t *Tree[K, V]) Height() int {
	var h func(n *node[K, V]) int
	h = func(n *node[K, V]) int {
		if n == nil {
			return 0
		}
		return 1 + max(h(n.child[left].Load()), h(n.child[right].Load()))
	}
	// Skip the sentinels: real keys live under the +∞ node's left child.
	inf := t.root.child[right].Load()
	return h(inf.child[left].Load())
}

// CheckInvariants verifies the structural invariants that must hold in any
// quiescent state and returns the first violation found:
//
//   - the sentinel skeleton is intact (−∞ root, +∞ right child, no left
//     child of the root);
//   - every reachable node is unmarked;
//   - the strict BST property holds (the paper's weak BST property with
//     duplicates allows equal keys only *during* a delete; none may remain
//     once updates quiesce);
//   - no key appears twice.
func (t *Tree[K, V]) CheckInvariants() error {
	if t.root.kind != kindNegInf {
		return fmt.Errorf("root is not the −∞ sentinel")
	}
	if t.root.child[left].Load() != nil {
		return fmt.Errorf("−∞ sentinel has a left child")
	}
	inf := t.root.child[right].Load()
	if inf == nil || inf.kind != kindPosInf {
		return fmt.Errorf("root's right child is not the +∞ sentinel")
	}
	if inf.child[right].Load() != nil {
		return fmt.Errorf("+∞ sentinel has a right child")
	}

	var prev *K
	var check func(n *node[K, V]) error
	check = func(n *node[K, V]) error {
		if n == nil {
			return nil
		}
		if err := check(n.child[left].Load()); err != nil {
			return err
		}
		if n.kind == kindNormal {
			n.mu.Lock()
			marked := n.marked
			n.mu.Unlock()
			if marked {
				return fmt.Errorf("reachable node %v is marked", n.key)
			}
			if prev != nil && cmp.Compare(n.key, *prev) <= 0 {
				return fmt.Errorf("BST order violated: %v after %v", n.key, *prev)
			}
			k := n.key
			prev = &k
		}
		return check(n.child[right].Load())
	}
	return check(inf.child[left].Load())
}
