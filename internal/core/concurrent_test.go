package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/go-citrus/citrus/rcu"
)

// TestFigure4NoFalseNegative reconstructs, deterministically, the scenario
// of the paper's Figures 4 and 7: a search for key 55 is suspended mid-walk
// (inside its read-side critical section) while a concurrent delete(50)
// replaces the two-child node 50 with a copy of its successor 55. The
// delete must block in synchronize_rcu until the search leaves its critical
// section, and the suspended search — resuming from its stale position —
// must still find 55 in its *old* location. Without line 74 the old
// successor would already be unlinked and the search would return a false
// negative for a key that is in the set throughout.
func TestFigure4NoFalseNegative(t *testing.T) {
	dom := rcu.NewDomain()
	tr := NewTree[int, int](dom)
	w := tr.NewHandle()
	defer w.Close()
	for _, k := range []int{50, 30, 80, 60, 55} {
		w.Insert(k, k)
	}
	// Successor of 50 is 55: 50 → right 80 → left 60 → left 55.

	// The reader walks by hand to node 60 — the parent of the successor —
	// inside a read-side critical section, then pauses.
	reader := dom.Register()
	defer reader.Unregister()
	reader.ReadLock()
	n := tr.root.child[right].Load() // +∞ sentinel
	n = n.child[left].Load()         // 50
	if n.key != 50 {
		t.Fatalf("layout: expected 50, got %d", n.key)
	}
	n = n.child[right].Load() // 80 (55 > 50)
	n = n.child[left].Load()  // 60 (55 < 80)
	if n.key != 60 {
		t.Fatalf("layout: expected 60, got %d", n.key)
	}
	stale := n // the reader is "here", about to read child[left]

	// Concurrently delete 50 (two children → successor copy + grace period).
	delDone := make(chan struct{})
	go func() {
		defer close(delDone)
		h := tr.NewHandle()
		defer h.Close()
		if !h.Delete(50) {
			t.Error("Delete(50) = false")
		}
	}()

	// The delete must publish the copy and then block in synchronize_rcu
	// while our reader is still inside its critical section.
	deadline := time.Now().Add(2 * time.Second)
	for {
		root := tr.root.child[right].Load().child[left].Load()
		if root.key == 55 && root != stale.child[left].Load() {
			break // the copy of 55 has replaced 50
		}
		if time.Now().After(deadline) {
			t.Fatal("delete never published the successor copy")
		}
		runtime.Gosched()
	}
	select {
	case <-delDone:
		t.Fatal("Delete(50) returned while a pre-existing reader was mid-search: synchronize_rcu did not wait")
	case <-time.After(20 * time.Millisecond):
	}

	// The suspended reader resumes from its stale node. The old successor
	// must still be linked exactly where the reader is about to look.
	old := stale.child[left].Load()
	if old == nil || old.key != 55 {
		t.Fatalf("pre-existing reader got a false negative: child = %v", old)
	}
	reader.ReadUnlock()

	<-delDone
	// After the grace period the old successor is unlinked.
	if got := stale.child[left].Load(); got != nil {
		t.Fatalf("old successor still linked after delete completed: %v", got.key)
	}
	if v, ok := w.Contains(55); !ok || v != 55 {
		t.Fatalf("Contains(55) = (%d, %v) after delete(50), want (55, true)", v, ok)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSearchDuringGracePeriodFindsCopy: while one pre-existing reader keeps
// a delete(50) blocked in its grace period, a *new* search must find the
// key through the freshly published copy (the paper's Figure 3(d) state:
// two copies of the successor are reachable).
func TestSearchDuringGracePeriodFindsCopy(t *testing.T) {
	dom := rcu.NewDomain()
	tr := NewTree[int, int](dom)
	w := tr.NewHandle()
	defer w.Close()
	for _, k := range []int{50, 30, 80, 60, 55} {
		w.Insert(k, k)
	}

	blocker := dom.Register()
	defer blocker.Unregister()
	blocker.ReadLock()

	delDone := make(chan struct{})
	go func() {
		defer close(delDone)
		h := tr.NewHandle()
		defer h.Close()
		h.Delete(50)
	}()

	// Wait for the copy of 55 to take 50's place.
	deadline := time.Now().Add(2 * time.Second)
	for {
		root := tr.root.child[right].Load().child[left].Load()
		if root.key == 55 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("delete never published the successor copy")
		}
		runtime.Gosched()
	}

	// Both copies of 55 are reachable right now (weak BST property). A new
	// reader must find the key — it will hit the new copy first.
	h2 := tr.NewHandle()
	if v, ok := h2.Contains(55); !ok || v != 55 {
		t.Fatalf("Contains(55) during grace period = (%d, %v), want (55, true)", v, ok)
	}
	_, _, curr, _ := h2.get(55)
	rootNow := tr.root.child[right].Load().child[left].Load()
	if curr != rootNow {
		t.Fatalf("new search found the old successor, want the published copy")
	}
	h2.Close()

	blocker.ReadUnlock()
	<-delDone
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestNoFalseNegativesUnderChurn is the paper's core guarantee, tested
// statistically: keys that are in the set for the whole run must be found
// by every contains, while writers constantly delete and reinsert
// two-child nodes around them.
func TestNoFalseNegativesUnderChurn(t *testing.T) {
	dom := rcu.NewDomain()
	tr := NewTree[int, int](dom)
	w := tr.NewHandle()

	// Permanent keys are even; churn keys are odd, interleaved so that
	// deleting a churn key regularly hits two-child nodes whose successor
	// is a permanent key.
	const n = 400
	perm := make([]int, 0, n/2)
	for k := 0; k < n; k++ {
		w.Insert(k, k)
		if k%2 == 0 {
			perm = append(perm, k)
		}
	}
	w.Close()

	stop := make(chan struct{})
	var violations atomic.Int64
	var wg sync.WaitGroup

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := perm[rng.Intn(len(perm))]
				if _, ok := h.Contains(k); !ok {
					violations.Add(1)
				}
			}
		}(int64(i))
	}

	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(100 + seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(n/2)*2 + 1 // odd churn key
				if rng.Intn(2) == 0 {
					h.Delete(k)
				} else {
					h.Insert(k, k)
				}
			}
		}(int64(i))
	}

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	if v := violations.Load(); v != 0 {
		t.Fatalf("%d false negatives on permanently present keys", v)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range perm {
		h := tr.NewHandle()
		if _, ok := h.Contains(k); !ok {
			t.Fatalf("permanent key %d missing after run", k)
		}
		h.Close()
	}
}

// TestConcurrentPartitionedWriters gives each writer a disjoint slice of
// the key space so the final state is deterministic, then checks it.
func TestConcurrentPartitionedWriters(t *testing.T) {
	dom := rcu.NewDomain()
	tr := NewTree[int, int](dom)

	const (
		writers     = 8
		keysPerPart = 300
		rounds      = 3
	)
	var wg sync.WaitGroup
	for p := 0; p < writers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := tr.NewHandle()
			defer h.Close()
			base := p * keysPerPart
			for r := 0; r < rounds; r++ {
				for k := base; k < base+keysPerPart; k++ {
					if !h.Insert(k, k+r) {
						t.Errorf("writer %d: Insert(%d) round %d = false", p, k, r)
					}
				}
				for k := base; k < base+keysPerPart; k++ {
					// Intermediate rounds empty the partition; the last
					// round keeps only keys divisible by 3.
					if r == rounds-1 && k%3 == 0 {
						continue
					}
					if !h.Delete(k) {
						t.Errorf("writer %d: Delete(%d) round %d = false", p, k, r)
					}
				}
			}
		}(p)
	}
	wg.Wait()

	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := 0
	h := tr.NewHandle()
	defer h.Close()
	for k := 0; k < writers*keysPerPart; k++ {
		if k%3 == 0 {
			want++
			if _, ok := h.Contains(k); !ok {
				t.Fatalf("key %d should have survived", k)
			}
		} else if _, ok := h.Contains(k); ok {
			t.Fatalf("key %d should have been deleted", k)
		}
	}
	if got := tr.Len(); got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
}

// TestConcurrentMixedChurn hammers a small key range from many goroutines
// with all three operations and then checks structural invariants and that
// membership agrees between two independent handles.
func TestConcurrentMixedChurn(t *testing.T) {
	for _, flavor := range []struct {
		name string
		f    rcu.Flavor
	}{
		{"Domain", rcu.NewDomain()},
		{"ClassicDomain", rcu.NewClassicDomain()},
	} {
		t.Run(flavor.name, func(t *testing.T) {
			tr := NewTree[int, int](flavor.f)
			const (
				goroutines = 8
				opsEach    = 4000
				keyRange   = 64 // small range → constant two-child deletes
			)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					h := tr.NewHandle()
					defer h.Close()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < opsEach; i++ {
						k := rng.Intn(keyRange)
						switch rng.Intn(3) {
						case 0:
							h.Insert(k, k)
						case 1:
							h.Delete(k)
						default:
							h.Contains(k)
						}
					}
				}(int64(g))
			}
			wg.Wait()
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			h := tr.NewHandle()
			defer h.Close()
			seen := map[int]bool{}
			tr.Range(func(k, _ int) bool { seen[k] = true; return true })
			for k := 0; k < keyRange; k++ {
				if _, ok := h.Contains(k); ok != seen[k] {
					t.Fatalf("Contains(%d) = %v but quiescent Range says %v", k, ok, seen[k])
				}
			}
		})
	}
}
