package core

import (
	"testing"

	"github.com/go-citrus/citrus/rcu"
)

// stampOracle is a minimal ReclaimOracle for white-box tests: it counts
// stamps and checks, and reports a violation when told to.
type stampOracle struct {
	stamps  int
	checks  int
	violate error
}

func (o *stampOracle) RetireStamp() uint64 {
	o.stamps++
	return uint64(o.stamps)
}

func (o *stampOracle) CheckReclaim(uint64) error {
	o.checks++
	return o.violate
}

// TestPoisonSwingsChildrenAndCountsTrips: after a deleted node's grace
// period, poison mode swings its child links to the sentinel; a search
// step walking through the stale node lands on the sentinel and is
// counted as a trip.
func TestPoisonSwingsChildrenAndCountsTrips(t *testing.T) {
	dom := rcu.NewDomain()
	rec := rcu.NewReclaimer(dom)
	defer rec.Close()
	tr := NewTree[int, int](dom)
	orc := &stampOracle{}
	tr.EnableTorture(rec, orc, true)

	h := tr.NewHandle()
	defer h.Close()
	for _, k := range []int{10, 5, 15} {
		h.Insert(k, k)
	}
	// Hold the node for 5 the way a suspended search would.
	inf := tr.root.child[right].Load()
	n10 := inf.child[left].Load()
	n5 := n10.child[left].Load()
	if n5.key != 5 {
		t.Fatalf("layout: expected 5, got %d", n5.key)
	}
	if !h.Delete(5) {
		t.Fatal("Delete(5) = false")
	}
	rec.Barrier() // grace period + reclaim callbacks have run

	if orc.stamps != 1 || orc.checks != 1 {
		t.Fatalf("oracle saw %d stamps, %d checks; want 1, 1", orc.stamps, orc.checks)
	}
	if got := n5.child[left].Load(); got == nil || got.kind != kindPoisoned {
		t.Fatalf("reclaimed node's left child = %v, want the poison sentinel", got)
	}
	if tr.PoisonTrips() != 0 {
		t.Fatalf("PoisonTrips = %d before any stale walk, want 0", tr.PoisonTrips())
	}
	// A stale reader stepping through n5 reaches the sentinel and
	// compares against it — that is the violation observation.
	stale := n5.child[left].Load()
	if c := stale.compareKey(7); c != -1 {
		t.Fatalf("poison sentinel compareKey = %d, want -1", c)
	}
	if got := tr.PoisonTrips(); got != 1 {
		t.Fatalf("PoisonTrips = %d after a stale walk, want 1", got)
	}
	// The sentinel dead-ends: both children nil, so searches terminate.
	if stale.child[left].Load() != nil || stale.child[right].Load() != nil {
		t.Fatal("poison sentinel has children; searches through it would not terminate")
	}
	// The live tree is untouched.
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after poisoned delete: %v", err)
	}
	if _, ok := h.Contains(10); !ok {
		t.Fatal("key 10 lost")
	}
}

// TestTortureOracleViolationRecorded: a CheckReclaim error is counted
// and surfaced through TortureReport.
func TestTortureOracleViolationRecorded(t *testing.T) {
	dom := rcu.NewDomain()
	rec := rcu.NewReclaimer(dom)
	defer rec.Close()
	tr := NewTree[int, int](dom)
	orc := &stampOracle{violate: errViolation}
	tr.EnableTorture(rec, orc, false)

	h := tr.NewHandle()
	defer h.Close()
	h.Insert(1, 1)
	h.Delete(1)
	rec.Barrier()

	n, first := tr.TortureReport()
	if n != 1 || first != errViolation {
		t.Fatalf("TortureReport = (%d, %v), want (1, %v)", n, first, errViolation)
	}
}

var errViolation = &violationErr{}

type violationErr struct{}

func (*violationErr) Error() string { return "synthetic reclamation violation" }

// TestEnableTortureRejectsPoisonWithRecycling: a poisoned node must
// never re-enter the allocation pool.
func TestEnableTortureRejectsPoisonWithRecycling(t *testing.T) {
	dom := rcu.NewDomain()
	rec := rcu.NewReclaimer(dom)
	defer rec.Close()
	tr := NewTreeWithRecycling[int, int](dom, rec)
	defer func() {
		if recover() == nil {
			t.Fatal("EnableTorture(poison) on a recycling tree did not panic")
		}
	}()
	tr.EnableTorture(rec, nil, true)
}

// TestTortureWithRecyclingStillPools: oracle checks compose with node
// recycling — retired nodes are checked, then pooled as usual.
func TestTortureWithRecyclingStillPools(t *testing.T) {
	dom := rcu.NewDomain()
	rec := rcu.NewReclaimer(dom)
	defer rec.Close()
	tr := NewTreeWithRecycling[int, int](dom, rec)
	orc := &stampOracle{}
	tr.EnableTorture(nil, orc, false) // nil rec: reuse the pool's

	h := tr.NewHandle()
	defer h.Close()
	for k := 0; k < 8; k++ {
		h.Insert(k, k)
	}
	for k := 0; k < 8; k++ {
		h.Delete(k)
	}
	rec.Barrier()
	if orc.checks == 0 {
		t.Fatal("no oracle checks on the recycling path")
	}
	retired, _ := tr.RecycleStats()
	if int(retired) != orc.stamps {
		t.Fatalf("stamps = %d, want %d (one per retired node)", orc.stamps, retired)
	}
	for k := 0; k < 8; k++ {
		h.Insert(k, k)
	}
	if _, reused := tr.RecycleStats(); reused == 0 {
		t.Fatal("oracle checks disabled pooling: no nodes reused")
	}
}

// TestMutantIgnoreTagsDisablesLine38: validate with a stale tag fails
// on the correct build and passes under the mutant — the white-box pin
// that the torture negative control relies on.
func TestMutantIgnoreTagsDisablesLine38(t *testing.T) {
	n := &node[int, int]{key: 10}
	n.tag[left].Add(2) // the slot was recycled since the tag was read
	staleTag := uint64(0)
	if validate(n, staleTag, nil, left) {
		t.Fatal("correct validate accepted a stale tag")
	}
	SetMutant(MutantIgnoreTags)
	defer SetMutant(MutantNone)
	if !validate(n, staleTag, nil, left) {
		t.Fatal("MutantIgnoreTags still rejects stale tags; the mutant is not wired through validate")
	}
	// The other validate clauses stay intact under the mutant.
	n.marked = true
	if validate(n, staleTag, nil, left) {
		t.Fatal("mutant disabled the marked check too; it must only skip line 38")
	}
}
