package core

import (
	"sync"
	"sync/atomic"

	"github.com/go-citrus/citrus/rcu"
)

// Torture mode — the reclamation-safety oracle's tree-side half.
//
// In torture mode every retired node goes through a Reclaimer, and its
// reclamation (a) is checked against an epoch-accounting oracle that
// knows which readers could still reach it, and (b) poisons the node:
// its child links are swung to a per-tree poison sentinel, so a search
// that reaches the node after its grace period supposedly expired walks
// onto the sentinel and is counted (compareKey's kindPoisoned case).
// Together these turn Lemma 2 / Figure 5 violations — which otherwise
// surface only as an eventual oracle mismatch — into immediate,
// attributable failures: "node X was reclaimed while reader R's
// critical section could still reach it".

// A ReclaimOracle decides, per reclamation, whether any reader's
// read-side critical section could still reach the node being
// reclaimed. internal/torture.Oracle is the implementation; core sees
// only the interface to avoid an import cycle.
type ReclaimOracle interface {
	// RetireStamp is called when a node is unlinked and retired; the
	// returned stamp identifies the retirement instant.
	RetireStamp() uint64

	// CheckReclaim is called when the node's grace period has
	// supposedly elapsed and it is about to be reclaimed. It returns a
	// non-nil error if a reader that entered its critical section
	// before the stamp is still inside it.
	CheckReclaim(stamp uint64) error
}

// tortureState is a tree's torture configuration and violation record.
type tortureState[K any, V any] struct {
	rec    *rcu.Reclaimer
	oracle ReclaimOracle
	poison bool

	violations atomic.Int64
	mu         sync.Mutex
	first      error
}

func (ts *tortureState[K, V]) fail(err error) {
	ts.violations.Add(1)
	ts.mu.Lock()
	if ts.first == nil {
		ts.first = err
	}
	ts.mu.Unlock()
}

// EnableTorture puts the tree in torture mode: retired nodes are handed
// to rec, checked against oracle (if non-nil) when reclaimed, and — if
// poison is set — poisoned instead of released. It must be called
// before the tree is shared between goroutines and at most once.
//
// Poisoning is incompatible with node recycling (a poisoned node must
// never be reused); EnableTorture panics on that combination. On a
// recycling tree rec may be nil (the pool's reclaimer is used).
func (t *Tree[K, V]) EnableTorture(rec *rcu.Reclaimer, oracle ReclaimOracle, poison bool) {
	if t.torture != nil {
		panic("citrus: EnableTorture called twice")
	}
	if poison && t.recycle != nil {
		panic("citrus: poisoning is incompatible with node recycling")
	}
	if rec == nil {
		if t.recycle == nil {
			panic("citrus: EnableTorture needs a Reclaimer on a non-recycling tree")
		}
		rec = t.recycle.rec
	}
	t.torture = &tortureState[K, V]{rec: rec, oracle: oracle, poison: poison}
	if poison {
		t.poisonSentinel = &node[K, V]{kind: kindPoisoned, marked: true}
	}
}

// TortureReport returns the number of reclamation-oracle violations
// observed so far and the first violation's error (nil if none). Only
// meaningful in torture mode; safe to call at any time.
func (t *Tree[K, V]) TortureReport() (violations int64, first error) {
	ts := t.torture
	if ts == nil {
		return 0, nil
	}
	ts.mu.Lock()
	first = ts.first
	ts.mu.Unlock()
	return ts.violations.Load(), first
}

// PoisonTrips reports how many times a search walked through a
// reclaimed (poisoned) node — each trip is one observed grace-period
// violation. Zero on trees without poisoning.
func (t *Tree[K, V]) PoisonTrips() int64 {
	s := t.poisonSentinel
	if s == nil {
		return 0
	}
	return int64(s.tag[left].Load())
}

// poisonNode swings a reclaimed node's child links to the tree's poison
// sentinel. The stores are atomic, so a reader erroneously still
// walking the node (the violation being hunted) observes either the old
// link or the sentinel, never a torn pointer; its key, value and marked
// flag are left intact so stale lock-holding updaters (which legally
// touch retired nodes — see recycle.go rule 2) keep failing validation
// exactly as on an unpoisoned tree.
func (t *Tree[K, V]) poisonNode(n *node[K, V]) {
	n.child[left].Store(t.poisonSentinel)
	n.child[right].Store(t.poisonSentinel)
}
