package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/go-citrus/citrus/rcu"
)

// TestStatsCloseRace hammers Tree.Stats against concurrent handle
// closes — including deliberate double-Closes racing from a second
// goroutine, the shutdown-reaper shape PR 1's idempotent Close invites.
// Two oracles:
//
//  1. exactness: at quiescence, Stats must equal the operations
//     actually performed — a lost fold shows up low, a double fold
//     (both racing Close calls accumulating the same stripe into
//     closedTotals, the bug this test pins) shows up high;
//  2. monotonicity: every counter is documented as non-decreasing
//     across snapshots, concurrently with handle churn.
//
// Run under -race this also proves Close-vs-Close and Close-vs-Stats
// are data-race free.
func TestStatsCloseRace(t *testing.T) {
	tr := NewTree[int, int](rcu.NewDomain())
	const (
		workers   = 8
		handlesN  = 40
		opsPerH   = 64
		statsIter = 400
	)

	var (
		wantContains  atomic.Int64 // Contains calls issued
		wantInsertOps atomic.Int64 // Insert calls issued (added + existing)
		wantDeleteOps atomic.Int64 // Delete calls issued (removed + missed)
		wg            sync.WaitGroup
		statsDone     = make(chan struct{})
		monotonicFail atomic.Bool
		lastContains  int64
		lastInsertOps int64
		lastDeleteOps int64
	)

	// Stats reader: continuous snapshots, asserting monotonicity.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(statsDone)
		for i := 0; i < statsIter; i++ {
			s := tr.Stats()
			ins := s.Inserts + s.InsertExisting
			del := s.Deletes + s.DeleteMisses
			if s.Contains < lastContains || ins < lastInsertOps || del < lastDeleteOps {
				monotonicFail.Store(true)
				return
			}
			lastContains, lastInsertOps, lastDeleteOps = s.Contains, ins, del
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < handlesN; i++ {
				h := tr.NewHandle()
				base := w * 1000
				for op := 0; op < opsPerH; op++ {
					k := base + (i*opsPerH+op)%97
					switch op % 3 {
					case 0:
						h.Insert(k, k)
						wantInsertOps.Add(1)
					case 1:
						h.Contains(k)
						wantContains.Add(1)
					default:
						h.Delete(k)
						wantDeleteOps.Add(1)
					}
				}
				// Race a second closer against the owner's Close: with
				// the unsynchronized h.r==nil guard both sides folded
				// the stripe, double-counting every counter.
				var cw sync.WaitGroup
				cw.Add(1)
				go func() {
					defer cw.Done()
					h.Close()
				}()
				h.Close()
				cw.Wait()
			}
		}(w)
	}
	wg.Wait()
	<-statsDone

	if monotonicFail.Load() {
		t.Fatal("Stats went backwards during concurrent handle churn")
	}
	s := tr.Stats()
	if got, want := s.Contains, wantContains.Load(); got != want {
		t.Fatalf("Stats.Contains = %d after all handles closed, want exactly %d (lost or double-folded stripes)", got, want)
	}
	if got, want := s.Inserts+s.InsertExisting, wantInsertOps.Load(); got != want {
		t.Fatalf("insert calls = %d, want exactly %d", got, want)
	}
	if got, want := s.Deletes+s.DeleteMisses, wantDeleteOps.Load(); got != want {
		t.Fatalf("delete calls = %d, want exactly %d", got, want)
	}
}

// TestCloseIdempotentSameGoroutine pins the documented single-goroutine
// idempotency: double Close folds once, and ops after Close panic with
// the descriptive message.
func TestCloseIdempotentSameGoroutine(t *testing.T) {
	tr := NewTree[int, int](rcu.NewDomain())
	h := tr.NewHandle()
	h.Insert(1, 1)
	h.Close()
	h.Close() // must be a no-op, not a second fold
	if got := tr.Stats().Inserts; got != 1 {
		t.Fatalf("Inserts = %d after double Close, want 1", got)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("op after Close did not panic")
		}
	}()
	h.Insert(2, 2)
}
