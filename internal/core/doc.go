// Package core implements the Citrus tree of Arbel & Attiya, "Concurrent
// Updates with RCU: Search Tree as an Example" (PODC 2014, §3).
//
// Citrus is an internal, unbalanced binary search tree implementing a
// dictionary (insert, delete, contains) in which updates run concurrently
// with each other — synchronized by fine-grained per-node locks with
// post-lock validation — and contains is wait-free, synchronized against
// updates only through RCU.
//
// The implementation is a line-level transliteration of the paper's
// pseudocode (lines 1–84); comments reference the paper's line numbers so
// the code can be audited against the proof in §4. The essential moves:
//
//   - get (lines 1–15) searches exactly like the sequential algorithm but
//     inside an RCU read-side critical section, returning the node found
//     (or nil), its parent, the link direction, and the parent's tag for
//     that direction.
//
//   - insert (lines 21–32) locks the parent, validates it (unmarked, link
//     still nil, tag unchanged), and links a new leaf.
//
//   - delete of a node with at most one child (lines 50–56) marks it and
//     bypasses it with a single child-pointer write.
//
//   - delete of a node with two children (lines 57–83) copies the node's
//     successor into a new node that takes the victim's place, then calls
//     synchronize_rcu to wait out every search that might still be heading
//     for the successor's old position, and only then unlinks the original
//     successor. Searches that began before the copy find the successor in
//     its old place; searches that begin after find the copy. This is what
//     makes the duplicate-key window safe (the weak BST property, §4
//     Definition 1) and is the only place Citrus blocks an updater on
//     readers.
//
//   - tags (one per child direction) are incremented whenever a child link
//     is set to nil, defeating the ABA problem in insert's validation, and
//     marked flags defeat use-after-unlink (lines 33–41).
//
// Memory model mapping: child pointers and tags are read by lock-free
// searches, so they are atomics; marked is only accessed while holding the
// owning node's mutex; key, value and kind are immutable after node
// creation. Sentinels (the −∞ root and its +∞ right child, §2) are
// explicit node kinds so keys remain fully generic.
package core
