package core

import (
	"sync"
	"testing"
	"time"

	"github.com/go-citrus/citrus/rcu"
)

// TestValidateDirect exercises the paper's validate (lines 33–38) on
// hand-built states, one clause at a time.
func TestValidateDirect(t *testing.T) {
	parent := newNode(10, 0)
	child := newNode(5, 0)
	parent.child[left].Store(child)

	if !validate(parent, 0, child, left) {
		t.Fatal("intact parent-child link failed validation")
	}
	if validate(parent, 0, child, right) {
		t.Fatal("wrong direction passed validation")
	}
	if validate(parent, 0, nil, left) {
		t.Fatal("nil curr passed while a child is linked")
	}

	// Marked parent (line 34).
	parent.marked = true
	if validate(parent, 0, child, left) {
		t.Fatal("marked parent passed validation")
	}
	parent.marked = false

	// Marked child (lines 36–37).
	child.marked = true
	if validate(parent, 0, child, left) {
		t.Fatal("marked child passed validation")
	}
	child.marked = false

	// Tag check for nil links (line 38).
	if !validate(parent, 0, nil, right) {
		t.Fatal("nil link with matching tag failed validation")
	}
	parent.tag[right].Add(1)
	if validate(parent, 0, nil, right) {
		t.Fatal("stale tag passed validation")
	}
	if !validate(parent, 1, nil, right) {
		t.Fatal("current tag failed validation")
	}
}

// TestTagDefeatsABA reconstructs the exact ABA the tags exist for (§3):
// an insert reads (prev, tag) with prev.child[dir] == nil; before it
// locks, a concurrent leaf insert fills the slot and a delete re-empties
// it by *moving* the leaf (successor copy). Without the tag, the slot
// looks unchanged (nil then, nil now) and the insert would attach its
// node below a parent whose range no longer contains the key.
func TestTagDefeatsABA(t *testing.T) {
	tr := NewTree[int, int](rcu.NewDomain())
	h := tr.NewHandle()
	defer h.Close()

	// 40's right slot is empty; an insert of 45 would go there.
	for _, k := range []int{50, 40, 60} {
		h.Insert(k, k)
	}
	inf := tr.root.child[right].Load()
	n50 := inf.child[left].Load()
	n40 := n50.child[left].Load()
	if n40.key != 40 {
		t.Fatalf("layout: got %d, want 40", n40.key)
	}

	staleTag := n40.tag[right].Load()
	if n40.child[right].Load() != nil {
		t.Fatal("40.right should be empty")
	}

	// A: fill the slot (insert 45 as 40's right child).
	h.Insert(45, 45)
	if n40.child[right].Load() == nil {
		t.Fatal("45 did not land on 40.right")
	}
	// B: empty it again by deleting 40 — 40 has two children now? No:
	// 40 has only the right child 45, so delete bypasses 40 and 45 moves
	// up... that changes prev. Instead delete 45 itself: the slot returns
	// to nil — the ABA.
	h.Delete(45)
	if n40.child[right].Load() != nil {
		t.Fatal("slot did not return to nil")
	}

	// The stale (prev, tag, nil, dir) triple from before A/B must now
	// fail validation even though the slot content (nil) is identical.
	n40.mu.Lock()
	ok := validate(n40, staleTag, nil, right)
	n40.mu.Unlock()
	if ok {
		t.Fatal("ABA undetected: stale tag validated against a recycled nil slot")
	}
}

// TestConcurrentDeletersSameKey: exactly one of many deleters of the
// same key may win each round.
func TestConcurrentDeletersSameKey(t *testing.T) {
	tr := NewTree[int, int](rcu.NewDomain())
	seed := tr.NewHandle()
	for _, k := range []int{50, 25, 75, 10, 30, 60, 90} {
		seed.Insert(k, k)
	}
	seed.Close()

	const rounds = 200
	for r := 0; r < rounds; r++ {
		var wins int32
		var mu sync.Mutex
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := tr.NewHandle()
				defer h.Close()
				if h.Delete(50) {
					mu.Lock()
					wins++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if wins != 1 {
			t.Fatalf("round %d: %d deleters succeeded, want exactly 1", r, wins)
		}
		h := tr.NewHandle()
		if !h.Insert(50, 50) {
			t.Fatalf("round %d: reinsert failed", r)
		}
		h.Close()
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteBlocksOnlyDeleters: while a two-child delete sits in its
// grace period (blocked by a reader), other *readers* must keep
// completing wait-free; only the structure under the held locks is
// off-limits to writers.
func TestDeleteBlocksOnlyDeleters(t *testing.T) {
	dom := rcu.NewDomain()
	tr := NewTree[int, int](dom)
	w := tr.NewHandle()
	defer w.Close()
	for _, k := range []int{50, 25, 75, 60, 90, 10, 30} {
		w.Insert(k, k)
	}

	blocker := dom.Register()
	blocker.ReadLock()

	delDone := make(chan struct{})
	go func() {
		defer close(delDone)
		h := tr.NewHandle()
		defer h.Close()
		h.Delete(50) // two children → grace period → blocked by blocker
	}()

	// Wait until the copy is published (the delete is inside line 74).
	deadline := time.Now().Add(2 * time.Second)
	for tr.root.child[right].Load().child[left].Load().key != 60 {
		if time.Now().After(deadline) {
			t.Fatal("successor copy never published")
		}
		time.Sleep(time.Millisecond)
	}

	// Reads anywhere still complete.
	h := tr.NewHandle()
	for _, k := range []int{10, 25, 30, 60, 75, 90} {
		if _, ok := h.Contains(k); !ok {
			t.Fatalf("Contains(%d) failed during another delete's grace period", k)
		}
	}
	// Updates in untouched regions also complete (10's subtree is not
	// locked by the delete).
	if !h.Insert(5, 5) {
		t.Fatal("unrelated insert failed during grace period")
	}
	if !h.Delete(5) {
		t.Fatal("unrelated delete failed during grace period")
	}
	h.Close()

	select {
	case <-delDone:
		t.Fatal("delete finished while the blocking reader was still inside")
	default:
	}
	blocker.ReadUnlock()
	<-delDone
	blocker.Unregister()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
